GO ?= go

.PHONY: check fmt vet test race bench bench-smoke sspcheck predecode-sweep

# check is the full gate: formatting, vet, the test suite under the race
# detector (the concurrent experiment engine is exercised by internal/exp's
# determinism and coalescing tests), and the differential/metamorphic fuzz
# sweep over 32 fixed seeds (internal/check).
check: fmt vet race sspcheck

# sspcheck runs 32 seeded random programs through all three validation
# layers; reproduce a reported failure with: go run ./cmd/sspcheck -seed N
sspcheck:
	$(GO) run ./cmd/sspcheck -seeds 32

# predecode-sweep is the regression gate for the decode-once execution core:
# fresh vs shared vs stats-off machines must agree bit-for-bit per seed.
predecode-sweep:
	$(GO) run ./cmd/sspcheck -seeds 32 -predecode

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# bench-smoke runs each internal/sim microbenchmark for a single iteration —
# just enough to catch an execution-core change that breaks or pathologically
# slows the benchmarks, without CI-grade noise-sensitive timing.
bench-smoke:
	$(GO) test ./internal/sim -run '^$$' -bench . -benchtime 1x
