GO ?= go

.PHONY: check fmt vet test race alloc-gate bench bench-diff bench-smoke bench-gate sspcheck predecode-sweep fastforward-sweep hotpath-sweep safety-sweep threaded-sweep fuzz-smoke cover serve-smoke serve-load tune-smoke tune-bench table2 table2-check

# check is the full gate: formatting, vet, the test suite under the race
# detector (the concurrent experiment engine is exercised by internal/exp's
# determinism and coalescing tests), the allocation-regression gate (the race
# run skips it — instrumentation allocates), the differential/metamorphic
# fuzz sweep over 32 fixed seeds (internal/check), the 500-seed fast-forward
# equivalence sweep, the 200-seed hot-path/machine-reuse equivalence sweep,
# the 32-seed speculation-safety sweep (static budget certificates, dynamic
# budget oracle, adversarial mutants), the 200-seed threaded-core
# equivalence sweep, and a short native-fuzzing smoke of the parser, the
# adaptation tool, and the threaded execution core.
check: fmt vet race alloc-gate sspcheck fastforward-sweep hotpath-sweep safety-sweep threaded-sweep fuzz-smoke

# sspcheck runs 32 seeded random programs through all three validation
# layers; reproduce a reported failure with: go run ./cmd/sspcheck -seed N
sspcheck:
	$(GO) run ./cmd/sspcheck -seeds 32

# predecode-sweep is the regression gate for the decode-once execution core:
# fresh vs shared vs stats-off machines must agree bit-for-bit per seed.
predecode-sweep:
	$(GO) run ./cmd/sspcheck -seeds 32 -predecode

# fastforward-sweep is the regression gate for the stall-aware fast-forward
# timing core: per-cycle vs fast-forwarded runs must agree bit-for-bit —
# cycles, breakdowns, histograms, and memory statistics — on the original and
# SSP-adapted program of every seed, under both machine models.
fastforward-sweep:
	$(GO) run ./cmd/sspcheck -seeds 500 -fastforward

# hotpath-sweep is the regression gate for the flattened hot-path data layout
# and the exp.Suite machine pool: a single machine Reset and reused across
# models and programs must agree bit-for-bit with fresh machines — cycles,
# breakdowns, histograms, and per-load memory statistics — on the original
# and SSP-adapted program of every seed.
hotpath-sweep:
	$(GO) run ./cmd/sspcheck -seeds 200 -hotpath

# safety-sweep is the regression gate for the speculation-safety verifier:
# per seed, every adapted slice must carry a violation-free static budget
# certificate, a dynamic run on both engines under the budget oracle must
# stay inside it, and every injected violation class must be rejected with
# exactly that class.
safety-sweep:
	$(GO) run ./cmd/sspcheck -seeds 32 -safety

# threaded-sweep is the regression gate for the closure-threaded execution
# core: per seed, interpreting and simulating over compiled per-block chains
# must agree bit-for-bit with table dispatch — entire Result, original and
# SSP-adapted program, both machine models, fresh/shared/rerun/stats-off
# machines, fast-forward off and on.
threaded-sweep:
	$(GO) run ./cmd/sspcheck -seeds 200 -threaded

# alloc-gate runs the allocation-regression tests without the race detector
# (whose instrumentation allocates): the per-access hot path must stay at
# exactly zero allocations, warm engine reruns under their hard ceilings.
alloc-gate:
	$(GO) test -count=1 -run 'Allocs' ./internal/sim/...

# fuzz-smoke gives each native fuzz target a short budget beyond its checked-in
# corpus; a real campaign uses -fuzztime as long as you can afford.
fuzz-smoke:
	$(GO) test ./internal/ir -run '^$$' -fuzz FuzzParseAsmRoundTrip -fuzztime 30s
	$(GO) test ./internal/ssp -run '^$$' -fuzz FuzzAdaptRandomProgram -fuzztime 30s
	$(GO) test ./internal/sim -run '^$$' -fuzz FuzzThreadedEquivalence -fuzztime 30s

# cover enforces the coverage floor over the whole module (statement coverage,
# all packages counted against all tests).
# The profile lands under the git-ignored .cover/ so a stale cover.out can
# never end up sitting in (or committed to) the repo root again.
cover:
	@mkdir -p .cover
	$(GO) test -count=1 -coverprofile=.cover/cover.out -coverpkg=./... ./...
	@total=$$($(GO) tool cover -func=.cover/cover.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	awk -v t=$$total 'BEGIN { if (t + 0 < 70) { printf "coverage %.1f%% is below the 70%% floor\n", t; exit 1 } printf "coverage %.1f%% (floor 70%%)\n", t }'

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the experiment-level benchmarks (repo root) and the engine
# microbenchmarks (internal/sim, internal/sim/mem) with allocation counts —
# the numbers BENCH_sim.json tracks. Save a run with: make bench | tee out.txt
bench:
	$(GO) test -bench=. -benchmem .
	$(GO) test -run '^$$' -bench=. -benchmem ./internal/sim/...

# bench-diff compares two saved `make bench` outputs with benchstat.
# Usage: make bench BENCH_OUT=/tmp/before.txt ... make bench-diff \
#        BENCH_BEFORE=/tmp/before.txt BENCH_AFTER=/tmp/after.txt
BENCH_BEFORE ?= bench.before.txt
BENCH_AFTER ?= bench.after.txt
bench-diff:
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat $(BENCH_BEFORE) $(BENCH_AFTER); \
	else \
		echo "benchstat not installed; falling back to side-by-side grep"; \
		echo "--- $(BENCH_BEFORE)"; grep '^Benchmark' $(BENCH_BEFORE); \
		echo "--- $(BENCH_AFTER)"; grep '^Benchmark' $(BENCH_AFTER); \
	fi

# serve-smoke is the CI-sized exercise of the serving layer: an in-process
# sspserved fed 3 passes over the full 48-cell matrix, every result validated
# byte-for-byte against the golden-stats baseline. Fails on any request
# error, any golden divergence, or a memo hit rate at or below 50%.
serve-smoke:
	$(GO) run ./cmd/serveload -jobs 144 -conc 8

# serve-load is the full load test behind BENCH_serve.json: 2500 concurrent
# jobs against an in-process server, golden-validated, with throughput,
# latency quantiles, and hit rate recorded. Not wired into CI (timing noise);
# run it when touching internal/serve and commit the refreshed numbers.
serve-load:
	$(GO) run ./cmd/serveload -jobs 2500 -conc 32 -out BENCH_serve.json

# tune-smoke is the CI-sized exercise of the closed-loop tuner: the quick
# grid on mcf at test scale, two re-profiling rounds per candidate. Every
# round passes the metamorphic/conservation gates or the run fails, and
# -require-converged makes a non-converging search a hard failure.
tune-smoke:
	$(GO) run ./cmd/ssptune -scale test -bench mcf -rounds 2 -grid quick -quiet -require-converged

# tune-bench regenerates BENCH_tune.json: the full options grid on mcf at
# paper scale (the §4.5 configuration), recording the best configuration and
# the per-round speedup trajectory of every candidate. Takes minutes; not
# wired into CI. Run it when touching internal/tune or the adaptation tool
# and commit the refreshed numbers.
tune-bench:
	$(GO) run ./cmd/ssptune -scale paper -bench mcf -rounds 3 -grid full -require-converged -out BENCH_tune.json

# table2 regenerates TABLE2.txt: the paper-scale slice-portfolio statistics
# (per-benchmark Table 2 rows with the paper's numbers alongside, plus the
# per-slice breakdown) with the envelope check on, so a stale TABLE2.txt can
# never hide an out-of-envelope portfolio. Run it when touching internal/ssp
# or the workloads and commit the refreshed table.
table2:
	$(GO) run ./cmd/experiments -scale paper -only table2 -envelope -quiet > TABLE2.txt
	@cat TABLE2.txt

# table2-check is the CI-sized fidelity gate on the paper's Table 2: the
# paper-scale portfolio must stay inside the envelope — slice sizes 7-15,
# live-ins 1-4, distinct trigger sites per benchmark, and every multi-phase
# benchmark holding its minimum slice count.
table2-check:
	$(GO) run ./cmd/experiments -scale paper -only table2 -envelope -quiet >/dev/null

# bench-smoke runs each internal/sim microbenchmark for a single iteration —
# just enough to catch an execution-core change that breaks or pathologically
# slows the benchmarks (or starts allocating on the hot path: -benchmem keeps
# allocs/op visible in the CI log), without CI-grade noise-sensitive timing.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./internal/sim/...

# bench-gate is the benchstat-style regression gate on the threaded execution
# core: the threaded/table speedup ratios (machine-portable, unlike raw
# ns/op) are re-measured in-process and must not fall more than 10% below
# the baselines committed in BENCH_sim.json ("threaded".gate). CI runs it in
# the bench-smoke job.
bench-gate:
	SSP_BENCH_GATE=1 $(GO) test -count=1 -run TestThreadedSpeedupGate -v ./internal/sim
