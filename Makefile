GO ?= go

.PHONY: check fmt vet test race bench bench-smoke sspcheck predecode-sweep fastforward-sweep fuzz-smoke cover

# check is the full gate: formatting, vet, the test suite under the race
# detector (the concurrent experiment engine is exercised by internal/exp's
# determinism and coalescing tests), the differential/metamorphic fuzz sweep
# over 32 fixed seeds (internal/check), the 500-seed fast-forward-equivalence
# sweep, and a short native-fuzzing smoke of the parser and the adaptation
# tool.
check: fmt vet race sspcheck fastforward-sweep fuzz-smoke

# sspcheck runs 32 seeded random programs through all three validation
# layers; reproduce a reported failure with: go run ./cmd/sspcheck -seed N
sspcheck:
	$(GO) run ./cmd/sspcheck -seeds 32

# predecode-sweep is the regression gate for the decode-once execution core:
# fresh vs shared vs stats-off machines must agree bit-for-bit per seed.
predecode-sweep:
	$(GO) run ./cmd/sspcheck -seeds 32 -predecode

# fastforward-sweep is the regression gate for the stall-aware fast-forward
# timing core: per-cycle vs fast-forwarded runs must agree bit-for-bit —
# cycles, breakdowns, histograms, and memory statistics — on the original and
# SSP-adapted program of every seed, under both machine models.
fastforward-sweep:
	$(GO) run ./cmd/sspcheck -seeds 500 -fastforward

# fuzz-smoke gives each native fuzz target a short budget beyond its checked-in
# corpus; a real campaign uses -fuzztime as long as you can afford.
fuzz-smoke:
	$(GO) test ./internal/ir -run '^$$' -fuzz FuzzParseAsmRoundTrip -fuzztime 30s
	$(GO) test ./internal/ssp -run '^$$' -fuzz FuzzAdaptRandomProgram -fuzztime 30s

# cover enforces the coverage floor over the whole module (statement coverage,
# all packages counted against all tests).
cover:
	$(GO) test -count=1 -coverprofile=cover.out -coverpkg=./... ./...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	awk -v t=$$total 'BEGIN { if (t + 0 < 70) { printf "coverage %.1f%% is below the 70%% floor\n", t; exit 1 } printf "coverage %.1f%% (floor 70%%)\n", t }'

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# bench-smoke runs each internal/sim microbenchmark for a single iteration —
# just enough to catch an execution-core change that breaks or pathologically
# slows the benchmarks, without CI-grade noise-sensitive timing.
bench-smoke:
	$(GO) test ./internal/sim -run '^$$' -bench . -benchtime 1x
