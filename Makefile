GO ?= go

.PHONY: check fmt vet test race bench

# check is the full gate: formatting, vet, and the test suite under the
# race detector (the concurrent experiment engine is exercised by
# internal/exp's determinism and coalescing tests).
check: fmt vet race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .
