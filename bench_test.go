// Package repro's benchmark harness regenerates every table and figure of
// the paper's evaluation at paper scale (working sets beyond the Table 1
// 3MB L3), one benchmark function per exhibit:
//
//	BenchmarkFigure2    perfect memory vs. perfect delinquent loads
//	BenchmarkTable2     slice characteristics
//	BenchmarkFigure8    SSP speedups on both machine models
//	BenchmarkFigure9    where delinquent loads are satisfied
//	BenchmarkFigure10   normalized cycle breakdowns
//	BenchmarkSection45  automatic vs. hand adaptation
//	BenchmarkAblation*  design-choice ablations
//
// Results are emitted as benchmark metrics (speedups, averages), so
// `go test -bench=. -benchmem` reproduces the paper's numbers end to end.
// Simulation results are cached across benchmarks within the process via a
// shared suite, mirroring how the figures share the same runs in the paper.
package repro

import (
	"sync"
	"testing"

	"ssp/internal/exp"
	"ssp/internal/ir"
	"ssp/internal/profile"
	"ssp/internal/sim"
	"ssp/internal/ssp"
	"ssp/internal/workloads"
)

var (
	suiteOnce sync.Once
	suite     *exp.Suite
)

// paperSuite returns the process-wide suite. The figure drivers presimulate
// their cells on the suite's worker pool, and every cell is cached, so a
// benchmark only ever pays for runs no earlier benchmark already computed.
func paperSuite(b *testing.B) *exp.Suite {
	suiteOnce.Do(func() { suite = exp.NewSuite(exp.ScalePaper) })
	return suite
}

// presimulate fans the given cells out on the shared suite's worker pool so
// the measured loops below run against a warm cache, the same presimulation
// the figure drivers do internally.
func presimulate(b *testing.B, s *exp.Suite, keys []exp.RunKey) {
	b.Helper()
	if err := s.RunAll(keys, s.Workers); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkFigure2(b *testing.B) {
	s := paperSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		var pmIO, pdIO, pmOOO, pdOOO []float64
		for _, r := range rows {
			pmIO = append(pmIO, r.PerfMemIO)
			pdIO = append(pdIO, r.PerfDelIO)
			pmOOO = append(pmOOO, r.PerfMemOOO)
			pdOOO = append(pdOOO, r.PerfDelOOO)
		}
		b.ReportMetric(exp.Mean(pmIO), "io-perfmem-x")
		b.ReportMetric(exp.Mean(pdIO), "io-perfdel-x")
		b.ReportMetric(exp.Mean(pmOOO), "ooo-perfmem-x")
		b.ReportMetric(exp.Mean(pdOOO), "ooo-perfdel-x")
	}
}

func BenchmarkTable2(b *testing.B) {
	s := paperSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.Table2()
		if err != nil {
			b.Fatal(err)
		}
		var slices, interproc, size, live float64
		for _, r := range rows {
			slices += float64(r.Slices)
			interproc += float64(r.Interproc)
			size += r.AvgSize
			live += r.AvgLiveIns
		}
		n := float64(len(rows))
		b.ReportMetric(slices, "slices-total")
		b.ReportMetric(interproc, "interproc-total")
		b.ReportMetric(size/n, "avg-slice-size")
		b.ReportMetric(live/n, "avg-live-ins")
	}
}

func BenchmarkFigure8(b *testing.B) {
	s := paperSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		var io, ooo, oooSSP []float64
		for _, r := range rows {
			io = append(io, r.InOrderSSP)
			ooo = append(ooo, r.OOO)
			oooSSP = append(oooSSP, r.OOOSSP)
		}
		// The paper's headline: 87% average in-order SSP speedup, 175%
		// OOO speedup, +5% SSP on OOO.
		b.ReportMetric(100*(exp.Mean(io)-1), "io-ssp-avg-pct")
		b.ReportMetric(100*(exp.Mean(ooo)-1), "ooo-avg-pct")
		b.ReportMetric(100*(exp.Mean(oooSSP)/exp.Mean(ooo)-1), "ssp-on-ooo-pct")
	}
}

func BenchmarkFigure9(b *testing.B) {
	s := paperSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		// Aggregate metric: average full-memory-hit share of delinquent
		// loads, baseline vs SSP on in-order (SSP converts memory hits
		// into partial/cache hits).
		var baseMem, sspMem []float64
		for _, r := range rows {
			baseMem = append(baseMem, r.Configs[0].Share["Mem"])
			sspMem = append(sspMem, r.Configs[1].Share["Mem"])
		}
		b.ReportMetric(100*exp.Mean(baseMem), "io-mem-share-pct")
		b.ReportMetric(100*exp.Mean(sspMem), "io+ssp-mem-share-pct")
	}
}

func BenchmarkFigure10(b *testing.B) {
	s := paperSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.Figure10()
		if err != nil {
			b.Fatal(err)
		}
		var baseL3, sspL3 []float64
		for _, r := range rows {
			baseL3 = append(baseL3, r.Configs[0].Norm[sim.CatL3])
			sspL3 = append(sspL3, r.Configs[1].Norm[sim.CatL3])
		}
		// "SSP effectively reduces the L3 cycles" (§4.4.1).
		b.ReportMetric(100*exp.Mean(baseL3), "io-L3-stall-pct")
		b.ReportMetric(100*exp.Mean(sspL3), "io+ssp-L3-stall-pct")
	}
}

func BenchmarkSection45(b *testing.B) {
	s := paperSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.Section45()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.AutoSpeedup, r.Bench+"-"+r.Model+"-auto-x")
			b.ReportMetric(r.HandSpeedup, r.Bench+"-"+r.Model+"-hand-x")
		}
	}
}

// benchAblation measures one disabled design choice against the full tool on
// the chaining-heavy benchmarks.
func benchAblation(b *testing.B, v exp.Variant) {
	s := paperSuite(b)
	benches := []string{"mcf", "em3d", "vpr"}
	presimulate(b, s, exp.Cross(benches, []sim.Model{sim.InOrder},
		[]exp.Variant{exp.VarBase, exp.VarSSP, v}))
	for i := 0; i < b.N; i++ {
		var full, ablated []float64
		for _, name := range benches {
			f, err := s.Speedup(name, sim.InOrder, exp.VarBase, sim.InOrder, exp.VarSSP)
			if err != nil {
				b.Fatal(err)
			}
			a, err := s.Speedup(name, sim.InOrder, exp.VarBase, sim.InOrder, v)
			if err != nil {
				b.Fatal(err)
			}
			full = append(full, f)
			ablated = append(ablated, a)
		}
		b.ReportMetric(exp.Mean(full), "full-tool-x")
		b.ReportMetric(exp.Mean(ablated), "ablated-x")
	}
}

func BenchmarkAblationChaining(b *testing.B)    { benchAblation(b, exp.VarNoChain) }
func BenchmarkAblationRotation(b *testing.B)    { benchAblation(b, exp.VarNoRotate) }
func BenchmarkAblationPrediction(b *testing.B)  { benchAblation(b, exp.VarNoPred) }
func BenchmarkAblationSpeculation(b *testing.B) { benchAblation(b, exp.VarNoSpec) }

// BenchmarkSimulatorInOrder measures raw in-order simulation throughput.
func BenchmarkSimulatorInOrder(b *testing.B) { benchSimulator(b, sim.DefaultInOrder()) }

// BenchmarkSimulatorOOO measures raw OOO simulation throughput.
func BenchmarkSimulatorOOO(b *testing.B) { benchSimulator(b, sim.DefaultOOO()) }

func benchSimulator(b *testing.B, cfg sim.Config) {
	spec, err := workloads.ByName("mcf")
	if err != nil {
		b.Fatal(err)
	}
	p, _ := spec.Build(5000)
	img, err := ir.Link(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var instrs int64
	for i := 0; i < b.N; i++ {
		res, err := sim.New(cfg, img).Run()
		if err != nil {
			b.Fatal(err)
		}
		instrs += res.MainInstrs + res.SpecInstrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "sim-instrs/s")
}

// BenchmarkAdapt measures the post-pass tool itself (slicing, scheduling,
// trigger placement, code generation) on the mcf kernel.
func BenchmarkAdapt(b *testing.B) {
	spec, err := workloads.ByName("mcf")
	if err != nil {
		b.Fatal(err)
	}
	p, _ := spec.Build(5000)
	cfg := sim.DefaultInOrder()
	cfg.UseTinyMem()
	prof, err := profile.Collect(p, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ssp.Adapt(p, prof, ssp.DefaultOptions(), "mcf"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfile measures the profiling pass.
func BenchmarkProfile(b *testing.B) {
	spec, err := workloads.ByName("mcf")
	if err != nil {
		b.Fatal(err)
	}
	p, _ := spec.Build(2000)
	cfg := sim.DefaultInOrder()
	cfg.UseTinyMem()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := profile.Collect(p, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionUnroll measures the chain-unrolling extension
// (ChainUnroll=2) against the paper-faithful tool on the chaining
// benchmarks, quantifying how much of the §4.5 hand-adaptation gap the
// automated unroller closes.
func BenchmarkExtensionUnroll(b *testing.B) {
	s := paperSuite(b)
	benches := []string{"mcf", "vpr", "treeadd.bf"}
	presimulate(b, s, exp.Cross(benches, []sim.Model{sim.InOrder},
		[]exp.Variant{exp.VarBase, exp.VarSSP, exp.VarUnroll}))
	for i := 0; i < b.N; i++ {
		var full, unrolled []float64
		for _, name := range benches {
			f, err := s.Speedup(name, sim.InOrder, exp.VarBase, sim.InOrder, exp.VarSSP)
			if err != nil {
				b.Fatal(err)
			}
			u, err := s.Speedup(name, sim.InOrder, exp.VarBase, sim.InOrder, exp.VarUnroll)
			if err != nil {
				b.Fatal(err)
			}
			full = append(full, f)
			unrolled = append(unrolled, u)
		}
		b.ReportMetric(exp.Mean(full), "paper-tool-x")
		b.ReportMetric(exp.Mean(unrolled), "unroll2-x")
	}
}
