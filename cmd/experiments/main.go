// Command experiments regenerates the paper's evaluation: Figure 2,
// Table 2, Figure 8, Figure 9, Figure 10, the §4.5 automatic-vs-hand
// comparison, and the ablation study, printing each as a text table.
//
// The experiment matrix is presimulated on a worker pool (-workers, default
// the CPU count); per-cell progress lines go to stderr while the tables go
// to stdout. Results are bit-identical at any worker count.
//
// Usage:
//
//	experiments                  # everything at paper scale
//	experiments -scale test      # quick pass with the scaled-down machine
//	experiments -only fig8,table2
//	experiments -workers 1       # serial
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"ssp/internal/cliutil"
	"ssp/internal/exp"
	"ssp/internal/sim"
)

// exhibits lists the valid -only keys in output order.
var exhibits = []string{"fig2", "table2", "fig8", "fig9", "fig10", "sec45", "ablations"}

// options bundles the validated command-line parameters of one run.
type options struct {
	scale            exp.Scale
	wanted           map[string]bool
	workers          int
	quiet            bool
	envelope         bool
	cpuProf, memProf string
}

func main() {
	var (
		scale   = flag.String("scale", "paper", "experiment scale: paper or test")
		only    = flag.String("only", "", "comma-separated subset: "+strings.Join(exhibits, ","))
		workers = flag.Int("workers", runtime.NumCPU(), "parallel simulations (1 = serial)")
		quiet   = flag.Bool("quiet", false, "suppress the per-cell progress lines on stderr")
		envel   = flag.Bool("envelope", false, "fail if Table 2 leaves the paper's envelope (slice sizes 7-15, live-ins 1-4, per-benchmark slice minimums)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf = flag.String("memprofile", "", "write an allocation profile of the run to this file")
	)
	flag.Parse()
	// Usage errors exit 2 before any work (or profiling) starts; run
	// errors exit 1 after run returns, so its deferred cleanup — the
	// profile stop in particular — always fires.
	sc, err := parseScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	wanted, err := parseOnly(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	if *workers < 1 {
		fmt.Fprintf(os.Stderr, "experiments: -workers must be at least 1, got %d\n", *workers)
		os.Exit(2)
	}
	o := options{sc, wanted, *workers, *quiet, *envel, *cpuProf, *memProf}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	stopProf, err := cliutil.StartProfiles(o.cpuProf, o.memProf)
	if err != nil {
		return err
	}
	defer stopProf()
	s := exp.NewSuite(o.scale)
	s.Workers = o.workers
	if !o.quiet {
		s.Progress = progressPrinter(os.Stderr)
	}
	want := func(k string) bool { return len(o.wanted) == 0 || o.wanted[k] }
	return emit(s, want, o.envelope)
}

// parseScale maps the -scale flag to a suite scale, rejecting typos instead
// of silently falling back to paper scale.
func parseScale(s string) (exp.Scale, error) {
	switch s {
	case "paper":
		return exp.ScalePaper, nil
	case "test":
		return exp.ScaleTest, nil
	}
	return 0, fmt.Errorf("unknown -scale %q (valid: paper, test)", s)
}

// parseOnly validates the -only subset against the known exhibit keys, so a
// typo fails loudly instead of printing nothing and exiting 0.
func parseOnly(s string) (map[string]bool, error) {
	wanted := map[string]bool{}
	if s == "" {
		return wanted, nil
	}
	valid := map[string]bool{}
	for _, k := range exhibits {
		valid[k] = true
	}
	for _, k := range strings.Split(s, ",") {
		k = strings.TrimSpace(k)
		if k == "" {
			continue
		}
		if !valid[k] {
			return nil, fmt.Errorf("unknown -only key %q (valid: %s)", k, strings.Join(exhibits, ", "))
		}
		wanted[k] = true
	}
	return wanted, nil
}

// progressPrinter returns a Progress hook that writes one numbered line per
// simulated cell. The suite may call it from many worker goroutines.
func progressPrinter(w *os.File) func(exp.RunKey, *sim.Result, time.Duration) {
	var mu sync.Mutex
	done := 0
	return func(k exp.RunKey, res *sim.Result, wall time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		done++
		fmt.Fprintf(w, "[%3d] %-28s %14d cycles  %7.2fs\n", done, k, res.Cycles, wall.Seconds())
	}
}

// emit prints the requested exhibits in output order.
func emit(s *exp.Suite, want func(string) bool, envelope bool) error {
	f2 := func(v float64) string { return fmt.Sprintf("%.2f", v) }
	if want("fig2") {
		rows, err := s.Figure2()
		if err != nil {
			return err
		}
		var cells [][]string
		var pmIO, pdIO, pmOOO, pdOOO []float64
		for _, r := range rows {
			cells = append(cells, []string{r.Bench, f2(r.PerfMemIO), f2(r.PerfDelIO), f2(r.PerfMemOOO), f2(r.PerfDelOOO)})
			pmIO = append(pmIO, r.PerfMemIO)
			pdIO = append(pdIO, r.PerfDelIO)
			pmOOO = append(pmOOO, r.PerfMemOOO)
			pdOOO = append(pdOOO, r.PerfDelOOO)
		}
		cells = append(cells, []string{"average", f2(exp.Mean(pmIO)), f2(exp.Mean(pdIO)), f2(exp.Mean(pmOOO)), f2(exp.Mean(pdOOO))})
		fmt.Println("Figure 2: speedup with perfect memory vs. delinquent loads always hitting L1")
		fmt.Println(exp.FormatTable(
			[]string{"bench", "io perfect-mem", "io perfect-del", "ooo perfect-mem", "ooo perfect-del"}, cells))
	}
	if want("table2") {
		rows, err := s.Table2()
		if err != nil {
			return err
		}
		var cells [][]string
		for _, r := range rows {
			ps, pi, psz, pli := "-", "-", "-", "-"
			if r.PaperSlices > 0 {
				ps = fmt.Sprint(r.PaperSlices)
				pi = fmt.Sprint(r.PaperInterproc)
				psz = fmt.Sprintf("%.1f", r.PaperAvgSize)
				pli = fmt.Sprintf("%.1f", r.PaperAvgLiveIns)
			}
			cells = append(cells, []string{r.Bench, fmt.Sprint(r.Slices), fmt.Sprint(r.Interproc),
				fmt.Sprintf("%.1f", r.AvgSize), fmt.Sprintf("%.1f", r.AvgLiveIns), ps, pi, psz, pli})
		}
		fmt.Println("Table 2: slice characteristics (paper columns = source Table 2 namesake)")
		fmt.Println(exp.FormatTable([]string{"bench", "slices", "interproc", "avg size", "avg live-ins",
			"paper slices", "paper interproc", "paper size", "paper live-ins"}, cells))

		slices, err := s.Table2Slices()
		if err != nil {
			return err
		}
		var srows [][]string
		for _, sl := range slices {
			srows = append(srows, []string{sl.Bench, fmt.Sprint(sl.Slice), sl.Region, sl.Trigger, sl.Model,
				fmt.Sprint(sl.Size), fmt.Sprint(sl.LiveIns), fmt.Sprint(sl.Interprocedural), fmt.Sprint(sl.SpawnBudget)})
		}
		fmt.Println("Table 2 (per slice): the slice portfolio")
		fmt.Println(exp.FormatTable([]string{"bench", "slice", "region", "trigger", "model",
			"size", "live-ins", "interproc", "spawn budget"}, srows))

		if envelope {
			if bad := exp.Table2Envelope(rows, slices); len(bad) > 0 {
				for _, m := range bad {
					fmt.Fprintln(os.Stderr, "envelope:", m)
				}
				return fmt.Errorf("table 2 envelope: %d violation(s)", len(bad))
			}
			fmt.Println("Table 2 envelope: all slices within the paper's ranges (sizes 7-15, live-ins 1-4, per-benchmark slice minimums)")
		}
	}
	if want("fig8") {
		rows, err := s.Figure8()
		if err != nil {
			return err
		}
		var cells [][]string
		var a, b, c []float64
		for _, r := range rows {
			cells = append(cells, []string{r.Bench, f2(r.InOrderSSP), f2(r.OOO), f2(r.OOOSSP)})
			a = append(a, r.InOrderSSP)
			b = append(b, r.OOO)
			c = append(c, r.OOOSSP)
		}
		cells = append(cells, []string{"average", f2(exp.Mean(a)), f2(exp.Mean(b)), f2(exp.Mean(c))})
		fmt.Println("Figure 8: speedups over the baseline in-order model")
		fmt.Println(exp.FormatTable([]string{"bench", "in-order+SSP", "OOO", "OOO+SSP"}, cells))
		fmt.Printf("in-order SSP average speedup: %+.0f%%   SSP on OOO average: %+.0f%%\n\n",
			100*(exp.Mean(a)-1), 100*(exp.Mean(c)/exp.Mean(b)-1))
	}
	if want("fig9") {
		rows, err := s.Figure9()
		if err != nil {
			return err
		}
		fmt.Println("Figure 9: where delinquent loads are satisfied when missing L1")
		header := []string{"bench", "config", "L1 missrate", "L2", "L2 part", "L3", "L3 part", "Mem", "Mem part"}
		var cells [][]string
		for _, r := range rows {
			for _, c := range r.Configs {
				pc := func(k string) string { return fmt.Sprintf("%.0f%%", 100*c.Share[k]) }
				cells = append(cells, []string{r.Bench, c.Label, fmt.Sprintf("%.3f", c.L1MissRate),
					pc("L2"), pc("L2 partial"), pc("L3"), pc("L3 partial"), pc("Mem"), pc("Mem partial")})
			}
		}
		fmt.Println(exp.FormatTable(header, cells))
	}
	if want("fig10") {
		rows, err := s.Figure10()
		if err != nil {
			return err
		}
		fmt.Println("Figure 10: cycle breakdown normalized to the baseline in-order cycles")
		header := []string{"bench", "config", "total"}
		for cat := sim.Category(0); cat < sim.NumCategories; cat++ {
			header = append(header, cat.String())
		}
		var cells [][]string
		for _, r := range rows {
			for _, c := range r.Configs {
				row := []string{r.Bench, c.Label, fmt.Sprintf("%.2f", c.Total)}
				for cat := sim.Category(0); cat < sim.NumCategories; cat++ {
					row = append(row, fmt.Sprintf("%.2f", c.Norm[cat]))
				}
				cells = append(cells, row)
			}
		}
		fmt.Println(exp.FormatTable(header, cells))
	}
	if want("sec45") {
		rows, err := s.Section45()
		if err != nil {
			return err
		}
		fmt.Println("Section 4.5: automatic vs. hand adaptation")
		var cells [][]string
		for _, r := range rows {
			cells = append(cells, []string{r.Bench, r.Model, f2(r.AutoSpeedup), f2(r.HandSpeedup),
				fmt.Sprintf("%.0f%%", r.LossPct)})
		}
		fmt.Println(exp.FormatTable([]string{"bench", "model", "auto speedup", "hand speedup", "tool loss"}, cells))
	}
	if want("ablations") {
		rows, err := s.Ablations(nil)
		if err != nil {
			return err
		}
		fmt.Println("Ablations: in-order speedup with each design choice disabled")
		var cells [][]string
		for _, r := range rows {
			cells = append(cells, []string{r.Bench, string(r.Variant), f2(r.Speedup)})
		}
		fmt.Println(exp.FormatTable([]string{"bench", "variant", "speedup"}, cells))
	}
	return nil
}
