// Command experiments regenerates the paper's evaluation: Figure 2,
// Table 2, Figure 8, Figure 9, Figure 10, the §4.5 automatic-vs-hand
// comparison, and the ablation study, printing each as a text table.
//
// Usage:
//
//	experiments                  # everything at paper scale
//	experiments -scale test      # quick pass with the scaled-down machine
//	experiments -only fig8,table2
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ssp/internal/exp"
	"ssp/internal/sim"
)

func main() {
	var (
		scale = flag.String("scale", "paper", "experiment scale: paper or test")
		only  = flag.String("only", "", "comma-separated subset: fig2,table2,fig8,fig9,fig10,sec45,ablations")
	)
	flag.Parse()
	sc := exp.ScalePaper
	if *scale == "test" {
		sc = exp.ScaleTest
	}
	wanted := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			wanted[strings.TrimSpace(k)] = true
		}
	}
	want := func(k string) bool { return len(wanted) == 0 || wanted[k] }

	s := exp.NewSuite(sc)
	if err := run(s, want); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(s *exp.Suite, want func(string) bool) error {
	f2 := func(v float64) string { return fmt.Sprintf("%.2f", v) }
	if want("fig2") {
		rows, err := s.Figure2()
		if err != nil {
			return err
		}
		var cells [][]string
		var pmIO, pdIO, pmOOO, pdOOO []float64
		for _, r := range rows {
			cells = append(cells, []string{r.Bench, f2(r.PerfMemIO), f2(r.PerfDelIO), f2(r.PerfMemOOO), f2(r.PerfDelOOO)})
			pmIO = append(pmIO, r.PerfMemIO)
			pdIO = append(pdIO, r.PerfDelIO)
			pmOOO = append(pmOOO, r.PerfMemOOO)
			pdOOO = append(pdOOO, r.PerfDelOOO)
		}
		cells = append(cells, []string{"average", f2(exp.Mean(pmIO)), f2(exp.Mean(pdIO)), f2(exp.Mean(pmOOO)), f2(exp.Mean(pdOOO))})
		fmt.Println("Figure 2: speedup with perfect memory vs. delinquent loads always hitting L1")
		fmt.Println(exp.FormatTable(
			[]string{"bench", "io perfect-mem", "io perfect-del", "ooo perfect-mem", "ooo perfect-del"}, cells))
	}
	if want("table2") {
		rows, err := s.Table2()
		if err != nil {
			return err
		}
		var cells [][]string
		for _, r := range rows {
			cells = append(cells, []string{r.Bench, fmt.Sprint(r.Slices), fmt.Sprint(r.Interproc),
				fmt.Sprintf("%.1f", r.AvgSize), fmt.Sprintf("%.1f", r.AvgLiveIns)})
		}
		fmt.Println("Table 2: slice characteristics")
		fmt.Println(exp.FormatTable([]string{"bench", "slices", "interproc", "avg size", "avg live-ins"}, cells))
	}
	if want("fig8") {
		rows, err := s.Figure8()
		if err != nil {
			return err
		}
		var cells [][]string
		var a, b, c []float64
		for _, r := range rows {
			cells = append(cells, []string{r.Bench, f2(r.InOrderSSP), f2(r.OOO), f2(r.OOOSSP)})
			a = append(a, r.InOrderSSP)
			b = append(b, r.OOO)
			c = append(c, r.OOOSSP)
		}
		cells = append(cells, []string{"average", f2(exp.Mean(a)), f2(exp.Mean(b)), f2(exp.Mean(c))})
		fmt.Println("Figure 8: speedups over the baseline in-order model")
		fmt.Println(exp.FormatTable([]string{"bench", "in-order+SSP", "OOO", "OOO+SSP"}, cells))
		fmt.Printf("in-order SSP average speedup: %+.0f%%   SSP on OOO average: %+.0f%%\n\n",
			100*(exp.Mean(a)-1), 100*(exp.Mean(c)/exp.Mean(b)-1))
	}
	if want("fig9") {
		rows, err := s.Figure9()
		if err != nil {
			return err
		}
		fmt.Println("Figure 9: where delinquent loads are satisfied when missing L1")
		header := []string{"bench", "config", "L1 missrate", "L2", "L2 part", "L3", "L3 part", "Mem", "Mem part"}
		var cells [][]string
		for _, r := range rows {
			for _, c := range r.Configs {
				pc := func(k string) string { return fmt.Sprintf("%.0f%%", 100*c.Share[k]) }
				cells = append(cells, []string{r.Bench, c.Label, fmt.Sprintf("%.3f", c.L1MissRate),
					pc("L2"), pc("L2 partial"), pc("L3"), pc("L3 partial"), pc("Mem"), pc("Mem partial")})
			}
		}
		fmt.Println(exp.FormatTable(header, cells))
	}
	if want("fig10") {
		rows, err := s.Figure10()
		if err != nil {
			return err
		}
		fmt.Println("Figure 10: cycle breakdown normalized to the baseline in-order cycles")
		header := []string{"bench", "config", "total"}
		for cat := sim.Category(0); cat < sim.NumCategories; cat++ {
			header = append(header, cat.String())
		}
		var cells [][]string
		for _, r := range rows {
			for _, c := range r.Configs {
				row := []string{r.Bench, c.Label, fmt.Sprintf("%.2f", c.Total)}
				for cat := sim.Category(0); cat < sim.NumCategories; cat++ {
					row = append(row, fmt.Sprintf("%.2f", c.Norm[cat]))
				}
				cells = append(cells, row)
			}
		}
		fmt.Println(exp.FormatTable(header, cells))
	}
	if want("sec45") {
		rows, err := s.Section45()
		if err != nil {
			return err
		}
		fmt.Println("Section 4.5: automatic vs. hand adaptation")
		var cells [][]string
		for _, r := range rows {
			cells = append(cells, []string{r.Bench, r.Model, f2(r.AutoSpeedup), f2(r.HandSpeedup),
				fmt.Sprintf("%.0f%%", r.LossPct)})
		}
		fmt.Println(exp.FormatTable([]string{"bench", "model", "auto speedup", "hand speedup", "tool loss"}, cells))
	}
	if want("ablations") {
		rows, err := s.Ablations(nil)
		if err != nil {
			return err
		}
		fmt.Println("Ablations: in-order speedup with each design choice disabled")
		var cells [][]string
		for _, r := range rows {
			cells = append(cells, []string{r.Bench, string(r.Variant), f2(r.Speedup)})
		}
		fmt.Println(exp.FormatTable([]string{"bench", "variant", "speedup"}, cells))
	}
	return nil
}
