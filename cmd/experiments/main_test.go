package main

import (
	"strings"
	"testing"

	"ssp/internal/exp"
)

func TestParseScale(t *testing.T) {
	if sc, err := parseScale("paper"); err != nil || sc != exp.ScalePaper {
		t.Fatalf("paper: %v %v", sc, err)
	}
	if sc, err := parseScale("test"); err != nil || sc != exp.ScaleTest {
		t.Fatalf("test: %v %v", sc, err)
	}
	if _, err := parseScale("tset"); err == nil {
		t.Fatal("accepted a typoed -scale")
	} else if !strings.Contains(err.Error(), "paper") {
		t.Fatalf("error does not list valid scales: %v", err)
	}
}

func TestParseOnly(t *testing.T) {
	w, err := parseOnly("")
	if err != nil || len(w) != 0 {
		t.Fatalf("empty: %v %v", w, err)
	}
	w, err = parseOnly("fig8, table2")
	if err != nil || !w["fig8"] || !w["table2"] || len(w) != 2 {
		t.Fatalf("subset: %v %v", w, err)
	}
	// A typoed key must fail loudly instead of printing nothing and
	// exiting 0.
	if _, err := parseOnly("fig88"); err == nil {
		t.Fatal("accepted a typoed -only key")
	} else if !strings.Contains(err.Error(), "ablations") {
		t.Fatalf("error does not list valid keys: %v", err)
	}
	if _, err := parseOnly("fig8,bogus"); err == nil {
		t.Fatal("accepted a typoed key hidden in a valid list")
	}
}

func TestRunSubsetSmoke(t *testing.T) {
	s := exp.NewSuite(exp.ScaleTest)
	if err := emit(s, func(k string) bool { return k == "table2" }, false); err != nil {
		t.Fatal(err)
	}
}
