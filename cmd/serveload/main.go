// Command serveload drives sspserved's job API under concurrency and checks
// the answers: it submits many adapt+simulate jobs (cycling over the full
// benchmark × model × {base,ssp} matrix), validates every result against the
// pinned golden-stats baseline, and reports throughput, latency quantiles,
// and the memoization hit rate.
//
// With -addr empty (the default) it spins up an in-process server, so
// `go run ./cmd/serveload` is a self-contained load test; point -addr at a
// running sspserved to exercise a real deployment. A fraction of the jobs
// (-sse-every) use the SSE streaming path to keep it honest under load.
//
// Usage:
//
//	serveload -jobs 2500 -conc 32 -out BENCH_serve.json
//
// Exit status is non-zero if any request failed, any result diverged from
// the golden baseline, or the hit rate did not clear 50% — the acceptance
// bar for the serving layer.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ssp/internal/serve"
	"ssp/internal/sim"
	"ssp/internal/workloads"
)

// options bundles the command-line parameters of one serveload invocation.
type options struct {
	Addr     string
	Jobs     int
	Conc     int
	SSEEvery int
	Golden   string
	Out      string
}

func main() {
	var o options
	flag.StringVar(&o.Addr, "addr", "", "server address (empty = start an in-process server)")
	flag.IntVar(&o.Jobs, "jobs", 2500, "total jobs to submit")
	flag.IntVar(&o.Conc, "conc", 32, "concurrent clients")
	flag.IntVar(&o.SSEEvery, "sse-every", 50, "every Nth job streams over SSE (0 = never)")
	flag.StringVar(&o.Golden, "golden", "internal/exp/testdata/golden_stats.json",
		"golden-stats baseline to validate results against (empty = skip validation)")
	flag.StringVar(&o.Out, "out", "", "write the benchmark report JSON here")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "serveload:", err)
		os.Exit(1)
	}
}

// goldenCell is the validated stat subset, field-compatible with both the
// golden baseline file and the server's result payload.
type goldenCell struct {
	Cycles      int64
	Breakdown   [sim.NumCategories]int64
	MainInstrs  int64
	SpecInstrs  int64
	Spawns      int64
	ChkTaken    int64
	Mispredicts int64
	MemAccesses uint64
	MemL1Hits   uint64
	MissCycles  uint64
	TLBMisses   uint64
}

// jobCase is one cell of the load mix.
type jobCase struct {
	name string // golden key: bench/model/variant
	spec serve.JobSpec
}

// report is the BENCH_serve.json shape.
type report struct {
	Jobs        int     `json:"jobs"`
	Concurrency int     `json:"concurrency"`
	WallSec     float64 `json:"wall_sec"`
	JobsPerSec  float64 `json:"jobs_per_sec"`
	Failures    int64   `json:"failures"`
	Mismatches  int64   `json:"mismatches"`
	Validated   int64   `json:"validated"`
	Hits        int64   `json:"hits"`
	HitRate     float64 `json:"hit_rate"`
	Retries429  int64   `json:"retries_429"`
	LatencyMS   struct {
		P50 float64 `json:"p50"`
		P95 float64 `json:"p95"`
		P99 float64 `json:"p99"`
		Max float64 `json:"max"`
	} `json:"latency_ms"`
	Server serve.Stats `json:"server"`
}

func run(o options) error {
	addr := o.Addr
	if addr == "" {
		// In-process server: same binary, loopback socket, real HTTP.
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		defer ln.Close()
		srv := serve.New(serve.Config{Queue: 4 * o.Conc})
		go http.Serve(ln, srv)
		addr = ln.Addr().String()
	}
	base := "http://" + addr

	var golden map[string]goldenCell
	if o.Golden != "" {
		data, err := os.ReadFile(o.Golden)
		if err != nil {
			return fmt.Errorf("golden baseline: %w (run from the repo root, or pass -golden '')", err)
		}
		if err := json.Unmarshal(data, &golden); err != nil {
			return fmt.Errorf("golden baseline: %w", err)
		}
	}

	cases := matrix()
	var (
		failures, mismatches, validated, hits, retries atomic.Int64
		mu                                             sync.Mutex
		latencies                                      []time.Duration
		firstErrs                                      []string
	)
	client := &http.Client{Timeout: 5 * time.Minute}
	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < o.Conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				c := cases[i%len(cases)]
				sse := o.SSEEvery > 0 && i%o.SSEEvery == o.SSEEvery-1
				t0 := time.Now()
				resp, err := submit(client, base, c.spec, sse, &retries)
				lat := time.Since(t0)
				if err != nil {
					if failures.Add(1) <= 5 {
						mu.Lock()
						firstErrs = append(firstErrs, fmt.Sprintf("%s: %v", c.name, err))
						mu.Unlock()
					}
					continue
				}
				if resp.Cached {
					hits.Add(1)
				}
				if golden != nil {
					want, ok := golden[c.name]
					var got goldenCell
					remarshal(resp.Result, &got)
					if !ok || !reflect.DeepEqual(got, want) {
						if mismatches.Add(1) <= 5 {
							mu.Lock()
							firstErrs = append(firstErrs, fmt.Sprintf("%s: result diverged from golden baseline", c.name))
							mu.Unlock()
						}
					} else {
						validated.Add(1)
					}
				}
				mu.Lock()
				latencies = append(latencies, lat)
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < o.Jobs; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	wall := time.Since(start)

	var rep report
	rep.Jobs = o.Jobs
	rep.Concurrency = o.Conc
	rep.WallSec = wall.Seconds()
	rep.JobsPerSec = float64(o.Jobs) / wall.Seconds()
	rep.Failures = failures.Load()
	rep.Mismatches = mismatches.Load()
	rep.Validated = validated.Load()
	rep.Hits = hits.Load()
	rep.HitRate = float64(rep.Hits) / float64(o.Jobs)
	rep.Retries429 = retries.Load()
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	rep.LatencyMS.P50 = quantileMS(latencies, 0.50)
	rep.LatencyMS.P95 = quantileMS(latencies, 0.95)
	rep.LatencyMS.P99 = quantileMS(latencies, 0.99)
	rep.LatencyMS.Max = quantileMS(latencies, 1)
	if err := fetchJSON(client, base+"/statz", &rep.Server); err != nil {
		return fmt.Errorf("statz: %w", err)
	}

	out, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Println(string(out))
	if o.Out != "" {
		if err := os.WriteFile(o.Out, append(out, '\n'), 0o644); err != nil {
			return err
		}
	}
	for _, e := range firstErrs {
		fmt.Fprintln(os.Stderr, "serveload:", e)
	}
	switch {
	case rep.Failures > 0:
		return fmt.Errorf("%d requests failed", rep.Failures)
	case rep.Mismatches > 0:
		return fmt.Errorf("%d results diverged from the golden baseline", rep.Mismatches)
	case rep.HitRate <= 0.5:
		return fmt.Errorf("hit rate %.2f did not clear 0.5", rep.HitRate)
	}
	return nil
}

// matrix is the load mix: the full golden matrix, benchmark × model ×
// {base, ssp} at test scale, named by golden-file key.
func matrix() []jobCase {
	var cases []jobCase
	for _, spec := range workloads.All() {
		for _, model := range []string{"in-order", "ooo"} {
			for _, variant := range []string{"base", "ssp"} {
				cases = append(cases, jobCase{
					name: fmt.Sprintf("%s/%s/%s", spec.Name, model, variant),
					spec: serve.JobSpec{Bench: spec.Name, Model: model, Variant: variant, Scale: "test"},
				})
			}
		}
	}
	return cases
}

// submit runs one job, retrying 429 rejections with backoff (capacity
// rejections are flow control, not failures — but they are counted).
func submit(client *http.Client, base string, spec serve.JobSpec, sse bool, retries *atomic.Int64) (*serve.JobResponse, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest("POST", base+"/jobs", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		if sse {
			req.Header.Set("Accept", "text/event-stream")
		}
		resp, err := client.Do(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			resp.Body.Close()
			if attempt >= 200 {
				return nil, fmt.Errorf("still at capacity after %d retries", attempt)
			}
			retries.Add(1)
			time.Sleep(time.Duration(1+attempt%10) * 5 * time.Millisecond)
			continue
		}
		defer resp.Body.Close()
		if sse {
			return readSSE(resp)
		}
		if resp.StatusCode != http.StatusOK {
			msg, _ := bufio.NewReader(resp.Body).ReadString('\n')
			return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(msg))
		}
		var jr serve.JobResponse
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			return nil, err
		}
		return &jr, nil
	}
}

// readSSE consumes a streaming response until its terminal event and returns
// the result (or the in-stream error).
func readSSE(resp *http.Response) (*serve.JobResponse, error) {
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("SSE: HTTP %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "result":
				var jr serve.JobResponse
				if err := json.Unmarshal([]byte(data), &jr); err != nil {
					return nil, err
				}
				return &jr, nil
			case "error":
				var e struct {
					Status int    `json:"status"`
					Error  string `json:"error"`
				}
				if err := json.Unmarshal([]byte(data), &e); err != nil {
					return nil, err
				}
				return nil, fmt.Errorf("HTTP %d (streamed): %s", e.Status, e.Error)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("SSE stream ended without a terminal event")
}

func fetchJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// remarshal copies the golden-comparable subset of a result through JSON,
// which is exactly the representation the baseline file pins.
func remarshal(from, to any) {
	data, err := json.Marshal(from)
	if err == nil {
		err = json.Unmarshal(data, to)
	}
	if err != nil {
		panic(err)
	}
}

func quantileMS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i]) / float64(time.Millisecond)
}
