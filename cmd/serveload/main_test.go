package main

import (
	"path/filepath"
	"testing"
	"time"
)

// TestRunInProcess drives the load harness end to end against its own
// in-process server: every result must validate against the golden baseline
// and the memoization hit rate must clear the acceptance bar (run returns an
// error otherwise). 144 jobs = 3 laps over the 48-cell matrix, so 2/3 of the
// requests are guaranteed cache hits.
func TestRunInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("drives 144 jobs over the full benchmark matrix")
	}
	o := options{
		Jobs:     144,
		Conc:     8,
		SSEEvery: 10,
		Golden:   filepath.Join("..", "..", "internal", "exp", "testdata", "golden_stats.json"),
		Out:      filepath.Join(t.TempDir(), "serve.json"),
	}
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

// TestQuantileMS pins the quantile helper's edge cases.
func TestQuantileMS(t *testing.T) {
	if got := quantileMS(nil, 0.5); got != 0 {
		t.Errorf("quantile of empty = %v", got)
	}
	sorted := []int64{1, 2, 3, 4}
	var ds []time.Duration
	for _, ms := range sorted {
		ds = append(ds, time.Duration(ms)*time.Millisecond)
	}
	if got := quantileMS(ds, 0.5); got != 2 {
		t.Errorf("p50 of 1..4ms = %v, want 2", got)
	}
	if got := quantileMS(ds, 1); got != 4 {
		t.Errorf("p100 of 1..4ms = %v, want 4", got)
	}
	if got := quantileMS(ds, 0.01); got != 1 {
		t.Errorf("p1 of 1..4ms = %v, want 1 (clamped)", got)
	}
}
