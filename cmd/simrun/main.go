// Command simrun executes a binary on one of the research Itanium machine
// models and reports cycles, IPC, the Figure 10 cycle breakdown, SSP thread
// statistics, and optionally the per-load cache profile.
//
// Usage:
//
//	simrun -in prog.ssp -model in-order
//	simrun -bench mcf -model ooo -loads
//	simrun -bench mcf -check
//
// On watchdog expiry the collected statistics are still printed (marked
// partial) and the command exits non-zero.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"ssp/internal/check"
	"ssp/internal/cliutil"
	"ssp/internal/ir"
	"ssp/internal/sim"
	"ssp/internal/sim/mem"
	"ssp/internal/workloads"
)

// options bundles the command-line parameters of one simrun invocation.
type options struct {
	In, Bench   string
	Scale       int
	Model       string
	Tiny, Loads bool
	// Check runs the internal/check validation layers: a differential run
	// across the interpreter and both cycle models before simulating, and
	// the conservation invariants on the reported result.
	Check bool
	// MaxCycles overrides the watchdog when positive.
	MaxCycles int64
}

func main() {
	var o options
	flag.StringVar(&o.In, "in", "", "input assembly file")
	flag.StringVar(&o.Bench, "bench", "", "built-in benchmark name")
	flag.IntVar(&o.Scale, "scale", 0, "benchmark scale (0 = default)")
	flag.StringVar(&o.Model, "model", "in-order", "machine model: in-order or ooo")
	flag.BoolVar(&o.Tiny, "tiny", false, "use the scaled-down test memory system")
	flag.BoolVar(&o.Loads, "loads", false, "print the per-static-load cache profile")
	flag.BoolVar(&o.Check, "check", false, "validate the run with the internal/check layers")
	flag.Int64Var(&o.MaxCycles, "maxcycles", 0, "watchdog cycle limit (0 = model default)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "simrun:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	p, want, err := cliutil.LoadProgram(o.In, o.Bench, o.Scale)
	if err != nil {
		return err
	}
	cfg, err := cliutil.MachineConfig(o.Model, o.Tiny)
	if err != nil {
		return err
	}
	if o.MaxCycles > 0 {
		cfg.MaxCycles = o.MaxCycles
	}
	if o.Check {
		if err := check.Differential(check.Configs(o.Tiny), p, 1_000_000_000); err != nil {
			return err
		}
		fmt.Println("check:        differential + conservation layers passed")
	}
	img, err := ir.Link(p)
	if err != nil {
		return err
	}
	m := sim.New(cfg, img)
	res, err := m.Run()
	if err != nil {
		return err
	}
	if o.Bench != "" && !res.TimedOut && !res.MainKilled {
		// Benchmark programs carry an expected checksum; a mismatch means
		// the run (or an adaptation applied to it) corrupted architectural
		// state, exactly what Suite.Run guards against in the experiments.
		if got := m.Mem.Load(workloads.ResultAddr); got != want {
			return fmt.Errorf("%s: checksum %d, want %d", o.Bench, got, want)
		}
		fmt.Printf("checksum:     %d (verified)\n", want)
	}
	printStats(cfg, res, o.Loads)
	if res.TimedOut {
		return fmt.Errorf("watchdog expired after %d cycles (statistics above are partial)", res.Cycles)
	}
	if res.MainKilled {
		return fmt.Errorf("main thread executed thread_kill_self (statistics above are partial)")
	}
	if o.Check {
		if err := check.Conservation(res); err != nil {
			return err
		}
	}
	return nil
}

func printStats(cfg sim.Config, res *sim.Result, loads bool) {
	fmt.Printf("model:        %s\n", cfg.Model)
	if res.TimedOut {
		fmt.Printf("TIMED OUT:    statistics below are partial\n")
	}
	fmt.Printf("cycles:       %d\n", res.Cycles)
	fmt.Printf("instructions: %d main, %d speculative\n", res.MainInstrs, res.SpecInstrs)
	fmt.Printf("ipc:          %.3f\n", res.IPC())
	fmt.Printf("mispredicts:  %d\n", res.Mispredicts)
	fmt.Printf("ssp:          %d chk taken, %d spawns, %d ignored\n", res.ChkTaken, res.Spawns, res.SpawnsIgnored)
	if res.Hier.PrefetchIssued > 0 {
		fmt.Printf("prefetch:     %d issued, %d useful (accuracy %.2f), %d dropped\n",
			res.Hier.PrefetchIssued, res.Hier.PrefetchUseful,
			res.Hier.PrefetchAccuracy(), res.Hier.DroppedPrefetches)
	}
	if len(res.SpecActiveHist) > 0 && res.Spawns > 0 {
		fmt.Printf("spec contexts active (cycles): ")
		for k, c := range res.SpecActiveHist {
			fmt.Printf("%d:%d ", k, c)
		}
		fmt.Println()
	}
	if res.Cycles > 0 {
		fmt.Printf("breakdown:\n")
		for cat := sim.Category(0); cat < sim.NumCategories; cat++ {
			fmt.Printf("  %-11s %12d (%5.1f%%)\n", cat, res.Breakdown[cat],
				100*float64(res.Breakdown[cat])/float64(res.Cycles))
		}
	}
	if loads {
		type row struct {
			id int
			s  *mem.LoadStat
		}
		var rows []row
		for id, s := range res.Hier.ByLoad() {
			rows = append(rows, row{id, s})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].s.MissCycles > rows[j].s.MissCycles })
		fmt.Printf("loads (by miss cycles):\n")
		for i, r := range rows {
			if i >= 20 {
				break
			}
			fmt.Printf("  id=%-5d acc=%-9d missrate=%.3f misscycles=%-10d L2=%d/%d L3=%d/%d Mem=%d/%d\n",
				r.id, r.s.Accesses, r.s.L1MissRate(), r.s.MissCycles,
				r.s.Hits[mem.L2][0], r.s.Hits[mem.L2][1],
				r.s.Hits[mem.L3][0], r.s.Hits[mem.L3][1],
				r.s.Hits[mem.Mem][0], r.s.Hits[mem.Mem][1])
		}
	}
}
