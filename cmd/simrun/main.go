// Command simrun executes a binary on one of the research Itanium machine
// models and reports cycles, IPC, the Figure 10 cycle breakdown, SSP thread
// statistics, and optionally the per-load cache profile.
//
// Usage:
//
//	simrun -in prog.ssp -model in-order
//	simrun -bench mcf -model ooo -loads
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"ssp/internal/cliutil"
	"ssp/internal/ir"
	"ssp/internal/sim"
	"ssp/internal/sim/mem"
	"ssp/internal/workloads"
)

func main() {
	var (
		in    = flag.String("in", "", "input assembly file")
		bench = flag.String("bench", "", "built-in benchmark name")
		scale = flag.Int("scale", 0, "benchmark scale (0 = default)")
		model = flag.String("model", "in-order", "machine model: in-order or ooo")
		tiny  = flag.Bool("tiny", false, "use the scaled-down test memory system")
		loads = flag.Bool("loads", false, "print the per-static-load cache profile")
	)
	flag.Parse()
	if err := run(*in, *bench, *scale, *model, *tiny, *loads); err != nil {
		fmt.Fprintln(os.Stderr, "simrun:", err)
		os.Exit(1)
	}
}

func run(in, bench string, scale int, model string, tiny, loads bool) error {
	p, want, err := cliutil.LoadProgram(in, bench, scale)
	if err != nil {
		return err
	}
	cfg, err := cliutil.MachineConfig(model, tiny)
	if err != nil {
		return err
	}
	img, err := ir.Link(p)
	if err != nil {
		return err
	}
	m := sim.New(cfg, img)
	res, err := m.Run()
	if err != nil {
		return err
	}
	if res.TimedOut {
		return fmt.Errorf("watchdog expired after %d cycles", res.Cycles)
	}
	if bench != "" {
		// Benchmark programs carry an expected checksum; a mismatch means
		// the run (or an adaptation applied to it) corrupted architectural
		// state, exactly what Suite.Run guards against in the experiments.
		if got := m.Mem.Load(workloads.ResultAddr); got != want {
			return fmt.Errorf("%s: checksum %d, want %d", bench, got, want)
		}
		fmt.Printf("checksum:     %d (verified)\n", want)
	}
	fmt.Printf("model:        %s\n", cfg.Model)
	fmt.Printf("cycles:       %d\n", res.Cycles)
	fmt.Printf("instructions: %d main, %d speculative\n", res.MainInstrs, res.SpecInstrs)
	fmt.Printf("ipc:          %.3f\n", res.IPC())
	fmt.Printf("mispredicts:  %d\n", res.Mispredicts)
	fmt.Printf("ssp:          %d chk taken, %d spawns, %d ignored\n", res.ChkTaken, res.Spawns, res.SpawnsIgnored)
	if res.Hier.PrefetchIssued > 0 {
		fmt.Printf("prefetch:     %d issued, %d useful (accuracy %.2f), %d dropped\n",
			res.Hier.PrefetchIssued, res.Hier.PrefetchUseful,
			res.Hier.PrefetchAccuracy(), res.Hier.DroppedPrefetches)
	}
	if len(res.SpecActiveHist) > 0 && res.Spawns > 0 {
		fmt.Printf("spec contexts active (cycles): ")
		for k, c := range res.SpecActiveHist {
			fmt.Printf("%d:%d ", k, c)
		}
		fmt.Println()
	}
	fmt.Printf("breakdown:\n")
	for cat := sim.Category(0); cat < sim.NumCategories; cat++ {
		fmt.Printf("  %-11s %12d (%5.1f%%)\n", cat, res.Breakdown[cat],
			100*float64(res.Breakdown[cat])/float64(res.Cycles))
	}
	if loads {
		type row struct {
			id int
			s  *mem.LoadStat
		}
		var rows []row
		for id, s := range res.Hier.ByLoad {
			rows = append(rows, row{id, s})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].s.MissCycles > rows[j].s.MissCycles })
		fmt.Printf("loads (by miss cycles):\n")
		for i, r := range rows {
			if i >= 20 {
				break
			}
			fmt.Printf("  id=%-5d acc=%-9d missrate=%.3f misscycles=%-10d L2=%d/%d L3=%d/%d Mem=%d/%d\n",
				r.id, r.s.Accesses, r.s.L1MissRate(), r.s.MissCycles,
				r.s.Hits[mem.L2][0], r.s.Hits[mem.L2][1],
				r.s.Hits[mem.L3][0], r.s.Hits[mem.L3][1],
				r.s.Hits[mem.Mem][0], r.s.Hits[mem.Mem][1])
		}
	}
	return nil
}
