package main

import (
	"os"
	"path/filepath"
	"testing"

	"ssp/internal/ir"
	"ssp/internal/workloads"
)

func TestSimrunOnBenchAndFile(t *testing.T) {
	if err := run("", "mcf", 500, "in-order", true, true); err != nil {
		t.Fatal(err)
	}
	spec, _ := workloads.ByName("vpr")
	p, _ := spec.Build(512)
	path := filepath.Join(t.TempDir(), "vpr.ssp")
	if err := os.WriteFile(path, []byte(ir.Format(p)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "", 0, "ooo", true, false); err != nil {
		t.Fatal(err)
	}
}

func TestSimrunErrors(t *testing.T) {
	if err := run("", "", 0, "in-order", true, false); err == nil {
		t.Fatal("accepted no input")
	}
	if err := run("", "mcf", 400, "bogus", true, false); err == nil {
		t.Fatal("accepted bogus model")
	}
}
