package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ssp/internal/ir"
	"ssp/internal/workloads"
)

func TestSimrunOnBenchAndFile(t *testing.T) {
	if err := run(options{Bench: "mcf", Scale: 500, Model: "in-order", Tiny: true, Loads: true}); err != nil {
		t.Fatal(err)
	}
	spec, _ := workloads.ByName("vpr")
	p, _ := spec.Build(512)
	path := filepath.Join(t.TempDir(), "vpr.ssp")
	if err := os.WriteFile(path, []byte(ir.Format(p)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(options{In: path, Model: "ooo", Tiny: true}); err != nil {
		t.Fatal(err)
	}
}

func TestSimrunCheckLayer(t *testing.T) {
	if err := run(options{Bench: "mcf", Scale: 500, Model: "in-order", Tiny: true, Check: true}); err != nil {
		t.Fatal(err)
	}
}

// TestSimrunWatchdog: on watchdog expiry simrun must exit non-zero but
// still report the partial statistics it collected (the sim.RunProgram
// contract of a non-nil Result alongside the error, surfaced to the CLI).
func TestSimrunWatchdog(t *testing.T) {
	err := run(options{Bench: "mcf", Scale: 500, Model: "in-order", Tiny: true, MaxCycles: 100})
	if err == nil {
		t.Fatal("watchdog expiry did not error")
	}
	if !strings.Contains(err.Error(), "partial") {
		t.Fatalf("error does not point at the partial statistics: %v", err)
	}
}

func TestSimrunErrors(t *testing.T) {
	if err := run(options{Model: "in-order", Tiny: true}); err == nil {
		t.Fatal("accepted no input")
	}
	if err := run(options{Bench: "mcf", Scale: 400, Model: "bogus", Tiny: true}); err == nil {
		t.Fatal("accepted bogus model")
	}
}
