// Command sspcheck is the fuzzing front-end of the internal/check validation
// subsystem. Each seed deterministically generates a random pointer-chasing
// program (workloads.RandomProgram), runs it through the cross-engine
// differential layer, adapts it with a seed-derived SSP option mix, and runs
// the adapted binary through the differential and metamorphic layers; every
// simulation result also passes the conservation invariants.
//
// Usage:
//
//	sspcheck -seeds 32         # seeds 0..31
//	sspcheck -seed 17 -v       # reproduce one failure
//	sspcheck -seeds 64 -full   # Table 1 memory system instead of tiny
//	sspcheck -seeds 16 -predecode    # predecode-equivalence sweep instead
//	sspcheck -seeds 500 -fastforward # fast-forward-equivalence sweep instead
//	sspcheck -seeds 200 -hotpath     # hot-path/machine-reuse sweep instead
//	sspcheck -seeds 32 -safety       # speculation-safety sweep instead
//	sspcheck -seeds 200 -threaded    # threaded-core-equivalence sweep instead
//
// A violation prints its seed and exits non-zero; rerunning with -seed N
// reproduces it exactly.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ssp/internal/check"
	"ssp/internal/cliutil"
)

// options selects what one sweep runs.
type options struct {
	seeds, start int64
	seed         int64 // >= 0 checks that single seed instead
	full         bool
	predecode    bool
	fastforward  bool
	hotpath      bool
	safety       bool
	threaded     bool
	verbose      bool
}

// sweep runs the selected check layer over the seed range and returns how
// many seeds were checked and how many failed. Progress goes to out,
// violations to errw.
func sweep(o options, out, errw io.Writer) (total int64, failures int) {
	cfgs := check.Configs(!o.full)
	checkSeed := check.Seed
	layers := "all three layers"
	switch {
	case o.predecode:
		checkSeed = check.PredecodeSeed
		layers = "the predecode-equivalence layer"
	case o.fastforward:
		checkSeed = check.FastForwardSeed
		layers = "the fast-forward-equivalence layer"
	case o.hotpath:
		checkSeed = check.HotPathSeed
		layers = "the hot-path-equivalence layer"
	case o.safety:
		checkSeed = check.SafetySeed
		layers = "the speculation-safety layer"
	case o.threaded:
		checkSeed = check.ThreadedSeed
		layers = "the threaded-core-equivalence layer"
	}

	lo, hi := o.start, o.start+o.seeds
	if o.seed >= 0 {
		lo, hi = o.seed, o.seed+1
	}
	for s := lo; s < hi; s++ {
		if err := checkSeed(s, cfgs); err != nil {
			failures++
			fmt.Fprintln(errw, "sspcheck: FAIL", err)
			continue
		}
		if o.verbose {
			fmt.Fprintf(out, "seed %d: ok\n", s)
		}
	}
	total = hi - lo
	if failures == 0 {
		fmt.Fprintf(out, "sspcheck: %d seeds passed %s\n", total, layers)
	}
	return total, failures
}

func main() {
	var o options
	flag.Int64Var(&o.seeds, "seeds", 32, "number of seeds to sweep, starting at -start")
	flag.Int64Var(&o.start, "start", 0, "first seed of the sweep")
	flag.Int64Var(&o.seed, "seed", -1, "check a single seed (overrides -seeds)")
	flag.BoolVar(&o.full, "full", false, "use the full Table 1 memory system instead of the test sizing")
	flag.BoolVar(&o.predecode, "predecode", false, "run the predecode-equivalence layer per seed instead of the differential/metamorphic layers")
	flag.BoolVar(&o.fastforward, "fastforward", false, "run the fast-forward-equivalence layer per seed instead of the differential/metamorphic layers")
	flag.BoolVar(&o.hotpath, "hotpath", false, "run the hot-path-equivalence layer (machine reuse vs fresh machines) per seed instead of the differential/metamorphic layers")
	flag.BoolVar(&o.safety, "safety", false, "run the speculation-safety layer (static budget certificates, dynamic budget oracle, adversarial mutants) per seed instead of the differential/metamorphic layers")
	flag.BoolVar(&o.threaded, "threaded", false, "run the threaded-core-equivalence layer (closure-threaded chains vs table dispatch) per seed instead of the differential/metamorphic layers")
	flag.BoolVar(&o.verbose, "v", false, "print each seed as it passes")
	cpuProf := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memProf := flag.String("memprofile", "", "write an allocation profile of the sweep to this file")
	flag.Parse()
	if err := run(o, *cpuProf, *memProf); err != nil {
		fmt.Fprintln(os.Stderr, "sspcheck:", err)
		os.Exit(1)
	}
}

// run does the whole sweep behind a single error return, so main's os.Exit
// never skips the deferred profile stop (an exit mid-profile truncates the
// CPU profile and loses the heap snapshot entirely).
func run(o options, cpuProf, memProf string) error {
	stopProf, err := cliutil.StartProfiles(cpuProf, memProf)
	if err != nil {
		return err
	}
	defer stopProf()
	total, failures := sweep(o, os.Stdout, os.Stderr)
	if failures > 0 {
		return fmt.Errorf("%d/%d seeds failed", failures, total)
	}
	return nil
}
