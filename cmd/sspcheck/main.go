// Command sspcheck is the fuzzing front-end of the internal/check validation
// subsystem. Each seed deterministically generates a random pointer-chasing
// program (workloads.RandomProgram), runs it through the cross-engine
// differential layer, adapts it with a seed-derived SSP option mix, and runs
// the adapted binary through the differential and metamorphic layers; every
// simulation result also passes the conservation invariants.
//
// Usage:
//
//	sspcheck -seeds 32         # seeds 0..31
//	sspcheck -seed 17 -v       # reproduce one failure
//	sspcheck -seeds 64 -full   # Table 1 memory system instead of tiny
//	sspcheck -seeds 16 -predecode  # predecode-equivalence sweep instead
//
// A violation prints its seed and exits non-zero; rerunning with -seed N
// reproduces it exactly.
package main

import (
	"flag"
	"fmt"
	"os"

	"ssp/internal/check"
	"ssp/internal/cliutil"
)

func main() {
	var (
		seeds     = flag.Int64("seeds", 32, "number of seeds to sweep, starting at -start")
		start     = flag.Int64("start", 0, "first seed of the sweep")
		seed      = flag.Int64("seed", -1, "check a single seed (overrides -seeds)")
		full      = flag.Bool("full", false, "use the full Table 1 memory system instead of the test sizing")
		predecode = flag.Bool("predecode", false, "run the predecode-equivalence layer per seed instead of the differential/metamorphic layers")
		verbose   = flag.Bool("v", false, "print each seed as it passes")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProf   = flag.String("memprofile", "", "write an allocation profile of the sweep to this file")
	)
	flag.Parse()
	stopProf, err := cliutil.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sspcheck:", err)
		os.Exit(2)
	}
	defer stopProf()
	cfgs := check.Configs(!*full)
	checkSeed := check.Seed
	layers := "all three layers"
	if *predecode {
		checkSeed = check.PredecodeSeed
		layers = "the predecode-equivalence layer"
	}

	lo, hi := *start, *start+*seeds
	if *seed >= 0 {
		lo, hi = *seed, *seed+1
	}
	failures := 0
	for s := lo; s < hi; s++ {
		if err := checkSeed(s, cfgs); err != nil {
			failures++
			fmt.Fprintln(os.Stderr, "sspcheck: FAIL", err)
			continue
		}
		if *verbose {
			fmt.Printf("seed %d: ok\n", s)
		}
	}
	n := hi - lo
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "sspcheck: %d/%d seeds failed\n", failures, n)
		stopProf()
		os.Exit(1)
	}
	fmt.Printf("sspcheck: %d seeds passed %s\n", n, layers)
}
