// Command sspcheck is the fuzzing front-end of the internal/check validation
// subsystem. Each seed deterministically generates a random pointer-chasing
// program (workloads.RandomProgram), runs it through the cross-engine
// differential layer, adapts it with a seed-derived SSP option mix, and runs
// the adapted binary through the differential and metamorphic layers; every
// simulation result also passes the conservation invariants.
//
// Usage:
//
//	sspcheck -seeds 32         # seeds 0..31
//	sspcheck -seed 17 -v       # reproduce one failure
//	sspcheck -seeds 64 -full   # Table 1 memory system instead of tiny
//
// A violation prints its seed and exits non-zero; rerunning with -seed N
// reproduces it exactly.
package main

import (
	"flag"
	"fmt"
	"os"

	"ssp/internal/check"
)

func main() {
	var (
		seeds   = flag.Int64("seeds", 32, "number of seeds to sweep, starting at -start")
		start   = flag.Int64("start", 0, "first seed of the sweep")
		seed    = flag.Int64("seed", -1, "check a single seed (overrides -seeds)")
		full    = flag.Bool("full", false, "use the full Table 1 memory system instead of the test sizing")
		verbose = flag.Bool("v", false, "print each seed as it passes")
	)
	flag.Parse()
	cfgs := check.Configs(!*full)

	lo, hi := *start, *start+*seeds
	if *seed >= 0 {
		lo, hi = *seed, *seed+1
	}
	failures := 0
	for s := lo; s < hi; s++ {
		if err := check.Seed(s, cfgs); err != nil {
			failures++
			fmt.Fprintln(os.Stderr, "sspcheck: FAIL", err)
			continue
		}
		if *verbose {
			fmt.Printf("seed %d: ok\n", s)
		}
	}
	n := hi - lo
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "sspcheck: %d/%d seeds failed\n", failures, n)
		os.Exit(1)
	}
	fmt.Printf("sspcheck: %d seeds passed all three layers\n", n)
}
