package main

import (
	"strings"
	"testing"
)

// TestSweepModes smoke-tests every mode of the CLI through the extracted
// sweep function: a short seed range must pass cleanly in the default
// (three-layer), predecode-equivalence, and fast-forward-equivalence modes
// (cmd-level coverage of the wiring; the layers themselves are tested in
// internal/check).
func TestSweepModes(t *testing.T) {
	modes := []struct {
		name string
		o    options
		want string
	}{
		{"default", options{seeds: 4, seed: -1}, "all three layers"},
		{"predecode", options{seeds: 4, seed: -1, predecode: true}, "predecode-equivalence"},
		{"fastforward", options{seeds: 4, seed: -1, fastforward: true}, "fast-forward-equivalence"},
		{"safety", options{seeds: 4, seed: -1, safety: true}, "speculation-safety"},
		{"single-seed", options{seed: 17, verbose: true}, "seed 17: ok"},
	}
	for _, m := range modes {
		m := m
		t.Run(m.name, func(t *testing.T) {
			t.Parallel()
			var out, errw strings.Builder
			total, failures := sweep(m.o, &out, &errw)
			if failures != 0 {
				t.Fatalf("%d/%d seeds failed:\n%s", failures, total, errw.String())
			}
			if want := int64(4); m.o.seed >= 0 {
				want = 1
				if total != want {
					t.Fatalf("checked %d seeds, want %d", total, want)
				}
			} else if total != want {
				t.Fatalf("checked %d seeds, want %d", total, want)
			}
			if !strings.Contains(out.String(), m.want) {
				t.Fatalf("output missing %q:\n%s", m.want, out.String())
			}
		})
	}
}
