// Command sspdot renders a program's analysis structures in Graphviz dot
// syntax: the control-flow graph of a function (with loop annotations), the
// dependence graph of a region — the way the paper draws Figure 3 — or the
// adapted binary's slice portfolio (one cluster per p-slice, rooted at its
// trigger site).
//
// Usage:
//
//	sspdot -bench mcf -func main -what cfg
//	sspdot -in prog.ssp -func main -what dep -block loop > dep.dot
//	sspdot -bench mcf.multi -what slices > portfolio.dot
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ssp/internal/cfg"
	"ssp/internal/cliutil"
	"ssp/internal/dep"
	"ssp/internal/ir"
	"ssp/internal/profile"
	"ssp/internal/sim"
	"ssp/internal/ssp"
)

func main() {
	var (
		in    = flag.String("in", "", "input assembly file")
		bench = flag.String("bench", "", "built-in benchmark name")
		scale = flag.Int("scale", 1000, "benchmark scale")
		fn    = flag.String("func", "main", "function to render")
		what  = flag.String("what", "cfg", "what to render: cfg, dep, or slices")
		block = flag.String("block", "", "for -what dep: restrict to this block's instructions (default: whole function)")
	)
	flag.Parse()
	if err := run(os.Stdout, *in, *bench, *scale, *fn, *what, *block); err != nil {
		fmt.Fprintln(os.Stderr, "sspdot:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, in, bench string, scale int, fnName, what, block string) error {
	p, _, err := cliutil.LoadProgram(in, bench, scale)
	if err != nil {
		return err
	}
	if what == "slices" {
		// Profile and adapt the loaded program, then draw its portfolio.
		// The tiny memory hierarchy makes small -scale runs delinquent, so
		// the rendered portfolio matches what the test-scale suite builds.
		sc := sim.DefaultInOrder()
		sc.UseTinyMem()
		prof, err := profile.Collect(p, sc)
		if err != nil {
			return err
		}
		adapted, rep, err := ssp.Adapt(p, prof, ssp.DefaultOptions(), bench)
		if err != nil {
			return err
		}
		fmt.Fprint(w, slicesDot(adapted, rep))
		return nil
	}
	f := p.FuncByName(fnName)
	if f == nil {
		return fmt.Errorf("function %q not found", fnName)
	}
	g, err := cfg.Build(f)
	if err != nil {
		return err
	}
	dom := cfg.Dominators(g)
	pdom := cfg.Postdominators(g)
	lf := cfg.FindLoops(g, dom)
	switch what {
	case "cfg":
		fmt.Fprint(w, g.Dot(lf))
	case "dep":
		dg := dep.Build(p, f, g, dom, pdom)
		var nodes []int
		if block == "" {
			for n := range dg.Nodes {
				nodes = append(nodes, n)
			}
		} else {
			b := f.BlockByLabel(block)
			if b == nil {
				return fmt.Errorf("block %q not found in %s", block, fnName)
			}
			for _, inr := range b.Instrs {
				if n := dg.NodeByID(inr.ID); n >= 0 {
					nodes = append(nodes, n)
				}
			}
		}
		fmt.Fprint(w, dg.Dot(fnName, nodes))
	default:
		return fmt.Errorf("unknown -what %q (want cfg, dep, or slices)", what)
	}
	return nil
}

// slicesDot renders an adapted binary's slice portfolio: one cluster per
// emitted p-slice, holding the trigger site (the block whose chk.c arms the
// slice) and the attachment blocks the tool appended (the live-in stub and
// the slice bodies), with chk.c, spawn, and branch edges. Independent slices
// render as disjoint clusters, so a multi-phase benchmark shows one box per
// hot region.
func slicesDot(p *ir.Program, rep *ssp.Report) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", "slices: "+rep.Benchmark)
	sb.WriteString("\tnode [shape=box, fontname=\"monospace\"];\n")
	for k, sl := range rep.Slices {
		stubLabel := fmt.Sprintf("ssp_stub_%d", k)
		slicePrefix := fmt.Sprintf("ssp_slice_%d", k)
		member := func(label string) bool {
			return label == stubLabel || label == slicePrefix ||
				strings.HasPrefix(label, slicePrefix+"_")
		}
		node := func(label string) string { return fmt.Sprintf("s%d_%s", k, label) }
		fnName, _, _ := strings.Cut(sl.Trigger, ".")
		fmt.Fprintf(&sb, "\tsubgraph cluster_slice_%d {\n", k)
		fmt.Fprintf(&sb, "\t\tlabel=\"slice %d: %s\\n%s, %d instrs, %d live-ins\";\n",
			k, sl.Region, sl.Model, sl.Size, sl.LiveIns)
		trig := fmt.Sprintf("s%d_trigger", k)
		fmt.Fprintf(&sb, "\t\t%s [label=\"trigger %s\", style=bold];\n", trig, sl.Trigger)
		f := p.FuncByName(fnName)
		if f == nil {
			// A malformed trigger name still yields a self-contained
			// cluster; the trigger node alone marks the gap.
			fmt.Fprintf(&sb, "\t}\n")
			continue
		}
		var blocks []*ir.Block
		for _, b := range f.Blocks {
			if member(b.Label) {
				blocks = append(blocks, b)
				fmt.Fprintf(&sb, "\t\t%s [label=\"%s (%d instrs)\"];\n", node(b.Label), b.Label, len(b.Instrs))
			}
		}
		// The chk.c instruction sits in the trigger block and arms the stub.
		fmt.Fprintf(&sb, "\t\t%s -> %s [label=\"chk.c\", style=dashed];\n", trig, node(stubLabel))
		for _, b := range blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpSpawn:
					if member(in.Target) {
						fmt.Fprintf(&sb, "\t\t%s -> %s [label=\"spawn\", color=blue];\n", node(b.Label), node(in.Target))
					}
				case ir.OpBr:
					if member(in.Target) {
						fmt.Fprintf(&sb, "\t\t%s -> %s;\n", node(b.Label), node(in.Target))
					}
				}
			}
		}
		fmt.Fprintf(&sb, "\t}\n")
	}
	sb.WriteString("}\n")
	return sb.String()
}
