// Command sspdot renders a program's analysis structures in Graphviz dot
// syntax: the control-flow graph of a function (with loop annotations), or
// the dependence graph of a region — the way the paper draws Figure 3.
//
// Usage:
//
//	sspdot -bench mcf -func main -what cfg
//	sspdot -in prog.ssp -func main -what dep -block loop > dep.dot
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ssp/internal/cfg"
	"ssp/internal/cliutil"
	"ssp/internal/dep"
)

func main() {
	var (
		in    = flag.String("in", "", "input assembly file")
		bench = flag.String("bench", "", "built-in benchmark name")
		scale = flag.Int("scale", 1000, "benchmark scale")
		fn    = flag.String("func", "main", "function to render")
		what  = flag.String("what", "cfg", "what to render: cfg or dep")
		block = flag.String("block", "", "for -what dep: restrict to this block's instructions (default: whole function)")
	)
	flag.Parse()
	if err := run(os.Stdout, *in, *bench, *scale, *fn, *what, *block); err != nil {
		fmt.Fprintln(os.Stderr, "sspdot:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, in, bench string, scale int, fnName, what, block string) error {
	p, _, err := cliutil.LoadProgram(in, bench, scale)
	if err != nil {
		return err
	}
	f := p.FuncByName(fnName)
	if f == nil {
		return fmt.Errorf("function %q not found", fnName)
	}
	g, err := cfg.Build(f)
	if err != nil {
		return err
	}
	dom := cfg.Dominators(g)
	pdom := cfg.Postdominators(g)
	lf := cfg.FindLoops(g, dom)
	switch what {
	case "cfg":
		fmt.Fprint(w, g.Dot(lf))
	case "dep":
		dg := dep.Build(p, f, g, dom, pdom)
		var nodes []int
		if block == "" {
			for n := range dg.Nodes {
				nodes = append(nodes, n)
			}
		} else {
			b := f.BlockByLabel(block)
			if b == nil {
				return fmt.Errorf("block %q not found in %s", block, fnName)
			}
			for _, inr := range b.Instrs {
				if n := dg.NodeByID(inr.ID); n >= 0 {
					nodes = append(nodes, n)
				}
			}
		}
		fmt.Fprint(w, dg.Dot(fnName, nodes))
	default:
		return fmt.Errorf("unknown -what %q (want cfg or dep)", what)
	}
	return nil
}
