package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ssp/internal/ir"
	"ssp/internal/profile"
	"ssp/internal/sim"
	"ssp/internal/ssp"
	"ssp/internal/workloads"
)

// checkDot applies structural DOT validation: a digraph header, balanced
// braces, and at least one edge — enough to catch an emitter regression
// without depending on a graphviz binary the CI image may not have.
func checkDot(t *testing.T, out string) {
	t.Helper()
	if !strings.HasPrefix(out, "digraph ") {
		t.Fatalf("output does not start with a digraph header:\n%.200s", out)
	}
	if o, c := strings.Count(out, "{"), strings.Count(out, "}"); o == 0 || o != c {
		t.Fatalf("unbalanced braces (%d open, %d close):\n%.200s", o, c, out)
	}
	if !strings.Contains(out, "->") {
		t.Fatalf("no edges in output:\n%.200s", out)
	}
}

// TestRunBenchmarkGraphs renders both graph kinds for a built-in benchmark.
func TestRunBenchmarkGraphs(t *testing.T) {
	for _, what := range []string{"cfg", "dep"} {
		var out strings.Builder
		if err := run(&out, "", "mcf", 100, "main", what, ""); err != nil {
			t.Fatalf("-what %s: %v", what, err)
		}
		checkDot(t, out.String())
	}
}

// TestRunAdaptedBinary round-trips an SSP-adapted binary through the textual
// assembly (-in) and renders its CFG: the rendered graph must show the
// attachment structure the tool injected — the stub and the p-slice blocks.
func TestRunAdaptedBinary(t *testing.T) {
	spec, err := workloads.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := spec.Build(spec.TestScale)
	cfg := sim.DefaultInOrder()
	cfg.UseTinyMem()
	prof, err := profile.Collect(orig, cfg)
	if err != nil {
		t.Fatal(err)
	}
	adapted, _, err := ssp.Adapt(orig, prof, ssp.DefaultOptions(), "mcf")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "adapted.ssp")
	if err := os.WriteFile(path, []byte(ir.Format(adapted)), 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := run(&out, path, "", 0, "main", "cfg", ""); err != nil {
		t.Fatal(err)
	}
	checkDot(t, out.String())
	for _, label := range []string{"ssp_stub_0", "ssp_slice_0"} {
		if !strings.Contains(out.String(), label) {
			t.Errorf("adapted CFG is missing the %s block", label)
		}
	}

	// Dependence graph of the injected slice body.
	var dout strings.Builder
	if err := run(&dout, path, "", 0, "main", "dep", "ssp_slice_0"); err != nil {
		t.Fatal(err)
	}
	checkDot(t, dout.String())

	// Error paths surface as errors, not DOT on stdout.
	if err := run(&out, path, "", 0, "nosuchfunc", "cfg", ""); err == nil {
		t.Error("run accepted an unknown function")
	}
	if err := run(&out, path, "", 0, "main", "bogus", ""); err == nil {
		t.Error("run accepted an unknown -what")
	}
}

// TestRunSlicePortfolio renders the slice portfolio of a multi-phase
// benchmark: one cluster per independent p-slice, each rooted at its own
// trigger site, with the spawn edges that arm the precomputation.
func TestRunSlicePortfolio(t *testing.T) {
	spec, err := workloads.ByName("mcf.multi")
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run(&out, "", "mcf.multi", spec.TestScale, "main", "slices", ""); err != nil {
		t.Fatal(err)
	}
	dot := out.String()
	checkDot(t, dot)
	if n := strings.Count(dot, "subgraph cluster_slice_"); n < 2 {
		t.Fatalf("multi-phase benchmark rendered %d slice clusters, want >= 2:\n%s", n, dot)
	}
	if !strings.Contains(dot, "spawn") {
		t.Fatalf("no spawn edges in portfolio:\n%s", dot)
	}
	// Each cluster must carry its own trigger site, and the sites must
	// differ: independent slices are armed from different blocks.
	trigs := map[string]bool{}
	for _, line := range strings.Split(dot, "\n") {
		if i := strings.Index(line, "trigger main."); i >= 0 {
			rest := line[i+len("trigger "):]
			if j := strings.IndexAny(rest, "\\\""); j >= 0 {
				rest = rest[:j]
			}
			trigs[rest] = true
		}
	}
	if len(trigs) < 2 {
		t.Fatalf("want >= 2 distinct trigger sites, got %v in:\n%s", trigs, dot)
	}
}
