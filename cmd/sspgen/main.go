// Command sspgen is the post-pass binary adaptation tool: given a program
// and its profile, it emits the SSP-enhanced binary with p-slices attached
// (the tool of Figure 1 and §3).
//
// Usage:
//
//	sspgen -in prog.ssp -profile prog.prof.json -out prog.ssp.enhanced
//	sspgen -bench mcf -out mcf.enhanced   (profiles internally)
package main

import (
	"flag"
	"fmt"
	"os"

	"ssp/internal/cliutil"
	"ssp/internal/ir"
	"ssp/internal/profile"
	"ssp/internal/ssp"
)

func main() {
	var (
		in       = flag.String("in", "", "input assembly file")
		bench    = flag.String("bench", "", "built-in benchmark name")
		scale    = flag.Int("scale", 0, "benchmark scale (0 = default)")
		profPath = flag.String("profile", "", "profile JSON from sspprof (omit to profile internally on the in-order model)")
		tiny     = flag.Bool("tiny", false, "use the scaled-down test memory system when profiling internally")
		out      = flag.String("out", "", "output assembly path (default stdout)")

		cutoff  = flag.Float64("cutoff", 0.9, "delinquent-load miss-cycle coverage cutoff")
		chain   = flag.Bool("chaining", true, "allow chaining SP")
		rotate  = flag.Bool("rotate", true, "enable dependence-reduction scheduling")
		predict = flag.Bool("predict", true, "enable spawn-condition prediction")
		spec    = flag.Bool("speculate", true, "enable control-flow speculative slicing")
	)
	flag.Parse()
	if err := run(*in, *bench, *scale, *profPath, *tiny, *out, *cutoff, *chain, *rotate, *predict, *spec); err != nil {
		fmt.Fprintln(os.Stderr, "sspgen:", err)
		os.Exit(1)
	}
}

func run(in, bench string, scale int, profPath string, tiny bool, out string,
	cutoff float64, chain, rotate, predict, spec bool) error {
	p, _, err := cliutil.LoadProgram(in, bench, scale)
	if err != nil {
		return err
	}
	var pr *profile.Profile
	if profPath != "" {
		f, err := os.Open(profPath)
		if err != nil {
			return err
		}
		pr, err = profile.Load(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		cfg, err := cliutil.MachineConfig("in-order", tiny)
		if err != nil {
			return err
		}
		if pr, err = profile.Collect(p, cfg); err != nil {
			return err
		}
	}
	opt := ssp.DefaultOptions()
	opt.DelinquentCutoff = cutoff
	opt.Chaining = chain
	opt.LoopRotation = rotate
	opt.CondPrediction = predict
	opt.SpeculativeSlicing = spec
	label := bench
	if label == "" {
		label = in
	}
	enh, rep, err := ssp.Adapt(p, pr, opt, label)
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if _, err := fmt.Fprint(w, ir.Format(enh)); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "targets %v\n", rep.DelinquentLoads)
	fmt.Fprintf(os.Stderr, "slices: %d (%d interprocedural), avg size %.1f, avg live-ins %.1f\n",
		rep.NumSlices(), rep.NumInterproc(), rep.AvgSize(), rep.AvgLiveIns())
	for _, s := range rep.Slices {
		model := "basic"
		if s.Chaining {
			model = "chaining"
		}
		fmt.Fprintf(os.Stderr, "  %-24s %-8s size=%-3d live-ins=%d predicted=%v slack csp=%.0f bsp=%.0f trips=%.0f\n",
			s.Region, model, s.Size, s.LiveIns, s.Predicted, s.SlackCSP, s.SlackBSP, s.TripCount)
	}
	return nil
}
