package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ssp/internal/ir"
	"ssp/internal/workloads"
)

func TestRunFilePipeline(t *testing.T) {
	dir := t.TempDir()
	spec, err := workloads.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	p, _ := spec.Build(800)
	in := filepath.Join(dir, "mcf.ssp")
	if err := os.WriteFile(in, []byte(ir.Format(p)), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "mcf.enh.ssp")
	if err := run(in, "", 0, "", true, out, 0.9, true, true, true, true); err != nil {
		t.Fatal(err)
	}
	text, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), "chk.c ssp_stub_") {
		t.Fatal("output lacks trigger")
	}
	enh, err := ir.Parse(string(text))
	if err != nil {
		t.Fatalf("output does not parse: %v", err)
	}
	if enh.FuncByName("main") == nil {
		t.Fatal("output lost main")
	}
}

func TestRunBenchShortcut(t *testing.T) {
	out := filepath.Join(t.TempDir(), "x.ssp")
	if err := run("", "vpr", 512, "", true, out, 0.9, true, true, true, true); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", 0, "", true, "", 0.9, true, true, true, true); err == nil {
		t.Fatal("accepted neither -in nor -bench")
	}
	if err := run("/no/such/file.ssp", "", 0, "", true, "", 0.9, true, true, true, true); err == nil {
		t.Fatal("accepted missing input")
	}
	if err := run("", "mcf", 800, "/no/such/profile.json", true, "", 0.9, true, true, true, true); err == nil {
		t.Fatal("accepted missing profile")
	}
}
