// Command sspprof is the profiling pass of Figure 1: it runs a binary on
// the cycle-level simulator and writes the feedback bundle (cache profile,
// block frequencies, dynamic call graph) that cmd/sspgen consumes.
//
// With -hot-blocks it instead prints the top-N basic blocks by dynamic
// instruction share (from the same dense per-PC stats), annotated with what
// the closure-threaded execution core compiled each block to — chain nodes,
// fused constituents, exit width — so superinstruction fusion coverage on
// the actually-hot code is inspectable per benchmark.
//
// Usage:
//
//	sspprof -in prog.ssp -out prog.prof.json
//	sspprof -bench mcf -scale 20000 -out mcf.prof.json
//	sspprof -bench mcf -tiny -hot-blocks 10
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"ssp/internal/cliutil"
	"ssp/internal/ir"
	"ssp/internal/profile"
	"ssp/internal/sim"
)

func main() {
	var (
		in    = flag.String("in", "", "input assembly file")
		bench = flag.String("bench", "", "built-in benchmark name (em3d, health, mst, treeadd.df, treeadd.bf, mcf, vpr)")
		scale = flag.Int("scale", 0, "benchmark scale (0 = default)")
		model = flag.String("model", "in-order", "machine model: in-order or ooo")
		tiny  = flag.Bool("tiny", false, "use the scaled-down test memory system")
		out   = flag.String("out", "", "output profile path (default stdout)")
		hot   = flag.Int("hot-blocks", 0, "print the top-N blocks by dynamic instruction share instead of a profile bundle")
	)
	flag.Parse()
	if err := run(*in, *bench, *scale, *model, *tiny, *out, *hot); err != nil {
		fmt.Fprintln(os.Stderr, "sspprof:", err)
		os.Exit(1)
	}
}

func run(in, bench string, scale int, model string, tiny bool, out string, hot int) error {
	p, _, err := cliutil.LoadProgram(in, bench, scale)
	if err != nil {
		return err
	}
	cfg, err := cliutil.MachineConfig(model, tiny)
	if err != nil {
		return err
	}
	if hot > 0 {
		return hotBlocks(os.Stdout, p, cfg, hot)
	}
	pr, err := profile.Collect(p, cfg)
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := pr.Save(w); err != nil {
		return err
	}
	dels := pr.DelinquentLoads(0.9, 10)
	fmt.Fprintf(os.Stderr, "profiled %d cycles; %d loads cover >=90%% of %d miss cycles: %v\n",
		pr.Cycles, len(dels), pr.TotalMissCycles, dels)
	return nil
}

// hotBlocks runs the program once with dense per-PC profiling, aggregates
// the counts over the threaded core's basic blocks, and prints the top-N by
// dynamic instruction share with each block's compiled-chain shape.
func hotBlocks(w io.Writer, p *ir.Program, cfg sim.Config, n int) error {
	img, err := ir.Link(p)
	if err != nil {
		return err
	}
	dp := sim.Predecode(img)
	cfg.Profile = true
	res, err := sim.NewPredecoded(cfg, dp).Run()
	if err != nil {
		return err
	}
	if res.TimedOut {
		return fmt.Errorf("hot-blocks: run timed out after %d cycles", res.Cycles)
	}
	tp := sim.ThreadedProgram(dp)

	type row struct {
		block  int
		instrs uint64
	}
	var total uint64
	rows := make([]row, len(tp.Blocks))
	for bi := range tp.Blocks {
		rows[bi].block = bi
	}
	for pc, count := range res.PCCount {
		total += count
		rows[tp.BlockOf[pc]].instrs += count
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].instrs != rows[j].instrs {
			return rows[i].instrs > rows[j].instrs
		}
		return rows[i].block < rows[j].block
	})
	if n > len(rows) {
		n = len(rows)
	}
	fmt.Fprintf(w, "hot blocks: top %d of %d by main-thread dynamic instruction share (%d instrs total)\n",
		n, len(rows), total)
	fmt.Fprintf(w, "%4s  %7s  %7s  %12s  %-24s  %-11s  %s\n",
		"rank", "share", "cum", "instrs", "block", "pcs", "chain")
	var cum float64
	for i := 0; i < n; i++ {
		r := rows[i]
		if r.instrs == 0 {
			break
		}
		b := &tp.Blocks[r.block]
		share := 100 * float64(r.instrs) / float64(total)
		cum += share
		chain := fmt.Sprintf("nodes=%d fused=%d exit=%d", len(b.Body()), b.NBody, b.End-b.Start-b.NBody)
		if len(b.LoadPCs) > 0 {
			chain += fmt.Sprintf(" loads=%d", len(b.LoadPCs))
		}
		fmt.Fprintf(w, "%4d  %6.2f%%  %6.2f%%  %12d  %-24s  %-11s  %s\n",
			i+1, share, cum, r.instrs, img.BlockKey(int(b.Start)), fmt.Sprintf("[%d,%d)", b.Start, b.End), chain)
	}
	return nil
}
