// Command sspprof is the profiling pass of Figure 1: it runs a binary on
// the cycle-level simulator and writes the feedback bundle (cache profile,
// block frequencies, dynamic call graph) that cmd/sspgen consumes.
//
// Usage:
//
//	sspprof -in prog.ssp -out prog.prof.json
//	sspprof -bench mcf -scale 20000 -out mcf.prof.json
package main

import (
	"flag"
	"fmt"
	"os"

	"ssp/internal/cliutil"
	"ssp/internal/profile"
)

func main() {
	var (
		in    = flag.String("in", "", "input assembly file")
		bench = flag.String("bench", "", "built-in benchmark name (em3d, health, mst, treeadd.df, treeadd.bf, mcf, vpr)")
		scale = flag.Int("scale", 0, "benchmark scale (0 = default)")
		model = flag.String("model", "in-order", "machine model: in-order or ooo")
		tiny  = flag.Bool("tiny", false, "use the scaled-down test memory system")
		out   = flag.String("out", "", "output profile path (default stdout)")
	)
	flag.Parse()
	if err := run(*in, *bench, *scale, *model, *tiny, *out); err != nil {
		fmt.Fprintln(os.Stderr, "sspprof:", err)
		os.Exit(1)
	}
}

func run(in, bench string, scale int, model string, tiny bool, out string) error {
	p, _, err := cliutil.LoadProgram(in, bench, scale)
	if err != nil {
		return err
	}
	cfg, err := cliutil.MachineConfig(model, tiny)
	if err != nil {
		return err
	}
	pr, err := profile.Collect(p, cfg)
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := pr.Save(w); err != nil {
		return err
	}
	dels := pr.DelinquentLoads(0.9, 10)
	fmt.Fprintf(os.Stderr, "profiled %d cycles; %d loads cover >=90%% of %d miss cycles: %v\n",
		pr.Cycles, len(dels), pr.TotalMissCycles, dels)
	return nil
}
