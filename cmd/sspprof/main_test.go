package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ssp/internal/cliutil"
	"ssp/internal/profile"
)

func TestProfilePipeline(t *testing.T) {
	out := filepath.Join(t.TempDir(), "p.json")
	if err := run("", "mcf", 800, "in-order", true, out, 0); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pr, err := profile.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Cycles == 0 || len(pr.Loads) == 0 {
		t.Fatalf("profile empty: cycles=%d loads=%d", pr.Cycles, len(pr.Loads))
	}
	if len(pr.DelinquentLoads(0.9, 10)) == 0 {
		t.Fatal("no delinquent loads in saved profile")
	}
}

func TestHotBlocks(t *testing.T) {
	p, _, err := cliutil.LoadProgram("", "mcf", 800)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := cliutil.MachineConfig("in-order", true)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := hotBlocks(&buf, p, cfg, 5); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, "hot blocks: top") {
		t.Fatalf("missing header:\n%s", got)
	}
	// mcf's pointer-chase loop dominates; its chain shape must be reported.
	if !strings.Contains(got, "main.loop") || !strings.Contains(got, "fused=") {
		t.Fatalf("missing hot-loop row with chain shape:\n%s", got)
	}
}

func TestProfileErrors(t *testing.T) {
	if err := run("", "nosuch", 0, "in-order", true, "", 0); err == nil {
		t.Fatal("accepted unknown benchmark")
	}
	if err := run("", "mcf", 400, "warpdrive", true, "", 0); err == nil {
		t.Fatal("accepted unknown model")
	}
}
