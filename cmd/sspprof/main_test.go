package main

import (
	"os"
	"path/filepath"
	"testing"

	"ssp/internal/profile"
)

func TestProfilePipeline(t *testing.T) {
	out := filepath.Join(t.TempDir(), "p.json")
	if err := run("", "mcf", 800, "in-order", true, out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pr, err := profile.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Cycles == 0 || len(pr.Loads) == 0 {
		t.Fatalf("profile empty: cycles=%d loads=%d", pr.Cycles, len(pr.Loads))
	}
	if len(pr.DelinquentLoads(0.9, 10)) == 0 {
		t.Fatal("no delinquent loads in saved profile")
	}
}

func TestProfileErrors(t *testing.T) {
	if err := run("", "nosuch", 0, "in-order", true, ""); err == nil {
		t.Fatal("accepted unknown benchmark")
	}
	if err := run("", "mcf", 400, "warpdrive", true, ""); err == nil {
		t.Fatal("accepted unknown model")
	}
}
