// Command sspserved is the adapt+simulate service: a long-running HTTP
// server that accepts jobs (a built-in benchmark or a source program, a
// machine model, a treatment, tool options), runs the profile → adapt →
// simulate pipeline, and memoizes results by content so identical jobs cost
// one simulation.
//
// Usage:
//
//	sspserved -addr :8344 -workers 8 -queue 64
//
// Endpoints:
//
//	POST /jobs     submit a job (JSON body; SSE stream with
//	               "Accept: text/event-stream")
//	GET  /healthz  liveness (503 while draining)
//	GET  /statz    counters: requests, hit/miss, capacity, machine pool
//
// On SIGTERM or SIGINT the server drains: it stops admitting jobs, finishes
// the in-flight ones, then exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ssp/internal/cliutil"
	"ssp/internal/serve"
)

// options bundles the command-line parameters of one sspserved invocation.
type options struct {
	Addr       string
	Workers    int
	Queue      int
	Timeout    time.Duration
	DrainGrace time.Duration

	CPUProfile, MemProfile string
}

func main() {
	var o options
	flag.StringVar(&o.Addr, "addr", "localhost:8344", "listen address")
	flag.IntVar(&o.Workers, "workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	flag.IntVar(&o.Queue, "queue", 0, "admission queue beyond the workers (0 = 4x workers)")
	flag.DurationVar(&o.Timeout, "timeout", 120*time.Second, "default per-job deadline")
	flag.DurationVar(&o.DrainGrace, "drain-grace", 30*time.Second, "how long to wait for in-flight jobs on shutdown")
	flag.StringVar(&o.CPUProfile, "cpuprofile", "", "write a host CPU profile here")
	flag.StringVar(&o.MemProfile, "memprofile", "", "write a host heap profile here")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "sspserved:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	stopProfiles, err := cliutil.StartProfiles(o.CPUProfile, o.MemProfile)
	if err != nil {
		return err
	}
	defer stopProfiles()

	srv := serve.New(serve.Config{
		Workers:        o.Workers,
		Queue:          o.Queue,
		DefaultTimeout: o.Timeout,
	})
	hs := &http.Server{Addr: o.Addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("sspserved: listening on %s", o.Addr)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: refuse new jobs, finish the in-flight tail, then
	// close the listener. A second signal (stop() restored default
	// handling) kills the process the usual way.
	stop()
	log.Printf("sspserved: draining (up to %s)", o.DrainGrace)
	grace, cancel := context.WithTimeout(context.Background(), o.DrainGrace)
	defer cancel()
	drainErr := srv.Drain(grace)
	if err := hs.Shutdown(grace); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if drainErr != nil {
		return fmt.Errorf("drain: %w", drainErr)
	}
	log.Printf("sspserved: drained cleanly")
	return nil
}
