// Command sspserved is the adapt+simulate service: a long-running HTTP
// server that accepts jobs (a built-in benchmark or a source program, a
// machine model, a treatment, tool options), runs the profile → adapt →
// simulate pipeline, and memoizes results by content so identical jobs cost
// one simulation. With -tune it also accepts closed-loop tuning jobs
// (JobSpec.Tune), which run the internal/tune options search.
//
// Usage:
//
//	sspserved -addr :8344 -workers 8 -queue 64
//	sspserved -tune                      # also admit tune-mode jobs
//
// Endpoints:
//
//	POST /jobs     submit a job (JSON body; SSE stream with
//	               "Accept: text/event-stream")
//	GET  /healthz  liveness (503 while draining)
//	GET  /statz    counters: requests, hit/miss, capacity, machine pool
//
// Source jobs are vetted by the speculation-safety verifier before
// admission: if the submitted IR carries slice regions that cannot be proved
// bounded and state-isolated at the target machine's MaxSpecInstrs ceiling,
// the job is rejected with HTTP 422 and a JSON body holding the
// machine-readable safety report ({"error": ..., "safety": ...}); rejected
// programs are never cached, so a corrected resubmission is verified fresh.
//
// On SIGTERM or SIGINT the server drains: it stops admitting jobs, finishes
// the in-flight ones, then exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ssp/internal/cliutil"
	"ssp/internal/serve"
)

// options bundles the command-line parameters of one sspserved invocation.
type options struct {
	Addr       string
	Workers    int
	Queue      int
	Timeout    time.Duration
	DrainGrace time.Duration
	EnableTune bool

	CPUProfile, MemProfile string
}

func main() {
	var o options
	flag.StringVar(&o.Addr, "addr", "localhost:8344", "listen address")
	flag.IntVar(&o.Workers, "workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	flag.IntVar(&o.Queue, "queue", 0, "admission queue beyond the workers (0 = 4x workers)")
	flag.DurationVar(&o.Timeout, "timeout", 120*time.Second, "default per-job deadline")
	flag.DurationVar(&o.DrainGrace, "drain-grace", 30*time.Second, "how long to wait for in-flight jobs on shutdown")
	flag.BoolVar(&o.EnableTune, "tune", false, "admit tune-mode jobs (closed-loop options search; many simulations per job)")
	flag.StringVar(&o.CPUProfile, "cpuprofile", "", "write a host CPU profile here")
	flag.StringVar(&o.MemProfile, "memprofile", "", "write a host heap profile here")
	flag.Parse()
	if err := run(context.Background(), o, nil); err != nil {
		fmt.Fprintln(os.Stderr, "sspserved:", err)
		os.Exit(1)
	}
}

// run starts the server and blocks until the listener fails or a shutdown
// signal (or parent cancellation) starts the drain. If ready is non-nil, the
// bound listen address is sent on it once the server is accepting — the hook
// tests use to run against ":0".
func run(parent context.Context, o options, ready chan<- string) error {
	stopProfiles, err := cliutil.StartProfiles(o.CPUProfile, o.MemProfile)
	if err != nil {
		return err
	}
	defer stopProfiles()

	srv := serve.New(serve.Config{
		Workers:        o.Workers,
		Queue:          o.Queue,
		DefaultTimeout: o.Timeout,
		EnableTune:     o.EnableTune,
	})
	ln, err := net.Listen("tcp", o.Addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}

	ctx, stop := signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("sspserved: listening on %s", ln.Addr())
		errc <- hs.Serve(ln)
	}()
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: refuse new jobs, finish the in-flight tail, then
	// close the listener. A second signal (stop() restored default
	// handling) kills the process the usual way.
	stop()
	log.Printf("sspserved: draining (up to %s)", o.DrainGrace)
	grace, cancel := context.WithTimeout(context.Background(), o.DrainGrace)
	defer cancel()
	drainErr := srv.Drain(grace)
	if err := hs.Shutdown(grace); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if drainErr != nil {
		return fmt.Errorf("drain: %w", drainErr)
	}
	log.Printf("sspserved: drained cleanly")
	return nil
}
