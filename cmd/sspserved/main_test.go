package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"ssp/internal/serve"
)

// startServed runs the daemon on an ephemeral port and returns its base URL
// and a cancel that triggers the graceful drain; the returned channel carries
// run's exit error.
func startServed(t *testing.T, o options) (string, context.CancelFunc, <-chan error) {
	t.Helper()
	o.Addr = "127.0.0.1:0"
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(ctx, o, ready) }()
	select {
	case addr := <-ready:
		return "http://" + addr, cancel, done
	case err := <-done:
		t.Fatalf("server exited before binding: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	panic("unreachable")
}

func postJob(t *testing.T, base string, spec serve.JobSpec) (int, *serve.JobResponse) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil
	}
	var jr serve.JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, &jr
}

// TestRunServesAndDrains boots the daemon end to end: serve a job, answer
// healthz/statz, reject a tune job (tuning is off by default), then drain
// cleanly on cancellation.
func TestRunServesAndDrains(t *testing.T) {
	base, cancel, done := startServed(t, options{Timeout: time.Minute, DrainGrace: 30 * time.Second})

	code, jr := postJob(t, base, serve.JobSpec{Bench: "mst", Model: "in-order"})
	if code != http.StatusOK || jr.Result == nil || jr.Result.Cycles <= 0 {
		t.Fatalf("job: HTTP %d, response %+v", code, jr)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: HTTP %d", resp.StatusCode)
	}
	var st serve.Stats
	resp, err = http.Get(base + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Requests != 1 || st.Misses != 1 {
		t.Errorf("statz after one job: %+v", st)
	}

	// Tune mode is opt-in; without -tune the server must refuse.
	if code, _ := postJob(t, base, serve.JobSpec{Bench: "mst", Model: "in-order", Tune: &serve.TuneSpec{}}); code != http.StatusForbidden {
		t.Errorf("tune job without -tune: HTTP %d, want 403", code)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run exited with %v after drain", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not exit after cancellation")
	}
}

// TestRunTuneFlag: with tuning enabled, a tune-mode job round-trips through
// the daemon and returns the search result.
func TestRunTuneFlag(t *testing.T) {
	base, cancel, done := startServed(t, options{Timeout: 5 * time.Minute, DrainGrace: 30 * time.Second, EnableTune: true})
	defer func() {
		cancel()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Error("run did not exit after cancellation")
		}
	}()

	code, jr := postJob(t, base, serve.JobSpec{
		Bench: "mcf", Model: "in-order",
		Tune: &serve.TuneSpec{Rounds: 2, Grid: "quick"},
	})
	if code != http.StatusOK || jr.Tune == nil || jr.Tune.Best == nil {
		t.Fatalf("tune job: HTTP %d, response %+v", code, jr)
	}
	if jr.Tune.Best.Best < jr.Tune.OneShot {
		t.Errorf("tuned %.3fx below one-shot %.3fx", jr.Tune.Best.Best, jr.Tune.OneShot)
	}
}

// TestRunBadAddr: an unusable listen address is an immediate error, not a
// hang.
func TestRunBadAddr(t *testing.T) {
	err := run(context.Background(), options{Addr: "256.256.256.256:0"}, nil)
	if err == nil {
		t.Fatal("run accepted an unusable address")
	}
}
