// Command ssptune runs the closed-loop auto-tuner: for each benchmark it
// evaluates a grid of ssp.Options through the adaptive re-profiling loop
// (internal/tune) and reports the best configuration, its per-round
// trajectory, and the headroom recovered over the one-shot tool.
//
// Usage:
//
//	ssptune                               # mcf, in-order, paper scale, full grid
//	ssptune -bench mcf,health -model ooo
//	ssptune -scale test -rounds 2 -grid quick -require-converged
//	ssptune -json                         # JSON to stdout instead of tables
//	ssptune -out BENCH_tune.json          # also write the JSON report
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"

	"ssp/internal/cliutil"
	"ssp/internal/exp"
	"ssp/internal/sim"
	"ssp/internal/tune"
	"ssp/internal/workloads"
)

// options bundles the validated command-line parameters of one run.
type options struct {
	benches          []string
	model            sim.Model
	scale            exp.Scale
	params           tune.Params
	grid             []tune.GridPoint
	workers          int
	jsonOut          bool
	outFile          string
	requireConverged bool
	quiet            bool
	cpuProf, memProf string
}

func main() {
	var (
		bench   = flag.String("bench", "mcf", "comma-separated benchmarks (see cmd/experiments)")
		model   = flag.String("model", "in-order", "machine model: in-order or ooo")
		scale   = flag.String("scale", "paper", "experiment scale: paper or test")
		rounds  = flag.Int("rounds", 3, "max re-profiling rounds per candidate (after the one-shot round 0)")
		eps     = flag.Float64("eps", 0.02, "relative speedup-delta convergence threshold")
		grid    = flag.String("grid", "full", "search grid: full or quick")
		workers = flag.Int("workers", runtime.NumCPU(), "parallel simulations (1 = serial)")
		jsonOut = flag.Bool("json", false, "print the JSON report to stdout instead of tables")
		outFile = flag.String("out", "", "also write the JSON report to this file")
		reqConv = flag.Bool("require-converged", false, "exit nonzero unless every best candidate converged")
		quiet   = flag.Bool("quiet", false, "suppress the per-round progress lines on stderr")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf = flag.String("memprofile", "", "write an allocation profile of the run to this file")
	)
	flag.Parse()
	o, err := parse(*bench, *model, *scale, *rounds, *eps, *grid, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssptune:", err)
		os.Exit(2)
	}
	o.jsonOut, o.outFile, o.requireConverged, o.quiet = *jsonOut, *outFile, *reqConv, *quiet
	o.cpuProf, o.memProf = *cpuProf, *memProf
	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ssptune:", err)
		os.Exit(1)
	}
}

// parse validates the flag values (usage errors; exit 2 before work starts).
func parse(bench, model, scale string, rounds int, eps float64, grid string, workers int) (options, error) {
	var o options
	for _, b := range strings.Split(bench, ",") {
		b = strings.TrimSpace(b)
		if b == "" {
			continue
		}
		if _, err := workloads.ByName(b); err != nil {
			return o, err
		}
		o.benches = append(o.benches, b)
	}
	if len(o.benches) == 0 {
		return o, fmt.Errorf("no benchmarks given")
	}
	switch model {
	case "in-order", "io":
		o.model = sim.InOrder
	case "ooo", "out-of-order":
		o.model = sim.OOO
	default:
		return o, fmt.Errorf("unknown -model %q (valid: in-order, ooo)", model)
	}
	switch scale {
	case "paper":
		o.scale = exp.ScalePaper
	case "test":
		o.scale = exp.ScaleTest
	default:
		return o, fmt.Errorf("unknown -scale %q (valid: paper, test)", scale)
	}
	switch grid {
	case "full":
		o.grid = tune.FullGrid()
	case "quick":
		o.grid = tune.QuickGrid()
	default:
		return o, fmt.Errorf("unknown -grid %q (valid: full, quick)", grid)
	}
	if rounds < 1 {
		return o, fmt.Errorf("-rounds must be at least 1, got %d", rounds)
	}
	if workers < 1 {
		return o, fmt.Errorf("-workers must be at least 1, got %d", workers)
	}
	o.params = tune.Params{MaxRounds: rounds, Epsilon: eps}
	o.workers = workers
	return o, nil
}

// report is the JSON envelope of a run (the BENCH_tune.json layout).
type report struct {
	Results []*tune.Result `json:"results"`
}

func run(o options, stdout io.Writer) error {
	stopProf, err := cliutil.StartProfiles(o.cpuProf, o.memProf)
	if err != nil {
		return err
	}
	defer stopProf()
	s := exp.NewSuite(o.scale)
	s.Workers = o.workers
	tn := tune.New(s)
	if !o.quiet {
		var mu sync.Mutex
		tn.Progress = func(format string, args ...any) {
			mu.Lock()
			defer mu.Unlock()
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	var rep report
	for _, bench := range o.benches {
		res, err := tn.Tune(context.Background(), bench, o.model, o.params, o.grid)
		if err != nil {
			return err
		}
		rep.Results = append(rep.Results, res)
	}
	if o.outFile != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.outFile, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if o.jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		emit(stdout, rep)
	}
	if o.requireConverged {
		for _, res := range rep.Results {
			if !res.Best.Converged {
				return fmt.Errorf("%s/%s: best candidate %q did not converge within %d rounds",
					res.Bench, res.Model, res.Best.Label, o.params.MaxRounds)
			}
		}
	}
	return nil
}

// emit prints one table per tuned benchmark.
func emit(w io.Writer, rep report) {
	f2 := func(v float64) string { return fmt.Sprintf("%.2f", v) }
	for _, res := range rep.Results {
		fmt.Fprintf(w, "%s on %s (%s scale): one-shot %sx, tuned %sx (%q, round %d)\n",
			res.Bench, res.Model, res.Scale, f2(res.OneShot), f2(res.Best.Best),
			res.Best.Label, res.Best.BestRound)
		var cells [][]string
		for _, c := range res.Candidates {
			if c.Err != "" {
				cells = append(cells, []string{c.Label, "-", "-", "-", "error: " + c.Err})
				continue
			}
			var traj []string
			for _, r := range c.Rounds {
				traj = append(traj, f2(r.Speedup))
			}
			conv := "no"
			if c.Converged {
				conv = "yes"
			}
			cells = append(cells, []string{c.Label, f2(c.Best), fmt.Sprint(c.BestRound), conv,
				strings.Join(traj, " → ")})
		}
		fmt.Fprintln(w, exp.FormatTable(
			[]string{"candidate", "best", "round", "converged", "trajectory"}, cells))
	}
}
