package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ssp/internal/exp"
	"ssp/internal/sim"
	"ssp/internal/tune"
)

func TestParseRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name                      string
		bench, model, scale, grid string
		rounds, workers           int
		eps                       float64
	}{
		{"unknown bench", "nope", "in-order", "test", "quick", 2, 1, 0.02},
		{"empty bench list", " , ", "in-order", "test", "quick", 2, 1, 0.02},
		{"unknown model", "mcf", "risc-v", "test", "quick", 2, 1, 0.02},
		{"unknown scale", "mcf", "in-order", "huge", "quick", 2, 1, 0.02},
		{"unknown grid", "mcf", "in-order", "test", "dense", 2, 1, 0.02},
		{"zero rounds", "mcf", "in-order", "test", "quick", 0, 1, 0.02},
		{"zero workers", "mcf", "in-order", "test", "quick", 2, 0, 0.02},
	}
	for _, c := range cases {
		if _, err := parse(c.bench, c.model, c.scale, c.rounds, c.eps, c.grid, c.workers); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestParseDefaults(t *testing.T) {
	o, err := parse("mcf, health", "ooo", "paper", 3, 0.02, "full", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.benches) != 2 || o.benches[0] != "mcf" || o.benches[1] != "health" {
		t.Fatalf("benches = %v", o.benches)
	}
	if o.model != sim.OOO || o.scale != exp.ScalePaper {
		t.Fatalf("model %v scale %v", o.model, o.scale)
	}
	if len(o.grid) != len(tune.FullGrid()) {
		t.Fatalf("grid has %d points", len(o.grid))
	}
	if o.params.MaxRounds != 3 || o.workers != 4 {
		t.Fatalf("params %+v workers %d", o.params, o.workers)
	}
}

// TestRunSmoke drives the whole tuner through run() at test scale and checks
// both output paths: the human table on stdout and the JSON report on disk.
func TestRunSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "tune.json")
	o := options{
		benches:          []string{"mcf"},
		model:            sim.InOrder,
		scale:            exp.ScaleTest,
		params:           tune.Params{MaxRounds: 2, Epsilon: 0.02},
		grid:             tune.QuickGrid(),
		workers:          2,
		outFile:          out,
		requireConverged: true,
		quiet:            true,
	}
	var table strings.Builder
	if err := run(o, &table); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "mcf on in-order (test scale)") {
		t.Fatalf("table output missing summary line:\n%s", table.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 {
		t.Fatalf("report has %d results", len(rep.Results))
	}
	res := rep.Results[0]
	if res.Bench != "mcf" || res.Best == nil {
		t.Fatalf("result %+v", res)
	}
	if res.Best.Best < res.OneShot {
		t.Fatalf("tuned %.3fx below one-shot %.3fx", res.Best.Best, res.OneShot)
	}
	if !res.Best.Converged {
		t.Fatal("run returned nil but best candidate not converged")
	}

	// The JSON output path must emit the same envelope to the writer.
	o.outFile, o.jsonOut = "", true
	var buf strings.Builder
	if err := run(o, &buf); err != nil {
		t.Fatal(err)
	}
	var rep2 report
	if err := json.Unmarshal([]byte(buf.String()), &rep2); err != nil {
		t.Fatalf("stdout JSON: %v", err)
	}
	if len(rep2.Results) != 1 || rep2.Results[0].Best.Label != res.Best.Label {
		t.Fatalf("stdout report disagrees with file report: %+v", rep2.Results)
	}
}
