// Automatic vs. hand adaptation (§4.5): on mcf and health, compare the
// post-pass tool's binaries against the manually adapted versions (which
// unroll the chaining slice and inline multiple levels of the pointee walk),
// on both machine models.
package main

import (
	"fmt"
	"log"

	"ssp/internal/handtuned"
	"ssp/internal/profile"
	"ssp/internal/sim"
	"ssp/internal/ssp"
	"ssp/internal/workloads"
)

func main() {
	for _, name := range []string{"mcf", "health"} {
		spec, err := workloads.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		prog, _ := spec.Build(spec.Scale / 3)
		prof, err := profile.Collect(prog, sim.DefaultInOrder())
		if err != nil {
			log.Fatal(err)
		}
		auto, _, err := ssp.Adapt(prog, prof, ssp.DefaultOptions(), name)
		if err != nil {
			log.Fatal(err)
		}
		hand, err := handtuned.Adapt(name, prog)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", name)
		for _, cfg := range []sim.Config{sim.DefaultInOrder(), sim.DefaultOOO()} {
			base, err := sim.RunProgram(cfg, prog)
			if err != nil {
				log.Fatal(err)
			}
			autoRes, err := sim.RunProgram(cfg, auto)
			if err != nil {
				log.Fatal(err)
			}
			handRes, err := sim.RunProgram(cfg, hand)
			if err != nil {
				log.Fatal(err)
			}
			autoSp := float64(base.Cycles) / float64(autoRes.Cycles)
			handSp := float64(base.Cycles) / float64(handRes.Cycles)
			fmt.Printf("  %-9s auto %.2fx   hand %.2fx   tool keeps %.0f%% of hand's speedup\n",
				cfg.Model.String()+":", autoSp, handSp, 100*autoSp/handSp)
		}
		fmt.Println()
	}
}
