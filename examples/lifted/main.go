// Binary translation (§2.2): the paper encapsulated SSP as a post-pass
// precisely so the same tool could later run "when the source code is not
// available". This example drives that flow end to end: link a benchmark to
// a flat image, throw the structured program away, LIFT the image back into
// functions/blocks/labels, profile and adapt the lifted program, and measure
// the result.
package main

import (
	"fmt"
	"log"

	"ssp/internal/ir"
	"ssp/internal/lift"
	"ssp/internal/profile"
	"ssp/internal/sim"
	"ssp/internal/ssp"
	"ssp/internal/workloads"
)

func main() {
	spec, err := workloads.ByName("mcf")
	if err != nil {
		log.Fatal(err)
	}
	prog, _ := spec.Build(20000)
	img, err := ir.Link(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("raw image: %d instructions, %d functions' symbols\n",
		len(img.Code), len(img.FuncEntries))

	lifted, err := lift.Lift(img)
	if err != nil {
		log.Fatal(err)
	}
	blocks := 0
	for _, f := range lifted.Funcs {
		blocks += len(f.Blocks)
	}
	fmt.Printf("lifted:    %d functions, %d basic blocks recovered\n",
		len(lifted.Funcs), blocks)

	cfg := sim.DefaultInOrder()
	prof, err := profile.Collect(lifted, cfg)
	if err != nil {
		log.Fatal(err)
	}
	enh, rep, err := ssp.Adapt(lifted, prof, ssp.DefaultOptions(), "lifted-mcf")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adapted:   %d slices (avg %.1f instrs, %.1f live-ins)\n",
		rep.NumSlices(), rep.AvgSize(), rep.AvgLiveIns())

	base, err := sim.New(cfg, img).Run()
	if err != nil {
		log.Fatal(err)
	}
	img2, err := ir.Link(enh)
	if err != nil {
		log.Fatal(err)
	}
	fast, err := sim.New(cfg, img2).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("in-order:  %d -> %d cycles, speedup %.2fx — without ever seeing the source IR\n",
		base.Cycles, fast.Cycles, float64(base.Cycles)/float64(fast.Cycles))
}
