// The paper's running example end to end: the mcf primal_bea_mpp kernel
// (Figure 3), its automatically extracted chaining slice (Figure 5), the
// enhanced binary layout (Figure 7), and the measured effect on both machine
// models.
package main

import (
	"fmt"
	"log"
	"strings"

	"ssp/internal/ir"
	"ssp/internal/profile"
	"ssp/internal/sim"
	"ssp/internal/ssp"
	"ssp/internal/workloads"
)

func main() {
	spec, err := workloads.ByName("mcf")
	if err != nil {
		log.Fatal(err)
	}
	prog, _ := spec.Build(20000)

	fmt.Println("== Figure 3: the pricing loop (simplified excerpt) ==")
	printBlock(prog, "main", "loop")

	cfg := sim.DefaultInOrder()
	prof, err := profile.Collect(prog, cfg)
	if err != nil {
		log.Fatal(err)
	}
	dels := prof.DelinquentLoads(0.9, 10)
	fmt.Printf("\ndelinquent loads: %v (of %d static loads profiled)\n", dels, len(prof.Loads))
	for _, id := range dels {
		_, _, in := prog.InstrByID(id)
		fmt.Printf("  id=%-4d %-28s expected latency %.0f cycles\n",
			id, in.String(), prof.ExpectedLoadLatency(id))
	}

	enh, rep, err := ssp.Adapt(prog, prof, ssp.DefaultOptions(), "mcf")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== Figure 7 layout: trigger, stub block, slice block ==")
	printBlock(enh, "main", "loop") // note the chk.c replacing the nop
	for _, b := range enh.FuncByName("main").Blocks {
		if strings.HasPrefix(b.Label, "ssp_") {
			printBlockPtr(b)
		}
	}
	for _, s := range rep.Slices {
		fmt.Printf("\nslice metrics: size=%d live-ins=%d chaining=%v slack rates: csp=%.0f bsp=%.0f\n",
			s.Size, s.LiveIns, s.Chaining, s.SlackCSP, s.SlackBSP)
	}

	fmt.Println("\n== Measured on both research Itanium models ==")
	for _, mc := range []sim.Config{sim.DefaultInOrder(), sim.DefaultOOO()} {
		base, err := sim.RunProgram(mc, prog)
		if err != nil {
			log.Fatal(err)
		}
		fast, err := sim.RunProgram(mc, enh)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s base %9d cycles   ssp %9d cycles   speedup %.2fx   (%d chains, %d spawns)\n",
			mc.Model.String()+":", base.Cycles, fast.Cycles,
			float64(base.Cycles)/float64(fast.Cycles), fast.ChkTaken, fast.Spawns)
	}
}

func printBlock(p *ir.Program, fn, label string) {
	printBlockPtr(p.FuncByName(fn).BlockByLabel(label))
}

func printBlockPtr(b *ir.Block) {
	fmt.Printf("%s:\n", b.Label)
	for _, in := range b.Instrs {
		fmt.Printf("\t%s\n", in)
	}
}
