// Quickstart: build a pointer-chasing kernel in the IR, profile it, run the
// post-pass SSP tool, and measure the speedup on the in-order research
// Itanium model — the full Figure 1 flow in one file.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ssp/internal/ir"
	"ssp/internal/profile"
	"ssp/internal/sim"
	"ssp/internal/ssp"
)

func main() {
	// 1. A "first compilation pass" output: a loop summing a field of
	//    records reached through a pointer array, with records scattered
	//    over a working set larger than the L3 cache.
	const n = 80000
	p := ir.NewProgram("main")
	ptrBase := uint64(0x100000)
	recBase := ptrBase + n*8 + 0x10000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for i := 0; i < n; i++ {
		rec := recBase + uint64(perm[i])*64
		p.SetWord(ptrBase+uint64(i)*8, rec)
		p.SetWord(rec+8, uint64(i))
	}
	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.MovI(14, int64(ptrBase))
	e.MovI(15, int64(ptrBase+n*8))
	e.MovI(20, 0)
	loop := fb.Block("loop")
	loop.Nop()           // padding the tool will turn into the chk.c trigger
	loop.Ld(16, 14, 0)   // rec = ptrs[i]
	loop.Ld(17, 16, 8)   // rec->field        <- the delinquent load
	loop.Add(20, 20, 17) // sum += field
	loop.AddI(14, 14, 8)
	loop.Cmp(ir.CondLT, 6, 7, 14, 15)
	loop.On(6).Br("loop")
	done := fb.Block("done")
	done.MovI(28, 0x2000)
	done.St(28, 0, 20)
	done.Halt()

	// 2. Profiling pass (Figure 1): identify delinquent loads, block
	//    frequencies, expected latencies.
	cfg := sim.DefaultInOrder()
	prof, err := profile.Collect(p, cfg)
	if err != nil {
		log.Fatal(err)
	}
	dels := prof.DelinquentLoads(0.9, 10)
	fmt.Printf("delinquent loads (>=90%% of %d miss cycles): %v\n", prof.TotalMissCycles, dels)

	// 3. Post-pass adaptation: slice, schedule, place triggers, attach.
	enh, rep, err := ssp.Adapt(p, prof, ssp.DefaultOptions(), "quickstart")
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range rep.Slices {
		model := "basic"
		if s.Chaining {
			model = "chaining"
		}
		fmt.Printf("slice in %s: %s SP, %d instructions, %d live-ins\n",
			s.Region, model, s.Size, s.LiveIns)
	}

	// 4. Measure both binaries on the in-order model.
	run := func(prog *ir.Program) *sim.Result {
		res, err := sim.RunProgram(cfg, prog)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	base, fast := run(p), run(enh)
	fmt.Printf("baseline: %d cycles (IPC %.3f)\n", base.Cycles, base.IPC())
	fmt.Printf("SSP:      %d cycles (IPC %.3f), %d speculative threads\n",
		fast.Cycles, fast.IPC(), fast.Spawns)
	fmt.Printf("speedup:  %.2fx\n", float64(base.Cycles)/float64(fast.Cycles))
}
