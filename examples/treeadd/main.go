// Depth-first vs. breadth-first treeadd: the same data structure, two
// traversal orders, two precomputation models. The BF queue advances
// arithmetically, so the tool picks chaining SP and runs far ahead; the DF
// stack is rewritten by the main thread as it walks, so the tool detects the
// memory recurrence and falls back to basic SP (Table 2: "treeadd.df uses
// basic SP").
package main

import (
	"fmt"
	"log"

	"ssp/internal/ir"
	"ssp/internal/profile"
	"ssp/internal/sim"
	"ssp/internal/ssp"
	"ssp/internal/workloads"
)

func main() {
	for _, name := range []string{"treeadd.df", "treeadd.bf"} {
		spec, err := workloads.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		prog, want := spec.Build(1 << 15)
		cfg := sim.DefaultInOrder()
		prof, err := profile.Collect(prog, cfg)
		if err != nil {
			log.Fatal(err)
		}
		enh, rep, err := ssp.Adapt(prog, prof, ssp.DefaultOptions(), name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", name)
		for _, s := range rep.Slices {
			model := "basic"
			if s.Chaining {
				model = "chaining"
			}
			fmt.Printf("  slice in %-22s model=%-8s size=%d live-ins=%d predicted=%v\n",
				s.Region, model, s.Size, s.LiveIns, s.Predicted)
		}
		base, err := sim.RunProgram(cfg, prog)
		if err != nil {
			log.Fatal(err)
		}
		fast, err := runAndCheck(cfg, enh, want)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  in-order: %d -> %d cycles, speedup %.2fx\n\n",
			base.Cycles, fast.Cycles, float64(base.Cycles)/float64(fast.Cycles))
	}
}

// runAndCheck runs the program and verifies the enhanced binary computed the
// same checksum the workload generator promised (§2: speculation never
// alters the main thread's architectural state).
func runAndCheck(cfg sim.Config, p *ir.Program, want uint64) (*sim.Result, error) {
	img, err := ir.Link(p)
	if err != nil {
		return nil, err
	}
	m := sim.New(cfg, img)
	res, err := m.Run()
	if err != nil {
		return nil, err
	}
	if got := m.Mem.Load(workloads.ResultAddr); got != want {
		return nil, fmt.Errorf("checksum mismatch: %d != %d", got, want)
	}
	return res, nil
}
