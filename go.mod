module ssp

go 1.22
