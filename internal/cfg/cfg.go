// Package cfg provides control-flow analyses over IR functions: CFG
// construction, dominators and postdominators, natural-loop detection, and
// the hierarchical region graph of §3.1.1 that drives region-based slicing.
package cfg

import (
	"fmt"

	"ssp/internal/ir"
)

// Graph is the control-flow graph of a single function. Node i is the block
// with Index i in Func.Blocks.
type Graph struct {
	F     *ir.Func
	Succs [][]int
	Preds [][]int
}

// Build computes the CFG of f. Control-transfer instructions (br, ret, halt,
// kill) must appear only as the final instruction of a block; Build returns
// an error otherwise. Calls and chk.c are not CFG edges: a call returns to
// the following instruction, and a chk.c stub detour is a micro-architectural
// event (§3.4.2), not an architected control transfer of the main program.
func Build(f *ir.Func) (*Graph, error) {
	f.Renumber()
	n := len(f.Blocks)
	g := &Graph{F: f, Succs: make([][]int, n), Preds: make([][]int, n)}
	for bi, b := range f.Blocks {
		for ii, in := range b.Instrs {
			isTerm := in.Op == ir.OpBr || in.Op == ir.OpRet || in.Op == ir.OpHalt || in.Op == ir.OpKill
			if isTerm && ii != len(b.Instrs)-1 {
				return nil, fmt.Errorf("cfg: %s/%s: control transfer %q not at block end", f.Name, b.Label, in)
			}
		}
		t := b.Terminator()
		addSucc := func(s int) { g.Succs[bi] = append(g.Succs[bi], s) }
		fall := func() {
			if bi+1 < n {
				addSucc(bi + 1)
			}
		}
		switch {
		case t == nil:
			fall()
		case t.Op == ir.OpBr:
			tgt := f.BlockByLabel(t.Target)
			if tgt == nil {
				return nil, fmt.Errorf("cfg: %s/%s: unknown branch target %q", f.Name, b.Label, t.Target)
			}
			addSucc(tgt.Index)
			if t.Qp != ir.PTrue {
				fall()
			}
		case (t.Op == ir.OpRet || t.Op == ir.OpHalt || t.Op == ir.OpKill) && t.Qp == ir.PTrue:
			// no successors
		case t.Op == ir.OpRet || t.Op == ir.OpHalt || t.Op == ir.OpKill:
			fall() // predicated exit: may fall through
		default:
			fall()
		}
	}
	for bi, ss := range g.Succs {
		for _, s := range ss {
			g.Preds[s] = append(g.Preds[s], bi)
		}
	}
	return g, nil
}

// RPO returns the blocks reachable from entry in reverse postorder.
func (g *Graph) RPO() []int {
	n := len(g.Succs)
	seen := make([]bool, n)
	var post []int
	var dfs func(int)
	dfs = func(b int) {
		seen[b] = true
		for _, s := range g.Succs[b] {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	if n > 0 {
		dfs(0)
	}
	// reverse
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Reachable returns the set of blocks reachable from entry.
func (g *Graph) Reachable() []bool {
	seen := make([]bool, len(g.Succs))
	stack := []int{0}
	if len(g.Succs) == 0 {
		return seen
	}
	seen[0] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Succs[b] {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}
