package cfg

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ssp/internal/ir"
)

// diamond builds:  entry -> {left,right} -> join -> exit
func diamond(t *testing.T) *ir.Func {
	t.Helper()
	p := ir.NewProgram("f")
	fb := ir.NewFunc(p, "f")
	e := fb.Block("entry")
	e.CmpI(ir.CondLT, 6, 7, 14, 10)
	e.On(6).Br("right")
	l := fb.Block("left")
	l.AddI(15, 15, 1)
	l.Br("join")
	r := fb.Block("right")
	r.AddI(15, 15, 2)
	j := fb.Block("join")
	j.Halt()
	_ = l
	_ = r
	_ = j
	return fb.F
}

// nestedLoops builds a doubly nested loop:
// entry -> outer { inner { body } } -> exit
func nestedLoops(t *testing.T) *ir.Func {
	t.Helper()
	p := ir.NewProgram("f")
	fb := ir.NewFunc(p, "f")
	e := fb.Block("entry")
	e.MovI(14, 0)
	outer := fb.Block("outer")
	outer.MovI(15, 0)
	inner := fb.Block("inner")
	inner.AddI(15, 15, 1)
	inner.CmpI(ir.CondLT, 6, 7, 15, 10)
	inner.On(6).Br("inner")
	latch := fb.Block("latch")
	latch.AddI(14, 14, 1)
	latch.CmpI(ir.CondLT, 8, 9, 14, 10)
	latch.On(8).Br("outer")
	exit := fb.Block("exit")
	exit.Halt()
	return fb.F
}

func TestBuildDiamond(t *testing.T) {
	g, err := Build(diamond(t))
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{2, 1}, {3}, {3}, nil}
	for b, ws := range want {
		if len(g.Succs[b]) != len(ws) {
			t.Fatalf("succs[%d] = %v, want %v", b, g.Succs[b], ws)
		}
		for i := range ws {
			if g.Succs[b][i] != ws[i] {
				t.Fatalf("succs[%d] = %v, want %v", b, g.Succs[b], ws)
			}
		}
	}
	if len(g.Preds[3]) != 2 {
		t.Fatalf("preds[join] = %v", g.Preds[3])
	}
}

func TestBuildRejectsMidBlockBranch(t *testing.T) {
	p := ir.NewProgram("f")
	fb := ir.NewFunc(p, "f")
	b := fb.Block("entry")
	b.Br("entry")
	b.Nop()
	if _, err := Build(fb.F); err == nil {
		t.Fatal("Build accepted mid-block branch")
	}
}

func TestDominatorsDiamond(t *testing.T) {
	g, _ := Build(diamond(t))
	d := Dominators(g)
	// entry dominates everything; join's idom is entry.
	if d.IDom[1] != 0 || d.IDom[2] != 0 || d.IDom[3] != 0 {
		t.Fatalf("idom = %v", d.IDom)
	}
	if !d.Dominates(0, 3) || d.Dominates(1, 3) || !d.Dominates(3, 3) {
		t.Fatal("Dominates wrong on diamond")
	}
}

func TestPostdominatorsDiamond(t *testing.T) {
	g, _ := Build(diamond(t))
	pd := Postdominators(g)
	// join postdominates everything; its ipdom is the virtual exit (4).
	if pd.IDom[0] != 3 || pd.IDom[1] != 3 || pd.IDom[2] != 3 || pd.IDom[3] != 4 {
		t.Fatalf("ipdom = %v", pd.IDom)
	}
	if !pd.Dominates(3, 0) {
		t.Fatal("join should postdominate entry")
	}
}

func TestLoopsNested(t *testing.T) {
	f := nestedLoops(t)
	g, _ := Build(f)
	d := Dominators(g)
	lf := FindLoops(g, d)
	if len(lf.Loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(lf.Loops))
	}
	outer, inner := lf.Loops[0], lf.Loops[1]
	if len(outer.Blocks) < len(inner.Blocks) {
		outer, inner = inner, outer
	}
	if outer.Header != 1 || inner.Header != 2 {
		t.Fatalf("headers: outer=%d inner=%d", outer.Header, inner.Header)
	}
	if inner.Parent != outer || inner.Depth != 2 || outer.Depth != 1 {
		t.Fatalf("nesting wrong: parent=%v depths=%d,%d", inner.Parent, outer.Depth, inner.Depth)
	}
	if got := lf.Innermost(2); got != inner {
		t.Fatalf("Innermost(inner header) = %v", got)
	}
	if got := lf.Innermost(3); got != outer {
		t.Fatalf("Innermost(latch) = %v", got)
	}
	if lf.Innermost(0) != nil || lf.Innermost(4) != nil {
		t.Fatal("entry/exit should be in no loop")
	}
}

func TestRegionsNested(t *testing.T) {
	f := nestedLoops(t)
	fr, err := BuildRegions(f)
	if err != nil {
		t.Fatal(err)
	}
	// proc + 2 loops x (loop + body) = 5 regions.
	if len(fr.All) != 5 {
		t.Fatalf("got %d regions, want 5", len(fr.All))
	}
	inner := fr.Innermost(2)
	if inner.Kind != RegionLoopBody || inner.Loop.Header != 2 {
		t.Fatalf("innermost(2) = %v", inner)
	}
	// Chain: inner body -> inner loop -> outer body -> outer loop -> proc.
	chain := []RegionKind{RegionLoopBody, RegionLoop, RegionLoopBody, RegionLoop, RegionProc}
	r := inner
	for i, k := range chain {
		if r == nil || r.Kind != k {
			t.Fatalf("chain[%d] = %v, want kind %v", i, r, k)
		}
		r = r.Parent
	}
	if r != nil {
		t.Fatal("proc region must be the root")
	}
}

func TestForestCallEdges(t *testing.T) {
	p := ir.NewProgram("main")
	callee := ir.NewFunc(p, "walk")
	cb := callee.Block("entry")
	cb.Ret(0)
	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.MovI(14, 0)
	loop := fb.Block("loop")
	loop.Call("walk")
	loop.AddI(14, 14, 1)
	loop.CmpI(ir.CondLT, 6, 7, 14, 10)
	loop.On(6).Br("loop")
	x := fb.Block("exit")
	x.Halt()
	fo, err := BuildForest(p)
	if err != nil {
		t.Fatal(err)
	}
	sites := fo.Callers["walk"]
	if len(sites) != 1 {
		t.Fatalf("callers(walk) = %d, want 1", len(sites))
	}
	if sites[0].Region.Kind != RegionLoopBody {
		t.Fatalf("call site region = %v, want loop body", sites[0].Region)
	}
	dc := fo.DominantCaller("walk", map[int]uint64{})
	if dc == nil || dc.Caller.Name != "main" {
		t.Fatalf("DominantCaller = %v", dc)
	}
	if fo.DominantCaller("nosuch", nil) != nil {
		t.Fatal("DominantCaller invented a caller")
	}
}

func TestAddIndirectEdge(t *testing.T) {
	p := ir.NewProgram("main")
	callee := ir.NewFunc(p, "target")
	callee.Block("entry").Ret(0)
	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.MovBRFunc(2, "target")
	call := e.CallB(0, 2)
	e.Halt()
	fo, err := BuildForest(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(fo.Callers["target"]) != 0 {
		t.Fatal("indirect call should not be statically resolved")
	}
	fo.AddIndirectEdge(call.ID, "target")
	if len(fo.Callers["target"]) != 1 {
		t.Fatal("AddIndirectEdge did not record the edge")
	}
}

// randomGraph builds a random function of n blocks where each block ends in
// a conditional or unconditional branch to random targets (guaranteeing
// block 0 is the entry and at least one halt exists).
func randomGraph(r *rand.Rand, n int) *ir.Func {
	p := ir.NewProgram("f")
	fb := ir.NewFunc(p, "f")
	labels := make([]string, n)
	for i := range labels {
		labels[i] = string(rune('a'+i%26)) + string(rune('0'+i/26))
	}
	builders := make([]*ir.BlockBuilder, n)
	for i := range labels {
		builders[i] = fb.Block(labels[i])
	}
	for i, bb := range builders {
		bb.AddI(14, 14, 1)
		switch r.Intn(4) {
		case 0: // halt
			bb.Halt()
		case 1: // unconditional branch
			bb.Br(labels[r.Intn(n)])
		case 2: // conditional branch (fallthrough + target)
			if i == n-1 {
				bb.Br(labels[r.Intn(n)])
			} else {
				bb.On(6).Br(labels[r.Intn(n)])
			}
		case 3: // fallthrough
			if i == n-1 {
				bb.Halt()
			}
		}
	}
	return fb.F
}

// bruteDominates computes dominance by path enumeration: a dominates b iff
// removing a makes b unreachable from entry (or a == b).
func bruteDominates(g *Graph, a, b int) bool {
	if a == b {
		return true
	}
	seen := make([]bool, len(g.Succs))
	var stack []int
	if a != 0 {
		stack = append(stack, 0)
		seen[0] = true
	}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Succs[x] {
			if s == a || seen[s] {
				continue
			}
			seen[s] = true
			stack = append(stack, s)
		}
	}
	return !seen[b]
}

// TestQuickDominators: property — the CHK dominator tree agrees with
// brute-force dominance on random CFGs.
func TestQuickDominators(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fn := randomGraph(r, 2+r.Intn(14))
		g, err := Build(fn)
		if err != nil {
			t.Logf("build: %v", err)
			return false
		}
		d := Dominators(g)
		reach := g.Reachable()
		for a := range g.Succs {
			for b := range g.Succs {
				if !reach[a] || !reach[b] {
					continue
				}
				want := bruteDominates(g, a, b)
				if got := d.Dominates(a, b); got != want {
					t.Logf("seed %d: Dominates(%d,%d)=%v want %v", seed, a, b, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLoops: property — every loop header dominates all loop members,
// every latch is a member, and innermost() agrees with membership.
func TestQuickLoops(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fn := randomGraph(r, 2+r.Intn(14))
		g, err := Build(fn)
		if err != nil {
			return false
		}
		d := Dominators(g)
		lf := FindLoops(g, d)
		for _, l := range lf.Loops {
			for _, b := range l.Blocks {
				if !d.Dominates(l.Header, b) {
					t.Logf("seed %d: header %d does not dominate member %d", seed, l.Header, b)
					return false
				}
			}
			for _, latch := range l.Latches {
				if !l.Contains(latch) {
					return false
				}
			}
			if l.Parent != nil && !l.Parent.Contains(l.Header) {
				return false
			}
		}
		for b := range g.Succs {
			il := lf.Innermost(b)
			if il != nil && !il.Contains(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPostdominators: property — on random CFGs, a block with a single
// successor is postdominated by that successor, and Dominates is reflexive
// and antisymmetric for reachable blocks.
func TestQuickPostdominators(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fn := randomGraph(r, 2+r.Intn(14))
		g, err := Build(fn)
		if err != nil {
			return false
		}
		pd := Postdominators(g)
		// Postdominance is only meaningful when some reachable block
		// exits; otherwise the computation anchors a virtual exit at the
		// entry and path properties don't apply.
		reach := g.Reachable()
		hasExit := false
		for b := range g.Succs {
			if reach[b] && len(g.Succs[b]) == 0 {
				hasExit = true
			}
		}
		if !hasExit {
			return true
		}
		for b := range g.Succs {
			if pd.Depth(b) < 0 {
				continue // cannot reach exit
			}
			if !pd.Dominates(b, b) {
				return false
			}
			if len(g.Succs[b]) == 1 {
				s := g.Succs[b][0]
				if pd.Depth(s) >= 0 && !pd.Dominates(s, b) {
					t.Logf("seed %d: sole successor %d should postdominate %d", seed, s, b)
					return false
				}
			}
			for c := range g.Succs {
				if c != b && pd.Dominates(b, c) && pd.Dominates(c, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCFGDotRendering(t *testing.T) {
	f := nestedLoops(t)
	g, _ := Build(f)
	lf := FindLoops(g, Dominators(g))
	dot := g.Dot(lf)
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "back") {
		t.Fatalf("dot output missing back edges:\n%s", dot)
	}
	for _, b := range f.Blocks {
		if !strings.Contains(dot, b.Label) {
			t.Fatalf("dot output missing block %s", b.Label)
		}
	}
}
