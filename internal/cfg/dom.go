package cfg

// DomTree holds an (immediate-)dominator tree computed by the
// Cooper-Harvey-Kennedy iterative algorithm.
type DomTree struct {
	// IDom[b] is the immediate dominator of block b, or -1 for the root
	// and for unreachable blocks. IDom[root] == root by CHK convention is
	// normalized to -1 here.
	IDom []int
	// Children[b] lists the blocks immediately dominated by b.
	Children [][]int
	// depth[b] is the depth of b in the tree (root = 0, unreachable = -1).
	depth []int
	root  int
}

// Root returns the tree's root block.
func (d *DomTree) Root() int { return d.root }

// Dominates reports whether a dominates b (reflexively).
func (d *DomTree) Dominates(a, b int) bool {
	if d.depth[b] < 0 || d.depth[a] < 0 {
		return false
	}
	for d.depth[b] > d.depth[a] {
		b = d.IDom[b]
	}
	return a == b
}

// Depth returns b's depth in the dominator tree, or -1 if unreachable.
func (d *DomTree) Depth(b int) int { return d.depth[b] }

// Dominators computes the dominator tree of g rooted at the entry block.
func Dominators(g *Graph) *DomTree {
	return domTree(len(g.Succs), 0, g.Preds, g.RPO())
}

// Postdominators computes the postdominator tree of g. A virtual exit node
// (index len(blocks)) is appended, with an edge from every block that has no
// successors. Blocks on paths that never reach an exit (infinite loops) are
// additionally connected from their loop's members' perspective by treating
// any block unreachable in the reverse graph as an exit predecessor; their
// postdominator information remains conservative (-1).
func Postdominators(g *Graph) *DomTree {
	n := len(g.Succs)
	exit := n
	// For the dominator computation on the reverse graph rooted at exit:
	// predecessors-in-reverse-graph(b) = successors-in-forward-graph(b),
	// plus exit is a reverse-predecessor of every exit block.
	revPreds := make([][]int, n+1)
	exitless := true
	for b := 0; b < n; b++ {
		revPreds[b] = append(revPreds[b], g.Succs[b]...)
		if len(g.Succs[b]) == 0 {
			revPreds[b] = append(revPreds[b], exit)
			exitless = false
		}
	}
	if exitless && n > 0 {
		// Degenerate: no exit blocks at all; anchor the virtual exit to
		// the entry so the computation terminates.
		revPreds[0] = append(revPreds[0], exit)
	}
	// Reverse-graph RPO from exit.
	seen := make([]bool, n+1)
	var post []int
	var dfs func(int)
	dfs = func(b int) {
		seen[b] = true
		if b != exit {
			for _, p := range g.Preds[b] {
				if !seen[p] {
					dfs(p)
				}
			}
		} else {
			for x := 0; x < n; x++ {
				if len(g.Succs[x]) == 0 && !seen[x] {
					dfs(x)
				}
			}
			if exitless && n > 0 && !seen[0] {
				dfs(0)
			}
		}
		post = append(post, b)
	}
	dfs(exit)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return domTree(n+1, exit, revPreds, post)
}

// domTree runs the CHK iterative dominator algorithm.
func domTree(n, root int, preds [][]int, rpo []int) *DomTree {
	idom := make([]int, n)
	order := make([]int, n) // RPO number, -1 if unreachable
	for i := range idom {
		idom[i] = -1
		order[i] = -1
	}
	for i, b := range rpo {
		order[b] = i
	}
	idom[root] = root
	intersect := func(a, b int) int {
		for a != b {
			for order[a] > order[b] {
				a = idom[a]
			}
			for order[b] > order[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == root {
				continue
			}
			newIdom := -1
			for _, p := range preds[b] {
				if idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	idom[root] = -1
	d := &DomTree{IDom: idom, Children: make([][]int, n), depth: make([]int, n), root: root}
	for i := range d.depth {
		d.depth[i] = -1
	}
	d.depth[root] = 0
	// Compute depths in RPO (parents precede children in RPO for dom trees).
	for _, b := range rpo {
		if b == root || idom[b] == -1 {
			continue
		}
		d.Children[idom[b]] = append(d.Children[idom[b]], b)
		d.depth[b] = d.depth[idom[b]] + 1
	}
	return d
}
