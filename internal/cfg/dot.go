package cfg

import (
	"fmt"
	"strings"
)

// Dot renders the CFG in Graphviz dot syntax, clustering loop bodies and
// annotating block labels — a debugging aid for region-graph questions.
func (g *Graph) Dot(lf *LoopForest) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", g.F.Name)
	sb.WriteString("\tnode [shape=box, fontname=\"monospace\"];\n")
	for _, b := range g.F.Blocks {
		extra := ""
		if lf != nil {
			if l := lf.Innermost(b.Index); l != nil {
				extra = fmt.Sprintf("\\nloop@b%d depth %d", l.Header, l.Depth)
			}
		}
		fmt.Fprintf(&sb, "\tb%d [label=\"%s (%d instrs)%s\"];\n", b.Index, b.Label, len(b.Instrs), extra)
	}
	for bi, succs := range g.Succs {
		for _, s := range succs {
			attr := ""
			if lf != nil {
				if l := lf.Innermost(s); l != nil && l.Header == s && l.Contains(bi) {
					attr = " [color=red, label=\"back\"]"
				}
			}
			fmt.Fprintf(&sb, "\tb%d -> b%d%s;\n", bi, s, attr)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
