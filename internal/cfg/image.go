package cfg

import "ssp/internal/ir"

// ImageBlock is one basic block of a linked image: a maximal straight-line
// run of instructions that control can only enter at Start and only leave at
// End-1. Unlike the function-level Graph (which reflects the architected CFG
// of §3.1.1, where calls fall through and chk.c is a micro-architectural
// event), image blocks are cut for *execution threading*: every instruction
// that can redirect the program counter at runtime — br, call, callb, ret,
// chk.c (the lightweight-exception detour), spawn (the stub resume) — ends
// its block, so every PC the machine can ever jump to is a block Start.
type ImageBlock struct {
	// Start and End delimit the block's PCs: [Start, End).
	Start, End int
	// Succs lists the statically known successor blocks, falls-through
	// first where one exists. Blocks ending in ret/callb have none here.
	Succs []int
	// Dynamic marks a block whose terminator jumps through a branch
	// register (ret, callb): its successor set is runtime state.
	Dynamic bool
}

// redirects reports whether op can change the PC of the executing thread to
// something other than pc+1 (or, for call/chk/spawn, publishes pc+1 as a
// future jump target: the return address, the stub resume point).
func redirects(op ir.Op) bool {
	switch op {
	case ir.OpBr, ir.OpCall, ir.OpCallB, ir.OpRet, ir.OpChk, ir.OpSpawn,
		ir.OpHalt, ir.OpKill:
		return true
	}
	return false
}

// ImageBlocks partitions a linked image into execution-threading basic
// blocks and returns them with the PC→block index map. Leaders are the
// linked source blocks' starts (every branch target is one, by Link's
// construction) plus the fall-through PC of every call, callb, chk.c, and
// spawn — the addresses ret, the RSE stub resume, and the call return can
// land on. The partition therefore has the property the threaded compiler
// relies on: any PC a well-formed program can transfer control to is a
// block Start.
func ImageBlocks(img *ir.Image) ([]ImageBlock, []int32) {
	n := len(img.Code)
	if n == 0 {
		return nil, nil
	}
	leader := make([]bool, n+1)
	leader[0] = true
	for pc := 0; pc < n; pc++ {
		if pc == 0 || img.BlockOf[pc] != img.BlockOf[pc-1] {
			leader[pc] = true // linked source-block start
		}
		op := img.Code[pc].I.Op
		if redirects(op) && pc+1 <= n {
			leader[pc+1] = true
		}
	}
	var blocks []ImageBlock
	blockOf := make([]int32, n)
	start := 0
	for pc := 1; pc <= n; pc++ {
		if pc < n && !leader[pc] {
			continue
		}
		bi := len(blocks)
		blocks = append(blocks, ImageBlock{Start: start, End: pc})
		for p := start; p < pc; p++ {
			blockOf[p] = int32(bi)
		}
		start = pc
	}
	for bi := range blocks {
		b := &blocks[bi]
		l := &img.Code[b.End-1]
		t := l.I.Op
		fall := func() {
			if b.End < n {
				b.Succs = append(b.Succs, int(blockOf[b.End]))
			}
		}
		tgt := func() {
			if l.Tgt >= 0 && int(l.Tgt) < n {
				b.Succs = append(b.Succs, int(blockOf[l.Tgt]))
			}
		}
		switch {
		case t == ir.OpBr && l.I.Qp == ir.PTrue:
			tgt()
		case t == ir.OpBr:
			fall()
			tgt()
		case t == ir.OpCall:
			tgt()
		case t == ir.OpRet || t == ir.OpCallB:
			b.Dynamic = true
			if l.I.Qp != ir.PTrue {
				fall() // predicated: may fall through when nullified
			}
		case t == ir.OpHalt || t == ir.OpKill:
			if l.I.Qp != ir.PTrue {
				fall()
			}
		case t == ir.OpChk, t == ir.OpSpawn:
			// The architected successor is the fall-through; the stub
			// detour / context bind is a micro-architectural event whose
			// target (l.Tgt) is itself a block start by construction.
			fall()
			tgt()
		default:
			fall()
		}
	}
	return blocks, blockOf
}
