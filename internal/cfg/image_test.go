package cfg

import (
	"testing"

	"ssp/internal/ir"
	"ssp/internal/workloads"
)

// checkImageBlocks asserts the structural invariants the threaded compiler
// relies on: the blocks partition [0, len(code)) contiguously, blockOf is
// consistent with the partition, only a block's last instruction can redirect
// control, every listed successor is a valid block index, and every static
// branch/call/chk/spawn target in the image is a block Start.
func checkImageBlocks(t *testing.T, img *ir.Image) {
	t.Helper()
	blocks, blockOf := ImageBlocks(img)
	n := len(img.Code)
	if len(blockOf) != n {
		t.Fatalf("blockOf length %d, code length %d", len(blockOf), n)
	}
	isStart := make(map[int]bool, len(blocks))
	next := 0
	for bi, b := range blocks {
		if b.Start != next {
			t.Fatalf("block %d starts at %d, want %d (gap or overlap)", bi, b.Start, next)
		}
		if b.End <= b.Start || b.End > n {
			t.Fatalf("block %d has bounds [%d,%d)", bi, b.Start, b.End)
		}
		next = b.End
		isStart[b.Start] = true
		for pc := b.Start; pc < b.End; pc++ {
			if blockOf[pc] != int32(bi) {
				t.Fatalf("blockOf[%d] = %d, want %d", pc, blockOf[pc], bi)
			}
			if pc != b.End-1 && redirects(img.Code[pc].I.Op) {
				t.Fatalf("block %d has redirecting op %v mid-block at pc %d", bi, img.Code[pc].I.Op, pc)
			}
		}
		for _, s := range b.Succs {
			if s < 0 || s >= len(blocks) {
				t.Fatalf("block %d successor %d out of range", bi, s)
			}
		}
	}
	if next != n {
		t.Fatalf("blocks cover [0,%d), code length %d", next, n)
	}
	for pc := range img.Code {
		if tgt := img.Code[pc].Tgt; tgt >= 0 && int(tgt) < n && !isStart[int(tgt)] {
			t.Fatalf("pc %d targets %d, which is not a block start", pc, tgt)
		}
	}
}

// TestImageBlocksRandomPrograms: the partition invariants hold over seeded
// random programs, whose linked images mix loops, calls, and predication.
func TestImageBlocksRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		img, err := ir.Link(workloads.RandomProgram(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkImageBlocks(t, img)
	}
}

// TestImageBlocksBenchmarks: the invariants hold on every paper benchmark.
func TestImageBlocksBenchmarks(t *testing.T) {
	for _, spec := range workloads.All() {
		p, _ := spec.Build(spec.TestScale)
		img, err := ir.Link(p)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		checkImageBlocks(t, img)
	}
}

// TestImageBlocksCallShape pins the successor semantics on a hand-built
// image: a call block's successor is the callee entry (not the return
// point), the callee's ret block is Dynamic with no static successors, and
// the post-call PC is a block start (it is ret's landing pad).
func TestImageBlocksCallShape(t *testing.T) {
	p := ir.NewProgram("main")
	f := ir.NewFunc(p, "main")
	e := f.Block("entry")
	e.MovI(14, 1)
	e.Call("leaf")
	post := f.Block("post")
	post.Halt()
	g := ir.NewFunc(p, "leaf")
	l := g.Block("top")
	l.AddI(14, 14, 1)
	l.Ret(0)
	_ = post

	img, err := ir.Link(p)
	if err != nil {
		t.Fatal(err)
	}
	checkImageBlocks(t, img)
	blocks, blockOf := ImageBlocks(img)

	var callBlock, retBlock = -1, -1
	for bi, b := range blocks {
		switch img.Code[b.End-1].I.Op {
		case ir.OpCall:
			callBlock = bi
		case ir.OpRet:
			retBlock = bi
		}
	}
	if callBlock < 0 || retBlock < 0 {
		t.Fatalf("call/ret blocks not found: %d %d", callBlock, retBlock)
	}
	callee := int(blockOf[img.Code[blocks[callBlock].End-1].Tgt])
	if len(blocks[callBlock].Succs) != 1 || blocks[callBlock].Succs[0] != callee {
		t.Fatalf("call block succs %v, want [%d] (callee entry)", blocks[callBlock].Succs, callee)
	}
	if !blocks[retBlock].Dynamic || len(blocks[retBlock].Succs) != 0 {
		t.Fatalf("ret block: dynamic=%v succs=%v, want dynamic with no static successors",
			blocks[retBlock].Dynamic, blocks[retBlock].Succs)
	}
	// The instruction after the call must begin a block: it is the return
	// address ret jumps through.
	retAddr := blocks[callBlock].End
	if blocks[blockOf[retAddr]].Start != retAddr {
		t.Fatalf("return address %d is not a block start", retAddr)
	}
}

// TestImageBlocksPredicatedBranch pins that a predicated branch block lists
// the fall-through first, then the taken target, and an unpredicated branch
// lists only the target.
func TestImageBlocksPredicatedBranch(t *testing.T) {
	p := ir.NewProgram("main")
	f := ir.NewFunc(p, "main")
	e := f.Block("entry")
	e.CmpI(ir.CondLT, 6, 7, 14, 10)
	e.On(6).Br("exit")
	mid := f.Block("mid")
	mid.AddI(15, 15, 1)
	mid.Br("exit")
	x := f.Block("exit")
	x.Halt()
	_ = mid

	img, err := ir.Link(p)
	if err != nil {
		t.Fatal(err)
	}
	checkImageBlocks(t, img)
	blocks, blockOf := ImageBlocks(img)
	entry := blocks[blockOf[0]]
	if len(entry.Succs) != 2 || blocks[entry.Succs[0]].Start != entry.End {
		t.Fatalf("predicated branch succs %v, want fall-through first", entry.Succs)
	}
	midB := blocks[entry.Succs[0]]
	if len(midB.Succs) != 1 {
		t.Fatalf("unpredicated branch succs %v, want exactly the target", midB.Succs)
	}
}
