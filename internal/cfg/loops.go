package cfg

import "sort"

// Loop is a natural loop: the header plus all blocks that can reach a back
// edge without passing through the header.
type Loop struct {
	Header int
	// Blocks holds the member block indices (including the header), sorted.
	Blocks []int
	// In[b] reports membership for O(1) queries.
	In []bool
	// Parent is the innermost enclosing loop, or nil.
	Parent *Loop
	// Children are the loops immediately nested inside this one.
	Children []*Loop
	// Depth is the nesting depth; outermost loops have depth 1.
	Depth int
	// Latches are the sources of the loop's back edges.
	Latches []int
}

// Contains reports whether block b is a member of the loop.
func (l *Loop) Contains(b int) bool { return b < len(l.In) && l.In[b] }

// LoopForest is the set of natural loops of a function, with nesting.
type LoopForest struct {
	// Loops lists every loop, outermost first within a nest.
	Loops []*Loop
	// innermost[b] is the innermost loop containing block b, or nil.
	innermost []*Loop
}

// Innermost returns the innermost loop containing block b, or nil.
func (lf *LoopForest) Innermost(b int) *Loop {
	if b < len(lf.innermost) {
		return lf.innermost[b]
	}
	return nil
}

// FindLoops detects the natural loops of g using back edges in the dominator
// tree (an edge latch->header where header dominates latch). Back edges
// sharing a header are merged into one loop, the classic convention.
func FindLoops(g *Graph, dom *DomTree) *LoopForest {
	n := len(g.Succs)
	byHeader := map[int]*Loop{}
	reach := g.Reachable()
	for b := 0; b < n; b++ {
		if !reach[b] {
			continue
		}
		for _, s := range g.Succs[b] {
			if dom.Dominates(s, b) { // back edge b->s
				l := byHeader[s]
				if l == nil {
					l = &Loop{Header: s, In: make([]bool, n)}
					l.In[s] = true
					byHeader[s] = l
				}
				l.Latches = append(l.Latches, b)
				// Collect the natural-loop body by walking predecessors
				// from the latch until the header. Blocks unreachable
				// from the entry are excluded: they can have edges into
				// the loop but are not part of the executing program.
				stack := []int{b}
				for len(stack) > 0 {
					x := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					if l.In[x] || !reach[x] {
						continue
					}
					l.In[x] = true
					for _, p := range g.Preds[x] {
						stack = append(stack, p)
					}
				}
			}
		}
	}
	lf := &LoopForest{innermost: make([]*Loop, n)}
	for _, l := range byHeader {
		for b := 0; b < n; b++ {
			if l.In[b] {
				l.Blocks = append(l.Blocks, b)
			}
		}
		lf.Loops = append(lf.Loops, l)
	}
	// Deterministic order: by size descending (outer before inner), then
	// by header index.
	sort.Slice(lf.Loops, func(i, j int) bool {
		a, b := lf.Loops[i], lf.Loops[j]
		if len(a.Blocks) != len(b.Blocks) {
			return len(a.Blocks) > len(b.Blocks)
		}
		return a.Header < b.Header
	})
	// Nesting: the innermost strictly-containing loop is the parent. With
	// the size-descending order, scanning previous loops finds it.
	for i, l := range lf.Loops {
		for j := i - 1; j >= 0; j-- {
			outer := lf.Loops[j]
			if outer.Contains(l.Header) && outer != l {
				l.Parent = outer
				outer.Children = append(outer.Children, l)
				break
			}
		}
		if l.Parent != nil {
			l.Depth = l.Parent.Depth + 1
		} else {
			l.Depth = 1
		}
	}
	// innermost[b]: loops are outer-first, so later (smaller) loops win.
	for _, l := range lf.Loops {
		for _, b := range l.Blocks {
			lf.innermost[b] = l
		}
	}
	return lf
}
