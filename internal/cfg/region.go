package cfg

import (
	"fmt"
	"sort"

	"ssp/internal/ir"
)

// RegionKind distinguishes the region flavours of §3.1.1: "A region
// represents a loop, a loop body, or a procedure in the program."
type RegionKind uint8

const (
	// RegionProc is a whole procedure.
	RegionProc RegionKind = iota
	// RegionLoop is a natural loop viewed across its iterations (trip
	// count > 1); the unit chaining SP parallelizes over.
	RegionLoop
	// RegionLoopBody is a single iteration of a loop.
	RegionLoopBody
)

func (k RegionKind) String() string {
	switch k {
	case RegionProc:
		return "proc"
	case RegionLoop:
		return "loop"
	case RegionLoopBody:
		return "body"
	}
	return fmt.Sprintf("region%d", uint8(k))
}

// Region is a node of the hierarchical region graph: "a region graph is a
// hierarchical program representation that uses edges to connect a parent
// region to its child regions, that is, from callers to callees, and from an
// outer scope to an inner scope" (§3.1.1).
type Region struct {
	Kind RegionKind
	F    *ir.Func
	// Loop is set for RegionLoop/RegionLoopBody.
	Loop *Loop
	// Blocks are the member block indices within F (for a proc region, all
	// blocks; for loop regions, the loop's blocks).
	Blocks []int
	// Parent is the enclosing region within the same function (loop body
	// -> loop -> outer loop body -> ... -> proc); nil for proc regions.
	// Cross-procedure parents (callers) are edges in the Forest, since a
	// procedure has one region but many callers.
	Parent *Region
	// Children are the immediately nested regions within the function.
	Children []*Region
	// CallSites lists the call instructions whose blocks belong to this
	// region but to none of its child loop regions (immediate calls).
	CallSites []*ir.Instr
	// TripCount is the estimated iteration count for loop regions,
	// populated from block profiles by the SSP tool (§3.4.1). 1 for
	// non-loop regions.
	TripCount float64
}

// String renders a short region name for diagnostics.
func (r *Region) String() string {
	if r.Loop != nil {
		return fmt.Sprintf("%s:%s@b%d", r.F.Name, r.Kind, r.Loop.Header)
	}
	return fmt.Sprintf("%s:%s", r.F.Name, r.Kind)
}

// FuncRegions holds the region tree of one function plus lookup structures.
type FuncRegions struct {
	F    *ir.Func
	G    *Graph
	Dom  *DomTree
	PDom *DomTree
	LF   *LoopForest
	// Proc is the root procedure region.
	Proc *Region
	// All lists every region of the function, root first.
	All []*Region
	// innermost[b] is the innermost region containing block b.
	innermost []*Region
}

// Innermost returns the innermost region containing block index b.
func (fr *FuncRegions) Innermost(b int) *Region { return fr.innermost[b] }

// BuildRegions computes CFG, dominators, postdominators, loops, and the
// region tree of f.
func BuildRegions(f *ir.Func) (*FuncRegions, error) {
	g, err := Build(f)
	if err != nil {
		return nil, err
	}
	dom := Dominators(g)
	pdom := Postdominators(g)
	lf := FindLoops(g, dom)

	fr := &FuncRegions{F: f, G: g, Dom: dom, PDom: pdom, LF: lf}
	proc := &Region{Kind: RegionProc, F: f, TripCount: 1}
	for _, b := range f.Blocks {
		proc.Blocks = append(proc.Blocks, b.Index)
	}
	fr.Proc = proc
	fr.All = append(fr.All, proc)

	// Loop regions: each natural loop contributes a Loop region (across
	// iterations) whose single child is its LoopBody region; inner loops
	// hang off the body.
	bodyOf := map[*Loop]*Region{}
	for _, l := range lf.Loops {
		loopR := &Region{Kind: RegionLoop, F: f, Loop: l, Blocks: l.Blocks, TripCount: 1}
		bodyR := &Region{Kind: RegionLoopBody, F: f, Loop: l, Blocks: l.Blocks, TripCount: 1}
		loopR.Children = []*Region{bodyR}
		bodyR.Parent = loopR
		bodyOf[l] = bodyR
		fr.All = append(fr.All, loopR, bodyR)
	}
	for _, l := range lf.Loops {
		loopR := bodyOf[l].Parent
		if l.Parent != nil {
			parent := bodyOf[l.Parent]
			loopR.Parent = parent
			parent.Children = append(parent.Children, loopR)
		} else {
			loopR.Parent = proc
			proc.Children = append(proc.Children, loopR)
		}
	}
	// Innermost region per block: the innermost loop's body, else proc.
	fr.innermost = make([]*Region, len(f.Blocks))
	for bi := range f.Blocks {
		if l := lf.Innermost(bi); l != nil {
			fr.innermost[bi] = bodyOf[l]
		} else {
			fr.innermost[bi] = proc
		}
	}
	// Immediate call sites per region.
	for _, b := range f.Blocks {
		r := fr.innermost[b.Index]
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall || in.Op == ir.OpCallB {
				r.CallSites = append(r.CallSites, in)
			}
		}
	}
	return fr, nil
}

// Forest is the program-wide region graph: per-function trees plus
// caller->callee edges.
type Forest struct {
	P       *ir.Program
	ByFunc  map[string]*FuncRegions
	Callers map[string][]CallSite
}

// CallSite records one static call: the calling instruction, the region it
// sits in, and the callee name ("" for unresolved indirect calls; the
// profiler's dynamic call graph fills those in, §3.1.2).
type CallSite struct {
	Caller *ir.Func
	Region *Region
	Instr  *ir.Instr
	Callee string
}

// BuildForest analyses every function of the program and records static
// caller edges. Indirect-call targets resolved by profiling can be added
// with AddIndirectEdge.
func BuildForest(p *ir.Program) (*Forest, error) {
	fo := &Forest{P: p, ByFunc: make(map[string]*FuncRegions), Callers: make(map[string][]CallSite)}
	for _, f := range p.Funcs {
		fr, err := BuildRegions(f)
		if err != nil {
			return nil, err
		}
		fo.ByFunc[f.Name] = fr
	}
	for _, f := range p.Funcs {
		fr := fo.ByFunc[f.Name]
		for _, b := range f.Blocks {
			r := fr.Innermost(b.Index)
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall {
					fo.Callers[in.Target] = append(fo.Callers[in.Target], CallSite{Caller: f, Region: r, Instr: in, Callee: in.Target})
				}
			}
		}
	}
	return fo, nil
}

// AddIndirectEdge records a profiled indirect-call edge from the region
// containing the callb instruction with the given ID to callee.
func (fo *Forest) AddIndirectEdge(callID int, callee string) {
	for _, f := range fo.P.Funcs {
		fr := fo.ByFunc[f.Name]
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.ID == callID {
					fo.Callers[callee] = append(fo.Callers[callee], CallSite{Caller: f, Region: fr.Innermost(b.Index), Instr: in, Callee: callee})
					return
				}
			}
		}
	}
}

// DominantCaller returns the call site most frequently executed for callee
// according to freq (a map from call-instruction ID to execution count); nil
// if the callee has no recorded callers. The region-based slicer follows this
// edge when growing a slice past a procedure boundary, approximating "the
// call sites currently on the call stack" of the context-sensitive slice
// definition (§3.1) with the dominant dynamic context.
func (fo *Forest) DominantCaller(callee string, freq map[int]uint64) *CallSite {
	sites := fo.Callers[callee]
	if len(sites) == 0 {
		return nil
	}
	best := 0
	sort.SliceStable(sites, func(i, j int) bool { return sites[i].Instr.ID < sites[j].Instr.ID })
	for i := 1; i < len(sites); i++ {
		if freq[sites[i].Instr.ID] > freq[sites[best].Instr.ID] {
			best = i
		}
	}
	return &sites[best]
}
