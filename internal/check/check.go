// Package check is the differential and invariant validation subsystem for
// the SSP toolchain. The paper's central safety claim (§2) is that adaptation
// "does not alter the architectural state of the main thread", and the whole
// evaluation rests on three engines — the functional interpreter, the
// in-order model, and the OOO model — agreeing on what a program does while
// disagreeing only on when. This package asserts exactly that, in three
// layers:
//
//  1. Differential: the same linked image, executed by the interpreter and
//     both cycle models, yields identical final main-thread registers,
//     memory checksum, and (for programs without SSP attachments, whose
//     architectural path is timing-independent) retired main-thread
//     instruction counts.
//  2. Metamorphic: an adapted program's main-thread architectural state
//     equals the original's under both machine models, and its speculative
//     threads never attempt a store (Result.SpecStores == 0).
//  3. Conservation: every sim.Result is internally consistent — the cycle
//     breakdown and the context-utilization histogram each sum to Cycles,
//     cache hit counts reconcile with access counts at every level, and the
//     spawn accounting covers every taken chk.c.
//
// All layers are fed by workloads.RandomProgram, so any violation reproduces
// from its seed alone (cmd/sspcheck -seed N).
package check

import (
	"fmt"
	"math/rand"

	"ssp/internal/ir"
	"ssp/internal/profile"
	"ssp/internal/sim"
	"ssp/internal/sim/decode"
	"ssp/internal/sim/mem"
	"ssp/internal/ssp"
	"ssp/internal/workloads"
)

// maxInterpInstrs bounds functional interpretation of checked programs.
const maxInterpInstrs = 100_000_000

// Configs returns the machine configurations a check run exercises: the
// in-order and OOO models, on the scaled-down test memory system when tiny
// is set (the configuration used by cmd/sspcheck and the test suites).
func Configs(tiny bool) []sim.Config {
	io, oo := sim.DefaultInOrder(), sim.DefaultOOO()
	if tiny {
		io.UseTinyMem()
		oo.UseTinyMem()
	}
	return []sim.Config{io, oo}
}

// hasSSP reports whether the program carries SSP attachments (chk.c or
// spawn); their trigger timing is machine-dependent, so instruction counts
// and the reserved scratch register may legitimately differ across engines.
func hasSSP(p *ir.Program) bool {
	found := false
	for _, f := range p.Funcs {
		f.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) {
			if in.Op == ir.OpChk || in.Op == ir.OpSpawn {
				found = true
			}
		})
	}
	return found
}

// run executes one engine over a predecoded image and applies the
// conservation layer to its result. Callers predecode once and share the
// program across every engine and configuration of a check.
func run(cfg sim.Config, dp *decode.Program) (*sim.Result, error) {
	return runMachine(sim.NewPredecoded(cfg, dp))
}

// runMachine executes an already-built machine and applies the conservation
// layer, for callers that manage machine construction themselves (the
// hot-path gate reuses one machine across runs via Machine.Reset).
func runMachine(m *sim.Machine) (*sim.Result, error) {
	res, err := m.Run()
	if err != nil {
		return nil, err
	}
	if res.TimedOut {
		return nil, fmt.Errorf("%v: watchdog expired after %d cycles", m.Cfg.Model, res.Cycles)
	}
	if res.MainKilled {
		return nil, fmt.Errorf("%v: main thread executed thread_kill_self", m.Cfg.Model)
	}
	if err := Conservation(res); err != nil {
		return nil, fmt.Errorf("%v: %w", m.Cfg.Model, err)
	}
	return res, nil
}

// compareRegs diffs two main-thread register files, optionally skipping the
// SSP scratch register (stubs stage the countdown bound through it on the
// main thread, so it diverges between original and adapted runs by design).
func compareRegs(a, b [ir.NumRegs]uint64, skipScratch bool, what string) error {
	for r := 0; r < ir.NumRegs; r++ {
		if skipScratch && ir.Reg(r) == ssp.ScratchGR {
			continue
		}
		if a[r] != b[r] {
			return fmt.Errorf("%s: r%d = %#x vs %#x", what, r, a[r], b[r])
		}
	}
	return nil
}

// Differential runs the linked program under the functional interpreter and
// every configured cycle model and asserts they agree on final main-thread
// registers and memory checksum; for SSP-free programs the retired
// main-thread instruction counts must also be identical (layer 1). Every
// produced Result additionally passes the conservation layer.
func Differential(cfgs []sim.Config, p *ir.Program, maxInstrs int64) error {
	img, err := ir.Link(p)
	if err != nil {
		return fmt.Errorf("check: link: %w", err)
	}
	dp := sim.Predecode(img)
	ssped := hasSSP(p)
	ref, err := sim.InterpretPredecoded(cfgs[0], dp, maxInstrs)
	if err != nil {
		return fmt.Errorf("check: interpret: %w", err)
	}
	refSum := ref.Mem.Checksum()
	for _, cfg := range cfgs {
		res, err := run(cfg, dp)
		if err != nil {
			return fmt.Errorf("check: differential: %w", err)
		}
		if err := compareRegs(res.FinalRegs, ref.Regs, ssped, "regs vs interpreter"); err != nil {
			return fmt.Errorf("check: differential %v: %w", cfg.Model, err)
		}
		if res.MemChecksum != refSum {
			return fmt.Errorf("check: differential %v: memory checksum %#x, interpreter %#x", cfg.Model, res.MemChecksum, refSum)
		}
		if !ssped && res.MainInstrs != ref.Instrs {
			return fmt.Errorf("check: differential %v: retired %d main instrs, interpreter %d", cfg.Model, res.MainInstrs, ref.Instrs)
		}
	}
	return nil
}

// Metamorphic asserts the SSP invariant (layer 2): under every configured
// machine model the adapted program finishes with the same main-thread
// architectural state (registers minus the reserved scratch, memory
// checksum) as the original, and its speculative threads never attempt a
// store. Every produced Result also passes the conservation layer.
func Metamorphic(cfgs []sim.Config, orig, adapted *ir.Program) error {
	imgO, err := ir.Link(orig)
	if err != nil {
		return fmt.Errorf("check: link original: %w", err)
	}
	imgA, err := ir.Link(adapted)
	if err != nil {
		return fmt.Errorf("check: link adapted: %w", err)
	}
	dpO, dpA := sim.Predecode(imgO), sim.Predecode(imgA)
	for _, cfg := range cfgs {
		resO, err := run(cfg, dpO)
		if err != nil {
			return fmt.Errorf("check: metamorphic original: %w", err)
		}
		resA, err := run(cfg, dpA)
		if err != nil {
			return fmt.Errorf("check: metamorphic adapted: %w", err)
		}
		if err := MetamorphicResults(resO, resA); err != nil {
			return fmt.Errorf("%v: %w", cfg.Model, err)
		}
	}
	return nil
}

// MetamorphicResults applies the metamorphic invariant to two results that
// were already computed on the same machine model and inputs: the adapted
// run must reproduce the original's main-thread architectural state
// (registers minus the reserved scratch, memory checksum) and its
// speculative threads must never store. Callers that already hold both
// results — the closed-loop tuner gates every round this way — avoid the
// four fresh simulations Metamorphic performs.
func MetamorphicResults(orig, adapted *sim.Result) error {
	if err := compareRegs(adapted.FinalRegs, orig.FinalRegs, true, "adapted vs original"); err != nil {
		return fmt.Errorf("check: metamorphic: %w", err)
	}
	if adapted.MemChecksum != orig.MemChecksum {
		return fmt.Errorf("check: metamorphic: adapted memory checksum %#x, original %#x", adapted.MemChecksum, orig.MemChecksum)
	}
	if adapted.SpecStores != 0 {
		return fmt.Errorf("check: metamorphic: speculative threads attempted %d stores", adapted.SpecStores)
	}
	return nil
}

// Conservation asserts the internal-consistency invariants of one simulation
// result (layer 3).
func Conservation(res *sim.Result) error {
	var bd int64
	for _, c := range res.Breakdown {
		bd += c
	}
	if bd != res.Cycles {
		return fmt.Errorf("check: conservation: breakdown sums to %d, cycles %d", bd, res.Cycles)
	}
	var hist int64
	for _, c := range res.SpecActiveHist {
		hist += c
	}
	if hist != res.Cycles {
		return fmt.Errorf("check: conservation: utilization histogram sums to %d, cycles %d", hist, res.Cycles)
	}
	if res.Hier != nil {
		if err := reconcile(&res.Hier.Totals, "totals"); err != nil {
			return err
		}
		var perLoad uint64
		for id, s := range res.Hier.ByLoad() {
			if err := reconcile(s, fmt.Sprintf("load %d", id)); err != nil {
				return err
			}
			perLoad += s.Accesses
		}
		if perLoad != res.Hier.Totals.Accesses {
			return fmt.Errorf("check: conservation: per-load accesses sum to %d, totals %d", perLoad, res.Hier.Totals.Accesses)
		}
	}
	// Every taken chk.c redirects the main thread into a straight-line stub
	// that ends in spawn, so — on runs that finished — each taken check
	// produced a spawn attempt (started or ignored); chained slices only
	// add to the left side.
	if !res.TimedOut && !res.MainKilled && res.Spawns+res.SpawnsIgnored < res.ChkTaken {
		return fmt.Errorf("check: conservation: %d spawns + %d ignored < %d chk.c taken", res.Spawns, res.SpawnsIgnored, res.ChkTaken)
	}
	return nil
}

// reconcile asserts hits+misses reconcile with accesses for one load stat:
// every counted access lands in exactly one (level, full/partial) bucket.
func reconcile(s *mem.LoadStat, what string) error {
	var hits uint64
	for lvl := range s.Hits {
		hits += s.Hits[lvl][0] + s.Hits[lvl][1]
	}
	if hits != s.Accesses {
		return fmt.Errorf("check: conservation: %s: %d bucketed accesses, %d counted", what, hits, s.Accesses)
	}
	return nil
}

// PredecodeEquivalence asserts that the predecode layer is semantically
// inert (the regression gate for the decode-once refactor): for every
// configured machine model, an engine over a privately predecoded image, two
// consecutive engines over one shared predecoded image, and an engine with
// per-cycle stats instrumentation detached all agree on the architectural
// triple — final main-thread registers, memory checksum, and retired
// main-thread instruction count. The repeated shared run would expose any
// engine mutating the supposedly immutable decode; the stats-off run would
// expose timing or architectural state leaking through the hook layer.
func PredecodeEquivalence(cfgs []sim.Config, p *ir.Program) error {
	img, err := ir.Link(p)
	if err != nil {
		return fmt.Errorf("check: link: %w", err)
	}
	shared := sim.Predecode(img)
	for _, cfg := range cfgs {
		fresh, err := run(cfg, sim.Predecode(img))
		if err != nil {
			return fmt.Errorf("check: predecode %v: fresh: %w", cfg.Model, err)
		}
		first, err := run(cfg, shared)
		if err != nil {
			return fmt.Errorf("check: predecode %v: shared: %w", cfg.Model, err)
		}
		second, err := run(cfg, shared)
		if err != nil {
			return fmt.Errorf("check: predecode %v: shared rerun: %w", cfg.Model, err)
		}
		// Stats-off run: Breakdown/SpecActiveHist are deliberately empty, so
		// it bypasses run()'s conservation layer.
		fast := sim.NewPredecoded(cfg, shared)
		fast.DisableStats()
		quick, err := fast.Run()
		if err != nil {
			return fmt.Errorf("check: predecode %v: stats-off: %w", cfg.Model, err)
		}
		if quick.TimedOut {
			return fmt.Errorf("check: predecode %v: stats-off: watchdog expired", cfg.Model)
		}
		for _, alt := range []struct {
			what string
			res  *sim.Result
		}{
			{"shared decode vs fresh decode", first},
			{"shared decode rerun vs fresh decode", second},
			{"stats-off vs fresh decode", quick},
		} {
			if err := compareRegs(alt.res.FinalRegs, fresh.FinalRegs, false, alt.what); err != nil {
				return fmt.Errorf("check: predecode %v: %w", cfg.Model, err)
			}
			if alt.res.MemChecksum != fresh.MemChecksum {
				return fmt.Errorf("check: predecode %v: %s: memory checksum %#x vs %#x", cfg.Model, alt.what, alt.res.MemChecksum, fresh.MemChecksum)
			}
			if alt.res.MainInstrs != fresh.MainInstrs {
				return fmt.Errorf("check: predecode %v: %s: retired %d main instrs vs %d", cfg.Model, alt.what, alt.res.MainInstrs, fresh.MainInstrs)
			}
			if alt.res.Cycles != fresh.Cycles {
				return fmt.Errorf("check: predecode %v: %s: %d cycles vs %d", cfg.Model, alt.what, alt.res.Cycles, fresh.Cycles)
			}
		}
	}
	return nil
}

// FastForwardEquivalence asserts that the stall-aware fast-forward timing
// core is an execution strategy, not a model change (the regression gate for
// fastforward.go): for every configured machine model, a per-cycle run and a
// fast-forwarded run of the same predecoded image agree bit-for-bit on the
// complete result — cycles, architectural state, every cell of the Figure 10
// breakdown and the utilization histogram, the event counters, and the full
// per-load memory-system statistics. A stats-off pair is compared as well,
// since detaching the cycle hook removes the pending-fill classification
// events and exercises the shorter event set. The fast run must also pass
// the conservation layer (run() applies it), which is what makes the bulk
// crediting honest rather than merely internally consistent.
func FastForwardEquivalence(cfgs []sim.Config, p *ir.Program) error {
	img, err := ir.Link(p)
	if err != nil {
		return fmt.Errorf("check: link: %w", err)
	}
	dp := sim.Predecode(img)
	for _, cfg := range cfgs {
		slowCfg, fastCfg := cfg, cfg
		slowCfg.FastForward, fastCfg.FastForward = false, true
		slow, err := run(slowCfg, dp)
		if err != nil {
			return fmt.Errorf("check: fastforward %v: per-cycle: %w", cfg.Model, err)
		}
		fast, err := run(fastCfg, dp)
		if err != nil {
			return fmt.Errorf("check: fastforward %v: fast: %w", cfg.Model, err)
		}
		if err := sameTiming(fast, slow); err != nil {
			return fmt.Errorf("check: fastforward %v: %w", cfg.Model, err)
		}
		// Stats-off pair: no cycle hook means no pending-fill events bound
		// the jumps, so the core must stay cycle-exact on timing alone.
		var offRes [2]*sim.Result
		for i, c := range []sim.Config{slowCfg, fastCfg} {
			m := sim.NewPredecoded(c, dp)
			m.DisableStats()
			r, err := m.Run()
			if err != nil {
				return fmt.Errorf("check: fastforward %v: stats-off: %w", cfg.Model, err)
			}
			if r.TimedOut {
				return fmt.Errorf("check: fastforward %v: stats-off: watchdog expired", cfg.Model)
			}
			offRes[i] = r
		}
		if err := compareRegs(offRes[1].FinalRegs, offRes[0].FinalRegs, false, "stats-off fast vs per-cycle"); err != nil {
			return fmt.Errorf("check: fastforward %v: %w", cfg.Model, err)
		}
		if offRes[1].Cycles != offRes[0].Cycles {
			return fmt.Errorf("check: fastforward %v: stats-off: %d cycles vs %d", cfg.Model, offRes[1].Cycles, offRes[0].Cycles)
		}
		if offRes[1].MemChecksum != offRes[0].MemChecksum {
			return fmt.Errorf("check: fastforward %v: stats-off: memory checksum %#x vs %#x", cfg.Model, offRes[1].MemChecksum, offRes[0].MemChecksum)
		}
	}
	return nil
}

// sameTiming diffs two results field by field, excluding only the
// FastForwards/FastForwardedCycles strategy counters (which describe how the
// host got there, not where the simulated machine ended up).
func sameTiming(fast, slow *sim.Result) error {
	if err := compareRegs(fast.FinalRegs, slow.FinalRegs, false, "fast vs per-cycle"); err != nil {
		return err
	}
	for _, c := range []struct {
		what       string
		fast, slow int64
	}{
		{"cycles", fast.Cycles, slow.Cycles},
		{"main instrs", fast.MainInstrs, slow.MainInstrs},
		{"spec instrs", fast.SpecInstrs, slow.SpecInstrs},
		{"spawns", fast.Spawns, slow.Spawns},
		{"spawns ignored", fast.SpawnsIgnored, slow.SpawnsIgnored},
		{"chk taken", fast.ChkTaken, slow.ChkTaken},
		{"mispredicts", fast.Mispredicts, slow.Mispredicts},
		{"spec stores", fast.SpecStores, slow.SpecStores},
	} {
		if c.fast != c.slow {
			return fmt.Errorf("%s: %d vs %d", c.what, c.fast, c.slow)
		}
	}
	if fast.MemChecksum != slow.MemChecksum {
		return fmt.Errorf("memory checksum %#x vs %#x", fast.MemChecksum, slow.MemChecksum)
	}
	for cat := sim.Category(0); cat < sim.NumCategories; cat++ {
		if fast.Breakdown[cat] != slow.Breakdown[cat] {
			return fmt.Errorf("breakdown[%v]: %d vs %d", cat, fast.Breakdown[cat], slow.Breakdown[cat])
		}
	}
	if len(fast.SpecActiveHist) != len(slow.SpecActiveHist) {
		return fmt.Errorf("utilization histogram length %d vs %d", len(fast.SpecActiveHist), len(slow.SpecActiveHist))
	}
	for k := range fast.SpecActiveHist {
		if fast.SpecActiveHist[k] != slow.SpecActiveHist[k] {
			return fmt.Errorf("utilization[%d]: %d vs %d", k, fast.SpecActiveHist[k], slow.SpecActiveHist[k])
		}
	}
	if fast.Hier.Totals != slow.Hier.Totals {
		return fmt.Errorf("memory totals %+v vs %+v", fast.Hier.Totals, slow.Hier.Totals)
	}
	fastLoads, slowLoads := fast.Hier.ByLoad(), slow.Hier.ByLoad()
	if len(fastLoads) != len(slowLoads) {
		return fmt.Errorf("per-load stat count %d vs %d", len(fastLoads), len(slowLoads))
	}
	for id, fs := range fastLoads {
		ss := slowLoads[id]
		if ss == nil || *fs != *ss {
			return fmt.Errorf("per-load stats for load %d diverge: %+v vs %+v", id, fs, ss)
		}
	}
	return nil
}

// FastForwardSeed runs the fast-forward equivalence gate on an original and
// an adapted random program from one seed; sweeping it over N seeds is the
// regression net for the stall-jump core (cmd/sspcheck -fastforward). The
// adapted program matters: speculative threads exercise the round-robin
// cursor replay and the multi-thread veto paths that a single-threaded run
// never reaches.
func FastForwardSeed(seed int64, cfgs []sim.Config) error {
	p := workloads.RandomProgram(seed)
	if err := FastForwardEquivalence(cfgs, p); err != nil {
		return fmt.Errorf("seed %d: original: %w", seed, err)
	}
	prof, err := profile.Collect(p, cfgs[0])
	if err != nil {
		return fmt.Errorf("seed %d: profile: %w", seed, err)
	}
	adapted, _, err := ssp.Adapt(p, prof, ssp.DefaultOptions(), fmt.Sprintf("seed%d", seed))
	if err != nil {
		return fmt.Errorf("seed %d: adapt: %w", seed, err)
	}
	if err := FastForwardEquivalence(cfgs, adapted); err != nil {
		return fmt.Errorf("seed %d: adapted: %w", seed, err)
	}
	return nil
}

// HotPathEquivalence asserts that the flattened hot-path data layout (radix
// page table, dense per-load stats, ring-buffer windows) and Machine.Reset
// reuse are invisible in results (the regression gate for the map-free
// memory/stats refactor): for every configured machine model and every given
// program, a run on a single machine that is Reset and reused across all
// (model, program) cells — crossing model switches, program switches, and
// dirty caches/predictors/stat tables — must agree bit-for-bit with a run on
// a freshly constructed machine: cycles, breakdowns, histograms, event
// counters, and the complete per-load memory statistics (sameTiming). Every
// run also passes the conservation layer, so the dense stat table has to
// reconcile exactly like the map it replaced.
func HotPathEquivalence(cfgs []sim.Config, progs ...*ir.Program) error {
	dps := make([]*decode.Program, len(progs))
	for i, p := range progs {
		img, err := ir.Link(p)
		if err != nil {
			return fmt.Errorf("check: link program %d: %w", i, err)
		}
		dps[i] = sim.Predecode(img)
	}
	fresh := make([][]*sim.Result, len(cfgs))
	for ci, cfg := range cfgs {
		fresh[ci] = make([]*sim.Result, len(dps))
		for pi, dp := range dps {
			r, err := run(cfg, dp)
			if err != nil {
				return fmt.Errorf("check: hotpath %v: fresh program %d: %w", cfg.Model, pi, err)
			}
			fresh[ci][pi] = r
		}
	}
	// One machine walks every cell in sequence; each Reset must scrub the
	// previous cell's state (pages, caches, TLB, predictor, windows, stats)
	// without losing the layout reuse the hot path depends on.
	var m *sim.Machine
	reused := func(ci, pi int) error {
		cfg, dp := cfgs[ci], dps[pi]
		if m == nil {
			m = sim.NewPredecoded(cfg, dp)
		} else {
			m.Reset(cfg, dp)
		}
		r, err := runMachine(m)
		if err != nil {
			return fmt.Errorf("check: hotpath %v: reused program %d: %w", cfg.Model, pi, err)
		}
		if err := sameTiming(r, fresh[ci][pi]); err != nil {
			return fmt.Errorf("check: hotpath %v: reused machine, program %d: %w", cfg.Model, pi, err)
		}
		return nil
	}
	for ci := range cfgs {
		for pi := range dps {
			if err := reused(ci, pi); err != nil {
				return err
			}
		}
	}
	// Close the loop: Reset from the last cell back to the first, so the
	// sweep also covers the final-model -> first-model transition.
	return reused(0, 0)
}

// HotPathSeed runs the hot-path equivalence gate on an original and an
// adapted random program from one seed; sweeping it over N seeds is the
// regression net for the flattened data layout and machine pooling
// (cmd/sspcheck -hotpath). The adapted program matters: prefetches exercise
// the ring-buffer accuracy window and spawns exercise per-thread buffer
// reuse, which the original program never touches.
func HotPathSeed(seed int64, cfgs []sim.Config) error {
	p := workloads.RandomProgram(seed)
	prof, err := profile.Collect(p, cfgs[0])
	if err != nil {
		return fmt.Errorf("seed %d: profile: %w", seed, err)
	}
	adapted, _, err := ssp.Adapt(p, prof, ssp.DefaultOptions(), fmt.Sprintf("seed%d", seed))
	if err != nil {
		return fmt.Errorf("seed %d: adapt: %w", seed, err)
	}
	if err := HotPathEquivalence(cfgs, p, adapted); err != nil {
		return fmt.Errorf("seed %d: %w", seed, err)
	}
	return nil
}

// PredecodeSeed runs the predecode-equivalence gate on one random program;
// sweeping it over N seeds is the regression net for the table-dispatch
// execution core (cmd/sspcheck -predecode).
func PredecodeSeed(seed int64, cfgs []sim.Config) error {
	if err := PredecodeEquivalence(cfgs, workloads.RandomProgram(seed)); err != nil {
		return fmt.Errorf("seed %d: %w", seed, err)
	}
	return nil
}

// ThreadedEquivalence asserts that the closure-threaded execution core
// (internal/sim/threaded) is an execution strategy, not a model change (the
// regression gate for the threaded-code refactor): for every configured
// machine model, with fast-forwarding both off and on, a table-dispatch run
// and threaded runs of the same program agree bit-for-bit on the complete
// result — cycles, architectural state, every cell of the Figure 10 breakdown
// and the utilization histogram, the event counters, and the full per-load
// memory statistics. The threaded side runs three ways: over a privately
// predecoded image (fresh chain compile), over a shared predecoded image
// (memoized compile), and a rerun over the same shared image (warm sidecar) —
// the rerun would expose an engine mutating the supposedly immutable compiled
// chains. A stats-off pair is compared as well, since detaching the cycle
// hook exercises the devirtualized default-stats path's absence. Finally the
// functional interpreter's chain walker is compared against its table loop on
// final registers, instruction count, and memory checksum.
func ThreadedEquivalence(cfgs []sim.Config, p *ir.Program) error {
	img, err := ir.Link(p)
	if err != nil {
		return fmt.Errorf("check: link: %w", err)
	}
	shared := sim.Predecode(img)

	// Functional interpreter: chains vs table loop.
	icOff, icOn := cfgs[0], cfgs[0]
	icOff.Threaded, icOn.Threaded = false, true
	tblI, err := sim.InterpretPredecoded(icOff, shared, maxInterpInstrs)
	if err != nil {
		return fmt.Errorf("check: threaded: table interpret: %w", err)
	}
	thrI, err := sim.InterpretPredecoded(icOn, shared, maxInterpInstrs)
	if err != nil {
		return fmt.Errorf("check: threaded: chain interpret: %w", err)
	}
	if err := compareRegs(thrI.Regs, tblI.Regs, false, "chain interpreter vs table"); err != nil {
		return fmt.Errorf("check: threaded: %w", err)
	}
	if thrI.Instrs != tblI.Instrs {
		return fmt.Errorf("check: threaded: chain interpreter retired %d instrs, table %d", thrI.Instrs, tblI.Instrs)
	}
	if thrI.Mem.Checksum() != tblI.Mem.Checksum() {
		return fmt.Errorf("check: threaded: chain interpreter checksum %#x, table %#x", thrI.Mem.Checksum(), tblI.Mem.Checksum())
	}

	for _, cfg := range cfgs {
		for _, ff := range []bool{false, true} {
			off, on := cfg, cfg
			off.Threaded, on.Threaded = false, true
			off.FastForward, on.FastForward = ff, ff
			ref, err := run(off, shared)
			if err != nil {
				return fmt.Errorf("check: threaded %v ff=%v: table: %w", cfg.Model, ff, err)
			}
			fresh, err := run(on, sim.Predecode(img))
			if err != nil {
				return fmt.Errorf("check: threaded %v ff=%v: fresh: %w", cfg.Model, ff, err)
			}
			first, err := run(on, shared)
			if err != nil {
				return fmt.Errorf("check: threaded %v ff=%v: shared: %w", cfg.Model, ff, err)
			}
			second, err := run(on, shared)
			if err != nil {
				return fmt.Errorf("check: threaded %v ff=%v: shared rerun: %w", cfg.Model, ff, err)
			}
			for _, alt := range []struct {
				what string
				res  *sim.Result
			}{
				{"fresh compile", fresh},
				{"shared compile", first},
				{"shared compile rerun", second},
			} {
				if err := sameTiming(alt.res, ref); err != nil {
					return fmt.Errorf("check: threaded %v ff=%v: %s vs table: %w", cfg.Model, ff, alt.what, err)
				}
			}
			// Stats-off pair: Breakdown/SpecActiveHist are deliberately
			// empty, bypassing run()'s conservation layer, and the engines'
			// devirtualized default-stats branch is not taken.
			var offRes [2]*sim.Result
			for i, c := range []sim.Config{off, on} {
				m := sim.NewPredecoded(c, shared)
				m.DisableStats()
				r, err := m.Run()
				if err != nil {
					return fmt.Errorf("check: threaded %v ff=%v: stats-off: %w", cfg.Model, ff, err)
				}
				if r.TimedOut {
					return fmt.Errorf("check: threaded %v ff=%v: stats-off: watchdog expired", cfg.Model, ff)
				}
				offRes[i] = r
			}
			if err := compareRegs(offRes[1].FinalRegs, offRes[0].FinalRegs, false, "stats-off threaded vs table"); err != nil {
				return fmt.Errorf("check: threaded %v ff=%v: %w", cfg.Model, ff, err)
			}
			if offRes[1].Cycles != offRes[0].Cycles {
				return fmt.Errorf("check: threaded %v ff=%v: stats-off: %d cycles vs %d", cfg.Model, ff, offRes[1].Cycles, offRes[0].Cycles)
			}
			if offRes[1].MemChecksum != offRes[0].MemChecksum {
				return fmt.Errorf("check: threaded %v ff=%v: stats-off: memory checksum %#x vs %#x", cfg.Model, ff, offRes[1].MemChecksum, offRes[0].MemChecksum)
			}
		}
	}
	return nil
}

// ThreadedSeed runs the threaded-equivalence gate on an original and an
// adapted random program from one seed; sweeping it over N seeds is the
// regression net for the closure-threaded execution core (cmd/sspcheck
// -threaded). The adapted program matters: chk.c stubs, spawns and
// speculative slices exercise the engines' budget enforcement and kill paths
// under the pure-step fast lanes, which an original program never reaches.
func ThreadedSeed(seed int64, cfgs []sim.Config) error {
	p := workloads.RandomProgram(seed)
	if err := ThreadedEquivalence(cfgs, p); err != nil {
		return fmt.Errorf("seed %d: original: %w", seed, err)
	}
	prof, err := profile.Collect(p, cfgs[0])
	if err != nil {
		return fmt.Errorf("seed %d: profile: %w", seed, err)
	}
	adapted, _, err := ssp.Adapt(p, prof, ssp.DefaultOptions(), fmt.Sprintf("seed%d", seed))
	if err != nil {
		return fmt.Errorf("seed %d: adapt: %w", seed, err)
	}
	if err := ThreadedEquivalence(cfgs, adapted); err != nil {
		return fmt.Errorf("seed %d: adapted: %w", seed, err)
	}
	return nil
}

// Seed drives all three layers from one seed: generate a random program,
// differentially validate it, adapt it with a seed-derived option mix
// (ssp.Adapt runs Validate and VerifyAttachments internally), then validate
// the adapted binary differentially and metamorphically. The same seed
// always reproduces the same programs and verdict.
func Seed(seed int64, cfgs []sim.Config) error {
	p := workloads.RandomProgram(seed)
	if err := Differential(cfgs, p, maxInterpInstrs); err != nil {
		return fmt.Errorf("seed %d: original: %w", seed, err)
	}
	prof, err := profile.Collect(p, cfgs[0])
	if err != nil {
		return fmt.Errorf("seed %d: profile: %w", seed, err)
	}
	r := rand.New(rand.NewSource(seed))
	opt := ssp.DefaultOptions()
	opt.Chaining = r.Intn(4) != 0
	opt.LoopRotation = r.Intn(4) != 0
	opt.CondPrediction = r.Intn(4) != 0
	opt.SpeculativeSlicing = r.Intn(4) != 0
	if r.Intn(3) == 0 {
		opt.ChainUnroll = 2 + r.Intn(2)
	}
	adapted, _, err := ssp.Adapt(p, prof, opt, fmt.Sprintf("seed%d", seed))
	if err != nil {
		return fmt.Errorf("seed %d: adapt: %w", seed, err)
	}
	if err := Differential(cfgs, adapted, maxInterpInstrs); err != nil {
		return fmt.Errorf("seed %d: adapted: %w", seed, err)
	}
	if err := Metamorphic(cfgs, p, adapted); err != nil {
		return fmt.Errorf("seed %d: %w", seed, err)
	}
	return nil
}
