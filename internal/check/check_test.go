package check

import (
	"strings"
	"testing"

	"ssp/internal/ir"
	"ssp/internal/profile"
	"ssp/internal/sim"
	"ssp/internal/ssp"
	"ssp/internal/workloads"
)

func adaptMcf(t *testing.T) (*ir.Program, *ir.Program) {
	t.Helper()
	spec, err := workloads.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := spec.Build(spec.TestScale)
	cfgs := Configs(true)
	prof, err := profile.Collect(orig, cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	adapted, _, err := ssp.Adapt(orig, prof, ssp.DefaultOptions(), "mcf")
	if err != nil {
		t.Fatal(err)
	}
	return orig, adapted
}

// TestSeedsClean: a sample of seeded random programs passes all three
// layers (cmd/sspcheck covers the full 32-seed sweep).
func TestSeedsClean(t *testing.T) {
	n := int64(8)
	if testing.Short() {
		n = 2
	}
	cfgs := Configs(true)
	for seed := int64(0); seed < n; seed++ {
		if err := Seed(seed, cfgs); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWorkloadMetamorphic: the named benchmark adaptation satisfies the §2
// invariant under both machine models.
func TestWorkloadMetamorphic(t *testing.T) {
	orig, adapted := adaptMcf(t)
	if err := Metamorphic(Configs(true), orig, adapted); err != nil {
		t.Fatal(err)
	}
}

// TestBrokenAdaptationCaught: a store injected into a p-slice — the exact
// violation the paper's safety argument forbids — is caught both statically
// by ssp.VerifyAttachments and dynamically by the metamorphic layer (the
// hardware suppresses the store, so it surfaces as SpecStores != 0 rather
// than as corrupted state).
func TestBrokenAdaptationCaught(t *testing.T) {
	orig, adapted := adaptMcf(t)
	f := adapted.FuncByName("main")
	b := f.BlockByLabel("ssp_slice_0")
	if b == nil {
		t.Fatal("adapted mcf has no ssp_slice_0")
	}
	st := &ir.Instr{Op: ir.OpSt, Ra: 21, Rb: 21}
	adapted.Assign(st)
	b.InsertAt(len(b.Instrs)-1, st)
	f.Renumber()

	if err := ssp.VerifyAttachments(adapted); err == nil {
		t.Error("VerifyAttachments accepted a slice containing a store")
	}
	err := Metamorphic(Configs(true), orig, adapted)
	if err == nil {
		t.Fatal("metamorphic layer accepted a slice containing a store")
	}
	if !strings.Contains(err.Error(), "stores") {
		t.Fatalf("unexpected violation: %v", err)
	}
}

// TestConservationDetectsTampering: each invariant of layer 3 actually
// fires when its quantity is perturbed.
func TestConservationDetectsTampering(t *testing.T) {
	spec, err := workloads.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	p, _ := spec.Build(spec.TestScale)
	fresh := func() *sim.Result {
		res, err := sim.RunProgram(Configs(true)[0], p)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if err := Conservation(fresh()); err != nil {
		t.Fatalf("clean result: %v", err)
	}
	tamper := []struct {
		name string
		mut  func(*sim.Result)
	}{
		{"breakdown", func(r *sim.Result) { r.Breakdown[0]++ }},
		{"histogram", func(r *sim.Result) { r.SpecActiveHist[0]-- }},
		{"cache totals", func(r *sim.Result) { r.Hier.Totals.Accesses++ }},
		{"per-load", func(r *sim.Result) {
			for _, s := range r.Hier.ByLoad() {
				s.Hits[0][0]++
				break
			}
		}},
		{"spawn accounting", func(r *sim.Result) { r.ChkTaken = r.Spawns + r.SpawnsIgnored + 1 }},
	}
	for _, tc := range tamper {
		r := fresh()
		tc.mut(r)
		if err := Conservation(r); err == nil {
			t.Errorf("%s: tampered result passed conservation", tc.name)
		}
	}
}

// TestDifferentialInstrCounts: for an SSP-free program the three engines
// must retire exactly the same main-thread instruction stream.
func TestDifferentialInstrCounts(t *testing.T) {
	if err := Differential(Configs(true), workloads.RandomProgram(42), maxInterpInstrs); err != nil {
		t.Fatal(err)
	}
}

// TestPredecodeEquivalenceSweep: sharing one predecoded image across engines,
// reruns, and stats-off machines is semantically invisible, over a sweep of
// seeded random programs (the regression gate for the table-dispatch
// execution core; cmd/sspcheck -predecode widens the sweep).
func TestPredecodeEquivalenceSweep(t *testing.T) {
	n := int64(6)
	if testing.Short() {
		n = 2
	}
	cfgs := Configs(true)
	for seed := int64(0); seed < n; seed++ {
		if err := PredecodeSeed(seed, cfgs); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPredecodeEquivalenceAdapted: the gate also holds for an SSP-adapted
// binary, whose chk.c/spawn handlers exercise the context-management paths a
// random SSP-free program never reaches.
func TestPredecodeEquivalenceAdapted(t *testing.T) {
	_, adapted := adaptMcf(t)
	if err := PredecodeEquivalence(Configs(true), adapted); err != nil {
		t.Fatal(err)
	}
}

// TestFastForwardEquivalenceSweep: the stall-jump timing core produces
// bit-for-bit identical results to per-cycle simulation over a sweep of
// seeded random programs, original and SSP-adapted, on both machine models
// (cmd/sspcheck -fastforward widens the sweep to hundreds of seeds).
func TestFastForwardEquivalenceSweep(t *testing.T) {
	n := int64(6)
	if testing.Short() {
		n = 2
	}
	cfgs := Configs(true)
	for seed := int64(0); seed < n; seed++ {
		if err := FastForwardSeed(seed, cfgs); err != nil {
			t.Fatal(err)
		}
	}
}

// TestThreadedEquivalenceSweep: the closure-threaded execution core produces
// bit-for-bit identical results to table dispatch over a sweep of seeded
// random programs, original and SSP-adapted, on both machine models, with
// fast-forward off and on (cmd/sspcheck -threaded widens the sweep to 200+
// seeds; make threaded-sweep runs it in CI).
func TestThreadedEquivalenceSweep(t *testing.T) {
	n := int64(6)
	if testing.Short() {
		n = 2
	}
	cfgs := Configs(true)
	for seed := int64(0); seed < n; seed++ {
		if err := ThreadedSeed(seed, cfgs); err != nil {
			t.Fatal(err)
		}
	}
}

// TestThreadedEquivalenceBenchmarks: the threaded gate holds on all seven
// paper benchmarks, baseline and SSP-adapted, under both machine models. It
// also asserts the chains actually compile and fuse on every benchmark: a
// silently unthreadable image would pass equivalence trivially through the
// table fallback while the simulator quietly lost its speedup.
func TestThreadedEquivalenceBenchmarks(t *testing.T) {
	cfgs := Configs(true)
	for _, spec := range workloads.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			if testing.Short() && spec.Name != "mcf" {
				t.Skip("short mode: mcf only")
			}
			t.Parallel()
			orig, _ := spec.Build(spec.TestScale)
			if err := ThreadedEquivalence(cfgs, orig); err != nil {
				t.Fatalf("baseline: %v", err)
			}
			prof, err := profile.Collect(orig, cfgs[0])
			if err != nil {
				t.Fatal(err)
			}
			adapted, _, err := ssp.Adapt(orig, prof, ssp.DefaultOptions(), spec.Name)
			if err != nil {
				t.Fatal(err)
			}
			if err := ThreadedEquivalence(cfgs, adapted); err != nil {
				t.Fatalf("adapted: %v", err)
			}
			for _, p := range []*ir.Program{orig, adapted} {
				img, err := ir.Link(p)
				if err != nil {
					t.Fatal(err)
				}
				tp := sim.ThreadedProgram(sim.Predecode(img))
				if tp.Unthreadable {
					t.Fatalf("%s: image compiled unthreadable", spec.Name)
				}
				if tp.Supers == 0 || tp.NSteps == 0 {
					t.Fatalf("%s: chains compiled without fusion (supers=%d steps=%d)", spec.Name, tp.Supers, tp.NSteps)
				}
			}
		})
	}
}

// TestHotPathEquivalenceSweep: a single machine Reset and reused across
// models and programs produces results bit-for-bit identical to fresh
// machines, over a sweep of seeded random programs, original and SSP-adapted
// (the regression gate for the flattened hot-path data layout and the
// exp.Suite machine pool; cmd/sspcheck -hotpath widens the sweep to 200+
// seeds).
func TestHotPathEquivalenceSweep(t *testing.T) {
	n := int64(6)
	if testing.Short() {
		n = 2
	}
	cfgs := Configs(true)
	for seed := int64(0); seed < n; seed++ {
		if err := HotPathSeed(seed, cfgs); err != nil {
			t.Fatal(err)
		}
	}
}

// TestHotPathEquivalenceBenchmarks: the hot-path gate holds across the full
// experiment matrix surface — all seven paper benchmarks, baseline and
// SSP-adapted, under both machine models — driving every cell through one
// reused machine exactly as exp.Suite's pool does.
func TestHotPathEquivalenceBenchmarks(t *testing.T) {
	cfgs := Configs(true)
	for _, spec := range workloads.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			if testing.Short() && spec.Name != "mcf" {
				t.Skip("short mode: mcf only")
			}
			t.Parallel()
			orig, _ := spec.Build(spec.TestScale)
			prof, err := profile.Collect(orig, cfgs[0])
			if err != nil {
				t.Fatal(err)
			}
			adapted, _, err := ssp.Adapt(orig, prof, ssp.DefaultOptions(), spec.Name)
			if err != nil {
				t.Fatal(err)
			}
			if err := HotPathEquivalence(cfgs, orig, adapted); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFastForwardEquivalenceBenchmarks: the gate holds on all seven paper
// benchmarks, baseline and SSP-adapted, under both machine models — the
// exact configurations the experiment matrix runs with fast-forward enabled.
// It also asserts the jumps actually fire on the baselines: a silently
// disabled core would pass equivalence trivially while the experiment
// pipeline quietly lost its speedup.
func TestFastForwardEquivalenceBenchmarks(t *testing.T) {
	cfgs := Configs(true)
	for _, spec := range workloads.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			if testing.Short() && spec.Name != "mcf" {
				t.Skip("short mode: mcf only")
			}
			t.Parallel()
			orig, _ := spec.Build(spec.TestScale)
			if err := FastForwardEquivalence(cfgs, orig); err != nil {
				t.Fatalf("baseline: %v", err)
			}
			prof, err := profile.Collect(orig, cfgs[0])
			if err != nil {
				t.Fatal(err)
			}
			adapted, _, err := ssp.Adapt(orig, prof, ssp.DefaultOptions(), spec.Name)
			if err != nil {
				t.Fatal(err)
			}
			if err := FastForwardEquivalence(cfgs, adapted); err != nil {
				t.Fatalf("adapted: %v", err)
			}
			for _, cfg := range cfgs {
				cfg.FastForward = true
				res, err := sim.RunProgram(cfg, orig)
				if err != nil {
					t.Fatal(err)
				}
				if res.FastForwards == 0 {
					t.Errorf("%v: fast-forward core never jumped on %s", cfg.Model, spec.Name)
				}
			}
		})
	}
}
