package check

import (
	"fmt"
	"math/rand"

	"ssp/internal/ir"
	"ssp/internal/profile"
	"ssp/internal/sim"
	"ssp/internal/sim/decode"
	"ssp/internal/ssp"
	"ssp/internal/workloads"
)

// This file is the seventh validation layer: speculation-safety equivalence.
// The static half (ssp.AnalyzeSafety) proves per-slice instruction budgets;
// the dynamic half attaches an instruction-level oracle to both cycle
// engines and asserts that no speculative thread ever executes outside a
// certified slice region or past its certified budget. A static proof that
// the dynamic machines can violate is a bug in the verifier; a dynamic run
// that stays under budgets the verifier rejected would be a bug in the
// engines. The adversarial side rides along: every safety class is injected
// into the adapted binary and must be rejected with the right reason.

// budgetOracle is the ExecHooks implementation of the dynamic half: fired
// before every architecturally executed instruction, it attributes
// speculative PCs to slice regions and compares the activation's running
// instruction count against the static certificate. Exec fires before the
// thread's count includes the current instruction, so the observed count is
// Instrs()+1.
type budgetOracle struct {
	budgets map[string]int64 // region block key ("func.label") -> budget
	err     error
}

func (o *budgetOracle) Exec(m *sim.Machine, t *sim.Thread, pc int) {
	if o.err != nil || !t.Speculative() {
		return
	}
	key := m.Img.BlockKey(pc)
	b, ok := o.budgets[key]
	if !ok {
		o.err = fmt.Errorf("speculative thread executing outside any certified slice region (%s, pc %d)", key, pc)
		return
	}
	if n := t.Instrs() + 1; n > b {
		o.err = fmt.Errorf("speculative thread in %s executed %d instructions, certified budget %d", key, n, b)
	}
}

// oracleMachine builds a machine with the budget oracle attached; the
// returned oracle records the first violation observed during a run.
func oracleMachine(cfg sim.Config, dp *decode.Program, budgets map[string]int64) (*sim.Machine, *budgetOracle) {
	m := sim.NewPredecoded(cfg, dp)
	o := &budgetOracle{budgets: budgets}
	m.AttachExec(o)
	return m, o
}

// SafetyEquivalence runs the speculation-safety gate on an adapted program:
// statically, every slice must carry a violation-free certificate with a
// budget at or under each configuration's MaxSpecInstrs ceiling; dynamically,
// a run on each configured engine under the budget oracle must never observe
// a speculative thread leave its certified region or exceed its certified
// budget. Programs without slices pass trivially (no speculative thread can
// exist).
func SafetyEquivalence(cfgs []sim.Config, adapted *ir.Program) error {
	img, err := ir.Link(adapted)
	if err != nil {
		return fmt.Errorf("check: link: %w", err)
	}
	dp := sim.Predecode(img)
	for _, cfg := range cfgs {
		rep, err := ssp.VerifySafety(adapted, cfg.MaxSpecInstrs)
		if err != nil {
			return fmt.Errorf("check: safety %v: static: %w", cfg.Model, err)
		}
		if mb := rep.MaxBudget(); mb > cfg.MaxSpecInstrs {
			return fmt.Errorf("check: safety %v: certified budget %d exceeds MaxSpecInstrs %d", cfg.Model, mb, cfg.MaxSpecInstrs)
		}
		m, o := oracleMachine(cfg, dp, rep.Budgets())
		if _, err := runMachine(m); err != nil {
			return fmt.Errorf("check: safety %v: run: %w", cfg.Model, err)
		}
		if o.err != nil {
			return fmt.Errorf("check: safety %v: dynamic oracle: %w", cfg.Model, o.err)
		}
	}
	return nil
}

// SafetySeed drives the speculation-safety layer from one seed: generate a
// random program, adapt it with a seed-derived option mix (the same mix
// check.Seed uses, so the two sweeps cover the same configurations), run the
// static+dynamic equivalence gate on both engines, then the adversarial
// sweep — every injected violation class must be rejected with exactly that
// class. Sweeping it over N seeds is cmd/sspcheck -safety.
func SafetySeed(seed int64, cfgs []sim.Config) error {
	p := workloads.RandomProgram(seed)
	prof, err := profile.Collect(p, cfgs[0])
	if err != nil {
		return fmt.Errorf("seed %d: profile: %w", seed, err)
	}
	r := rand.New(rand.NewSource(seed))
	opt := ssp.DefaultOptions()
	opt.Chaining = r.Intn(4) != 0
	opt.LoopRotation = r.Intn(4) != 0
	opt.CondPrediction = r.Intn(4) != 0
	opt.SpeculativeSlicing = r.Intn(4) != 0
	if r.Intn(3) == 0 {
		opt.ChainUnroll = 2 + r.Intn(2)
	}
	adapted, rep, err := ssp.Adapt(p, prof, opt, fmt.Sprintf("seed%d", seed))
	if err != nil {
		return fmt.Errorf("seed %d: adapt: %w", seed, err)
	}
	if rep.Safety == nil {
		return fmt.Errorf("seed %d: adaptation report carries no safety certificate", seed)
	}
	if err := SafetyEquivalence(cfgs, adapted); err != nil {
		return fmt.Errorf("seed %d: %w", seed, err)
	}
	if rep.NumSlices() > 0 {
		if err := ssp.CheckUnsafe(adapted, cfgs[0].MaxSpecInstrs); err != nil {
			return fmt.Errorf("seed %d: adversarial: %w", seed, err)
		}
	}
	return nil
}
