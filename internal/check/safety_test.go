package check

import (
	"strings"
	"testing"

	"ssp/internal/ir"
	"ssp/internal/sim"
	"ssp/internal/ssp"
)

// TestSafetyCeilingMatchesEngines pins the contract between the static
// verifier and the dynamic machines: the default certification ceiling is
// exactly the engines' MaxSpecInstrs, so a certificate issued by the tool is
// valid on a default machine of either model.
func TestSafetyCeilingMatchesEngines(t *testing.T) {
	if got := sim.DefaultInOrder().MaxSpecInstrs; got != ssp.DefaultSafetyCeiling {
		t.Errorf("in-order MaxSpecInstrs %d != ssp.DefaultSafetyCeiling %d", got, ssp.DefaultSafetyCeiling)
	}
	if got := sim.DefaultOOO().MaxSpecInstrs; got != ssp.DefaultSafetyCeiling {
		t.Errorf("ooo MaxSpecInstrs %d != ssp.DefaultSafetyCeiling %d", got, ssp.DefaultSafetyCeiling)
	}
}

// TestSafetyWorkloadOracle runs the adapted mcf benchmark on both engines
// under the budget oracle: every speculative instruction must execute inside
// a certified region, within the certified budget.
func TestSafetyWorkloadOracle(t *testing.T) {
	_, adapted := adaptMcf(t)
	if err := SafetyEquivalence(Configs(true), adapted); err != nil {
		t.Fatal(err)
	}
}

// TestSafetySeedsClean sweeps the safety layer — static certificate, dynamic
// budget oracle on both engines, and the adversarial mutant corpus — over a
// sample of seeds, including the fuzz-corpus seeds that exercise multi-region
// portfolios (8, 16) and every slice shape the budget analysis decomposes
// (9, 23: latch-guarded loops, predicted countdowns, unrolled chains).
// cmd/sspcheck -safety covers the full 32-seed sweep.
func TestSafetySeedsClean(t *testing.T) {
	seeds := []int64{0, 1, 7, 8, 9, 16, 23, -3}
	if testing.Short() {
		seeds = seeds[:2]
	}
	cfgs := Configs(true)
	for _, seed := range seeds {
		if err := SafetySeed(seed, cfgs); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSafetyOracleDetectsOverrun tampers with a certificate to prove the
// dynamic half actually fires: shrinking a region's budget below what the
// slice really executes must trip the oracle on a real run.
func TestSafetyOracleDetectsOverrun(t *testing.T) {
	_, adapted := adaptMcf(t)
	cfg := Configs(true)[0]
	rep, err := ssp.VerifySafety(adapted, cfg.MaxSpecInstrs)
	if err != nil {
		t.Fatal(err)
	}
	budgets := rep.Budgets()
	if len(budgets) == 0 {
		t.Fatal("adapted mcf certified no regions")
	}
	for k := range budgets {
		budgets[k] = 1 // no slice prologue fits in one instruction
	}
	img, err := ir.Link(adapted)
	if err != nil {
		t.Fatal(err)
	}
	m, o := oracleMachine(cfg, sim.Predecode(img), budgets)
	res, err := runMachine(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spawns == 0 {
		t.Fatal("adapted mcf spawned no speculative threads; oracle cannot fire")
	}
	if o.err == nil {
		t.Fatal("budget oracle accepted a run that overran a 1-instruction certificate")
	}
	if !strings.Contains(o.err.Error(), "budget") {
		t.Fatalf("oracle fired for the wrong reason: %v", o.err)
	}
}
