// Package cliutil holds the input plumbing shared by the command-line
// tools: loading programs from assembly files or from the built-in
// benchmark generators, and selecting machine configurations.
package cliutil

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"

	"ssp/internal/ir"
	"ssp/internal/sim"
	"ssp/internal/workloads"
)

// LoadProgram returns a program from an assembly file (in) or from a
// built-in benchmark generator (bench at the given scale; scale 0 selects
// the benchmark's default experiment scale). Exactly one of in and bench
// must be set.
//
// For benchmark inputs the second return is the expected final checksum the
// program stores to workloads.ResultAddr, so callers can verify a run
// computed the right answer. Assembly files carry no expected value; the
// checksum is 0 and not meaningful for them.
func LoadProgram(in, bench string, scale int) (*ir.Program, uint64, error) {
	switch {
	case in != "" && bench != "":
		return nil, 0, fmt.Errorf("specify either -in or -bench, not both")
	case in != "":
		src, err := os.ReadFile(in)
		if err != nil {
			return nil, 0, err
		}
		p, err := ir.Parse(string(src))
		return p, 0, err
	case bench != "":
		spec, err := workloads.ByName(bench)
		if err != nil {
			return nil, 0, err
		}
		if scale == 0 {
			scale = spec.Scale
		}
		p, want := spec.Build(scale)
		return p, want, nil
	}
	return nil, 0, fmt.Errorf("specify -in FILE or -bench NAME")
}

// StartProfiles begins host-side CPU and/or heap profiling for a tool run
// (the -cpuprofile/-memprofile flags of cmd/experiments and cmd/sspcheck).
// Either path may be empty to skip that profile. The returned stop function
// must run before exit and finishes both profiles: it stops the CPU profile
// and writes an allocs-focused heap profile after a final GC, so hot-path
// work on the simulator is measured rather than guessed.
//
// stop is idempotent (extra calls are no-ops), so callers can both defer it
// and call it on early-exit paths without double-finishing a profile. The
// one pattern it cannot survive is os.Exit before any call — deferred
// functions don't run then — which is why the commands keep their work in a
// run() error function and only os.Exit from main after it returns.
func StartProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			if memPath != "" {
				f, err := os.Create(memPath)
				if err != nil {
					fmt.Fprintln(os.Stderr, "memprofile:", err)
					return
				}
				defer f.Close()
				runtime.GC() // materialize the live heap before snapshotting
				if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
					fmt.Fprintln(os.Stderr, "memprofile:", err)
				}
			}
		})
	}, nil
}

// MachineConfig builds a simulator configuration for "in-order" or "ooo",
// optionally with the scaled-down test memory system.
func MachineConfig(model string, tiny bool) (sim.Config, error) {
	var c sim.Config
	switch model {
	case "in-order", "io":
		c = sim.DefaultInOrder()
	case "ooo", "out-of-order":
		c = sim.DefaultOOO()
	default:
		return c, fmt.Errorf("unknown model %q (want in-order or ooo)", model)
	}
	if tiny {
		c.UseTinyMem()
	}
	return c, nil
}
