// Package cliutil holds the input plumbing shared by the command-line
// tools: loading programs from assembly files or from the built-in
// benchmark generators, and selecting machine configurations.
package cliutil

import (
	"fmt"
	"os"

	"ssp/internal/ir"
	"ssp/internal/sim"
	"ssp/internal/workloads"
)

// LoadProgram returns a program from an assembly file (in) or from a
// built-in benchmark generator (bench at the given scale; scale 0 selects
// the benchmark's default experiment scale). Exactly one of in and bench
// must be set.
func LoadProgram(in, bench string, scale int) (*ir.Program, error) {
	switch {
	case in != "" && bench != "":
		return nil, fmt.Errorf("specify either -in or -bench, not both")
	case in != "":
		src, err := os.ReadFile(in)
		if err != nil {
			return nil, err
		}
		return ir.Parse(string(src))
	case bench != "":
		spec, err := workloads.ByName(bench)
		if err != nil {
			return nil, err
		}
		if scale == 0 {
			scale = spec.Scale
		}
		p, _ := spec.Build(scale)
		return p, nil
	}
	return nil, fmt.Errorf("specify -in FILE or -bench NAME")
}

// MachineConfig builds a simulator configuration for "in-order" or "ooo",
// optionally with the scaled-down test memory system.
func MachineConfig(model string, tiny bool) (sim.Config, error) {
	var c sim.Config
	switch model {
	case "in-order", "io":
		c = sim.DefaultInOrder()
	case "ooo", "out-of-order":
		c = sim.DefaultOOO()
	default:
		return c, fmt.Errorf("unknown model %q (want in-order or ooo)", model)
	}
	if tiny {
		c.Mem.L1Size = 1 << 10
		c.Mem.L2Size = 4 << 10
		c.Mem.L3Size = 16 << 10
	}
	return c, nil
}
