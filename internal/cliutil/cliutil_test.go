package cliutil

import (
	"os"
	"path/filepath"
	"testing"

	"ssp/internal/ir"
	"ssp/internal/workloads"
)

func TestLoadProgramFromBench(t *testing.T) {
	p, want, err := LoadProgram("", "mcf", 500)
	if err != nil {
		t.Fatal(err)
	}
	if p.FuncByName("main") == nil {
		t.Fatal("benchmark program lacks main")
	}
	// The returned checksum must match the generator's own expectation, so
	// simrun can verify benchmark runs the way Suite.Run does.
	spec, _ := workloads.ByName("mcf")
	if _, specWant := spec.Build(500); want != specWant {
		t.Fatalf("checksum %d, spec.Build says %d", want, specWant)
	}
	if _, _, err := LoadProgram("", "nosuch", 0); err == nil {
		t.Fatal("accepted unknown benchmark")
	}
}

func TestLoadProgramFromFile(t *testing.T) {
	p, _, _ := LoadProgram("", "mcf", 300)
	path := filepath.Join(t.TempDir(), "prog.ssp")
	if err := os.WriteFile(path, []byte(ir.Format(p)), 0o644); err != nil {
		t.Fatal(err)
	}
	q, want, err := LoadProgram(path, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if want != 0 {
		t.Fatalf("file inputs carry no expected checksum, got %d", want)
	}
	if q.NumInstrs() != p.NumInstrs() {
		t.Fatalf("file round trip: %d instrs vs %d", q.NumInstrs(), p.NumInstrs())
	}
}

func TestLoadProgramArgErrors(t *testing.T) {
	if _, _, err := LoadProgram("", "", 0); err == nil {
		t.Fatal("accepted neither -in nor -bench")
	}
	if _, _, err := LoadProgram("x.ssp", "mcf", 0); err == nil {
		t.Fatal("accepted both -in and -bench")
	}
	if _, _, err := LoadProgram("/nonexistent/file.ssp", "", 0); err == nil {
		t.Fatal("accepted missing file")
	}
}

func TestMachineConfig(t *testing.T) {
	io, err := MachineConfig("in-order", false)
	if err != nil || io.Model.String() != "in-order" {
		t.Fatalf("in-order: %v %v", io.Model, err)
	}
	ooo, err := MachineConfig("ooo", true)
	if err != nil || ooo.Model.String() != "ooo" {
		t.Fatalf("ooo: %v %v", ooo.Model, err)
	}
	if ooo.Mem.L1Size != 1<<10 {
		t.Fatal("tiny flag ignored")
	}
	if _, err := MachineConfig("weird", false); err == nil {
		t.Fatal("accepted unknown model")
	}
}
