// Package dep builds the latency-annotated dependence graphs the SSP tool
// slices and schedules (§3.1, §3.2). Nodes are instructions of one function;
// edges are true (def->use) register/predicate/branch-register dependences
// plus control dependences. Loop-carried anti and output dependences are not
// represented at all, matching the paper: "Our slicing tool also ignores
// loop-carried anti dependences and output dependences in order to produce
// smaller slices" (§3.1).
package dep

import (
	"ssp/internal/cfg"
	"ssp/internal/ir"
)

// Edge is a data-dependence edge from a defining node to a using node.
type Edge struct {
	// From is the defining node, To the using node.
	From, To int
	// Loc is the register carried by the dependence.
	Loc ir.Loc
	// Carried marks a loop-carried dependence: the value flows around a
	// back edge into a later iteration (Figure 3's A-D-E recurrence).
	Carried bool
}

// Graph is the dependence graph of one function.
type Graph struct {
	F *ir.Func
	G *cfg.Graph

	// Nodes lists every instruction in layout order.
	Nodes []*ir.Instr
	// BlockOf and PosOf give each node's block index and position.
	BlockOf []int
	PosOf   []int

	// DataPreds[n] are the edges whose To == n (the defs n depends on);
	// DataSuccs[n] the edges whose From == n.
	DataPreds [][]Edge
	DataSuccs [][]Edge

	// CtrlPreds[n] lists the branch nodes n is control-dependent on
	// (computed from postdominance frontiers, §3.1).
	CtrlPreds [][]int

	// EntryDefs[n] holds, for each use in node n of a location with no
	// reaching definition inside the function, that location: the value is
	// live into the function (a formal argument r32.. or caller state).
	// The context-sensitive slicer extends the slice through these (§3.1).
	EntryDefs [][]ir.Loc

	byID map[int]int // instruction ID -> node index
}

// NodeByID returns the node index of the instruction with the given ID, or
// -1 if absent.
func (g *Graph) NodeByID(id int) int {
	if n, ok := g.byID[id]; ok {
		return n
	}
	return -1
}

// calleeFormals returns how many argument registers a call uses.
func calleeFormals(p *ir.Program, in *ir.Instr) int {
	if in.Op == ir.OpCall {
		if f := p.FuncByName(in.Target); f != nil {
			return f.NumFormals
		}
	}
	return 8 // unresolved indirect call: conservative
}

// uses returns the locations read by node in, extended with the calling
// convention: a call reads its argument registers r32..; a return reads the
// return-value register r8 (the value flows to the caller).
func uses(p *ir.Program, in *ir.Instr, dst []ir.Loc) []ir.Loc {
	dst = in.AppendUses(dst)
	switch in.Op {
	case ir.OpCall, ir.OpCallB:
		for i := 0; i < calleeFormals(p, in); i++ {
			dst = append(dst, ir.GRLoc(ir.RegArg0+ir.Reg(i)))
		}
	case ir.OpRet:
		dst = append(dst, ir.GRLoc(ir.RegRet))
	}
	return dst
}

// defs returns the locations written by node in, extended with the calling
// convention: a call defines the return-value register r8 on return. All
// other registers are preserved across calls by the code-generation
// convention used throughout this repository (callees avoid clobbering
// caller-live registers), so calls kill nothing else.
func defs(in *ir.Instr, dst []ir.Loc) []ir.Loc {
	dst = in.AppendDefs(dst)
	if in.Op == ir.OpCall || in.Op == ir.OpCallB {
		dst = append(dst, ir.GRLoc(ir.RegRet))
	}
	return dst
}

// Build computes the dependence graph of f. prog supplies callee signatures
// for the calling-convention extension; dom/pdom come from package cfg.
func Build(prog *ir.Program, f *ir.Func, g *cfg.Graph, dom, pdom *cfg.DomTree) *Graph {
	dg := &Graph{F: f, G: g, byID: make(map[int]int)}
	for bi, b := range f.Blocks {
		for pi, in := range b.Instrs {
			dg.byID[in.ID] = len(dg.Nodes)
			dg.Nodes = append(dg.Nodes, in)
			dg.BlockOf = append(dg.BlockOf, bi)
			dg.PosOf = append(dg.PosOf, pi)
		}
	}
	n := len(dg.Nodes)
	dg.DataPreds = make([][]Edge, n)
	dg.DataSuccs = make([][]Edge, n)
	dg.CtrlPreds = make([][]int, n)
	dg.EntryDefs = make([][]ir.Loc, n)

	dg.buildDataDeps(prog, dom)
	dg.buildCtrlDeps(pdom)
	return dg
}

// defSet is a small set of defining node indices for one location.
type defSet []int

func (s defSet) has(x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

func (s defSet) add(x int) defSet {
	if s.has(x) {
		return s
	}
	return append(s, x)
}

// buildDataDeps computes reaching definitions per location over the CFG and
// materializes def->use edges, classifying each as forward (intra-iteration)
// or loop-carried using acyclic CFG reachability (back edges removed).
func (dg *Graph) buildDataDeps(prog *ir.Program, dom *cfg.DomTree) {
	nb := len(dg.F.Blocks)
	// Per-block gen (last def per loc) and the set of locs defined.
	gen := make([]map[ir.Loc]int, nb)
	firstNode := make([]int, nb)
	node := 0
	var scratch []ir.Loc
	for bi, b := range dg.F.Blocks {
		gen[bi] = make(map[ir.Loc]int)
		firstNode[bi] = node
		for range b.Instrs {
			scratch = defs(dg.Nodes[node], scratch[:0])
			for _, l := range scratch {
				gen[bi][l] = node
			}
			node++
		}
	}
	// Iterative reaching definitions: out[b][loc] = defs reaching b's end.
	in := make([]map[ir.Loc]defSet, nb)
	out := make([]map[ir.Loc]defSet, nb)
	for i := range out {
		in[i] = make(map[ir.Loc]defSet)
		out[i] = make(map[ir.Loc]defSet)
	}
	rpo := dg.G.RPO()
	for changed := true; changed; {
		changed = false
		for _, bi := range rpo {
			// in[bi] = union of preds' out.
			for _, p := range dg.G.Preds[bi] {
				for loc, ds := range out[p] {
					cur := in[bi][loc]
					for _, d := range ds {
						nl := cur.add(d)
						if len(nl) != len(cur) {
							cur = nl
						}
					}
					in[bi][loc] = cur
				}
			}
			// out[bi] = gen[bi] ∪ (in[bi] − kill[bi]); a block kills a loc
			// iff it defines it (last def wins).
			for loc, ds := range in[bi] {
				if _, killed := gen[bi][loc]; killed {
					continue
				}
				cur := out[bi][loc]
				before := len(cur)
				for _, d := range ds {
					cur = cur.add(d)
				}
				if len(cur) != before {
					out[bi][loc] = cur
					changed = true
				} else if before > 0 {
					out[bi][loc] = cur
				}
			}
			for loc, d := range gen[bi] {
				cur := out[bi][loc]
				nl := cur.add(d)
				if len(nl) != len(cur) {
					out[bi][loc] = nl
					changed = true
				}
			}
		}
	}
	// Forward block reachability with back edges removed, for carried-edge
	// classification.
	fwd := acyclicReach(dg.G, dom)
	// Local pass: walk each block tracking current defs, emit edges.
	cur := make(map[ir.Loc]defSet)
	node = 0
	var useScratch []ir.Loc
	for bi, b := range dg.F.Blocks {
		clear(cur)
		for loc, ds := range in[bi] {
			cur[loc] = ds
		}
		for range b.Instrs {
			inst := dg.Nodes[node]
			useScratch = uses(prog, inst, useScratch[:0])
			for _, loc := range useScratch {
				ds, ok := cur[loc]
				if !ok || len(ds) == 0 {
					dg.EntryDefs[node] = append(dg.EntryDefs[node], loc)
					continue
				}
				for _, d := range ds {
					carried := !dg.forward(d, node, fwd)
					e := Edge{From: d, To: node, Loc: loc, Carried: carried}
					dg.DataPreds[node] = append(dg.DataPreds[node], e)
					dg.DataSuccs[d] = append(dg.DataSuccs[d], e)
				}
			}
			scratch = defs(inst, scratch[:0])
			if len(scratch) > 0 {
				for _, loc := range scratch {
					cur[loc] = defSet{node}
				}
			}
			node++
		}
	}
	// Entry-reaching uses in blocks whose in-set lacks the loc entirely are
	// already handled above; additionally, uses whose reaching set includes
	// the entry (no def on some path) are approximated by the defs found.
}

// forward reports whether the value flow d -> u is realizable without
// crossing a back edge (i.e. within one iteration).
func (dg *Graph) forward(d, u int, fwd [][]bool) bool {
	bd, bu := dg.BlockOf[d], dg.BlockOf[u]
	if bd == bu {
		return dg.PosOf[d] < dg.PosOf[u]
	}
	return fwd[bd][bu]
}

// acyclicReach computes block-to-block reachability in the CFG with back
// edges (successor dominates source) removed.
func acyclicReach(g *cfg.Graph, dom *cfg.DomTree) [][]bool {
	n := len(g.Succs)
	reach := make([][]bool, n)
	// Process in reverse RPO so successors are done first (the graph is
	// acyclic after removing back edges).
	rpo := g.RPO()
	for i := range reach {
		reach[i] = make([]bool, n)
	}
	for i := len(rpo) - 1; i >= 0; i-- {
		b := rpo[i]
		for _, s := range g.Succs[b] {
			if dom.Dominates(s, b) {
				continue // back edge
			}
			reach[b][s] = true
			for t := 0; t < n; t++ {
				if reach[s][t] {
					reach[b][t] = true
				}
			}
		}
	}
	return reach
}

// buildCtrlDeps computes control dependences via the postdominance-frontier
// construction of Ferrante et al.: for CFG edge (X,Y) where Y != ipdom(X),
// every block on the postdominator-tree path from Y up to (but not
// including) ipdom(X) is control-dependent on X's terminator. The Y == X
// self-loop case makes a do-while body control-dependent on its own latch
// branch — the dashed E->A/E->D edges of Figure 3.
func (dg *Graph) buildCtrlDeps(pdom *cfg.DomTree) {
	nb := len(dg.F.Blocks)
	// Node index of each block's terminator.
	termNode := make([]int, nb)
	node := 0
	for bi, b := range dg.F.Blocks {
		termNode[bi] = -1
		for pi := range b.Instrs {
			if pi == len(b.Instrs)-1 {
				termNode[bi] = node
			}
			node++
		}
	}
	ctrlOf := make([][]int, nb) // blocks -> controlling terminator nodes
	for x := 0; x < nb; x++ {
		if len(dg.G.Succs[x]) < 2 {
			continue
		}
		t := termNode[x]
		if t < 0 || dg.Nodes[t].Op != ir.OpBr {
			continue
		}
		stop := pdom.IDom[x]
		for _, y := range dg.G.Succs[x] {
			if y == stop {
				continue
			}
			// Walk the postdominator tree from y toward ipdom(x).
			for z := y; z != stop && z >= 0 && z < nb; z = pdom.IDom[z] {
				ctrlOf[z] = append(ctrlOf[z], t)
				if pdom.IDom[z] == z {
					break
				}
			}
		}
	}
	node = 0
	for bi, b := range dg.F.Blocks {
		for range b.Instrs {
			dg.CtrlPreds[node] = ctrlOf[bi]
			node++
		}
	}
}
