package dep

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"ssp/internal/cfg"
	"ssp/internal/ir"
)

// figure3 builds the paper's running example (mcf's primal_bea_mpp loop):
//
//	loop: A: mov  r16 = r14        ; t = arc
//	      B: ld8  r17 = [r16+8]    ; u = load(t->tail)
//	      C: ld8  r18 = [r17+16]   ; load(u->potential)   <- delinquent
//	      D: add  r14 = r16, 64    ; arc = t + nr_group
//	      E: cmp.lt p6,p7 = r14, r15
//	         (p6) br loop
func figure3() (*ir.Program, *ir.Func, []*ir.Instr) {
	p := ir.NewProgram("main")
	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.MovI(14, 0x10000)
	e.MovI(15, 0x20000)
	loop := fb.Block("loop")
	a := loop.Mov(16, 14)
	b := loop.Ld(17, 16, 8)
	c := loop.Ld(18, 17, 16)
	d := loop.AddI(14, 16, 64)
	cmp := loop.Cmp(ir.CondLT, 6, 7, 14, 15)
	br := loop.On(6).Br("loop")
	done := fb.Block("done")
	done.Halt()
	return p, fb.F, []*ir.Instr{a, b, c, d, cmp, br}
}

func buildGraph(t *testing.T, p *ir.Program, f *ir.Func) *Graph {
	t.Helper()
	g, err := cfg.Build(f)
	if err != nil {
		t.Fatal(err)
	}
	return Build(p, f, g, cfg.Dominators(g), cfg.Postdominators(g))
}

func hasEdge(dg *Graph, from, to *ir.Instr, carried bool) bool {
	f, u := dg.NodeByID(from.ID), dg.NodeByID(to.ID)
	for _, e := range dg.DataPreds[u] {
		if e.From == f && e.Carried == carried {
			return true
		}
	}
	return false
}

func TestFigure3DataDeps(t *testing.T) {
	p, f, ins := figure3()
	a, b, c, d, cmp, br := ins[0], ins[1], ins[2], ins[3], ins[4], ins[5]
	dg := buildGraph(t, p, f)

	// Intra-iteration chain: A->B->C, A->D, D->cmp, cmp->br.
	for _, e := range []struct{ from, to *ir.Instr }{
		{a, b}, {b, c}, {a, d}, {d, cmp}, {cmp, br},
	} {
		if !hasEdge(dg, e.from, e.to, false) {
			t.Errorf("missing forward edge %v -> %v", e.from, e.to)
		}
	}
	// Loop-carried recurrence: D (arc = t+nr_group) -> A (t = arc) of the
	// next iteration.
	if !hasEdge(dg, d, a, true) {
		t.Error("missing loop-carried edge D -> A")
	}
	// No false loop-carried dependences: B and C carry nothing ("Note that
	// there are no false loop-carried dependences in this figure").
	for n := range dg.Nodes {
		for _, e := range dg.DataPreds[n] {
			if e.Carried && (e.From == dg.NodeByID(b.ID) || e.From == dg.NodeByID(c.ID)) {
				t.Errorf("spurious carried edge from load: %+v", e)
			}
		}
	}
}

func TestFigure3ControlDeps(t *testing.T) {
	p, f, ins := figure3()
	a, br := ins[0], ins[5]
	dg := buildGraph(t, p, f)
	// The loop body is control-dependent on its own latch branch (the
	// dashed E->A edge of Figure 3).
	an := dg.NodeByID(a.ID)
	brn := dg.NodeByID(br.ID)
	found := false
	for _, c := range dg.CtrlPreds[an] {
		if c == brn {
			found = true
		}
	}
	if !found {
		t.Errorf("A not control-dependent on latch branch; ctrl preds = %v", dg.CtrlPreds[an])
	}
}

func TestFigure3SCC(t *testing.T) {
	p, f, ins := figure3()
	a, d, cmp, br := ins[0], ins[3], ins[4], ins[5]
	dg := buildGraph(t, p, f)
	// SCC over the loop instructions, following data (incl. carried) and
	// control dependences — the scheduler's view (§3.2.1.2.1).
	var nodes []int
	for _, in := range ins {
		nodes = append(nodes, dg.NodeByID(in.ID))
	}
	adj := func(n int) []int {
		var out []int
		for _, e := range dg.DataSuccs[n] {
			out = append(out, e.To)
		}
		// control successors: nodes that list n as a control pred
		for _, m := range nodes {
			for _, c := range dg.CtrlPreds[m] {
				if c == n {
					out = append(out, m)
				}
			}
		}
		return out
	}
	comps := SCC(nodes, adj)
	// Expect one non-degenerate SCC = {A, D, cmp, br} and two degenerate
	// ones (the loads B and C), matching Figure 5(a).
	var nonDegen [][]int
	degen := 0
	for _, comp := range comps {
		if IsDegenerate(comp, adj) {
			degen++
		} else {
			nonDegen = append(nonDegen, comp)
		}
	}
	if len(nonDegen) != 1 || degen != 2 {
		t.Fatalf("got %d non-degenerate and %d degenerate SCCs, want 1 and 2: %v", len(nonDegen), degen, comps)
	}
	want := []int{dg.NodeByID(a.ID), dg.NodeByID(d.ID), dg.NodeByID(cmp.ID), dg.NodeByID(br.ID)}
	got := append([]int(nil), nonDegen[0]...)
	sort.Ints(want)
	sort.Ints(got)
	if len(got) != len(want) {
		t.Fatalf("non-degenerate SCC = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("non-degenerate SCC = %v, want %v", got, want)
		}
	}
}

func TestEntryDefs(t *testing.T) {
	// A function that uses its formal argument r32 before defining it.
	p := ir.NewProgram("main")
	fb := ir.NewFunc(p, "walk")
	fb.F.NumFormals = 1
	e := fb.Block("entry")
	ld := e.Ld(14, ir.RegArg0, 0)
	e.Mov(ir.RegRet, 14)
	e.Ret(0)
	mfb := ir.NewFunc(p, "main")
	m := mfb.Block("entry")
	m.Halt()
	dg := buildGraph(t, p, fb.F)
	n := dg.NodeByID(ld.ID)
	if len(dg.EntryDefs[n]) != 1 || dg.EntryDefs[n][0] != ir.GRLoc(ir.RegArg0) {
		t.Fatalf("EntryDefs = %v, want [r32]", dg.EntryDefs[n])
	}
	// ret's use of r8 resolves to the mov.
	var retN int
	for i, in := range dg.Nodes {
		if in.Op == ir.OpRet {
			retN = i
		}
	}
	if len(dg.DataPreds[retN]) == 0 {
		t.Fatal("ret has no data preds; return-value convention not modelled")
	}
}

func TestCallConventionEdges(t *testing.T) {
	p := ir.NewProgram("main")
	cf := ir.NewFunc(p, "callee")
	cf.F.NumFormals = 2
	cb := cf.Block("entry")
	cb.Add(ir.RegRet, ir.RegArg0, ir.RegArg0+1)
	cb.Ret(0)
	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	def0 := e.MovI(ir.RegArg0, 1)
	def1 := e.MovI(ir.RegArg0+1, 2)
	call := e.Call("callee")
	use := e.Mov(20, ir.RegRet)
	e.Halt()
	dg := buildGraph(t, p, fb.F)
	if !hasEdge(dg, def0, call, false) || !hasEdge(dg, def1, call, false) {
		t.Error("call does not depend on its argument setup")
	}
	if !hasEdge(dg, call, use, false) {
		t.Error("use of r8 does not depend on the call")
	}
}

func TestHeightsSerialChain(t *testing.T) {
	p, f, ins := figure3()
	dg := buildGraph(t, p, f)
	lat := func(in *ir.Instr) float64 {
		if in.Op == ir.OpLd {
			return 100
		}
		return 1
	}
	var nodes []int
	for _, in := range ins {
		nodes = append(nodes, dg.NodeByID(in.ID))
	}
	h := dg.Heights(nodes, lat)
	// A -> B -> C: height(A) >= 1 + 100 + 100.
	if got := h[dg.NodeByID(ins[0].ID)]; got < 201 {
		t.Errorf("height(A) = %v, want >= 201", got)
	}
	// C is a leaf: height = its own latency.
	if got := h[dg.NodeByID(ins[2].ID)]; got != 100 {
		t.Errorf("height(C) = %v, want 100", got)
	}
	if mh := dg.MaxHeight(nodes, lat); mh != h[dg.NodeByID(ins[0].ID)] {
		t.Errorf("MaxHeight = %v, want height(A)", mh)
	}
	// The chain is serial: available ILP should be low (< 2).
	if ilp := dg.AvailableILP(nodes, lat); ilp >= 2 {
		t.Errorf("AvailableILP = %v, want < 2 for a serial pointer chain", ilp)
	}
}

// TestQuickSCCPartition: property — SCC returns a partition of the node set,
// and every cycle's nodes land in the same component.
func TestQuickSCCPartition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		adjm := make([][]int, n)
		for i := range adjm {
			for k := 0; k < r.Intn(4); k++ {
				adjm[i] = append(adjm[i], r.Intn(n))
			}
		}
		nodes := make([]int, n)
		for i := range nodes {
			nodes[i] = i
		}
		adj := func(i int) []int { return adjm[i] }
		comps := SCC(nodes, adj)
		seen := make([]int, n)
		for i := range seen {
			seen[i] = -1
		}
		for ci, comp := range comps {
			for _, v := range comp {
				if seen[v] != -1 {
					t.Logf("node %d in two components", v)
					return false
				}
				seen[v] = ci
			}
		}
		for _, s := range seen {
			if s == -1 {
				return false
			}
		}
		// Mutual reachability within components; check via DFS.
		reaches := func(a, b int) bool {
			vis := make([]bool, n)
			stack := []int{a}
			vis[a] = true
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if x == b {
					return true
				}
				for _, s := range adjm[x] {
					if !vis[s] {
						vis[s] = true
						stack = append(stack, s)
					}
				}
			}
			return false
		}
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				mutual := a != b && reaches(a, b) && reaches(b, a)
				if mutual != (a != b && seen[a] == seen[b]) {
					t.Logf("seed %d: nodes %d,%d mutual=%v comp=%v", seed, a, b, mutual, seen[a] == seen[b])
					return false
				}
			}
		}
		// Reverse-topological order: no forward edge from an earlier
		// component to a later one... i.e. every cross edge u->v must have
		// comp(v) earlier (already emitted) than comp(u).
		for a := 0; a < n; a++ {
			for _, b := range adjm[a] {
				if seen[a] != seen[b] && seen[b] > seen[a] {
					t.Logf("seed %d: edge %d->%d violates reverse-topological component order", seed, a, b)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHeightsMonotone: property — a node's height is at least its own
// latency and strictly greater than each forward successor's height within
// the set.
func TestQuickHeightsMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, fn, ins := figure3()
		dg := buildGraph(t, p, fn)
		var nodes []int
		for _, in := range ins {
			nodes = append(nodes, dg.NodeByID(in.ID))
		}
		table := map[int]float64{}
		for _, n := range nodes {
			table[n] = 1 + float64(r.Intn(50))
		}
		fixed := func(in *ir.Instr) float64 { return table[dg.NodeByID(in.ID)] }
		h := dg.Heights(nodes, fixed)
		inSet := map[int]bool{}
		for _, n := range nodes {
			inSet[n] = true
		}
		for _, n := range nodes {
			if h[n] < table[n] {
				return false
			}
			for _, e := range dg.DataSuccs[n] {
				if e.Carried || !inSet[e.To] {
					continue
				}
				if h[n] < table[n]+h[e.To] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDotRendering(t *testing.T) {
	p, f, ins := figure3()
	dg := buildGraph(t, p, f)
	var nodes []int
	for _, in := range ins {
		nodes = append(nodes, dg.NodeByID(in.ID))
	}
	dot := dg.Dot("fig3", nodes)
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "carried") {
		t.Fatalf("dot output missing structure:\n%s", dot)
	}
	if !strings.Contains(dot, "style=dashed") {
		t.Fatalf("dot output missing control edges:\n%s", dot)
	}
	if strings.Count(dot, "n") < len(nodes) {
		t.Fatal("dot output missing nodes")
	}
}
