package dep

import (
	"fmt"
	"strings"

	"ssp/internal/ir"
)

// Dot renders the dependence graph of the given node set in Graphviz dot
// syntax: solid edges are data dependences (bold when loop-carried, the
// paper's backward arrows in Figure 3), dashed edges control dependences.
// It is a debugging aid for inspecting slices the way the paper's figures
// draw them.
func (dg *Graph) Dot(name string, nodes []int) string {
	inSet := map[int]bool{}
	for _, n := range nodes {
		inSet[n] = true
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", name)
	sb.WriteString("\trankdir=TB;\n\tnode [shape=box, fontname=\"monospace\"];\n")
	for _, n := range nodes {
		in := dg.Nodes[n]
		shape := ""
		if in.Op == ir.OpLd {
			shape = ", style=filled, fillcolor=lightgrey"
		}
		fmt.Fprintf(&sb, "\tn%d [label=\"%d: %s\"%s];\n", n, in.ID, escape(in.String()), shape)
	}
	for _, n := range nodes {
		for _, e := range dg.DataPreds[n] {
			if !inSet[e.From] {
				continue
			}
			attr := ""
			if e.Carried {
				attr = " [style=bold, color=red, label=\"carried\"]"
			}
			fmt.Fprintf(&sb, "\tn%d -> n%d%s;\n", e.From, n, attr)
		}
		for _, c := range dg.CtrlPreds[n] {
			if inSet[c] {
				fmt.Fprintf(&sb, "\tn%d -> n%d [style=dashed];\n", c, n)
			}
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func escape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
