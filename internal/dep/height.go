package dep

import "ssp/internal/ir"

// LatencyFunc estimates the execution latency of an instruction in cycles.
// The SSP tool supplies one combining the machine model's fixed latencies
// with cache-profile-derived expected latencies for loads: "The latency of a
// memory operation is determined by cache profiling, and the machine model
// provides latency estimates for other instructions" (§3.2.1).
type LatencyFunc func(*ir.Instr) float64

// Heights computes, for every node in the set, its height in the dependence
// DAG restricted to the set: the maximum latency-weighted path from the node
// to any leaf, following forward data edges only (loop-carried edges are
// excluded, making the graph acyclic). This is the priority metric of the
// list scheduler and the height() function of the slack equations
// (§3.2.1.2.2).
func (dg *Graph) Heights(nodes []int, lat LatencyFunc) map[int]float64 {
	inSet := make(map[int]bool, len(nodes))
	for _, n := range nodes {
		inSet[n] = true
	}
	h := make(map[int]float64, len(nodes))
	var visit func(int) float64
	visiting := make(map[int]bool)
	visit = func(n int) float64 {
		if v, ok := h[n]; ok {
			return v
		}
		if visiting[n] {
			// Defensive: a forward-edge cycle cannot occur by
			// construction, but never recurse forever.
			return 0
		}
		visiting[n] = true
		best := 0.0
		for _, e := range dg.DataSuccs[n] {
			if e.Carried || !inSet[e.To] || e.To == n {
				continue
			}
			if v := visit(e.To); v > best {
				best = v
			}
		}
		visiting[n] = false
		v := lat(dg.Nodes[n]) + best
		h[n] = v
		return v
	}
	for _, n := range nodes {
		visit(n)
	}
	return h
}

// MaxHeight returns the maximum node height over the set: the height() of a
// region or slice in the slack equations.
func (dg *Graph) MaxHeight(nodes []int, lat LatencyFunc) float64 {
	h := dg.Heights(nodes, lat)
	best := 0.0
	for _, v := range h {
		if v > best {
			best = v
		}
	}
	return best
}

// SumLatency returns the total latency of the node set.
func (dg *Graph) SumLatency(nodes []int, lat LatencyFunc) float64 {
	s := 0.0
	for _, n := range nodes {
		s += lat(dg.Nodes[n])
	}
	return s
}

// AvailableILP returns the available instruction-level parallelism of the
// node set: the ratio of the sum of all operation latencies to the critical
// path length (§3.2.1.2.2, after Cooper et al.). Values near 1 mean the
// dependence chain is serial — the regime in which height-priority forward
// list scheduling is near-optimal, which the paper verifies holds for
// delinquent-load slices.
func (dg *Graph) AvailableILP(nodes []int, lat LatencyFunc) float64 {
	cp := dg.MaxHeight(nodes, lat)
	if cp == 0 {
		return 1
	}
	return dg.SumLatency(nodes, lat) / cp
}
