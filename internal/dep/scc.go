package dep

// SCC partitions the given node set into strongly connected components using
// an iterative Tarjan algorithm over the adjacency function adj (which must
// only yield nodes inside the set). Components are returned in reverse
// topological order of the condensation (callees of Tarjan's stack pops),
// i.e. a component appears before any component that depends on it through
// forward edges — callers wanting dependence order should reverse it.
//
// This is the partitioning phase of §3.2.1.2.1: the p-slice's dependence
// cycles (loop-carried recurrences) collapse into non-degenerate SCCs that
// the scheduler places before the spawn point, while degenerate SCCs (the
// prefetch chain itself) become the non-critical sub-slice.
func SCC(nodes []int, adj func(int) []int) [][]int {
	index := make(map[int]int, len(nodes))
	low := make(map[int]int, len(nodes))
	onStack := make(map[int]bool, len(nodes))
	inSet := make(map[int]bool, len(nodes))
	for _, n := range nodes {
		inSet[n] = true
	}
	var stack []int
	var comps [][]int
	next := 0

	type frame struct {
		v     int
		succs []int
		i     int
	}
	for _, root := range nodes {
		if _, visited := index[root]; visited {
			continue
		}
		work := []frame{{v: root, succs: filterSet(adj(root), inSet)}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(work) > 0 {
			f := &work[len(work)-1]
			if f.i < len(f.succs) {
				w := f.succs[f.i]
				f.i++
				if _, visited := index[w]; !visited {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					work = append(work, frame{v: w, succs: filterSet(adj(w), inSet)})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// Finished v.
			v := f.v
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := &work[len(work)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

func filterSet(xs []int, in map[int]bool) []int {
	var out []int
	for _, x := range xs {
		if in[x] {
			out = append(out, x)
		}
	}
	return out
}

// IsDegenerate reports whether a component is a single node with no self
// edge (per adj). A degenerate SCC is not part of any dependence cycle.
func IsDegenerate(comp []int, adj func(int) []int) bool {
	if len(comp) != 1 {
		return false
	}
	v := comp[0]
	for _, w := range adj(v) {
		if w == v {
			return false
		}
	}
	return true
}
