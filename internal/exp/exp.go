// Package exp regenerates every table and figure of the paper's evaluation
// (§4): Figure 2 (perfect-memory and perfect-delinquent-load speedup
// bounds), Table 2 (slice characteristics), Figure 8 (SSP speedups on the
// in-order and OOO models), Figure 9 (where delinquent loads are satisfied),
// Figure 10 (cycle breakdowns), the §4.5 automatic-vs-hand comparison, and
// the ablations of the design choices called out in DESIGN.md.
//
// A Suite is safe for concurrent use: builds, profiles, adaptations, and
// simulations are memoized behind singleflight-style per-key cells, so
// duplicate in-flight requests coalesce onto one computation instead of
// racing or double-simulating. RunAll fans the experiment matrix out over a
// worker pool; the figure drivers use it to presimulate their cells in
// parallel before the (cheap, cache-hitting) serial table-assembly loops.
package exp

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"sync"
	"time"

	"ssp/internal/check"
	"ssp/internal/flight"
	"ssp/internal/handtuned"
	"ssp/internal/ir"
	"ssp/internal/profile"
	"ssp/internal/sim"
	"ssp/internal/sim/decode"
	"ssp/internal/sim/mem"
	"ssp/internal/ssp"
	"ssp/internal/workloads"
)

// Scale selects experiment sizing.
type Scale int

const (
	// ScaleTest shrinks caches and working sets so the whole suite runs
	// in seconds (unit tests, quick looks).
	ScaleTest Scale = iota
	// ScalePaper uses the Table 1 machine and working sets larger than
	// the 3MB L3, like the paper's runs.
	ScalePaper
)

// Variant names a binary/machine treatment of a benchmark.
type Variant string

const (
	VarBase     Variant = "base"
	VarSSP      Variant = "ssp"
	VarHand     Variant = "hand"
	VarPerfMem  Variant = "perfmem"
	VarPerfDel  Variant = "perfdel"
	VarNoChain  Variant = "ssp-nochain"
	VarNoRotate Variant = "ssp-norotate"
	VarNoPred   Variant = "ssp-nopred"
	VarNoSpec   Variant = "ssp-nospec"
	// VarUnroll is the chain-unrolling extension (Options.ChainUnroll=2):
	// the automated version of what the paper's hand adaptation did.
	VarUnroll Variant = "ssp-unroll2"
)

// RunKey identifies one cell of the experiment matrix: a benchmark run as a
// particular variant on a particular machine model.
type RunKey struct {
	Bench   string
	Model   sim.Model
	Variant Variant
}

func (k RunKey) String() string {
	return fmt.Sprintf("%s/%s/%s", k.Bench, k.Model, k.Variant)
}

// Suite caches built programs, profiles, adaptations, and simulation results
// so the experiment drivers and benchmarks share work. The zero Suite is not
// usable; construct one with NewSuite. All methods are safe for concurrent
// use, and results are deterministic: a RunKey maps to the same *sim.Result
// no matter how many goroutines race to compute it.
type Suite struct {
	Scale Scale

	// Workers is the concurrency the figure drivers hand to RunAll.
	// NewSuite defaults it to runtime.GOMAXPROCS(0); set it to 1 for a
	// fully serial suite.
	Workers int

	// Progress, when non-nil, is called once per newly simulated cell with
	// the cell's key, its result, and the simulation's wall time. Cached
	// hits do not fire it. It may be called from many goroutines at once.
	Progress func(key RunKey, res *sim.Result, wall time.Duration)

	mu    sync.Mutex
	progs map[string]*flight.Cell[*progSet]
	decs  map[decodeKey]*flight.Cell[*decode.Program]
	runs  map[RunKey]*flight.Cell[*sim.Result]

	// Options-parameterized cells (the auto-tuner's search points). They
	// are keyed on ssp.Options.Key() — the canonical encoding of every
	// option field — never on a summary of it: two configurations that
	// differ in any knob, however minor, must not share a cell.
	optDecs map[optDecodeKey]*flight.Cell[*decode.Program]
	optRuns map[optRunKey]*flight.Cell[*sim.Result]

	// pool recycles machines across matrix cells: Machine.Reset rebinds a
	// machine to a new (config, program) while reusing its memory pages,
	// hierarchy, predictor tables, and per-thread buffers. Safe because Run
	// detaches each Result's statistics from the machine. Only machines
	// from clean completions go back (sim.Pool's discipline); a cancelled,
	// failed, or panicked run's machine is dropped instead.
	pool sim.Pool
}

// decodeKey identifies one binary of the matrix: a benchmark adapted as a
// variant. Machine models are deliberately absent — the predecoded image is
// config-independent, so the in-order and OOO cells (and the perfect-memory
// treatments, which only alter the hierarchy) all share one decode.
type decodeKey struct {
	Bench   string
	Variant Variant
}

// optDecodeKey identifies one options-adapted, linked, predecoded binary.
// Like decodeKey, the model is absent: the image is config-independent.
type optDecodeKey struct {
	Bench  string
	OptKey string
}

// optRunKey identifies one options-parameterized simulation cell.
type optRunKey struct {
	Bench  string
	Model  sim.Model
	OptKey string
}

// progSet is one benchmark's built program, profile, and adapted variants.
type progSet struct {
	spec workloads.Spec
	orig *ir.Program
	want uint64
	prof *profile.Profile
	del  []int

	mu          sync.Mutex
	variants    map[Variant]*flight.Cell[variantProg]
	optVariants map[string]*flight.Cell[variantProg]
}

// variantProg pairs an adapted binary with the tool report that produced it
// (nil for the hand adaptation, which has no tool run behind it).
type variantProg struct {
	prog *ir.Program
	rep  *ssp.Report
}

// NewSuite returns an empty suite at the given scale.
func NewSuite(s Scale) *Suite {
	return &Suite{
		Scale:   s,
		Workers: runtime.GOMAXPROCS(0),
		progs:   make(map[string]*flight.Cell[*progSet]),
		decs:    make(map[decodeKey]*flight.Cell[*decode.Program]),
		runs:    make(map[RunKey]*flight.Cell[*sim.Result]),
		optDecs: make(map[optDecodeKey]*flight.Cell[*decode.Program]),
		optRuns: make(map[optRunKey]*flight.Cell[*sim.Result]),
	}
}

// PoolStats reports the suite's machine-reuse counters.
func (s *Suite) PoolStats() sim.PoolStats { return s.pool.Stats() }

// machineConfig returns the simulator configuration for a model at the
// suite's scale.
func (s *Suite) machineConfig(model sim.Model) sim.Config {
	var c sim.Config
	if model == sim.InOrder {
		c = sim.DefaultInOrder()
	} else {
		c = sim.DefaultOOO()
	}
	if s.Scale == ScaleTest {
		c.UseTinyMem()
	}
	c.MaxCycles = 4_000_000_000
	// The matrix runs with the stall-jump timing core on: results are
	// bit-for-bit identical to per-cycle simulation (check.FastForwardEquivalence
	// gates this), and the paper-scale benchmarks spend most of their cycles
	// fully stalled, so regeneration gets several times faster for free.
	c.FastForward = true
	return c
}

func (s *Suite) scaleOf(spec workloads.Spec) int {
	if s.Scale == ScaleTest {
		return spec.TestScale
	}
	return spec.Scale
}

// prog builds (once) the benchmark, its profile, and its delinquent set.
// Concurrent callers for the same benchmark coalesce onto one build.
func (s *Suite) prog(ctx context.Context, bench string) (*progSet, error) {
	s.mu.Lock()
	c, ok := s.progs[bench]
	if !ok {
		c = new(flight.Cell[*progSet])
		s.progs[bench] = c
	}
	s.mu.Unlock()
	return c.Do(ctx, func(ctx context.Context) (*progSet, error) {
		spec, err := workloads.ByName(bench)
		if err != nil {
			return nil, err
		}
		orig, want := spec.Build(s.scaleOf(spec))
		prof, err := profile.CollectContext(ctx, orig, s.machineConfig(sim.InOrder))
		if err != nil {
			return nil, fmt.Errorf("%s: profile: %w", bench, err)
		}
		opt := ssp.DefaultOptions()
		return &progSet{
			spec:        spec,
			orig:        orig,
			want:        want,
			prof:        prof,
			del:         ssp.RankTargets(orig, prof, opt),
			variants:    make(map[Variant]*flight.Cell[variantProg]),
			optVariants: make(map[string]*flight.Cell[variantProg]),
		}, nil
	})
}

// variantOptions maps an adaptation variant to tool options.
func variantOptions(v Variant) (ssp.Options, bool) {
	opt := ssp.DefaultOptions()
	switch v {
	case VarSSP:
	case VarNoChain:
		opt.Chaining = false
	case VarNoRotate:
		opt.LoopRotation = false
	case VarNoPred:
		opt.CondPrediction = false
	case VarNoSpec:
		opt.SpeculativeSlicing = false
	case VarUnroll:
		opt.ChainUnroll = 2
	default:
		return opt, false
	}
	return opt, true
}

// program returns the binary and tool report for a benchmark variant,
// adapting on demand (once per variant; duplicate requests coalesce). The
// report is nil for variants no tool run produces (base, the perfect-memory
// bounds, and the hand adaptation).
func (s *Suite) program(ctx context.Context, bench string, v Variant) (*ir.Program, *ssp.Report, error) {
	ps, err := s.prog(ctx, bench)
	if err != nil {
		return nil, nil, err
	}
	switch v {
	case VarBase, VarPerfMem, VarPerfDel:
		return ps.orig, nil, nil
	}
	ps.mu.Lock()
	c, ok := ps.variants[v]
	if !ok {
		c = new(flight.Cell[variantProg])
		ps.variants[v] = c
	}
	ps.mu.Unlock()
	vp, err := c.Do(ctx, func(ctx context.Context) (variantProg, error) {
		if v == VarHand {
			p, err := handtuned.Adapt(bench, ps.orig)
			if err != nil {
				return variantProg{}, err
			}
			return variantProg{prog: p}, nil
		}
		opt, ok := variantOptions(v)
		if !ok {
			return variantProg{}, fmt.Errorf("exp: unknown variant %q", v)
		}
		p, rep, err := ssp.Adapt(ps.orig, ps.prof, opt, bench)
		if err != nil {
			return variantProg{}, fmt.Errorf("%s/%s: adapt: %w", bench, v, err)
		}
		return variantProg{prog: p, rep: rep}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return vp.prog, vp.rep, nil
}

// Report returns the tool report for an adapted variant, adapting if needed.
// Variants with no tool run behind them (base, perfmem, perfdel, and the
// hand adaptation) have no report; asking for one is an error rather than a
// silent nil.
func (s *Suite) Report(bench string, v Variant) (*ssp.Report, error) {
	_, rep, err := s.program(context.Background(), bench, v)
	if err != nil {
		return nil, err
	}
	if rep == nil {
		return nil, fmt.Errorf("exp: %s/%s has no tool report (only the ssp-adapted variants produce one)", bench, v)
	}
	return rep, nil
}

// predecoded links and predecodes a benchmark variant's binary exactly once;
// every cell over that binary — both machine models, all seeds of callers —
// shares the immutable result. Duplicate in-flight requests coalesce.
func (s *Suite) predecoded(ctx context.Context, bench string, v Variant) (*decode.Program, error) {
	key := decodeKey{bench, v}
	s.mu.Lock()
	c, ok := s.decs[key]
	if !ok {
		c = new(flight.Cell[*decode.Program])
		s.decs[key] = c
	}
	s.mu.Unlock()
	return c.Do(ctx, func(ctx context.Context) (*decode.Program, error) {
		p, _, err := s.program(ctx, bench, v)
		if err != nil {
			return nil, err
		}
		img, err := ir.Link(p)
		if err != nil {
			return nil, err
		}
		dp := sim.Predecode(img)
		// Warm the closure-threaded chain compile inside the coalesced
		// cell: every machine over this image shares the sidecar, so no
		// matrix cell pays the compile inside a timed run.
		sim.ThreadedProgram(dp)
		return dp, nil
	})
}

// Run simulates a benchmark variant on a model, caching and checksum-
// verifying the result. Concurrent calls with the same key coalesce onto a
// single simulation and share its result.
func (s *Suite) Run(bench string, model sim.Model, v Variant) (*sim.Result, error) {
	return s.RunContext(context.Background(), bench, model, v)
}

// RunContext is Run under a context: a cancelled simulation stops within one
// cycle-loop iteration and returns ctx.Err(). Cancellation does not poison
// the cell — the outcome is not cached (flight.Cell resets on context
// errors), coalesced waiters with live contexts retry, and a later call with
// a fresh context recomputes the cell. The abandoned machine is discarded
// rather than pooled.
func (s *Suite) RunContext(ctx context.Context, bench string, model sim.Model, v Variant) (*sim.Result, error) {
	key := RunKey{bench, model, v}
	s.mu.Lock()
	c, ok := s.runs[key]
	if !ok {
		c = new(flight.Cell[*sim.Result])
		s.runs[key] = c
	}
	s.mu.Unlock()
	return c.Do(ctx, func(ctx context.Context) (*sim.Result, error) { return s.simulate(ctx, key, nil) })
}

// RunInstrumented simulates a benchmark variant on a fresh machine with the
// given instrumentation installed (tracers, external profilers, per-cycle
// observers — anything that calls AttachExec or SetCycleHooks). The result is
// computed outside the memoization layer and never enters it: an instrumented
// rerun of a cached cell must not poison the cache (a hook can legitimately
// change what the Result carries — DisableStats empties the breakdown — and a
// per-cycle hook without bulk-skip support turns the fast-forward core off,
// changing the strategy counters), and conversely a cached hit must not
// silently skip the caller's hooks. Progress does not fire and the
// conservation layer is not applied, since instrumentation may detach the
// stats recorder that upholds it.
func (s *Suite) RunInstrumented(bench string, model sim.Model, v Variant, instrument func(*sim.Machine)) (*sim.Result, error) {
	if instrument == nil {
		return nil, fmt.Errorf("exp: RunInstrumented without an instrument function (use Run)")
	}
	return s.simulate(context.Background(), RunKey{bench, model, v}, instrument)
}

// simulate computes one cell of the matrix (no caching; Run wraps it, and
// RunInstrumented calls it directly with an instrument hook installer).
//
// Machine lifecycle: the machine goes back to the pool only after a clean
// completion — Run returned a verified, checksum-correct Result. Every other
// exit (simulation error, cancellation, watchdog, checksum mismatch, or a
// panic out of an instrumentation hook) discards it, so a poisoned machine
// can never resurface under a later cell. A panic is recovered and reported
// as the cell's error rather than unwinding into the worker pool: one bad
// hook or one simulator bug fails its own cell (and, in the serving layer,
// its own request) instead of the whole process.
func (s *Suite) simulate(ctx context.Context, key RunKey, instrument func(*sim.Machine)) (*sim.Result, error) {
	ps, err := s.prog(ctx, key.Bench)
	if err != nil {
		return nil, err
	}
	dp, err := s.predecoded(ctx, key.Bench, key.Variant)
	if err != nil {
		return nil, err
	}
	cfg := s.machineConfig(key.Model)
	switch key.Variant {
	case VarPerfMem:
		cfg.Mem.PerfectMemory = true
	case VarPerfDel:
		cfg.Mem.PerfectDelinquent = true
		cfg.Mem.DelinquentIDs = mem.NewIDSet(ps.del...)
	}
	return s.execute(ctx, key, cfg, dp, ps.want, instrument, true)
}

// execute runs one simulation under the suite's full machine-lifecycle and
// validation discipline (see simulate's doc comment): pooled machine, panic
// containment, watchdog and answer-checksum gates, conservation check and —
// when narrate is set — Progress narration for uninstrumented runs.
func (s *Suite) execute(ctx context.Context, key RunKey, cfg sim.Config, dp *decode.Program, want uint64, instrument func(*sim.Machine), narrate bool) (res *sim.Result, err error) {
	m := s.pool.Get(cfg, dp)
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("%s: panic during simulation: %v", key, r)
		}
	}()
	if instrument != nil {
		instrument(m)
	}
	start := time.Now()
	res, err = m.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	if res.TimedOut {
		return nil, fmt.Errorf("%s: watchdog expired", key)
	}
	if got := m.Mem.Load(workloads.ResultAddr); got != want {
		return nil, fmt.Errorf("%s: checksum %d, want %d", key, got, want)
	}
	// Clean completion: the Result is detached from the machine, so the
	// machine can go back to the pool before the result is validated or
	// cached.
	s.pool.Put(m)
	if instrument != nil {
		// Instrumented runs feed the caller, not the figures: the hooks may
		// have detached the stats recorder the conservation layer checks, and
		// Progress only narrates fresh matrix cells.
		return res, nil
	}
	// Every result that feeds a figure must be internally consistent; a
	// violation here means a simulator accounting bug, not a bad variant.
	if err := check.Conservation(res); err != nil {
		return nil, fmt.Errorf("%s: %w", key, err)
	}
	if narrate && s.Progress != nil {
		s.Progress(key, res, time.Since(start))
	}
	return res, nil
}

// optVariant returns a short display tag for an options-parameterized cell:
// "ssp@" plus the first 8 hex digits of the canonical option key's SHA-256.
// It appears in RunKey-shaped progress lines and error messages; cache maps
// always use the full Options.Key().
func optVariant(opt ssp.Options) Variant {
	sum := sha256.Sum256([]byte(opt.Key()))
	return Variant("ssp@" + hex.EncodeToString(sum[:4]))
}

// ProgramOptions adapts a benchmark with an arbitrary option set, memoized
// on the canonical option key. It is the options-parameterized analogue of
// program(bench, VarSSP): the tuner's search points go through here so
// repeated probes of the same configuration coalesce.
func (s *Suite) ProgramOptions(ctx context.Context, bench string, opt ssp.Options) (*ir.Program, *ssp.Report, error) {
	ps, err := s.prog(ctx, bench)
	if err != nil {
		return nil, nil, err
	}
	key := opt.Key()
	ps.mu.Lock()
	c, ok := ps.optVariants[key]
	if !ok {
		c = new(flight.Cell[variantProg])
		ps.optVariants[key] = c
	}
	ps.mu.Unlock()
	vp, err := c.Do(ctx, func(ctx context.Context) (variantProg, error) {
		p, rep, err := ssp.Adapt(ps.orig, ps.prof, opt, bench)
		if err != nil {
			return variantProg{}, fmt.Errorf("%s/%s: adapt: %w", bench, optVariant(opt), err)
		}
		return variantProg{prog: p, rep: rep}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return vp.prog, vp.rep, nil
}

// predecodedOptions links and predecodes an options-adapted binary once per
// (bench, canonical option key); both machine models share the image.
func (s *Suite) predecodedOptions(ctx context.Context, bench string, opt ssp.Options) (*decode.Program, error) {
	key := optDecodeKey{bench, opt.Key()}
	s.mu.Lock()
	c, ok := s.optDecs[key]
	if !ok {
		c = new(flight.Cell[*decode.Program])
		s.optDecs[key] = c
	}
	s.mu.Unlock()
	return c.Do(ctx, func(ctx context.Context) (*decode.Program, error) {
		p, _, err := s.ProgramOptions(ctx, bench, opt)
		if err != nil {
			return nil, err
		}
		img, err := ir.Link(p)
		if err != nil {
			return nil, err
		}
		dp := sim.Predecode(img)
		sim.ThreadedProgram(dp) // warm the chain compile (see predecoded)
		return dp, nil
	})
}

// RunOptions simulates a benchmark adapted with an arbitrary option set,
// with the same caching, coalescing, and validation as RunContext. The cell
// key embeds Options.Key(), so configurations differing in any single knob
// get distinct cells.
func (s *Suite) RunOptions(ctx context.Context, bench string, model sim.Model, opt ssp.Options) (*sim.Result, error) {
	key := optRunKey{bench, model, opt.Key()}
	s.mu.Lock()
	c, ok := s.optRuns[key]
	if !ok {
		c = new(flight.Cell[*sim.Result])
		s.optRuns[key] = c
	}
	s.mu.Unlock()
	return c.Do(ctx, func(ctx context.Context) (*sim.Result, error) {
		ps, err := s.prog(ctx, bench)
		if err != nil {
			return nil, err
		}
		dp, err := s.predecodedOptions(ctx, bench, opt)
		if err != nil {
			return nil, err
		}
		rk := RunKey{bench, model, optVariant(opt)}
		return s.execute(ctx, rk, s.machineConfig(model), dp, ps.want, nil, true)
	})
}

// Workload exposes a benchmark's built program, its expected final-answer
// checksum, and the offline profile (building and profiling on first use).
// The returned structures are shared with the suite's caches — callers must
// treat them as read-only. The closed-loop tuner re-adapts from these.
func (s *Suite) Workload(ctx context.Context, bench string) (*ir.Program, uint64, *profile.Profile, error) {
	ps, err := s.prog(ctx, bench)
	if err != nil {
		return nil, 0, nil, err
	}
	return ps.orig, ps.want, ps.prof, nil
}

// MachineConfig exposes the simulator configuration the suite's cells run
// with at its scale, so out-of-suite simulations (the tuner's re-profiling
// rounds) are comparable with cached cells.
func (s *Suite) MachineConfig(model sim.Model) sim.Config { return s.machineConfig(model) }

// Simulate runs an arbitrary program under the suite's machine-lifecycle and
// validation discipline (pooled machine, watchdog, answer checksum against
// want, conservation) without entering any cache: the program is the
// caller's own, so the suite has no key for it. Progress does not fire. The
// closed-loop tuner runs its re-adapted round images through here.
func (s *Suite) Simulate(ctx context.Context, label string, model sim.Model, p *ir.Program, want uint64) (*sim.Result, error) {
	img, err := ir.Link(p)
	if err != nil {
		return nil, fmt.Errorf("%s: link: %w", label, err)
	}
	rk := RunKey{label, model, "external"}
	return s.execute(ctx, rk, s.machineConfig(model), sim.Predecode(img), want, nil, false)
}

// Speedup returns cycles(reference)/cycles(treatment).
func (s *Suite) Speedup(bench string, refModel sim.Model, refVar Variant, model sim.Model, v Variant) (float64, error) {
	ref, err := s.Run(bench, refModel, refVar)
	if err != nil {
		return 0, err
	}
	r, err := s.Run(bench, model, v)
	if err != nil {
		return 0, err
	}
	return float64(ref.Cycles) / float64(r.Cycles), nil
}

// Benchmarks returns every benchmark name: the paper's seven kernels first,
// then the multi-phase portfolio benchmarks. Table 2, the golden-stats
// matrix, and the serving layer cover all of them.
func Benchmarks() []string {
	var names []string
	for _, s := range workloads.All() {
		names = append(names, s.Name)
	}
	return names
}

// PaperBenchmarks returns the seven single-phase kernels matching the
// paper's Table 1 rows. The figure drivers (Figures 2 and 8-10) iterate
// these so their averages stay comparable with the paper's; the multi-phase
// benchmarks (Spec.MinSlices >= 2) exist to exercise the slice portfolio
// and are reported through Table 2 instead.
func PaperBenchmarks() []string {
	var names []string
	for _, s := range workloads.All() {
		if s.MinSlices < 2 {
			names = append(names, s.Name)
		}
	}
	return names
}
