// Package exp regenerates every table and figure of the paper's evaluation
// (§4): Figure 2 (perfect-memory and perfect-delinquent-load speedup
// bounds), Table 2 (slice characteristics), Figure 8 (SSP speedups on the
// in-order and OOO models), Figure 9 (where delinquent loads are satisfied),
// Figure 10 (cycle breakdowns), the §4.5 automatic-vs-hand comparison, and
// the ablations of the design choices called out in DESIGN.md.
package exp

import (
	"fmt"

	"ssp/internal/handtuned"
	"ssp/internal/ir"
	"ssp/internal/profile"
	"ssp/internal/sim"
	"ssp/internal/ssp"
	"ssp/internal/workloads"
)

// Scale selects experiment sizing.
type Scale int

const (
	// ScaleTest shrinks caches and working sets so the whole suite runs
	// in seconds (unit tests, quick looks).
	ScaleTest Scale = iota
	// ScalePaper uses the Table 1 machine and working sets larger than
	// the 3MB L3, like the paper's runs.
	ScalePaper
)

// Variant names a binary/machine treatment of a benchmark.
type Variant string

const (
	VarBase     Variant = "base"
	VarSSP      Variant = "ssp"
	VarHand     Variant = "hand"
	VarPerfMem  Variant = "perfmem"
	VarPerfDel  Variant = "perfdel"
	VarNoChain  Variant = "ssp-nochain"
	VarNoRotate Variant = "ssp-norotate"
	VarNoPred   Variant = "ssp-nopred"
	VarNoSpec   Variant = "ssp-nospec"
	// VarUnroll is the chain-unrolling extension (Options.ChainUnroll=2):
	// the automated version of what the paper's hand adaptation did.
	VarUnroll Variant = "ssp-unroll2"
)

// Suite caches built programs, profiles, adaptations, and simulation results
// so the experiment drivers and benchmarks share work.
type Suite struct {
	Scale Scale

	progs map[string]*progSet
	runs  map[runKey]*sim.Result
}

type progSet struct {
	spec    workloads.Spec
	orig    *ir.Program
	want    uint64
	prof    *profile.Profile
	del     []int
	adapted map[Variant]*ir.Program
	reports map[Variant]*ssp.Report
}

type runKey struct {
	bench   string
	model   sim.Model
	variant Variant
}

// NewSuite returns an empty suite at the given scale.
func NewSuite(s Scale) *Suite {
	return &Suite{
		Scale: s,
		progs: make(map[string]*progSet),
		runs:  make(map[runKey]*sim.Result),
	}
}

// machineConfig returns the simulator configuration for a model at the
// suite's scale.
func (s *Suite) machineConfig(model sim.Model) sim.Config {
	var c sim.Config
	if model == sim.InOrder {
		c = sim.DefaultInOrder()
	} else {
		c = sim.DefaultOOO()
	}
	if s.Scale == ScaleTest {
		c.Mem.L1Size = 1 << 10
		c.Mem.L2Size = 4 << 10
		c.Mem.L3Size = 16 << 10
	}
	c.MaxCycles = 4_000_000_000
	return c
}

func (s *Suite) scaleOf(spec workloads.Spec) int {
	if s.Scale == ScaleTest {
		return spec.TestScale
	}
	return spec.Scale
}

// prog builds (once) the benchmark, its profile, and its delinquent set.
func (s *Suite) prog(bench string) (*progSet, error) {
	if ps, ok := s.progs[bench]; ok {
		return ps, nil
	}
	spec, err := workloads.ByName(bench)
	if err != nil {
		return nil, err
	}
	orig, want := spec.Build(s.scaleOf(spec))
	prof, err := profile.Collect(orig, s.machineConfig(sim.InOrder))
	if err != nil {
		return nil, fmt.Errorf("%s: profile: %w", bench, err)
	}
	opt := ssp.DefaultOptions()
	ps := &progSet{
		spec:    spec,
		orig:    orig,
		want:    want,
		prof:    prof,
		del:     prof.DelinquentLoads(opt.DelinquentCutoff, opt.MaxDelinquent),
		adapted: make(map[Variant]*ir.Program),
		reports: make(map[Variant]*ssp.Report),
	}
	s.progs[bench] = ps
	return ps, nil
}

// variantOptions maps an adaptation variant to tool options.
func variantOptions(v Variant) (ssp.Options, bool) {
	opt := ssp.DefaultOptions()
	switch v {
	case VarSSP:
	case VarNoChain:
		opt.Chaining = false
	case VarNoRotate:
		opt.LoopRotation = false
	case VarNoPred:
		opt.CondPrediction = false
	case VarNoSpec:
		opt.SpeculativeSlicing = false
	case VarUnroll:
		opt.ChainUnroll = 2
	default:
		return opt, false
	}
	return opt, true
}

// program returns the binary for a benchmark variant, adapting on demand.
func (s *Suite) program(bench string, v Variant) (*ir.Program, error) {
	ps, err := s.prog(bench)
	if err != nil {
		return nil, err
	}
	switch v {
	case VarBase, VarPerfMem, VarPerfDel:
		return ps.orig, nil
	case VarHand:
		if p, ok := ps.adapted[v]; ok {
			return p, nil
		}
		p, err := handtuned.Adapt(bench, ps.orig)
		if err != nil {
			return nil, err
		}
		ps.adapted[v] = p
		return p, nil
	}
	if p, ok := ps.adapted[v]; ok {
		return p, nil
	}
	opt, ok := variantOptions(v)
	if !ok {
		return nil, fmt.Errorf("exp: unknown variant %q", v)
	}
	p, rep, err := ssp.Adapt(ps.orig, ps.prof, opt, bench)
	if err != nil {
		return nil, fmt.Errorf("%s/%s: adapt: %w", bench, v, err)
	}
	ps.adapted[v] = p
	ps.reports[v] = rep
	return p, nil
}

// Report returns the tool report for an adapted variant (VarSSP by default),
// adapting if needed.
func (s *Suite) Report(bench string, v Variant) (*ssp.Report, error) {
	if _, err := s.program(bench, v); err != nil {
		return nil, err
	}
	return s.progs[bench].reports[v], nil
}

// Run simulates a benchmark variant on a model, caching and checksum-
// verifying the result.
func (s *Suite) Run(bench string, model sim.Model, v Variant) (*sim.Result, error) {
	key := runKey{bench, model, v}
	if r, ok := s.runs[key]; ok {
		return r, nil
	}
	ps, err := s.prog(bench)
	if err != nil {
		return nil, err
	}
	p, err := s.program(bench, v)
	if err != nil {
		return nil, err
	}
	cfg := s.machineConfig(model)
	switch v {
	case VarPerfMem:
		cfg.Mem.PerfectMemory = true
	case VarPerfDel:
		cfg.Mem.PerfectDelinquent = true
		cfg.Mem.DelinquentIDs = map[int]bool{}
		for _, id := range ps.del {
			cfg.Mem.DelinquentIDs[id] = true
		}
	}
	img, err := ir.Link(p)
	if err != nil {
		return nil, err
	}
	m := sim.New(cfg, img)
	res, err := m.Run()
	if err != nil {
		return nil, err
	}
	if res.TimedOut {
		return nil, fmt.Errorf("%s/%v/%s: watchdog expired", bench, model, v)
	}
	if got := m.Mem.Load(workloads.ResultAddr); got != ps.want {
		return nil, fmt.Errorf("%s/%v/%s: checksum %d, want %d", bench, model, v, got, ps.want)
	}
	s.runs[key] = res
	return res, nil
}

// Speedup returns cycles(reference)/cycles(treatment).
func (s *Suite) Speedup(bench string, refModel sim.Model, refVar Variant, model sim.Model, v Variant) (float64, error) {
	ref, err := s.Run(bench, refModel, refVar)
	if err != nil {
		return 0, err
	}
	r, err := s.Run(bench, model, v)
	if err != nil {
		return 0, err
	}
	return float64(ref.Cycles) / float64(r.Cycles), nil
}

// Benchmarks returns the benchmark names in paper order.
func Benchmarks() []string {
	var names []string
	for _, s := range workloads.All() {
		names = append(names, s.Name)
	}
	return names
}
