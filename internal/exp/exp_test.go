package exp

import (
	"context"
	"strings"
	"testing"

	"ssp/internal/check"
	"ssp/internal/sim"
	"ssp/internal/ssp"
)

// suite is shared by all tests in this package: the cached runs make the
// whole file cost roughly one pass over the benchmarks per model/variant.
var suite = NewSuite(ScaleTest)

func TestFigure2Shape(t *testing.T) {
	rows, err := suite.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("got %d rows", len(rows))
	}
	covered := 0
	var delIO, delOOO []float64
	for _, r := range rows {
		t.Logf("%-11s io: mem %.1f del %.1f   ooo: mem %.1f del %.1f",
			r.Bench, r.PerfMemIO, r.PerfDelIO, r.PerfMemOOO, r.PerfDelOOO)
		// Perfect memory is a speedup; the delinquent-only bound cannot
		// exceed perfect memory (same for OOO).
		if r.PerfMemIO < 1.2 {
			t.Errorf("%s: perfect-memory in-order speedup %.2f too small — not memory bound", r.Bench, r.PerfMemIO)
		}
		if r.PerfDelIO > r.PerfMemIO*1.02 {
			t.Errorf("%s: delinquent-only bound %.2f exceeds perfect memory %.2f", r.Bench, r.PerfDelIO, r.PerfMemIO)
		}
		// "In most cases, eliminating performance losses from only the
		// delinquent loads yields much of the speedup achievable by
		// zero-miss-latency memory" (§2.2) — require it for most.
		if r.PerfDelIO >= 1.0+(r.PerfMemIO-1.0)*0.4 {
			covered++
		}
		delIO = append(delIO, r.PerfDelIO)
		delOOO = append(delOOO, r.PerfDelOOO)
	}
	if covered < 5 {
		t.Errorf("delinquent loads cover much of perfect memory on only %d/7 benchmarks", covered)
	}
	// "the OOO model has less room for improvement via SSP" (§2.2): on
	// average, the delinquent-load bound relative to its own baseline is
	// smaller on OOO.
	if Mean(delOOO) > Mean(delIO)*1.1 {
		t.Errorf("OOO delinquent headroom %.2f exceeds in-order %.2f", Mean(delOOO), Mean(delIO))
	}
}

func TestTable2Shape(t *testing.T) {
	rows, err := suite.Table2()
	if err != nil {
		t.Fatal(err)
	}
	interproc := 0
	for _, r := range rows {
		if r.Slices == 0 {
			t.Errorf("%s: no slices", r.Bench)
		}
		if r.AvgSize > 48 {
			t.Errorf("%s: average slice size %.1f too large", r.Bench, r.AvgSize)
		}
		// "the average number of live-in values for the slices ... is
		// relatively small" (§4.2, Table 2 max is 4.8).
		if r.AvgLiveIns > 8 {
			t.Errorf("%s: average live-ins %.1f too large", r.Bench, r.AvgLiveIns)
		}
		interproc += r.Interproc
		if (r.Bench == "health" || r.Bench == "mst") && r.Interproc == 0 {
			t.Errorf("%s: expected an interprocedural slice", r.Bench)
		}
	}
	if interproc == 0 {
		t.Error("no interprocedural slices anywhere")
	}
}

func TestFigure8Shape(t *testing.T) {
	rows, err := suite.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	var ioSSP, ooo, oooSSP []float64
	for _, r := range rows {
		ioSSP = append(ioSSP, r.InOrderSSP)
		ooo = append(ooo, r.OOO)
		oooSSP = append(oooSSP, r.OOOSSP)
		t.Logf("%-11s io+ssp %.2f  ooo %.2f  ooo+ssp %.2f", r.Bench, r.InOrderSSP, r.OOO, r.OOOSSP)
	}
	// §4.3's shape: SSP is a clear average win on in-order; OOO beats the
	// in-order baseline; SSP on OOO is a small additional win on average.
	if m := Mean(ioSSP); m < 1.3 {
		t.Errorf("average in-order SSP speedup %.2f; the paper's shape needs a large win", m)
	}
	if m := Mean(ooo); m < 1.3 {
		t.Errorf("average OOO speedup %.2f over in-order too small", m)
	}
	// SSP on OOO is roughly neutral (the paper reports +5% on average;
	// our reproduction lands between -5% and +10% depending on scale —
	// the interference effects §4.4.1 describes are real).
	ratio := Mean(oooSSP) / Mean(ooo)
	if ratio < 0.90 || ratio > 1.25 {
		t.Errorf("SSP on OOO should be roughly neutral, got ratio %.3f", ratio)
	}
}

func TestFigure9Shape(t *testing.T) {
	rows, err := suite.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	improved := 0
	for _, r := range rows {
		if len(r.Configs) != 4 {
			t.Fatalf("%s: %d configs", r.Bench, len(r.Configs))
		}
		io, ioSSP := r.Configs[0], r.Configs[1]
		// Shares sum to ~1 where misses exist.
		for _, c := range r.Configs {
			sum := 0.0
			for _, v := range c.Share {
				sum += v
			}
			if len(c.Share) > 0 && (sum < 0.99 || sum > 1.01) {
				t.Errorf("%s/%s: shares sum to %.3f", r.Bench, c.Label, sum)
			}
		}
		// SSP moves delinquent misses away from full memory hits: the
		// "Mem" share drops or partial share grows (§4.4).
		if ioSSP.Share["Mem"] < io.Share["Mem"]-1e-9 ||
			ioSSP.Share["Mem partial"] > io.Share["Mem partial"] {
			improved++
		}
	}
	if improved < 4 {
		t.Errorf("SSP shifted the delinquent-load satisfaction mix on only %d/7 benchmarks", improved)
	}
}

func TestFigure10Shape(t *testing.T) {
	rows, err := suite.Figure10()
	if err != nil {
		t.Fatal(err)
	}
	reducedL3 := 0
	for _, r := range rows {
		io, ioSSP := r.Configs[0], r.Configs[1]
		if io.Total < 0.999 || io.Total > 1.001 {
			t.Errorf("%s: baseline bar is %.3f, want 1.0", r.Bench, io.Total)
		}
		// Bars decompose exactly.
		for _, c := range r.Configs {
			sum := 0.0
			for _, v := range c.Norm {
				sum += v
			}
			if sum < c.Total-0.001 || sum > c.Total+0.001 {
				t.Errorf("%s/%s: categories sum to %.3f, bar is %.3f", r.Bench, c.Label, sum, c.Total)
			}
		}
		// "SSP effectively reduces the L3 cycles, which is the main
		// reason for the 87%% speedup on the in-order processor" (§4.4.1).
		if ioSSP.Norm[sim.CatL3] < io.Norm[sim.CatL3] {
			reducedL3++
		}
	}
	if reducedL3 < 5 {
		t.Errorf("SSP reduced L3 stall cycles on only %d/7 benchmarks", reducedL3)
	}
}

func TestSection45Shape(t *testing.T) {
	rows, err := suite.Section45()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		t.Logf("%s/%s: auto %.2f hand %.2f loss %.0f%%", r.Bench, r.Model, r.AutoSpeedup, r.HandSpeedup, r.LossPct)
		if r.Model == "in-order" && r.HandSpeedup < r.AutoSpeedup*0.98 {
			t.Errorf("%s/%s: hand adaptation (%.2f) lost to the tool (%.2f)", r.Bench, r.Model, r.HandSpeedup, r.AutoSpeedup)
		}
	}
}

func TestAblationsShape(t *testing.T) {
	rows, err := suite.Ablations([]string{"mcf", "em3d"})
	if err != nil {
		t.Fatal(err)
	}
	sp := map[string]map[Variant]float64{}
	for _, r := range rows {
		if sp[r.Bench] == nil {
			sp[r.Bench] = map[Variant]float64{}
		}
		sp[r.Bench][r.Variant] = r.Speedup
	}
	for b, m := range sp {
		// Chaining is the key to long-range prefetching (§1): disabling
		// it should not beat the full tool on the chaining benchmarks.
		if m[VarNoChain] > m[VarSSP]*1.05 {
			t.Errorf("%s: no-chaining (%.2f) beats chaining (%.2f)", b, m[VarNoChain], m[VarSSP])
		}
		for v, s := range m {
			if s < 0.90 {
				t.Errorf("%s/%s: ablation slows the program down (%.2f)", b, v, s)
			}
		}
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable([]string{"a", "bench"}, [][]string{{"1", "x"}, {"22", "yyyy"}})
	if !strings.Contains(out, "a   bench") || !strings.Contains(out, "22  yyyy") {
		t.Fatalf("bad table:\n%s", out)
	}
}

func TestMeans(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("Mean = %v", m)
	}
	if g := GeoMean([]float64{1, 4}); g != 2 {
		t.Fatalf("GeoMean = %v", g)
	}
	if Mean(nil) != 0 || GeoMean(nil) != 0 {
		t.Fatal("empty means should be 0")
	}
}

func TestSuiteCachesRuns(t *testing.T) {
	s := NewSuite(ScaleTest)
	r1, err := s.Run("mcf", sim.InOrder, VarBase)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run("mcf", sim.InOrder, VarBase)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("suite did not cache the run")
	}
	if _, err := s.Run("mcf", sim.InOrder, Variant("bogus")); err == nil {
		t.Fatal("suite accepted an unknown variant")
	}
}

func TestSuiteChecksumGuard(t *testing.T) {
	// Every cached run was checksum-verified on the way in; spot-check
	// that a speedup query works end to end for an adapted variant.
	s := NewSuite(ScaleTest)
	sp, err := s.Speedup("vpr", sim.InOrder, VarBase, sim.InOrder, VarSSP)
	if err != nil {
		t.Fatal(err)
	}
	if sp <= 0 {
		t.Fatalf("speedup = %v", sp)
	}
}

// cycleCounter is a per-cycle observer that deliberately does NOT implement
// sim.CycleSkipper: installing it must turn the fast-forward core off, so it
// sees every single simulated cycle.
type cycleCounter struct{ n int64 }

func (c *cycleCounter) Cycle(m *sim.Machine, main *sim.Thread, s sim.CycleStats) { c.n++ }

func TestRunInstrumentedDoesNotPoisonCache(t *testing.T) {
	s := NewSuite(ScaleTest)
	cached, err := s.Run("mcf", sim.InOrder, VarBase)
	if err != nil {
		t.Fatal(err)
	}
	if cached.FastForwards == 0 {
		t.Fatal("matrix cell did not fast-forward (machineConfig should enable it)")
	}

	// A per-cycle observer without bulk-skip support: the machine must fall
	// back to per-cycle simulation, and the observer must see every cycle.
	var counter cycleCounter
	traced, err := s.RunInstrumented("mcf", sim.InOrder, VarBase, func(m *sim.Machine) {
		m.SetCycleHooks(&counter)
	})
	if err != nil {
		t.Fatal(err)
	}
	if counter.n != traced.Cycles {
		t.Fatalf("observer saw %d cycles, run took %d", counter.n, traced.Cycles)
	}
	if traced.FastForwards != 0 {
		t.Fatal("fast-forward jumped past a per-cycle observer")
	}
	if traced.Cycles != cached.Cycles {
		t.Fatalf("instrumented run took %d cycles, cached cell %d", traced.Cycles, cached.Cycles)
	}
	// Replacing the stats hook empties the breakdown — exactly the Result
	// shape that must never be handed out as the cached matrix cell.
	if traced.Breakdown == cached.Breakdown {
		t.Fatal("instrumented result has the cached cell's breakdown; expected it empty")
	}

	// The cached cell is untouched: same pointer, still conservation-clean.
	again, err := s.Run("mcf", sim.InOrder, VarBase)
	if err != nil {
		t.Fatal(err)
	}
	if again != cached {
		t.Fatal("instrumented rerun evicted the cached cell")
	}
	if err := check.Conservation(again); err != nil {
		t.Fatalf("cached cell corrupted by instrumented rerun: %v", err)
	}

	// An exec-level hook keeps the default stats recorder (and its skipper),
	// so the instrumented result must match the cached cell bit-for-bit while
	// still observing every retired main instruction.
	var execs int64
	observed, err := s.RunInstrumented("mcf", sim.InOrder, VarBase, func(m *sim.Machine) {
		m.AttachExec(execFunc(func(m *sim.Machine, th *sim.Thread, pc int) { execs++ }))
	})
	if err != nil {
		t.Fatal(err)
	}
	if observed == cached {
		t.Fatal("RunInstrumented returned the cached cell itself")
	}
	if observed.Cycles != cached.Cycles || observed.Breakdown != cached.Breakdown {
		t.Fatal("passively instrumented run diverged from the cached cell")
	}
	if execs != observed.MainInstrs+observed.SpecInstrs {
		t.Fatalf("exec hook saw %d instructions, run retired %d", execs, observed.MainInstrs+observed.SpecInstrs)
	}

	if _, err := s.RunInstrumented("mcf", sim.InOrder, VarBase, nil); err == nil {
		t.Fatal("RunInstrumented accepted a nil instrument function")
	}
}

// execFunc adapts a function to sim.ExecHooks.
type execFunc func(*sim.Machine, *sim.Thread, int)

func (f execFunc) Exec(m *sim.Machine, t *sim.Thread, pc int) { f(m, t, pc) }

// TestOptionsCellsNeverSharedAcrossConfigs is the poisoning regression for
// the options-keyed memoization: two configurations that differ only in
// ChainUnroll must get distinct cells (distinct adapted binaries, distinct
// results), while re-asking with an identical configuration must hit the
// first configuration's cache, not the second's.
func TestOptionsCellsNeverSharedAcrossConfigs(t *testing.T) {
	s := NewSuite(ScaleTest)
	ctx := context.Background()
	a := ssp.DefaultOptions()
	b := a
	b.ChainUnroll = 2

	if a.Key() == b.Key() {
		t.Fatal("option keys collide across ChainUnroll values")
	}
	progA, repA, err := s.ProgramOptions(ctx, "mcf", a)
	if err != nil {
		t.Fatal(err)
	}
	progB, repB, err := s.ProgramOptions(ctx, "mcf", b)
	if err != nil {
		t.Fatal(err)
	}
	if progA == progB || repA == repB {
		t.Fatal("ChainUnroll-differing configs shared an adaptation cell")
	}
	resA, err := s.RunOptions(ctx, "mcf", sim.InOrder, a)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := s.RunOptions(ctx, "mcf", sim.InOrder, b)
	if err != nil {
		t.Fatal(err)
	}
	if resA == resB {
		t.Fatal("ChainUnroll-differing configs shared a run cell")
	}
	// Same config again: must be the cached pointer from the FIRST config,
	// proving the second probe didn't overwrite it.
	resA2, err := s.RunOptions(ctx, "mcf", sim.InOrder, a)
	if err != nil {
		t.Fatal(err)
	}
	if resA2 != resA {
		t.Fatal("identical config missed its own cache after a different config ran")
	}
	// And the options-keyed ssp cell agrees with the enum-variant ssp cell,
	// which runs the same default adaptation through the legacy key space.
	legacy, err := s.Run("mcf", sim.InOrder, VarSSP)
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Cycles != resA.Cycles {
		t.Fatalf("options-keyed default run (%d cycles) disagrees with VarSSP cell (%d cycles)", resA.Cycles, legacy.Cycles)
	}
}
