package exp

import (
	"context"
	"fmt"
	"math"
	"strings"

	"ssp/internal/sim"
	"ssp/internal/sim/mem"
)

// Fig2Row reproduces one category of Figure 2: speedups over the same
// model's baseline when assuming a perfect memory subsystem and when
// assuming only the delinquent loads always hit L1.
type Fig2Row struct {
	Bench                  string
	PerfMemIO, PerfDelIO   float64
	PerfMemOOO, PerfDelOOO float64
}

// Figure2 runs the perfect-memory / perfect-delinquent bound study.
func (s *Suite) Figure2() ([]Fig2Row, error) {
	if err := s.presimulate(Fig2Keys()); err != nil {
		return nil, err
	}
	var rows []Fig2Row
	for _, b := range Benchmarks() {
		r := Fig2Row{Bench: b}
		var err error
		if r.PerfMemIO, err = s.Speedup(b, sim.InOrder, VarBase, sim.InOrder, VarPerfMem); err != nil {
			return nil, err
		}
		if r.PerfDelIO, err = s.Speedup(b, sim.InOrder, VarBase, sim.InOrder, VarPerfDel); err != nil {
			return nil, err
		}
		if r.PerfMemOOO, err = s.Speedup(b, sim.OOO, VarBase, sim.OOO, VarPerfMem); err != nil {
			return nil, err
		}
		if r.PerfDelOOO, err = s.Speedup(b, sim.OOO, VarBase, sim.OOO, VarPerfDel); err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// Table2Row is one row of Table 2.
type Table2Row struct {
	Bench      string
	Slices     int
	Interproc  int
	AvgSize    float64
	AvgLiveIns float64
}

// Table2 reports slice characteristics of the tool's output.
func (s *Suite) Table2() ([]Table2Row, error) {
	var rows []Table2Row
	for _, b := range Benchmarks() {
		rep, err := s.Report(b, VarSSP)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table2Row{
			Bench:      b,
			Slices:     rep.NumSlices(),
			Interproc:  rep.NumInterproc(),
			AvgSize:    rep.AvgSize(),
			AvgLiveIns: rep.AvgLiveIns(),
		})
	}
	return rows, nil
}

// Fig8Row is one benchmark of Figure 8: speedups over the baseline in-order
// model for in-order+SSP, plain OOO, and OOO+SSP.
type Fig8Row struct {
	Bench                   string
	InOrderSSP, OOO, OOOSSP float64
}

// Figure8 runs the headline speedup study.
func (s *Suite) Figure8() ([]Fig8Row, error) {
	if err := s.presimulate(Fig8Keys()); err != nil {
		return nil, err
	}
	var rows []Fig8Row
	for _, b := range Benchmarks() {
		r := Fig8Row{Bench: b}
		var err error
		if r.InOrderSSP, err = s.Speedup(b, sim.InOrder, VarBase, sim.InOrder, VarSSP); err != nil {
			return nil, err
		}
		if r.OOO, err = s.Speedup(b, sim.InOrder, VarBase, sim.OOO, VarBase); err != nil {
			return nil, err
		}
		if r.OOOSSP, err = s.Speedup(b, sim.InOrder, VarBase, sim.OOO, VarSSP); err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// Fig9Config is one bar of Figure 9: the delinquent loads' L1 miss rate and
// the distribution of where missing accesses were satisfied (full and
// partial hits per level).
type Fig9Config struct {
	Label      string
	L1MissRate float64
	// Share is the fraction of L1-missing accesses satisfied at each
	// (level, partial) bucket; levels L2..Mem, index 0 full / 1 partial.
	Share map[string]float64
}

// Fig9Row is one benchmark's four configurations (io, io+ssp, ooo, ooo+ssp).
type Fig9Row struct {
	Bench   string
	Configs []Fig9Config
}

// Figure9 computes the delinquent-load satisfaction breakdown.
func (s *Suite) Figure9() ([]Fig9Row, error) {
	if err := s.presimulate(Fig8Keys()); err != nil {
		return nil, err
	}
	var rows []Fig9Row
	for _, b := range Benchmarks() {
		ps, err := s.prog(context.Background(), b)
		if err != nil {
			return nil, err
		}
		row := Fig9Row{Bench: b}
		for _, c := range []struct {
			label string
			model sim.Model
			v     Variant
		}{
			{"io", sim.InOrder, VarBase},
			{"io+ssp", sim.InOrder, VarSSP},
			{"ooo", sim.OOO, VarBase},
			{"ooo+ssp", sim.OOO, VarSSP},
		} {
			res, err := s.Run(b, c.model, c.v)
			if err != nil {
				return nil, err
			}
			var acc, l1 uint64
			missBuckets := map[string]uint64{}
			var missTotal uint64
			for _, id := range ps.del {
				st := res.Hier.ByLoad()[id]
				if st == nil {
					continue
				}
				acc += st.Accesses
				l1 += st.Hits[mem.L1][0]
				for lvl := mem.L2; lvl <= mem.Mem; lvl++ {
					for p := 0; p < 2; p++ {
						n := st.Hits[lvl][p]
						missTotal += n
						key := lvl.String()
						if p == 1 {
							key += " partial"
						}
						missBuckets[key] += n
					}
				}
			}
			cfgRes := Fig9Config{Label: c.label, Share: map[string]float64{}}
			if acc > 0 {
				cfgRes.L1MissRate = float64(acc-l1) / float64(acc)
			}
			if missTotal > 0 {
				for k, n := range missBuckets {
					cfgRes.Share[k] = float64(n) / float64(missTotal)
				}
			}
			row.Configs = append(row.Configs, cfgRes)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig10Config is one bar of Figure 10: the main thread's cycle breakdown
// normalized to the baseline in-order cycle count.
type Fig10Config struct {
	Label string
	// Norm holds the six categories (L3, L2, L1, Cache+Exec, Exec, Other)
	// as fractions of the baseline in-order cycles.
	Norm [sim.NumCategories]float64
	// Total is the bar height (cycles / baseline in-order cycles).
	Total float64
}

// Fig10Row is one benchmark's four configurations.
type Fig10Row struct {
	Bench   string
	Configs []Fig10Config
}

// Figure10 computes normalized cycle breakdowns.
func (s *Suite) Figure10() ([]Fig10Row, error) {
	if err := s.presimulate(Fig8Keys()); err != nil {
		return nil, err
	}
	var rows []Fig10Row
	for _, b := range Benchmarks() {
		base, err := s.Run(b, sim.InOrder, VarBase)
		if err != nil {
			return nil, err
		}
		denom := float64(base.Cycles)
		row := Fig10Row{Bench: b}
		for _, c := range []struct {
			label string
			model sim.Model
			v     Variant
		}{
			{"io", sim.InOrder, VarBase},
			{"io+ssp", sim.InOrder, VarSSP},
			{"ooo", sim.OOO, VarBase},
			{"ooo+ssp", sim.OOO, VarSSP},
		} {
			res, err := s.Run(b, c.model, c.v)
			if err != nil {
				return nil, err
			}
			fc := Fig10Config{Label: c.label}
			for cat := sim.Category(0); cat < sim.NumCategories; cat++ {
				fc.Norm[cat] = float64(res.Breakdown[cat]) / denom
			}
			fc.Total = float64(res.Cycles) / denom
			row.Configs = append(row.Configs, fc)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Sec45Row compares automatic and hand adaptation (§4.5) on one model.
type Sec45Row struct {
	Bench       string
	Model       string
	AutoSpeedup float64
	HandSpeedup float64
	// LossPct is how much of the hand version's speedup the tool loses:
	// 1 - auto/hand, as a percentage (the paper reports 20%/12%/27%).
	LossPct float64
}

// Section45 runs the automatic-vs-hand study on mcf and health.
func (s *Suite) Section45() ([]Sec45Row, error) {
	if err := s.presimulate(Sec45Keys()); err != nil {
		return nil, err
	}
	var rows []Sec45Row
	for _, b := range []string{"mcf", "health"} {
		for _, model := range []sim.Model{sim.InOrder, sim.OOO} {
			auto, err := s.Speedup(b, model, VarBase, model, VarSSP)
			if err != nil {
				return nil, err
			}
			hand, err := s.Speedup(b, model, VarBase, model, VarHand)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Sec45Row{
				Bench:       b,
				Model:       model.String(),
				AutoSpeedup: auto,
				HandSpeedup: hand,
				LossPct:     100 * (1 - auto/hand),
			})
		}
	}
	return rows, nil
}

// AblationRow is one benchmark/variant speedup over the in-order baseline.
type AblationRow struct {
	Bench   string
	Variant Variant
	Speedup float64
}

// Ablations measures each disabled design choice on the in-order model.
func (s *Suite) Ablations(benches []string) ([]AblationRow, error) {
	if benches == nil {
		benches = Benchmarks()
	}
	if err := s.presimulate(AblationKeys(benches)); err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, b := range benches {
		for _, v := range ablationVariants {
			sp, err := s.Speedup(b, sim.InOrder, VarBase, sim.InOrder, v)
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationRow{Bench: b, Variant: v, Speedup: sp})
		}
	}
	return rows, nil
}

// GeoMean returns the geometric mean of xs (the paper quotes arithmetic
// averages; both are reported by the drivers).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	p := 1.0
	for _, x := range xs {
		p *= x
	}
	return math.Pow(p, 1/float64(len(xs)))
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// FormatTable renders rows of cells as an aligned text table.
func FormatTable(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", width[i], c)
		}
		sb.WriteByte('\n')
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
	return sb.String()
}
