package exp

import (
	"context"
	"fmt"
	"math"
	"strings"

	"ssp/internal/sim"
	"ssp/internal/sim/mem"
	"ssp/internal/workloads"
)

// Fig2Row reproduces one category of Figure 2: speedups over the same
// model's baseline when assuming a perfect memory subsystem and when
// assuming only the delinquent loads always hit L1.
type Fig2Row struct {
	Bench                  string
	PerfMemIO, PerfDelIO   float64
	PerfMemOOO, PerfDelOOO float64
}

// Figure2 runs the perfect-memory / perfect-delinquent bound study.
func (s *Suite) Figure2() ([]Fig2Row, error) {
	if err := s.presimulate(Fig2Keys()); err != nil {
		return nil, err
	}
	var rows []Fig2Row
	for _, b := range PaperBenchmarks() {
		r := Fig2Row{Bench: b}
		var err error
		if r.PerfMemIO, err = s.Speedup(b, sim.InOrder, VarBase, sim.InOrder, VarPerfMem); err != nil {
			return nil, err
		}
		if r.PerfDelIO, err = s.Speedup(b, sim.InOrder, VarBase, sim.InOrder, VarPerfDel); err != nil {
			return nil, err
		}
		if r.PerfMemOOO, err = s.Speedup(b, sim.OOO, VarBase, sim.OOO, VarPerfMem); err != nil {
			return nil, err
		}
		if r.PerfDelOOO, err = s.Speedup(b, sim.OOO, VarBase, sim.OOO, VarPerfDel); err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// Table2Row is one per-benchmark row of Table 2, with the source paper's
// numbers alongside for the kernels that have a namesake there (the Paper*
// fields are zero for benchmarks with no counterpart, e.g. the rand.*
// family). Multi-phase variants compare against their base kernel's row:
// the paper's full benchmarks have several hot routines each earning a
// slice, which is exactly the shape the *.multi kernels reintroduce.
type Table2Row struct {
	Bench      string  `json:"bench"`
	Slices     int     `json:"slices"`
	Interproc  int     `json:"interproc"`
	AvgSize    float64 `json:"avg_size"`
	AvgLiveIns float64 `json:"avg_live_ins"`

	PaperSlices     int     `json:"paper_slices,omitempty"`
	PaperInterproc  int     `json:"paper_interproc,omitempty"`
	PaperAvgSize    float64 `json:"paper_avg_size,omitempty"`
	PaperAvgLiveIns float64 `json:"paper_avg_live_ins,omitempty"`
}

// paperTable2 pins the source paper's Table 2 rows.
var paperTable2 = map[string]Table2Row{
	"em3d":       {PaperSlices: 8, PaperInterproc: 0, PaperAvgSize: 10.3, PaperAvgLiveIns: 2.8},
	"health":     {PaperSlices: 2, PaperInterproc: 1, PaperAvgSize: 9.0, PaperAvgLiveIns: 3.5},
	"mst":        {PaperSlices: 4, PaperInterproc: 1, PaperAvgSize: 28.3, PaperAvgLiveIns: 4.8},
	"treeadd.df": {PaperSlices: 3, PaperInterproc: 0, PaperAvgSize: 11.3, PaperAvgLiveIns: 3.0},
	"treeadd.bf": {PaperSlices: 2, PaperInterproc: 0, PaperAvgSize: 12.5, PaperAvgLiveIns: 4.5},
	"mcf":        {PaperSlices: 5, PaperInterproc: 0, PaperAvgSize: 14.0, PaperAvgLiveIns: 4.4},
	"vpr":        {PaperSlices: 6, PaperInterproc: 0, PaperAvgSize: 13.5, PaperAvgLiveIns: 4.0},
}

// paperCounterpart maps a benchmark to its paper Table 2 namesake: the
// benchmark itself, or for the multi-phase variants the base kernel they
// scale up ("mcf.multi" compares against the paper's mcf row).
func paperCounterpart(bench string) (Table2Row, bool) {
	if r, ok := paperTable2[bench]; ok {
		return r, true
	}
	if base, _, ok := strings.Cut(bench, ".multi"); ok {
		r, ok := paperTable2[base]
		return r, ok
	}
	return Table2Row{}, false
}

// Table2 reports per-benchmark slice characteristics of the tool's output
// across every benchmark (paper kernels and the multi-phase portfolio ones).
func (s *Suite) Table2() ([]Table2Row, error) {
	var rows []Table2Row
	for _, b := range Benchmarks() {
		rep, err := s.Report(b, VarSSP)
		if err != nil {
			return nil, err
		}
		row := Table2Row{
			Bench:      b,
			Slices:     rep.NumSlices(),
			Interproc:  rep.NumInterproc(),
			AvgSize:    rep.AvgSize(),
			AvgLiveIns: rep.AvgLiveIns(),
		}
		if ref, ok := paperCounterpart(b); ok {
			row.PaperSlices = ref.PaperSlices
			row.PaperInterproc = ref.PaperInterproc
			row.PaperAvgSize = ref.PaperAvgSize
			row.PaperAvgLiveIns = ref.PaperAvgLiveIns
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table2Slice is one per-slice row of the machine-readable Table 2: which
// region the slice precomputes for, where its trigger sits, and the Table 2
// statistics that the envelope check gates.
type Table2Slice struct {
	Bench           string `json:"bench"`
	Slice           int    `json:"slice"`
	Region          string `json:"region"`
	Trigger         string `json:"trigger"`
	Model           string `json:"model"`
	Targets         []int  `json:"targets"`
	Size            int    `json:"size"`
	LiveIns         int    `json:"live_ins"`
	Interprocedural bool   `json:"interprocedural"`
	SpawnBudget     int64  `json:"spawn_budget"`
}

// Table2Slices flattens every benchmark's report into per-slice rows, the
// slice-portfolio companion to Table2's per-benchmark averages.
func (s *Suite) Table2Slices() ([]Table2Slice, error) {
	var rows []Table2Slice
	for _, b := range Benchmarks() {
		rep, err := s.Report(b, VarSSP)
		if err != nil {
			return nil, err
		}
		for i, sl := range rep.Slices {
			rows = append(rows, Table2Slice{
				Bench:           b,
				Slice:           i,
				Region:          sl.Region,
				Trigger:         sl.Trigger,
				Model:           sl.Model,
				Targets:         sl.Targets,
				Size:            sl.Size,
				LiveIns:         sl.LiveIns,
				Interprocedural: sl.Interprocedural,
				SpawnBudget:     sl.SpawnBudget,
			})
		}
	}
	return rows, nil
}

// Table2Envelope checks the generated portfolio against the paper's Table 2
// envelope and each benchmark's declared phase count, returning one message
// per violation (empty means the portfolio is inside the envelope):
//
//   - every slice's size lands in the paper's 7-15 instruction range and its
//     live-in count in the 1-4 range;
//   - every benchmark produces at least Spec.MinSlices slices (multi-phase
//     benchmarks declare >= 2), each with a distinct trigger site.
//
// `make table2-check` and the CI workflow fail on any violation.
func Table2Envelope(rows []Table2Row, slices []Table2Slice) []string {
	const (
		minSize, maxSize       = 7, 15
		minLiveIns, maxLiveIns = 1, 4
	)
	var bad []string
	triggers := make(map[string]map[string]bool)
	for _, sl := range slices {
		if sl.Size < minSize || sl.Size > maxSize {
			bad = append(bad, fmt.Sprintf("%s slice %d (%s): size %d outside Table 2 envelope [%d,%d]",
				sl.Bench, sl.Slice, sl.Region, sl.Size, minSize, maxSize))
		}
		if sl.LiveIns < minLiveIns || sl.LiveIns > maxLiveIns {
			bad = append(bad, fmt.Sprintf("%s slice %d (%s): %d live-ins outside Table 2 envelope [%d,%d]",
				sl.Bench, sl.Slice, sl.Region, sl.LiveIns, minLiveIns, maxLiveIns))
		}
		if triggers[sl.Bench] == nil {
			triggers[sl.Bench] = make(map[string]bool)
		}
		if triggers[sl.Bench][sl.Trigger] {
			bad = append(bad, fmt.Sprintf("%s slice %d (%s): trigger %s shared with another slice",
				sl.Bench, sl.Slice, sl.Region, sl.Trigger))
		}
		triggers[sl.Bench][sl.Trigger] = true
	}
	for _, r := range rows {
		spec, err := workloads.ByName(r.Bench)
		if err != nil {
			bad = append(bad, fmt.Sprintf("%s: unknown benchmark: %v", r.Bench, err))
			continue
		}
		min := spec.MinSlices
		if min < 1 {
			min = 1
		}
		if r.Slices < min {
			bad = append(bad, fmt.Sprintf("%s: %d slices, want >= %d independent slices", r.Bench, r.Slices, min))
		}
	}
	return bad
}

// Fig8Row is one benchmark of Figure 8: speedups over the baseline in-order
// model for in-order+SSP, plain OOO, and OOO+SSP.
type Fig8Row struct {
	Bench                   string
	InOrderSSP, OOO, OOOSSP float64
}

// Figure8 runs the headline speedup study.
func (s *Suite) Figure8() ([]Fig8Row, error) {
	if err := s.presimulate(Fig8Keys()); err != nil {
		return nil, err
	}
	var rows []Fig8Row
	for _, b := range PaperBenchmarks() {
		r := Fig8Row{Bench: b}
		var err error
		if r.InOrderSSP, err = s.Speedup(b, sim.InOrder, VarBase, sim.InOrder, VarSSP); err != nil {
			return nil, err
		}
		if r.OOO, err = s.Speedup(b, sim.InOrder, VarBase, sim.OOO, VarBase); err != nil {
			return nil, err
		}
		if r.OOOSSP, err = s.Speedup(b, sim.InOrder, VarBase, sim.OOO, VarSSP); err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// Fig9Config is one bar of Figure 9: the delinquent loads' L1 miss rate and
// the distribution of where missing accesses were satisfied (full and
// partial hits per level).
type Fig9Config struct {
	Label      string
	L1MissRate float64
	// Share is the fraction of L1-missing accesses satisfied at each
	// (level, partial) bucket; levels L2..Mem, index 0 full / 1 partial.
	Share map[string]float64
}

// Fig9Row is one benchmark's four configurations (io, io+ssp, ooo, ooo+ssp).
type Fig9Row struct {
	Bench   string
	Configs []Fig9Config
}

// Figure9 computes the delinquent-load satisfaction breakdown.
func (s *Suite) Figure9() ([]Fig9Row, error) {
	if err := s.presimulate(Fig8Keys()); err != nil {
		return nil, err
	}
	var rows []Fig9Row
	for _, b := range PaperBenchmarks() {
		ps, err := s.prog(context.Background(), b)
		if err != nil {
			return nil, err
		}
		row := Fig9Row{Bench: b}
		for _, c := range []struct {
			label string
			model sim.Model
			v     Variant
		}{
			{"io", sim.InOrder, VarBase},
			{"io+ssp", sim.InOrder, VarSSP},
			{"ooo", sim.OOO, VarBase},
			{"ooo+ssp", sim.OOO, VarSSP},
		} {
			res, err := s.Run(b, c.model, c.v)
			if err != nil {
				return nil, err
			}
			var acc, l1 uint64
			missBuckets := map[string]uint64{}
			var missTotal uint64
			for _, id := range ps.del {
				st := res.Hier.ByLoad()[id]
				if st == nil {
					continue
				}
				acc += st.Accesses
				l1 += st.Hits[mem.L1][0]
				for lvl := mem.L2; lvl <= mem.Mem; lvl++ {
					for p := 0; p < 2; p++ {
						n := st.Hits[lvl][p]
						missTotal += n
						key := lvl.String()
						if p == 1 {
							key += " partial"
						}
						missBuckets[key] += n
					}
				}
			}
			cfgRes := Fig9Config{Label: c.label, Share: map[string]float64{}}
			if acc > 0 {
				cfgRes.L1MissRate = float64(acc-l1) / float64(acc)
			}
			if missTotal > 0 {
				for k, n := range missBuckets {
					cfgRes.Share[k] = float64(n) / float64(missTotal)
				}
			}
			row.Configs = append(row.Configs, cfgRes)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig10Config is one bar of Figure 10: the main thread's cycle breakdown
// normalized to the baseline in-order cycle count.
type Fig10Config struct {
	Label string
	// Norm holds the six categories (L3, L2, L1, Cache+Exec, Exec, Other)
	// as fractions of the baseline in-order cycles.
	Norm [sim.NumCategories]float64
	// Total is the bar height (cycles / baseline in-order cycles).
	Total float64
}

// Fig10Row is one benchmark's four configurations.
type Fig10Row struct {
	Bench   string
	Configs []Fig10Config
}

// Figure10 computes normalized cycle breakdowns.
func (s *Suite) Figure10() ([]Fig10Row, error) {
	if err := s.presimulate(Fig8Keys()); err != nil {
		return nil, err
	}
	var rows []Fig10Row
	for _, b := range PaperBenchmarks() {
		base, err := s.Run(b, sim.InOrder, VarBase)
		if err != nil {
			return nil, err
		}
		denom := float64(base.Cycles)
		row := Fig10Row{Bench: b}
		for _, c := range []struct {
			label string
			model sim.Model
			v     Variant
		}{
			{"io", sim.InOrder, VarBase},
			{"io+ssp", sim.InOrder, VarSSP},
			{"ooo", sim.OOO, VarBase},
			{"ooo+ssp", sim.OOO, VarSSP},
		} {
			res, err := s.Run(b, c.model, c.v)
			if err != nil {
				return nil, err
			}
			fc := Fig10Config{Label: c.label}
			for cat := sim.Category(0); cat < sim.NumCategories; cat++ {
				fc.Norm[cat] = float64(res.Breakdown[cat]) / denom
			}
			fc.Total = float64(res.Cycles) / denom
			row.Configs = append(row.Configs, fc)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Sec45Row compares automatic and hand adaptation (§4.5) on one model.
type Sec45Row struct {
	Bench       string
	Model       string
	AutoSpeedup float64
	HandSpeedup float64
	// LossPct is how much of the hand version's speedup the tool loses:
	// 1 - auto/hand, as a percentage (the paper reports 20%/12%/27%).
	LossPct float64
}

// Section45 runs the automatic-vs-hand study on mcf and health.
func (s *Suite) Section45() ([]Sec45Row, error) {
	if err := s.presimulate(Sec45Keys()); err != nil {
		return nil, err
	}
	var rows []Sec45Row
	for _, b := range []string{"mcf", "health"} {
		for _, model := range []sim.Model{sim.InOrder, sim.OOO} {
			auto, err := s.Speedup(b, model, VarBase, model, VarSSP)
			if err != nil {
				return nil, err
			}
			hand, err := s.Speedup(b, model, VarBase, model, VarHand)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Sec45Row{
				Bench:       b,
				Model:       model.String(),
				AutoSpeedup: auto,
				HandSpeedup: hand,
				LossPct:     100 * (1 - auto/hand),
			})
		}
	}
	return rows, nil
}

// AblationRow is one benchmark/variant speedup over the in-order baseline.
type AblationRow struct {
	Bench   string
	Variant Variant
	Speedup float64
}

// Ablations measures each disabled design choice on the in-order model.
func (s *Suite) Ablations(benches []string) ([]AblationRow, error) {
	if benches == nil {
		benches = PaperBenchmarks()
	}
	if err := s.presimulate(AblationKeys(benches)); err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, b := range benches {
		for _, v := range ablationVariants {
			sp, err := s.Speedup(b, sim.InOrder, VarBase, sim.InOrder, v)
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationRow{Bench: b, Variant: v, Speedup: sp})
		}
	}
	return rows, nil
}

// GeoMean returns the geometric mean of xs (the paper quotes arithmetic
// averages; both are reported by the drivers).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	p := 1.0
	for _, x := range xs {
		p *= x
	}
	return math.Pow(p, 1/float64(len(xs)))
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// FormatTable renders rows of cells as an aligned text table.
func FormatTable(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", width[i], c)
		}
		sb.WriteByte('\n')
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
	return sb.String()
}
