package exp

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"ssp/internal/sim"
)

var update = flag.Bool("update", false, "rewrite testdata/golden_stats.json from the current simulator")

// goldenCell is the stat vector pinned per matrix cell. It captures the
// numbers the paper's figures are computed from — cycles, the Figure 10
// breakdown, instruction and spawn counts, and the memory-system totals — so
// any timing-model change that would silently move a published number fails
// here first (and is then either fixed or knowingly re-baselined with
// `go test ./internal/exp -run TestGoldenStats -update`).
type goldenCell struct {
	Cycles      int64
	Breakdown   [sim.NumCategories]int64
	MainInstrs  int64
	SpecInstrs  int64
	Spawns      int64
	ChkTaken    int64
	Mispredicts int64

	MemAccesses uint64
	MemL1Hits   uint64
	MissCycles  uint64
	TLBMisses   uint64
}

func toGolden(res *sim.Result) goldenCell {
	return goldenCell{
		Cycles:      res.Cycles,
		Breakdown:   res.Breakdown,
		MainInstrs:  res.MainInstrs,
		SpecInstrs:  res.SpecInstrs,
		Spawns:      res.Spawns,
		ChkTaken:    res.ChkTaken,
		Mispredicts: res.Mispredicts,
		MemAccesses: res.Hier.Totals.Accesses,
		MemL1Hits:   res.Hier.Totals.Hits[0][0],
		MissCycles:  res.Hier.Totals.MissCycles,
		TLBMisses:   res.Hier.Totals.TLBMisses,
	}
}

// TestGoldenStats pins the full stat vector of every benchmark under both
// machine models, baseline and SSP-adapted, at test scale. The workloads and
// the simulator are deterministic, so an exact comparison is the right
// sensitivity: a one-cycle drift anywhere in the timing model shows up as a
// named cell with a before/after diff rather than as a mysteriously shifted
// figure three PRs later.
func TestGoldenStats(t *testing.T) {
	got := make(map[string]goldenCell)
	for _, bench := range Benchmarks() {
		for _, model := range []sim.Model{sim.InOrder, sim.OOO} {
			for _, v := range []Variant{VarBase, VarSSP} {
				res, err := suite.Run(bench, model, v)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", bench, model, v, err)
				}
				got[fmt.Sprintf("%s/%s/%s", bench, model, v)] = toGolden(res)
			}
		}
	}

	path := filepath.Join("testdata", "golden_stats.json")
	if *update {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d cells", path, len(got))
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the baseline)", err)
	}
	var want map[string]goldenCell
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}

	var keys []string
	for k := range want {
		keys = append(keys, k)
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		g, gok := got[k]
		w, wok := want[k]
		switch {
		case !gok:
			t.Errorf("%s: in golden file but no longer produced", k)
		case !wok:
			t.Errorf("%s: produced but missing from golden file (run -update)", k)
		case !reflect.DeepEqual(g, w):
			t.Errorf("%s: stats drifted (run -update only if the change is intended)\n got %+v\nwant %+v", k, g, w)
		}
	}
}
