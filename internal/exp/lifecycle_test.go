package exp

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"ssp/internal/sim"
)

// panicHook is an exec hook that panics after a set number of instructions —
// the injected mid-run failure of the pool-poisoning regression test.
type panicHook struct{ left int }

func (h *panicHook) Exec(m *sim.Machine, t *sim.Thread, pc int) {
	if h.left--; h.left <= 0 {
		panic("injected mid-run failure")
	}
}

// TestPanickedRunDiscardsMachine: a run that panics mid-simulation must (a)
// surface as an error, not a panic, and (b) never return its machine to the
// pool — the next cell must run on a fresh or cleanly-recycled machine and
// produce exactly the reference result.
func TestPanickedRunDiscardsMachine(t *testing.T) {
	s := NewSuite(ScaleTest)
	_, err := s.RunInstrumented("mcf", sim.InOrder, VarBase, func(m *sim.Machine) {
		m.AttachExec(&panicHook{left: 100})
	})
	if err == nil {
		t.Fatal("panicked run reported success")
	}
	if !strings.Contains(err.Error(), "panic during simulation") {
		t.Fatalf("panic not surfaced in the error: %v", err)
	}
	if puts := s.PoolStats().Puts; puts != 0 {
		t.Fatalf("panicked run returned a machine to the pool (Puts=%d)", puts)
	}

	// The next run of the same cell must be clean and byte-identical to a
	// fresh suite's result.
	got, err := s.Run("mcf", sim.InOrder, VarBase)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewSuite(ScaleTest).Run("mcf", sim.InOrder, VarBase)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("run after a panicked cell diverged from a fresh suite")
	}
}

// cancelHook cancels a context after a set number of executed instructions,
// making "cancelled mid-run" deterministic instead of a sleep race. The
// direct Interrupt makes the stop land on the very next cycle; cancel()
// first means the machine reports context.Canceled, not ErrInterrupted.
type cancelHook struct {
	cancel context.CancelFunc
	left   int
}

func (h *cancelHook) Exec(m *sim.Machine, t *sim.Thread, pc int) {
	if h.left--; h.left == 0 {
		h.cancel()
		m.Interrupt()
	}
}

// TestCancelledCellRetries: a simulation cancelled mid-run returns ctx.Err()
// promptly, does not cache the cancellation, does not pool the abandoned
// machine, and a later call with a live context recomputes the cell
// correctly.
func TestCancelledCellRetries(t *testing.T) {
	s := NewSuite(ScaleTest)

	// Deterministic mid-run cancellation: an exec hook pulls the trigger
	// after 500 instructions, well inside the run.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	start := time.Now()
	_, err := s.simulate(ctx, RunKey{"mcf", sim.InOrder, VarBase}, func(m *sim.Machine) {
		m.AttachExec(&cancelHook{cancel: cancel, left: 500})
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if wall := time.Since(start); wall > 5*time.Second {
		t.Errorf("cancellation took %v", wall)
	}
	if puts := s.PoolStats().Puts; puts != 0 {
		t.Fatalf("cancelled run returned its machine to the pool (Puts=%d)", puts)
	}

	// A cancelled context surfaced through the public cache path must not
	// poison the cell: the next Run with a live context recomputes it and
	// matches a fresh suite byte-for-byte.
	dead, cancelDead := context.WithCancel(context.Background())
	cancelDead()
	if _, err := s.RunContext(dead, "mcf", sim.OOO, VarBase); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled RunContext: got %v", err)
	}
	got, err := s.Run("mcf", sim.OOO, VarBase)
	if err != nil {
		t.Fatalf("run after cancellation: %v", err)
	}
	want, err := NewSuite(ScaleTest).Run("mcf", sim.OOO, VarBase)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("recomputed cell diverged from a fresh suite")
	}
}

// TestRunAllContextCancel: a cancelled presimulation stops promptly and
// reports the context error instead of grinding through the matrix.
func TestRunAllContextCancel(t *testing.T) {
	s := NewSuite(ScaleTest)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.RunAllContext(ctx, MatrixKeys(), 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
