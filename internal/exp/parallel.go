package exp

import (
	"context"
	"runtime"
	"sync"

	"ssp/internal/sim"
)

// The per-key singleflight memoization behind the suite's caches lives in
// internal/flight (flight.Cell), shared with the serving layer. Simulation
// is deterministic, so a failed cell's error is cached — retrying would only
// reproduce the failure; the exceptions are cancellation and transient
// errors, which flight deliberately does not cache.

// RunAll presimulates the given matrix cells on a pool of workers, filling
// the suite's caches so subsequent serial Run/Speedup calls are hits.
// workers <= 0 means runtime.GOMAXPROCS(0). Duplicate keys are deduplicated
// up front (the per-cell singleflight would coalesce them anyway, but a
// duplicate would occupy a worker for the duration of the first run).
//
// Every cell is attempted even when some fail; the returned error is the
// first failure in key order, so the outcome is deterministic regardless of
// scheduling.
func (s *Suite) RunAll(keys []RunKey, workers int) error {
	return s.RunAllContext(context.Background(), keys, workers)
}

// RunAllContext is RunAll under a context. Once the context is cancelled,
// in-flight cells stop promptly (sim-level cancellation), queued cells are
// not started, and the first error in key order — here, ctx.Err() — is
// returned. Cancelled cells are not cached, so a later RunAll recomputes
// them.
func (s *Suite) RunAllContext(ctx context.Context, keys []RunKey, workers int) error {
	keys = dedupKeys(keys)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(keys) {
		workers = len(keys)
	}
	if len(keys) == 0 {
		return nil
	}
	errs := make([]error, len(keys))
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				k := keys[i]
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				_, errs[i] = s.RunContext(ctx, k.Bench, k.Model, k.Variant)
			}
		}()
	}
	for i := range keys {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// presimulate is the figure drivers' entry point: fan the figure's cells out
// over the suite's configured worker count.
func (s *Suite) presimulate(keys []RunKey) error {
	return s.RunAll(keys, s.Workers)
}

func dedupKeys(keys []RunKey) []RunKey {
	seen := make(map[RunKey]bool, len(keys))
	out := keys[:0:0]
	for _, k := range keys {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

// Cross returns the full benches × models × variants cross product, the
// building block for assembling presimulation work lists.
func Cross(benches []string, models []sim.Model, variants []Variant) []RunKey {
	keys := make([]RunKey, 0, len(benches)*len(models)*len(variants))
	for _, b := range benches {
		for _, m := range models {
			for _, v := range variants {
				keys = append(keys, RunKey{b, m, v})
			}
		}
	}
	return keys
}

// bothModels is the io/ooo pair in driver order.
var bothModels = []sim.Model{sim.InOrder, sim.OOO}

// Fig2Keys lists the cells Figure 2 needs: both models' baselines and the
// two perfect-memory bounds for every paper benchmark.
func Fig2Keys() []RunKey {
	return Cross(PaperBenchmarks(), bothModels, []Variant{VarBase, VarPerfMem, VarPerfDel})
}

// Fig8Keys lists the cells Figures 8, 9, and 10 need: baseline and SSP on
// both models for every paper benchmark.
func Fig8Keys() []RunKey {
	return Cross(PaperBenchmarks(), bothModels, []Variant{VarBase, VarSSP})
}

// Sec45Keys lists the §4.5 cells: baseline, tool, and hand adaptation of
// mcf and health on both models.
func Sec45Keys() []RunKey {
	return Cross([]string{"mcf", "health"}, bothModels, []Variant{VarBase, VarSSP, VarHand})
}

// ablationVariants are the treatments the ablation study compares.
var ablationVariants = []Variant{VarSSP, VarNoChain, VarNoRotate, VarNoPred, VarNoSpec, VarUnroll}

// AblationKeys lists the in-order ablation cells for the given benchmarks
// (nil means the paper benchmarks).
func AblationKeys(benches []string) []RunKey {
	if benches == nil {
		benches = PaperBenchmarks()
	}
	return Cross(benches, []sim.Model{sim.InOrder}, append([]Variant{VarBase}, ablationVariants...))
}

// MatrixKeys is the whole paper matrix — every cell any figure driver
// touches. cmd/experiments and the benchmark harness presimulate it when
// they know they will regenerate everything.
func MatrixKeys() []RunKey {
	keys := Fig2Keys()
	keys = append(keys, Fig8Keys()...)
	keys = append(keys, Sec45Keys()...)
	keys = append(keys, AblationKeys(nil)...)
	return dedupKeys(keys)
}
