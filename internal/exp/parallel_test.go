package exp

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"ssp/internal/sim"
)

// TestSerialParallelDeterminism runs the whole suite twice — once strictly
// serial, once on a wide worker pool — and diffs every table. The parallel
// engine must be a pure scheduling change: same RunKey, same *sim.Result,
// same rows, byte-identical rendered tables.
func TestSerialParallelDeterminism(t *testing.T) {
	serial := NewSuite(ScaleTest)
	serial.Workers = 1
	parallel := NewSuite(ScaleTest)
	parallel.Workers = 8

	type tables struct {
		Fig2  []Fig2Row
		Tab2  []Table2Row
		Fig8  []Fig8Row
		Fig9  []Fig9Row
		Fig10 []Fig10Row
		Sec45 []Sec45Row
		Abl   []AblationRow
	}
	collect := func(s *Suite) tables {
		t.Helper()
		var out tables
		var err error
		if out.Fig2, err = s.Figure2(); err != nil {
			t.Fatal(err)
		}
		if out.Tab2, err = s.Table2(); err != nil {
			t.Fatal(err)
		}
		if out.Fig8, err = s.Figure8(); err != nil {
			t.Fatal(err)
		}
		if out.Fig9, err = s.Figure9(); err != nil {
			t.Fatal(err)
		}
		if out.Fig10, err = s.Figure10(); err != nil {
			t.Fatal(err)
		}
		if out.Sec45, err = s.Section45(); err != nil {
			t.Fatal(err)
		}
		if out.Abl, err = s.Ablations([]string{"mcf", "em3d"}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := collect(serial), collect(parallel)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("serial and parallel tables differ:\nserial:   %+v\nparallel: %+v", a, b)
	}
}

// TestRunAllCoalesces hammers one suite from many goroutines with duplicate
// keys; every caller must get the same cached *sim.Result pointer, proving
// in-flight duplicates coalesced instead of double-simulating. Run under
// `go test -race` this is also the race-detector coverage for the
// concurrent Suite.
func TestRunAllCoalesces(t *testing.T) {
	s := NewSuite(ScaleTest)
	keys := []RunKey{
		{"mcf", sim.InOrder, VarBase},
		{"mcf", sim.InOrder, VarSSP},
		{"mcf", sim.OOO, VarSSP},
		{"vpr", sim.InOrder, VarBase},
		{"vpr", sim.InOrder, VarSSP},
	}
	const goroutines = 8
	results := make([]map[RunKey]*sim.Result, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got := make(map[RunKey]*sim.Result, len(keys))
			for _, k := range keys {
				r, err := s.Run(k.Bench, k.Model, k.Variant)
				if err != nil {
					t.Error(err)
					return
				}
				got[k] = r
			}
			if _, err := s.Report("mcf", VarSSP); err != nil {
				t.Error(err)
			}
			results[g] = got
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for g := 1; g < goroutines; g++ {
		for _, k := range keys {
			if results[g][k] != results[0][k] {
				t.Fatalf("%s: goroutine %d got a different *sim.Result than goroutine 0", k, g)
			}
		}
	}
}

func TestRunAllPropagatesErrors(t *testing.T) {
	s := NewSuite(ScaleTest)
	keys := []RunKey{
		{"mcf", sim.InOrder, Variant("bogus")},
		{"nosuchbench", sim.InOrder, VarBase},
	}
	err := s.RunAll(keys, 4)
	if err == nil {
		t.Fatal("RunAll swallowed cell errors")
	}
	// First failure in key order wins, deterministically.
	if !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("expected the first key's error, got: %v", err)
	}
	if err := s.RunAll(nil, 4); err != nil {
		t.Fatalf("empty key list: %v", err)
	}
}

// TestReportNoToolVariants is the regression test for the nil, nil Report:
// variants without a tool run behind them must return a descriptive error,
// never a silent nil report.
func TestReportNoToolVariants(t *testing.T) {
	for _, v := range []Variant{VarHand, VarBase, VarPerfMem, VarPerfDel} {
		rep, err := suite.Report("mcf", v)
		if err == nil {
			t.Fatalf("Report(mcf, %s) = %v, <nil>; want a descriptive error", v, rep)
		}
		if !strings.Contains(err.Error(), "no tool report") {
			t.Fatalf("Report(mcf, %s): undescriptive error %v", v, err)
		}
	}
	rep, err := suite.Report("mcf", VarSSP)
	if err != nil || rep == nil {
		t.Fatalf("Report(mcf, ssp) = %v, %v", rep, err)
	}
	if _, err := suite.Report("mcf", Variant("bogus")); err == nil {
		t.Fatal("Report accepted an unknown variant")
	}
}

func TestCrossAndKeys(t *testing.T) {
	keys := Cross([]string{"a", "b"}, []sim.Model{sim.InOrder}, []Variant{VarBase, VarSSP})
	if len(keys) != 4 {
		t.Fatalf("Cross: %d keys", len(keys))
	}
	if got := dedupKeys(append(keys, keys...)); len(got) != 4 {
		t.Fatalf("dedupKeys: %d keys", len(got))
	}
	m := MatrixKeys()
	seen := map[RunKey]bool{}
	for _, k := range m {
		if seen[k] {
			t.Fatalf("MatrixKeys contains duplicate %s", k)
		}
		seen[k] = true
	}
	for _, want := range [][]RunKey{Fig2Keys(), Fig8Keys(), Sec45Keys(), AblationKeys(nil)} {
		for _, k := range want {
			if !seen[k] {
				t.Fatalf("MatrixKeys is missing %s", k)
			}
		}
	}
}
