// Package flight is the singleflight memoization primitive shared by the
// experiment suite (internal/exp) and the serving layer (internal/serve): a
// Cell is one content-addressed slot whose first caller computes the value
// while concurrent duplicates coalesce onto the same computation, and whose
// outcome — value or error — is cached for every later caller.
//
// Two outcome classes are deliberately NOT cached, because they describe the
// caller rather than the computation:
//
//   - context cancellation and deadline expiry (the run that was asked to
//     stop tells us nothing about the cell's value), and
//   - errors wrapping ErrTransient (capacity rejections, resource
//     exhaustion — conditions that clear on their own).
//
// When such a run finishes, the cell resets: coalesced waiters that are still
// interested retry and one of them becomes the new runner, so a cancelled
// client cannot poison the slot for everyone behind it. Deterministic
// failures (a program that cannot be adapted, a simulation that trips a
// checksum) stay cached — retrying them would only reproduce the failure.
package flight

import (
	"context"
	"errors"
	"sync"
)

// ErrTransient marks an error as non-cacheable: a Cell whose computation
// fails with an error wrapping ErrTransient resets instead of caching the
// failure, so later callers retry. Wrap with fmt.Errorf("%w: ...", ErrTransient).
var ErrTransient = errors.New("transient failure")

// uncacheable reports whether an outcome must not be memoized.
func uncacheable(err error) bool {
	return err != nil && (errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ErrTransient))
}

// run is one attempt at computing a cell's value. done is closed when val/err
// are final.
type run[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// Cell is a singleflight memoization slot. The zero Cell is ready to use; it
// must not be copied after first use.
type Cell[T any] struct {
	mu  sync.Mutex
	cur *run[T]
}

// Do returns the cell's value, computing it with fn if no prior computation
// is cached or in flight. Concurrent callers coalesce: exactly one runs fn
// (with its own ctx) and the rest wait for the outcome or for their own
// context, whichever finishes first. A waiter whose context expires returns
// ctx.Err() without disturbing the computation.
//
// If the runner's outcome is uncacheable — a context error or an error
// wrapping ErrTransient — the cell resets and surviving waiters retry, each
// eligible to become the next runner. Any other outcome is cached forever.
func (c *Cell[T]) Do(ctx context.Context, fn func(context.Context) (T, error)) (T, error) {
	for {
		c.mu.Lock()
		r := c.cur
		if r == nil {
			r = &run[T]{done: make(chan struct{})}
			c.cur = r
			c.mu.Unlock()
			r.val, r.err = fn(ctx)
			if uncacheable(r.err) {
				c.mu.Lock()
				if c.cur == r {
					c.cur = nil
				}
				c.mu.Unlock()
			}
			close(r.done)
			return r.val, r.err
		}
		c.mu.Unlock()
		select {
		case <-r.done:
			if uncacheable(r.err) {
				// The runner was cancelled or hit a transient condition;
				// its outcome says nothing about the value. Retry (the
				// cell has been reset, so the loop will find either a
				// fresh runner to join or an empty slot to claim).
				continue
			}
			return r.val, r.err
		case <-ctx.Done():
			var zero T
			return zero, ctx.Err()
		}
	}
}

// Done reports whether the cell holds a cached outcome: a computation that
// finished with a cacheable value or error. An in-flight run does not count.
// The answer is advisory — a concurrent Do may complete right after — but it
// is exact enough for cache-hit accounting.
func (c *Cell[T]) Done() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur == nil {
		return false
	}
	select {
	case <-c.cur.done:
		return !uncacheable(c.cur.err)
	default:
		return false
	}
}
