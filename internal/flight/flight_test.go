package flight

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCoalesce: concurrent identical requests run fn exactly once and all
// observe the same value.
func TestCoalesce(t *testing.T) {
	var c Cell[int]
	var calls atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	const waiters = 16

	var wg sync.WaitGroup
	results := make([]int, waiters)
	go func() {
		c.Do(context.Background(), func(context.Context) (int, error) {
			calls.Add(1)
			close(started)
			<-release
			return 42, nil
		})
	}()
	<-started
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.Do(context.Background(), func(context.Context) (int, error) {
				calls.Add(1)
				return -1, nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i] = v
		}(i)
	}
	close(release)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
	for i, v := range results {
		if v != 42 {
			t.Errorf("waiter %d got %d, want 42", i, v)
		}
	}
	if !c.Done() {
		t.Error("cell not Done after a cached success")
	}
}

// TestErrorCached: a deterministic failure is memoized; fn is not retried.
func TestErrorCached(t *testing.T) {
	var c Cell[int]
	var calls int
	boom := errors.New("boom")
	for i := 0; i < 3; i++ {
		_, err := c.Do(context.Background(), func(context.Context) (int, error) {
			calls++
			return 0, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("got %v, want boom", err)
		}
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1 (errors are cached)", calls)
	}
	if !c.Done() {
		t.Error("cell not Done after a cached error")
	}
}

// TestTransientNotCached: ErrTransient outcomes reset the cell so the next
// caller retries.
func TestTransientNotCached(t *testing.T) {
	var c Cell[int]
	calls := 0
	_, err := c.Do(context.Background(), func(context.Context) (int, error) {
		calls++
		return 0, fmt.Errorf("%w: out of capacity", ErrTransient)
	})
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("got %v", err)
	}
	if c.Done() {
		t.Fatal("transient outcome was cached")
	}
	v, err := c.Do(context.Background(), func(context.Context) (int, error) {
		calls++
		return 7, nil
	})
	if err != nil || v != 7 {
		t.Fatalf("retry got (%d, %v)", v, err)
	}
	if calls != 2 {
		t.Fatalf("fn ran %d times, want 2", calls)
	}
}

// TestCancelledRunnerNotCached: a runner that returns ctx.Err() resets the
// cell, and a live waiter retries and becomes the new runner.
func TestCancelledRunnerNotCached(t *testing.T) {
	var c Cell[int]
	runnerCtx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var second atomic.Int32

	go func() {
		c.Do(runnerCtx, func(ctx context.Context) (int, error) {
			close(started)
			<-ctx.Done()
			return 0, ctx.Err()
		})
	}()
	<-started

	done := make(chan struct{})
	go func() {
		defer close(done)
		v, err := c.Do(context.Background(), func(context.Context) (int, error) {
			second.Add(1)
			return 99, nil
		})
		if err != nil || v != 99 {
			t.Errorf("waiter after cancel got (%d, %v), want (99, nil)", v, err)
		}
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter did not retry after the runner was cancelled")
	}
	if second.Load() != 1 {
		t.Fatalf("retry ran %d times, want 1", second.Load())
	}
}

// TestWaiterContext: a waiter whose own context expires leaves without
// disturbing the in-flight run.
func TestWaiterContext(t *testing.T) {
	var c Cell[int]
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.Do(context.Background(), func(context.Context) (int, error) {
			close(started)
			<-release
			return 5, nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Do(ctx, func(context.Context) (int, error) { return -1, nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("expired waiter got %v, want context.Canceled", err)
	}
	close(release)
	if v, err := c.Do(context.Background(), nil); err != nil || v != 5 {
		// nil fn is fine here: the cached outcome means fn is never called.
		t.Fatalf("cached read got (%d, %v), want (5, nil)", v, err)
	}
}
