// Package handtuned provides manually adapted SSP binaries for mcf and
// health, reproducing the hand-adaptation baseline of §4.5 (Wang et al.
// [31]). The hand versions use the same trigger/stub/slice mechanism as the
// tool but apply the aggressive transformations the paper says the tool
// cannot derive automatically: unrolling the chaining slice over multiple
// iterations, and inlining several levels of the pointee walk to build a
// bigger interprocedural slice with more slack (§4.4.1, §4.5).
package handtuned

import (
	"fmt"

	"ssp/internal/ir"
)

// Live-in buffer slot assignments shared by the hand slices.
const (
	slotArc = 0
	slotK   = 1
)

// AdaptMcf returns a hand-adapted copy of the workloads.Mcf program: a
// chaining slice unrolled over two arcs per thread, so each speculative
// thread issues four potential prefetches and the chain spawns half as
// often.
func AdaptMcf(orig *ir.Program) (*ir.Program, error) {
	p := orig.Clone()
	f := p.FuncByName("main")
	if f == nil {
		return nil, fmt.Errorf("handtuned: no main function")
	}
	loop := f.BlockByLabel("loop")
	if loop == nil || loop.Instrs[0].Op != ir.OpNop {
		return nil, fmt.Errorf("handtuned: mcf loop shape not recognized")
	}
	// Trigger: replace the padding nop at the loop head.
	loop.Instrs[0].Op = ir.OpChk
	loop.Instrs[0].Target = "hand_stub"

	stub := ir.NewBlockBuilder(p, f, f.AddBlock("hand_stub"))
	stub.Liw(slotArc, 14) // arc
	stub.Liw(slotK, 15)   // K
	stub.Spawn("hand_slice")

	// Chaining slice, unrolled by two (the hand-scheduled do-across loop):
	//   critical: arc' = arc + 128; chain spawn
	//   non-critical: tail/head loads and potential prefetches for both
	//   arcs, scheduled loads-first so the misses overlap.
	s := ir.NewBlockBuilder(p, f, f.AddBlock("hand_slice"))
	s.Lir(100, slotArc) // arc
	s.Lir(101, slotK)   // K
	s.AddI(102, 100, 128)
	s.Liw(slotArc, 102)
	s.Liw(slotK, 101)
	s.Cmp(ir.CondLT, 40, 41, 102, 101)
	s.On(40).Spawn("hand_slice")
	// Both iterations' pointer loads issue before any dereference so the
	// two tail/head misses overlap (hand scheduling).
	s.Ld(103, 100, 8)    // arc0->tail
	s.Ld(104, 100, 16)   // arc0->head
	s.Ld(105, 100, 8+64) // arc1->tail
	s.Ld(106, 100, 80)   // arc1->head
	s.Lfetch(103, 16)
	s.Lfetch(104, 16)
	s.Lfetch(105, 16)
	s.Lfetch(106, 16)
	s.Kill()
	f.Renumber()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// AdaptHealth returns a hand-adapted copy of the workloads.Health program:
// the chaining slice walks the village list one step per thread but inlines
// four levels of the callee's patient-list walk — the "bigger
// interprocedural slice" built "by the programmer's hand adaptation to
// create large enough slack" that §4.4.1 credits for hand adaptation's
// advantage on health.
func AdaptHealth(orig *ir.Program) (*ir.Program, error) {
	p := orig.Clone()
	f := p.FuncByName("main")
	if f == nil || p.FuncByName("sum_list") == nil {
		return nil, fmt.Errorf("handtuned: health shape not recognized")
	}
	loop := f.BlockByLabel("loop")
	if loop == nil || loop.Instrs[0].Op != ir.OpNop {
		return nil, fmt.Errorf("handtuned: health loop shape not recognized")
	}
	loop.Instrs[0].Op = ir.OpChk
	loop.Instrs[0].Target = "hand_stub"

	stub := ir.NewBlockBuilder(p, f, f.AddBlock("hand_stub"))
	stub.Liw(0, 14) // vlist cursor
	stub.Liw(1, 15) // vlist end
	stub.Spawn("hand_slice")

	s := ir.NewBlockBuilder(p, f, f.AddBlock("hand_slice"))
	s.Lir(100, 0)
	s.Lir(101, 1)
	s.AddI(102, 100, 8) // next village slot
	s.Liw(0, 102)
	s.Liw(1, 101)
	s.Cmp(ir.CondLT, 40, 41, 102, 101)
	s.On(40).Spawn("hand_slice")
	// Interprocedural body, four levels of sum_list's walk inlined: the
	// village record, the patient head, and three successors. Each
	// patient record's time and next share its line, so one prefetch per
	// level covers both fields; the loads chase the chain.
	s.Ld(103, 100, 0) // v = vlist[i]
	s.Ld(104, 103, 0) // p1 = v->patients
	s.Lfetch(104, 8)  // p1 line
	s.Ld(105, 104, 0) // p2
	s.Lfetch(105, 8)
	s.Ld(106, 105, 0) // p3
	s.Lfetch(106, 8)
	s.Ld(107, 106, 0) // p4
	s.Lfetch(107, 8)
	s.Kill()
	f.Renumber()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Adapt dispatches to the hand adaptation for the named benchmark; only mcf
// and health have hand versions, matching §4.5 ("The common programs from
// both works are mcf and health").
func Adapt(name string, orig *ir.Program) (*ir.Program, error) {
	switch name {
	case "mcf":
		return AdaptMcf(orig)
	case "health":
		return AdaptHealth(orig)
	}
	return nil, fmt.Errorf("handtuned: no hand adaptation for %q", name)
}
