package handtuned

import (
	"testing"

	"ssp/internal/ir"
	"ssp/internal/profile"
	"ssp/internal/sim"
	"ssp/internal/ssp"
	"ssp/internal/workloads"
)

func tinyConfig() sim.Config {
	c := sim.DefaultInOrder()
	c.Mem.L1Size = 1 << 10
	c.Mem.L2Size = 4 << 10
	c.Mem.L3Size = 16 << 10
	c.MaxCycles = 200_000_000
	return c
}

func run(t *testing.T, p *ir.Program, cfg sim.Config) (uint64, *sim.Result) {
	t.Helper()
	img, err := ir.Link(p)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.New(cfg, img)
	res, err := m.Run()
	if err != nil || res.TimedOut {
		t.Fatalf("run failed: %v timedout=%v", err, res != nil && res.TimedOut)
	}
	return m.Mem.Load(workloads.ResultAddr), res
}

func TestHandAdaptationsPreserveResults(t *testing.T) {
	for _, name := range []string{"mcf", "health"} {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, err := workloads.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			orig, want := spec.Build(spec.TestScale)
			hand, err := Adapt(name, orig)
			if err != nil {
				t.Fatal(err)
			}
			got, res := run(t, hand, tinyConfig())
			if got != want {
				t.Fatalf("hand-adapted checksum = %d, want %d", got, want)
			}
			if res.Spawns == 0 {
				t.Fatal("hand adaptation spawned no threads")
			}
		})
	}
}

func TestHandBeatsBaseline(t *testing.T) {
	for _, name := range []string{"mcf", "health"} {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, _ := workloads.ByName(name)
			orig, _ := spec.Build(spec.TestScale)
			hand, err := Adapt(name, orig)
			if err != nil {
				t.Fatal(err)
			}
			_, base := run(t, orig, tinyConfig())
			_, fast := run(t, hand, tinyConfig())
			speedup := float64(base.Cycles) / float64(fast.Cycles)
			if speedup < 1.2 {
				t.Fatalf("hand speedup = %.2f, want >= 1.2", speedup)
			}
			t.Logf("%s hand speedup: %.2f", name, speedup)
		})
	}
}

func TestHandAtLeastMatchesAuto(t *testing.T) {
	// §4.5: the automated tool loses some performance to hand adaptation
	// (20%/12% in-order for mcf/health). The hand version must therefore
	// be at least about as fast as the tool's output.
	for _, name := range []string{"mcf", "health"} {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, _ := workloads.ByName(name)
			orig, _ := spec.Build(spec.TestScale)
			prof, err := profile.Collect(orig, tinyConfig())
			if err != nil {
				t.Fatal(err)
			}
			auto, _, err := ssp.Adapt(orig, prof, ssp.DefaultOptions(), name)
			if err != nil {
				t.Fatal(err)
			}
			hand, err := Adapt(name, orig)
			if err != nil {
				t.Fatal(err)
			}
			_, autoRes := run(t, auto, tinyConfig())
			_, handRes := run(t, hand, tinyConfig())
			ratio := float64(autoRes.Cycles) / float64(handRes.Cycles)
			t.Logf("%s: auto %d cycles, hand %d cycles (hand advantage %.2fx)",
				name, autoRes.Cycles, handRes.Cycles, ratio)
			if ratio < 0.85 {
				t.Fatalf("hand adaptation much slower than the tool (%.2fx)", ratio)
			}
		})
	}
}

func TestAdaptUnknownBenchmark(t *testing.T) {
	if _, err := Adapt("em3d", ir.NewProgram("main")); err == nil {
		t.Fatal("Adapt accepted a benchmark without a hand version")
	}
}

func TestAdaptRejectsForeignShape(t *testing.T) {
	p := ir.NewProgram("main")
	fb := ir.NewFunc(p, "main")
	fb.Block("entry").Halt()
	if _, err := AdaptMcf(p); err == nil {
		t.Fatal("AdaptMcf accepted a foreign program")
	}
	if _, err := AdaptHealth(p); err == nil {
		t.Fatal("AdaptHealth accepted a foreign program")
	}
}
