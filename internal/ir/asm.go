package ir

import (
	"fmt"
	"strings"
)

// formatInstr renders one instruction in the textual assembly syntax
// accepted by Parse.
func formatInstr(i *Instr) string {
	var sb strings.Builder
	if i.Qp != PTrue {
		fmt.Fprintf(&sb, "(%s) ", i.Qp)
	}
	op2 := func() string {
		if i.UseImm {
			return fmt.Sprintf("%d", i.Imm)
		}
		return i.Rb.String()
	}
	mem := func() string {
		if i.Disp != 0 {
			return fmt.Sprintf("[%s%+d]", i.Ra, i.Disp)
		}
		return fmt.Sprintf("[%s]", i.Ra)
	}
	switch i.Op {
	case OpNop:
		sb.WriteString("nop")
	case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr:
		fmt.Fprintf(&sb, "%s %s = %s, %s", i.Op, i.Rd, i.Ra, op2())
	case OpMov:
		fmt.Fprintf(&sb, "mov %s = %s", i.Rd, i.Ra)
	case OpMovI:
		fmt.Fprintf(&sb, "movi %s = %d", i.Rd, i.Imm)
	case OpCmp:
		fmt.Fprintf(&sb, "cmp.%s %s, %s = %s, %s", i.Cond, i.Pd1, i.Pd2, i.Ra, op2())
	case OpLd:
		if i.PostInc != 0 {
			fmt.Fprintf(&sb, "ld8 %s = %s, %d", i.Rd, mem(), i.PostInc)
		} else {
			fmt.Fprintf(&sb, "ld8 %s = %s", i.Rd, mem())
		}
	case OpSt:
		fmt.Fprintf(&sb, "st8 %s = %s", mem(), i.Rb)
	case OpLfetch:
		fmt.Fprintf(&sb, "lfetch %s", mem())
	case OpBr:
		fmt.Fprintf(&sb, "br %s", i.Target)
	case OpCall:
		fmt.Fprintf(&sb, "call %s = %s", i.Bd, i.Target)
	case OpCallB:
		fmt.Fprintf(&sb, "callb %s = %s", i.Bd, i.Bs)
	case OpRet:
		fmt.Fprintf(&sb, "ret %s", i.Bs)
	case OpMovBR:
		if i.Target != "" {
			fmt.Fprintf(&sb, "movbr %s = @%s", i.Bd, i.Target)
		} else {
			fmt.Fprintf(&sb, "movbr %s = %s", i.Bd, i.Ra)
		}
	case OpMovFromBR:
		fmt.Fprintf(&sb, "movfbr %s = %s", i.Rd, i.Bs)
	case OpChk:
		fmt.Fprintf(&sb, "chk.c %s", i.Target)
	case OpSpawn:
		fmt.Fprintf(&sb, "spawn %s", i.Target)
	case OpLiw:
		fmt.Fprintf(&sb, "liw [%d] = %s", i.Imm, i.Ra)
	case OpLir:
		fmt.Fprintf(&sb, "lir %s = [%d]", i.Rd, i.Imm)
	case OpKill:
		sb.WriteString("kill")
	case OpHalt:
		sb.WriteString("halt")
	case OpFAdd, OpFSub, OpFMul:
		fmt.Fprintf(&sb, "%s %s = %s, %s", i.Op, i.Fd, i.Fa, i.Fb)
	case OpFMA:
		fmt.Fprintf(&sb, "fma %s = %s, %s, %s", i.Fd, i.Fa, i.Fb, i.Fc)
	case OpFLd:
		fmt.Fprintf(&sb, "ldfd %s = %s", i.Fd, mem())
	case OpFSt:
		fmt.Fprintf(&sb, "stfd %s = %s", mem(), i.Fa)
	case OpFCmp:
		fmt.Fprintf(&sb, "fcmp.%s %s, %s = %s, %s", i.Cond, i.Pd1, i.Pd2, i.Fa, i.Fb)
	case OpSetF:
		fmt.Fprintf(&sb, "setf %s = %s", i.Fd, i.Ra)
	case OpGetF:
		fmt.Fprintf(&sb, "getf %s = %s", i.Rd, i.Fa)
	default:
		fmt.Fprintf(&sb, "%s ???", i.Op)
	}
	return sb.String()
}

// Format renders the whole program as assembly text. The output parses back
// to an equivalent program via Parse (instruction IDs are not serialized;
// they are reassigned in textual order on parse).
func Format(p *Program) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program entry=%s\n", p.Entry)
	for _, f := range p.Funcs {
		fmt.Fprintf(&sb, "\nfunc %s formals=%d {\n", f.Name, f.NumFormals)
		for _, b := range f.Blocks {
			fmt.Fprintf(&sb, "%s:\n", b.Label)
			for _, in := range b.Instrs {
				fmt.Fprintf(&sb, "\t%s\n", formatInstr(in))
			}
		}
		sb.WriteString("}\n")
	}
	if len(p.Data) > 0 {
		sb.WriteString("\ndata {\n")
		for _, a := range p.SortedDataAddrs() {
			fmt.Fprintf(&sb, "\t0x%x: %d\n", a, p.Data[a])
		}
		sb.WriteString("}\n")
	}
	return sb.String()
}
