package ir

// BlockBuilder appends instructions to a basic block, assigning each a fresh
// program-unique ID. The workload generators and the SSP code generator are
// written against this interface.
type BlockBuilder struct {
	P *Program
	F *Func
	B *Block
}

// NewBlockBuilder returns a builder appending to block b of function f.
func NewBlockBuilder(p *Program, f *Func, b *Block) *BlockBuilder {
	return &BlockBuilder{P: p, F: f, B: b}
}

// On returns a copy of the builder that predicates the next emitted
// instruction with qp. Usage: bb.On(p6).Br("done").
func (bb *BlockBuilder) On(qp PR) *PredBuilder { return &PredBuilder{bb: bb, qp: qp} }

// emit assigns an ID and appends.
func (bb *BlockBuilder) emit(in *Instr) *Instr {
	bb.P.Assign(in)
	bb.B.Append(in)
	return in
}

// Nop emits a padding nop.
func (bb *BlockBuilder) Nop() *Instr { return bb.emit(&Instr{Op: OpNop}) }

// MovI emits rd = imm.
func (bb *BlockBuilder) MovI(rd Reg, imm int64) *Instr {
	return bb.emit(&Instr{Op: OpMovI, Rd: rd, Imm: imm})
}

// Mov emits rd = ra.
func (bb *BlockBuilder) Mov(rd, ra Reg) *Instr {
	return bb.emit(&Instr{Op: OpMov, Rd: rd, Ra: ra})
}

// Add emits rd = ra + rb.
func (bb *BlockBuilder) Add(rd, ra, rb Reg) *Instr {
	return bb.emit(&Instr{Op: OpAdd, Rd: rd, Ra: ra, Rb: rb})
}

// AddI emits rd = ra + imm.
func (bb *BlockBuilder) AddI(rd, ra Reg, imm int64) *Instr {
	return bb.emit(&Instr{Op: OpAdd, Rd: rd, Ra: ra, Imm: imm, UseImm: true})
}

// Sub emits rd = ra - rb.
func (bb *BlockBuilder) Sub(rd, ra, rb Reg) *Instr {
	return bb.emit(&Instr{Op: OpSub, Rd: rd, Ra: ra, Rb: rb})
}

// SubI emits rd = ra - imm.
func (bb *BlockBuilder) SubI(rd, ra Reg, imm int64) *Instr {
	return bb.emit(&Instr{Op: OpSub, Rd: rd, Ra: ra, Imm: imm, UseImm: true})
}

// Mul emits rd = ra * rb.
func (bb *BlockBuilder) Mul(rd, ra, rb Reg) *Instr {
	return bb.emit(&Instr{Op: OpMul, Rd: rd, Ra: ra, Rb: rb})
}

// MulI emits rd = ra * imm.
func (bb *BlockBuilder) MulI(rd, ra Reg, imm int64) *Instr {
	return bb.emit(&Instr{Op: OpMul, Rd: rd, Ra: ra, Imm: imm, UseImm: true})
}

// And emits rd = ra & rb.
func (bb *BlockBuilder) And(rd, ra, rb Reg) *Instr {
	return bb.emit(&Instr{Op: OpAnd, Rd: rd, Ra: ra, Rb: rb})
}

// AndI emits rd = ra & imm.
func (bb *BlockBuilder) AndI(rd, ra Reg, imm int64) *Instr {
	return bb.emit(&Instr{Op: OpAnd, Rd: rd, Ra: ra, Imm: imm, UseImm: true})
}

// Or emits rd = ra | rb.
func (bb *BlockBuilder) Or(rd, ra, rb Reg) *Instr {
	return bb.emit(&Instr{Op: OpOr, Rd: rd, Ra: ra, Rb: rb})
}

// Xor emits rd = ra ^ rb.
func (bb *BlockBuilder) Xor(rd, ra, rb Reg) *Instr {
	return bb.emit(&Instr{Op: OpXor, Rd: rd, Ra: ra, Rb: rb})
}

// XorI emits rd = ra ^ imm.
func (bb *BlockBuilder) XorI(rd, ra Reg, imm int64) *Instr {
	return bb.emit(&Instr{Op: OpXor, Rd: rd, Ra: ra, Imm: imm, UseImm: true})
}

// ShlI emits rd = ra << imm.
func (bb *BlockBuilder) ShlI(rd, ra Reg, imm int64) *Instr {
	return bb.emit(&Instr{Op: OpShl, Rd: rd, Ra: ra, Imm: imm, UseImm: true})
}

// ShrI emits rd = ra >> imm (logical).
func (bb *BlockBuilder) ShrI(rd, ra Reg, imm int64) *Instr {
	return bb.emit(&Instr{Op: OpShr, Rd: rd, Ra: ra, Imm: imm, UseImm: true})
}

// Cmp emits cmp.cond p1,p2 = ra, rb.
func (bb *BlockBuilder) Cmp(cond Cond, p1, p2 PR, ra, rb Reg) *Instr {
	return bb.emit(&Instr{Op: OpCmp, Cond: cond, Pd1: p1, Pd2: p2, Ra: ra, Rb: rb})
}

// CmpI emits cmp.cond p1,p2 = ra, imm.
func (bb *BlockBuilder) CmpI(cond Cond, p1, p2 PR, ra Reg, imm int64) *Instr {
	return bb.emit(&Instr{Op: OpCmp, Cond: cond, Pd1: p1, Pd2: p2, Ra: ra, Imm: imm, UseImm: true})
}

// Ld emits rd = [ra+disp].
func (bb *BlockBuilder) Ld(rd, ra Reg, disp int64) *Instr {
	return bb.emit(&Instr{Op: OpLd, Rd: rd, Ra: ra, Disp: disp})
}

// LdInc emits rd = [ra], then ra += inc (post-increment load).
func (bb *BlockBuilder) LdInc(rd, ra Reg, inc int64) *Instr {
	return bb.emit(&Instr{Op: OpLd, Rd: rd, Ra: ra, PostInc: inc})
}

// St emits [ra+disp] = rb.
func (bb *BlockBuilder) St(ra Reg, disp int64, rb Reg) *Instr {
	return bb.emit(&Instr{Op: OpSt, Ra: ra, Rb: rb, Disp: disp})
}

// Lfetch emits a prefetch of [ra+disp].
func (bb *BlockBuilder) Lfetch(ra Reg, disp int64) *Instr {
	return bb.emit(&Instr{Op: OpLfetch, Ra: ra, Disp: disp})
}

// Br emits an unconditional branch to the labelled block.
func (bb *BlockBuilder) Br(label string) *Instr {
	return bb.emit(&Instr{Op: OpBr, Target: label})
}

// Call emits a call to fn, saving the return link in b0.
func (bb *BlockBuilder) Call(fn string) *Instr {
	return bb.emit(&Instr{Op: OpCall, Target: fn, Bd: 0})
}

// CallB emits an indirect call through bs, saving the return link in bd.
func (bb *BlockBuilder) CallB(bd, bs BR) *Instr {
	return bb.emit(&Instr{Op: OpCallB, Bd: bd, Bs: bs})
}

// Ret emits a return through bs.
func (bb *BlockBuilder) Ret(bs BR) *Instr {
	return bb.emit(&Instr{Op: OpRet, Bs: bs})
}

// MovBR emits bd = ra.
func (bb *BlockBuilder) MovBR(bd BR, ra Reg) *Instr {
	return bb.emit(&Instr{Op: OpMovBR, Bd: bd, Ra: ra})
}

// MovBRFunc emits bd = &fn (loads a function address into a branch register
// for indirect calls).
func (bb *BlockBuilder) MovBRFunc(bd BR, fn string) *Instr {
	return bb.emit(&Instr{Op: OpMovBR, Bd: bd, Target: fn})
}

// MovFromBR emits rd = bs.
func (bb *BlockBuilder) MovFromBR(rd Reg, bs BR) *Instr {
	return bb.emit(&Instr{Op: OpMovFromBR, Rd: rd, Bs: bs})
}

// Chk emits the chk.c trigger whose stub block is the labelled block.
func (bb *BlockBuilder) Chk(stub string) *Instr {
	return bb.emit(&Instr{Op: OpChk, Target: stub})
}

// Spawn emits a speculative-thread spawn starting at the labelled block.
func (bb *BlockBuilder) Spawn(target string) *Instr {
	return bb.emit(&Instr{Op: OpSpawn, Target: target})
}

// Liw emits a copy of ra into outgoing live-in buffer slot.
func (bb *BlockBuilder) Liw(slot int64, ra Reg) *Instr {
	return bb.emit(&Instr{Op: OpLiw, Imm: slot, Ra: ra})
}

// Lir emits a copy of incoming live-in buffer slot into rd.
func (bb *BlockBuilder) Lir(rd Reg, slot int64) *Instr {
	return bb.emit(&Instr{Op: OpLir, Rd: rd, Imm: slot})
}

// Kill emits thread_kill_self.
func (bb *BlockBuilder) Kill() *Instr { return bb.emit(&Instr{Op: OpKill}) }

// Halt emits program termination.
func (bb *BlockBuilder) Halt() *Instr { return bb.emit(&Instr{Op: OpHalt}) }

// PredBuilder emits a single predicated instruction; see BlockBuilder.On.
type PredBuilder struct {
	bb *BlockBuilder
	qp PR
}

func (pb *PredBuilder) emit(in *Instr) *Instr {
	in.Qp = pb.qp
	return pb.bb.emit(in)
}

// Br emits (qp) br label.
func (pb *PredBuilder) Br(label string) *Instr {
	return pb.emit(&Instr{Op: OpBr, Target: label})
}

// Spawn emits (qp) spawn label.
func (pb *PredBuilder) Spawn(target string) *Instr {
	return pb.emit(&Instr{Op: OpSpawn, Target: target})
}

// Mov emits (qp) rd = ra.
func (pb *PredBuilder) Mov(rd, ra Reg) *Instr {
	return pb.emit(&Instr{Op: OpMov, Rd: rd, Ra: ra})
}

// AddI emits (qp) rd = ra + imm.
func (pb *PredBuilder) AddI(rd, ra Reg, imm int64) *Instr {
	return pb.emit(&Instr{Op: OpAdd, Rd: rd, Ra: ra, Imm: imm, UseImm: true})
}

// St emits (qp) [ra+disp] = rb.
func (pb *PredBuilder) St(ra Reg, disp int64, rb Reg) *Instr {
	return pb.emit(&Instr{Op: OpSt, Ra: ra, Rb: rb, Disp: disp})
}

// Ld emits (qp) rd = [ra+disp].
func (pb *PredBuilder) Ld(rd, ra Reg, disp int64) *Instr {
	return pb.emit(&Instr{Op: OpLd, Rd: rd, Ra: ra, Disp: disp})
}

// FuncBuilder creates blocks in a function, returning builders positioned on
// each.
type FuncBuilder struct {
	P *Program
	F *Func
}

// NewFunc adds a function to the program and returns its builder.
func NewFunc(p *Program, name string) *FuncBuilder {
	return &FuncBuilder{P: p, F: p.AddFunc(name)}
}

// Block adds a block with the given label and returns a builder for it.
func (fb *FuncBuilder) Block(label string) *BlockBuilder {
	return NewBlockBuilder(fb.P, fb.F, fb.F.AddBlock(label))
}

// FAdd emits fd = fa + fb.
func (bb *BlockBuilder) FAdd(fd, fa, fb FR) *Instr {
	return bb.emit(&Instr{Op: OpFAdd, Fd: fd, Fa: fa, Fb: fb})
}

// FSub emits fd = fa - fb.
func (bb *BlockBuilder) FSub(fd, fa, fb FR) *Instr {
	return bb.emit(&Instr{Op: OpFSub, Fd: fd, Fa: fa, Fb: fb})
}

// FMul emits fd = fa * fb.
func (bb *BlockBuilder) FMul(fd, fa, fb FR) *Instr {
	return bb.emit(&Instr{Op: OpFMul, Fd: fd, Fa: fa, Fb: fb})
}

// FMA emits fd = fa*fb + fc.
func (bb *BlockBuilder) FMA(fd, fa, fb, fc FR) *Instr {
	return bb.emit(&Instr{Op: OpFMA, Fd: fd, Fa: fa, Fb: fb, Fc: fc})
}

// FLd emits fd = [ra+disp] (ldfd).
func (bb *BlockBuilder) FLd(fd FR, ra Reg, disp int64) *Instr {
	return bb.emit(&Instr{Op: OpFLd, Fd: fd, Ra: ra, Disp: disp})
}

// FSt emits [ra+disp] = fa (stfd).
func (bb *BlockBuilder) FSt(ra Reg, disp int64, fa FR) *Instr {
	return bb.emit(&Instr{Op: OpFSt, Ra: ra, Disp: disp, Fa: fa})
}

// FCmp emits fcmp.cond p1,p2 = fa, fb.
func (bb *BlockBuilder) FCmp(cond Cond, p1, p2 PR, fa, fb FR) *Instr {
	return bb.emit(&Instr{Op: OpFCmp, Cond: cond, Pd1: p1, Pd2: p2, Fa: fa, Fb: fb})
}

// SetF emits fd = bits(ra).
func (bb *BlockBuilder) SetF(fd FR, ra Reg) *Instr {
	return bb.emit(&Instr{Op: OpSetF, Fd: fd, Ra: ra})
}

// GetF emits rd = bits(fa).
func (bb *BlockBuilder) GetF(rd Reg, fa FR) *Instr {
	return bb.emit(&Instr{Op: OpGetF, Rd: rd, Fa: fa})
}
