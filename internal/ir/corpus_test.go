package ir_test

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"ssp/internal/ir"
	"ssp/internal/sim"
)

// corpus drives the checked-in assembly programs end to end: parse, format
// round-trip, link, run on both machine models, and compare the architected
// result. The corpus doubles as documentation of the textual ISA.
var corpus = []struct {
	file string
	addr uint64
	want uint64
}{
	{"figure3.ssp", 0x2000, 10},
	{"ssp_attachment.ssp", 0x2000, 26},
	{"fp_kernel.ssp", 0x2000, math.Float64bits(44.0)},
}

func TestAssemblyCorpus(t *testing.T) {
	for _, c := range corpus {
		c := c
		t.Run(c.file, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("testdata", c.file))
			if err != nil {
				t.Fatal(err)
			}
			p, err := ir.Parse(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			// Round trip.
			text := ir.Format(p)
			if _, err := ir.Parse(text); err != nil {
				t.Fatalf("re-parse: %v\n%s", err, text)
			}
			img, err := ir.Link(p)
			if err != nil {
				t.Fatal(err)
			}
			for _, model := range []sim.Model{sim.InOrder, sim.OOO} {
				var cfg sim.Config
				if model == sim.InOrder {
					cfg = sim.DefaultInOrder()
				} else {
					cfg = sim.DefaultOOO()
				}
				m := sim.New(cfg, img)
				res, err := m.Run()
				if err != nil || res.TimedOut {
					t.Fatalf("%v: run: %v", model, err)
				}
				if got := m.Mem.Load(c.addr); got != c.want {
					t.Fatalf("%v: [%#x] = %#x, want %#x", model, c.addr, got, c.want)
				}
			}
		})
	}
}

func TestCorpusAttachmentSpawns(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "ssp_attachment.ssp"))
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	img, err := ir.Link(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultInOrder()
	cfg.SpawnCooldown = 0
	res, err := sim.New(cfg, img).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ChkTaken == 0 || res.Spawns == 0 {
		t.Fatalf("hand-written attachment never spawned: %+v", res)
	}
}
