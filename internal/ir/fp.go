package ir

import "fmt"

// FR names a floating-point register, f0..f127. Following the Itanium
// architecture, f0 reads as +0.0 and f1 as +1.0; writes to them are ignored.
type FR uint8

// NumFRs is the number of FP registers per thread context (Table 1: 128).
const NumFRs = 128

// FZero and FOne are the hardwired FP constants.
const (
	FZero FR = 0
	FOne  FR = 1
)

func (f FR) String() string { return fmt.Sprintf("f%d", uint8(f)) }

// FRLoc returns the Loc of FP register f (the Loc space is extended past
// the branch registers).
func FRLoc(f FR) Loc { return locFR + Loc(f) }

// IsFR reports whether l names an FP register, and which.
func (l Loc) IsFR() (FR, bool) {
	if l >= locFR && l < NumLocs {
		return FR(l - locFR), true
	}
	return 0, false
}

// FP opcodes. They reuse the common Instr fields plus the FP register
// fields Fd/Fa/Fb/Fc.
const (
	// OpFAdd: Fd = Fa + Fb.
	OpFAdd Op = numOps + iota
	// OpFSub: Fd = Fa - Fb.
	OpFSub
	// OpFMul: Fd = Fa * Fb.
	OpFMul
	// OpFMA is the fused multiply-add at the heart of Itanium FP codes:
	// Fd = Fa*Fb + Fc.
	OpFMA
	// OpFLd loads a 64-bit float: Fd = [Ra+Disp] (ldfd).
	OpFLd
	// OpFSt stores a 64-bit float: [Ra+Disp] = Fa (stfd).
	OpFSt
	// OpFCmp compares Fa with Fb under Cond and writes Pd1/Pd2
	// (fcmp.crel). Only EQ/NE/LT/LE/GT/GE apply.
	OpFCmp
	// OpSetF moves a general register's bits into an FP register:
	// Fd = bits(Ra) (setf.d).
	OpSetF
	// OpGetF moves an FP register's bits into a general register:
	// Rd = bits(Fa) (getf.d).
	OpGetF

	numOpsFP
)

// NumOps is the total opcode count including the FP extension.
const NumOps = numOpsFP

// opNamesFP is a composite literal (not filled by init) so that other
// package-level initializers — the parser's mnemonic table — can depend on
// it through Go's initialization-order analysis.
var opNamesFP = [numOpsFP - numOps]string{
	OpFAdd - numOps: "fadd",
	OpFSub - numOps: "fsub",
	OpFMul - numOps: "fmul",
	OpFMA - numOps:  "fma",
	OpFLd - numOps:  "ldfd",
	OpFSt - numOps:  "stfd",
	OpFCmp - numOps: "fcmp",
	OpSetF - numOps: "setf",
	OpGetF - numOps: "getf",
}

// IsFP reports whether the opcode belongs to the FP extension.
func (o Op) IsFP() bool { return o >= numOps && o < numOpsFP }

// fpUses appends FP-extension operand reads.
func (i *Instr) fpUses(dst []Loc) []Loc {
	addFR := func(f FR) {
		if f != FZero && f != FOne {
			dst = append(dst, FRLoc(f))
		}
	}
	addGR := func(r Reg) {
		if r != RegZero {
			dst = append(dst, GRLoc(r))
		}
	}
	switch i.Op {
	case OpFAdd, OpFSub, OpFMul, OpFCmp:
		addFR(i.Fa)
		addFR(i.Fb)
	case OpFMA:
		addFR(i.Fa)
		addFR(i.Fb)
		addFR(i.Fc)
	case OpFLd:
		addGR(i.Ra)
	case OpFSt:
		addGR(i.Ra)
		addFR(i.Fa)
	case OpSetF:
		addGR(i.Ra)
	case OpGetF:
		addFR(i.Fa)
	}
	return dst
}

// fpDefs appends FP-extension operand writes.
func (i *Instr) fpDefs(dst []Loc) []Loc {
	switch i.Op {
	case OpFAdd, OpFSub, OpFMul, OpFMA, OpFLd, OpSetF:
		if i.Fd != FZero && i.Fd != FOne {
			dst = append(dst, FRLoc(i.Fd))
		}
	case OpFCmp:
		if i.Pd1 != PTrue {
			dst = append(dst, PRLoc(i.Pd1))
		}
		if i.Pd2 != PTrue {
			dst = append(dst, PRLoc(i.Pd2))
		}
	case OpGetF:
		if i.Rd != RegZero {
			dst = append(dst, GRLoc(i.Rd))
		}
	}
	return dst
}
