package ir

import (
	"reflect"
	"strings"
	"testing"
)

func TestFPAsmRoundTrip(t *testing.T) {
	src := `program entry=main
func main formals=0 {
entry:
	setf f3 = r14
	fadd f4 = f3, f1
	fsub f5 = f4, f3
	fmul f6 = f4, f5
	fma f7 = f4, f5, f6
	ldfd f8 = [r14+8]
	stfd [r14+16] = f8
	fcmp.lt p6, p7 = f7, f8
	getf r15 = f7
	halt
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(p)
	q, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	if Format(q) != text {
		t.Fatalf("FP round trip unstable:\n%s\nvs\n%s", text, Format(q))
	}
	ins := p.Funcs[0].Blocks[0].Instrs
	if ins[4].Op != OpFMA || ins[4].Fc != 6 {
		t.Fatalf("fma parsed wrong: %+v", ins[4])
	}
	if ins[7].Op != OpFCmp || ins[7].Cond != CondLT {
		t.Fatalf("fcmp parsed wrong: %+v", ins[7])
	}
}

func TestFPUsesDefs(t *testing.T) {
	cases := []struct {
		in   Instr
		uses []Loc
		defs []Loc
	}{
		{Instr{Op: OpFAdd, Fd: 3, Fa: 4, Fb: 5}, []Loc{FRLoc(4), FRLoc(5)}, []Loc{FRLoc(3)}},
		{Instr{Op: OpFMA, Fd: 3, Fa: 4, Fb: 5, Fc: 6}, []Loc{FRLoc(4), FRLoc(5), FRLoc(6)}, []Loc{FRLoc(3)}},
		// The hardwired f0/f1 never appear as dependences.
		{Instr{Op: OpFAdd, Fd: 3, Fa: 0, Fb: 1}, nil, []Loc{FRLoc(3)}},
		{Instr{Op: OpFLd, Fd: 3, Ra: 14}, []Loc{GRLoc(14)}, []Loc{FRLoc(3)}},
		{Instr{Op: OpFSt, Ra: 14, Fa: 3}, []Loc{GRLoc(14), FRLoc(3)}, nil},
		{Instr{Op: OpFCmp, Pd1: 6, Pd2: 7, Fa: 3, Fb: 4}, []Loc{FRLoc(3), FRLoc(4)}, []Loc{PRLoc(6), PRLoc(7)}},
		{Instr{Op: OpSetF, Fd: 3, Ra: 14}, []Loc{GRLoc(14)}, []Loc{FRLoc(3)}},
		{Instr{Op: OpGetF, Rd: 14, Fa: 3}, []Loc{FRLoc(3)}, []Loc{GRLoc(14)}},
	}
	for _, c := range cases {
		gotU := c.in.AppendUses(nil)
		gotD := c.in.AppendDefs(nil)
		if !reflect.DeepEqual(gotU, c.uses) {
			t.Errorf("%s: uses = %v, want %v", c.in.String(), gotU, c.uses)
		}
		if !reflect.DeepEqual(gotD, c.defs) {
			t.Errorf("%s: defs = %v, want %v", c.in.String(), gotD, c.defs)
		}
	}
}

func TestFPLocSpace(t *testing.T) {
	for f := 0; f < NumFRs; f++ {
		l := FRLoc(FR(f))
		if got, ok := l.IsFR(); !ok || got != FR(f) {
			t.Fatalf("FR loc round trip failed for f%d", f)
		}
		if _, ok := l.IsGR(); ok {
			t.Fatalf("FR loc f%d claims to be GR", f)
		}
		if _, ok := l.IsBR(); ok {
			t.Fatalf("FR loc f%d claims to be BR", f)
		}
	}
	if !strings.HasPrefix(FRLoc(5).String(), "f") {
		t.Fatal("FR loc String wrong")
	}
	if _, ok := BRLoc(3).IsFR(); ok {
		t.Fatal("BR loc claims to be FR")
	}
}

func TestFPStoreIsSideEffecting(t *testing.T) {
	if !(&Instr{Op: OpFSt}).HasSideEffect() {
		t.Fatal("stfd not flagged as side-effecting")
	}
	if (&Instr{Op: OpFLd}).HasSideEffect() {
		t.Fatal("ldfd flagged as side-effecting")
	}
}
