package ir_test

import (
	"os"
	"path/filepath"
	"testing"

	"ssp/internal/ir"
)

// FuzzParseAsmRoundTrip asserts the textual ISA's core contract over
// arbitrary input: whatever Parse accepts, Format must print back in a form
// Parse accepts again, and that printed form must be a fixed point (printing
// the reparse yields the same text). Link may reject a parseable program —
// undefined labels, missing main — but must never panic. The corpus programs
// and a few hand-written fragments seed the mutator; go test runs the saved
// corpus as regression inputs, and `go test -fuzz=FuzzParseAsmRoundTrip`
// explores from there.
func FuzzParseAsmRoundTrip(f *testing.F) {
	for _, file := range []string{"figure3.ssp", "ssp_attachment.ssp", "fp_kernel.ssp"} {
		src, err := os.ReadFile(filepath.Join("testdata", file))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	f.Add("program entry=main\nfunc main formals=0 {\nentry:\n\thalt\n}\n")
	f.Add("program entry=main\nfunc main formals=0 {\nentry:\n\tmovi r1 = 7\n\t(p1) add r2 = r1, r1\n\tst8 [r2+0] = r1\n\thalt\n}\n")
	f.Add("program entry=main\nfunc main formals=0 {\nL:\n\tld8 r3 = [r4+8], 16\n\tchk.c stub\n\tbr L\nstub:\n\tliw [0] = r3\n\tspawn slice\n\thalt\nslice:\n\tlir r40 = [0]\n\tlfetch [r40+16]\n\tkill\n}\ndata {\n\t0x2000: 7\n}\n")
	f.Add("# comment\nprogram entry=f\nfunc f formals=1 {\nb:\n\tfadd f2 = f3, f4\n\tret b0\n}\n")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ir.Parse(src)
		if err != nil {
			return // rejecting garbage is fine; only accepted input has obligations
		}
		text := ir.Format(p)
		p2, err := ir.Parse(text)
		if err != nil {
			t.Fatalf("formatted output does not reparse: %v\ninput:\n%s\nformatted:\n%s", err, src, text)
		}
		if text2 := ir.Format(p2); text2 != text {
			t.Fatalf("format is not a fixed point\nfirst:\n%s\nsecond:\n%s", text, text2)
		}
		// Link rejects incomplete programs with an error, never a panic.
		_, _ = ir.Link(p)
	})
}
