// Package ir defines the Itanium-flavoured intermediate representation the
// post-pass SSP tool operates on.
//
// Following the paper (§2.2), the post-pass tool does not work on raw machine
// encodings: it "reads in the compiler intermediate representation (IR) and
// the control flow graph (CFG)", where the IR "exactly matches the hardware
// instructions in the binary". This package is that representation: a
// predicated, load/store RISC ISA in the style of the Itanium processor
// family, with 128 general registers, 64 predicate registers, 8 branch
// registers, an advanced-load-style speculation check (chk.c) used as the
// SSP trigger instruction, explicit prefetch (lfetch), and the SSP extensions
// from the paper: spawn, live-in buffer writes/reads, and thread_kill_self.
//
// Programs are structured as functions of basic blocks; a linker flattens a
// program into an executable Image consumed by the simulator (package sim).
package ir

import "fmt"

// Reg names a general (integer) register, r0..r127. r0 is hardwired to zero,
// as on Itanium. By software convention (mirroring the Itanium ABI): r1 is
// the global pointer, r8 the return value, r12 the stack pointer, r14..r31
// are scratch, and r32..r39 carry the first eight arguments.
type Reg uint8

// NumRegs is the number of general registers per hardware thread context.
const NumRegs = 128

// Well-known registers under the software convention used by the workload
// generators and by the SSP code generator.
const (
	RegZero Reg = 0  // hardwired zero
	RegGP   Reg = 1  // global pointer
	RegRet  Reg = 8  // return value
	RegSP   Reg = 12 // stack pointer
	RegArg0 Reg = 32 // first argument register; args are r32..r39
)

func (r Reg) String() string { return fmt.Sprintf("r%d", uint8(r)) }

// PR names a predicate register, p0..p63. p0 is hardwired to true.
type PR uint8

// NumPreds is the number of predicate registers per thread context.
const NumPreds = 64

// PTrue is the hardwired always-true qualifying predicate p0.
const PTrue PR = 0

func (p PR) String() string { return fmt.Sprintf("p%d", uint8(p)) }

// BR names a branch register, b0..b7. b0 conventionally holds the return
// link of the current procedure.
type BR uint8

// NumBRs is the number of branch registers per thread context.
const NumBRs = 8

// LIBSlots is the number of live-in buffer slots per thread context (the
// modelled RSE backing-store window, §2.1). Liw/Lir slot immediates wrap
// modulo this size in hardware; well-formed SSP code stays below it, which
// ssp.VerifyAttachments enforces.
const LIBSlots = 16

func (b BR) String() string { return fmt.Sprintf("b%d", uint8(b)) }

// Op enumerates the instruction opcodes of the IR.
type Op uint8

const (
	// OpNop does nothing. The binary emitted by the first compilation pass
	// contains padding nops; the post-pass tool replaces one with chk.c
	// when embedding a trigger (Figure 7).
	OpNop Op = iota

	// Arithmetic and logical operations: Rd = Ra <op> (Rb | Imm).
	OpAdd
	OpSub
	OpMul
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr

	// OpMov copies a register: Rd = Ra.
	OpMov
	// OpMovI loads a 64-bit immediate: Rd = Imm (Itanium movl).
	OpMovI

	// OpCmp compares Ra with (Rb|Imm) under Cond and writes the result to
	// predicate Pd1 and its complement to Pd2 (Itanium cmp.crel p1,p2=...).
	OpCmp

	// OpLd loads a 64-bit word: Rd = [Ra+Disp]. If PostInc is nonzero the
	// base register is incremented by PostInc after the access (Itanium
	// ld8 r=[r],imm).
	OpLd
	// OpSt stores a 64-bit word: [Ra+Disp] = Rb.
	OpSt
	// OpLfetch issues a non-faulting, non-binding prefetch of [Ra+Disp].
	OpLfetch

	// OpBr branches to Target. Predicated via Qp; an always-true Qp makes
	// it unconditional.
	OpBr
	// OpCall calls function Target, saving the return link in Bd.
	OpCall
	// OpCallB calls indirectly through branch register Bs, saving the
	// return link in Bd. Indirect calls are instrumented during profiling
	// to capture the dynamic call graph (§3.1.2).
	OpCallB
	// OpRet returns through branch register Bs.
	OpRet
	// OpMovBR writes a branch register from a general register: Bd = Ra.
	// With Target set (and Ra == r0) it loads the address of a function
	// instead, for use with OpCallB.
	OpMovBR
	// OpMovFromBR reads a branch register: Rd = Bs.
	OpMovFromBR

	// OpChk is the SSP trigger instruction chk.c (§3.4.2): at retirement,
	// if a free hardware thread context is available it raises a
	// lightweight exception whose recovery code is the stub block at
	// Target; otherwise it behaves like a nop.
	OpChk
	// OpSpawn binds a new speculative thread to a free hardware context,
	// starting at Target, and hands it the current thread's outgoing
	// live-in buffer. If no context is free the request is ignored (§2.1).
	// Spawn appears in stub blocks and inside chaining slices.
	OpSpawn
	// OpLiw copies general register Ra into slot Imm of the outgoing
	// live-in buffer (the Register Stack Engine backing store, §2.1).
	OpLiw
	// OpLir copies slot Imm of this thread's incoming live-in buffer into
	// general register Rd.
	OpLir
	// OpKill terminates the executing speculative thread and frees its
	// hardware context (thread_kill_self in Figures 5 and 6).
	OpKill

	// OpHalt terminates the program (main thread only).
	OpHalt

	numOps
)

// Cond is a comparison relation for OpCmp.
type Cond uint8

const (
	CondEQ Cond = iota
	CondNE
	CondLT // signed <
	CondLE // signed <=
	CondGT // signed >
	CondGE // signed >=
	CondLTU
	CondGEU
)

var condNames = [...]string{"eq", "ne", "lt", "le", "gt", "ge", "ltu", "geu"}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond%d", uint8(c))
}

var opNames = [numOps]string{
	OpNop: "nop", OpAdd: "add", OpSub: "sub", OpMul: "mul", OpAnd: "and",
	OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr", OpMov: "mov",
	OpMovI: "movi", OpCmp: "cmp", OpLd: "ld8", OpSt: "st8",
	OpLfetch: "lfetch", OpBr: "br", OpCall: "call", OpCallB: "callb",
	OpRet: "ret", OpMovBR: "movbr", OpMovFromBR: "movfbr", OpChk: "chk.c",
	OpSpawn: "spawn", OpLiw: "liw", OpLir: "lir", OpKill: "kill",
	OpHalt: "halt",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	if o.IsFP() {
		return opNamesFP[o-numOps]
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// IsALU reports whether the opcode is a two-operand arithmetic/logical op.
func (o Op) IsALU() bool { return o >= OpAdd && o <= OpShr }

// IsMem reports whether the opcode accesses the memory hierarchy.
func (o Op) IsMem() bool {
	return o == OpLd || o == OpSt || o == OpLfetch || o == OpFLd || o == OpFSt
}

// IsBranch reports whether the opcode transfers control (including calls and
// returns, excluding chk.c which traps rather than branches).
func (o Op) IsBranch() bool {
	return o == OpBr || o == OpCall || o == OpCallB || o == OpRet
}

// Instr is a single IR instruction. Every instruction carries a qualifying
// predicate Qp (p0 meaning "always"): when Qp evaluates false at run time the
// instruction is dynamically nullified, as on Itanium.
//
// Instructions have a stable identity (ID) assigned by the owning Program.
// Profiles (package profile) and the dependence graph (package dep) are keyed
// by ID, so the post-pass tool can correlate run-time feedback with static
// instructions across transformations, exactly as the paper's tool keys cache
// profiles to static loads.
type Instr struct {
	ID int // stable identity within a Program; 0 means unassigned

	Op  Op
	Qp  PR // qualifying predicate; PTrue for unpredicated execution
	Rd  Reg
	Ra  Reg
	Rb  Reg
	Pd1 PR // OpCmp: receives the comparison result
	Pd2 PR // OpCmp: receives the complement (0 = unused unless OpCmp)
	// FP register operands (the FP extension opcodes, fp.go).
	Fd, Fa, Fb, Fc FR
	Bd             BR // OpCall/OpCallB/OpMovBR: defined branch register
	Bs             BR // OpRet/OpCallB/OpMovFromBR: used branch register
	Cond           Cond

	// Imm is the immediate operand (ALU second operand when UseImm, OpMovI
	// value, OpLiw/OpLir slot index).
	Imm int64
	// UseImm selects Imm instead of Rb as the second ALU/cmp operand.
	UseImm bool
	// Disp is the byte displacement for OpLd/OpSt/OpLfetch addressing.
	Disp int64
	// PostInc, when nonzero on OpLd, adds PostInc to Ra after the access.
	PostInc int64

	// Target names the destination label for branch-like opcodes: a block
	// label within the same function for OpBr/OpChk/OpSpawn (spawn may
	// also name "func.label" or a function for cross-function slices), and
	// a function name for OpCall/OpMovBR address loads.
	Target string
}

// Clone returns a copy of the instruction with the same ID.
func (i *Instr) Clone() *Instr {
	c := *i
	return &c
}

// String renders the instruction in the textual assembly syntax.
func (i *Instr) String() string { return formatInstr(i) }

// Loc is a unified storage location: a general register, predicate register,
// or branch register, in one flat namespace. It is the unit the dependence
// analysis tracks.
type Loc uint16

const (
	locGR Loc = 0   // r0..r127 -> 0..127
	locPR Loc = 128 // p0..p63  -> 128..191
	locBR Loc = 192 // b0..b7   -> 192..199
	locFR Loc = 200 // f0..f127 -> 200..327

	// NumLocs is the size of the Loc namespace.
	NumLocs = 328
)

// GRLoc returns the Loc of general register r.
func GRLoc(r Reg) Loc { return locGR + Loc(r) }

// PRLoc returns the Loc of predicate register p.
func PRLoc(p PR) Loc { return locPR + Loc(p) }

// BRLoc returns the Loc of branch register b.
func BRLoc(b BR) Loc { return locBR + Loc(b) }

// IsGR reports whether l names a general register, and which.
func (l Loc) IsGR() (Reg, bool) {
	if l < locPR {
		return Reg(l), true
	}
	return 0, false
}

// IsPR reports whether l names a predicate register, and which.
func (l Loc) IsPR() (PR, bool) {
	if l >= locPR && l < locBR {
		return PR(l - locPR), true
	}
	return 0, false
}

// IsBR reports whether l names a branch register, and which.
func (l Loc) IsBR() (BR, bool) {
	if l >= locBR && l < locFR {
		return BR(l - locBR), true
	}
	return 0, false
}

func (l Loc) String() string {
	switch {
	case l < locPR:
		return Reg(l).String()
	case l < locBR:
		return PR(l - locPR).String()
	case l < locFR:
		return BR(l - locBR).String()
	default:
		return FR(l - locFR).String()
	}
}

// AppendUses appends the locations read by the instruction to dst and
// returns the extended slice. The qualifying predicate is included: the
// slicing algorithm follows it as a control/data input, which is how the
// paper's tool picks up compare chains feeding predicated slice code.
// Reads of the hardwired r0 and p0 are omitted.
func (i *Instr) AppendUses(dst []Loc) []Loc {
	if i.Qp != PTrue {
		dst = append(dst, PRLoc(i.Qp))
	}
	addGR := func(r Reg) {
		if r != RegZero {
			dst = append(dst, GRLoc(r))
		}
	}
	switch i.Op {
	case OpNop, OpMovI, OpHalt, OpKill, OpBr, OpCall, OpChk, OpSpawn:
		// no register operands beyond Qp
	case OpMov:
		addGR(i.Ra)
	case OpCmp:
		addGR(i.Ra)
		if !i.UseImm {
			addGR(i.Rb)
		}
	case OpLd, OpLfetch:
		addGR(i.Ra)
	case OpSt:
		addGR(i.Ra)
		addGR(i.Rb)
	case OpCallB:
		dst = append(dst, BRLoc(i.Bs))
	case OpRet:
		dst = append(dst, BRLoc(i.Bs))
	case OpMovBR:
		if i.Target == "" {
			addGR(i.Ra)
		}
	case OpMovFromBR:
		dst = append(dst, BRLoc(i.Bs))
	case OpLiw:
		addGR(i.Ra)
	case OpLir:
		// reads the live-in buffer, no registers
	default:
		switch {
		case i.Op.IsALU():
			addGR(i.Ra)
			if !i.UseImm {
				addGR(i.Rb)
			}
		case i.Op.IsFP():
			dst = i.fpUses(dst)
		}
	}
	return dst
}

// AppendDefs appends the locations written by the instruction to dst and
// returns the extended slice. Writes to the hardwired r0/p0 are omitted
// (they are architectural no-ops).
func (i *Instr) AppendDefs(dst []Loc) []Loc {
	addGR := func(r Reg) {
		if r != RegZero {
			dst = append(dst, GRLoc(r))
		}
	}
	switch i.Op {
	case OpMov, OpMovI, OpMovFromBR, OpLir:
		addGR(i.Rd)
	case OpLd:
		addGR(i.Rd)
		if i.PostInc != 0 {
			addGR(i.Ra)
		}
	case OpCmp:
		if i.Pd1 != PTrue {
			dst = append(dst, PRLoc(i.Pd1))
		}
		if i.Pd2 != PTrue {
			dst = append(dst, PRLoc(i.Pd2))
		}
	case OpCall, OpCallB:
		dst = append(dst, BRLoc(i.Bd))
		// Calls may clobber scratch and return-value registers; the
		// dependence analysis models this via call summaries rather
		// than listing every register here.
	case OpMovBR:
		dst = append(dst, BRLoc(i.Bd))
	default:
		switch {
		case i.Op.IsALU():
			addGR(i.Rd)
		case i.Op.IsFP():
			dst = i.fpDefs(dst)
		}
	}
	return dst
}

// HasSideEffect reports whether the instruction must never be included in a
// p-slice: stores, calls, halts and control transfers other than the slice's
// own loop. The paper's tool "ensures that no store instructions are included
// in the precomputation" (§2).
func (i *Instr) HasSideEffect() bool {
	switch i.Op {
	case OpSt, OpFSt, OpHalt, OpCall, OpCallB, OpRet, OpChk, OpSpawn, OpLiw, OpKill:
		return true
	}
	return false
}
