package ir

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// buildLoop constructs the paper's Figure 3 mcf-style loop:
//
//	do { t = arc; u = load(t->tail); load(u->potential);
//	     arc = t + nr_group; } while (arc < K);
func buildLoop(t *testing.T) *Program {
	t.Helper()
	p := NewProgram("main")
	fb := NewFunc(p, "main")
	e := fb.Block("entry")
	e.MovI(14, 0x10000) // arc
	e.MovI(15, 0x20000) // K
	loop := fb.Block("loop")
	loop.Mov(16, 14)      // A: t = arc
	loop.Ld(17, 16, 8)    // B: u = load(t->tail)
	loop.Ld(18, 17, 16)   // C: load(u->potential)
	loop.AddI(14, 16, 64) // D: arc = t + nr_group
	loop.Cmp(CondLT, 6, 7, 14, 15)
	loop.On(6).Br("loop") // E: while (arc < K)
	done := fb.Block("done")
	done.Halt()
	return p
}

func TestValidateOK(t *testing.T) {
	p := buildLoop(t)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateCatchesBadTarget(t *testing.T) {
	p := buildLoop(t)
	p.Funcs[0].Blocks[1].Instrs[5].Target = "nowhere"
	if err := p.Validate(); err == nil {
		t.Fatal("Validate accepted dangling branch target")
	}
}

func TestValidateCatchesDuplicateFunc(t *testing.T) {
	p := buildLoop(t)
	f := p.AddFunc("main")
	f.AddBlock("entry")
	if err := p.Validate(); err == nil {
		t.Fatal("Validate accepted duplicate function name")
	}
}

func TestValidateCatchesDuplicateID(t *testing.T) {
	p := buildLoop(t)
	b := p.Funcs[0].Blocks[0]
	b.Append(b.Instrs[0]) // same *Instr appears twice -> duplicate ID
	if err := p.Validate(); err == nil {
		t.Fatal("Validate accepted duplicate instruction ID")
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	p := buildLoop(t)
	p.SetWord(0x10000, 42)
	text := Format(p)
	q, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, text)
	}
	text2 := Format(q)
	if text != text2 {
		t.Fatalf("round trip mismatch:\n--- first ---\n%s\n--- second ---\n%s", text, text2)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"func f {\nentry:\n nop\n}",             // missing program header
		"program entry=main\nnop",               // instruction outside function
		"program entry=main\nfunc main {\n nop", // instr before label
		"program entry=main\nfunc main {\nentry:\n frob r1 = r2\n}",
		"program entry=main\nfunc main {\nentry:\n ld8 r1 = r2\n}", // bad mem operand
		"program entry=main\nfunc main {\nentry:\n br\n}",
		"program entry=main\nfunc main {\nentry:\n cmp.zz p1,p2 = r1, r2\n}",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse accepted %q", src)
		}
	}
}

func TestParsePredicatedAndPostInc(t *testing.T) {
	src := `program entry=main
func main formals=0 {
entry:
	ld8 r3 = [r4], 8
	(p6) br entry
	liw [3] = r5
	lir r6 = [2]
	movbr b2 = @main
	chk.c entry
	halt
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ins := p.Funcs[0].Blocks[0].Instrs
	if ins[0].PostInc != 8 || ins[0].Rd != 3 || ins[0].Ra != 4 {
		t.Errorf("post-inc load parsed wrong: %+v", ins[0])
	}
	if ins[1].Qp != 6 || ins[1].Op != OpBr {
		t.Errorf("predicated branch parsed wrong: %+v", ins[1])
	}
	if ins[2].Imm != 3 || ins[2].Ra != 5 {
		t.Errorf("liw parsed wrong: %+v", ins[2])
	}
	if ins[3].Imm != 2 || ins[3].Rd != 6 {
		t.Errorf("lir parsed wrong: %+v", ins[3])
	}
	if ins[4].Target != "main" || ins[4].Bd != 2 {
		t.Errorf("movbr@ parsed wrong: %+v", ins[4])
	}
	if ins[5].Op != OpChk || ins[5].Target != "entry" {
		t.Errorf("chk.c parsed wrong: %+v", ins[5])
	}
}

func TestUsesDefs(t *testing.T) {
	cases := []struct {
		in   Instr
		uses []Loc
		defs []Loc
	}{
		{Instr{Op: OpAdd, Rd: 3, Ra: 1, Rb: 2}, []Loc{GRLoc(1), GRLoc(2)}, []Loc{GRLoc(3)}},
		{Instr{Op: OpAdd, Rd: 3, Ra: 1, Imm: 5, UseImm: true}, []Loc{GRLoc(1)}, []Loc{GRLoc(3)}},
		{Instr{Op: OpAdd, Rd: 3, Ra: 0, Rb: 0}, nil, []Loc{GRLoc(3)}}, // r0 reads omitted
		{Instr{Op: OpLd, Rd: 3, Ra: 4, PostInc: 8}, []Loc{GRLoc(4)}, []Loc{GRLoc(3), GRLoc(4)}},
		{Instr{Op: OpSt, Ra: 4, Rb: 5}, []Loc{GRLoc(4), GRLoc(5)}, nil},
		{Instr{Op: OpCmp, Pd1: 6, Pd2: 7, Ra: 1, Rb: 2}, []Loc{GRLoc(1), GRLoc(2)}, []Loc{PRLoc(6), PRLoc(7)}},
		{Instr{Op: OpBr, Qp: 6, Target: "x"}, []Loc{PRLoc(6)}, nil},
		{Instr{Op: OpRet, Bs: 0}, []Loc{BRLoc(0)}, nil},
		{Instr{Op: OpCall, Bd: 0, Target: "f"}, nil, []Loc{BRLoc(0)}},
		{Instr{Op: OpLiw, Imm: 1, Ra: 9}, []Loc{GRLoc(9)}, nil},
		{Instr{Op: OpLir, Rd: 9, Imm: 1}, nil, []Loc{GRLoc(9)}},
		{Instr{Op: OpMovBR, Bd: 1, Ra: 9}, []Loc{GRLoc(9)}, []Loc{BRLoc(1)}},
		{Instr{Op: OpMovBR, Bd: 1, Target: "f"}, nil, []Loc{BRLoc(1)}},
		{Instr{Op: OpLfetch, Ra: 9}, []Loc{GRLoc(9)}, nil},
	}
	for _, c := range cases {
		gotU := c.in.AppendUses(nil)
		gotD := c.in.AppendDefs(nil)
		if !reflect.DeepEqual(gotU, c.uses) {
			t.Errorf("%s: uses = %v, want %v", c.in.String(), gotU, c.uses)
		}
		if !reflect.DeepEqual(gotD, c.defs) {
			t.Errorf("%s: defs = %v, want %v", c.in.String(), gotD, c.defs)
		}
	}
}

func TestLocRoundTrip(t *testing.T) {
	for r := 0; r < NumRegs; r++ {
		if got, ok := GRLoc(Reg(r)).IsGR(); !ok || got != Reg(r) {
			t.Fatalf("GR loc round trip failed for r%d", r)
		}
	}
	for p := 0; p < NumPreds; p++ {
		if got, ok := PRLoc(PR(p)).IsPR(); !ok || got != PR(p) {
			t.Fatalf("PR loc round trip failed for p%d", p)
		}
	}
	for b := 0; b < NumBRs; b++ {
		if got, ok := BRLoc(BR(b)).IsBR(); !ok || got != BR(b) {
			t.Fatalf("BR loc round trip failed for b%d", b)
		}
	}
	if _, ok := GRLoc(5).IsPR(); ok {
		t.Fatal("GR loc claimed to be PR")
	}
}

func TestLinkLayoutAndTargets(t *testing.T) {
	p := buildLoop(t)
	im, err := Link(p)
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	if len(im.Code) != p.NumInstrs() {
		t.Fatalf("code length %d, want %d", len(im.Code), p.NumInstrs())
	}
	if im.Entry != 0 {
		t.Fatalf("entry pc = %d, want 0", im.Entry)
	}
	loopStart := im.BlockStarts["main.loop"]
	br := im.Code[loopStart+5]
	if br.I.Op != OpBr || int(br.Tgt) != loopStart {
		t.Fatalf("back edge resolved to %d, want %d", br.Tgt, loopStart)
	}
	if im.BlockKey(loopStart) != "main.loop" {
		t.Fatalf("BlockKey(%d) = %q", loopStart, im.BlockKey(loopStart))
	}
}

func TestLinkCrossFunctionSpawn(t *testing.T) {
	p := buildLoop(t)
	fb := NewFunc(p, "slices")
	s := fb.Block("slice1")
	s.Kill()
	main := p.Funcs[0].Blocks[0]
	sp := &Instr{Op: OpSpawn, Target: "slices.slice1"}
	p.Assign(sp)
	main.InsertAt(0, sp)
	im, err := Link(p)
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	want := im.BlockStarts["slices.slice1"]
	if int(im.Code[0].Tgt) != want {
		t.Fatalf("spawn target = %d, want %d", im.Code[0].Tgt, want)
	}
}

func TestCloneIsDeepAndPreservesIDs(t *testing.T) {
	p := buildLoop(t)
	p.SetWord(8, 9)
	q := p.Clone()
	// Same IDs, different instruction objects.
	for fi := range p.Funcs {
		for bi := range p.Funcs[fi].Blocks {
			for ii := range p.Funcs[fi].Blocks[bi].Instrs {
				a := p.Funcs[fi].Blocks[bi].Instrs[ii]
				b := q.Funcs[fi].Blocks[bi].Instrs[ii]
				if a == b {
					t.Fatal("clone shares instruction pointers")
				}
				if a.ID != b.ID {
					t.Fatalf("clone changed ID %d -> %d", a.ID, b.ID)
				}
			}
		}
	}
	q.Funcs[0].Blocks[0].Instrs[0].Imm = 999
	if p.Funcs[0].Blocks[0].Instrs[0].Imm == 999 {
		t.Fatal("mutating clone affected original")
	}
	// Fresh IDs in the clone don't collide with the original's.
	in := &Instr{Op: OpNop}
	q.Assign(in)
	if _, _, found := p.InstrByID(in.ID); found != nil {
		t.Fatalf("clone allocated colliding ID %d", in.ID)
	}
}

func TestInstrByID(t *testing.T) {
	p := buildLoop(t)
	want := p.Funcs[0].Blocks[1].Instrs[2]
	f, b, in := p.InstrByID(want.ID)
	if in != want || f.Name != "main" || b.Label != "loop" {
		t.Fatalf("InstrByID(%d) = %v/%v/%v", want.ID, f, b, in)
	}
	if _, _, in := p.InstrByID(99999); in != nil {
		t.Fatal("InstrByID found nonexistent ID")
	}
}

// randomInstr generates a random valid instruction for the round-trip
// property test. Branch-like ops target the fixed label "entry".
func randomInstr(r *rand.Rand) *Instr {
	ops := []Op{OpNop, OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpMov, OpMovI, OpCmp, OpLd, OpSt, OpLfetch, OpBr, OpRet, OpMovBR,
		OpMovFromBR, OpChk, OpSpawn, OpLiw, OpLir, OpKill, OpHalt}
	in := &Instr{Op: ops[r.Intn(len(ops))]}
	in.Qp = PR(r.Intn(8))
	in.Rd = Reg(1 + r.Intn(NumRegs-1))
	in.Ra = Reg(1 + r.Intn(NumRegs-1))
	in.Rb = Reg(1 + r.Intn(NumRegs-1))
	in.Pd1 = PR(1 + r.Intn(NumPreds-1))
	in.Pd2 = PR(1 + r.Intn(NumPreds-1))
	in.Bs = BR(r.Intn(NumBRs))
	in.Bd = BR(r.Intn(NumBRs))
	in.Cond = Cond(r.Intn(8))
	in.Imm = int64(r.Intn(1 << 16))
	switch in.Op {
	case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpCmp:
		in.UseImm = r.Intn(2) == 0
	case OpShl, OpShr:
		in.UseImm = true
		in.Imm = int64(r.Intn(63))
	case OpLd:
		in.Disp = int64(r.Intn(256)) - 128
		if r.Intn(2) == 0 {
			in.PostInc = int64(1 + r.Intn(64))
			in.Disp = 0 // post-inc form has no displacement in the syntax
		}
	case OpSt, OpLfetch:
		in.Disp = int64(r.Intn(256)) - 128
	case OpBr, OpChk, OpSpawn:
		in.Target = "entry"
	case OpMovBR:
		if r.Intn(2) == 0 {
			in.Target = "main"
		}
	case OpLiw, OpLir:
		in.Imm = int64(r.Intn(16))
	}
	return in
}

// TestQuickAsmRoundTrip: property — formatting then parsing any valid
// instruction reproduces it exactly (modulo ID).
func TestQuickAsmRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := NewProgram("main")
		fb := NewFunc(p, "main")
		bb := fb.Block("entry")
		n := 1 + r.Intn(20)
		for i := 0; i < n; i++ {
			in := randomInstr(r)
			p.Assign(in)
			bb.B.Append(in)
		}
		text := Format(p)
		q, err := Parse(text)
		if err != nil {
			t.Logf("parse error: %v\n%s", err, text)
			return false
		}
		a, b := p.Funcs[0].Blocks[0].Instrs, q.Funcs[0].Blocks[0].Instrs
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			x, y := *a[i], *b[i]
			x.ID, y.ID = 0, 0
			// Unused fields are not serialized; compare via re-format.
			if formatInstr(&x) != formatInstr(&y) {
				t.Logf("mismatch: %q vs %q", formatInstr(&x), formatInstr(&y))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFormatContainsDataSection(t *testing.T) {
	p := buildLoop(t)
	p.SetWord(0x40, 7)
	text := Format(p)
	if !strings.Contains(text, "data {") || !strings.Contains(text, "0x40: 7") {
		t.Fatalf("data section missing:\n%s", text)
	}
}

func TestHasSideEffect(t *testing.T) {
	if (&Instr{Op: OpLd}).HasSideEffect() {
		t.Error("load flagged as side-effecting")
	}
	for _, op := range []Op{OpSt, OpCall, OpCallB, OpRet, OpHalt, OpChk, OpSpawn, OpKill, OpLiw} {
		if !(&Instr{Op: op}).HasSideEffect() {
			t.Errorf("%s not flagged as side-effecting", op)
		}
	}
}

func TestReserveIDs(t *testing.T) {
	p := NewProgram("main")
	p.ReserveIDs(100)
	in := &Instr{Op: OpNop}
	p.Assign(in)
	if in.ID != 101 {
		t.Fatalf("ID after ReserveIDs(100) = %d, want 101", in.ID)
	}
	p.ReserveIDs(50) // never moves backward
	in2 := &Instr{Op: OpNop}
	p.Assign(in2)
	if in2.ID != 102 {
		t.Fatalf("ID = %d, want 102", in2.ID)
	}
}

func TestBlockInsertAtAndTerminator(t *testing.T) {
	p := NewProgram("main")
	fb := NewFunc(p, "main")
	b := fb.Block("entry")
	b.Nop()
	b.Halt()
	in := &Instr{Op: OpMovI, Rd: 14, Imm: 1}
	p.Assign(in)
	b.B.InsertAt(1, in)
	if b.B.Instrs[1] != in || len(b.B.Instrs) != 3 {
		t.Fatalf("InsertAt failed: %v", b.B.Instrs)
	}
	if b.B.Terminator().Op != OpHalt {
		t.Fatal("Terminator wrong")
	}
	empty := &Block{}
	if empty.Terminator() != nil {
		t.Fatal("empty block has a terminator")
	}
}
