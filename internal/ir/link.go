package ir

import "fmt"

// Linked is an instruction placed at a code address with its control-flow
// target resolved to an absolute instruction index.
type Linked struct {
	I   Instr
	Tgt int32 // resolved target PC for branch-like ops; -1 if none
}

// Image is a linked, executable form of a Program: a flat code array with
// resolved branch targets, a symbol table, and the initial data image. It is
// what the simulator executes — the analogue of the binary the paper's tool
// adapts.
type Image struct {
	Code  []Linked
	Entry int

	// FuncEntries maps function name to entry PC.
	FuncEntries map[string]int
	// FuncNames and FuncOf map a PC back to its containing function:
	// FuncNames[FuncOf[pc]]. Used by profiling and the call-graph capture.
	FuncNames []string
	FuncOf    []int
	// BlockStarts maps "func.label" to the block's first PC.
	BlockStarts map[string]int
	// BlockOf maps a PC to the index (within blockKeys) of its block.
	blockKeys []string
	BlockOf   []int

	// Data is the initial memory image (64-bit words at byte addresses).
	Data map[uint64]uint64
}

// BlockKey returns the "func.label" key of the block containing pc.
func (im *Image) BlockKey(pc int) string { return im.blockKeys[im.BlockOf[pc]] }

// NumBlocks returns the number of linked basic blocks.
func (im *Image) NumBlocks() int { return len(im.blockKeys) }

// BlockKeys returns the "func.label" keys in layout order.
func (im *Image) BlockKeys() []string { return im.blockKeys }

// Link flattens the program into an executable image, resolving all branch
// targets. Functions and blocks are laid out in declaration order — slice
// blocks appended after a function by the SSP code generator therefore land
// after the function body, matching Figure 7's layout.
func Link(p *Program) (*Image, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	im := &Image{
		FuncEntries: make(map[string]int),
		BlockStarts: make(map[string]int),
		Data:        p.Data,
	}
	// First pass: assign addresses.
	pc := 0
	for fi, f := range p.Funcs {
		im.FuncNames = append(im.FuncNames, f.Name)
		im.FuncEntries[f.Name] = pc
		for _, b := range f.Blocks {
			key := f.Name + "." + b.Label
			im.BlockStarts[key] = pc
			bi := len(im.blockKeys)
			im.blockKeys = append(im.blockKeys, key)
			for range b.Instrs {
				im.FuncOf = append(im.FuncOf, fi)
				im.BlockOf = append(im.BlockOf, bi)
				pc++
			}
			// Empty blocks still need a resolvable start address; they
			// alias the next instruction but emit nothing.
		}
	}
	im.Code = make([]Linked, 0, pc)
	// Second pass: emit with resolved targets.
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				l := Linked{I: *in, Tgt: -1}
				switch in.Op {
				case OpBr, OpChk:
					t, ok := im.BlockStarts[f.Name+"."+in.Target]
					if !ok {
						return nil, fmt.Errorf("ir: unresolved target %s.%s", f.Name, in.Target)
					}
					l.Tgt = int32(t)
				case OpSpawn:
					t, err := im.resolveSpawn(f.Name, in.Target)
					if err != nil {
						return nil, err
					}
					l.Tgt = int32(t)
				case OpCall:
					t, ok := im.FuncEntries[in.Target]
					if !ok {
						return nil, fmt.Errorf("ir: unresolved call %s", in.Target)
					}
					l.Tgt = int32(t)
				case OpMovBR:
					if in.Target != "" {
						t, ok := im.FuncEntries[in.Target]
						if !ok {
							return nil, fmt.Errorf("ir: unresolved function address @%s", in.Target)
						}
						l.Tgt = int32(t)
					}
				}
				im.Code = append(im.Code, l)
			}
		}
	}
	entry, ok := im.FuncEntries[p.Entry]
	if !ok {
		return nil, fmt.Errorf("ir: entry %q not linked", p.Entry)
	}
	im.Entry = entry
	if len(im.Code) == 0 {
		return nil, fmt.Errorf("ir: empty program")
	}
	return im, nil
}

// resolveSpawn resolves a spawn target: a local label, a "func.label" pair,
// or a function name.
func (im *Image) resolveSpawn(fn, target string) (int, error) {
	if t, ok := im.BlockStarts[fn+"."+target]; ok {
		return t, nil
	}
	if t, ok := im.BlockStarts[target]; ok {
		return t, nil
	}
	if t, ok := im.FuncEntries[target]; ok {
		return t, nil
	}
	return 0, fmt.Errorf("ir: unresolved spawn target %q in %s", target, fn)
}
