package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads the textual assembly syntax produced by Format and returns the
// program. Each instruction is assigned a fresh ID in textual order.
//
// Grammar (line oriented; '#' starts a comment):
//
//	program entry=NAME
//	func NAME formals=N { LABEL: INSTR... } ...
//	data { 0xADDR: VALUE ... }
func Parse(src string) (*Program, error) {
	pr := &parser{}
	lines := strings.Split(src, "\n")
	for n, raw := range lines {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := pr.line(line); err != nil {
			return nil, fmt.Errorf("line %d: %w", n+1, err)
		}
	}
	if pr.p == nil {
		return nil, fmt.Errorf("ir: missing 'program' header")
	}
	if err := pr.p.Validate(); err != nil {
		return nil, err
	}
	return pr.p, nil
}

type parser struct {
	p      *Program
	fn     *Func
	bb     *BlockBuilder
	inData bool
}

func (pr *parser) line(line string) error {
	switch {
	case strings.HasPrefix(line, "program "):
		rest := strings.TrimSpace(strings.TrimPrefix(line, "program "))
		entry, ok := strings.CutPrefix(rest, "entry=")
		if !ok {
			return fmt.Errorf("expected 'program entry=NAME'")
		}
		pr.p = NewProgram(strings.TrimSpace(entry))
		return nil
	case strings.HasPrefix(line, "func "):
		if pr.p == nil {
			return fmt.Errorf("'func' before 'program'")
		}
		rest := strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(line, "func ")), "{")
		fields := strings.Fields(rest)
		if len(fields) < 1 {
			return fmt.Errorf("malformed func header")
		}
		pr.fn = pr.p.AddFunc(fields[0])
		for _, f := range fields[1:] {
			if v, ok := strings.CutPrefix(f, "formals="); ok {
				n, err := strconv.Atoi(v)
				if err != nil {
					return fmt.Errorf("bad formals: %v", err)
				}
				pr.fn.NumFormals = n
			}
		}
		pr.bb = nil
		return nil
	case line == "data {":
		if pr.p == nil {
			return fmt.Errorf("'data' before 'program'")
		}
		pr.inData = true
		pr.fn = nil
		return nil
	case line == "}":
		pr.fn = nil
		pr.bb = nil
		pr.inData = false
		return nil
	}
	if pr.inData {
		addr, val, ok := strings.Cut(line, ":")
		if !ok {
			return fmt.Errorf("malformed data line %q", line)
		}
		a, err := strconv.ParseUint(strings.TrimSpace(addr), 0, 64)
		if err != nil {
			return fmt.Errorf("bad data address: %v", err)
		}
		v, err := strconv.ParseUint(strings.TrimSpace(val), 0, 64)
		if err != nil {
			return fmt.Errorf("bad data value: %v", err)
		}
		pr.p.SetWord(a, v)
		return nil
	}
	if pr.fn == nil {
		return fmt.Errorf("instruction outside function: %q", line)
	}
	if strings.HasSuffix(line, ":") && !strings.ContainsAny(line, " \t") {
		label := strings.TrimSuffix(line, ":")
		pr.bb = NewBlockBuilder(pr.p, pr.fn, pr.fn.AddBlock(label))
		return nil
	}
	if pr.bb == nil {
		return fmt.Errorf("instruction before first label: %q", line)
	}
	in, err := parseInstr(line)
	if err != nil {
		return err
	}
	pr.p.Assign(in)
	pr.bb.B.Append(in)
	return nil
}

var opByName = func() map[string]Op {
	m := make(map[string]Op)
	for op := Op(0); op < numOps; op++ {
		m[op.String()] = op
	}
	for op := numOps; op < numOpsFP; op++ {
		m[op.String()] = op
	}
	return m
}()

var condByName = func() map[string]Cond {
	m := make(map[string]Cond)
	for i, n := range condNames {
		m[n] = Cond(i)
	}
	return m
}()

// parseInstr parses a single instruction line (comments already stripped).
func parseInstr(line string) (*Instr, error) {
	in := &Instr{}
	// Optional qualifying predicate "(pN) ".
	if strings.HasPrefix(line, "(") {
		end := strings.IndexByte(line, ')')
		if end < 0 {
			return nil, fmt.Errorf("unclosed predicate in %q", line)
		}
		p, err := parsePR(strings.TrimSpace(line[1:end]))
		if err != nil {
			return nil, err
		}
		in.Qp = p
		line = strings.TrimSpace(line[end+1:])
	}
	mnemonic, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)

	// cmp/fcmp carry their condition in the mnemonic.
	if cc, ok := strings.CutPrefix(mnemonic, "cmp."); ok {
		cond, ok := condByName[cc]
		if !ok {
			return nil, fmt.Errorf("unknown condition %q", cc)
		}
		in.Op, in.Cond = OpCmp, cond
		return parseOperands(in, rest)
	}
	if cc, ok := strings.CutPrefix(mnemonic, "fcmp."); ok {
		cond, ok := condByName[cc]
		if !ok {
			return nil, fmt.Errorf("unknown condition %q", cc)
		}
		in.Op, in.Cond = OpFCmp, cond
		return parseOperands(in, rest)
	}
	op, ok := opByName[mnemonic]
	if !ok {
		return nil, fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	in.Op = op
	return parseOperands(in, rest)
}

func parseOperands(in *Instr, rest string) (*Instr, error) {
	lhs, rhs, hasEq := strings.Cut(rest, "=")
	lhs, rhs = strings.TrimSpace(lhs), strings.TrimSpace(rhs)
	switch in.Op {
	case OpNop, OpKill, OpHalt:
		return in, nil
	case OpBr, OpChk, OpSpawn:
		in.Target = strings.TrimSpace(rest)
		if in.Target == "" {
			return nil, fmt.Errorf("%s requires a target", in.Op)
		}
		return in, nil
	case OpRet:
		b, err := parseBR(strings.TrimSpace(rest))
		in.Bs = b
		return in, err
	case OpLfetch:
		ra, disp, err := parseMem(strings.TrimSpace(rest))
		in.Ra, in.Disp = ra, disp
		return in, err
	}
	if !hasEq {
		return nil, fmt.Errorf("%s requires '='", in.Op)
	}
	switch in.Op {
	case OpMovI:
		rd, err := parseGR(lhs)
		if err != nil {
			return nil, err
		}
		imm, err := strconv.ParseInt(rhs, 0, 64)
		if err != nil {
			return nil, fmt.Errorf("bad immediate %q", rhs)
		}
		in.Rd, in.Imm = rd, imm
		return in, nil
	case OpMov:
		rd, err := parseGR(lhs)
		if err != nil {
			return nil, err
		}
		ra, err := parseGR(rhs)
		if err != nil {
			return nil, err
		}
		in.Rd, in.Ra = rd, ra
		return in, nil
	case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr:
		rd, err := parseGR(lhs)
		if err != nil {
			return nil, err
		}
		in.Rd = rd
		a, b, ok := strings.Cut(rhs, ",")
		if !ok {
			return nil, fmt.Errorf("%s needs two source operands", in.Op)
		}
		if in.Ra, err = parseGR(strings.TrimSpace(a)); err != nil {
			return nil, err
		}
		return in, parseOp2(in, strings.TrimSpace(b))
	case OpCmp:
		p1s, p2s, ok := strings.Cut(lhs, ",")
		if !ok {
			return nil, fmt.Errorf("cmp needs two destination predicates")
		}
		var err error
		if in.Pd1, err = parsePR(strings.TrimSpace(p1s)); err != nil {
			return nil, err
		}
		if in.Pd2, err = parsePR(strings.TrimSpace(p2s)); err != nil {
			return nil, err
		}
		a, b, ok := strings.Cut(rhs, ",")
		if !ok {
			return nil, fmt.Errorf("cmp needs two source operands")
		}
		if in.Ra, err = parseGR(strings.TrimSpace(a)); err != nil {
			return nil, err
		}
		return in, parseOp2(in, strings.TrimSpace(b))
	case OpLd:
		rd, err := parseGR(lhs)
		if err != nil {
			return nil, err
		}
		in.Rd = rd
		memPart := rhs
		if memStr, incStr, ok := strings.Cut(rhs, "],"); ok {
			memPart = memStr + "]"
			inc, err := strconv.ParseInt(strings.TrimSpace(incStr), 0, 64)
			if err != nil {
				return nil, fmt.Errorf("bad post-increment %q", incStr)
			}
			in.PostInc = inc
		}
		in.Ra, in.Disp, err = parseMem(strings.TrimSpace(memPart))
		return in, err
	case OpSt:
		ra, disp, err := parseMem(lhs)
		if err != nil {
			return nil, err
		}
		rb, err := parseGR(rhs)
		if err != nil {
			return nil, err
		}
		in.Ra, in.Disp, in.Rb = ra, disp, rb
		return in, nil
	case OpCall:
		bd, err := parseBR(lhs)
		if err != nil {
			return nil, err
		}
		in.Bd, in.Target = bd, rhs
		return in, nil
	case OpCallB:
		bd, err := parseBR(lhs)
		if err != nil {
			return nil, err
		}
		bs, err := parseBR(rhs)
		if err != nil {
			return nil, err
		}
		in.Bd, in.Bs = bd, bs
		return in, nil
	case OpMovBR:
		bd, err := parseBR(lhs)
		if err != nil {
			return nil, err
		}
		in.Bd = bd
		if fn, ok := strings.CutPrefix(rhs, "@"); ok {
			in.Target = fn
			return in, nil
		}
		in.Ra, err = parseGR(rhs)
		return in, err
	case OpMovFromBR:
		rd, err := parseGR(lhs)
		if err != nil {
			return nil, err
		}
		bs, err := parseBR(rhs)
		if err != nil {
			return nil, err
		}
		in.Rd, in.Bs = rd, bs
		return in, nil
	case OpFAdd, OpFSub, OpFMul:
		fd, err := parseFR(lhs)
		if err != nil {
			return nil, err
		}
		a, b, ok := strings.Cut(rhs, ",")
		if !ok {
			return nil, fmt.Errorf("%s needs two source operands", in.Op)
		}
		fa, err := parseFR(strings.TrimSpace(a))
		if err != nil {
			return nil, err
		}
		fb, err := parseFR(strings.TrimSpace(b))
		if err != nil {
			return nil, err
		}
		in.Fd, in.Fa, in.Fb = fd, fa, fb
		return in, nil
	case OpFMA:
		fd, err := parseFR(lhs)
		if err != nil {
			return nil, err
		}
		parts := strings.Split(rhs, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("fma needs three source operands")
		}
		fa, err := parseFR(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, err
		}
		fb, err := parseFR(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, err
		}
		fc, err := parseFR(strings.TrimSpace(parts[2]))
		if err != nil {
			return nil, err
		}
		in.Fd, in.Fa, in.Fb, in.Fc = fd, fa, fb, fc
		return in, nil
	case OpFLd:
		fd, err := parseFR(lhs)
		if err != nil {
			return nil, err
		}
		ra, disp, err := parseMem(rhs)
		if err != nil {
			return nil, err
		}
		in.Fd, in.Ra, in.Disp = fd, ra, disp
		return in, nil
	case OpFSt:
		ra, disp, err := parseMem(lhs)
		if err != nil {
			return nil, err
		}
		fa, err := parseFR(rhs)
		if err != nil {
			return nil, err
		}
		in.Ra, in.Disp, in.Fa = ra, disp, fa
		return in, nil
	case OpFCmp:
		p1s, p2s, ok := strings.Cut(lhs, ",")
		if !ok {
			return nil, fmt.Errorf("fcmp needs two destination predicates")
		}
		var err error
		if in.Pd1, err = parsePR(strings.TrimSpace(p1s)); err != nil {
			return nil, err
		}
		if in.Pd2, err = parsePR(strings.TrimSpace(p2s)); err != nil {
			return nil, err
		}
		a, b, ok := strings.Cut(rhs, ",")
		if !ok {
			return nil, fmt.Errorf("fcmp needs two source operands")
		}
		if in.Fa, err = parseFR(strings.TrimSpace(a)); err != nil {
			return nil, err
		}
		if in.Fb, err = parseFR(strings.TrimSpace(b)); err != nil {
			return nil, err
		}
		return in, nil
	case OpSetF:
		fd, err := parseFR(lhs)
		if err != nil {
			return nil, err
		}
		ra, err := parseGR(rhs)
		if err != nil {
			return nil, err
		}
		in.Fd, in.Ra = fd, ra
		return in, nil
	case OpGetF:
		rd, err := parseGR(lhs)
		if err != nil {
			return nil, err
		}
		fa, err := parseFR(rhs)
		if err != nil {
			return nil, err
		}
		in.Rd, in.Fa = rd, fa
		return in, nil
	case OpLiw:
		slot, err := parseSlot(lhs)
		if err != nil {
			return nil, err
		}
		ra, err := parseGR(rhs)
		if err != nil {
			return nil, err
		}
		in.Imm, in.Ra = slot, ra
		return in, nil
	case OpLir:
		rd, err := parseGR(lhs)
		if err != nil {
			return nil, err
		}
		slot, err := parseSlot(rhs)
		if err != nil {
			return nil, err
		}
		in.Rd, in.Imm = rd, slot
		return in, nil
	}
	return nil, fmt.Errorf("cannot parse operands for %s", in.Op)
}

// parseOp2 parses the second source operand: a register or an immediate.
func parseOp2(in *Instr, s string) error {
	if strings.HasPrefix(s, "r") {
		rb, err := parseGR(s)
		if err != nil {
			return err
		}
		in.Rb = rb
		return nil
	}
	imm, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return fmt.Errorf("bad operand %q", s)
	}
	in.Imm, in.UseImm = imm, true
	return nil
}

func parseGR(s string) (Reg, error) {
	n, ok := cutRegNum(s, "r")
	if !ok || n >= NumRegs {
		return 0, fmt.Errorf("bad general register %q", s)
	}
	return Reg(n), nil
}

func parsePR(s string) (PR, error) {
	n, ok := cutRegNum(s, "p")
	if !ok || n >= NumPreds {
		return 0, fmt.Errorf("bad predicate register %q", s)
	}
	return PR(n), nil
}

func parseFR(s string) (FR, error) {
	n, ok := cutRegNum(s, "f")
	if !ok || n >= NumFRs {
		return 0, fmt.Errorf("bad FP register %q", s)
	}
	return FR(n), nil
}

func parseBR(s string) (BR, error) {
	n, ok := cutRegNum(s, "b")
	if !ok || n >= NumBRs {
		return 0, fmt.Errorf("bad branch register %q", s)
	}
	return BR(n), nil
}

func cutRegNum(s, prefix string) (int, bool) {
	num, ok := strings.CutPrefix(s, prefix)
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(num)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// parseSlot parses a live-in buffer slot "[N]".
func parseSlot(s string) (int64, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, fmt.Errorf("bad live-in slot %q", s)
	}
	n, err := strconv.ParseInt(s[1:len(s)-1], 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad live-in slot %q", s)
	}
	return n, nil
}

// parseMem parses "[rN]" or "[rN+disp]" / "[rN-disp]".
func parseMem(s string) (Reg, int64, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	regPart := inner
	var disp int64
	for i := 1; i < len(inner); i++ {
		if inner[i] == '+' || inner[i] == '-' {
			d, err := strconv.ParseInt(inner[i:], 0, 64)
			if err != nil {
				return 0, 0, fmt.Errorf("bad displacement in %q", s)
			}
			disp = d
			regPart = inner[:i]
			break
		}
	}
	r, err := parseGR(strings.TrimSpace(regPart))
	return r, disp, err
}
