package ir

import (
	"fmt"
	"sort"
)

// Block is a basic block: a labelled, straight-line instruction sequence.
// Control may enter only at the top. A block ends either with a terminating
// branch (OpBr with an always-true predicate, OpRet, OpHalt, OpKill) or
// falls through to the next block in the function; a predicated OpBr as the
// last instruction yields two successors (taken target and fallthrough).
// Calls and chk.c may appear mid-block: a call returns to the next
// instruction and chk.c's stub detour is a micro-architectural event, not a
// CFG edge.
type Block struct {
	Label  string
	Instrs []*Instr

	// Index is the block's position within its function, maintained by
	// Func.Renumber and used as the node id by CFG analyses.
	Index int
}

// Append adds instructions to the end of the block.
func (b *Block) Append(ins ...*Instr) { b.Instrs = append(b.Instrs, ins...) }

// InsertAt inserts ins before position pos in the block.
func (b *Block) InsertAt(pos int, ins *Instr) {
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[pos+1:], b.Instrs[pos:])
	b.Instrs[pos] = ins
}

// Terminator returns the final instruction of the block, or nil if empty.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	return b.Instrs[len(b.Instrs)-1]
}

// endsFlow reports whether the block's last instruction unconditionally
// leaves the block (no fallthrough edge).
func (b *Block) endsFlow() bool {
	t := b.Terminator()
	if t == nil {
		return false
	}
	switch t.Op {
	case OpRet, OpHalt, OpKill:
		return t.Qp == PTrue
	case OpBr:
		return t.Qp == PTrue
	}
	return false
}

// Func is a procedure: an ordered list of basic blocks, entered at the first
// block. Block labels are unique within the function.
type Func struct {
	Name   string
	Blocks []*Block

	// NumFormals is the number of incoming argument registers
	// (r32..r32+NumFormals-1) the function reads, used by the
	// context-sensitive slicer to bind formals to actuals (§3.1).
	NumFormals int
}

// Entry returns the function's entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// BlockByLabel returns the block with the given label, or nil.
func (f *Func) BlockByLabel(label string) *Block {
	for _, b := range f.Blocks {
		if b.Label == label {
			return b
		}
	}
	return nil
}

// Renumber refreshes Block.Index after structural edits.
func (f *Func) Renumber() {
	for i, b := range f.Blocks {
		b.Index = i
	}
}

// AddBlock appends a new empty block with the given label.
func (f *Func) AddBlock(label string) *Block {
	b := &Block{Label: label, Index: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Instrs calls fn for every instruction in the function, in layout order.
func (f *Func) Instrs(fn func(*Block, int, *Instr)) {
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			fn(b, i, in)
		}
	}
}

// Program is a complete translation unit: an ordered set of functions plus a
// static data image. The function named Entry is where execution begins.
type Program struct {
	Funcs []*Func
	Entry string

	// Data is the static data image: 64-bit words at byte addresses,
	// installed into simulated memory before execution (the workload
	// builders' heaps live here).
	Data map[uint64]uint64

	nextID int
}

// NewProgram returns an empty program whose entry point is the given
// function name.
func NewProgram(entry string) *Program {
	return &Program{Entry: entry, Data: make(map[uint64]uint64), nextID: 1}
}

// NewID allocates a fresh, program-unique instruction ID.
func (p *Program) NewID() int {
	id := p.nextID
	p.nextID++
	return id
}

// ReserveIDs ensures future NewID results are strictly greater than max.
// Callers that import instructions with pre-assigned IDs (e.g. the binary
// lifter) use it to keep the ID space collision-free.
func (p *Program) ReserveIDs(max int) {
	if p.nextID <= max {
		p.nextID = max + 1
	}
}

// Assign gives the instruction a fresh ID if it does not have one, and
// returns it.
func (p *Program) Assign(in *Instr) *Instr {
	if in.ID == 0 {
		in.ID = p.NewID()
	}
	return in
}

// AddFunc appends a new empty function.
func (p *Program) AddFunc(name string) *Func {
	f := &Func{Name: name}
	p.Funcs = append(p.Funcs, f)
	return f
}

// FuncByName returns the named function, or nil.
func (p *Program) FuncByName(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// EntryFunc returns the program's entry function, or nil.
func (p *Program) EntryFunc() *Func { return p.FuncByName(p.Entry) }

// InstrByID returns the instruction with the given ID along with its
// function and block, or nils if absent.
func (p *Program) InstrByID(id int) (*Func, *Block, *Instr) {
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.ID == id {
					return f, b, in
				}
			}
		}
	}
	return nil, nil, nil
}

// NumInstrs returns the static instruction count of the program.
func (p *Program) NumInstrs() int {
	n := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Instrs)
		}
	}
	return n
}

// SetWord stores a 64-bit word into the static data image.
func (p *Program) SetWord(addr, val uint64) { p.Data[addr] = val }

// Clone returns a deep copy of the program. Instruction IDs are preserved,
// so profiles collected against the original remain valid for the clone;
// this is how the post-pass tool adapts a binary without touching the
// original (Figure 1's two-pass flow).
func (p *Program) Clone() *Program {
	q := &Program{Entry: p.Entry, Data: make(map[uint64]uint64, len(p.Data)), nextID: p.nextID}
	for a, v := range p.Data {
		q.Data[a] = v
	}
	for _, f := range p.Funcs {
		nf := q.AddFunc(f.Name)
		nf.NumFormals = f.NumFormals
		for _, b := range f.Blocks {
			nb := nf.AddBlock(b.Label)
			nb.Instrs = make([]*Instr, len(b.Instrs))
			for i, in := range b.Instrs {
				nb.Instrs[i] = in.Clone()
			}
		}
		nf.Renumber()
	}
	return q
}

// SortedDataAddrs returns the static data addresses in increasing order
// (deterministic iteration for tests and image building).
func (p *Program) SortedDataAddrs() []uint64 {
	addrs := make([]uint64, 0, len(p.Data))
	for a := range p.Data {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return addrs
}

// Validate checks structural invariants: unique function names, unique block
// labels per function, resolvable branch targets, non-empty entry, and ID
// uniqueness. It returns the first violation found.
func (p *Program) Validate() error {
	if p.EntryFunc() == nil {
		return fmt.Errorf("ir: entry function %q not defined", p.Entry)
	}
	seenFunc := map[string]bool{}
	seenID := map[int]string{}
	for _, f := range p.Funcs {
		if seenFunc[f.Name] {
			return fmt.Errorf("ir: duplicate function %q", f.Name)
		}
		seenFunc[f.Name] = true
		if len(f.Blocks) == 0 {
			return fmt.Errorf("ir: function %q has no blocks", f.Name)
		}
		seenBlock := map[string]bool{}
		for _, b := range f.Blocks {
			if seenBlock[b.Label] {
				return fmt.Errorf("ir: %s: duplicate block label %q", f.Name, b.Label)
			}
			seenBlock[b.Label] = true
		}
		var err error
		f.Instrs(func(b *Block, _ int, in *Instr) {
			if err != nil {
				return
			}
			if in.ID != 0 {
				if prev, dup := seenID[in.ID]; dup {
					err = fmt.Errorf("ir: duplicate instruction ID %d in %s and %s", in.ID, prev, f.Name)
					return
				}
				seenID[in.ID] = f.Name
			}
			switch in.Op {
			case OpBr, OpChk:
				if f.BlockByLabel(in.Target) == nil {
					err = fmt.Errorf("ir: %s/%s: %s target %q not found", f.Name, b.Label, in.Op, in.Target)
				}
			case OpSpawn:
				if !p.resolvable(f, in.Target) {
					err = fmt.Errorf("ir: %s/%s: spawn target %q not found", f.Name, b.Label, in.Target)
				}
			case OpCall:
				if p.FuncByName(in.Target) == nil {
					err = fmt.Errorf("ir: %s/%s: call target %q not found", f.Name, b.Label, in.Target)
				}
			case OpMovBR:
				if in.Target != "" && p.FuncByName(in.Target) == nil {
					err = fmt.Errorf("ir: %s/%s: movbr target %q not found", f.Name, b.Label, in.Target)
				}
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// resolvable reports whether target names a block label in f, a "func.label"
// pair, or a function name.
func (p *Program) resolvable(f *Func, target string) bool {
	if f.BlockByLabel(target) != nil || p.FuncByName(target) != nil {
		return true
	}
	for i := 0; i < len(target); i++ {
		if target[i] == '.' {
			if g := p.FuncByName(target[:i]); g != nil {
				return g.BlockByLabel(target[i+1:]) != nil
			}
		}
	}
	return false
}
