// Package lift recovers the structured program representation (functions,
// basic blocks, branch labels) from a flat linked code image. The paper
// motivates the post-pass design with exactly this capability: "this
// encapsulation allows us to reuse the same tool in a future binary
// translation tool when the source code is not available" (§2.2). With this
// package, the SSP tool chain runs on raw images: lift -> profile -> adapt
// -> relink.
//
// Recovery is classic two-pass disassembly:
//
//  1. Function discovery: entry points are the image entry, every direct
//     call target, every function-address constant (movbr @f), and every
//     recorded symbol. Function extents run to the next entry point.
//  2. Leader discovery within each function: the first instruction, branch
//     and chk.c/spawn targets, and every instruction following a control
//     transfer start new basic blocks.
package lift

import (
	"fmt"
	"sort"

	"ssp/internal/ir"
)

// Lift reconstructs a Program from an image. Round-tripping Link(Lift(img))
// preserves instruction order, IDs, and behaviour (see tests).
func Lift(img *ir.Image) (*ir.Program, error) {
	n := len(img.Code)
	if n == 0 {
		return nil, fmt.Errorf("lift: empty image")
	}
	// Pass 1: function entry points.
	entries := map[int]bool{img.Entry: true}
	for _, pc := range img.FuncEntries {
		entries[pc] = true
	}
	for pc := range img.Code {
		in := &img.Code[pc].I
		if (in.Op == ir.OpCall || (in.Op == ir.OpMovBR && in.Target != "")) && img.Code[pc].Tgt >= 0 {
			entries[int(img.Code[pc].Tgt)] = true
		}
	}
	starts := make([]int, 0, len(entries))
	for pc := range entries {
		starts = append(starts, pc)
	}
	sort.Ints(starts)
	if starts[0] != 0 {
		// Code before the first entry is unreachable padding; make it a
		// function of its own so nothing is lost.
		starts = append([]int{0}, starts...)
	}
	funcOf := make([]int, n)
	for i, s := range starts {
		end := n
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		for pc := s; pc < end; pc++ {
			funcOf[pc] = i
		}
	}

	// Pass 2: block leaders.
	leader := make([]bool, n+1)
	for _, s := range starts {
		leader[s] = true
	}
	for pc := range img.Code {
		l := &img.Code[pc]
		switch l.I.Op {
		case ir.OpBr, ir.OpChk, ir.OpSpawn:
			if l.Tgt >= 0 {
				leader[l.Tgt] = true
			}
			if l.I.Op == ir.OpBr {
				leader[pc+1] = true
			}
		case ir.OpRet, ir.OpHalt, ir.OpKill:
			leader[pc+1] = true
		}
	}

	// Names: keep original symbol names where the image has them.
	nameOf := func(fi int) string {
		s := starts[fi]
		for name, pc := range img.FuncEntries {
			if pc == s {
				return name
			}
		}
		return fmt.Sprintf("fn_%d", s)
	}
	labelOf := func(pc int) string { return fmt.Sprintf("L%d", pc) }

	p := ir.NewProgram(nameOf(funcOf[img.Entry]))
	p.Data = img.Data
	var f *ir.Func
	var b *ir.Block
	for pc := 0; pc < n; pc++ {
		if pc == 0 || funcOf[pc] != funcOf[pc-1] {
			f = p.AddFunc(nameOf(funcOf[pc]))
			b = nil
		}
		if b == nil || leader[pc] {
			label := labelOf(pc)
			if pc == starts[funcOf[pc]] {
				label = "entry"
			}
			b = f.AddBlock(label)
		}
		in := img.Code[pc].I.Clone() // preserves the instruction ID
		// Rewrite targets into lifted labels.
		tgt := int(img.Code[pc].Tgt)
		switch in.Op {
		case ir.OpBr, ir.OpChk:
			in.Target = liftLocalLabel(starts, funcOf, pc, tgt, labelOf)
		case ir.OpSpawn:
			if funcOf[tgt] == funcOf[pc] {
				in.Target = liftLocalLabel(starts, funcOf, pc, tgt, labelOf)
			} else {
				in.Target = nameOf(funcOf[tgt]) + "." + liftLocalLabel(starts, funcOf, tgt, tgt, labelOf)
			}
		case ir.OpCall:
			in.Target = nameOf(funcOf[tgt])
		case ir.OpMovBR:
			if in.Target != "" {
				in.Target = nameOf(funcOf[tgt])
			}
		}
		b.Append(in)
	}
	maxID := 0
	for _, fn := range p.Funcs {
		fn.Renumber()
		// Formal counts are not recoverable from a raw image; assume the
		// full argument-register convention so the dependence analysis
		// keeps every possible argument edge (conservative).
		fn.NumFormals = 8
		fn.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) {
			if in.ID > maxID {
				maxID = in.ID
			}
		})
	}
	p.ReserveIDs(maxID)
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("lift: invalid recovery: %w", err)
	}
	return p, nil
}

// liftLocalLabel names the target block within pc's function.
func liftLocalLabel(starts []int, funcOf []int, pc, tgt int, labelOf func(int) string) string {
	if tgt == starts[funcOf[tgt]] {
		return "entry"
	}
	_ = pc
	return labelOf(tgt)
}
