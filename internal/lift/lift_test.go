package lift

import (
	"testing"

	"ssp/internal/ir"
	"ssp/internal/profile"
	"ssp/internal/sim"
	"ssp/internal/ssp"
	"ssp/internal/workloads"
)

func tinyConfig() sim.Config {
	c := sim.DefaultInOrder()
	c.Mem.L1Size = 1 << 10
	c.Mem.L2Size = 4 << 10
	c.Mem.L3Size = 16 << 10
	c.MaxCycles = 200_000_000
	return c
}

func TestLiftRoundTripsEveryBenchmark(t *testing.T) {
	for _, s := range workloads.All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			p, want := s.Build(s.TestScale / 2)
			img, err := ir.Link(p)
			if err != nil {
				t.Fatal(err)
			}
			lifted, err := Lift(img)
			if err != nil {
				t.Fatal(err)
			}
			img2, err := ir.Link(lifted)
			if err != nil {
				t.Fatalf("relink: %v", err)
			}
			if len(img2.Code) != len(img.Code) {
				t.Fatalf("code length changed: %d -> %d", len(img.Code), len(img2.Code))
			}
			for pc := range img.Code {
				if img.Code[pc].I.Op != img2.Code[pc].I.Op || img.Code[pc].Tgt != img2.Code[pc].Tgt {
					t.Fatalf("pc %d differs: %v/%d vs %v/%d", pc,
						img.Code[pc].I.Op, img.Code[pc].Tgt, img2.Code[pc].I.Op, img2.Code[pc].Tgt)
				}
				if img.Code[pc].I.ID != img2.Code[pc].I.ID {
					t.Fatalf("pc %d: ID changed %d -> %d", pc, img.Code[pc].I.ID, img2.Code[pc].I.ID)
				}
			}
			m := sim.New(tinyConfig(), img2)
			if _, err := m.Run(); err != nil {
				t.Fatal(err)
			}
			if got := m.Mem.Load(workloads.ResultAddr); got != want {
				t.Fatalf("lifted checksum = %d, want %d", got, want)
			}
		})
	}
}

func TestLiftRecoversFunctionsAndLoops(t *testing.T) {
	spec, _ := workloads.ByName("health")
	p, _ := spec.Build(spec.TestScale / 2)
	img, err := ir.Link(p)
	if err != nil {
		t.Fatal(err)
	}
	lifted, err := Lift(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(lifted.Funcs) != len(p.Funcs) {
		t.Fatalf("recovered %d functions, want %d", len(lifted.Funcs), len(p.Funcs))
	}
	if lifted.FuncByName("sum_list") == nil {
		t.Fatal("symbol name not preserved")
	}
	// The main loop's back edge must be recoverable as a block label.
	mainFn := lifted.FuncByName("main")
	if mainFn == nil || len(mainFn.Blocks) < 3 {
		t.Fatalf("main not recovered with blocks: %+v", mainFn)
	}
}

func TestLiftedBinaryIsAdaptable(t *testing.T) {
	// The full binary-translation flow the paper anticipates: raw image ->
	// lift -> profile -> SSP adapt -> relink -> faster binary.
	spec, _ := workloads.ByName("mcf")
	p, want := spec.Build(spec.TestScale)
	img, err := ir.Link(p)
	if err != nil {
		t.Fatal(err)
	}
	lifted, err := Lift(img)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := profile.Collect(lifted, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	enh, rep, err := ssp.Adapt(lifted, prof, ssp.DefaultOptions(), "lifted-mcf")
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumSlices() == 0 {
		t.Fatal("no slices on the lifted binary")
	}
	img2, err := ir.Link(enh)
	if err != nil {
		t.Fatal(err)
	}
	base, err := sim.New(tinyConfig(), img).Run()
	if err != nil {
		t.Fatal(err)
	}
	m := sim.New(tinyConfig(), img2)
	fast, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Mem.Load(workloads.ResultAddr); got != want {
		t.Fatalf("adapted lifted binary checksum = %d, want %d", got, want)
	}
	speedup := float64(base.Cycles) / float64(fast.Cycles)
	if speedup < 1.3 {
		t.Fatalf("lifted-then-adapted speedup = %.2f, want >= 1.3", speedup)
	}
	t.Logf("lifted mcf: %.2fx with %d slices", speedup, rep.NumSlices())
}

func TestLiftRejectsEmptyImage(t *testing.T) {
	if _, err := Lift(&ir.Image{}); err == nil {
		t.Fatal("Lift accepted an empty image")
	}
}

func TestLiftEnhancedBinary(t *testing.T) {
	// Lifting an already-enhanced binary (with chk/stub/slice layout and
	// cross-block spawns) must round-trip too.
	spec, _ := workloads.ByName("mcf")
	p, want := spec.Build(spec.TestScale / 2)
	prof, err := profile.Collect(p, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	enh, _, err := ssp.Adapt(p, prof, ssp.DefaultOptions(), "mcf")
	if err != nil {
		t.Fatal(err)
	}
	img, err := ir.Link(enh)
	if err != nil {
		t.Fatal(err)
	}
	lifted, err := Lift(img)
	if err != nil {
		t.Fatal(err)
	}
	img2, err := ir.Link(lifted)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.New(tinyConfig(), img2)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Mem.Load(workloads.ResultAddr); got != want {
		t.Fatalf("lifted enhanced checksum = %d, want %d", got, want)
	}
	if res.Spawns == 0 {
		t.Fatal("lifted enhanced binary spawned nothing")
	}
}
