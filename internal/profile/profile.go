// Package profile implements the profiling feedback of Figure 1: the
// original binary is run on the simulator to collect cache profiles (which
// identify delinquent loads, §2.2), basic-block frequencies and loop trip
// counts (which drive speculative slicing and region selection, §3.1.2,
// §3.4.1), and the dynamic call graph of indirect calls (§3.1.2).
package profile

import (
	"context"
	"fmt"
	"sort"

	"ssp/internal/ir"
	"ssp/internal/sim"
	"ssp/internal/sim/mem"
)

// Profile is the feedback bundle handed to the post-pass tool.
type Profile struct {
	// InstrFreq maps instruction ID to its main-thread execution count.
	InstrFreq map[int]uint64
	// BlockFreq maps "func.label" to the block's entry count.
	BlockFreq map[string]uint64
	// Loads maps a load instruction ID to its cache behaviour.
	Loads map[int]*mem.LoadStat
	// TotalMissCycles sums miss cycles over all loads.
	TotalMissCycles uint64
	// CallEdges maps an indirect-call instruction ID to callee function
	// names with counts.
	CallEdges map[int]map[string]uint64
	// Cycles is the baseline run's cycle count.
	Cycles int64
	// MemCfg records the memory latencies the profile was taken with, so
	// latency estimation is consistent with the machine model.
	MemCfg mem.Config
}

// Collect runs the program once on the given machine model with profiling
// enabled and returns the feedback bundle.
func Collect(p *ir.Program, cfg sim.Config) (*Profile, error) {
	return CollectContext(context.Background(), p, cfg)
}

// CollectContext is Collect under a context: a cancelled profiling run
// returns ctx.Err() promptly instead of simulating to completion. Profiling
// is the first simulation of every adapt pipeline, so cancellable serving
// paths need the ctx to reach it.
func CollectContext(ctx context.Context, p *ir.Program, cfg sim.Config) (*Profile, error) {
	img, err := ir.Link(p)
	if err != nil {
		return nil, err
	}
	cfg.Profile = true
	res, err := sim.New(cfg, img).RunContext(ctx)
	if err != nil {
		return nil, err
	}
	if res.TimedOut {
		return nil, fmt.Errorf("profile: run timed out after %d cycles", res.Cycles)
	}
	pr := &Profile{
		InstrFreq: make(map[int]uint64),
		BlockFreq: make(map[string]uint64),
		Loads:     make(map[int]*mem.LoadStat),
		CallEdges: make(map[int]map[string]uint64),
		Cycles:    res.Cycles,
		MemCfg:    cfg.Mem,
	}
	for pc, count := range res.PCCount {
		if count == 0 {
			continue
		}
		in := &img.Code[pc].I
		pr.InstrFreq[in.ID] += count
		// The block's entry count is its first instruction's count.
		key := img.BlockKey(pc)
		if start, ok := img.BlockStarts[key]; ok && start == pc {
			pr.BlockFreq[key] += count
		}
	}
	for id, stat := range res.Hier.ByLoad() {
		_, _, in := p.InstrByID(id)
		if in == nil || in.Op != ir.OpLd {
			continue
		}
		pr.Loads[id] = stat
		pr.TotalMissCycles += stat.MissCycles
	}
	for callID, edges := range res.CallEdges {
		m := make(map[string]uint64)
		for pc, n := range edges {
			if pc >= 0 && pc < len(img.FuncOf) {
				m[img.FuncNames[img.FuncOf[pc]]] += n
			}
		}
		pr.CallEdges[callID] = m
	}
	return pr, nil
}

// DelinquentLoads returns the IDs of the static loads that together account
// for at least cutoff (e.g. 0.9) of all miss cycles, ranked by miss cycles,
// capped at max entries: "the tool uses the cache profiles from the
// simulator to identify the top delinquent loads that contribute to at least
// 90% of the cache misses" (§2.2). "For many programs, only a small number
// of static loads are responsible for the vast majority of cache misses."
//
// A cutoff of 1.0 (or more) selects every missing load; max <= 0 means no
// cap. The "at least" comparison is done in floating point against
// cutoff*total — truncating the target to an integer could stop one load
// early on rounding boundaries and silently under-cover.
func (pr *Profile) DelinquentLoads(cutoff float64, max int) []int {
	type cand struct {
		id int
		mc uint64
	}
	var cands []cand
	for id, s := range pr.Loads {
		if s.MissCycles > 0 {
			cands = append(cands, cand{id, s.MissCycles})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].mc != cands[j].mc {
			return cands[i].mc > cands[j].mc
		}
		return cands[i].id < cands[j].id
	})
	if max <= 0 {
		max = len(cands)
	}
	target := cutoff * float64(pr.TotalMissCycles)
	var out []int
	var cum uint64
	for _, c := range cands {
		if len(out) >= max || (len(out) > 0 && float64(cum) >= target) {
			break
		}
		out = append(out, c.id)
		cum += c.mc
	}
	return out
}

// DelinquentLoadsByRegion ranks delinquent loads within hot regions instead
// of across the whole program: loads are grouped by the region key that
// regionOf assigns them, regions carrying less than minFrac of all miss
// cycles are dropped, and the §2.2 cutoff/max selection of DelinquentLoads is
// applied per region against that region's own miss-cycle total. Regions are
// emitted hottest first, so the result concatenates one target set per hot
// region — the portfolio shape of Table 2, where each hot routine gets its
// own p-slice. On a single-hot-region profile the result is identical to
// DelinquentLoads.
//
// A load regionOf maps to "" is unattributable (e.g. its instruction is gone
// from the current image) and competes in a region of its own. If selection
// comes up empty despite candidates existing, the global ranking is returned
// so callers never lose targets to over-aggressive region filtering.
func (pr *Profile) DelinquentLoadsByRegion(cutoff float64, max int, minFrac float64, regionOf func(id int) string) []int {
	type cand struct {
		id int
		mc uint64
	}
	byRegion := make(map[string][]cand)
	regionMC := make(map[string]uint64)
	any := false
	for id, s := range pr.Loads {
		if s.MissCycles == 0 {
			continue
		}
		any = true
		key := regionOf(id)
		byRegion[key] = append(byRegion[key], cand{id, s.MissCycles})
		regionMC[key] += s.MissCycles
	}
	keys := make([]string, 0, len(byRegion))
	for key := range byRegion {
		if float64(regionMC[key]) < minFrac*float64(pr.TotalMissCycles) {
			continue
		}
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if regionMC[keys[i]] != regionMC[keys[j]] {
			return regionMC[keys[i]] > regionMC[keys[j]]
		}
		return keys[i] < keys[j]
	})
	var out []int
	for _, key := range keys {
		cands := byRegion[key]
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].mc != cands[j].mc {
				return cands[i].mc > cands[j].mc
			}
			return cands[i].id < cands[j].id
		})
		lim := max
		if lim <= 0 {
			lim = len(cands)
		}
		target := cutoff * float64(regionMC[key])
		var cum uint64
		for i, c := range cands {
			if i >= lim || (i > 0 && float64(cum) >= target) {
				break
			}
			out = append(out, c.id)
			cum += c.mc
		}
	}
	if len(out) == 0 && any {
		return pr.DelinquentLoads(cutoff, max)
	}
	return out
}

// Rebase returns a profile whose load statistics come from an actual run's
// dense per-load stats (res.Hier) restricted to the loads of program p: the
// feedback harvest of the closed-loop tuner. Execution frequencies, block
// counts, and call edges are carried over unchanged — adaptation preserves
// the main thread's control flow (the metamorphic invariant), and slice
// instructions carry fresh IDs, so the original program's load IDs in an
// adapted run's stats are exactly the main thread's residual cache
// behaviour: what the adapted image left unprefetched.
//
// The carried-over maps are shared with the receiver; treat both profiles
// as read-only afterwards.
func (pr *Profile) Rebase(res *sim.Result, p *ir.Program) *Profile {
	out := &Profile{
		InstrFreq: pr.InstrFreq,
		BlockFreq: pr.BlockFreq,
		CallEdges: pr.CallEdges,
		Loads:     make(map[int]*mem.LoadStat),
		Cycles:    res.Cycles,
		MemCfg:    pr.MemCfg,
	}
	for id, stat := range res.Hier.ByLoad() {
		_, _, in := p.InstrByID(id)
		if in == nil || in.Op != ir.OpLd {
			continue
		}
		s := *stat
		out.Loads[id] = &s
		out.TotalMissCycles += s.MissCycles
	}
	return out
}

// ExpectedLoadLatency estimates the average latency of the given load from
// its profile: the L1 latency plus its average miss cycles per access. This
// is the "latency of a memory operation determined by cache profiling" used
// to annotate dependence edges for scheduling (§3.2.1).
func (pr *Profile) ExpectedLoadLatency(id int) float64 {
	s := pr.Loads[id]
	if s == nil || s.Accesses == 0 {
		return float64(pr.MemCfg.L1Lat)
	}
	return float64(pr.MemCfg.L1Lat) + float64(s.MissCycles)/float64(s.Accesses)
}

// Freq returns the execution count of the instruction.
func (pr *Profile) Freq(in *ir.Instr) uint64 { return pr.InstrFreq[in.ID] }

// BlockCount returns the entry count of block label in function fn.
func (pr *Profile) BlockCount(fn, label string) uint64 {
	return pr.BlockFreq[fn+"."+label]
}

// DominantCallee returns the most frequent callee recorded for the indirect
// call with the given ID, or "" if none.
func (pr *Profile) DominantCallee(callID int) string {
	best, bestN := "", uint64(0)
	names := make([]string, 0, len(pr.CallEdges[callID]))
	for name := range pr.CallEdges[callID] {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if n := pr.CallEdges[callID][name]; n > bestN {
			best, bestN = name, n
		}
	}
	return best
}

// LoopTripCount estimates the average trip count of a loop whose header
// block is headerKey and whose distinct entry count from outside is
// entryCount: trips ≈ header executions / loop entries. Callers derive
// entryCount from the preheader frequency; a zero entryCount yields the raw
// header count (§3.4.1: "the trip counts are derived from block profiling if
// available; otherwise, they are estimated").
func (pr *Profile) LoopTripCount(headerKey string, entryCount uint64) float64 {
	h := pr.BlockFreq[headerKey]
	if h == 0 {
		return 1
	}
	if entryCount == 0 {
		return float64(h)
	}
	return float64(h) / float64(entryCount)
}
