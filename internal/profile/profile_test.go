package profile

import (
	"bytes"
	"fmt"
	"testing"

	"ssp/internal/ir"
	"ssp/internal/sim"
	"ssp/internal/sim/mem"
)

func tinyConfig() sim.Config {
	c := sim.DefaultInOrder()
	c.Mem.L1Size = 1 << 10
	c.Mem.L2Size = 4 << 10
	c.Mem.L3Size = 16 << 10
	return c
}

// loopProgram: an outer loop of n iterations around an inner loop of m
// iterations, with a delinquent strided load in the inner loop.
func loopProgram(n, m int) *ir.Program {
	p := ir.NewProgram("main")
	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.MovI(14, 0)        // i
	e.MovI(20, 0x100000) // cursor
	outer := fb.Block("outer")
	outer.MovI(15, 0) // j
	inner := fb.Block("inner")
	inner.Ld(16, 20, 0)
	inner.AddI(20, 20, 64)
	inner.AddI(15, 15, 1)
	inner.CmpI(ir.CondLT, 6, 7, 15, int64(m))
	inner.On(6).Br("inner")
	latch := fb.Block("latch")
	latch.AddI(14, 14, 1)
	latch.CmpI(ir.CondLT, 8, 9, 14, int64(n))
	latch.On(8).Br("outer")
	done := fb.Block("done")
	done.Halt()
	return p
}

func TestCollectBlockAndInstrFreq(t *testing.T) {
	p := loopProgram(10, 20)
	pr, err := Collect(p, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := pr.BlockCount("main", "entry"); got != 1 {
		t.Errorf("entry count = %d", got)
	}
	if got := pr.BlockCount("main", "outer"); got != 10 {
		t.Errorf("outer count = %d", got)
	}
	if got := pr.BlockCount("main", "inner"); got != 200 {
		t.Errorf("inner count = %d", got)
	}
	ld := p.Funcs[0].Blocks[2].Instrs[0]
	if got := pr.Freq(ld); got != 200 {
		t.Errorf("load executed %d times", got)
	}
}

func TestLoopTripCount(t *testing.T) {
	p := loopProgram(10, 20)
	pr, err := Collect(p, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// inner loop: 200 header executions over 10 entries -> 20 trips.
	if got := pr.LoopTripCount("main.inner", 10); got != 20 {
		t.Errorf("inner trips = %v", got)
	}
	if got := pr.LoopTripCount("main.outer", 1); got != 10 {
		t.Errorf("outer trips = %v", got)
	}
	if got := pr.LoopTripCount("main.inner", 0); got != 200 {
		t.Errorf("trips with unknown entries = %v", got)
	}
	if got := pr.LoopTripCount("main.nosuch", 5); got != 1 {
		t.Errorf("unknown header trips = %v", got)
	}
}

func TestDelinquentLoadsOrderingAndCutoff(t *testing.T) {
	p := loopProgram(4, 500)
	pr, err := Collect(p, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	dels := pr.DelinquentLoads(0.9, 10)
	if len(dels) != 1 {
		t.Fatalf("dels = %v, want the single strided load", dels)
	}
	// max <= 0 means no cap, not "select nothing".
	if got := pr.DelinquentLoads(0.9, 0); len(got) != 1 {
		t.Errorf("max=0 returned %v, want the single strided load", got)
	}
}

func synthProfile(miss map[int]uint64) *Profile {
	pr := &Profile{Loads: make(map[int]*mem.LoadStat)}
	for id, mc := range miss {
		pr.Loads[id] = &mem.LoadStat{Accesses: 1, MissCycles: mc}
		pr.TotalMissCycles += mc
	}
	return pr
}

func TestDelinquentLoadsBoundaries(t *testing.T) {
	cases := []struct {
		name   string
		miss   map[int]uint64
		cutoff float64
		max    int
		want   []int
	}{
		// Truncation boundary: total 95, cutoff 0.9 → true target 85.5.
		// The old integer-truncated target (85) stopped after the first
		// load at 85/95 ≈ 89.5% — below the "at least 90%" contract.
		{"rounding-boundary", map[int]uint64{1: 85, 2: 10}, 0.9, 10, []int{1, 2}},
		// Exact hit: 90/100 is at least 90%; stop there.
		{"exact", map[int]uint64{1: 90, 2: 10}, 0.9, 10, []int{1}},
		// cutoff >= 1.0 selects every missing load.
		{"cutoff-one", map[int]uint64{1: 70, 2: 20, 3: 10}, 1.0, 10, []int{1, 2, 3}},
		{"cutoff-above-one", map[int]uint64{1: 70, 2: 20, 3: 10}, 1.5, 10, []int{1, 2, 3}},
		// cutoff <= 0 still returns the top load (never an empty set
		// while misses exist).
		{"cutoff-zero", map[int]uint64{1: 70, 2: 30}, 0, 10, []int{1}},
		// max <= 0 means uncapped.
		{"max-zero-uncapped", map[int]uint64{1: 50, 2: 30, 3: 20}, 1.0, 0, []int{1, 2, 3}},
		{"max-negative-uncapped", map[int]uint64{1: 50, 2: 30, 3: 20}, 1.0, -1, []int{1, 2, 3}},
		// A positive max still caps.
		{"max-caps", map[int]uint64{1: 50, 2: 30, 3: 20}, 1.0, 2, []int{1, 2}},
		// Ranking: miss cycles descending, ID ascending on ties.
		{"tie-by-id", map[int]uint64{9: 40, 3: 40, 5: 20}, 1.0, 10, []int{3, 9, 5}},
		// Zero-miss loads never qualify; empty profile yields nil.
		{"skips-zero-miss", map[int]uint64{1: 10, 2: 0}, 1.0, 10, []int{1}},
		{"empty", map[int]uint64{}, 0.9, 10, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := idsString(synthProfile(tc.miss).DelinquentLoads(tc.cutoff, tc.max))
			want := idsString(tc.want)
			if got != want {
				t.Errorf("DelinquentLoads(%v, %d) = %s, want %s", tc.cutoff, tc.max, got, want)
			}
		})
	}
}

func idsString(ids []int) string { return fmt.Sprint(ids) }

func TestRebaseRestrictsToProgramLoads(t *testing.T) {
	p := loopProgram(4, 500)
	cfg := tinyConfig()
	pr, err := Collect(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	img, err := ir.Link(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.New(cfg, img).Run()
	if err != nil {
		t.Fatal(err)
	}
	rb := pr.Rebase(res, p)
	if len(rb.Loads) == 0 || rb.TotalMissCycles == 0 {
		t.Fatalf("rebased profile empty: %d loads, %d miss cycles", len(rb.Loads), rb.TotalMissCycles)
	}
	var sum uint64
	for id, s := range rb.Loads {
		if _, _, in := p.InstrByID(id); in == nil || in.Op != ir.OpLd {
			t.Errorf("rebased profile holds non-load ID %d", id)
		}
		sum += s.MissCycles
	}
	if sum != rb.TotalMissCycles {
		t.Errorf("TotalMissCycles %d != sum %d", rb.TotalMissCycles, sum)
	}
	// Same program, same config: the harvest must agree with Collect's own
	// cache profile, and the carried-over frequency maps are shared.
	if rb.TotalMissCycles != pr.TotalMissCycles {
		t.Errorf("rebased total %d != collected total %d", rb.TotalMissCycles, pr.TotalMissCycles)
	}
	if len(rb.InstrFreq) != len(pr.InstrFreq) || len(rb.BlockFreq) != len(pr.BlockFreq) {
		t.Error("frequency maps not carried over")
	}
	if rb.Cycles != res.Cycles {
		t.Errorf("rebased Cycles %d != run cycles %d", rb.Cycles, res.Cycles)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	p := loopProgram(5, 50)
	pr, err := Collect(p, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles != pr.Cycles || got.TotalMissCycles != pr.TotalMissCycles {
		t.Fatalf("round trip changed totals: %+v vs %+v", got.Cycles, pr.Cycles)
	}
	if len(got.Loads) != len(pr.Loads) || len(got.BlockFreq) != len(pr.BlockFreq) {
		t.Fatal("round trip dropped entries")
	}
	for id, s := range pr.Loads {
		g := got.Loads[id]
		if g == nil || g.MissCycles != s.MissCycles || g.Accesses != s.Accesses {
			t.Fatalf("load %d stats changed", id)
		}
	}
	d1 := pr.DelinquentLoads(0.9, 10)
	d2 := got.DelinquentLoads(0.9, 10)
	if len(d1) != len(d2) || (len(d1) > 0 && d1[0] != d2[0]) {
		t.Fatalf("delinquent sets differ: %v vs %v", d1, d2)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("{nope")); err == nil {
		t.Fatal("Load accepted malformed JSON")
	}
}

func TestLoadFillsNilMaps(t *testing.T) {
	pr, err := Load(bytes.NewBufferString("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if pr.InstrFreq == nil || pr.BlockFreq == nil || pr.Loads == nil || pr.CallEdges == nil {
		t.Fatal("Load left nil maps")
	}
}

func TestDominantCalleeDeterminism(t *testing.T) {
	pr := &Profile{CallEdges: map[int]map[string]uint64{
		7: {"b": 5, "a": 5, "c": 3},
	}}
	// Equal counts: the lexicographically first name wins, deterministically.
	for i := 0; i < 10; i++ {
		if got := pr.DominantCallee(7); got != "a" {
			t.Fatalf("DominantCallee = %q", got)
		}
	}
	if got := pr.DominantCallee(99); got != "" {
		t.Fatalf("unknown call site callee = %q", got)
	}
}

func TestProfileIDsSurviveAsmRoundTrip(t *testing.T) {
	// IDs are assigned in textual order on Parse, so a profile collected
	// against a parsed program applies to a re-parse of the same text —
	// the property the sspprof/sspgen file pipeline relies on.
	p := loopProgram(5, 50)
	text := ir.Format(p)
	p1, err := ir.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ir.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := Collect(p1, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range pr.DelinquentLoads(0.9, 10) {
		_, _, in1 := p1.InstrByID(id)
		_, _, in2 := p2.InstrByID(id)
		if in1 == nil || in2 == nil || in1.String() != in2.String() {
			t.Fatalf("ID %d resolves differently across parses: %v vs %v", id, in1, in2)
		}
	}
}
