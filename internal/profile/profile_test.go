package profile

import (
	"bytes"
	"testing"

	"ssp/internal/ir"
	"ssp/internal/sim"
)

func tinyConfig() sim.Config {
	c := sim.DefaultInOrder()
	c.Mem.L1Size = 1 << 10
	c.Mem.L2Size = 4 << 10
	c.Mem.L3Size = 16 << 10
	return c
}

// loopProgram: an outer loop of n iterations around an inner loop of m
// iterations, with a delinquent strided load in the inner loop.
func loopProgram(n, m int) *ir.Program {
	p := ir.NewProgram("main")
	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.MovI(14, 0)        // i
	e.MovI(20, 0x100000) // cursor
	outer := fb.Block("outer")
	outer.MovI(15, 0) // j
	inner := fb.Block("inner")
	inner.Ld(16, 20, 0)
	inner.AddI(20, 20, 64)
	inner.AddI(15, 15, 1)
	inner.CmpI(ir.CondLT, 6, 7, 15, int64(m))
	inner.On(6).Br("inner")
	latch := fb.Block("latch")
	latch.AddI(14, 14, 1)
	latch.CmpI(ir.CondLT, 8, 9, 14, int64(n))
	latch.On(8).Br("outer")
	done := fb.Block("done")
	done.Halt()
	return p
}

func TestCollectBlockAndInstrFreq(t *testing.T) {
	p := loopProgram(10, 20)
	pr, err := Collect(p, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := pr.BlockCount("main", "entry"); got != 1 {
		t.Errorf("entry count = %d", got)
	}
	if got := pr.BlockCount("main", "outer"); got != 10 {
		t.Errorf("outer count = %d", got)
	}
	if got := pr.BlockCount("main", "inner"); got != 200 {
		t.Errorf("inner count = %d", got)
	}
	ld := p.Funcs[0].Blocks[2].Instrs[0]
	if got := pr.Freq(ld); got != 200 {
		t.Errorf("load executed %d times", got)
	}
}

func TestLoopTripCount(t *testing.T) {
	p := loopProgram(10, 20)
	pr, err := Collect(p, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// inner loop: 200 header executions over 10 entries -> 20 trips.
	if got := pr.LoopTripCount("main.inner", 10); got != 20 {
		t.Errorf("inner trips = %v", got)
	}
	if got := pr.LoopTripCount("main.outer", 1); got != 10 {
		t.Errorf("outer trips = %v", got)
	}
	if got := pr.LoopTripCount("main.inner", 0); got != 200 {
		t.Errorf("trips with unknown entries = %v", got)
	}
	if got := pr.LoopTripCount("main.nosuch", 5); got != 1 {
		t.Errorf("unknown header trips = %v", got)
	}
}

func TestDelinquentLoadsOrderingAndCutoff(t *testing.T) {
	p := loopProgram(4, 500)
	pr, err := Collect(p, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	dels := pr.DelinquentLoads(0.9, 10)
	if len(dels) != 1 {
		t.Fatalf("dels = %v, want the single strided load", dels)
	}
	// The max cap is honored.
	if got := pr.DelinquentLoads(0.9, 0); len(got) != 0 {
		t.Errorf("max=0 returned %v", got)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	p := loopProgram(5, 50)
	pr, err := Collect(p, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles != pr.Cycles || got.TotalMissCycles != pr.TotalMissCycles {
		t.Fatalf("round trip changed totals: %+v vs %+v", got.Cycles, pr.Cycles)
	}
	if len(got.Loads) != len(pr.Loads) || len(got.BlockFreq) != len(pr.BlockFreq) {
		t.Fatal("round trip dropped entries")
	}
	for id, s := range pr.Loads {
		g := got.Loads[id]
		if g == nil || g.MissCycles != s.MissCycles || g.Accesses != s.Accesses {
			t.Fatalf("load %d stats changed", id)
		}
	}
	d1 := pr.DelinquentLoads(0.9, 10)
	d2 := got.DelinquentLoads(0.9, 10)
	if len(d1) != len(d2) || (len(d1) > 0 && d1[0] != d2[0]) {
		t.Fatalf("delinquent sets differ: %v vs %v", d1, d2)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("{nope")); err == nil {
		t.Fatal("Load accepted malformed JSON")
	}
}

func TestLoadFillsNilMaps(t *testing.T) {
	pr, err := Load(bytes.NewBufferString("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if pr.InstrFreq == nil || pr.BlockFreq == nil || pr.Loads == nil || pr.CallEdges == nil {
		t.Fatal("Load left nil maps")
	}
}

func TestDominantCalleeDeterminism(t *testing.T) {
	pr := &Profile{CallEdges: map[int]map[string]uint64{
		7: {"b": 5, "a": 5, "c": 3},
	}}
	// Equal counts: the lexicographically first name wins, deterministically.
	for i := 0; i < 10; i++ {
		if got := pr.DominantCallee(7); got != "a" {
			t.Fatalf("DominantCallee = %q", got)
		}
	}
	if got := pr.DominantCallee(99); got != "" {
		t.Fatalf("unknown call site callee = %q", got)
	}
}

func TestProfileIDsSurviveAsmRoundTrip(t *testing.T) {
	// IDs are assigned in textual order on Parse, so a profile collected
	// against a parsed program applies to a re-parse of the same text —
	// the property the sspprof/sspgen file pipeline relies on.
	p := loopProgram(5, 50)
	text := ir.Format(p)
	p1, err := ir.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ir.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := Collect(p1, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range pr.DelinquentLoads(0.9, 10) {
		_, _, in1 := p1.InstrByID(id)
		_, _, in2 := p2.InstrByID(id)
		if in1 == nil || in2 == nil || in1.String() != in2.String() {
			t.Fatalf("ID %d resolves differently across parses: %v vs %v", id, in1, in2)
		}
	}
}
