package profile

import (
	"encoding/json"
	"fmt"
	"io"

	"ssp/internal/sim/mem"
)

// Save writes the profile as JSON. Instruction IDs are stable across
// Format/Parse round trips of the same program text, so a profile collected
// by cmd/sspprof can be consumed later by cmd/sspgen — the two-pass flow of
// Figure 1.
func (pr *Profile) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(pr)
}

// Load reads a profile written by Save.
func Load(r io.Reader) (*Profile, error) {
	var pr Profile
	if err := json.NewDecoder(r).Decode(&pr); err != nil {
		return nil, fmt.Errorf("profile: decode: %w", err)
	}
	if pr.InstrFreq == nil {
		pr.InstrFreq = map[int]uint64{}
	}
	if pr.BlockFreq == nil {
		pr.BlockFreq = map[string]uint64{}
	}
	if pr.Loads == nil {
		pr.Loads = map[int]*mem.LoadStat{}
	}
	if pr.CallEdges == nil {
		pr.CallEdges = map[int]map[string]uint64{}
	}
	return &pr, nil
}
