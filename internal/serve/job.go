package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"ssp/internal/ir"
	"ssp/internal/sim"
	"ssp/internal/ssp"
	"ssp/internal/tune"
	"ssp/internal/workloads"
)

// JobSpec is the wire format of one adapt+simulate job. Exactly one of Bench
// (a built-in benchmark) and Source (a program in the tool's assembly syntax)
// must be set.
type JobSpec struct {
	// Bench names a built-in benchmark kernel (workloads.All).
	Bench string `json:"bench,omitempty"`
	// Source is an assembly program (the ir syntax). Source jobs carry no
	// expected checksum, so the answer-verification step is skipped; every
	// other gate (watchdog, conservation) still applies.
	Source string `json:"source,omitempty"`
	// Model is the machine model: "in-order" (or "io") or "ooo".
	Model string `json:"model"`
	// Variant selects the binary treatment: "base" (default; simulate the
	// program as-is) or "ssp" (profile, adapt with the post-pass tool,
	// simulate the enhanced binary).
	Variant string `json:"variant,omitempty"`
	// Scale selects experiment sizing: "test" (default) or "paper". It
	// picks the benchmark working-set size and the memory-system scale,
	// exactly like exp.Scale.
	Scale string `json:"scale,omitempty"`
	// Options tunes the adaptation: a possibly-partial ssp.Options object
	// layered over ssp.DefaultOptions, so {"ChainUnroll": 2} changes one
	// knob without zeroing the rest. Unknown option names are rejected.
	// Only meaningful with Variant "ssp".
	Options json.RawMessage `json:"options,omitempty"`
	// TimeoutMS bounds the job's wall time; 0 uses the server default.
	// Deliberately excluded from the cache key: a result is the same
	// result no matter how long the client was willing to wait for it.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Tune switches the job into closed-loop tuning mode: instead of one
	// adapt+simulate, the server runs the internal/tune search (adaptive
	// re-profiling over an options grid) and returns the tune.Result. Tune
	// jobs require Bench (the tuner runs on the experiment suite), take no
	// Variant or Options (the grid supplies the options), and cannot
	// stream. The mode is opt-in per server (Config.EnableTune): a tune
	// search costs many simulations, not one.
	Tune *TuneSpec `json:"tune,omitempty"`
}

// TuneSpec parameterizes a tune-mode job. Zero values take the tuner's
// defaults, which are applied during normalization so that an empty spec and
// an explicitly-default spec share one cache key.
type TuneSpec struct {
	// Rounds is the max number of re-profiling rounds per candidate after
	// the one-shot round 0 (tune.Params.MaxRounds). 0 means 3.
	Rounds int `json:"rounds,omitempty"`
	// Epsilon is the relative speedup-delta convergence threshold
	// (tune.Params.Epsilon). 0 means 0.02.
	Epsilon float64 `json:"epsilon,omitempty"`
	// Grid selects the search grid: "full" (default) or "quick".
	Grid string `json:"grid,omitempty"`
}

// job is a validated, canonicalized JobSpec: defaults applied, model names
// normalized, options concretized. Everything in it except timeout feeds the
// cache key.
type job struct {
	Bench   string
	Source  string
	Model   sim.Model
	Variant string
	Test    bool // test scale (vs paper scale)
	Options ssp.Options
	Tune    *tuneJob // non-nil switches the job into tuning mode

	timeout time.Duration
}

// tuneJob is a TuneSpec with defaults applied — the canonical form that
// feeds the cache key.
type tuneJob struct {
	Rounds  int
	Epsilon float64
	Grid    string
}

const (
	varBase = "base"
	varSSP  = "ssp"
)

// normalize validates a JobSpec and resolves it to its canonical form.
// Errors from here are client errors (HTTP 400).
func (s *JobSpec) normalize(defaultTimeout time.Duration) (job, error) {
	var j job
	switch {
	case s.Bench != "" && s.Source != "":
		return j, fmt.Errorf("specify either bench or source, not both")
	case s.Bench != "":
		if _, err := workloads.ByName(s.Bench); err != nil {
			return j, err
		}
		j.Bench = s.Bench
	case s.Source != "":
		if _, err := ir.Parse(s.Source); err != nil {
			return j, fmt.Errorf("source: %w", err)
		}
		j.Source = s.Source
	default:
		return j, fmt.Errorf("specify bench or source")
	}
	switch s.Model {
	case "in-order", "io":
		j.Model = sim.InOrder
	case "ooo", "out-of-order":
		j.Model = sim.OOO
	default:
		return j, fmt.Errorf("unknown model %q (want in-order or ooo)", s.Model)
	}
	switch s.Variant {
	case "", varBase:
		j.Variant = varBase
	case varSSP:
		j.Variant = varSSP
	default:
		return j, fmt.Errorf("unknown variant %q (want base or ssp)", s.Variant)
	}
	switch s.Scale {
	case "", "test":
		j.Test = true
	case "paper":
		j.Test = false
	default:
		return j, fmt.Errorf("unknown scale %q (want test or paper)", s.Scale)
	}
	j.Options = ssp.DefaultOptions()
	if len(s.Options) > 0 && string(s.Options) != "null" {
		if j.Variant != varSSP {
			return j, fmt.Errorf("options are only meaningful with variant %q", varSSP)
		}
		dec := json.NewDecoder(bytes.NewReader(s.Options))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&j.Options); err != nil {
			return j, fmt.Errorf("options: %w", err)
		}
	}
	if s.Tune != nil {
		switch {
		case j.Bench == "":
			return j, fmt.Errorf("tune jobs require a built-in benchmark (bench), not source")
		case s.Variant != "":
			return j, fmt.Errorf("tune jobs take no variant (the search covers the ssp treatment)")
		case len(s.Options) > 0 && string(s.Options) != "null":
			return j, fmt.Errorf("tune jobs take no options (the grid supplies them)")
		}
		t := tuneJob{Rounds: s.Tune.Rounds, Epsilon: s.Tune.Epsilon, Grid: s.Tune.Grid}
		if t.Rounds < 0 {
			return j, fmt.Errorf("negative tune rounds")
		}
		if t.Rounds == 0 {
			t.Rounds = 3
		}
		if t.Epsilon < 0 {
			return j, fmt.Errorf("negative tune epsilon")
		}
		if t.Epsilon == 0 {
			t.Epsilon = 0.02
		}
		switch t.Grid {
		case "":
			t.Grid = "full"
		case "full", "quick":
		default:
			return j, fmt.Errorf("unknown tune grid %q (want full or quick)", t.Grid)
		}
		j.Tune = &t
	}
	if s.TimeoutMS < 0 {
		return j, fmt.Errorf("negative timeout_ms")
	}
	j.timeout = defaultTimeout
	if s.TimeoutMS > 0 {
		j.timeout = time.Duration(s.TimeoutMS) * time.Millisecond
	}
	return j, nil
}

// key is the job's content address: the hex SHA-256 of its canonical form.
// Identical work — same program, same scale, same model, same treatment,
// same options — hashes identically no matter how the client phrased the
// request, so duplicates coalesce and repeats hit the cache.
func (j job) key() string {
	canon := struct {
		Bench   string
		Source  string
		Model   string
		Variant string
		Test    bool
		Options ssp.Options
		// Tune is omitted when nil so every pre-existing (non-tune) job
		// keeps the key it had before tuning mode existed.
		Tune *tuneJob `json:",omitempty"`
	}{j.Bench, j.Source, j.Model.String(), j.Variant, j.Test, j.Options, j.Tune}
	data, err := json.Marshal(canon)
	if err != nil {
		// Every field is a plain value; Marshal cannot fail.
		panic(err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// progKey identifies a built+profiled program: which program, at which scale.
// Variants and options are absent — every treatment of a program shares one
// build and one profiling run.
type progKey struct {
	Bench  string
	Source string
	Test   bool
}

// buildKey identifies one adapted, linked, predecoded binary. Model is
// absent: the predecoded image is config-independent, so the in-order and
// OOO cells share it (same sharing exp.Suite exploits).
type buildKey struct {
	progKey
	Variant string
	Options ssp.Options
}

// JobResult is the cached, client-visible outcome of a job: the stat vector
// the paper's figures are computed from. Field names match the golden-stats
// baseline (internal/exp/testdata/golden_stats.json) so results can be
// compared against it byte-for-byte.
type JobResult struct {
	Cycles      int64
	Breakdown   [sim.NumCategories]int64
	MainInstrs  int64
	SpecInstrs  int64
	Spawns      int64
	ChkTaken    int64
	Mispredicts int64

	MemAccesses uint64
	MemL1Hits   uint64
	MissCycles  uint64
	TLBMisses   uint64

	// Slices is the adaptation's p-slice count (Table 2); zero for base
	// variants, which run no tool.
	Slices int `json:",omitempty"`
}

func toJobResult(res *sim.Result, slices int) *JobResult {
	return &JobResult{
		Cycles:      res.Cycles,
		Breakdown:   res.Breakdown,
		MainInstrs:  res.MainInstrs,
		SpecInstrs:  res.SpecInstrs,
		Spawns:      res.Spawns,
		ChkTaken:    res.ChkTaken,
		Mispredicts: res.Mispredicts,
		MemAccesses: res.Hier.Totals.Accesses,
		MemL1Hits:   res.Hier.Totals.Hits[0][0],
		MissCycles:  res.Hier.Totals.MissCycles,
		TLBMisses:   res.Hier.Totals.TLBMisses,
		Slices:      slices,
	}
}

// JobResponse is the envelope around a completed job: the result plus
// per-request metadata (the content key, whether this request was served
// from cache, and how long it waited).
type JobResponse struct {
	Key    string  `json:"key"`
	Cached bool    `json:"cached"`
	WallMS float64 `json:"wall_ms"`
	// Result is the stat vector of a plain adapt+simulate job; nil for
	// tune jobs.
	Result *JobResult `json:"result,omitempty"`
	// Tune is the search outcome of a tune-mode job: best configuration,
	// per-round trajectories, recovered headroom. Nil for plain jobs.
	Tune *tune.Result `json:"tune,omitempty"`
}
