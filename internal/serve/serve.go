// Package serve is the serving layer over the adapt+simulate pipeline: a
// long-running HTTP service that accepts jobs (a built-in benchmark or a
// source program, a machine model, a treatment, tool options), runs the same
// profile → adapt → simulate pipeline the experiment suite runs, and
// memoizes results behind content-addressed singleflight cells so identical
// jobs — concurrent or repeated — cost one simulation.
//
// The server shares its building blocks with internal/exp rather than
// wrapping it: flight.Cell for coalescing and memoization, sim.Pool for
// machine reuse (clean completions only), and the exact machine
// configuration the suite uses, so a served result is byte-identical to the
// corresponding matrix cell in the golden-stats baseline.
//
// Capacity is explicit: Workers simulations run at once, Queue more may wait
// admitted, and everything beyond that is rejected immediately with HTTP 429
// rather than queued without bound. Cache hits bypass the worker pool
// entirely. Drain (SIGTERM in cmd/sspserved) stops admission and waits for
// the in-flight tail.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ssp/internal/check"
	"ssp/internal/exp"
	"ssp/internal/flight"
	"ssp/internal/ir"
	"ssp/internal/profile"
	"ssp/internal/sim"
	"ssp/internal/sim/decode"
	"ssp/internal/ssp"
	"ssp/internal/tune"
	"ssp/internal/workloads"
)

// ErrBusy is returned (as HTTP 429) when the server is at capacity: every
// worker busy and the admission queue full.
var ErrBusy = errors.New("serve: at capacity")

// errDraining is returned (as HTTP 503) once Drain has begun.
var errDraining = errors.New("serve: draining")

// Config sizes a Server.
type Config struct {
	// Workers is the number of simulations allowed to run concurrently.
	// 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Queue is how many admitted jobs may wait for a worker beyond the
	// ones running; past Workers+Queue in flight, requests are rejected
	// with 429. 0 means 4×Workers.
	Queue int
	// DefaultTimeout bounds jobs that do not set timeout_ms. 0 means 120s.
	DefaultTimeout time.Duration
	// MaxBodyBytes caps the request body (source programs can be large
	// but not unbounded). 0 means 4 MiB.
	MaxBodyBytes int64
	// EnableTune admits tune-mode jobs (JobSpec.Tune): closed-loop
	// searches that cost many simulations each. Off by default; without
	// it tune jobs are rejected with 403.
	EnableTune bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Queue <= 0 {
		c.Queue = 4 * c.Workers
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 120 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
	return c
}

// progSet is one program built and profiled at one scale, shared by every
// variant, option set, and model over it.
type progSet struct {
	orig *ir.Program
	// want is the expected final checksum; check is false for source
	// programs, which carry no expected value.
	want  uint64
	check bool
	prof  *profile.Profile
}

// build is one adapted, linked, predecoded binary.
type build struct {
	dp     *decode.Program
	slices int
}

// runCell is one job key's memoization slot plus the live cycle counter its
// SSE streams read. The counter is shared: coalesced requests all watch the
// one simulation that is actually running.
type runCell struct {
	cell   flight.Cell[*JobResult]
	cycles atomic.Int64
}

// Server is the HTTP handler. Construct with New; the zero value is not
// usable.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	start time.Time

	// sem is the worker pool: one token per concurrently running
	// simulation. Only cache misses acquire it; hits and coalesced
	// waiters never occupy a slot.
	sem chan struct{}

	inflight atomic.Int64
	draining atomic.Bool
	// admitMu serializes request admission (wg.Add) against Drain
	// (draining=true then wg.Wait), closing the window where a request
	// has passed the draining check but not yet registered itself.
	admitMu sync.Mutex
	wg      sync.WaitGroup

	mu     sync.Mutex
	progs  map[progKey]*flight.Cell[*progSet]
	builds map[buildKey]*flight.Cell[*build]
	runs   map[string]*runCell
	// tunes memoizes tune-mode jobs by the same content key scheme; the
	// key covers the tune parameters, so searches with different rounds,
	// epsilon, or grid never share a cell.
	tunes map[string]*flight.Cell[*tune.Result]
	// tuners holds one lazily-built closed-loop tuner per scale (keyed by
	// "is test scale"). Each owns its own exp.Suite, whose caches the
	// tuner's repeated adapt+simulate rounds coalesce through.
	tuners map[bool]*tune.Tuner

	pool sim.Pool

	requests atomic.Int64 // jobs accepted for processing
	hits     atomic.Int64 // served without running a simulation
	misses   atomic.Int64 // ran the pipeline
	failures atomic.Int64 // jobs that ended in an error
	rejected atomic.Int64 // 429s + 503s (capacity and drain)
	unsafe   atomic.Int64 // 422s (source IR failed the safety verifier)
}

// New returns a ready-to-serve Server.
func New(cfg Config) *Server {
	s := &Server{
		cfg:    cfg.withDefaults(),
		start:  time.Now(),
		progs:  make(map[progKey]*flight.Cell[*progSet]),
		builds: make(map[buildKey]*flight.Cell[*build]),
		runs:   make(map[string]*runCell),
		tunes:  make(map[string]*flight.Cell[*tune.Result]),
		tuners: make(map[bool]*tune.Tuner),
	}
	s.sem = make(chan struct{}, s.cfg.Workers)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /jobs", s.handleJob)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statz", s.handleStatz)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Drain stops admitting jobs (healthz goes unhealthy, new jobs get 503) and
// waits for every in-flight job to finish or for ctx to expire.
func (s *Server) Drain(ctx context.Context) error {
	s.admitMu.Lock()
	s.draining.Store(true)
	s.admitMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}

// Stats is the /statz payload.
type Stats struct {
	UptimeSec float64       `json:"uptime_sec"`
	Requests  int64         `json:"requests"`
	Hits      int64         `json:"hits"`
	Misses    int64         `json:"misses"`
	Failures  int64         `json:"failures"`
	Rejected  int64         `json:"rejected"`
	Unsafe    int64         `json:"unsafe"`
	InFlight  int64         `json:"in_flight"`
	Draining  bool          `json:"draining"`
	Cells     int           `json:"cells"`
	Pool      sim.PoolStats `json:"pool"`
}

// Snapshot returns the server's counters (the /statz payload, for in-process
// callers like the load harness).
func (s *Server) Snapshot() Stats {
	s.mu.Lock()
	cells := len(s.runs) + len(s.tunes)
	s.mu.Unlock()
	return Stats{
		UptimeSec: time.Since(s.start).Seconds(),
		Requests:  s.requests.Load(),
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Failures:  s.failures.Load(),
		Rejected:  s.rejected.Load(),
		Unsafe:    s.unsafe.Load(),
		InFlight:  s.inflight.Load(),
		Draining:  s.draining.Load(),
		Cells:     cells,
		Pool:      s.pool.Stats(),
	}
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Snapshot())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.admitMu.Lock()
	if s.draining.Load() {
		s.admitMu.Unlock()
		s.rejected.Add(1)
		http.Error(w, errDraining.Error(), http.StatusServiceUnavailable)
		return
	}
	s.wg.Add(1)
	s.admitMu.Unlock()
	defer s.wg.Done()

	var spec JobSpec
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&spec); err != nil {
		http.Error(w, "bad job: "+err.Error(), http.StatusBadRequest)
		return
	}
	j, err := spec.normalize(s.cfg.DefaultTimeout)
	if err != nil {
		http.Error(w, "bad job: "+err.Error(), http.StatusBadRequest)
		return
	}
	if j.Tune != nil {
		if !s.cfg.EnableTune {
			s.rejected.Add(1)
			http.Error(w, "tune jobs are disabled on this server (start sspserved with -tune)",
				http.StatusForbidden)
			return
		}
		if wantsSSE(r) {
			http.Error(w, "bad job: tune jobs do not support streaming", http.StatusBadRequest)
			return
		}
	}

	// Safety gate: user-submitted IR may carry hand-written slice regions,
	// and the machines will happily spawn whatever is attached. Any slice
	// in a source job must pass the speculation-safety verifier at the
	// ceiling of the machine the job would run on; violations are 422
	// with the machine-readable report, before the job can reach a cache
	// cell or a worker (unsafe programs are never cached, so a later
	// fixed submission is a fresh key and a fresh verification).
	if j.Source != "" {
		if rep, err := s.vetSource(j); err != nil {
			s.unsafe.Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusUnprocessableEntity)
			json.NewEncoder(w).Encode(UnsafeResponse{Error: err.Error(), Safety: rep})
			return
		}
	}

	// Admission: bound the total number of jobs in the building, counting
	// both running and queued. Everything past that is load the server
	// should not buffer; the client retries or backs off.
	if n := s.inflight.Add(1); n > int64(s.cfg.Workers+s.cfg.Queue) {
		s.inflight.Add(-1)
		s.rejected.Add(1)
		http.Error(w, ErrBusy.Error(), http.StatusTooManyRequests)
		return
	}
	defer s.inflight.Add(-1)
	s.requests.Add(1)

	ctx, cancel := context.WithTimeout(r.Context(), j.timeout)
	defer cancel()

	if j.Tune != nil {
		start := time.Now()
		res, hit, err := s.runTune(ctx, j)
		if err != nil {
			http.Error(w, err.Error(), statusOf(err))
			return
		}
		writeJSON(w, JobResponse{
			Key:    j.key(),
			Cached: hit,
			WallMS: float64(time.Since(start)) / float64(time.Millisecond),
			Tune:   res,
		})
		return
	}

	rc := s.cellFor(j.key())
	if wantsSSE(r) {
		s.streamJob(ctx, w, j, rc)
		return
	}
	start := time.Now()
	res, hit, err := s.runJob(ctx, j, rc)
	if err != nil {
		http.Error(w, err.Error(), statusOf(err))
		return
	}
	writeJSON(w, JobResponse{
		Key:    j.key(),
		Cached: hit,
		WallMS: float64(time.Since(start)) / float64(time.Millisecond),
		Result: res,
	})
}

// runTune resolves a tune-mode job through its memoization cell. The job
// holds one worker slot for admission accounting; the search's own
// simulations run on the tuner's experiment suite, whose worker pool is
// sized like the server's.
func (s *Server) runTune(ctx context.Context, j job) (res *tune.Result, hit bool, err error) {
	s.mu.Lock()
	c, ok := s.tunes[j.key()]
	if !ok {
		c = new(flight.Cell[*tune.Result])
		s.tunes[j.key()] = c
	}
	s.mu.Unlock()
	ran := false
	res, err = c.Do(ctx, func(ctx context.Context) (*tune.Result, error) {
		ran = true
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		grid := tune.FullGrid()
		if j.Tune.Grid == "quick" {
			grid = tune.QuickGrid()
		}
		params := tune.Params{MaxRounds: j.Tune.Rounds, Epsilon: j.Tune.Epsilon}
		return s.tunerFor(j.Test).Tune(ctx, j.Bench, j.Model, params, grid)
	})
	if ran {
		s.misses.Add(1)
	} else {
		s.hits.Add(1)
	}
	if err != nil {
		s.failures.Add(1)
		return nil, false, err
	}
	return res, !ran, nil
}

// tunerFor returns the closed-loop tuner for one scale, building it (and its
// experiment suite) on first use.
func (s *Server) tunerFor(test bool) *tune.Tuner {
	s.mu.Lock()
	defer s.mu.Unlock()
	tn, ok := s.tuners[test]
	if !ok {
		scale := exp.ScalePaper
		if test {
			scale = exp.ScaleTest
		}
		suite := exp.NewSuite(scale)
		suite.Workers = s.cfg.Workers
		tn = tune.New(suite)
		s.tuners[test] = tn
	}
	return tn
}

// runJob resolves one admitted job through its memoization cell, reporting
// whether this request was served without running a simulation (a cached
// outcome or a coalesced ride on another request's run).
func (s *Server) runJob(ctx context.Context, j job, rc *runCell) (res *JobResult, hit bool, err error) {
	ran := false
	res, err = rc.cell.Do(ctx, func(ctx context.Context) (*JobResult, error) {
		ran = true
		// Only the actual runner needs a worker slot; waiting here is the
		// admission queue.
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return s.compute(ctx, j, &rc.cycles)
	})
	if ran {
		s.misses.Add(1)
	} else {
		s.hits.Add(1)
	}
	if err != nil {
		s.failures.Add(1)
		return nil, false, err
	}
	return res, !ran, nil
}

func (s *Server) cellFor(key string) *runCell {
	s.mu.Lock()
	defer s.mu.Unlock()
	rc, ok := s.runs[key]
	if !ok {
		rc = new(runCell)
		s.runs[key] = rc
	}
	return rc
}

// machineConfig mirrors exp.Suite.machineConfig exactly — same defaults,
// same tiny-memory scaling, same watchdog, fast-forward on — so served
// results are byte-identical to the experiment matrix and the golden-stats
// baseline.
func machineConfig(model sim.Model, test bool) sim.Config {
	var c sim.Config
	if model == sim.InOrder {
		c = sim.DefaultInOrder()
	} else {
		c = sim.DefaultOOO()
	}
	if test {
		c.UseTinyMem()
	}
	c.MaxCycles = 4_000_000_000
	c.FastForward = true
	return c
}

// progSetFor builds and profiles the job's program once per (program, scale);
// every option set, variant, and model over it shares the result.
func (s *Server) progSetFor(ctx context.Context, j job) (*progSet, error) {
	key := progKey{j.Bench, j.Source, j.Test}
	s.mu.Lock()
	c, ok := s.progs[key]
	if !ok {
		c = new(flight.Cell[*progSet])
		s.progs[key] = c
	}
	s.mu.Unlock()
	return c.Do(ctx, func(ctx context.Context) (*progSet, error) {
		ps := new(progSet)
		if j.Bench != "" {
			spec, err := workloads.ByName(j.Bench)
			if err != nil {
				return nil, err
			}
			scale := spec.Scale
			if j.Test {
				scale = spec.TestScale
			}
			ps.orig, ps.want = spec.Build(scale)
			ps.check = true
		} else {
			p, err := ir.Parse(j.Source)
			if err != nil {
				return nil, err
			}
			ps.orig = p
		}
		// Profile on the in-order model at the job's scale, like the
		// experiment suite: one profiling run feeds every treatment.
		prof, err := profile.CollectContext(ctx, ps.orig, machineConfig(sim.InOrder, j.Test))
		if err != nil {
			return nil, fmt.Errorf("profile: %w", err)
		}
		ps.prof = prof
		return ps, nil
	})
}

// buildFor adapts (for ssp variants), links, and predecodes the job's binary
// once per (program, scale, variant, options); both machine models share it.
func (s *Server) buildFor(ctx context.Context, j job, ps *progSet) (*build, error) {
	key := buildKey{progKey{j.Bench, j.Source, j.Test}, j.Variant, j.Options}
	s.mu.Lock()
	c, ok := s.builds[key]
	if !ok {
		c = new(flight.Cell[*build])
		s.builds[key] = c
	}
	s.mu.Unlock()
	return c.Do(ctx, func(ctx context.Context) (*build, error) {
		p := ps.orig
		b := new(build)
		if j.Variant == varSSP {
			label := j.Bench
			if label == "" {
				label = "source"
			}
			adapted, rep, err := ssp.Adapt(p, ps.prof, j.Options, label)
			if err != nil {
				return nil, fmt.Errorf("adapt: %w", err)
			}
			p, b.slices = adapted, rep.NumSlices()
		}
		img, err := ir.Link(p)
		if err != nil {
			return nil, err
		}
		b.dp = sim.Predecode(img)
		return b, nil
	})
}

// compute runs the full pipeline for one job: build+profile (cached),
// adapt+predecode (cached), then simulate on a pooled machine with the
// progress hook installed. Machine lifecycle follows the suite's discipline:
// only a clean, verified completion returns its machine to the pool; every
// other exit — error, cancellation, watchdog, checksum mismatch, panic —
// discards it. A panic (a simulator bug, tripped by one job's program) is
// recovered into that job's error instead of taking the server down.
func (s *Server) compute(ctx context.Context, j job, cycles *atomic.Int64) (res *JobResult, err error) {
	ps, err := s.progSetFor(ctx, j)
	if err != nil {
		return nil, err
	}
	b, err := s.buildFor(ctx, j, ps)
	if err != nil {
		return nil, err
	}
	m := s.pool.Get(machineConfig(j.Model, j.Test), b.dp)
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("panic during simulation: %v", r)
		}
	}()
	// ProgressHooks keeps the default accounting bit-for-bit (the result
	// stays cacheable and golden-comparable) while exposing the live cycle
	// count to this job's SSE streams.
	m.SetCycleHooks(sim.ProgressHooks{C: cycles})
	r, err := m.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	if r.TimedOut {
		return nil, fmt.Errorf("watchdog expired after %d cycles", r.Cycles)
	}
	if ps.check {
		if got := m.Mem.Load(workloads.ResultAddr); got != ps.want {
			return nil, fmt.Errorf("checksum %d, want %d", got, ps.want)
		}
	}
	s.pool.Put(m)
	if err := check.Conservation(r); err != nil {
		return nil, err
	}
	return toJobResult(r, b.slices), nil
}

// UnsafeResponse is the HTTP 422 payload for source jobs whose IR fails the
// speculation-safety verifier: the first violation as a message plus the
// full machine-readable report (per-slice certificates and every violation).
type UnsafeResponse struct {
	Error  string            `json:"error"`
	Safety *ssp.SafetyReport `json:"safety"`
}

// vetSource statically verifies user-submitted IR before admission: any
// slice regions it carries must be provably bounded and state-isolated at
// the MaxSpecInstrs ceiling of the machine the job would run on. Programs
// without slices pass trivially. The report is returned either way so the
// 422 path can hand it to the client.
func (s *Server) vetSource(j job) (*ssp.SafetyReport, error) {
	p, err := ir.Parse(j.Source) // normalize already proved it parses
	if err != nil {
		return nil, err
	}
	rep := ssp.AnalyzeSafety(p, machineConfig(j.Model, j.Test).MaxSpecInstrs)
	return rep, rep.Err()
}

// statusOf maps a job error to its HTTP status.
func statusOf(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the status is for the log's benefit.
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrBusy):
		return http.StatusTooManyRequests
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
