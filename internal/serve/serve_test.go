package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ssp/internal/exp"
	"ssp/internal/handtuned"
	"ssp/internal/ir"
	"ssp/internal/sim"
	"ssp/internal/ssp"
	"ssp/internal/workloads"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// post submits a job and returns the status code and decoded response (or
// the error body when the status is not 200).
func post(t *testing.T, ts *httptest.Server, spec JobSpec) (int, *JobResponse, string) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var sb strings.Builder
		if _, err := fmt.Fprint(&sb, readAll(t, resp)); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, nil, strings.TrimSpace(sb.String())
	}
	var jr JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, &jr, ""
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestGoldenEquality: a served result must be byte-identical to the same
// cell computed by the experiment suite — the property that makes the
// serving layer an experiment cache rather than a second implementation.
func TestGoldenEquality(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	suite := exp.NewSuite(exp.ScaleTest)
	for _, variant := range []string{"base", "ssp"} {
		code, jr, msg := post(t, ts, JobSpec{Bench: "mcf", Model: "in-order", Variant: variant})
		if code != http.StatusOK {
			t.Fatalf("mcf/%s: HTTP %d: %s", variant, code, msg)
		}
		want, err := suite.Run("mcf", sim.InOrder, exp.Variant(variant))
		if err != nil {
			t.Fatal(err)
		}
		got := jr.Result
		if got.Cycles != want.Cycles || got.Breakdown != want.Breakdown ||
			got.MainInstrs != want.MainInstrs || got.SpecInstrs != want.SpecInstrs ||
			got.Spawns != want.Spawns || got.ChkTaken != want.ChkTaken ||
			got.Mispredicts != want.Mispredicts ||
			got.MemAccesses != want.Hier.Totals.Accesses ||
			got.MemL1Hits != want.Hier.Totals.Hits[0][0] ||
			got.MissCycles != want.Hier.Totals.MissCycles ||
			got.TLBMisses != want.Hier.Totals.TLBMisses {
			t.Errorf("mcf/%s: served result diverged from the suite:\n got %+v\nwant cycles=%d", variant, got, want.Cycles)
		}
		if variant == "ssp" && got.Slices == 0 {
			t.Errorf("ssp job reported zero slices")
		}
	}
}

// TestSourceJob: a job submitted as assembly source must simulate exactly
// like the same program submitted as a built-in benchmark (minus the
// checksum verification, which source jobs have no expected value for).
func TestSourceJob(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := workloads.Mcf()
	p, _ := spec.Build(spec.TestScale)
	code, src, msg := post(t, ts, JobSpec{Source: ir.Format(p), Model: "ooo"})
	if code != http.StatusOK {
		t.Fatalf("source job: HTTP %d: %s", code, msg)
	}
	code, bench, msg := post(t, ts, JobSpec{Bench: "mcf", Model: "ooo"})
	if code != http.StatusOK {
		t.Fatalf("bench job: HTTP %d: %s", code, msg)
	}
	if *src.Result != *bench.Result {
		t.Errorf("source job diverged from the identical bench job:\n got %+v\nwant %+v", src.Result, bench.Result)
	}
}

// TestUnsafeSourceRejected: user-submitted IR whose slice regions fail the
// speculation-safety verifier is a 422 with the machine-readable report —
// every time, because rejected programs never enter a cache cell. Safe
// slice-bearing IR (a hand adaptation) still passes the gate.
func TestUnsafeSourceRejected(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	spec := workloads.Mcf()
	orig, _ := spec.Build(spec.TestScale)
	safe, err := handtuned.Adapt("mcf", orig)
	if err != nil {
		t.Fatal(err)
	}
	unsafeP, ok := ssp.InjectUnsafe(safe, ssp.SafetyStore)
	if !ok {
		t.Fatal("hand-adapted mcf has no slice to corrupt")
	}
	job := JobSpec{Source: ir.Format(unsafeP), Model: "in-order"}
	for round := 0; round < 2; round++ {
		code, _, msg := post(t, ts, job)
		if code != http.StatusUnprocessableEntity {
			t.Fatalf("round %d: HTTP %d (%s), want 422", round, code, msg)
		}
		var ur UnsafeResponse
		if err := json.Unmarshal([]byte(msg), &ur); err != nil {
			t.Fatalf("round %d: 422 body is not an UnsafeResponse: %v\n%s", round, err, msg)
		}
		if ur.Safety == nil || len(ur.Safety.Violations) == 0 {
			t.Fatalf("round %d: 422 response carries no safety report: %s", round, msg)
		}
		if got := ur.Safety.Violations[0].Class; got != ssp.SafetyStore {
			t.Errorf("round %d: violation class %q, want %q", round, got, ssp.SafetyStore)
		}
		if !strings.Contains(ur.Error, string(ssp.SafetyStore)) {
			t.Errorf("round %d: error %q does not name the class", round, ur.Error)
		}
	}
	st := s.Snapshot()
	if st.Unsafe != 2 {
		t.Errorf("unsafe counter = %d, want 2 (both submissions verified, neither cached)", st.Unsafe)
	}
	if st.Cells != 0 || st.Requests != 0 {
		t.Errorf("unsafe job leaked into the pipeline: cells=%d requests=%d, want 0/0", st.Cells, st.Requests)
	}
	// The fixed (safe) program passes the same gate and simulates.
	code, jr, msg := post(t, ts, JobSpec{Source: ir.Format(safe), Model: "in-order"})
	if code != http.StatusOK {
		t.Fatalf("safe hand-adapted source: HTTP %d: %s", code, msg)
	}
	if jr.Result.Spawns == 0 {
		t.Errorf("hand-adapted source ran but spawned no speculative threads")
	}
}

// TestCacheHitAndCoalesce: the second identical job is a cache hit, and a
// concurrent burst on a cold key runs exactly one simulation.
func TestCacheHitAndCoalesce(t *testing.T) {
	s, ts := newTestServer(t, Config{Queue: 64})
	spec := JobSpec{Bench: "treeadd.df", Model: "in-order", Variant: "base"}

	const burst = 16
	var wg sync.WaitGroup
	codes := make([]int, burst)
	cached := make([]bool, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, jr, _ := post(t, ts, spec)
			codes[i] = code
			if jr != nil {
				cached[i] = jr.Cached
			}
		}(i)
	}
	wg.Wait()
	misses := 0
	for i := 0; i < burst; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("burst request %d: HTTP %d", i, codes[i])
		}
		if !cached[i] {
			misses++
		}
	}
	if misses != 1 {
		t.Errorf("burst of %d identical jobs ran %d simulations, want 1", burst, misses)
	}
	if st := s.Snapshot(); st.Misses != 1 || st.Hits != burst-1 {
		t.Errorf("statz after burst: misses=%d hits=%d, want 1/%d", st.Misses, st.Hits, burst-1)
	}

	code, jr, _ := post(t, ts, spec)
	if code != http.StatusOK || !jr.Cached {
		t.Errorf("repeat job: code=%d cached=%v, want 200/true", code, jr.Cached)
	}
}

// TestBackpressure: with every worker slot and queue position occupied, the
// next job is rejected immediately with 429; once capacity frees up the same
// job succeeds (the rejection was never cached).
func TestBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Queue: 1})

	// Occupy the single worker slot from the outside so admitted jobs
	// queue deterministically.
	s.sem <- struct{}{}

	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			code, _, _ := post(t, ts, JobSpec{Bench: "mst", Model: "in-order"})
			results <- code
		}()
	}
	// Wait until both are admitted (inflight == Workers+Queue == 2).
	deadline := time.Now().Add(5 * time.Second)
	for s.inflight.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("admitted jobs never showed up in the inflight count")
		}
		time.Sleep(time.Millisecond)
	}

	code, _, msg := post(t, ts, JobSpec{Bench: "mst", Model: "in-order"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("job over capacity: HTTP %d (%s), want 429", code, msg)
	}
	if st := s.Snapshot(); st.Rejected == 0 {
		t.Errorf("rejection not counted in statz")
	}

	<-s.sem // release the stolen slot
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Fatalf("queued job finished with HTTP %d", code)
		}
	}
	code, jr, _ := post(t, ts, JobSpec{Bench: "mst", Model: "in-order"})
	if code != http.StatusOK {
		t.Fatalf("job after backpressure cleared: HTTP %d", code)
	}
	if !jr.Cached {
		t.Errorf("job after backpressure should hit the cache filled by the queued jobs")
	}
}

// TestSSEFraming: a streaming job emits a queued event and a terminal result
// event carrying the same payload a plain request gets.
func TestSSEFraming(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := JobSpec{Bench: "health", Model: "in-order"}
	code, plain, msg := post(t, ts, spec)
	if code != http.StatusOK {
		t.Fatalf("plain job: HTTP %d: %s", code, msg)
	}

	body, _ := json.Marshal(spec)
	req, err := http.NewRequest("POST", ts.URL+"/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("SSE job: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}

	var events []string
	var result *JobResponse
	sc := bufio.NewScanner(resp.Body)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
			events = append(events, event)
		case strings.HasPrefix(line, "data: ") && event == "result":
			var jr JobResponse
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &jr); err != nil {
				t.Fatalf("result event payload: %v", err)
			}
			result = &jr
		case strings.HasPrefix(line, "data: ") && event == "error":
			t.Fatalf("error event: %s", line)
		}
	}
	if len(events) == 0 || events[0] != "queued" {
		t.Fatalf("first event %v, want queued (events: %v)", events, events)
	}
	if result == nil {
		t.Fatal("stream ended without a result event")
	}
	if !result.Cached {
		t.Errorf("streamed repeat of a cached job reported cached=false")
	}
	if *result.Result != *plain.Result {
		t.Errorf("streamed result diverged from the plain response")
	}
}

// TestBadRequests: malformed jobs are client errors, not server failures.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []JobSpec{
		{Model: "in-order"},                           // no program
		{Bench: "nope", Model: "in-order"},            // unknown benchmark
		{Bench: "mcf", Model: "vliw"},                 // unknown model
		{Bench: "mcf", Source: "x", Model: "ooo"},     // both program kinds
		{Bench: "mcf", Model: "ooo", Variant: "hand"}, // unsupported variant
		{Source: "not assembly", Model: "ooo"},        // unparseable source
		{Bench: "mcf", Model: "ooo", TimeoutMS: -1},   // negative timeout
	}
	for i, spec := range cases {
		if code, _, _ := post(t, ts, spec); code != http.StatusBadRequest {
			t.Errorf("case %d: HTTP %d, want 400", i, code)
		}
	}
	// Options with a base variant are rejected too: they would fragment
	// the cache key without changing the work.
	body := []byte(`{"bench":"mcf","model":"ooo","variant":"base","options":{"MaxSliceSize":4}}`)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("options on base variant: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestPartialOptions: an options object overlays ssp.DefaultOptions field
// by field instead of replacing the whole struct, so tuning one knob does
// not silently zero the delinquent cutoff and disable the tool; an empty
// object is the default job (same cache key); a typo'd option name is a 400.
func TestPartialOptions(t *testing.T) {
	mk := func(raw string) (*JobSpec, job, error) {
		spec := &JobSpec{Bench: "mcf", Model: "ooo", Variant: "ssp"}
		if raw != "" {
			spec.Options = json.RawMessage(raw)
		}
		j, err := spec.normalize(time.Minute)
		return spec, j, err
	}
	_, def, err := mk("")
	if err != nil {
		t.Fatal(err)
	}
	_, part, err := mk(`{"ChainUnroll": 2}`)
	if err != nil {
		t.Fatal(err)
	}
	want := ssp.DefaultOptions()
	want.ChainUnroll = 2
	if part.Options != want {
		t.Errorf("partial options did not overlay defaults:\ngot  %+v\nwant %+v", part.Options, want)
	}
	if part.key() == def.key() {
		t.Error("changed option did not change the cache key")
	}
	_, empty, err := mk(`{}`)
	if err != nil {
		t.Fatal(err)
	}
	if empty.key() != def.key() {
		t.Error("empty options object keyed differently from absent options")
	}
	if _, _, err := mk(`{"ChianUnroll": 2}`); err == nil {
		t.Error("typo'd option name was accepted silently")
	}
}

// TestDeadline: an unmeetable per-job deadline surfaces as 504, and — the
// flight integration — does not poison the cell: the same job without the
// deadline then computes fine.
func TestDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := JobSpec{Bench: "em3d", Model: "ooo", Variant: "ssp", TimeoutMS: 1}
	code, _, _ := post(t, ts, spec)
	if code != http.StatusGatewayTimeout {
		t.Skipf("1ms deadline did not expire before the job finished (HTTP %d)", code)
	}
	spec.TimeoutMS = 0
	code, jr, msg := post(t, ts, spec)
	if code != http.StatusOK {
		t.Fatalf("job after expired-deadline attempt: HTTP %d: %s (cell poisoned?)", code, msg)
	}
	if jr.Cached {
		t.Errorf("post-deadline job reported cached=true; the timeout must not have been cached")
	}
}

// TestDrain: draining flips healthz, rejects new jobs with 503, and Drain
// blocks until in-flight jobs finish.
func TestDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	// Hold the worker slot so an in-flight job pins the drain.
	s.sem <- struct{}{}
	started := make(chan struct{})
	done := make(chan int, 1)
	go func() {
		close(started)
		code, _, _ := post(t, ts, JobSpec{Bench: "vpr", Model: "in-order"})
		done <- code
	}()
	<-started
	deadline := time.Now().Add(5 * time.Second)
	for s.inflight.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("job never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	short, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Drain(short); err != context.DeadlineExceeded {
		t.Fatalf("drain with a pinned job: %v, want DeadlineExceeded", err)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: HTTP %d, want 503", resp.StatusCode)
	}
	if code, _, _ := post(t, ts, JobSpec{Bench: "vpr", Model: "in-order"}); code != http.StatusServiceUnavailable {
		t.Errorf("job while draining: HTTP %d, want 503", code)
	}

	<-s.sem // let the pinned job run
	if code := <-done; code != http.StatusOK {
		t.Fatalf("pinned job finished with HTTP %d", code)
	}
	grace, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := s.Drain(grace); err != nil {
		t.Fatalf("drain after the tail finished: %v", err)
	}
}

// TestStatz: the counters add up after a small mixed workload.
func TestStatz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := JobSpec{Bench: "treeadd.bf", Model: "ooo"}
	for i := 0; i < 3; i++ {
		if code, _, msg := post(t, ts, spec); code != http.StatusOK {
			t.Fatalf("job %d: HTTP %d: %s", i, code, msg)
		}
	}
	resp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 3 || st.Misses != 1 || st.Hits != 2 || st.Cells != 1 {
		t.Errorf("statz after 3 identical jobs: %+v", st)
	}
	if st.Pool.Puts != 1 {
		t.Errorf("pool puts = %d, want 1 (one clean simulation)", st.Pool.Puts)
	}
}

// TestTuneJob: a tune-mode job runs the closed-loop search and returns the
// tune result; an identical repeat is a cache hit on the tune cell.
func TestTuneJob(t *testing.T) {
	_, ts := newTestServer(t, Config{EnableTune: true})
	spec := JobSpec{
		Bench: "mcf", Model: "in-order",
		Tune: &TuneSpec{Rounds: 2, Grid: "quick"},
	}
	code, jr, msg := post(t, ts, spec)
	if code != http.StatusOK {
		t.Fatalf("tune job: HTTP %d: %s", code, msg)
	}
	if jr.Result != nil {
		t.Errorf("tune response carries a plain result: %+v", jr.Result)
	}
	res := jr.Tune
	if res == nil || res.Best == nil {
		t.Fatalf("tune response missing the search result: %+v", jr)
	}
	if res.Bench != "mcf" || res.BaseCycles <= 0 || res.OneShot <= 0 {
		t.Fatalf("tune result shape: %+v", res)
	}
	if res.Best.Best < res.OneShot {
		t.Errorf("tuned %.3fx below one-shot %.3fx", res.Best.Best, res.OneShot)
	}

	code, jr2, msg := post(t, ts, spec)
	if code != http.StatusOK {
		t.Fatalf("repeat tune job: HTTP %d: %s", code, msg)
	}
	if !jr2.Cached {
		t.Error("identical tune job missed the cache")
	}
	if jr2.Key != jr.Key {
		t.Errorf("identical tune jobs keyed differently: %s vs %s", jr.Key, jr2.Key)
	}
}

// TestTuneDisabled: tune jobs are opt-in; a server without EnableTune
// refuses them outright instead of silently running an expensive search.
func TestTuneDisabled(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	code, _, msg := post(t, ts, JobSpec{Bench: "mcf", Model: "in-order", Tune: &TuneSpec{}})
	if code != http.StatusForbidden {
		t.Fatalf("tune on a tune-disabled server: HTTP %d (%s), want 403", code, msg)
	}
	if st := s.Snapshot(); st.Rejected != 1 {
		t.Errorf("rejection not counted: %+v", st)
	}
}

// TestTuneBadRequests: malformed tune jobs are client errors.
func TestTuneBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{EnableTune: true})
	cases := []JobSpec{
		{Source: "L: halt", Model: "in-order", Tune: &TuneSpec{}},            // tune needs a bench
		{Bench: "mcf", Model: "in-order", Variant: "ssp", Tune: &TuneSpec{}}, // no variant with tune
		{Bench: "mcf", Model: "in-order", Tune: &TuneSpec{Grid: "dense"}},    // unknown grid
		{Bench: "mcf", Model: "in-order", Tune: &TuneSpec{Rounds: -1}},       // negative rounds
		{Bench: "mcf", Model: "in-order", Tune: &TuneSpec{Epsilon: -0.5}},    // negative epsilon
	}
	for i, spec := range cases {
		if code, _, msg := post(t, ts, spec); code != http.StatusBadRequest {
			t.Errorf("case %d: HTTP %d (%s), want 400", i, code, msg)
		}
	}

	// Streaming a tune job is rejected: there is no single cycle counter to
	// stream over a whole search.
	body, _ := json.Marshal(JobSpec{Bench: "mcf", Model: "in-order", Tune: &TuneSpec{}})
	req, err := http.NewRequest("POST", ts.URL+"/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("SSE tune job: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestTuneKeying: the cache key separates tune jobs from plain jobs and from
// each other by search parameters, while an empty TuneSpec and an explicitly
// default one coalesce onto the same cell.
func TestTuneKeying(t *testing.T) {
	norm := func(spec JobSpec) job {
		t.Helper()
		j, err := spec.normalize(time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	plain := norm(JobSpec{Bench: "mcf", Model: "in-order"})
	tuned := norm(JobSpec{Bench: "mcf", Model: "in-order", Tune: &TuneSpec{}})
	if plain.key() == tuned.key() {
		t.Error("tune job shares a key with the plain job")
	}
	explicit := norm(JobSpec{Bench: "mcf", Model: "in-order",
		Tune: &TuneSpec{Rounds: 3, Epsilon: 0.02, Grid: "full"}})
	if tuned.key() != explicit.key() {
		t.Error("defaulted and explicitly-default tune specs keyed differently")
	}
	for i, other := range []JobSpec{
		{Bench: "mcf", Model: "in-order", Tune: &TuneSpec{Rounds: 2}},
		{Bench: "mcf", Model: "in-order", Tune: &TuneSpec{Epsilon: 0.1}},
		{Bench: "mcf", Model: "in-order", Tune: &TuneSpec{Grid: "quick"}},
		{Bench: "mcf", Model: "ooo", Tune: &TuneSpec{}},
		{Bench: "health", Model: "in-order", Tune: &TuneSpec{}},
		{Bench: "mcf", Model: "in-order", Scale: "paper", Tune: &TuneSpec{}},
	} {
		if norm(other).key() == tuned.key() {
			t.Errorf("case %d: parameter change did not change the tune key", i)
		}
	}
}
