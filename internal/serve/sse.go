package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"
)

// progressInterval is how often a streaming job reports its cycle count.
// Coarse on purpose: progress is for humans and dashboards, and a busy
// server should spend its time simulating, not flushing.
const progressInterval = 50 * time.Millisecond

// wantsSSE reports whether the client asked for a server-sent-event stream.
func wantsSSE(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// sseWriter frames server-sent events over a flushable ResponseWriter.
type sseWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

func newSSE(w http.ResponseWriter) (*sseWriter, error) {
	f, ok := w.(http.Flusher)
	if !ok {
		return nil, fmt.Errorf("serve: response writer does not support streaming")
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	f.Flush()
	return &sseWriter{w, f}, nil
}

// event writes one named event with a JSON payload and flushes it.
func (s *sseWriter) event(name string, data any) {
	payload, err := json.Marshal(data)
	if err != nil {
		payload = []byte(`{}`)
	}
	fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", name, payload)
	s.f.Flush()
}

// progressEvent is the payload of "progress" events: simulated cycles so far.
type progressEvent struct {
	Cycles int64 `json:"cycles"`
}

// errorEvent is the payload of "error" events.
type errorEvent struct {
	Status int    `json:"status"`
	Error  string `json:"error"`
}

// streamJob runs a job while narrating it over SSE: a "queued" event on
// admission, "progress" events with the live cycle count while the
// simulation runs (coalesced requests watch the same counter as the request
// actually running it), then exactly one terminal "result" or "error" event.
// The HTTP status is 200 regardless — errors ride inside the stream, as SSE
// requires once the header is out.
func (s *Server) streamJob(ctx context.Context, w http.ResponseWriter, j job, rc *runCell) {
	sse, err := newSSE(w)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotImplemented)
		return
	}
	sse.event("queued", map[string]string{"key": j.key()})

	start := time.Now()
	type outcome struct {
		res *JobResult
		hit bool
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, hit, err := s.runJob(ctx, j, rc)
		done <- outcome{res, hit, err}
	}()

	tick := time.NewTicker(progressInterval)
	defer tick.Stop()
	var last int64 = -1
	for {
		select {
		case o := <-done:
			if o.err != nil {
				sse.event("error", errorEvent{Status: statusOf(o.err), Error: o.err.Error()})
				return
			}
			sse.event("result", JobResponse{
				Key:    j.key(),
				Cached: o.hit,
				WallMS: float64(time.Since(start)) / float64(time.Millisecond),
				Result: o.res,
			})
			return
		case <-tick.C:
			if c := rc.cycles.Load(); c != last {
				last = c
				sse.event("progress", progressEvent{Cycles: c})
			}
		case <-ctx.Done():
			// Client gone or deadline hit; the runner (if it is ours)
			// stops via the same ctx. Drain the outcome so the goroutine
			// exits, then report if anyone is still listening.
			o := <-done
			if o.err == nil {
				sse.event("result", JobResponse{Key: j.key(), Cached: o.hit, Result: o.res})
			} else {
				sse.event("error", errorEvent{Status: statusOf(o.err), Error: o.err.Error()})
			}
			return
		}
	}
}
