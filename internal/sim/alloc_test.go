package sim

import (
	"testing"

	"ssp/internal/ir"
	"ssp/internal/sim/decode"
	"ssp/internal/workloads"
)

// allocProgram predecodes the mcf kernel at test scale once for the
// allocation-regression tests; allocs/run counts depend on the program's
// load-ID population, so the workload is fixed.
func allocProgram(t *testing.T) *decode.Program {
	t.Helper()
	spec, err := workloads.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	p, _ := spec.Build(spec.TestScale)
	img, err := ir.Link(p)
	if err != nil {
		t.Fatal(err)
	}
	return Predecode(img)
}

// TestEngineSteadyStateAllocs pins the warm Reset+Run cycle of every
// cycle-level engine to a hard allocation ceiling. Once a machine has run a
// program, rerunning it (the exp.Suite pool's steady state) may allocate
// only the handful of objects that materialize the detached Result — the
// per-cycle path (threads, pending buffers, OOO window, memory hierarchy)
// must reuse its preallocated layout. Measured today: 12 allocs/run for all
// four configurations; the ceiling leaves no room for a per-access or
// per-cycle allocation to creep back in, which would show up as thousands.
func TestEngineSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	dp := allocProgram(t)
	const ceiling = 24
	for _, tc := range []struct {
		name string
		cfg  Config
		ff   bool
	}{
		{"inorder", DefaultInOrder(), false},
		{"ooo", DefaultOOO(), false},
		{"inorder-ff", DefaultInOrder(), true},
		{"ooo-ff", DefaultOOO(), true},
	} {
		cfg := tc.cfg
		cfg.FastForward = tc.ff
		cfg.UseTinyMem()
		t.Run(tc.name, func(t *testing.T) {
			m := NewPredecoded(cfg, dp)
			run := func() {
				m.Reset(cfg, dp)
				if _, err := m.Run(); err != nil {
					t.Fatal(err)
				}
			}
			run() // warm: fault in pages, stat slots, ring buffers
			if allocs := testing.AllocsPerRun(5, run); allocs > ceiling {
				t.Fatalf("steady-state run: %v allocs/run, ceiling %d", allocs, ceiling)
			}
		})
	}
}

// TestInterpretAllocs pins the functional interpreter, which builds a fresh
// machine per call, to a hard ceiling: machine construction plus the result,
// nothing proportional to instructions executed. Measured today: 81.
func TestInterpretAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	dp := allocProgram(t)
	cfg := DefaultInOrder()
	cfg.UseTinyMem()
	run := func() {
		if _, err := InterpretPredecoded(cfg, dp, 1<<40); err != nil {
			t.Fatal(err)
		}
	}
	run()
	if allocs := testing.AllocsPerRun(5, run); allocs > 128 {
		t.Fatalf("interpret: %v allocs/run, ceiling 128", allocs)
	}
}
