package sim

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"ssp/internal/sim/decode"
)

// TestThreadedSpeedupGate is the benchstat-style regression gate on the
// closure-threaded execution core, run by `make bench-gate` (and the CI
// bench-smoke job) with SSP_BENCH_GATE=1; it skips otherwise so ordinary
// `go test` runs stay free of timing-sensitive assertions.
//
// Absolute ns/op is machine-dependent, so the committed baseline in
// BENCH_sim.json ("threaded".gate) records speedup *ratios* — threaded over
// table dispatch, measured in the same process, same machine, back to back —
// which port across hosts. The gate re-measures each ratio (median of
// several interleaved trials, to shrug off scheduler noise) and fails if one
// regressed more than 10% below its committed value: the benchstat
// significance rule, applied to the numbers the threaded core exists to move.
func TestThreadedSpeedupGate(t *testing.T) {
	if os.Getenv("SSP_BENCH_GATE") == "" {
		t.Skip("set SSP_BENCH_GATE=1 to run the timing gate (make bench-gate)")
	}
	raw, err := os.ReadFile("../../BENCH_sim.json")
	if err != nil {
		t.Fatal(err)
	}
	var bench struct {
		Threaded struct {
			Gate map[string]float64 `json:"gate"`
		} `json:"threaded"`
	}
	if err := json.Unmarshal(raw, &bench); err != nil {
		t.Fatal(err)
	}
	if len(bench.Threaded.Gate) == 0 {
		t.Fatal("BENCH_sim.json has no threaded.gate baseline ratios")
	}

	alu := aluProgram(t)
	mcf := benchNamed(t, "mcf", 3000)
	interp := func(cfg Config, dp *decode.Program, reps int) func() {
		cfg.UseTinyMem()
		return func() {
			for i := 0; i < reps; i++ {
				if _, err := InterpretPredecoded(cfg, dp, 1<<40); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	engine := func(cfg Config, dp *decode.Program) func() {
		cfg.UseTinyMem()
		m := NewPredecoded(cfg, dp)
		return func() {
			m.Reset(cfg, dp)
			if _, err := m.Run(); err != nil {
				t.Fatal(err)
			}
		}
	}

	measured := map[string]float64{
		"BenchmarkInterpretALU": ratio(7,
			interp(DefaultInOrder(), alu, 1),
			interp(withTable(DefaultInOrder()), alu, 1)),
		// The engine pair is the noisiest (one ~60ms run per trial), so it
		// takes the most trials for the median to settle.
		"BenchmarkInOrderALU": ratio(9,
			engine(DefaultInOrder(), alu),
			engine(withTable(DefaultInOrder()), alu)),
		// The mcf interpreter pair is short per run, so each trial batches
		// repetitions; it is the BenchmarkInterpret regression gate proper.
		"BenchmarkInterpret": ratio(9,
			interp(DefaultInOrder(), mcf, 20),
			interp(withTable(DefaultInOrder()), mcf, 20)),
	}
	for name, committed := range bench.Threaded.Gate {
		got, ok := measured[name]
		if !ok {
			t.Errorf("%s: baseline ratio committed but not measured by the gate", name)
			continue
		}
		floor := committed * 0.9
		if got < floor {
			t.Errorf("%s: threaded/table speedup %.2fx regressed >10%% below the committed %.2fx (floor %.2fx)",
				name, got, committed, floor)
		} else {
			t.Logf("%s: %.2fx (committed %.2fx)", name, got, committed)
		}
	}
}

// ratio returns median(table time) / median(threaded time) over the given
// number of interleaved trials. Interleaving (threaded, table, threaded, ...)
// rather than back-to-back blocks keeps slow drifts in machine load from
// biasing one side.
func ratio(trials int, threaded, table func()) float64 {
	threaded() // warm both paths (chain compile, page faults, caches)
	table()
	th := make([]time.Duration, 0, trials)
	tb := make([]time.Duration, 0, trials)
	for i := 0; i < trials; i++ {
		start := time.Now()
		threaded()
		th = append(th, time.Since(start))
		start = time.Now()
		table()
		tb = append(tb, time.Since(start))
	}
	return float64(median(tb)) / float64(median(th))
}

func median(ds []time.Duration) time.Duration {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
	return ds[len(ds)/2]
}
