package sim

import (
	"testing"

	"ssp/internal/ir"
	"ssp/internal/sim/decode"
	"ssp/internal/workloads"
)

// benchProgram links and predecodes the fixed microbenchmark workload: the
// mcf kernel at a scale that runs long enough to amortize setup but finishes
// in well under a second per iteration on the tiny memory system. The decode
// happens once, outside the timed loop — the pattern every real consumer
// (exp.Suite, check) follows. All three engine microbenchmarks share it so
// their numbers are comparable, and BENCH_sim.json tracks them across
// refactors of the execution core.
func benchProgram(b *testing.B) *decode.Program {
	b.Helper()
	spec, err := workloads.ByName("mcf")
	if err != nil {
		b.Fatal(err)
	}
	p, _ := spec.Build(3000)
	img, err := ir.Link(p)
	if err != nil {
		b.Fatal(err)
	}
	return Predecode(img)
}

// BenchmarkInterpret measures the functional interpreter: pure architectural
// execution, no timing model.
func BenchmarkInterpret(b *testing.B) {
	dp := benchProgram(b)
	cfg := DefaultInOrder()
	cfg.UseTinyMem()
	b.ResetTimer()
	var instrs int64
	for i := 0; i < b.N; i++ {
		r, err := InterpretPredecoded(cfg, dp, 1<<40)
		if err != nil {
			b.Fatal(err)
		}
		instrs += r.Instrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
}

// benchEngine measures one cycle-level engine on the shared workload,
// reporting simulated cycles and retired instructions per host second. One
// machine is built outside the loop and Reset per iteration — the steady
// state every real consumer reaches through exp.Suite's machine pool, and
// the regime the allocs/op column tracks (alloc_test.go pins the ceilings).
func benchEngine(b *testing.B, cfg Config) {
	dp := benchProgram(b)
	cfg.UseTinyMem()
	m := NewPredecoded(cfg, dp)
	b.ResetTimer()
	var cycles, instrs int64
	for i := 0; i < b.N; i++ {
		m.Reset(cfg, dp)
		res, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.TimedOut {
			b.Fatal("watchdog expired")
		}
		cycles += res.Cycles
		instrs += res.MainInstrs + res.SpecInstrs
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkInOrder measures the 12-stage in-order pipeline model.
func BenchmarkInOrder(b *testing.B) { benchEngine(b, DefaultInOrder()) }

// BenchmarkOOO measures the 16-stage out-of-order pipeline model.
func BenchmarkOOO(b *testing.B) { benchEngine(b, DefaultOOO()) }

func withFF(cfg Config) Config {
	cfg.FastForward = true
	return cfg
}

// BenchmarkInOrderFF measures the in-order model with the stall-aware
// fast-forward timing core on: bit-identical results (the
// check.FastForwardEquivalence gate), far fewer simulated-one-at-a-time
// cycles on this memory-bound workload.
func BenchmarkInOrderFF(b *testing.B) { benchEngine(b, withFF(DefaultInOrder())) }

// BenchmarkOOOFF measures the out-of-order model with fast-forward on.
func BenchmarkOOOFF(b *testing.B) { benchEngine(b, withFF(DefaultOOO())) }
