package sim

import (
	"testing"

	"ssp/internal/ir"
	"ssp/internal/sim/decode"
	"ssp/internal/workloads"
)

// benchNamed links and predecodes one named benchmark workload at the given
// scale. The decode (and, with Config.Threaded on, the memoized chain
// compile) happens once, outside the timed loop — the pattern every real
// consumer (exp.Suite, check) follows. BENCH_sim.json tracks the benchmarks
// across refactors of the execution core.
func benchNamed(b testing.TB, name string, scale int) *decode.Program {
	b.Helper()
	spec, err := workloads.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	p, _ := spec.Build(scale)
	img, err := ir.Link(p)
	if err != nil {
		b.Fatal(err)
	}
	return Predecode(img)
}

// benchProgram is the fixed primary microbenchmark workload: the mcf kernel
// at a scale that runs long enough to amortize setup but finishes in well
// under a second per iteration on the tiny memory system. All engine
// microbenchmarks share it so their numbers are comparable.
func benchProgram(b testing.TB) *decode.Program {
	return benchNamed(b, "mcf", 3000)
}

// aluProgram builds the non-memory-bound microbenchmark: a tight loop of
// integer ALU work (the add/shift/mask/cmp+br latch idiom the threaded
// compiler fuses) with four independent dependency chains, so the in-order
// model sustains its full four-integer-unit issue rate and no loads ever
// stall it. It is the workload where execution dispatch — not the memory
// hierarchy — dominates, so it isolates the cycle engines' per-instruction
// issue cost: the speedup floor the threaded core is gated on (≥1.5x) is
// measured here, table dispatch vs compiled chains.
func aluProgram(b testing.TB) *decode.Program {
	b.Helper()
	p := ir.NewProgram("main")
	f := ir.NewFunc(p, "main")
	e := f.Block("entry")
	e.MovI(14, 0) // i
	chains := []ir.Reg{15, 20, 25, 30}
	for j, r := range chains {
		e.MovI(r, int64(j+1))
	}
	e.MovI(16, 0x9e37) // mix constant
	loop := f.Block("loop")
	// Three rounds over the four chains, round-robin, so consecutive
	// instructions are independent and a round issues in one cycle.
	for _, r := range chains {
		loop.Add(r, r, 16)
	}
	for _, r := range chains {
		loop.XorI(r, r, 0x5bd1)
	}
	for _, r := range chains {
		loop.ShlI(r, r, 3)
	}
	loop.AddI(14, 14, 1)
	loop.CmpI(ir.CondLT, 6, 7, 14, 300_000)
	loop.On(6).Br("loop")
	x := f.Block("exit")
	x.Halt()
	img, err := ir.Link(p)
	if err != nil {
		b.Fatal(err)
	}
	return Predecode(img)
}

// randomProgram predecodes the fixed seeded random pointer-chasing workload,
// wiring the check/fuzz program family into the benchmark surface.
func randomProgram(b testing.TB) *decode.Program {
	b.Helper()
	img, err := ir.Link(workloads.RandomProgram(42))
	if err != nil {
		b.Fatal(err)
	}
	return Predecode(img)
}

// withTable turns the closure-threaded execution core off, keeping the
// table-dispatch path as the measured baseline the *Table benchmarks track.
func withTable(cfg Config) Config {
	cfg.Threaded = false
	return cfg
}

func withFF(cfg Config) Config {
	cfg.FastForward = true
	return cfg
}

// benchInterp measures the functional interpreter on one workload: pure
// architectural execution, no timing model.
func benchInterp(b *testing.B, cfg Config, dp *decode.Program) {
	cfg.UseTinyMem()
	b.ResetTimer()
	var instrs int64
	for i := 0; i < b.N; i++ {
		r, err := InterpretPredecoded(cfg, dp, 1<<40)
		if err != nil {
			b.Fatal(err)
		}
		instrs += r.Instrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkInterpret measures the functional interpreter on the primary
// workload, with the threaded chains (the default configuration).
func BenchmarkInterpret(b *testing.B) { benchInterp(b, DefaultInOrder(), benchProgram(b)) }

// BenchmarkInterpretTable is the same interpretation over per-PC table
// dispatch — the before/after pair behind the threaded core's ≥2x
// interpreter gate.
func BenchmarkInterpretTable(b *testing.B) {
	benchInterp(b, withTable(DefaultInOrder()), benchProgram(b))
}

// BenchmarkInterpretMulti measures the interpreter on the multi-phase mcf
// variant: several hot regions, several compiled chain families.
func BenchmarkInterpretMulti(b *testing.B) {
	benchInterp(b, DefaultInOrder(), benchNamed(b, "mcf.multi", 2000))
}

// BenchmarkInterpretRandom measures the interpreter on the seeded random
// program family the check and fuzz layers sweep.
func BenchmarkInterpretRandom(b *testing.B) { benchInterp(b, DefaultInOrder(), randomProgram(b)) }

// BenchmarkInterpretALU measures the interpreter on the non-memory-bound ALU
// loop, where chain execution pays off most.
func BenchmarkInterpretALU(b *testing.B) { benchInterp(b, DefaultInOrder(), aluProgram(b)) }

// BenchmarkInterpretALUTable is the ALU loop over table dispatch.
func BenchmarkInterpretALUTable(b *testing.B) {
	benchInterp(b, withTable(DefaultInOrder()), aluProgram(b))
}

// benchEngine measures one cycle-level engine on a workload, reporting
// simulated cycles and retired instructions per host second. One machine is
// built outside the loop and Reset per iteration — the steady state every
// real consumer reaches through exp.Suite's machine pool, and the regime the
// allocs/op column tracks (alloc_test.go pins the ceilings).
func benchEngine(b *testing.B, cfg Config, dp *decode.Program) {
	cfg.UseTinyMem()
	m := NewPredecoded(cfg, dp)
	b.ResetTimer()
	var cycles, instrs int64
	for i := 0; i < b.N; i++ {
		m.Reset(cfg, dp)
		res, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.TimedOut {
			b.Fatal("watchdog expired")
		}
		cycles += res.Cycles
		instrs += res.MainInstrs + res.SpecInstrs
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkInOrder measures the 12-stage in-order pipeline model.
func BenchmarkInOrder(b *testing.B) { benchEngine(b, DefaultInOrder(), benchProgram(b)) }

// BenchmarkInOrderTable is the in-order model over table dispatch only.
func BenchmarkInOrderTable(b *testing.B) {
	benchEngine(b, withTable(DefaultInOrder()), benchProgram(b))
}

// BenchmarkOOO measures the 16-stage out-of-order pipeline model.
func BenchmarkOOO(b *testing.B) { benchEngine(b, DefaultOOO(), benchProgram(b)) }

// BenchmarkOOOTable is the OOO model over table dispatch only.
func BenchmarkOOOTable(b *testing.B) { benchEngine(b, withTable(DefaultOOO()), benchProgram(b)) }

// BenchmarkInOrderALU / BenchmarkOOOALU measure the cycle engines on the
// non-memory-bound ALU loop: nearly every instruction takes the pure-step
// lane, so the pair with their *Table twins is the engines' dispatch-cost
// speedup (the ≥1.5x cycle-loop gate; see TestThreadedSpeedupGate).
func BenchmarkInOrderALU(b *testing.B) { benchEngine(b, DefaultInOrder(), aluProgram(b)) }

// BenchmarkInOrderALUTable is the ALU loop on the in-order model, table path.
func BenchmarkInOrderALUTable(b *testing.B) {
	benchEngine(b, withTable(DefaultInOrder()), aluProgram(b))
}

// BenchmarkOOOALU is the ALU loop on the OOO model, threaded path.
func BenchmarkOOOALU(b *testing.B) { benchEngine(b, DefaultOOO(), aluProgram(b)) }

// BenchmarkOOOALUTable is the ALU loop on the OOO model, table path.
func BenchmarkOOOALUTable(b *testing.B) { benchEngine(b, withTable(DefaultOOO()), aluProgram(b)) }

// BenchmarkInOrderMulti measures the in-order model on the multi-phase mcf
// variant, covering multi-region adapted-style control flow.
func BenchmarkInOrderMulti(b *testing.B) {
	benchEngine(b, DefaultInOrder(), benchNamed(b, "mcf.multi", 2000))
}

// BenchmarkInOrderRandom measures the in-order model on the seeded random
// program family.
func BenchmarkInOrderRandom(b *testing.B) { benchEngine(b, DefaultInOrder(), randomProgram(b)) }

// BenchmarkInOrderFF measures the in-order model with the stall-aware
// fast-forward timing core on: bit-identical results (the
// check.FastForwardEquivalence gate), far fewer simulated-one-at-a-time
// cycles on this memory-bound workload.
func BenchmarkInOrderFF(b *testing.B) { benchEngine(b, withFF(DefaultInOrder()), benchProgram(b)) }

// BenchmarkOOOFF measures the out-of-order model with fast-forward on.
func BenchmarkOOOFF(b *testing.B) { benchEngine(b, withFF(DefaultOOO()), benchProgram(b)) }
