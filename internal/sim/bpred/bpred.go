// Package bpred models the front-end predictors of Table 1: a 2k-entry
// GSHARE direction predictor and a 256-entry 4-way associative BTB.
package bpred

// GShare is a global-history XOR-indexed table of 2-bit saturating counters.
type GShare struct {
	table   []uint8
	history uint64
	mask    uint64
}

// NewGShare builds a predictor with the given number of entries (power of
// two; Table 1 uses 2048).
func NewGShare(entries int) *GShare {
	return &GShare{table: make([]uint8, entries), mask: uint64(entries - 1)}
}

func (g *GShare) index(pc uint64) uint64 { return (pc ^ g.history) & g.mask }

// Predict returns the predicted direction for the branch at pc.
func (g *GShare) Predict(pc uint64) bool { return g.table[g.index(pc)] >= 2 }

// Update trains the predictor with the actual outcome and shifts it into the
// global history.
func (g *GShare) Update(pc uint64, taken bool) {
	i := g.index(pc)
	if taken {
		if g.table[i] < 3 {
			g.table[i]++
		}
	} else if g.table[i] > 0 {
		g.table[i]--
	}
	g.history = g.history<<1 | b2u(taken)
}

// Reset clears the table and global history in place.
func (g *GShare) Reset() {
	for i := range g.table {
		g.table[i] = 0
	}
	g.history = 0
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// BTB is a set-associative branch target buffer. Since IR branch targets are
// static, a BTB hit always yields the correct target; a miss on a taken
// branch is a front-end misfetch charged like a misprediction.
type BTB struct {
	ways  int
	sets  int
	tags  []uint64
	lru   []int64
	clock int64
}

// NewBTB builds a BTB with the given entries and associativity (Table 1:
// 256 entries, 4-way).
func NewBTB(entries, ways int) *BTB {
	return &BTB{ways: ways, sets: entries / ways, tags: make([]uint64, entries), lru: make([]int64, entries)}
}

// Hit probes the BTB for the branch at pc.
func (b *BTB) Hit(pc uint64) bool {
	t := pc + 1
	base := (int(pc) & (b.sets - 1)) * b.ways
	for w := 0; w < b.ways; w++ {
		if b.tags[base+w] == t {
			b.clock++
			b.lru[base+w] = b.clock
			return true
		}
	}
	return false
}

// Install records the branch at pc (called when a taken branch resolves).
func (b *BTB) Install(pc uint64) {
	t := pc + 1
	base := (int(pc) & (b.sets - 1)) * b.ways
	victim := base
	b.clock++
	for w := 0; w < b.ways; w++ {
		i := base + w
		if b.tags[i] == t {
			b.lru[i] = b.clock
			return
		}
		if b.tags[i] == 0 {
			victim = i
			break
		}
		if b.lru[i] < b.lru[victim] {
			victim = i
		}
	}
	b.tags[victim] = t
	b.lru[victim] = b.clock
}

// Reset invalidates every entry in place.
func (b *BTB) Reset() {
	for i := range b.tags {
		b.tags[i] = 0
		b.lru[i] = 0
	}
	b.clock = 0
}

// Predictor bundles direction and target prediction for one front end. Each
// machine model instantiates one (shared across SMT contexts, as GSHARE and
// BTB are core-level structures).
type Predictor struct {
	Dir *GShare
	Tgt *BTB
}

// New returns the Table 1 predictor: 2k-entry GSHARE, 256-entry 4-way BTB.
func New() *Predictor {
	return &Predictor{Dir: NewGShare(2048), Tgt: NewBTB(256, 4)}
}

// Reset restores the predictor to its just-built state, keeping the tables'
// allocations (Machine.Reset reuses predictors across runs).
func (p *Predictor) Reset() {
	p.Dir.Reset()
	p.Tgt.Reset()
}

// PredictAndTrain consults the predictor for a conditional branch at pc with
// actual outcome taken, trains it, and reports whether the front end
// mispredicted (wrong direction, or taken with a BTB miss).
func (p *Predictor) PredictAndTrain(pc uint64, taken bool) bool {
	predicted := p.Dir.Predict(pc)
	btbHit := p.Tgt.Hit(pc)
	p.Dir.Update(pc, taken)
	if taken {
		p.Tgt.Install(pc)
	}
	if predicted != taken {
		return true
	}
	return taken && !btbHit
}
