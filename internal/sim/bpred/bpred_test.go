package bpred

import "testing"

func TestGShareLearnsBias(t *testing.T) {
	// With a single static branch the global history saturates to the
	// branch's own outcome stream, after which one table entry is trained.
	g := NewGShare(2048)
	pc := uint64(100)
	for i := 0; i < 80; i++ {
		g.Update(pc, true)
	}
	if !g.Predict(pc) {
		t.Fatal("always-taken branch predicted not-taken after training")
	}
	for i := 0; i < 80; i++ {
		g.Update(pc, false)
	}
	if g.Predict(pc) {
		t.Fatal("always-not-taken branch predicted taken after retraining")
	}
}

func TestGShareLearnsAlternation(t *testing.T) {
	// With global history, a strict alternation becomes predictable.
	g := NewGShare(2048)
	pc := uint64(0x40)
	taken := false
	correct := 0
	for i := 0; i < 400; i++ {
		taken = !taken
		if g.Predict(pc) == taken {
			correct++
		}
		g.Update(pc, taken)
	}
	// Allow warmup; the steady state should be near-perfect.
	if correct < 300 {
		t.Fatalf("alternating pattern: %d/400 correct", correct)
	}
}

func TestBTBInstallHit(t *testing.T) {
	b := NewBTB(256, 4)
	if b.Hit(10) {
		t.Fatal("hit in empty BTB")
	}
	b.Install(10)
	if !b.Hit(10) {
		t.Fatal("miss after install")
	}
}

func TestBTBConflictEviction(t *testing.T) {
	b := NewBTB(8, 2) // 4 sets, 2 ways
	// Five branches mapping to the same set (stride = sets).
	for i := uint64(0); i < 5; i++ {
		b.Install(4 * i)
	}
	if b.Hit(0) {
		t.Fatal("oldest entry survived in a 2-way set with 5 installs")
	}
	if !b.Hit(16) {
		t.Fatal("recent entry evicted")
	}
}

func TestPredictorMispredictSignals(t *testing.T) {
	p := New()
	pc := uint64(0x77)
	// First taken encounter: direction counters start at not-taken and the
	// BTB is cold, so this must mispredict.
	if !p.PredictAndTrain(pc, true) {
		t.Fatal("cold taken branch did not mispredict")
	}
	// Train to taken until the global history saturates; steady-state
	// taken encounters must then predict correctly.
	for i := 0; i < 80; i++ {
		p.PredictAndTrain(pc, true)
	}
	if p.PredictAndTrain(pc, true) {
		t.Fatal("trained taken branch mispredicted")
	}
}

func TestPredictorNotTakenNeedsNoBTB(t *testing.T) {
	p := New()
	pc := uint64(0x99)
	// Not-taken branches never consult the BTB target.
	if p.PredictAndTrain(pc, false) {
		t.Fatal("cold not-taken branch mispredicted")
	}
}
