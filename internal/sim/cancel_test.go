package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"ssp/internal/ir"
)

// TestRunContextBackgroundMatchesRun: running under a background (or
// otherwise never-cancelled) context must be byte-identical to plain Run —
// the stop flag is a pure observer.
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	p := chaseProgram(500, true)
	img, err := ir.Link(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{testInOrder(), testOOO()} {
		plain, err := New(cfg, img).Run()
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
		under, err := New(cfg, img).RunContext(ctx)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, under) {
			t.Errorf("%v: RunContext result differs from Run", cfg.Model)
		}
	}
}

// TestRunContextCancelPrompt: cancelling mid-run must return ctx.Err()
// quickly instead of simulating to the watchdog limit. The watchdog is set
// absurdly high so a missed cancellation path shows up as a test timeout,
// not a silent success.
func TestRunContextCancelPrompt(t *testing.T) {
	for _, cfg := range []Config{testInOrder(), testOOO()} {
		cfg.MaxCycles = 1 << 60
		p := chaseProgram(200_000, false)
		img, err := ir.Link(p)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		m := New(cfg, img)
		done := make(chan error, 1)
		go func() {
			_, err := m.RunContext(ctx)
			done <- err
		}()
		time.Sleep(10 * time.Millisecond) // let the run get going
		start := time.Now()
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("%v: got %v, want context.Canceled", cfg.Model, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%v: run did not stop within 5s of cancellation", cfg.Model)
		}
		if wall := time.Since(start); wall > 2*time.Second {
			t.Errorf("%v: cancellation took %v, want well under a second", cfg.Model, wall)
		}
	}
}

// TestRunContextDeadline: an already-expired and a soon-expiring deadline
// both surface context.DeadlineExceeded.
func TestRunContextDeadline(t *testing.T) {
	cfg := testInOrder()
	cfg.MaxCycles = 1 << 60
	img, err := ir.Link(chaseProgram(200_000, false))
	if err != nil {
		t.Fatal(err)
	}

	expired, cancel := context.WithTimeout(context.Background(), -time.Second)
	defer cancel()
	if _, err := New(cfg, img).RunContext(expired); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: got %v", err)
	}

	short, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	if _, err := New(cfg, img).RunContext(short); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("short deadline: got %v", err)
	}
}

// TestCancelledMachineResetIsClean: a machine abandoned by cancellation,
// then Reset and rerun, must produce exactly the result a fresh machine
// does — the guarantee that makes pooling mistakes survivable, and the
// reason the pools can simply discard dirty machines without tracking them.
func TestCancelledMachineResetIsClean(t *testing.T) {
	cfg := testInOrder()
	short := chaseProgram(300, true)
	long := chaseProgram(200_000, false)
	simg, err := ir.Link(short)
	if err != nil {
		t.Fatal(err)
	}
	limg, err := ir.Link(long)
	if err != nil {
		t.Fatal(err)
	}
	want, err := New(cfg, simg).Run()
	if err != nil {
		t.Fatal(err)
	}

	longCfg := cfg
	longCfg.MaxCycles = 1 << 60
	m := New(longCfg, limg)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	if _, err := m.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel: got %v", err)
	}

	m.Reset(cfg, Predecode(simg))
	got, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("reused machine after cancellation diverged from a fresh one")
	}
}

// TestPoolStats: the pool counts gets, recycles, and puts; a discarded
// machine never advances Puts.
func TestPoolStats(t *testing.T) {
	var pool Pool
	cfg := testInOrder()
	dp := Predecode(mustLink(t, chaseProgram(100, false)))

	m1 := pool.Get(cfg, dp)
	if s := pool.Stats(); s.Gets != 1 || s.Hits != 0 || s.Puts != 0 {
		t.Fatalf("after first Get: %+v", s)
	}
	if _, err := m1.Run(); err != nil {
		t.Fatal(err)
	}
	pool.Put(m1)
	m2 := pool.Get(cfg, dp)
	if s := pool.Stats(); s.Gets != 2 || s.Puts != 1 {
		t.Fatalf("after recycle: %+v", s)
	}
	// Under the race detector sync.Pool deliberately drops a fraction of
	// Puts, so the recycle may legitimately miss there; without it the
	// single-goroutine Put/Get must hit.
	if s := pool.Stats(); !raceEnabled && s.Hits != 1 {
		t.Fatalf("after recycle: %+v, want Hits=1", s)
	}
	// Simulate a failed run: the machine is dropped, not Put.
	if s := pool.Stats(); s.Puts != 1 {
		t.Fatalf("discard advanced Puts: %+v", s)
	}
	_ = m2
}

func mustLink(t *testing.T, p *ir.Program) *ir.Image {
	t.Helper()
	img, err := ir.Link(p)
	if err != nil {
		t.Fatal(err)
	}
	return img
}
