// Package sim is an execution-driven, cycle-level simulator of the two
// research Itanium SMT machine models of Table 1: a 12-stage in-order
// pipeline and a 16-stage out-of-order pipeline, both with four hardware
// thread contexts, shared fetch/issue bandwidth (2 bundles from one thread
// or 1 bundle each from two threads per cycle), a shared three-level cache
// hierarchy with a fill buffer, GSHARE+BTB branch prediction, and the SSP
// thread-spawning mechanism: chk.c raises a lightweight exception into a
// stub block when a free context exists, stub code copies live-ins into the
// Register Stack Engine backing-store buffer, and spawn binds a speculative
// thread to a free context (§2.1, §3.4.2).
package sim

import "ssp/internal/sim/mem"

// Model selects the pipeline organization.
type Model uint8

const (
	// InOrder is the 12-stage in-order model: issue stalls when an
	// instruction uses the destination register of an outstanding miss.
	InOrder Model = iota
	// OOO is the 16-stage out-of-order model: 255-entry per-thread reorder
	// buffer, 18-entry reservation station, in-order retirement.
	OOO
)

func (m Model) String() string {
	if m == InOrder {
		return "in-order"
	}
	return "ooo"
}

// Config holds all machine parameters. Defaults mirror Table 1.
type Config struct {
	Model Model
	Mem   mem.Config

	// Contexts is the number of hardware thread contexts (Table 1: 4).
	Contexts int
	// IssueWidth is the total issue bandwidth per cycle in instructions
	// (2 bundles x 3).
	IssueWidth int
	// ThreadsPerCycle bounds how many threads share a cycle's bandwidth
	// (2: one bundle each).
	ThreadsPerCycle int

	// Function units per cycle (Table 1: 4 integer, 2 FP, 3 branch,
	// 2 memory ports).
	IntUnits, FPUnits, BrUnits, MemPorts int

	// MulLat is the integer multiply latency; other ALU ops take 1 cycle.
	MulLat int64
	// FPLat is the FP arithmetic latency (fadd/fmul/fma).
	FPLat int64

	// MispredictPenalty is the front-end refill cost of a branch
	// misprediction (the pipeline depth: 12 in-order, 16 OOO).
	MispredictPenalty int64
	// SpawnFlushPenalty is the cost of taking the chk.c lightweight
	// exception on the main thread: "thread spawning is assessed with
	// similar penalty to exception handling that incurs pipeline flushes"
	// (§4.4.1).
	SpawnFlushPenalty int64
	// SpawnStartup is the front-end delay before a newly spawned thread
	// issues its first instruction.
	SpawnStartup int64
	// SpawnCooldown is the minimum interval between taken chk.c
	// exceptions on a thread: the hardware rate-limits spawning so that
	// exception-style flushes cannot swamp the pipeline — the paper's
	// "judicious" application of SSP, where unhelpful chk.c instructions
	// "will return no available context" (§4.4.1).
	SpawnCooldown int64
	// LIBCopyLat is the latency of moving a value through the live-in
	// buffer (the on-chip RSE backing store, §2.1).
	LIBCopyLat int64

	// ROBSize and RSSize configure the OOO window (255 / 18 per Table 1).
	ROBSize int
	RSSize  int
	// RetireWidth bounds in-order retirement per thread per cycle.
	RetireWidth int

	// MaxSpecInstrs kills a runaway speculative thread once its activation
	// has executed this many dynamic instructions — an activation never
	// executes more. It is the hardware ceiling the speculation-safety
	// verifier certifies slice budgets against (ssp.DefaultSafetyCeiling
	// mirrors the default).
	MaxSpecInstrs int64
	// MaxCycles is a global watchdog; the run aborts with Result.TimedOut
	// when exceeded.
	MaxCycles int64

	// Profile enables per-PC execution counts and indirect-call edge
	// capture (the profiling pass of Figure 1).
	Profile bool

	// Threaded enables the closure-threaded execution core
	// (internal/sim/threaded): the predecoded image is compiled once into
	// per-block specialized closure chains; the functional interpreter
	// executes the chains directly and the cycle engines run the per-PC
	// pure-step closures under their unchanged timing loops. Semantically
	// inert — check.ThreadedEquivalence asserts bit-identical Results with
	// it on and off — and on by default; turning it off keeps the
	// table-dispatch path as the differential reference.
	Threaded bool

	// FastForward enables the stall-aware fast-forward timing core
	// (fastforward.go): when the machine is fully stalled — no thread can
	// issue, dispatch, or retire anything until a known future cycle — the
	// engine computes the next-event cycle from the pending completion
	// times and jumps there in one step, bulk-crediting the skipped cycles
	// into the Breakdown and SpecActiveHist accounting. The jump is
	// semantically inert: check.FastForwardEquivalence asserts bit-for-bit
	// identical results with it on and off. Machines that spend most
	// cycles stalled on memory (the paper's Figure 10 machines) simulate
	// several times faster.
	FastForward bool
}

// UseTinyMem shrinks the cache hierarchy to the scaled-down test machine
// (1KB L1 / 4KB L2 / 16KB L3). It is the single definition of the "test"
// memory system shared by exp.ScaleTest and the CLI -tiny flag.
func (c *Config) UseTinyMem() {
	c.Mem.L1Size = 1 << 10
	c.Mem.L2Size = 4 << 10
	c.Mem.L3Size = 16 << 10
}

// DefaultInOrder returns the Table 1 in-order model.
func DefaultInOrder() Config {
	return Config{
		Model:           InOrder,
		Mem:             mem.Default(),
		Contexts:        4,
		IssueWidth:      6,
		ThreadsPerCycle: 2,
		IntUnits:        4, FPUnits: 2, BrUnits: 3, MemPorts: 2,
		MulLat:            3,
		FPLat:             4,
		MispredictPenalty: 12,
		SpawnFlushPenalty: 12,
		SpawnStartup:      6,
		SpawnCooldown:     200,
		LIBCopyLat:        3,
		ROBSize:           255,
		RSSize:            18,
		RetireWidth:       6,
		MaxSpecInstrs:     1 << 20,
		MaxCycles:         2_000_000_000,
		Threaded:          true,
	}
}

// DefaultOOO returns the Table 1 out-of-order model: four extra front-end
// stages over the in-order model.
func DefaultOOO() Config {
	c := DefaultInOrder()
	c.Model = OOO
	c.MispredictPenalty = 16
	c.SpawnFlushPenalty = 16
	// A taken chk.c on the OOO model forfeits a whole window of in-flight
	// work (the retirement-stage drain), so the hardware rate-limits
	// spawning far more aggressively than the in-order model needs to.
	c.SpawnCooldown = 800
	return c
}
