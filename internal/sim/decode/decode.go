// Package decode is the predecode stage of the execution core: it lowers a
// linked ir.Image into a dense []Decoded sidecar exactly once per image, so
// that none of the engines (the functional interpreter, the in-order model,
// the OOO model) ever re-inspects ir.Instr on the per-dynamic-instruction hot
// path. Each Decoded carries:
//
//   - a direct handler index (H) — the engines' architectural execution is a
//     table dispatch, with the immediate/register addressing forms of the hot
//     ALU and compare opcodes split into separate handlers;
//   - the function-unit class and a config-independent latency class (the
//     machine resolves LatClass against its Config once, in a 5-entry table);
//   - all scalar operands copied out of the ir.Instr (registers, predicates,
//     immediates, displacements) plus the pre-resolved branch/spawn target;
//   - the use/def location sets, sub-sliced from two shared backing arrays so
//     scoreboard and rename walks stay on a contiguous allocation.
//
// A Program is immutable after Predecode and carries no machine state, so one
// predecoded image is safely shared by any number of machines across models
// and goroutines — exp.Suite caches one per (benchmark, variant) and runs
// every matrix cell against it.
package decode

import (
	"sync"

	"ssp/internal/ir"
	"ssp/internal/sim/mem"
)

// FUClass groups opcodes by the function unit they occupy.
type FUClass uint8

const (
	FUNone FUClass = iota
	FUInt
	FUMem
	FUBr
	FUFP
)

// LatClass names an execution latency independently of machine configuration;
// the machine resolves it to cycles against its Config (MulLat, FPLat,
// LIBCopyLat) once at construction. Keeping the predecoded image
// config-independent is what lets one decode serve every machine model.
type LatClass uint8

const (
	// Lat1 is the single-cycle class (ALU, branches, memory issue).
	Lat1 LatClass = iota
	// Lat2 is the two-cycle class (setf/getf cross-file moves).
	Lat2
	// LatMul resolves to Config.MulLat.
	LatMul
	// LatFP resolves to Config.FPLat.
	LatFP
	// LatLIB resolves to Config.LIBCopyLat.
	LatLIB
	// NumLatClasses sizes the machine's resolution table.
	NumLatClasses
)

// Handler indexes the engines' architectural-execution dispatch table. The
// hot two-operand opcodes are split by addressing form (register vs
// immediate) so handlers read exactly the fields they need.
type Handler uint8

const (
	HNop Handler = iota
	HAdd
	HAddI
	HSub
	HSubI
	HMul
	HMulI
	HAnd
	HAndI
	HOr
	HOrI
	HXor
	HXorI
	HShl
	HShlI
	HShr
	HShrI
	HMov
	HMovI
	HCmp
	HCmpI
	HLd
	HLdPI // post-increment form: Imm carries the stride
	HSt
	HLfetch
	HBr
	HCall
	HCallB
	HRet
	HMovBR
	HMovBRFunc // address-of-function form: Tgt carries the entry PC
	HMovFromBR
	HChk
	HSpawn
	HLiw
	HLir
	HKill
	HHalt
	HFAdd
	HFSub
	HFMul
	HFMA
	HFLd
	HFSt
	HFCmp
	HSetF
	HGetF
	// NumHandlers sizes the dispatch table.
	NumHandlers
)

// Decoded is one predecoded instruction: everything the engines need at
// execution time, resolved once. Liw/Lir slot immediates are pre-masked to
// the live-in buffer size; the post-increment stride of HLdPI rides in Imm
// (plain loads never use it).
type Decoded struct {
	H   Handler
	FU  FUClass
	Lat LatClass
	Op  ir.Op
	Qp  ir.PR
	Rd  ir.Reg
	Ra  ir.Reg
	Rb  ir.Reg
	Pd1 ir.PR
	Pd2 ir.PR
	Bd  ir.BR
	Bs  ir.BR
	Fd  ir.FR
	Fa  ir.FR
	Fb  ir.FR
	Fc  ir.FR
	// Cond is the comparison relation for HCmp/HCmpI/HFCmp.
	Cond ir.Cond

	// Tgt is the resolved target PC for branch-like handlers (-1 if none)
	// and ID the stable instruction identity (memory statistics key).
	Tgt int32
	ID  int32

	Imm  int64
	Disp int64

	// Uses and Defs are the location sets the scoreboard and rename stages
	// walk; they alias the Program's shared backing arrays.
	Uses []ir.Loc
	Defs []ir.Loc
}

// Program is an immutable predecoded image.
type Program struct {
	// Img is the linked image the sidecar was built from (entry PC, symbol
	// tables, instruction text for tracing, initial data).
	Img *ir.Image
	// Code is the dense sidecar, indexed by PC.
	Code []Decoded
	// Mem is the data segment pre-paged into the simulator's memory layout,
	// so machine construction installs it by page copy instead of a word-at-
	// a-time map walk.
	Mem *mem.Snapshot
	// MaxID is the largest static instruction ID in the image; machines
	// presize their dense per-load stat tables from it so the counting path
	// never allocates.
	MaxID int

	// thrOnce/thr cache the threaded-code compile of this image (see
	// internal/sim/threaded). The sidecar is config-independent and
	// immutable like the Program itself, so it is built at most once and
	// shared by every machine and goroutine that executes this image. It is
	// held as an opaque any to keep decode a leaf package.
	thrOnce sync.Once
	thr     any
}

// Threaded returns the per-image threaded-code sidecar, invoking build at
// most once over the Program's lifetime (concurrent callers block on the
// first build). The cache key is the Program identity: exp.Suite memoizes
// one Program per (benchmark, variant), so the compile is amortized exactly
// like the predecode itself.
func (p *Program) Threaded(build func() any) any {
	p.thrOnce.Do(func() { p.thr = build() })
	return p.thr
}

// Classify maps an opcode to its function-unit and latency classes.
func Classify(op ir.Op) (FUClass, LatClass) {
	switch op {
	case ir.OpNop, ir.OpKill, ir.OpHalt:
		return FUNone, Lat1
	case ir.OpMul:
		return FUInt, LatMul
	case ir.OpMov, ir.OpMovI, ir.OpCmp, ir.OpMovFromBR, ir.OpMovBR,
		ir.OpAdd, ir.OpSub, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr:
		return FUInt, Lat1
	case ir.OpLd, ir.OpSt, ir.OpLfetch, ir.OpFLd, ir.OpFSt:
		return FUMem, Lat1 // loads get their latency from the hierarchy
	case ir.OpLiw, ir.OpLir:
		return FUMem, LatLIB
	case ir.OpBr, ir.OpCall, ir.OpCallB, ir.OpRet, ir.OpChk, ir.OpSpawn:
		return FUBr, Lat1
	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFMA, ir.OpFCmp:
		return FUFP, LatFP
	case ir.OpSetF, ir.OpGetF:
		return FUInt, Lat2 // cross-file moves take an extra cycle
	}
	return FUInt, Lat1
}

// aluHandlers maps the two-operand ALU opcodes to their register-form
// handler; the immediate form is the next index.
var aluHandlers = map[ir.Op]Handler{
	ir.OpAdd: HAdd, ir.OpSub: HSub, ir.OpMul: HMul, ir.OpAnd: HAnd,
	ir.OpOr: HOr, ir.OpXor: HXor, ir.OpShl: HShl, ir.OpShr: HShr,
}

// handlerOf selects the handler index for one instruction, splitting the
// addressing forms that have dedicated handlers.
func handlerOf(in *ir.Instr) Handler {
	if h, ok := aluHandlers[in.Op]; ok {
		if in.UseImm {
			return h + 1
		}
		return h
	}
	switch in.Op {
	case ir.OpNop:
		return HNop
	case ir.OpMov:
		return HMov
	case ir.OpMovI:
		return HMovI
	case ir.OpCmp:
		if in.UseImm {
			return HCmpI
		}
		return HCmp
	case ir.OpLd:
		if in.PostInc != 0 {
			return HLdPI
		}
		return HLd
	case ir.OpSt:
		return HSt
	case ir.OpLfetch:
		return HLfetch
	case ir.OpBr:
		return HBr
	case ir.OpCall:
		return HCall
	case ir.OpCallB:
		return HCallB
	case ir.OpRet:
		return HRet
	case ir.OpMovBR:
		if in.Target != "" {
			return HMovBRFunc
		}
		return HMovBR
	case ir.OpMovFromBR:
		return HMovFromBR
	case ir.OpChk:
		return HChk
	case ir.OpSpawn:
		return HSpawn
	case ir.OpLiw:
		return HLiw
	case ir.OpLir:
		return HLir
	case ir.OpKill:
		return HKill
	case ir.OpHalt:
		return HHalt
	case ir.OpFAdd:
		return HFAdd
	case ir.OpFSub:
		return HFSub
	case ir.OpFMul:
		return HFMul
	case ir.OpFMA:
		return HFMA
	case ir.OpFLd:
		return HFLd
	case ir.OpFSt:
		return HFSt
	case ir.OpFCmp:
		return HFCmp
	case ir.OpSetF:
		return HSetF
	case ir.OpGetF:
		return HGetF
	}
	return HNop
}

// Predecode lowers a linked image into its dense sidecar. The result is
// immutable and safe for concurrent sharing.
func Predecode(img *ir.Image) *Program {
	code := make([]Decoded, len(img.Code))
	// Two shared backing arrays keep every instruction's use/def sets on
	// contiguous memory instead of len(Code) tiny allocations. The arrays
	// may reallocate while growing, so per-PC offsets are recorded first and
	// the sub-slices bound after the final backing is known.
	var uses, defs []ir.Loc
	offs := make([][4]int, len(img.Code))
	for pc := range img.Code {
		in := &img.Code[pc].I
		u0 := len(uses)
		uses = in.AppendUses(uses)
		d0 := len(defs)
		defs = in.AppendDefs(defs)
		offs[pc] = [4]int{u0, len(uses), d0, len(defs)}
	}
	for pc := range img.Code {
		l := &img.Code[pc]
		in := &l.I
		d := &code[pc]
		d.H = handlerOf(in)
		d.FU, d.Lat = Classify(in.Op)
		d.Op = in.Op
		d.Qp = in.Qp
		d.Rd, d.Ra, d.Rb = in.Rd, in.Ra, in.Rb
		d.Pd1, d.Pd2 = in.Pd1, in.Pd2
		d.Bd, d.Bs = in.Bd, in.Bs
		d.Fd, d.Fa, d.Fb, d.Fc = in.Fd, in.Fa, in.Fb, in.Fc
		d.Cond = in.Cond
		d.Tgt = l.Tgt
		d.ID = int32(in.ID)
		d.Imm = in.Imm
		d.Disp = in.Disp
		switch d.H {
		case HLdPI:
			d.Imm = in.PostInc
		case HLiw, HLir:
			d.Imm = in.Imm & (ir.LIBSlots - 1)
		}
		o := offs[pc]
		d.Uses = uses[o[0]:o[1]:o[1]]
		d.Defs = defs[o[2]:o[3]:o[3]]
	}
	maxID := 0
	for pc := range code {
		if id := int(code[pc].ID); id > maxID {
			maxID = id
		}
	}
	return &Program{Img: img, Code: code, Mem: mem.NewSnapshot(img.Data), MaxID: maxID}
}
