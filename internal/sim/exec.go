package sim

import (
	"math"

	"ssp/internal/ir"
	"ssp/internal/sim/decode"
)

// archEffect captures everything the engines need to apply timing after the
// architectural execution of one instruction.
type archEffect struct {
	nextPC    int
	nullified bool

	memKind  uint8 // 0 none, 1 load, 2 store, 3 prefetch
	memAddr  uint64
	memID    int
	loadDest ir.Loc

	brCond  bool // conditional branch needing prediction
	brTaken bool

	halt bool
	kill bool
}

const (
	memNone uint8 = iota
	memLoad
	memStore
	memPrefetch
)

// handlerFn is one entry of the architectural dispatch table. Handlers read
// their operands from the predecoded record and write machine state plus the
// parts of the effect that differ from the fall-through default.
type handlerFn func(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect)

// execArch performs the architectural effects of the instruction at pc for
// thread t: register, predicate, branch-register, memory, live-in buffer,
// spawn and chk.c context effects, and the next PC. Timing (latencies, FU
// occupancy, penalties) is the engines' business. Dispatch is one indexed
// call through the handler table — the per-opcode switch is gone, and the
// instruction is never re-inspected beyond its predecoded record.
func (m *Machine) execArch(t *Thread, pc int) *archEffect {
	if m.exec != nil {
		m.exec.Exec(m, t, pc)
	}
	d := &m.code[pc]
	// The effect lives in a Machine-resident scratch slot, returned by
	// pointer: handlers receive it across an indirect call (which would
	// force a heap allocation were it a local), and the engines read it in
	// place instead of copying 48 bytes per executed instruction. The slot
	// is dead once the caller's timing logic for the instruction ends;
	// execArch is never reentered within one instruction.
	ef := &m.ef
	*ef = archEffect{nextPC: pc + 1, memID: int(d.ID)}
	if d.Qp != ir.PTrue && !t.Preds[d.Qp] {
		ef.nullified = true
		if d.Op == ir.OpBr {
			ef.brCond = true // trained as not-taken
		}
		return ef
	}
	handlers[d.H](m, t, d, pc, ef)
	return ef
}

var handlers = [decode.NumHandlers]handlerFn{
	decode.HNop:       hNop,
	decode.HAdd:       hAdd,
	decode.HAddI:      hAddI,
	decode.HSub:       hSub,
	decode.HSubI:      hSubI,
	decode.HMul:       hMul,
	decode.HMulI:      hMulI,
	decode.HAnd:       hAnd,
	decode.HAndI:      hAndI,
	decode.HOr:        hOr,
	decode.HOrI:       hOrI,
	decode.HXor:       hXor,
	decode.HXorI:      hXorI,
	decode.HShl:       hShl,
	decode.HShlI:      hShlI,
	decode.HShr:       hShr,
	decode.HShrI:      hShrI,
	decode.HMov:       hMov,
	decode.HMovI:      hMovI,
	decode.HCmp:       hCmp,
	decode.HCmpI:      hCmpI,
	decode.HLd:        hLd,
	decode.HLdPI:      hLdPI,
	decode.HSt:        hSt,
	decode.HLfetch:    hLfetch,
	decode.HBr:        hBr,
	decode.HCall:      hCall,
	decode.HCallB:     hCallB,
	decode.HRet:       hRet,
	decode.HMovBR:     hMovBR,
	decode.HMovBRFunc: hMovBRFunc,
	decode.HMovFromBR: hMovFromBR,
	decode.HChk:       hChk,
	decode.HSpawn:     hSpawn,
	decode.HLiw:       hLiw,
	decode.HLir:       hLir,
	decode.HKill:      hKill,
	decode.HHalt:      hHalt,
	decode.HFAdd:      hFAdd,
	decode.HFSub:      hFSub,
	decode.HFMul:      hFMul,
	decode.HFMA:       hFMA,
	decode.HFLd:       hFLd,
	decode.HFSt:       hFSt,
	decode.HFCmp:      hFCmp,
	decode.HSetF:      hSetF,
	decode.HGetF:      hGetF,
}

func hNop(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {}

func hAdd(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	t.SetReg(d.Rd, t.Regs[d.Ra]+t.Regs[d.Rb])
}

func hAddI(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	t.SetReg(d.Rd, t.Regs[d.Ra]+uint64(d.Imm))
}

func hSub(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	t.SetReg(d.Rd, t.Regs[d.Ra]-t.Regs[d.Rb])
}

func hSubI(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	t.SetReg(d.Rd, t.Regs[d.Ra]-uint64(d.Imm))
}

func hMul(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	t.SetReg(d.Rd, t.Regs[d.Ra]*t.Regs[d.Rb])
}

func hMulI(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	t.SetReg(d.Rd, t.Regs[d.Ra]*uint64(d.Imm))
}

func hAnd(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	t.SetReg(d.Rd, t.Regs[d.Ra]&t.Regs[d.Rb])
}

func hAndI(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	t.SetReg(d.Rd, t.Regs[d.Ra]&uint64(d.Imm))
}

func hOr(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	t.SetReg(d.Rd, t.Regs[d.Ra]|t.Regs[d.Rb])
}

func hOrI(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	t.SetReg(d.Rd, t.Regs[d.Ra]|uint64(d.Imm))
}

func hXor(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	t.SetReg(d.Rd, t.Regs[d.Ra]^t.Regs[d.Rb])
}

func hXorI(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	t.SetReg(d.Rd, t.Regs[d.Ra]^uint64(d.Imm))
}

func hShl(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	t.SetReg(d.Rd, t.Regs[d.Ra]<<(t.Regs[d.Rb]&63))
}

func hShlI(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	t.SetReg(d.Rd, t.Regs[d.Ra]<<(uint64(d.Imm)&63))
}

func hShr(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	t.SetReg(d.Rd, t.Regs[d.Ra]>>(t.Regs[d.Rb]&63))
}

func hShrI(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	t.SetReg(d.Rd, t.Regs[d.Ra]>>(uint64(d.Imm)&63))
}

func hMov(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	t.SetReg(d.Rd, t.Regs[d.Ra])
}

func hMovI(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	t.SetReg(d.Rd, uint64(d.Imm))
}

// cmpResult evaluates an integer comparison.
func cmpResult(cond ir.Cond, a, b uint64) bool {
	switch cond {
	case ir.CondEQ:
		return a == b
	case ir.CondNE:
		return a != b
	case ir.CondLT:
		return int64(a) < int64(b)
	case ir.CondLE:
		return int64(a) <= int64(b)
	case ir.CondGT:
		return int64(a) > int64(b)
	case ir.CondGE:
		return int64(a) >= int64(b)
	case ir.CondLTU:
		return a < b
	case ir.CondGEU:
		return a >= b
	}
	return false
}

// setPreds writes a compare's complementary predicate pair; writes to the
// hardwired p0 are dropped.
func setPreds(t *Thread, d *decode.Decoded, r bool) {
	if d.Pd1 != ir.PTrue {
		t.Preds[d.Pd1] = r
	}
	if d.Pd2 != ir.PTrue {
		t.Preds[d.Pd2] = !r
	}
}

func hCmp(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	setPreds(t, d, cmpResult(d.Cond, t.Regs[d.Ra], t.Regs[d.Rb]))
}

func hCmpI(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	setPreds(t, d, cmpResult(d.Cond, t.Regs[d.Ra], uint64(d.Imm)))
}

func hLd(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	addr := t.Regs[d.Ra] + uint64(d.Disp)
	t.SetReg(d.Rd, m.Mem.Load(addr))
	ef.memKind, ef.memAddr = memLoad, addr
	ef.loadDest = ir.GRLoc(d.Rd)
}

func hLdPI(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	// Post-increment form: d.Imm carries the stride. The base update reads
	// Ra after the destination write, so ld rX = [rX], s post-increments
	// the loaded value — exactly the pre-split semantics.
	addr := t.Regs[d.Ra] + uint64(d.Disp)
	t.SetReg(d.Rd, m.Mem.Load(addr))
	t.SetReg(d.Ra, t.Regs[d.Ra]+uint64(d.Imm))
	ef.memKind, ef.memAddr = memLoad, addr
	ef.loadDest = ir.GRLoc(d.Rd)
}

func hSt(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	addr := t.Regs[d.Ra] + uint64(d.Disp)
	if t.spec {
		// P-slices never contain stores (§2); if one sneaks into a
		// speculative thread the hardware suppresses it so the main
		// thread's architectural state is never altered.
		m.res.SpecStores++
	} else {
		m.Mem.Store(addr, t.Regs[d.Rb])
		ef.memKind, ef.memAddr = memStore, addr
	}
}

func hLfetch(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	ef.memKind, ef.memAddr = memPrefetch, t.Regs[d.Ra]+uint64(d.Disp)
}

func hBr(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	ef.brTaken = true
	ef.brCond = d.Qp != ir.PTrue
	ef.nextPC = int(d.Tgt)
}

func hCall(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	t.BRs[d.Bd] = uint64(pc + 1)
	ef.nextPC = int(d.Tgt)
}

func hCallB(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	tgt := int(t.BRs[d.Bs])
	t.BRs[d.Bd] = uint64(pc + 1)
	ef.nextPC = tgt
}

func hRet(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	ef.nextPC = int(t.BRs[d.Bs])
}

func hMovBR(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	t.BRs[d.Bd] = t.Regs[d.Ra]
}

func hMovBRFunc(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	t.BRs[d.Bd] = uint64(d.Tgt)
}

func hMovFromBR(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	t.SetReg(d.Rd, t.BRs[d.Bs])
}

func hChk(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	if t.spec || m.noSpec || m.now-t.lastChkTaken < m.Cfg.SpawnCooldown {
		return
	}
	if m.freeContext() != nil {
		// Lightweight exception: divert to the stub block.
		m.res.ChkTaken++
		t.lastChkTaken = m.now
		t.resumePC = pc + 1
		ef.nextPC = int(d.Tgt)
		ef.brTaken = true
	}
}

func hSpawn(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	if m.noSpec {
		m.res.SpawnsIgnored++
	} else if c := m.freeContext(); c != nil {
		m.startThread(c, int(d.Tgt), t)
		m.res.Spawns++
	} else {
		m.res.SpawnsIgnored++
	}
	if t.resumePC >= 0 {
		ef.nextPC = t.resumePC
		t.resumePC = -1
		ef.brTaken = true
	}
}

func hLiw(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	t.OutLIB[d.Imm] = t.Regs[d.Ra] // slot pre-masked at decode
}

func hLir(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	t.SetReg(d.Rd, t.InLIB[d.Imm]) // slot pre-masked at decode
}

func hKill(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	ef.kill = true
}

func hHalt(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	if t.spec {
		ef.kill = true
	} else {
		ef.halt = true
	}
}

func hFAdd(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	t.SetFR(d.Fd, t.FR(d.Fa)+t.FR(d.Fb))
}

func hFSub(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	t.SetFR(d.Fd, t.FR(d.Fa)-t.FR(d.Fb))
}

func hFMul(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	t.SetFR(d.Fd, t.FR(d.Fa)*t.FR(d.Fb))
}

func hFMA(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	t.SetFR(d.Fd, t.FR(d.Fa)*t.FR(d.Fb)+t.FR(d.Fc))
}

func hFLd(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	addr := t.Regs[d.Ra] + uint64(d.Disp)
	t.SetFR(d.Fd, math.Float64frombits(m.Mem.Load(addr)))
	ef.memKind, ef.memAddr = memLoad, addr
	ef.loadDest = ir.FRLoc(d.Fd)
}

func hFSt(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	addr := t.Regs[d.Ra] + uint64(d.Disp)
	if t.spec {
		m.res.SpecStores++
	} else {
		m.Mem.Store(addr, math.Float64bits(t.FR(d.Fa)))
		ef.memKind, ef.memAddr = memStore, addr
	}
}

func hFCmp(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	a, b := t.FR(d.Fa), t.FR(d.Fb)
	var r bool
	switch d.Cond {
	case ir.CondEQ:
		r = a == b
	case ir.CondNE:
		r = a != b
	case ir.CondLT, ir.CondLTU:
		r = a < b
	case ir.CondLE:
		r = a <= b
	case ir.CondGT:
		r = a > b
	case ir.CondGE, ir.CondGEU:
		r = a >= b
	}
	setPreds(t, d, r)
}

func hSetF(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	t.SetFR(d.Fd, math.Float64frombits(t.Regs[d.Ra]))
}

func hGetF(m *Machine, t *Thread, d *decode.Decoded, pc int, ef *archEffect) {
	t.SetReg(d.Rd, math.Float64bits(t.FR(d.Fa)))
}
