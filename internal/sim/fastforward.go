package sim

// The stall-aware fast-forward timing core. The paper's machines spend
// 80-90% of their cycles stalled on memory (Figure 10); simulating each of
// those cycles individually is wasted work, because a fully stalled machine
// changes no state at all — the only thing that moves is the cycle counter.
// When an engine finishes a cycle in which nothing issued, dispatched, or
// retired anywhere, it proves the machine is fully stalled (every active
// thread is blocked on a known future cycle, not on a structural or
// selection artifact that the next cycle could resolve), computes the
// earliest cycle at which anything can change, and jumps the clock there in
// one step. The skipped cycles are credited to the breakdown and
// utilization accounting in bulk through the CycleSkipper hook, and the
// round-robin selection cursor is advanced exactly as the skipped selection
// passes would have advanced it, so a fast-forwarded run is bit-for-bit
// identical to a per-cycle run (check.FastForwardEquivalence).
//
// The event set a jump respects:
//
//   - every active thread's front-end stall expiry (frontStallUntil);
//   - in-order: the ready cycle of the first unready source of the
//     instruction each thread is blocked on (the scoreboard stall);
//   - OOO: the completion (doneAt) of every issued-but-incomplete window
//     record — completions drive retirement, wakeup, full-window drain,
//     waitDrain drain, and blocked-branch resolution;
//   - the completion of any of the main thread's pending cache fills,
//     because the Figure 10 category of a stalled cycle depends on the
//     deepest *outstanding* fill (a jump across a fill completion could
//     credit cycles to the wrong miss level);
//   - the memory system's earliest in-flight fill-buffer completion
//     (mem.Hierarchy.EarliestPending) — currently redundant with the
//     per-thread events because the hierarchy drains lazily, but it keeps
//     the core correct if the memory system ever grows eager behavior.

const ffNoEvent = int64(1) << 62

// maxSelect is the engines' per-cycle thread-selection capacity (the size of
// their sel arrays); stepRR mirrors the same bound.
const maxSelect = 8

// ffEligible reports whether the machine may fast-forward at all: the
// feature must be on, the installed cycle hook (if any) must understand bulk
// crediting, and the context count must fit the selection-cursor bitmask.
func (m *Machine) ffEligible() bool {
	return m.Cfg.FastForward && (m.cycle == nil || m.skip != nil) && len(m.threads) <= 64
}

// fastForwardInOrder attempts a stall jump on the in-order model after a
// cycle in which no thread issued. It verifies every active thread is
// time-blocked — front-end stalled, or scoreboard-stalled on an outstanding
// completion — and jumps to just before the earliest unblocking event. A
// thread that could issue (it lost the per-cycle thread-selection lottery,
// nothing more) vetoes the jump, since the very next cycle would pick it.
func (m *Machine) fastForwardInOrder(main *Thread, s CycleStats) {
	if !m.ffEligible() {
		return
	}
	next := ffNoEvent
	var eligible uint64
	for _, t := range m.threads {
		if !t.active {
			continue
		}
		if t.frontStallUntil > m.now {
			if t.frontStallUntil < next {
				next = t.frontStallUntil
			}
			continue
		}
		if t != main {
			// Selectable speculative thread: the round-robin cursor keeps
			// rotating over these during the stall.
			eligible |= 1 << uint(t.idx)
		}
		// Scoreboard probe, mirroring issueInOrder: the thread is blocked
		// iff a source of the instruction at its pc is not ready. (All
		// function units are free — nothing issued this cycle — so a
		// structural stall is impossible.)
		blocked := false
		for _, loc := range m.code[t.pc].Uses {
			if r := t.sb[loc].ready; r > m.now {
				blocked = true
				if r < next {
					next = r
				}
				break
			}
		}
		if !blocked {
			return
		}
	}
	m.ffJump(main, s, next, eligible)
}

// fastForwardOOO attempts a stall jump on the out-of-order model after a
// cycle in which nothing retired, issued, or dispatched. Every active thread
// must have dispatch blocked and no issuable window record; the events are
// the completions of issued-but-unfinished records plus front-stall
// expiries. A thread with a data-ready unissued record vetoes the jump (it
// only failed to issue because selection passed it over this cycle).
func (m *Machine) fastForwardOOO(main *Thread, s CycleStats) {
	if !m.ffEligible() {
		return
	}
	next := ffNoEvent
	var eligible uint64
	for _, t := range m.threads {
		if !t.active || t.win == nil {
			continue
		}
		if t != main {
			eligible |= 1 << uint(t.idx)
		}
		w := t.win
		// Dispatch must be unable to proceed for a timed reason; otherwise
		// the thread would dispatch the cycle selection next picks it.
		if !(t.frontStallUntil > m.now || w.blocked >= 0 || w.haltAfterDrain ||
			w.full() || (w.waitDrain && w.size() > 0)) {
			return
		}
		if t.frontStallUntil > m.now && t.frontStallUntil < next {
			next = t.frontStallUntil
		}
		considered := 0
		for a := w.headAbs; a < w.tailAbs; a++ {
			r := w.at(a)
			if r.issued {
				if r.doneAt > m.now && r.doneAt < next {
					next = r.doneAt
				}
				continue
			}
			if considered >= m.Cfg.RSSize {
				// Outside the reservation-station view: not a wakeup
				// candidate until older records issue, which the issued-
				// record events already bound.
				continue
			}
			considered++
			ready := true
			for si := 0; si < r.nsrc; si++ {
				if !w.srcReady(r.srcs[si], m.now) {
					ready = false
					break
				}
			}
			if ready {
				return
			}
		}
	}
	m.ffJump(main, s, next, eligible)
}

// ffJump performs the jump: clamp the next-event cycle against the
// classification events and the watchdog, bulk-credit the skipped cycles,
// advance the selection cursor, and move the clock. s is the CycleStats of
// the cycle just simulated; since nothing can issue before the jump target,
// every skipped cycle would have produced the same stats.
func (m *Machine) ffJump(main *Thread, s CycleStats, next int64, eligible uint64) {
	if m.cycle != nil {
		// Never jump across a completion of one of main's pending fills:
		// the breakdown category of a stalled cycle is the deepest
		// outstanding fill's level, which changes at each completion.
		for _, p := range main.pending {
			if p.readyAt > m.now && p.readyAt < next {
				next = p.readyAt
			}
		}
	}
	if e, ok := m.Hier.EarliestPending(m.now); ok && e < next {
		next = e
	}
	if next == ffNoEvent {
		return
	}
	// Resume one cycle before the event so the event cycle itself is
	// simulated normally; never move past the watchdog boundary (the slow
	// path credits stall cycles up to exactly MaxCycles before timing out).
	target := next - 1
	if target > m.Cfg.MaxCycles {
		target = m.Cfg.MaxCycles
	}
	k := target - m.now
	if k <= 0 {
		return
	}
	if m.skip != nil {
		m.skip.Skip(m, main, s, k)
	}
	if eligible != 0 {
		m.advanceRR(k, eligible)
	}
	m.res.FastForwards++
	m.res.FastForwardedCycles += k
	m.now = target
}

// advanceRR advances the round-robin selection cursor exactly as k
// consecutive fully-stalled selection passes would, without iterating k
// times. With a static eligible set the cursor's next value is a pure
// function of its current value, so its orbit enters a cycle within
// len(threads)+1 steps; the final position follows by modular arithmetic.
func (m *Machine) advanceRR(k int64, eligible uint64) {
	var firstAt [64]int64
	var orbit [65]int
	for i := range m.threads {
		firstAt[i] = -1
	}
	rr := m.rr
	for i := int64(0); ; i++ {
		if i == k {
			m.rr = rr
			return
		}
		if f := firstAt[rr]; f >= 0 {
			period := i - f
			m.rr = orbit[f+(k-f)%period]
			return
		}
		firstAt[rr] = i
		orbit[i] = rr
		rr = m.stepRR(rr, eligible)
	}
}

// stepRR runs one thread-selection pass over a static eligible set (bit i
// set = threads[i] is active and selectable this cycle), mirroring the
// engines' selection loops: scan from the cursor, take up to
// ThreadsPerCycle-1 speculative threads, move the cursor past each pick.
func (m *Machine) stepRR(rr int, eligible uint64) int {
	picked, n := 0, 1
	for scan := 0; scan < len(m.threads) && picked < m.Cfg.ThreadsPerCycle-1 && n < maxSelect; scan++ {
		idx := (rr + scan) % len(m.threads)
		if eligible&(1<<uint(idx)) == 0 {
			continue
		}
		n++
		picked++
		rr = (idx + 1) % len(m.threads)
	}
	return rr
}
