package sim

import (
	"sync/atomic"

	"ssp/internal/ir"
	"ssp/internal/sim/mem"
)

// ExecHooks observes every architecturally executed instruction, fired at the
// top of execArch before any state changes (so a hook sees the pre-execution
// register file). The machine carries no hook by default: the per-instruction
// cost of instrumentation-off is a single nil check. Tracing (Tracer) and PC
// profiling (profileHooks) are both implemented on this interface.
type ExecHooks interface {
	// Exec is called once per executed instruction, including nullified
	// ones (a predicated-off instruction still occupies an issue slot).
	Exec(m *Machine, t *Thread, pc int)
}

// CycleStats is what the cycle-level engines hand the per-cycle hook: the
// main thread's issue outcome this cycle, which the default stats hook turns
// into the Figure 10 breakdown.
type CycleStats struct {
	// IssuedMain is how many instructions the main thread issued.
	IssuedMain int
	// StalledOnLoad reports whether the main thread's first blocked
	// instruction was scoreboard-stalled on an outstanding load, and
	// StallLevel the level satisfying that load (in-order model only).
	StalledOnLoad bool
	StallLevel    mem.Level
}

// CycleHooks observes every simulated cycle of the cycle-level engines. The
// default is statsHooks (cycle breakdown + context-utilization histogram);
// DisableStats removes it for pure-throughput runs, at the price of a Result
// whose Breakdown/SpecActiveHist are empty (and therefore fail
// check.Conservation, deliberately).
type CycleHooks interface {
	Cycle(m *Machine, main *Thread, s CycleStats)
}

// CycleSkipper is the optional bulk extension of CycleHooks consumed by the
// fast-forward timing core (fastforward.go). When the machine is fully
// stalled it does not simulate the dead cycles one at a time; instead it
// calls Skip once with the CycleStats every skipped cycle would have
// produced (nothing issues during a full stall, so they are all identical)
// and the number of cycles skipped. A hook that implements Cycle but not
// Skip — a per-cycle tracer, say — automatically disables fast-forwarding
// on its machine: the engines only jump when the installed hook understands
// bulk crediting, so per-cycle observers never miss a cycle.
type CycleSkipper interface {
	Skip(m *Machine, main *Thread, s CycleStats, cycles int64)
}

// statsHooks is the default CycleHooks: it maintains Result.Breakdown and
// Result.SpecActiveHist exactly as the engines did before the hook layer
// existed, so default-configured results are bit-identical. Its Skip
// implementation credits a fast-forwarded stall in bulk: k cycles land in
// the same breakdown category and the same utilization bucket that k
// per-cycle calls would have produced, so every conservation invariant
// (sum == Cycles) holds exactly across jumps.
type statsHooks struct{}

func (statsHooks) Cycle(m *Machine, main *Thread, s CycleStats) {
	m.accountCycle(main, s.IssuedMain, s.StalledOnLoad, s.StallLevel)
	m.recordUtilization()
}

func (statsHooks) Skip(m *Machine, main *Thread, s CycleStats, cycles int64) {
	m.accountCycles(main, s.IssuedMain, s.StalledOnLoad, s.StallLevel, cycles)
	m.res.SpecActiveHist[m.liveSpec] += cycles
}

// ProgressHooks is statsHooks plus a live cycle counter: it keeps the exact
// default accounting (the Result stays bit-identical, so a run observed this
// way is still cacheable and still passes the golden-stats and conservation
// gates) while publishing the machine's current cycle to C after every cycle
// and every fast-forward jump. Because it implements Skip, installing it does
// not turn the fast-forward core off. The serving layer installs one per job
// to stream progress over SSE without giving up memoization.
type ProgressHooks struct {
	inner statsHooks
	// C receives the count of completed simulated cycles; read it with
	// Load from any goroutine.
	C *atomic.Int64
}

func (p ProgressHooks) Cycle(m *Machine, main *Thread, s CycleStats) {
	p.inner.Cycle(m, main, s)
	p.C.Store(m.now)
}

func (p ProgressHooks) Skip(m *Machine, main *Thread, s CycleStats, cycles int64) {
	p.inner.Skip(m, main, s, cycles)
	// Skip fires before the engine advances m.now to the jump target.
	p.C.Store(m.now + cycles)
}

// profileHooks maintains Result.PCCount and Result.CallEdges when
// Config.Profile is set. It lives on the exec hook so profiling is free when
// off — the engines carry no profiling branches of their own.
type profileHooks struct{}

func (profileHooks) Exec(m *Machine, t *Thread, pc int) {
	if t.spec {
		return
	}
	m.res.PCCount[pc]++
	d := &m.code[pc]
	if d.Op != ir.OpCallB {
		return
	}
	// Indirect call about to execute (predicate permitting): record the
	// edge from the pre-execution branch register, the same value the
	// handler will jump through.
	if d.Qp != ir.PTrue && !t.Preds[d.Qp] {
		return
	}
	tgt := int(t.BRs[d.Bs])
	edges := m.res.CallEdges[int(d.ID)]
	if edges == nil {
		edges = make(map[int]uint64)
		m.res.CallEdges[int(d.ID)] = edges
	}
	edges[tgt]++
}

// execChain fans one exec event out to two hooks, letting a tracer and the
// profiler coexist.
type execChain struct{ a, b ExecHooks }

func (c execChain) Exec(m *Machine, t *Thread, pc int) {
	c.a.Exec(m, t, pc)
	c.b.Exec(m, t, pc)
}

// attachExec adds an exec hook, chaining after any already installed.
func (m *Machine) attachExec(h ExecHooks) {
	if m.exec == nil {
		m.exec = h
	} else {
		m.exec = execChain{m.exec, h}
	}
}

// AttachExec installs an instruction-level hook (tracers, external
// profilers). Hooks fire in attachment order.
func (m *Machine) AttachExec(h ExecHooks) { m.attachExec(h) }

// SetCycleHooks replaces the per-cycle hook. Passing nil disables per-cycle
// instrumentation entirely (see DisableStats). The machine's cached
// CycleSkipper view is refreshed alongside: a replacement hook without bulk
// Skip support turns the fast-forward core off for this machine.
func (m *Machine) SetCycleHooks(h CycleHooks) {
	m.cycle = h
	m.skip, _ = h.(CycleSkipper)
	// The cycle loops call the default stats recorder directly (no
	// interface dispatch) when it is the installed hook — the common case
	// for every matrix/serving run.
	_, m.statsDefault = h.(statsHooks)
}

// DisableStats detaches the default per-cycle stats recorder. The run gets
// faster; the Result's Breakdown and SpecActiveHist stay zero and no longer
// satisfy check.Conservation — use only for throughput measurements.
func (m *Machine) DisableStats() { m.SetCycleHooks(nil) }

// Now returns the current simulated cycle, for hook implementations.
func (m *Machine) Now() int64 { return m.now }
