package sim

import (
	"ssp/internal/ir"
	"ssp/internal/sim/decode"
	"ssp/internal/sim/mem"
)

// runInOrder is the 12-stage in-order SMT pipeline: per-thread program-order
// issue gated by a register scoreboard (an instruction stalls when it uses
// the destination of an outstanding load — the Itanium use-stall the paper
// exploits, §4.3), shared function units, and shared issue bandwidth of two
// bundles per cycle from at most two threads.
func (m *Machine) runInOrder() {
	main := m.main()
	var sel [maxSelect]*Thread
	for !m.mainDone {
		if m.now >= m.Cfg.MaxCycles {
			m.res.TimedOut = true
			return
		}
		if m.stop.Load() {
			// Cancelled via RunContext: bail between cycles, so the jump
			// target of an in-progress fast-forward hop is the most a
			// cancelled run overshoots by.
			return
		}
		m.now++
		intU, memU, brU, fpU := m.Cfg.IntUnits, m.Cfg.MemPorts, m.Cfg.BrUnits, m.Cfg.FPUnits

		// Thread selection: the non-speculative thread has priority; the
		// remaining bundle goes to speculative threads round-robin. With no
		// live speculative thread (every baseline cycle) the scan is skipped.
		n := 0
		sel[n] = main
		n++
		if m.liveSpec > 0 {
			for scan, picked := 0, 0; scan < len(m.threads) && picked < m.Cfg.ThreadsPerCycle-1 && n < len(sel); scan++ {
				// m.rr moves on every pick, so the index is recomputed from
				// it each iteration; rr and scan are both < len, so one
				// conditional subtract replaces the modulo.
				idx := m.rr + scan
				if idx >= len(m.threads) {
					idx -= len(m.threads)
				}
				t := m.threads[idx]
				if t == main || !t.active || t.frontStallUntil > m.now {
					continue
				}
				sel[n] = t
				n++
				picked++
				if m.rr = t.idx + 1; m.rr == len(m.threads) {
					m.rr = 0
				}
			}
		}
		slots := m.Cfg.IssueWidth
		if n > 1 {
			slots /= n
		}

		issuedMain := 0
		issuedAny := false
		stallLevel := mem.Level(0)
		stalledOnLoad := false
		for ti := 0; ti < n; ti++ {
			t := sel[ti]
			for s := 0; s < slots; s++ {
				issued, cont, lvl, onLoad := m.issueInOrder(t, &intU, &memU, &brU, &fpU)
				if issued {
					issuedAny = true
				}
				if t == main {
					if issued {
						issuedMain++
					} else if onLoad {
						stalledOnLoad, stallLevel = true, lvl
					}
				}
				if !issued || !cont || m.mainDone {
					break
				}
			}
			if m.mainDone {
				break
			}
		}
		stats := CycleStats{
			IssuedMain:    issuedMain,
			StalledOnLoad: stalledOnLoad,
			StallLevel:    stallLevel,
		}
		if m.cycle != nil {
			m.cycle.Cycle(m, main, stats)
		}
		if m.Cfg.FastForward && !issuedAny && !m.mainDone {
			m.fastForwardInOrder(main, stats)
		}
	}
}

// accountCycle classifies the cycle for the Figure 10 breakdown.
func (m *Machine) accountCycle(main *Thread, issuedMain int, stalledOnLoad bool, stallLevel mem.Level) {
	m.accountCycles(main, issuedMain, stalledOnLoad, stallLevel, 1)
}

// accountCycles classifies k consecutive identical cycles in one step — the
// bulk form behind both per-cycle accounting (k=1) and fast-forward stall
// crediting. The fast-forward core guarantees the classification is constant
// over the k cycles: it never jumps across a completion of one of main's
// pending fills, so the deepest outstanding level cannot change mid-span.
func (m *Machine) accountCycles(main *Thread, issuedMain int, stalledOnLoad bool, stallLevel mem.Level, k int64) {
	var cat Category
	switch {
	case issuedMain > 0:
		if _, any := main.deepestOutstanding(m.now); any {
			cat = CatCacheExec
		} else {
			cat = CatExec
		}
	case stalledOnLoad:
		cat = missCategory(stallLevel)
	case main.frontStallUntil > m.now:
		cat = CatOther
	default:
		if lvl, any := main.deepestOutstanding(m.now); any {
			cat = missCategory(lvl)
		} else {
			cat = CatOther
		}
	}
	m.res.Breakdown[cat] += k
}

// missCategory maps the level that satisfies an outstanding load to the
// paper's stall category: a load satisfied from memory is an L3 miss, from
// L3 an L2 miss, from L2 an L1 miss.
func missCategory(lvl mem.Level) Category {
	switch lvl {
	case mem.Mem:
		return CatL3
	case mem.L3:
		return CatL2
	default:
		return CatL1
	}
}

// issueInOrder tries to issue one instruction from t. It reports whether an
// instruction issued, whether the thread may continue issuing this cycle,
// and — when blocked — whether the block is a scoreboard stall on an
// outstanding load and at which level.
func (m *Machine) issueInOrder(t *Thread, intU, memU, brU, fpU *int) (issued, cont bool, lvl mem.Level, onLoad bool) {
	if !t.active || t.frontStallUntil > m.now {
		return false, false, 0, false
	}
	pc := t.pc
	d := &m.code[pc]
	// Structural hazard: required unit busy.
	switch d.FU {
	case decode.FUInt:
		if *intU == 0 {
			return false, false, 0, false
		}
	case decode.FUMem:
		if *memU == 0 {
			return false, false, 0, false
		}
	case decode.FUBr:
		if *brU == 0 {
			return false, false, 0, false
		}
	case decode.FUFP:
		if *fpU == 0 {
			return false, false, 0, false
		}
	}
	// Scoreboard: all sources ready.
	for _, loc := range d.Uses {
		if t.ready[loc] > m.now {
			if l := t.loadLevel[loc]; l != 0 {
				return false, false, mem.Level(l - 1), true
			}
			return false, false, 0, false
		}
	}
	switch d.FU {
	case decode.FUInt:
		*intU--
	case decode.FUMem:
		*memU--
	case decode.FUBr:
		*brU--
	case decode.FUFP:
		*fpU--
	}

	ef := m.execArch(t, pc)
	t.instrs++
	if t.spec {
		m.res.SpecInstrs++
		// >= so an activation executes at most MaxSpecInstrs instructions:
		// the ceiling is exactly the budget the safety verifier certifies
		// against (ssp.AnalyzeSafety), never that plus one.
		if t.instrs >= m.Cfg.MaxSpecInstrs {
			ef.kill = true
		}
	} else {
		m.res.MainInstrs++
	}

	// Default completion time for defined locations.
	lat := m.lat[d.Lat]
	for _, loc := range d.Defs {
		t.ready[loc] = m.now + lat
		t.loadLevel[loc] = 0
	}
	if !ef.nullified {
		switch ef.memKind {
		case memLoad:
			acc := m.Hier.Access(ef.memID, ef.memAddr, m.now, true)
			t.ready[ef.loadDest] = m.now + acc.Latency
			if acc.Level != mem.L1 {
				t.loadLevel[ef.loadDest] = uint8(acc.Level) + 1
				if m.cycle != nil {
					// Only the cycle hook's accounting consumes (and
					// compacts) pending fills; don't grow them unhooked.
					t.pending = append(t.pending, pendingFill{readyAt: m.now + acc.Latency, level: acc.Level})
				}
			}
		case memStore:
			m.Hier.Access(ef.memID, ef.memAddr, m.now, true)
		case memPrefetch:
			m.Hier.Prefetch(ef.memID, ef.memAddr, m.now)
		}
	}
	if ef.brCond {
		if m.Pred.PredictAndTrain(uint64(pc), ef.brTaken && !ef.nullified) {
			t.frontStallUntil = m.now + m.Cfg.MispredictPenalty
			m.res.Mispredicts++
		}
	}
	if d.Op == ir.OpChk && ef.nextPC != pc+1 {
		// The lightweight exception flushes the pipeline (§4.4.1).
		t.frontStallUntil = m.now + m.Cfg.SpawnFlushPenalty
	}
	if ef.kill {
		m.killThread(t)
		if !t.spec {
			// thread_kill_self on the non-speculative thread: without this
			// the loop would spin until the watchdog, since nothing else
			// sets mainDone. Flag it so RunProgram can surface the error.
			m.res.MainKilled = true
			m.mainDone = true
		}
		return true, false, 0, false
	}
	if ef.halt {
		m.mainDone = true
		return true, false, 0, false
	}
	t.pc = ef.nextPC
	return true, ef.nextPC == pc+1, 0, false
}
