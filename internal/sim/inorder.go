package sim

import (
	"ssp/internal/ir"
	"ssp/internal/sim/decode"
	"ssp/internal/sim/mem"
)

// runInOrder is the 12-stage in-order SMT pipeline: per-thread program-order
// issue gated by a register scoreboard (an instruction stalls when it uses
// the destination of an outstanding load — the Itanium use-stall the paper
// exploits, §4.3), shared function units, and shared issue bandwidth of two
// bundles per cycle from at most two threads.
func (m *Machine) runInOrder() {
	main := m.main()
	var sel [maxSelect]*Thread
	// The configuration is immutable for the whole run; hoisting the hot
	// fields out of the cycle loop keeps the per-cycle fixed cost — which
	// every issued instruction amortizes — down to real work.
	maxCycles := m.Cfg.MaxCycles
	cfgIntU, cfgMemU, cfgBrU, cfgFpU := m.Cfg.IntUnits, m.Cfg.MemPorts, m.Cfg.BrUnits, m.Cfg.FPUnits
	issueWidth := m.Cfg.IssueWidth
	fastForward := m.Cfg.FastForward
	steps := m.steps
	for !m.mainDone {
		if m.now >= maxCycles {
			m.res.TimedOut = true
			return
		}
		if m.now&63 == 0 && m.stop.Load() {
			// Cancelled via RunContext: bail between cycles (polled every
			// 64 cycles — one atomic load amortized over the window), so a
			// cancelled run overshoots by at most 64 cycles plus the jump
			// target of an in-progress fast-forward hop.
			return
		}
		m.now++
		intU, memU, brU, fpU := cfgIntU, cfgMemU, cfgBrU, cfgFpU

		// Thread selection: the non-speculative thread has priority; the
		// remaining bundle goes to speculative threads round-robin. With no
		// live speculative thread (every baseline cycle) the scan is skipped.
		n := 0
		sel[n] = main
		n++
		if m.liveSpec > 0 {
			for scan, picked := 0, 0; scan < len(m.threads) && picked < m.Cfg.ThreadsPerCycle-1 && n < len(sel); scan++ {
				// m.rr moves on every pick, so the index is recomputed from
				// it each iteration; rr and scan are both < len, so one
				// conditional subtract replaces the modulo.
				idx := m.rr + scan
				if idx >= len(m.threads) {
					idx -= len(m.threads)
				}
				t := m.threads[idx]
				if t == main || !t.active || t.frontStallUntil > m.now {
					continue
				}
				sel[n] = t
				n++
				picked++
				if m.rr = t.idx + 1; m.rr == len(m.threads) {
					m.rr = 0
				}
			}
		}
		slots := issueWidth
		if n > 1 {
			slots /= n
		}

		issuedMain := 0
		issuedAny := false
		stallLevel := mem.Level(0)
		stalledOnLoad := false
		for ti := 0; ti < n; ti++ {
			t := sel[ti]
			for s := 0; s < slots; {
				// Dispatch straight into the batched pure-step lane when
				// the thread sits on a compiled step (the common case on
				// ALU-dense code), skipping the per-call issueInOrder
				// preamble; the lane and the table path are interchangeable
				// per instruction, so the split is invisible to results.
				var k int
				var cont, onLoad bool
				var lvl mem.Level
				if steps != nil && t.active && t.frontStallUntil <= m.now && steps[t.pc] != nil {
					k, cont, lvl, onLoad = m.issueStepsInOrder(t, slots-s, &intU, &memU, &brU, &fpU)
				} else {
					k, cont, lvl, onLoad = m.issueInOrder(t, slots-s, &intU, &memU, &brU, &fpU)
				}
				s += k
				if k > 0 {
					issuedAny = true
				}
				if t == main {
					issuedMain += k
					if onLoad {
						stalledOnLoad, stallLevel = true, lvl
					}
				}
				if !cont || m.mainDone {
					break
				}
			}
			if m.mainDone {
				break
			}
		}
		if m.statsDefault {
			// Devirtualized default stats recorder (same effect as the
			// interface call below, minus the dynamic dispatch), with the
			// dominant case inlined: a cycle that issued main instructions
			// with no outstanding fill is pure execution.
			if issuedMain > 0 && len(main.pending) == 0 {
				m.res.Breakdown[CatExec]++
			} else {
				m.accountCycle(main, issuedMain, stalledOnLoad, stallLevel)
			}
			m.recordUtilization()
		} else if m.cycle != nil {
			m.cycle.Cycle(m, main, CycleStats{
				IssuedMain:    issuedMain,
				StalledOnLoad: stalledOnLoad,
				StallLevel:    stallLevel,
			})
		}
		if fastForward && !issuedAny && !m.mainDone {
			m.fastForwardInOrder(main, CycleStats{
				IssuedMain:    issuedMain,
				StalledOnLoad: stalledOnLoad,
				StallLevel:    stallLevel,
			})
		}
	}
}

// accountCycle classifies the cycle for the Figure 10 breakdown.
func (m *Machine) accountCycle(main *Thread, issuedMain int, stalledOnLoad bool, stallLevel mem.Level) {
	m.accountCycles(main, issuedMain, stalledOnLoad, stallLevel, 1)
}

// accountCycles classifies k consecutive identical cycles in one step — the
// bulk form behind both per-cycle accounting (k=1) and fast-forward stall
// crediting. The fast-forward core guarantees the classification is constant
// over the k cycles: it never jumps across a completion of one of main's
// pending fills, so the deepest outstanding level cannot change mid-span.
func (m *Machine) accountCycles(main *Thread, issuedMain int, stalledOnLoad bool, stallLevel mem.Level, k int64) {
	var cat Category
	switch {
	case issuedMain > 0:
		if _, any := main.deepestOutstanding(m.now); any {
			cat = CatCacheExec
		} else {
			cat = CatExec
		}
	case stalledOnLoad:
		cat = missCategory(stallLevel)
	case main.frontStallUntil > m.now:
		cat = CatOther
	default:
		if lvl, any := main.deepestOutstanding(m.now); any {
			cat = missCategory(lvl)
		} else {
			cat = CatOther
		}
	}
	m.res.Breakdown[cat] += k
}

// missCategory maps the level that satisfies an outstanding load to the
// paper's stall category: a load satisfied from memory is an L3 miss, from
// L3 an L2 miss, from L2 an L1 miss.
func missCategory(lvl mem.Level) Category {
	switch lvl {
	case mem.Mem:
		return CatL3
	case mem.L3:
		return CatL2
	default:
		return CatL1
	}
}

// issueInOrder tries to issue up to budget instructions from t. It reports
// how many issued (more than one only on the threaded pure-step fast lane),
// whether the thread may continue issuing this cycle, and — when blocked —
// whether the block is a scoreboard stall on an outstanding load and at
// which level.
func (m *Machine) issueInOrder(t *Thread, budget int, intU, memU, brU, fpU *int) (k int, cont bool, lvl mem.Level, onLoad bool) {
	if !t.active || t.frontStallUntil > m.now {
		return 0, false, 0, false
	}
	pc := t.pc
	d := &m.code[pc]
	// The caller (runInOrder) routes instructions with compiled pure steps
	// to issueStepsInOrder before getting here, so this path only sees
	// table-dispatch instructions.
	// Structural hazard: required unit busy.
	switch d.FU {
	case decode.FUInt:
		if *intU == 0 {
			return 0, false, 0, false
		}
	case decode.FUMem:
		if *memU == 0 {
			return 0, false, 0, false
		}
	case decode.FUBr:
		if *brU == 0 {
			return 0, false, 0, false
		}
	case decode.FUFP:
		if *fpU == 0 {
			return 0, false, 0, false
		}
	}
	// Scoreboard: all sources ready.
	for _, loc := range d.Uses {
		if e := &t.sb[loc]; e.ready > m.now {
			if e.loadLevel != 0 {
				return 0, false, mem.Level(e.loadLevel - 1), true
			}
			return 0, false, 0, false
		}
	}
	switch d.FU {
	case decode.FUInt:
		*intU--
	case decode.FUMem:
		*memU--
	case decode.FUBr:
		*brU--
	case decode.FUFP:
		*fpU--
	}

	ef := m.execArch(t, pc)
	t.instrs++
	if t.spec {
		m.res.SpecInstrs++
		// >= so an activation executes at most MaxSpecInstrs instructions:
		// the ceiling is exactly the budget the safety verifier certifies
		// against (ssp.AnalyzeSafety), never that plus one.
		if t.instrs >= m.Cfg.MaxSpecInstrs {
			ef.kill = true
		}
	} else {
		m.res.MainInstrs++
	}

	// Default completion time for defined locations.
	lat := m.lat[d.Lat]
	for _, loc := range d.Defs {
		t.sb[loc] = sbEntry{ready: m.now + lat}
	}
	if !ef.nullified {
		switch ef.memKind {
		case memLoad:
			acc := m.Hier.Access(ef.memID, ef.memAddr, m.now, true)
			t.sb[ef.loadDest].ready = m.now + acc.Latency
			if acc.Level != mem.L1 {
				t.sb[ef.loadDest].loadLevel = uint8(acc.Level) + 1
				if m.cycle != nil {
					// Only the cycle hook's accounting consumes (and
					// compacts) pending fills; don't grow them unhooked.
					t.pending = append(t.pending, pendingFill{readyAt: m.now + acc.Latency, level: acc.Level})
				}
			}
		case memStore:
			m.Hier.Access(ef.memID, ef.memAddr, m.now, true)
		case memPrefetch:
			m.Hier.Prefetch(ef.memID, ef.memAddr, m.now)
		}
	}
	if ef.brCond {
		if m.Pred.PredictAndTrain(uint64(pc), ef.brTaken && !ef.nullified) {
			t.frontStallUntil = m.now + m.Cfg.MispredictPenalty
			m.res.Mispredicts++
		}
	}
	if d.Op == ir.OpChk && ef.nextPC != pc+1 {
		// The lightweight exception flushes the pipeline (§4.4.1).
		t.frontStallUntil = m.now + m.Cfg.SpawnFlushPenalty
	}
	if ef.kill {
		m.killThread(t)
		if !t.spec {
			// thread_kill_self on the non-speculative thread: without this
			// the loop would spin until the watchdog, since nothing else
			// sets mainDone. Flag it so RunProgram can surface the error.
			m.res.MainKilled = true
			m.mainDone = true
		}
		return 1, false, 0, false
	}
	if ef.halt {
		m.mainDone = true
		return 1, false, 0, false
	}
	t.pc = ef.nextPC
	return 1, ef.nextPC == pc+1, 0, false
}

// issueStepsInOrder is issueInOrder's fast lane for instructions the threaded
// core compiled to pure steps: no memory access, no control transfer, no
// halt/kill, next PC always pc+1. It batches: as long as the next instruction
// also has a pure step and the slot budget lasts, it keeps issuing without
// returning to the cycle loop, amortizing the per-call overhead the table
// path pays per instruction. Each constituent issue replicates the table path
// exactly — structural-hazard check, scoreboard, per-instruction accounting,
// speculative budget enforcement, scoreboard writeback — only the archEffect
// round-trip and its post-execution switches are gone.
// check.ThreadedEquivalence holds the two paths bit-identical.
func (m *Machine) issueStepsInOrder(t *Thread, budget int, intU, memU, brU, fpU *int) (k int, cont bool, lvl mem.Level, onLoad bool) {
	pc := t.pc
	steps := m.steps
	info := m.stepInfo
	now := m.now
	// Per-instruction bookkeeping — the exec hook and the speculative budget
	// check — is only needed for speculative threads or when an external
	// oracle is attached; on the plain main-thread path the counters are
	// settled once at loop exit instead (nothing observes them mid-batch:
	// pure steps reach no hook, no memory system, and no kill/halt).
	perInstr := t.spec || m.exec != nil
	s := steps[pc] // non-nil: the caller dispatched here on it
	for {
		// The compact StepInfo record carries everything the issue loop
		// needs — operand locations, FU, latency class — in one fixed-size
		// read, with no decode-table Uses/Defs slice chases.
		si := &info[pc]
		var u *int
		switch si.FU {
		case decode.FUInt:
			u = intU
		case decode.FUMem:
			u = memU // liw/lir occupy a memory port
		case decode.FUBr:
			u = brU
		case decode.FUFP:
			u = fpU
		}
		if u != nil && *u == 0 {
			break
		}
		// Scoreboard: all sources ready.
		for i := 0; i < int(si.NU); i++ {
			if e := &t.sb[si.Uses[i]]; e.ready > now {
				if e.loadLevel != 0 {
					lvl, onLoad = mem.Level(e.loadLevel-1), true
				}
				goto out
			}
		}
		if u != nil {
			*u--
		}
		if perInstr {
			if m.exec != nil {
				m.exec.Exec(m, t, pc)
			}
			s(&t.Ctx)
			k++
			t.instrs++
			if t.spec {
				m.res.SpecInstrs++
				// >= for the same reason as the table path: the activation
				// never exceeds the certified MaxSpecInstrs budget.
				if t.instrs >= m.Cfg.MaxSpecInstrs {
					pc++
					t.pc = pc
					m.killThread(t)
					return k, false, 0, false
				}
			} else {
				m.res.MainInstrs++
			}
		} else {
			s(&t.Ctx)
			k++
		}
		lat := m.lat[si.Lat]
		for i := 0; i < int(si.ND); i++ {
			t.sb[si.Defs[i]] = sbEntry{ready: now + lat}
		}
		pc++
		if k == budget {
			cont = true
			break
		}
		if s = steps[pc]; s == nil {
			cont = true
			break
		}
	}
out:
	t.pc = pc
	if !perInstr {
		t.instrs += int64(k)
		m.res.MainInstrs += int64(k)
	}
	return k, cont, lvl, onLoad
}
