package sim

import (
	"context"
	"fmt"

	"ssp/internal/ir"
	"ssp/internal/sim/decode"
	"ssp/internal/sim/mem"
	"ssp/internal/sim/threaded"
)

// InterpResult is the outcome of a pure functional interpretation.
type InterpResult struct {
	Instrs int64
	Regs   [ir.NumRegs]uint64
	Mem    *mem.Memory
}

// Interpret executes only the main thread functionally, with no timing and no
// speculative contexts: the machine runs in its explicit no-speculation mode,
// so chk.c never raises its exception (it behaves as a nop, exactly its
// architectural fallback) and every spawn is counted as ignored. It is the
// reference semantics the cycle-level engines are differentially tested
// against, and doubles as a fast sanity check that an SSP-enhanced binary
// leaves the main thread's architectural behaviour unchanged (§2: speculative
// execution "does not alter the architecture state of the main thread"). cfg
// selects the memory sizing and context count under test so the
// interpretation matches the configuration the cycle models run with.
func Interpret(cfg Config, img *ir.Image, maxInstrs int64) (*InterpResult, error) {
	return InterpretPredecoded(cfg, decode.Predecode(img), maxInstrs)
}

// InterpretPredecoded is Interpret over an already-predecoded image, for
// callers that share one decode across engines and configurations.
func InterpretPredecoded(cfg Config, dp *decode.Program, maxInstrs int64) (*InterpResult, error) {
	if cfg.Threaded && !cfg.Profile {
		// The threaded core executes the compiled block chains directly —
		// no machine, no dispatch table, no per-PC loop. Profiling runs
		// need the per-instruction exec hook and stay on the table path;
		// so does any program whose control flow the chains cannot
		// represent (the rare ErrUnthreadable fallthrough below).
		if r, err, ok := interpretThreaded(dp, maxInstrs); ok {
			return r, err
		}
	}
	m := NewPredecoded(cfg, dp)
	m.noSpec = true
	t := m.main()
	t.active = true
	t.pc = dp.Img.Entry
	var n int64
	for n < maxInstrs {
		ef := m.execArch(t, t.pc)
		n++
		if ef.halt {
			return &InterpResult{Instrs: n, Regs: t.Regs, Mem: m.Mem}, nil
		}
		if ef.kill {
			return nil, fmt.Errorf("sim: main thread executed kill at pc %d", t.pc)
		}
		t.pc = ef.nextPC
	}
	return nil, fmt.Errorf("sim: interpretation exceeded %d instructions", maxInstrs)
}

// interpretThreaded runs the main thread over the closure-threaded chains.
// The false return means the chains cannot represent the program's control
// flow (statically, or a dynamic branch-register target mid-block) and the
// caller must fall back to table dispatch — the fallback re-executes from a
// fresh memory image, so a mid-run bailout is still exact.
func interpretThreaded(dp *decode.Program, maxInstrs int64) (*InterpResult, error, bool) {
	tp := ThreadedProgram(dp)
	if tp.Unthreadable {
		return nil, nil, false
	}
	x := &threaded.Ctx{Mem: mem.NewMemory()}
	x.Mem.InstallSnapshot(dp.Mem)
	n, err := tp.Run(x, dp.Img.Entry, maxInstrs)
	switch e := err.(type) {
	case nil:
		return &InterpResult{Instrs: n, Regs: x.Regs, Mem: x.Mem}, nil, true
	case *threaded.KillError:
		return nil, fmt.Errorf("sim: main thread executed kill at pc %d", e.PC), true
	case *threaded.LimitError:
		return nil, fmt.Errorf("sim: interpretation exceeded %d instructions", maxInstrs), true
	default: // threaded.ErrUnthreadable
		return nil, nil, false
	}
}

// RunProgram links and runs a program under the given configuration.
func RunProgram(cfg Config, p *ir.Program) (*Result, error) {
	return RunProgramContext(context.Background(), cfg, p)
}

// RunProgramContext is RunProgram under a context: a cancelled run returns
// ctx.Err() promptly (see Machine.RunContext) instead of simulating on to
// the watchdog limit.
func RunProgramContext(ctx context.Context, cfg Config, p *ir.Program) (*Result, error) {
	img, err := ir.Link(p)
	if err != nil {
		return nil, err
	}
	res, err := New(cfg, img).RunContext(ctx)
	if err != nil {
		return nil, err
	}
	if res.TimedOut {
		return res, fmt.Errorf("sim: watchdog expired after %d cycles", res.Cycles)
	}
	if res.MainKilled {
		return res, fmt.Errorf("sim: main thread executed thread_kill_self after %d cycles", res.Cycles)
	}
	return res, nil
}
