package sim

import (
	"context"
	"fmt"

	"ssp/internal/ir"
	"ssp/internal/sim/decode"
	"ssp/internal/sim/mem"
)

// InterpResult is the outcome of a pure functional interpretation.
type InterpResult struct {
	Instrs int64
	Regs   [ir.NumRegs]uint64
	Mem    *mem.Memory
}

// Interpret executes only the main thread functionally, with no timing and no
// speculative contexts: the machine runs in its explicit no-speculation mode,
// so chk.c never raises its exception (it behaves as a nop, exactly its
// architectural fallback) and every spawn is counted as ignored. It is the
// reference semantics the cycle-level engines are differentially tested
// against, and doubles as a fast sanity check that an SSP-enhanced binary
// leaves the main thread's architectural behaviour unchanged (§2: speculative
// execution "does not alter the architecture state of the main thread"). cfg
// selects the memory sizing and context count under test so the
// interpretation matches the configuration the cycle models run with.
func Interpret(cfg Config, img *ir.Image, maxInstrs int64) (*InterpResult, error) {
	return InterpretPredecoded(cfg, decode.Predecode(img), maxInstrs)
}

// InterpretPredecoded is Interpret over an already-predecoded image, for
// callers that share one decode across engines and configurations.
func InterpretPredecoded(cfg Config, dp *decode.Program, maxInstrs int64) (*InterpResult, error) {
	m := NewPredecoded(cfg, dp)
	m.noSpec = true
	t := m.main()
	t.active = true
	t.pc = dp.Img.Entry
	var n int64
	for n < maxInstrs {
		ef := m.execArch(t, t.pc)
		n++
		if ef.halt {
			return &InterpResult{Instrs: n, Regs: t.regs, Mem: m.Mem}, nil
		}
		if ef.kill {
			return nil, fmt.Errorf("sim: main thread executed kill at pc %d", t.pc)
		}
		t.pc = ef.nextPC
	}
	return nil, fmt.Errorf("sim: interpretation exceeded %d instructions", maxInstrs)
}

// RunProgram links and runs a program under the given configuration.
func RunProgram(cfg Config, p *ir.Program) (*Result, error) {
	return RunProgramContext(context.Background(), cfg, p)
}

// RunProgramContext is RunProgram under a context: a cancelled run returns
// ctx.Err() promptly (see Machine.RunContext) instead of simulating on to
// the watchdog limit.
func RunProgramContext(ctx context.Context, cfg Config, p *ir.Program) (*Result, error) {
	img, err := ir.Link(p)
	if err != nil {
		return nil, err
	}
	res, err := New(cfg, img).RunContext(ctx)
	if err != nil {
		return nil, err
	}
	if res.TimedOut {
		return res, fmt.Errorf("sim: watchdog expired after %d cycles", res.Cycles)
	}
	if res.MainKilled {
		return res, fmt.Errorf("sim: main thread executed thread_kill_self after %d cycles", res.Cycles)
	}
	return res, nil
}
