package sim

import (
	"fmt"
	"math"

	"ssp/internal/ir"
	"ssp/internal/sim/bpred"
	"ssp/internal/sim/mem"
)

// fuClass groups opcodes by the function unit they occupy.
type fuClass uint8

const (
	fuNone fuClass = iota
	fuInt
	fuMem
	fuBr
	fuFP
)

// libSlots is the number of live-in buffer slots per context (the modelled
// RSE backing-store window). The paper's slices need ~3-5 live-ins
// (Table 2).
const libSlots = ir.LIBSlots

// Thread is one hardware thread context.
type Thread struct {
	idx    int
	active bool
	spec   bool

	regs  [ir.NumRegs]uint64
	preds [ir.NumPreds]bool
	brs   [ir.NumBRs]uint64
	fregs [ir.NumFRs]float64
	pc    int

	inLIB  [libSlots]uint64
	outLIB [libSlots]uint64

	// resumePC is where the main thread resumes after a chk.c stub, set
	// when the exception is taken and consumed by the stub's spawn
	// (Figure 7: "The main thread resumes its normal execution after
	// executing the stub block as its recovery code").
	resumePC int

	// frontStallUntil blocks issue/dispatch until the given cycle
	// (misprediction refill, spawn flush, thread startup).
	frontStallUntil int64
	// lastChkTaken rate-limits chk.c exceptions (Config.SpawnCooldown).
	lastChkTaken int64

	instrs int64

	// In-order scoreboard: per-location ready cycle and, for locations
	// produced by an outstanding load, the satisfying level + 1.
	ready     [ir.NumLocs]int64
	loadLevel [ir.NumLocs]uint8

	// pending tracks outstanding cache fills (for accounting).
	pending []pendingFill

	// OOO state (nil on the in-order model).
	win *window
}

type pendingFill struct {
	readyAt int64
	level   mem.Level
}

// deepestOutstanding returns the deepest level among outstanding fills, or
// (0,false) when none remain. Completed entries are compacted away.
func (t *Thread) deepestOutstanding(now int64) (mem.Level, bool) {
	out := t.pending[:0]
	var deepest mem.Level
	found := false
	for _, p := range t.pending {
		if p.readyAt > now {
			out = append(out, p)
			if !found || p.level > deepest {
				deepest = p.level
				found = true
			}
		}
	}
	t.pending = out
	return deepest, found
}

// decoded caches per-PC analysis of the linked code.
type decoded struct {
	uses []ir.Loc
	defs []ir.Loc
	fu   fuClass
	lat  int64
}

// Machine simulates one program on one machine model.
type Machine struct {
	Cfg  Config
	Img  *ir.Image
	Mem  *mem.Memory
	Hier *mem.Hierarchy
	Pred *bpred.Predictor

	threads []*Thread
	dec     []decoded
	now     int64
	res     Result
	tracer  *Tracer

	mainDone bool
	rr       int // round-robin cursor over speculative threads
}

// New builds a machine for the image under the given configuration.
func New(cfg Config, img *ir.Image) *Machine {
	m := &Machine{
		Cfg:  cfg,
		Img:  img,
		Mem:  mem.NewMemory(),
		Hier: mem.NewHierarchy(cfg.Mem),
		Pred: bpred.New(),
	}
	m.Mem.Install(img.Data)
	m.threads = make([]*Thread, cfg.Contexts)
	for i := range m.threads {
		m.threads[i] = &Thread{idx: i, resumePC: -1, lastChkTaken: -1 << 40}
	}
	m.dec = make([]decoded, len(img.Code))
	for pc := range img.Code {
		in := &img.Code[pc].I
		d := &m.dec[pc]
		d.uses = in.AppendUses(nil)
		d.defs = in.AppendDefs(nil)
		d.fu, d.lat = classify(cfg, in)
	}
	if cfg.Profile {
		m.res.PCCount = make([]uint64, len(img.Code))
		m.res.CallEdges = make(map[int]map[int]uint64)
	}
	// Buckets 0..Contexts: normally at most Contexts-1 speculative threads
	// exist (the main thread holds context 0), but a freed main context can
	// be rebound speculatively, so the histogram covers every context being
	// speculative. Sizing it Contexts (and guarding the index) silently
	// dropped that last bucket, breaking sum(SpecActiveHist) == Cycles.
	m.res.SpecActiveHist = make([]int64, cfg.Contexts+1)
	return m
}

// recordUtilization tallies the number of active speculative contexts this
// cycle. Every cycle lands in exactly one bucket, so the histogram always
// sums to Cycles (asserted by check.Conservation).
func (m *Machine) recordUtilization() {
	n := 0
	for _, t := range m.threads {
		if t.active && t.spec {
			n++
		}
	}
	m.res.SpecActiveHist[n]++
}

func classify(cfg Config, in *ir.Instr) (fuClass, int64) {
	switch in.Op {
	case ir.OpNop, ir.OpKill, ir.OpHalt:
		return fuNone, 1
	case ir.OpMul:
		return fuInt, cfg.MulLat
	case ir.OpMov, ir.OpMovI, ir.OpCmp, ir.OpMovFromBR, ir.OpMovBR,
		ir.OpAdd, ir.OpSub, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr:
		return fuInt, 1
	case ir.OpLd, ir.OpSt, ir.OpLfetch, ir.OpFLd, ir.OpFSt:
		return fuMem, 1 // loads get their latency from the hierarchy
	case ir.OpLiw, ir.OpLir:
		return fuMem, cfg.LIBCopyLat
	case ir.OpBr, ir.OpCall, ir.OpCallB, ir.OpRet, ir.OpChk, ir.OpSpawn:
		return fuBr, 1
	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFMA, ir.OpFCmp:
		return fuFP, cfg.FPLat
	case ir.OpSetF, ir.OpGetF:
		return fuInt, 2 // cross-file moves take an extra cycle
	}
	return fuInt, 1
}

// main returns the main thread (context 0).
func (m *Machine) main() *Thread { return m.threads[0] }

// freeContext returns an inactive context, or nil.
func (m *Machine) freeContext() *Thread {
	for _, t := range m.threads {
		if !t.active {
			return t
		}
	}
	return nil
}

// archEffect captures everything the engines need to apply timing after the
// architectural execution of one instruction.
type archEffect struct {
	nextPC    int
	nullified bool

	memKind  uint8 // 0 none, 1 load, 2 store, 3 prefetch
	memAddr  uint64
	memID    int
	loadDest ir.Loc

	brCond  bool // conditional branch needing prediction
	brTaken bool

	halt bool
	kill bool
}

const (
	memNone uint8 = iota
	memLoad
	memStore
	memPrefetch
)

// execArch performs the architectural effects of the instruction at pc for
// thread t: register, predicate, branch-register, memory, live-in buffer,
// spawn and chk.c context effects, and the next PC. Timing (latencies, FU
// occupancy, penalties) is the engines' business.
func (m *Machine) execArch(t *Thread, pc int) archEffect {
	if m.tracer != nil {
		m.trace(t, pc)
	}
	l := &m.Img.Code[pc]
	in := &l.I
	ef := archEffect{nextPC: pc + 1, memID: in.ID}
	if in.Qp != ir.PTrue && !t.preds[in.Qp] {
		ef.nullified = true
		if in.Op == ir.OpBr {
			ef.brCond = true // trained as not-taken
		}
		return ef
	}
	op2 := func() uint64 {
		if in.UseImm {
			return uint64(in.Imm)
		}
		return t.regs[in.Rb]
	}
	setReg := func(r ir.Reg, v uint64) {
		if r != ir.RegZero {
			t.regs[r] = v
		}
	}
	switch in.Op {
	case ir.OpNop:
	case ir.OpAdd:
		setReg(in.Rd, t.regs[in.Ra]+op2())
	case ir.OpSub:
		setReg(in.Rd, t.regs[in.Ra]-op2())
	case ir.OpMul:
		setReg(in.Rd, t.regs[in.Ra]*op2())
	case ir.OpAnd:
		setReg(in.Rd, t.regs[in.Ra]&op2())
	case ir.OpOr:
		setReg(in.Rd, t.regs[in.Ra]|op2())
	case ir.OpXor:
		setReg(in.Rd, t.regs[in.Ra]^op2())
	case ir.OpShl:
		setReg(in.Rd, t.regs[in.Ra]<<(op2()&63))
	case ir.OpShr:
		setReg(in.Rd, t.regs[in.Ra]>>(op2()&63))
	case ir.OpMov:
		setReg(in.Rd, t.regs[in.Ra])
	case ir.OpMovI:
		setReg(in.Rd, uint64(in.Imm))
	case ir.OpCmp:
		a, b := t.regs[in.Ra], op2()
		var r bool
		switch in.Cond {
		case ir.CondEQ:
			r = a == b
		case ir.CondNE:
			r = a != b
		case ir.CondLT:
			r = int64(a) < int64(b)
		case ir.CondLE:
			r = int64(a) <= int64(b)
		case ir.CondGT:
			r = int64(a) > int64(b)
		case ir.CondGE:
			r = int64(a) >= int64(b)
		case ir.CondLTU:
			r = a < b
		case ir.CondGEU:
			r = a >= b
		}
		if in.Pd1 != ir.PTrue {
			t.preds[in.Pd1] = r
		}
		if in.Pd2 != ir.PTrue {
			t.preds[in.Pd2] = !r
		}
	case ir.OpLd:
		addr := t.regs[in.Ra] + uint64(in.Disp)
		setReg(in.Rd, m.Mem.Load(addr))
		if in.PostInc != 0 {
			setReg(in.Ra, t.regs[in.Ra]+uint64(in.PostInc))
		}
		ef.memKind, ef.memAddr = memLoad, addr
		ef.loadDest = ir.GRLoc(in.Rd)
	case ir.OpSt:
		addr := t.regs[in.Ra] + uint64(in.Disp)
		if t.spec {
			// P-slices never contain stores (§2); if one sneaks into a
			// speculative thread the hardware suppresses it so the main
			// thread's architectural state is never altered.
			m.res.SpecStores++
		} else {
			m.Mem.Store(addr, t.regs[in.Rb])
			ef.memKind, ef.memAddr = memStore, addr
		}
	case ir.OpLfetch:
		ef.memKind, ef.memAddr = memPrefetch, t.regs[in.Ra]+uint64(in.Disp)
	case ir.OpBr:
		ef.brTaken = true
		ef.brCond = in.Qp != ir.PTrue
		ef.nextPC = int(l.Tgt)
	case ir.OpCall:
		t.brs[in.Bd] = uint64(pc + 1)
		ef.nextPC = int(l.Tgt)
	case ir.OpCallB:
		tgt := int(t.brs[in.Bs])
		t.brs[in.Bd] = uint64(pc + 1)
		ef.nextPC = tgt
		if m.res.CallEdges != nil && !t.spec {
			edges := m.res.CallEdges[in.ID]
			if edges == nil {
				edges = make(map[int]uint64)
				m.res.CallEdges[in.ID] = edges
			}
			edges[tgt]++
		}
	case ir.OpRet:
		ef.nextPC = int(t.brs[in.Bs])
	case ir.OpMovBR:
		if in.Target != "" {
			t.brs[in.Bd] = uint64(l.Tgt)
		} else {
			t.brs[in.Bd] = t.regs[in.Ra]
		}
	case ir.OpMovFromBR:
		setReg(in.Rd, t.brs[in.Bs])
	case ir.OpChk:
		if !t.spec && m.now-t.lastChkTaken >= m.Cfg.SpawnCooldown {
			if m.freeContext() != nil {
				// Lightweight exception: divert to the stub block.
				m.res.ChkTaken++
				t.lastChkTaken = m.now
				t.resumePC = pc + 1
				ef.nextPC = int(l.Tgt)
				ef.brTaken = true
			}
		}
	case ir.OpSpawn:
		if c := m.freeContext(); c != nil {
			m.startThread(c, int(l.Tgt), t)
			m.res.Spawns++
		} else {
			m.res.SpawnsIgnored++
		}
		if t.resumePC >= 0 {
			ef.nextPC = t.resumePC
			t.resumePC = -1
			ef.brTaken = true
		}
	case ir.OpLiw:
		t.outLIB[in.Imm&(libSlots-1)] = t.regs[in.Ra]
	case ir.OpLir:
		setReg(in.Rd, t.inLIB[in.Imm&(libSlots-1)])
	case ir.OpKill:
		ef.kill = true
	case ir.OpHalt:
		if t.spec {
			ef.kill = true
		} else {
			ef.halt = true
		}
	case ir.OpFAdd:
		t.setFR(in.Fd, t.fr(in.Fa)+t.fr(in.Fb))
	case ir.OpFSub:
		t.setFR(in.Fd, t.fr(in.Fa)-t.fr(in.Fb))
	case ir.OpFMul:
		t.setFR(in.Fd, t.fr(in.Fa)*t.fr(in.Fb))
	case ir.OpFMA:
		t.setFR(in.Fd, t.fr(in.Fa)*t.fr(in.Fb)+t.fr(in.Fc))
	case ir.OpFLd:
		addr := t.regs[in.Ra] + uint64(in.Disp)
		t.setFR(in.Fd, math.Float64frombits(m.Mem.Load(addr)))
		ef.memKind, ef.memAddr = memLoad, addr
		ef.loadDest = ir.FRLoc(in.Fd)
	case ir.OpFSt:
		addr := t.regs[in.Ra] + uint64(in.Disp)
		if t.spec {
			m.res.SpecStores++
		} else {
			m.Mem.Store(addr, math.Float64bits(t.fr(in.Fa)))
			ef.memKind, ef.memAddr = memStore, addr
		}
	case ir.OpFCmp:
		a, b := t.fr(in.Fa), t.fr(in.Fb)
		var r bool
		switch in.Cond {
		case ir.CondEQ:
			r = a == b
		case ir.CondNE:
			r = a != b
		case ir.CondLT, ir.CondLTU:
			r = a < b
		case ir.CondLE:
			r = a <= b
		case ir.CondGT:
			r = a > b
		case ir.CondGE, ir.CondGEU:
			r = a >= b
		}
		if in.Pd1 != ir.PTrue {
			t.preds[in.Pd1] = r
		}
		if in.Pd2 != ir.PTrue {
			t.preds[in.Pd2] = !r
		}
	case ir.OpSetF:
		t.setFR(in.Fd, math.Float64frombits(t.regs[in.Ra]))
	case ir.OpGetF:
		setReg(in.Rd, math.Float64bits(t.fr(in.Fa)))
	}
	return ef
}

// fr reads an FP register, honoring the hardwired f0 = +0.0 and f1 = +1.0.
func (t *Thread) fr(f ir.FR) float64 {
	switch f {
	case ir.FZero:
		return 0
	case ir.FOne:
		return 1
	}
	return t.fregs[f]
}

// setFR writes an FP register; writes to the hardwired f0/f1 are dropped.
func (t *Thread) setFR(f ir.FR, v float64) {
	if f != ir.FZero && f != ir.FOne {
		t.fregs[f] = v
	}
}

// startThread initializes a speculative thread at the target PC, handing it
// the parent's outgoing live-in buffer — the inter-thread communication path
// through the RSE backing store (§2.1).
func (m *Machine) startThread(c *Thread, pc int, parent *Thread) {
	idx := c.idx
	*c = Thread{idx: idx, active: true, spec: true, pc: pc, resumePC: -1}
	c.inLIB = parent.outLIB
	c.frontStallUntil = m.now + m.Cfg.SpawnStartup
	if m.Cfg.Model == OOO {
		c.win = newWindow(m.Cfg.ROBSize)
	}
}

// killThread frees a context.
func (m *Machine) killThread(t *Thread) {
	t.active = false
	t.win = nil
}

// Run executes the program to completion of the main thread and returns the
// result. It dispatches on the configured model.
func (m *Machine) Run() (*Result, error) {
	m.main().active = true
	m.main().pc = m.Img.Entry
	switch m.Cfg.Model {
	case InOrder:
		m.runInOrder()
	case OOO:
		m.runOOO()
	default:
		return nil, fmt.Errorf("sim: unknown model %v", m.Cfg.Model)
	}
	m.res.Cycles = m.now
	m.res.Hier = m.Hier
	m.res.FinalRegs = m.main().regs
	m.res.MemChecksum = m.Mem.Checksum()
	r := m.res
	return &r, nil
}
