package sim

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"ssp/internal/ir"
	"ssp/internal/sim/bpred"
	"ssp/internal/sim/decode"
	"ssp/internal/sim/mem"
	"ssp/internal/sim/threaded"
)

// libSlots is the number of live-in buffer slots per context (the modelled
// RSE backing-store window). The paper's slices need ~3-5 live-ins
// (Table 2).
const libSlots = ir.LIBSlots

// Thread is one hardware thread context. Its architectural state — register
// files, predicates, branch registers, live-in buffers — is the embedded
// threaded.Ctx, the same structure the closure-threaded execution core's
// compiled closures write, so the engines can run specialized steps against
// thread state with no copying or indirection. Ctx.Mem stays nil on engine
// threads (their memory instructions take the table path, where the
// hierarchy timing lives).
type Thread struct {
	idx    int
	active bool
	spec   bool

	threaded.Ctx
	pc int

	// resumePC is where the main thread resumes after a chk.c stub, set
	// when the exception is taken and consumed by the stub's spawn
	// (Figure 7: "The main thread resumes its normal execution after
	// executing the stub block as its recovery code").
	resumePC int

	// frontStallUntil blocks issue/dispatch until the given cycle
	// (misprediction refill, spawn flush, thread startup).
	frontStallUntil int64
	// lastChkTaken rate-limits chk.c exceptions (Config.SpawnCooldown).
	lastChkTaken int64

	instrs int64

	// In-order scoreboard: per-location ready cycle and, for locations
	// produced by an outstanding load, the satisfying level + 1. One array
	// of pairs rather than two parallel arrays: the issue loop touches
	// ready and loadLevel of the same location back to back, so pairing
	// them halves the bounds checks and keeps both on one cache line.
	sb [ir.NumLocs]sbEntry

	// pending tracks outstanding cache fills (for accounting; only
	// maintained while cycle hooks are installed).
	pending []pendingFill

	// OOO state (nil on the in-order model).
	win *window
}

// sbEntry is one in-order scoreboard slot: the cycle its location becomes
// ready and, while an outstanding load produces it, the satisfying memory
// level + 1 (0 for ALU results and L1 hits).
type sbEntry struct {
	ready     int64
	loadLevel uint8
}

// Context returns the hardware context index of the thread.
func (t *Thread) Context() int { return t.idx }

// Instrs returns how many instructions the thread has executed in its
// current activation (reset on every spawn). External oracles — the
// safety-budget hook in internal/check — read it from an ExecHooks callback,
// which fires before the count includes the instruction being executed.
func (t *Thread) Instrs() int64 { return t.instrs }

// Speculative reports whether the thread runs a p-slice rather than the main
// program.
func (t *Thread) Speculative() bool { return t.spec }

type pendingFill struct {
	readyAt int64
	level   mem.Level
}

// deepestOutstanding returns the deepest level among outstanding fills, or
// (0,false) when none remain. Completed entries are compacted away.
func (t *Thread) deepestOutstanding(now int64) (mem.Level, bool) {
	out := t.pending[:0]
	var deepest mem.Level
	found := false
	for _, p := range t.pending {
		if p.readyAt > now {
			out = append(out, p)
			if !found || p.level > deepest {
				deepest = p.level
				found = true
			}
		}
	}
	t.pending = out
	return deepest, found
}

// Machine simulates one program on one machine model. Its execution core is
// predecoded: architectural execution dispatches through a handler table over
// the dense decode.Decoded sidecar, never through ir.Instr.
type Machine struct {
	Cfg  Config
	Img  *ir.Image
	Mem  *mem.Memory
	Hier *mem.Hierarchy
	Pred *bpred.Predictor

	// code is the predecoded sidecar (shared, immutable) and lat the
	// machine's resolution of the config-independent latency classes.
	code []decode.Decoded
	lat  [decode.NumLatClasses]int64

	threads []*Thread
	now     int64
	res     Result
	// ef is execArch's scratch effect slot (see exec.go).
	ef archEffect

	// thr is the closure-threaded compile of the image (nil with
	// Config.Threaded off) and steps its per-PC pure-step array: for
	// instructions with no memory, control, or machine-level effect the
	// engines call the specialized closure instead of the dispatch table.
	// Both are shared and immutable, memoized on the decode.Program.
	thr      *threaded.Program
	steps    []threaded.Step
	stepInfo []threaded.StepInfo

	// exec and cycle are the instrumentation hook points (hooks.go). exec
	// is nil unless a tracer/profiler is attached; cycle defaults to the
	// stats recorder behind the Figure 10 breakdown and the utilization
	// histogram, and can be detached for pure-throughput runs. skip caches
	// cycle's CycleSkipper view (nil when cycle cannot bulk-credit), the
	// gate the fast-forward core checks before jumping. statsDefault
	// records that cycle is exactly the default stats recorder, letting
	// the cycle loops call it devirtualized.
	exec         ExecHooks
	cycle        CycleHooks
	skip         CycleSkipper
	statsDefault bool

	// noSpec suppresses all speculative-thread creation: chk.c never takes
	// its exception and spawn requests are counted but ignored. It is the
	// interpreter's explicit "no speculation" mode — unlike occupying the
	// spare contexts, it leaves the context-utilization accounting honest.
	noSpec bool

	// stop is the cancellation flag behind RunContext: an AfterFunc on the
	// run's context sets it, and the engines poll it once per cycle-loop
	// iteration (the same granularity as the watchdog check), so a
	// cancelled run returns within one simulated cycle or one fast-forward
	// hop. It costs runs without a cancellable context one predictable
	// load-and-branch per cycle.
	stop atomic.Bool

	mainDone bool
	rr       int // round-robin cursor over speculative threads
	// liveSpec counts active speculative threads, maintained at the single
	// activation/deactivation points (startThread/killThread). It lets the
	// per-cycle paths skip the thread-selection scan and index the
	// utilization histogram without walking every context; Conservation's
	// sum(SpecActiveHist) == Cycles invariant cross-checks it every run.
	liveSpec int
}

// New builds a machine for the image under the given configuration,
// predecoding the image privately. Callers running several machines over the
// same image should Predecode once and share it via NewPredecoded.
func New(cfg Config, img *ir.Image) *Machine {
	return NewPredecoded(cfg, decode.Predecode(img))
}

// Predecode lowers a linked image into the shareable form NewPredecoded
// consumes. The result is immutable: any number of machines, across models
// and goroutines, may execute it concurrently.
func Predecode(img *ir.Image) *decode.Program { return decode.Predecode(img) }

// ThreadedProgram returns the closure-threaded compile of a predecoded
// image, building it at most once per decode.Program (the compile is
// memoized on the sidecar, so sharing the decode shares the chains).
// Machines with Config.Threaded do this on Reset; exp.Suite calls it
// eagerly so matrix cells never pay the compile inside a timed run.
func ThreadedProgram(dp *decode.Program) *threaded.Program {
	return dp.Threaded(func() any { return threaded.Compile(dp) }).(*threaded.Program)
}

// NewPredecoded builds a machine over an already-predecoded image.
func NewPredecoded(cfg Config, dp *decode.Program) *Machine {
	m := &Machine{
		Mem:  mem.NewMemory(),
		Hier: mem.NewHierarchy(cfg.Mem),
		Pred: bpred.New(),
	}
	m.Reset(cfg, dp)
	return m
}

// Reset returns the machine to its just-constructed state over a (possibly
// different) configuration and predecoded image, reusing every allocation
// whose shape still fits: the memory's page frames and radix layout, the
// hierarchy (when the cache geometry is unchanged), the thread contexts and
// their per-thread buffers, and the branch predictor tables. A Reset machine
// runs bit-for-bit identically to a freshly constructed one — the
// check.HotPathEquivalence gate and the hot-path sweep enforce this — which
// is what lets exp.Suite pool machines across matrix cells.
//
// Results returned by earlier runs stay valid: Run detaches the hierarchy
// statistics, and Reset allocates fresh histogram/profile slices instead of
// clearing the ones previous Results still reference.
func (m *Machine) Reset(cfg Config, dp *decode.Program) {
	m.Cfg = cfg
	m.Img = dp.Img
	m.code = dp.Code
	if cfg.Threaded {
		m.thr = ThreadedProgram(dp)
		m.steps = m.thr.Steps
		m.stepInfo = m.thr.Info
	} else {
		m.thr = nil
		m.steps = nil
		m.stepInfo = nil
	}
	m.lat = [decode.NumLatClasses]int64{
		decode.Lat1:   1,
		decode.Lat2:   2,
		decode.LatMul: cfg.MulLat,
		decode.LatFP:  cfg.FPLat,
		decode.LatLIB: cfg.LIBCopyLat,
	}
	if mem.SameGeometry(m.Hier.Cfg, cfg.Mem) {
		m.Hier.Cfg = cfg.Mem
		m.Hier.Reset()
	} else {
		m.Hier = mem.NewHierarchy(cfg.Mem)
	}
	m.Hier.PresizeLoads(dp.MaxID + 1)
	m.Mem.Reset()
	m.Mem.InstallSnapshot(dp.Mem)
	m.Pred.Reset()
	if len(m.threads) != cfg.Contexts {
		m.threads = make([]*Thread, cfg.Contexts)
		for i := range m.threads {
			m.threads[i] = &Thread{idx: i, resumePC: -1, lastChkTaken: -1 << 40}
		}
	} else {
		for i, t := range m.threads {
			pending := t.pending[:0]
			win := t.win
			*t = Thread{idx: i, resumePC: -1, lastChkTaken: -1 << 40}
			t.pending = pending
			if cfg.Model == OOO {
				t.win = win
			}
		}
	}
	m.now = 0
	m.stop.Store(false)
	m.res = Result{}
	m.ef = archEffect{}
	m.exec = nil
	m.noSpec = false
	m.mainDone = false
	m.rr = 0
	m.liveSpec = 0
	m.SetCycleHooks(statsHooks{})
	if cfg.Profile {
		m.res.PCCount = make([]uint64, len(dp.Code))
		m.res.CallEdges = make(map[int]map[int]uint64)
		m.attachExec(profileHooks{})
	}
	// Buckets 0..Contexts: normally at most Contexts-1 speculative threads
	// exist (the main thread holds context 0), but a freed main context can
	// be rebound speculatively, so the histogram covers every context being
	// speculative. Sizing it Contexts (and guarding the index) silently
	// dropped that last bucket, breaking sum(SpecActiveHist) == Cycles.
	m.res.SpecActiveHist = make([]int64, cfg.Contexts+1)
}

// recordUtilization tallies the number of active speculative contexts this
// cycle. Every cycle lands in exactly one bucket, so the histogram always
// sums to Cycles (asserted by check.Conservation).
func (m *Machine) recordUtilization() {
	m.res.SpecActiveHist[m.liveSpec]++
}

// main returns the main thread (context 0).
func (m *Machine) main() *Thread { return m.threads[0] }

// freeContext returns an inactive context, or nil.
func (m *Machine) freeContext() *Thread {
	for _, t := range m.threads {
		if !t.active {
			return t
		}
	}
	return nil
}

// startThread initializes a speculative thread at the target PC, handing it
// the parent's outgoing live-in buffer — the inter-thread communication path
// through the RSE backing store (§2.1).
func (m *Machine) startThread(c *Thread, pc int, parent *Thread) {
	idx := c.idx
	// The pending slice and OOO window keep their backing arrays across the
	// context's lifetimes, so steady-state spawning allocates nothing.
	pending := c.pending[:0]
	win := c.win
	*c = Thread{idx: idx, active: true, spec: true, pc: pc, resumePC: -1}
	m.liveSpec++
	c.pending = pending
	c.InLIB = parent.OutLIB
	c.frontStallUntil = m.now + m.Cfg.SpawnStartup
	if m.Cfg.Model == OOO {
		c.win = win.reset(m.Cfg.ROBSize)
	}
}

// killThread frees a context. The thread's window is kept for reuse by the
// next thread started on this context.
func (m *Machine) killThread(t *Thread) {
	if t.active && t.spec {
		m.liveSpec--
	}
	t.active = false
}

// Run executes the program to completion of the main thread and returns the
// result. It dispatches on the configured model.
func (m *Machine) Run() (*Result, error) { return m.RunContext(context.Background()) }

// ErrInterrupted is returned by a run stopped with Interrupt when the run's
// context (if any) is still live — the interrupt, not the context, ended it.
var ErrInterrupted = errors.New("sim: run interrupted")

// Interrupt asks a running machine to stop at its next cycle-loop iteration.
// It is safe to call from any goroutine — including the machine's own hooks,
// where it takes effect synchronously, before the next cycle. RunContext uses
// it as the context's AfterFunc; direct callers without a cancelled context
// get ErrInterrupted back from the run.
func (m *Machine) Interrupt() { m.stop.Store(true) }

// RunContext is Run under a context: when ctx is cancelled or its deadline
// expires, the engine stops at the next cycle-loop iteration — within one
// simulated cycle, or one fast-forward hop when the timing core is jumping —
// and RunContext returns nil and ctx.Err() instead of running on to the
// watchdog limit. A cancelled machine holds a half-finished run; Reset
// restores it completely (the hot-path equivalence gate proves Reset equals
// fresh construction), but pooling layers discard it anyway and only recycle
// machines from clean completions.
func (m *Machine) RunContext(ctx context.Context) (*Result, error) {
	if ctx.Done() != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m.stop.Store(false)
		cancel := context.AfterFunc(ctx, m.Interrupt)
		defer cancel()
	}
	m.main().active = true
	m.main().pc = m.Img.Entry
	switch m.Cfg.Model {
	case InOrder:
		m.runInOrder()
	case OOO:
		m.runOOO()
	default:
		return nil, fmt.Errorf("sim: unknown model %v", m.Cfg.Model)
	}
	if m.stop.Load() && !m.mainDone && !m.res.TimedOut {
		// The engine bailed out at the stop check; the context, not the
		// program, ended this run. (A run that completed or timed out in
		// the same cycle the context fired still reports its real outcome.)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, ErrInterrupted
	}
	m.res.Cycles = m.now
	// Detach the statistics so the Result stays valid when the machine is
	// Reset and reused for another run (exp.Suite pools machines).
	m.res.Hier = m.Hier.DetachStats()
	m.res.FinalRegs = m.main().Regs
	m.res.MemChecksum = m.Mem.Checksum()
	r := m.res
	return &r, nil
}
