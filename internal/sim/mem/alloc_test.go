package mem

import "testing"

// TestAccessPathZeroAllocs pins the per-access hot path — Memory.Load/Store,
// Hierarchy.Access, Prefetch, and fill-buffer drain — to exactly zero heap
// allocations once warm. Every structure on this path is preallocated: the
// radix page table, the dense per-ID stat table, the fixed fill buffer, and
// the ring-buffer prefetch window with its open-addressed line set. Any
// regression here multiplies across the billions of simulated accesses an
// experiment matrix performs.
func TestAccessPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	cfg := Default()
	cfg.FillBufferEntries = 4
	h := NewHierarchy(cfg)
	h.PresizeLoads(64)
	m := NewMemory()

	// One deterministic access mix, used for both warm-up and measurement so
	// the measured pass touches only resident pages and existing stat slots.
	var now int64
	mix := func() {
		for i := uint64(0); i < 64; i++ {
			addr := i * 4096
			m.Store(addr, i)
			if m.Load(addr) != i {
				t.Fatal("load mismatch")
			}
			h.Access(int(i%32), addr, now, i%3 == 0)
			if i%4 == 0 {
				h.Prefetch(int(i%32), addr+64, now)
			}
			now += 17
		}
		now += 10_000 // let fills drain between passes
	}
	mix()

	if allocs := testing.AllocsPerRun(100, mix); allocs != 0 {
		t.Fatalf("access path allocates: %v allocs/run, want 0", allocs)
	}
}

// TestResetZeroAllocs pins warm Hierarchy.Reset and Memory.Reset to zero
// allocations: both must recycle their frames so exp.Suite's machine pool
// reuses layouts instead of rebuilding them per matrix cell.
func TestResetZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	h := NewHierarchy(Default())
	h.PresizeLoads(8)
	m := NewMemory()
	for i := uint64(0); i < 16; i++ {
		m.Store(i*4096, i)
		h.Access(int(i%8), i*4096, int64(i)*500, true)
	}
	h.Prefetch(0, 1<<20, 0)
	cycle := func() {
		h.Reset()
		m.Reset()
	}
	cycle()
	if allocs := testing.AllocsPerRun(50, cycle); allocs != 0 {
		t.Fatalf("Reset allocates: %v allocs/run, want 0", allocs)
	}
}
