package mem

import "testing"

// BenchmarkMemoryLoadStore measures the word access path — radix walk plus
// last-page cache — over a footprint that spans many pages.
func BenchmarkMemoryLoadStore(b *testing.B) {
	m := NewMemory()
	const span = 1 << 22 // 4 MiB, 1024 pages
	for addr := uint64(0); addr < span; addr += 4096 {
		m.Store(addr, addr)
	}
	b.ResetTimer()
	var sum uint64
	for i := 0; i < b.N; i++ {
		addr := uint64(i*2654435761) % span
		m.Store(addr, uint64(i))
		sum += m.Load(addr ^ 4096)
	}
	_ = sum
}

// BenchmarkHierarchyAccess measures one timed access through TLB, cache
// levels, fill buffer, and the dense per-load stat table — the innermost
// operation of every simulated memory instruction.
func BenchmarkHierarchyAccess(b *testing.B) {
	h := NewHierarchy(Default())
	h.PresizeLoads(64)
	b.ResetTimer()
	var now int64
	for i := 0; i < b.N; i++ {
		addr := uint64(i*2654435761) % (1 << 24)
		h.Access(i&63, addr, now, i&1 == 0)
		now += 3
	}
}
