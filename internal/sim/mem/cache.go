package mem

// Cache is one level of set-associative cache with LRU replacement. Only
// tags are tracked: data always comes from the flat Memory (timing and
// contents are decoupled, as in trace-driven simulators).
type Cache struct {
	ways     int
	sets     int
	lineBits uint
	tags     []uint64 // sets*ways entries; 0 = invalid (tag 0 reserved via +1 bias)
	lru      []int64
	clock    int64
}

// NewCache builds a cache of the given total size in bytes, associativity,
// and line size in bytes (must be powers of two).
func NewCache(sizeBytes, ways, lineBytes int) *Cache {
	lines := sizeBytes / lineBytes
	sets := lines / ways
	lb := uint(0)
	for 1<<lb < lineBytes {
		lb++
	}
	return &Cache{
		ways:     ways,
		sets:     sets,
		lineBits: lb,
		tags:     make([]uint64, sets*ways),
		lru:      make([]int64, sets*ways),
	}
}

// line returns the line address (addr with offset bits stripped).
func (c *Cache) line(addr uint64) uint64 { return addr >> c.lineBits }

// Lookup probes the cache; on a hit the line's LRU stamp is refreshed.
func (c *Cache) Lookup(addr uint64) bool {
	ln := c.line(addr) + 1
	set := int(ln) & (c.sets - 1)
	base := set * c.ways
	tags := c.tags[base : base+c.ways]
	for w := range tags {
		if tags[w] == ln {
			c.clock++
			c.lru[base+w] = c.clock
			return true
		}
	}
	return false
}

// Insert fills the line, evicting the LRU way if the set is full. Inserting
// a line already present just refreshes it.
func (c *Cache) Insert(addr uint64) {
	ln := c.line(addr) + 1
	set := int(ln) & (c.sets - 1)
	base := set * c.ways
	tags := c.tags[base : base+c.ways]
	lru := c.lru[base : base+c.ways]
	victim := 0
	c.clock++
	for w := range tags {
		if tags[w] == ln {
			lru[w] = c.clock
			return
		}
		if tags[w] == 0 {
			victim = w
			break
		}
		if lru[w] < lru[victim] {
			victim = w
		}
	}
	tags[victim] = ln
	lru[victim] = c.clock
}

// Reset invalidates the whole cache.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.lru[i] = 0
	}
	c.clock = 0
}
