package mem

// Level identifies where an access was satisfied.
type Level uint8

const (
	// L1 is a first-level hit.
	L1 Level = iota
	// L2 and L3 are hits in the shared second/third-level caches.
	L2
	L3
	// Mem is main memory.
	Mem
	// NumLevels counts the levels.
	NumLevels
)

func (l Level) String() string {
	switch l {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case L3:
		return "L3"
	case Mem:
		return "Mem"
	}
	return "?"
}

// Config parametrizes the hierarchy; Default matches Table 1.
type Config struct {
	LineBytes int

	L1Size, L1Ways int
	L2Size, L2Ways int
	L3Size, L3Ways int

	// Latencies in cycles to satisfy an access from each level.
	L1Lat, L2Lat, L3Lat, MemLat int64

	// FillBufferEntries bounds the number of lines in transit.
	FillBufferEntries int

	// TLBEntries/TLBWays/TLBPageBytes size the data TLB; TLBPenalty is the
	// Table 1 "TLB Miss Penalty: 30 cycles". TLBEntries = 0 disables TLB
	// modelling.
	TLBEntries, TLBWays, TLBPageBytes int
	TLBPenalty                        int64

	// PerfectMemory makes every access an L1 hit (Figure 2, first bar).
	PerfectMemory bool
	// PerfectDelinquent makes accesses by the instruction IDs in
	// DelinquentIDs L1 hits (Figure 2, second bar).
	PerfectDelinquent bool
	DelinquentIDs     IDSet
}

// SameGeometry reports whether two configs describe structurally identical
// hardware (cache/TLB/fill-buffer shapes), so a hierarchy built for one can
// be Reset and reused for the other instead of reallocated.
func SameGeometry(a, b Config) bool {
	return a.LineBytes == b.LineBytes &&
		a.L1Size == b.L1Size && a.L1Ways == b.L1Ways &&
		a.L2Size == b.L2Size && a.L2Ways == b.L2Ways &&
		a.L3Size == b.L3Size && a.L3Ways == b.L3Ways &&
		a.FillBufferEntries == b.FillBufferEntries &&
		a.TLBEntries == b.TLBEntries && a.TLBWays == b.TLBWays &&
		a.TLBPageBytes == b.TLBPageBytes
}

// Default returns the Table 1 memory system: L1 16KB 4-way 2cyc, L2 256KB
// 4-way 14cyc, L3 3072KB 12-way 30cyc, 230-cycle memory, 64-byte lines,
// 16-entry fill buffer.
func Default() Config {
	return Config{
		LineBytes: 64,
		L1Size:    16 << 10, L1Ways: 4,
		L2Size: 256 << 10, L2Ways: 4,
		L3Size: 3072 << 10, L3Ways: 12,
		L1Lat: 2, L2Lat: 14, L3Lat: 30, MemLat: 230,
		FillBufferEntries: 16,
		TLBEntries:        128, TLBWays: 4, TLBPageBytes: 16 << 10,
		TLBPenalty: 30,
	}
}

// Access describes the outcome of one memory access.
type Access struct {
	// Level is where the line was found (for partial hits: the level the
	// in-flight fill is being serviced from).
	Level Level
	// Partial marks an access to a line already in transit to L1 due to a
	// prior access (Figure 9's "Partial" categories).
	Partial bool
	// Latency is the number of cycles until the value is available.
	Latency int64
}

// LoadStat accumulates per-static-load behaviour, keyed by instruction ID.
// It feeds both the cache profile that identifies delinquent loads (§2.2)
// and the Figure 9 breakdown.
type LoadStat struct {
	ID       int
	Accesses uint64
	// Hits[level][0] = full hits at level, Hits[level][1] = partial hits.
	Hits [NumLevels][2]uint64
	// MissCycles sums latency beyond an L1 hit — the profile metric that
	// ranks delinquent loads.
	MissCycles uint64
	// TLBMisses counts accesses that also missed the TLB (only maintained
	// on the Totals aggregate).
	TLBMisses uint64
}

// L1MissRate returns the fraction of accesses that missed L1.
func (s *LoadStat) L1MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	miss := s.Accesses - s.Hits[L1][0]
	return float64(miss) / float64(s.Accesses)
}

// fbEntry is a fill-buffer slot: a line in transit.
type fbEntry struct {
	line    uint64
	readyAt int64
	level   Level
	valid   bool
}

// fbNever is the cached-earliest sentinel when no fill is in flight.
const fbNever = int64(1) << 62

// Hierarchy is the shared three-level cache hierarchy plus fill buffer. All
// hardware thread contexts access the same hierarchy (Table 1: L2 and L3 are
// shared; L1 is shared too in the modelled core since SMT contexts share the
// data cache), which is exactly what makes p-slice prefetching visible to
// the main thread.
//
// Per-load statistics live in a dense slice indexed by static instruction ID
// (the decode layer assigns small contiguous IDs); the exported map view is
// materialized on demand by ByLoad. The fill buffer keeps a live-entry count
// and a cached earliest completion so the common no-fill-pending case costs
// two compares instead of a scan.
type Hierarchy struct {
	Cfg       Config
	lineShift uint
	l1        *Cache
	l2        *Cache
	l3        *Cache
	fb        []fbEntry
	fbLive    int   // valid fill-buffer entries
	fbReady   int64 // min readyAt over valid entries; fbNever when none
	tlb       *TLB

	// loads holds per-instruction-ID stats densely; byLoad caches the map
	// view the exported accessors materialize.
	loads  []LoadStat
	byLoad map[int]*LoadStat

	// Totals aggregates all accesses.
	Totals LoadStat
	// DroppedPrefetches counts lfetch requests discarded because the fill
	// buffer was full — prefetches are non-binding and never exert back
	// pressure on demand misses.
	DroppedPrefetches uint64

	// Prefetch accuracy (§4.4: "The number of wrong addresses generated by
	// speculative slicing is small"): PrefetchIssued counts lfetches that
	// actually started a fill; PrefetchUseful counts those whose line was
	// later touched by a demand access before being forgotten. The
	// tracking window holds the most recent prefetched lines.
	PrefetchIssued uint64
	PrefetchUseful uint64
	pf             *pfWindow
}

// pfWindowSize bounds the prefetched-line tracking window.
const pfWindowSize = 4096

// notePrefetch records a newly prefetched line in the accuracy window.
func (h *Hierarchy) notePrefetch(line uint64) {
	if h.pf == nil {
		h.pf = new(pfWindow)
	}
	if h.pf.contains(line) {
		return
	}
	h.pf.push(line)
	h.PrefetchIssued++
}

// noteDemand credits a prefetch when a demand access touches its line.
func (h *Hierarchy) noteDemand(line uint64) {
	if h.pf != nil && h.pf.contains(line) {
		h.pf.consume(line)
		h.PrefetchUseful++
	}
}

// PrefetchAccuracy returns the fraction of issued prefetches whose lines
// were later demanded, or 1 when no prefetches were issued.
func (h *Hierarchy) PrefetchAccuracy() float64 {
	if h.PrefetchIssued == 0 {
		return 1
	}
	return float64(h.PrefetchUseful) / float64(h.PrefetchIssued)
}

// NewHierarchy builds the hierarchy for the given configuration.
func NewHierarchy(cfg Config) *Hierarchy {
	h := &Hierarchy{
		Cfg:     cfg,
		l1:      NewCache(cfg.L1Size, cfg.L1Ways, cfg.LineBytes),
		l2:      NewCache(cfg.L2Size, cfg.L2Ways, cfg.LineBytes),
		l3:      NewCache(cfg.L3Size, cfg.L3Ways, cfg.LineBytes),
		fb:      make([]fbEntry, cfg.FillBufferEntries),
		fbReady: fbNever,
	}
	h.lineShift = uint(lineBits(cfg.LineBytes))
	if cfg.TLBEntries > 0 {
		h.tlb = NewTLB(cfg.TLBEntries, cfg.TLBWays, cfg.TLBPageBytes)
	}
	return h
}

// PresizeLoads grows the per-load stat table to cover IDs below n, so that
// the counting path never allocates. The machine presizes from the decoded
// program's maximum static ID.
func (h *Hierarchy) PresizeLoads(n int) {
	if n > len(h.loads) {
		grown := make([]LoadStat, n)
		copy(grown, h.loads)
		h.loads = grown
	}
}

func (h *Hierarchy) stat(id int) *LoadStat {
	if h.byLoad != nil {
		h.byLoad = nil // new counts invalidate the materialized view
	}
	if id >= len(h.loads) {
		n := id + 1
		if c := 2 * len(h.loads); n < c {
			n = c
		}
		grown := make([]LoadStat, n)
		copy(grown, h.loads)
		h.loads = grown
	}
	return &h.loads[id]
}

// ByLoad materializes the per-load statistics as a map from instruction ID
// to stats, containing exactly the IDs that were accessed at least once. The
// map is cached until further accesses are counted; entries are detached
// copies of the dense table.
func (h *Hierarchy) ByLoad() map[int]*LoadStat {
	if h.byLoad == nil {
		n := 0
		for i := range h.loads {
			if h.loads[i].Accesses != 0 {
				n++
			}
		}
		m := make(map[int]*LoadStat, n)
		for i := range h.loads {
			if h.loads[i].Accesses == 0 {
				continue
			}
			s := h.loads[i]
			s.ID = i
			m[i] = &s
		}
		h.byLoad = m
	}
	return h.byLoad
}

// DetachStats returns a self-contained statistics-only copy of the
// hierarchy: totals, prefetch counters, and the per-load table with the map
// view pre-materialized. Results hold the detached copy so the machine (and
// its hierarchy) can be Reset and reused without corrupting previously
// returned Results.
func (h *Hierarchy) DetachStats() *Hierarchy {
	d := &Hierarchy{
		Cfg:               h.Cfg,
		Totals:            h.Totals,
		DroppedPrefetches: h.DroppedPrefetches,
		PrefetchIssued:    h.PrefetchIssued,
		PrefetchUseful:    h.PrefetchUseful,
		loads:             append([]LoadStat(nil), h.loads...),
	}
	d.ByLoad()
	return d
}

// drain completes any fill-buffer entries that have arrived by now,
// installing their lines into the hierarchy (inclusive fill). When nothing
// has completed — the overwhelmingly common case — this is two compares.
func (h *Hierarchy) drain(now int64) {
	if h.fbLive == 0 || h.fbReady > now {
		return
	}
	ready := fbNever
	for i := range h.fb {
		e := &h.fb[i]
		if !e.valid {
			continue
		}
		if e.readyAt <= now {
			addr := e.line << h.lineShift
			h.l1.Insert(addr)
			h.l2.Insert(addr)
			h.l3.Insert(addr)
			e.valid = false
			h.fbLive--
		} else if e.readyAt < ready {
			ready = e.readyAt
		}
	}
	h.fbReady = ready
}

// EarliestPending returns the completion cycle of the earliest in-flight
// fill-buffer entry still pending after now, and whether one exists. The
// fast-forward timing core (internal/sim) treats that completion as an event
// a stall jump must not cross: a fill landing in the caches can turn the next
// access by any thread from a miss into a hit, so the machine's timing is
// only provably static up to this boundary.
func (h *Hierarchy) EarliestPending(now int64) (int64, bool) {
	if h.fbLive == 0 {
		return 0, false
	}
	if h.fbReady > now {
		return h.fbReady, true
	}
	// Some entries have completed but not yet drained; scan for the
	// earliest strictly beyond now.
	earliest, any := int64(0), false
	for i := range h.fb {
		e := &h.fb[i]
		if e.valid && e.readyAt > now && (!any || e.readyAt < earliest) {
			earliest, any = e.readyAt, true
		}
	}
	return earliest, any
}

func lineBits(lineBytes int) int {
	b := 0
	for 1<<b < lineBytes {
		b++
	}
	return b
}

// Access performs a timed access at cycle now on behalf of static
// instruction id. count=false suppresses statistics (used for speculative
// threads' own bookkeeping decisions in callers; normal accesses count).
func (h *Hierarchy) Access(id int, addr uint64, now int64, count bool) Access {
	if h.Cfg.PerfectMemory || (h.Cfg.PerfectDelinquent && h.Cfg.DelinquentIDs.Has(id)) {
		if count {
			s := h.stat(id)
			s.Accesses++
			s.Hits[L1][0]++
			h.Totals.Accesses++
			h.Totals.Hits[L1][0]++
		}
		if !h.Cfg.PerfectMemory {
			// A perfect delinquent load's line is resident by assumption
			// ("delinquent loads always hit in the L1 cache", §2.2), so
			// it fills the hierarchy immediately — the idealization
			// removes the latency, not the warming effect on line-mates.
			h.l1.Insert(addr)
			h.l2.Insert(addr)
			h.l3.Insert(addr)
		}
		return Access{Level: L1, Latency: h.Cfg.L1Lat}
	}
	h.drain(now)
	if count {
		h.noteDemand(addr >> h.lineShift)
	}
	res := h.access(addr, now)
	if h.tlb != nil && h.tlb.Translate(addr) {
		res.Latency += h.Cfg.TLBPenalty
		if count {
			h.Totals.TLBMisses++
		}
	}
	if count {
		s := h.stat(id)
		s.Accesses++
		h.Totals.Accesses++
		p := 0
		if res.Partial {
			p = 1
		}
		s.Hits[res.Level][p]++
		h.Totals.Hits[res.Level][p]++
		if extra := res.Latency - h.Cfg.L1Lat; extra > 0 {
			s.MissCycles += uint64(extra)
			h.Totals.MissCycles += uint64(extra)
		}
	}
	return res
}

func (h *Hierarchy) access(addr uint64, now int64) Access {
	line := addr >> h.lineShift
	// Partial hit: the line is already in transit.
	if h.fbLive > 0 {
		for i := range h.fb {
			e := &h.fb[i]
			if e.valid && e.line == line {
				lat := e.readyAt - now
				if lat < 1 {
					lat = 1
				}
				return Access{Level: e.level, Partial: true, Latency: lat + h.Cfg.L1Lat}
			}
		}
	}
	if h.l1.Lookup(addr) {
		return Access{Level: L1, Latency: h.Cfg.L1Lat}
	}
	var lvl Level
	var lat int64
	switch {
	case h.l2.Lookup(addr):
		lvl, lat = L2, h.Cfg.L2Lat
	case h.l3.Lookup(addr):
		lvl, lat = L3, h.Cfg.L3Lat
		h.l2.Insert(addr)
	default:
		lvl, lat = Mem, h.Cfg.MemLat
	}
	// Allocate a fill-buffer entry for the in-flight line. If the buffer
	// is full of in-flight entries the request waits for the earliest
	// completion (back pressure).
	extra := int64(0)
	if h.fbLive == len(h.fb) {
		// Full: the cached earliest completion is exactly the scan the
		// original code performed here.
		extra = h.fbReady - now
		if extra < 0 {
			extra = 0
		}
		h.drain(h.fbReady)
	}
	slot := -1
	for i := range h.fb {
		if !h.fb[i].valid {
			slot = i
			break
		}
	}
	if slot == -1 {
		slot = 0 // defensive; drain always frees at least one
	}
	readyAt := now + extra + lat
	h.fb[slot] = fbEntry{line: line, readyAt: readyAt, level: lvl, valid: true}
	h.fbLive++
	if readyAt < h.fbReady {
		h.fbReady = readyAt
	}
	return Access{Level: lvl, Latency: extra + lat + h.Cfg.L1Lat}
}

// Prefetch performs a non-binding lfetch: like Access, except that a miss
// needing a fill-buffer slot when none is free is silently dropped rather
// than waiting — speculative prefetching must not steal miss-level
// parallelism from the main thread's demand accesses (the L1-interference
// effect §4.4.1 discusses on the OOO model).
func (h *Hierarchy) Prefetch(id int, addr uint64, now int64) Access {
	if h.Cfg.PerfectMemory || (h.Cfg.PerfectDelinquent && h.Cfg.DelinquentIDs.Has(id)) {
		return Access{Level: L1, Latency: h.Cfg.L1Lat}
	}
	h.drain(now)
	line := addr >> h.lineShift
	if h.fbLive > 0 {
		for i := range h.fb {
			if h.fb[i].valid && h.fb[i].line == line {
				return Access{Level: h.fb[i].level, Partial: true, Latency: 1}
			}
		}
	}
	if h.l1.Lookup(addr) {
		return Access{Level: L1, Latency: h.Cfg.L1Lat}
	}
	if h.fbLive == len(h.fb) {
		h.DroppedPrefetches++
		return Access{Level: L1, Latency: 1}
	}
	h.notePrefetch(line)
	return h.access(addr, now)
}

// Reset clears caches, fill buffer, and statistics in place, keeping every
// allocation (dense stat table, prefetch window, cache arrays) for reuse.
func (h *Hierarchy) Reset() {
	h.lineShift = uint(lineBits(h.Cfg.LineBytes))
	h.l1.Reset()
	h.l2.Reset()
	h.l3.Reset()
	for i := range h.fb {
		h.fb[i] = fbEntry{}
	}
	h.fbLive = 0
	h.fbReady = fbNever
	if h.tlb != nil {
		h.tlb.Reset()
	}
	for i := range h.loads {
		h.loads[i] = LoadStat{}
	}
	h.byLoad = nil
	h.Totals = LoadStat{}
	h.DroppedPrefetches = 0
	h.PrefetchIssued = 0
	h.PrefetchUseful = 0
	if h.pf != nil {
		h.pf.tail, h.pf.n = 0, 0
		h.pf.set.reset()
	}
}
