package mem

import (
	"encoding/json"
	"sort"
)

// IDSet is a bitset over small non-negative static-instruction IDs. It
// replaces the map[int]bool the perfect-delinquent idealization used to
// consult on every access: membership is now one shift, one mask, and one
// bounds check. The decode layer assigns small contiguous IDs, so the bitset
// stays a handful of words.
//
// The zero value is the empty set. IDSet serializes as a sorted JSON array
// of the member IDs so profiles remain human-readable and diffable.
type IDSet struct {
	words []uint64
}

// NewIDSet returns a set holding the given IDs.
func NewIDSet(ids ...int) IDSet {
	var s IDSet
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

// Add inserts id. Negative IDs are ignored (the IR never assigns them).
func (s *IDSet) Add(id int) {
	if id < 0 {
		return
	}
	w := id >> 6
	for w >= len(s.words) {
		s.words = append(s.words, 0)
	}
	s.words[w] |= 1 << uint(id&63)
}

// Has reports whether id is a member.
func (s *IDSet) Has(id int) bool {
	w := id >> 6
	return id >= 0 && w < len(s.words) && s.words[w]&(1<<uint(id&63)) != 0
}

// Len returns the number of members.
func (s *IDSet) Len() int {
	n := 0
	for _, w := range s.words {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// IDs returns the members in ascending order.
func (s *IDSet) IDs() []int {
	ids := make([]int, 0, s.Len())
	for wi, w := range s.words {
		for ; w != 0; w &= w - 1 {
			b := 0
			for m := w & (^w + 1); m > 1; m >>= 1 {
				b++
			}
			ids = append(ids, wi<<6|b)
		}
	}
	return ids
}

// MarshalJSON encodes the set as a sorted array of member IDs.
func (s IDSet) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.IDs())
}

// UnmarshalJSON accepts either the array form or the legacy map[int]bool
// object form ({"7": true}) that older serialized profiles used.
func (s *IDSet) UnmarshalJSON(data []byte) error {
	s.words = nil
	var ids []int
	if err := json.Unmarshal(data, &ids); err == nil {
		for _, id := range ids {
			s.Add(id)
		}
		return nil
	}
	var legacy map[int]bool
	if err := json.Unmarshal(data, &legacy); err != nil {
		return err
	}
	keys := make([]int, 0, len(legacy))
	for id, ok := range legacy {
		if ok {
			keys = append(keys, id)
		}
	}
	sort.Ints(keys)
	for _, id := range keys {
		s.Add(id)
	}
	return nil
}
