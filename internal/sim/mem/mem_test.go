package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMemoryLoadStore(t *testing.T) {
	m := NewMemory()
	if got := m.Load(0x1234); got != 0 {
		t.Fatalf("uninitialized load = %d", got)
	}
	m.Store(0x1000, 42)
	if got := m.Load(0x1000); got != 42 {
		t.Fatalf("load = %d, want 42", got)
	}
	// Word aliasing: unaligned address hits the same word.
	if got := m.Load(0x1003); got != 42 {
		t.Fatalf("unaligned load = %d, want 42", got)
	}
	m.Store(0x1008, 7)
	if m.Load(0x1000) != 42 || m.Load(0x1008) != 7 {
		t.Fatal("adjacent words interfere")
	}
}

func TestMemoryInstall(t *testing.T) {
	m := NewMemory()
	m.Install(map[uint64]uint64{8: 1, 16: 2})
	if m.Load(8) != 1 || m.Load(16) != 2 {
		t.Fatal("Install lost data")
	}
}

// TestQuickMemory: property — memory behaves like a map of aligned words.
func TestQuickMemory(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewMemory()
		ref := map[uint64]uint64{}
		for i := 0; i < 300; i++ {
			addr := uint64(r.Intn(1 << 20))
			if r.Intn(2) == 0 {
				v := r.Uint64()
				m.Store(addr, v)
				ref[addr>>3] = v
			} else if m.Load(addr) != ref[addr>>3] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestMemoryOutlierAddresses: addresses beyond the dense radix span fall to
// the outlier map but behave identically — including page sharing, Reset,
// snapshot round-trips, and checksum ordering.
func TestMemoryOutlierAddresses(t *testing.T) {
	m := NewMemory()
	low, high := uint64(0x1000), uint64(1)<<40
	m.Store(low, 1)
	m.Store(high, 2)
	m.Store(high+8, 3)
	if m.Load(low) != 1 || m.Load(high) != 2 || m.Load(high+8) != 3 {
		t.Fatal("outlier store/load mismatch")
	}
	if m.Footprint() != 2 {
		t.Fatalf("footprint = %d, want 2 pages", m.Footprint())
	}
	s := NewSnapshot(map[uint64]uint64{low: 1, high: 2, high + 8: 3})
	m2 := NewMemory()
	m2.InstallSnapshot(s)
	if m2.Load(high) != 2 || m2.Load(low) != 1 || m2.Load(high+8) != 3 {
		t.Fatal("snapshot lost outlier page")
	}
	if m.Checksum() != m2.Checksum() {
		t.Fatal("checksum differs between stored and snapshot-installed memory")
	}
	m.Reset()
	if m.Load(high) != 0 || m.Load(low) != 0 {
		t.Fatal("Reset left data")
	}
}

// TestSnapshotExplicitZeroPage: a page whose every word has been stored as
// zero is semantically identical to an untouched page — installing a
// snapshot that carries such a page must produce the same loads and the same
// checksum as a memory that never touched it, and must scrub any stale data
// a reused frame held from a previous program.
func TestSnapshotExplicitZeroPage(t *testing.T) {
	// 0x10000 exists only as an explicit zero word: Install creates its page.
	s := NewSnapshot(map[uint64]uint64{0x2000: 42, 0x10000: 0})

	src := NewMemory()
	src.InstallSnapshot(s)
	if src.Footprint() != 2 {
		t.Fatalf("footprint = %d, want 2 (explicit-zero page dropped)", src.Footprint())
	}
	fresh := NewMemory()
	fresh.Store(0x2000, 42)
	if src.Checksum() != fresh.Checksum() {
		t.Fatal("explicit-zero page changed the checksum")
	}

	// Install over a dirty reused memory: frames are recycled, so the
	// explicit-zero page must overwrite whatever the frame last held.
	dst := NewMemory()
	dst.Store(0x10008, 7)
	dst.Store(0x2000, 7)
	dst.Store(0x999000, 7)
	dst.Reset()
	dst.InstallSnapshot(s)
	if got := dst.Load(0x10008); got != 0 {
		t.Fatalf("stale word survived snapshot install: %d", got)
	}
	if dst.Load(0x2000) != 42 || dst.Load(0x10000) != 0 {
		t.Fatal("snapshot install wrong data")
	}
	if dst.Load(0x999000) != 0 {
		t.Fatal("Reset+install left a page from the previous program")
	}
	if dst.Checksum() != src.Checksum() {
		t.Fatal("checksum differs after install over dirty memory")
	}
}

// TestQuickPfWindow: property — the ring-buffer prefetch window with its
// open-addressed line set behaves exactly like the reference model it
// replaced (a map plus a re-sliced FIFO that keeps demand-consumed lines in
// insertion order and deletes evicted lines from the map unconditionally).
func TestQuickPfWindow(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := new(pfWindow)
		refSet := map[uint64]bool{}
		var refOrder []uint64
		for i := 0; i < 20000; i++ {
			line := uint64(r.Intn(600))
			switch r.Intn(3) {
			case 0: // notePrefetch
				if w.contains(line) != refSet[line] {
					return false
				}
				if !refSet[line] {
					w.push(line)
					if len(refOrder) >= pfWindowSize {
						old := refOrder[0]
						refOrder = refOrder[1:]
						delete(refSet, old)
					}
					refSet[line] = true
					refOrder = append(refOrder, line)
				}
			case 1: // noteDemand
				got := w.contains(line)
				if got != refSet[line] {
					return false
				}
				if got {
					w.consume(line)
					delete(refSet, line)
				}
			default:
				if w.contains(line) != refSet[line] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(1024, 2, 64) // 16 lines, 8 sets, 2 ways
	if c.Lookup(0) {
		t.Fatal("hit in empty cache")
	}
	c.Insert(0)
	if !c.Lookup(0) || !c.Lookup(63) {
		t.Fatal("line not resident after insert")
	}
	if c.Lookup(64) {
		t.Fatal("adjacent line falsely hit")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(1024, 2, 64) // 8 sets, 2 ways; lines mapping to set 0: 0, 8*64, 16*64...
	setStride := uint64(8 * 64)
	c.Insert(0)
	c.Insert(setStride)
	c.Lookup(0) // refresh line 0; line setStride is now LRU
	c.Insert(2 * setStride)
	if !c.Lookup(0) {
		t.Fatal("MRU line evicted")
	}
	if c.Lookup(setStride) {
		t.Fatal("LRU line survived eviction")
	}
	if !c.Lookup(2 * setStride) {
		t.Fatal("inserted line missing")
	}
}

// TestQuickCacheAssociativity: property — within one set, the W most
// recently touched distinct lines always hit.
func TestQuickCacheAssociativity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ways := 1 + r.Intn(4)
		sets := 8
		c := NewCache(sets*ways*64, ways, 64)
		// Touch random lines of set 0 and track recency.
		var recent []uint64
		touch := func(line uint64) {
			for i, l := range recent {
				if l == line {
					recent = append(recent[:i], recent[i+1:]...)
					break
				}
			}
			recent = append(recent, line)
		}
		for i := 0; i < 200; i++ {
			line := uint64(r.Intn(6)) * uint64(sets) * 64
			if !c.Lookup(line) {
				c.Insert(line)
			}
			touch(line)
			// The min(ways, len) most recent lines must be resident.
			k := ways
			if len(recent) < k {
				k = len(recent)
			}
			for _, l := range recent[len(recent)-k:] {
				if !c.Lookup(l) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyLevels(t *testing.T) {
	h := NewHierarchy(Default())
	now := int64(0)
	// Cold access -> memory.
	a := h.Access(1, 0x100000, now, true)
	if a.Level != Mem || a.Partial {
		t.Fatalf("cold access = %+v", a)
	}
	if a.Latency < h.Cfg.MemLat {
		t.Fatalf("memory latency = %d", a.Latency)
	}
	// Same line immediately: partial hit on the in-flight fill.
	b := h.Access(1, 0x100008, now+1, true)
	if !b.Partial || b.Level != Mem {
		t.Fatalf("expected partial hit, got %+v", b)
	}
	if b.Latency >= a.Latency {
		t.Fatalf("partial hit latency %d should be below full miss %d", b.Latency, a.Latency)
	}
	// After the fill completes: L1 hit.
	c := h.Access(1, 0x100000, now+1000, true)
	if c.Level != L1 || c.Latency != h.Cfg.L1Lat {
		t.Fatalf("post-fill access = %+v", c)
	}
	s := h.ByLoad()[1]
	if s.Accesses != 3 || s.Hits[Mem][0] != 1 || s.Hits[Mem][1] != 1 || s.Hits[L1][0] != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MissCycles == 0 {
		t.Fatal("miss cycles not accumulated")
	}
}

func TestHierarchyL1EvictionFallsToL2(t *testing.T) {
	cfg := Default()
	h := NewHierarchy(cfg)
	now := int64(0)
	// Fill well beyond L1 (16KB = 256 lines) but within L2.
	lines := int64(2 * cfg.L1Size / cfg.LineBytes)
	for i := int64(0); i < lines; i++ {
		h.Access(1, uint64(i*64), now, true)
		now += 300 // let fills complete
	}
	// Re-access the first line: should be out of L1 but in L2.
	a := h.Access(2, 0, now+1000, true)
	if a.Level != L2 {
		t.Fatalf("re-access level = %v, want L2", a.Level)
	}
}

func TestPerfectModes(t *testing.T) {
	cfg := Default()
	cfg.PerfectMemory = true
	h := NewHierarchy(cfg)
	a := h.Access(1, 0xdeadbeef, 0, true)
	if a.Level != L1 || a.Latency != cfg.L1Lat {
		t.Fatalf("perfect memory access = %+v", a)
	}

	cfg = Default()
	cfg.PerfectDelinquent = true
	cfg.DelinquentIDs = NewIDSet(7)
	h = NewHierarchy(cfg)
	if a := h.Access(7, 0x100000, 0, true); a.Level != L1 {
		t.Fatalf("delinquent-perfect access = %+v", a)
	}
	if a := h.Access(8, 0x200000, 0, true); a.Level != Mem {
		t.Fatalf("ordinary access = %+v", a)
	}
}

func TestFillBufferBackPressure(t *testing.T) {
	cfg := Default()
	cfg.FillBufferEntries = 2
	h := NewHierarchy(cfg)
	a1 := h.Access(1, 0x000000, 0, true)
	a2 := h.Access(1, 0x100000, 0, true)
	// Third distinct line with a full fill buffer waits for a completion.
	a3 := h.Access(1, 0x200000, 0, true)
	if a3.Latency <= a1.Latency || a3.Latency <= a2.Latency {
		t.Fatalf("no back pressure: lat3=%d lat1=%d", a3.Latency, a1.Latency)
	}
}

func TestL1MissRate(t *testing.T) {
	s := &LoadStat{Accesses: 10}
	s.Hits[L1][0] = 4
	if got := s.L1MissRate(); got != 0.6 {
		t.Fatalf("miss rate = %v", got)
	}
	if (&LoadStat{}).L1MissRate() != 0 {
		t.Fatal("zero-access miss rate should be 0")
	}
}

func TestHierarchyReset(t *testing.T) {
	h := NewHierarchy(Default())
	h.Access(1, 0, 0, true)
	h.Reset()
	if len(h.ByLoad()) != 0 || h.Totals.Accesses != 0 {
		t.Fatal("Reset left stats")
	}
	if a := h.Access(1, 0, 1000, true); a.Level != Mem {
		t.Fatalf("cache not cleared: %+v", a)
	}
}

func TestTLBHitMiss(t *testing.T) {
	tlb := NewTLB(8, 2, 4096)
	if !tlb.Translate(0x1000) {
		t.Fatal("cold access should miss")
	}
	if tlb.Translate(0x1800) {
		t.Fatal("same-page access should hit")
	}
	if !tlb.Translate(0x5000) {
		t.Fatal("new page should miss")
	}
	tlb.Reset()
	if !tlb.Translate(0x1000) {
		t.Fatal("Reset did not clear entries")
	}
}

func TestTLBEvictionLRU(t *testing.T) {
	tlb := NewTLB(4, 2, 4096) // 2 sets x 2 ways
	// Three pages mapping to the same set (stride = sets * pagesize).
	p0, p1, p2 := uint64(0), uint64(2*4096), uint64(4*4096)
	tlb.Translate(p0)
	tlb.Translate(p1)
	tlb.Translate(p0) // refresh p0; p1 becomes LRU
	tlb.Translate(p2) // evicts p1
	if tlb.Translate(p0) {
		t.Fatal("MRU page evicted")
	}
	if !tlb.Translate(p1) {
		t.Fatal("LRU page survived")
	}
}

// TestTLBDirectMapped: with one way, every same-set page replaces the
// previous one regardless of recency.
func TestTLBDirectMapped(t *testing.T) {
	tlb := NewTLB(4, 1, 4096) // 4 sets x 1 way
	p0, p1 := uint64(0), uint64(4*4096)
	tlb.Translate(p0)
	tlb.Translate(p0) // refresh — irrelevant with one way
	if tlb.Translate(p0) {
		t.Fatal("resident page missed")
	}
	tlb.Translate(p1) // same set: must displace p0
	if !tlb.Translate(p0) {
		t.Fatal("direct-mapped conflict did not evict")
	}
}

// TestTLBEmptyWayPreferred: while a set still has invalid ways, fills must
// use them instead of evicting a live translation.
func TestTLBEmptyWayPreferred(t *testing.T) {
	tlb := NewTLB(8, 4, 4096)  // 2 sets x 4 ways
	stride := uint64(2 * 4096) // same-set pages
	for i := uint64(0); i < 4; i++ {
		tlb.Translate(i * stride)
		// Every earlier page must still be resident: only empty ways filled.
		for j := uint64(0); j <= i; j++ {
			if tlb.Translate(j * stride) {
				t.Fatalf("page %d evicted while set had empty ways", j)
			}
		}
	}
	// Set now full: a fifth page evicts exactly the LRU (page 0, the oldest
	// untouched — the verification loop above refreshed all of them, page 0
	// least recently on the final pass... the last inner loop touched 0..3 in
	// order, so page 0 is LRU).
	tlb.Translate(4 * stride)
	if !tlb.Translate(0) {
		t.Fatal("LRU page survived full-set eviction")
	}
	if tlb.Translate(3 * stride) {
		t.Fatal("MRU page evicted")
	}
}

// TestTLBFullyAssociative: ways == entries degenerates to one set holding
// everything; capacity, not conflicts, causes eviction.
func TestTLBFullyAssociative(t *testing.T) {
	tlb := NewTLB(4, 4, 4096)
	for i := uint64(0); i < 4; i++ {
		tlb.Translate(i * 4096)
	}
	for i := uint64(0); i < 4; i++ {
		if tlb.Translate(i * 4096) {
			t.Fatalf("page %d missing from fully-associative TLB", i)
		}
	}
	tlb.Translate(4 * 4096) // evicts page 0 (LRU after the re-touch loop)
	if !tlb.Translate(0) {
		t.Fatal("LRU page survived")
	}
}

func TestHierarchyChargesTLBPenalty(t *testing.T) {
	cfg := Default()
	cfg.TLBEntries = 4
	cfg.TLBWays = 2
	cfg.TLBPageBytes = 4096
	h := NewHierarchy(cfg)
	a := h.Access(1, 0x100000, 0, true)
	if a.Latency < cfg.MemLat+cfg.TLBPenalty {
		t.Fatalf("first touch latency %d lacks TLB penalty", a.Latency)
	}
	if h.Totals.TLBMisses != 1 {
		t.Fatalf("TLB misses = %d", h.Totals.TLBMisses)
	}
	// Same page after the fill completes: L1 hit, no TLB penalty.
	b := h.Access(1, 0x100008, 10_000, true)
	if b.Latency != cfg.L1Lat {
		t.Fatalf("warm same-page access latency %d", b.Latency)
	}
}

func TestHierarchyTLBDisabled(t *testing.T) {
	cfg := Default()
	cfg.TLBEntries = 0
	h := NewHierarchy(cfg)
	a := h.Access(1, 0x100000, 0, true)
	if a.Latency != cfg.MemLat+cfg.L1Lat {
		t.Fatalf("latency with TLB disabled = %d", a.Latency)
	}
}

func TestPrefetchAccuracyTracking(t *testing.T) {
	h := NewHierarchy(Default())
	// Two prefetches; only one line is later demanded.
	h.Prefetch(1, 0x100000, 0)
	h.Prefetch(1, 0x200000, 0)
	if h.PrefetchIssued != 2 {
		t.Fatalf("issued = %d", h.PrefetchIssued)
	}
	h.Access(2, 0x100008, 500, true)
	if h.PrefetchUseful != 1 {
		t.Fatalf("useful = %d", h.PrefetchUseful)
	}
	if got := h.PrefetchAccuracy(); got != 0.5 {
		t.Fatalf("accuracy = %v", got)
	}
	// Duplicate prefetch to an already-tracked line doesn't double count.
	h.Prefetch(1, 0x300000, 1000)
	h.Prefetch(1, 0x300008, 1000)
	if h.PrefetchIssued != 3 {
		t.Fatalf("issued after dup = %d", h.PrefetchIssued)
	}
	if (&Hierarchy{}).PrefetchAccuracy() != 1 {
		t.Fatal("no-prefetch accuracy should be 1")
	}
}
