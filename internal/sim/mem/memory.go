// Package mem models the data side of the research Itanium memory system of
// Table 1: a flat 64-bit word memory, a three-level set-associative cache
// hierarchy (L1D 16KB/4-way/2cyc, L2 256KB/4-way/14cyc, L3 3MB/12-way/30cyc,
// memory 230 cycles, 64-byte lines), and a 16-entry fill buffer that tracks
// lines in transit so that accesses to an already-requested line become
// partial hits — the "Partial" categories of Figure 9.
package mem

import "sort"

// pageBits selects a 4KB page (512 words) for the sparse memory.
const pageBits = 9

type page [1 << pageBits]uint64

// Memory is a sparse, paged, word-granular flat memory. Addresses are byte
// addresses; accesses are aligned to 8 bytes by masking. Loads of never
// written locations return zero, which makes speculative p-slice execution
// naturally non-faulting (§2: precomputation may be wrong, never harmful).
type Memory struct {
	pages map[uint64]*page
}

// NewMemory returns an empty memory.
func NewMemory() *Memory { return &Memory{pages: make(map[uint64]*page)} }

// Load reads the 64-bit word at addr (aligned down).
func (m *Memory) Load(addr uint64) uint64 {
	w := addr >> 3
	p := m.pages[w>>pageBits]
	if p == nil {
		return 0
	}
	return p[w&(1<<pageBits-1)]
}

// Store writes the 64-bit word at addr (aligned down).
func (m *Memory) Store(addr, val uint64) {
	w := addr >> 3
	idx := w >> pageBits
	p := m.pages[idx]
	if p == nil {
		p = new(page)
		m.pages[idx] = p
	}
	p[w&(1<<pageBits-1)] = val
}

// Install copies a data image into memory.
func (m *Memory) Install(img map[uint64]uint64) {
	for a, v := range img {
		m.Store(a, v)
	}
}

// Snapshot is a data image pre-paged into this memory's layout, built once
// and installed many times: each Install of a map image walks the map and
// re-stores word by word, while installing a snapshot copies whole pages.
// The predecode layer builds one per ir.Image so every machine over that
// image (every matrix cell, every differential run) skips the map walk.
type Snapshot struct {
	idxs  []uint64
	pages []*page
}

// NewSnapshot pre-pages a data image. The resident page set and contents are
// exactly those Install(img) would produce — including pages that exist only
// to hold explicit zero words — so installing the snapshot is observationally
// identical to installing the map.
func NewSnapshot(img map[uint64]uint64) *Snapshot {
	m := NewMemory()
	m.Install(img)
	s := &Snapshot{
		idxs:  make([]uint64, 0, len(m.pages)),
		pages: make([]*page, 0, len(m.pages)),
	}
	for idx := range m.pages {
		s.idxs = append(s.idxs, idx)
	}
	sort.Slice(s.idxs, func(i, j int) bool { return s.idxs[i] < s.idxs[j] })
	for _, idx := range s.idxs {
		s.pages = append(s.pages, m.pages[idx])
	}
	return s
}

// InstallSnapshot copies a pre-paged image into memory, one page copy per
// resident page. The snapshot itself is never aliased and stays reusable.
func (m *Memory) InstallSnapshot(s *Snapshot) {
	for i, idx := range s.idxs {
		p := new(page)
		*p = *s.pages[i]
		m.pages[idx] = p
	}
}

// Footprint returns the number of resident pages (for tests).
func (m *Memory) Footprint() int { return len(m.pages) }

// Checksum digests the memory contents as FNV-1a over (address, value) pairs
// of every non-zero word, visited in ascending page order. Zero words never
// contribute, so a memory with an all-zero resident page checksums identically
// to one where the page was never touched — two runs agree iff their
// observable contents agree, regardless of allocation history.
func (m *Memory) Checksum() uint64 {
	idxs := make([]uint64, 0, len(m.pages))
	for idx := range m.pages {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	word := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for _, idx := range idxs {
		p := m.pages[idx]
		for i, v := range p {
			if v == 0 {
				continue
			}
			addr := (idx<<pageBits | uint64(i)) << 3
			word(addr)
			word(v)
		}
	}
	return h
}
