// Package mem models the data side of the research Itanium memory system of
// Table 1: a flat 64-bit word memory, a three-level set-associative cache
// hierarchy (L1D 16KB/4-way/2cyc, L2 256KB/4-way/14cyc, L3 3MB/12-way/30cyc,
// memory 230 cycles, 64-byte lines), and a 16-entry fill buffer that tracks
// lines in transit so that accesses to an already-requested line become
// partial hits — the "Partial" categories of Figure 9.
package mem

import "sort"

// pageBits selects a 4KB page (512 words) for the sparse memory.
const pageBits = 9

type page [1 << pageBits]uint64

// The page table is a two-level radix: a dense first-level slice of leaf
// tables covering the low part of the address space (where the linker
// actually places code and data), with a map fallback for outlier pages
// beyond that span. leafBits pages per leaf × rootMax leaves covers
// 2^24 pages = 64GB of address space before any access ever touches the
// fallback map, and the fully grown first level is only 64KB of pointers.
const (
	leafBits = 11
	leafMask = 1<<leafBits - 1
	rootMax  = 1 << 13
)

type leaf [1 << leafBits]*page

// Memory is a sparse, paged, word-granular flat memory. Addresses are byte
// addresses; accesses are aligned to 8 bytes by masking. Loads of never
// written locations return zero, which makes speculative p-slice execution
// naturally non-faulting (§2: precomputation may be wrong, never harmful).
//
// Lookups are map-free on the hot path: a one-entry last-page cache catches
// the page locality of real access streams, and a miss walks the two-level
// radix with shifts and bounds checks only.
type Memory struct {
	root     []*leaf          // dense first level, grown up to rootMax entries
	out      map[uint64]*page // outliers beyond the radix span
	lastIdx  uint64           // page index of the cached page
	lastPage *page            // one-entry lookup cache (nil = cold)
	resident int
}

// NewMemory returns an empty memory.
func NewMemory() *Memory { return &Memory{} }

// lookupPage walks the radix (or the outlier map) for page idx; nil when the
// page is not resident.
func (m *Memory) lookupPage(idx uint64) *page {
	r := idx >> leafBits
	if r < uint64(len(m.root)) {
		if l := m.root[r]; l != nil {
			return l[idx&leafMask]
		}
		return nil
	}
	if r < rootMax {
		return nil
	}
	return m.out[idx]
}

// ensurePage returns the page frame for idx, allocating it (and any radix
// level above it) on first touch.
func (m *Memory) ensurePage(idx uint64) *page {
	r := idx >> leafBits
	if r < rootMax {
		if r >= uint64(len(m.root)) {
			n := 2 * len(m.root)
			if n <= int(r) {
				n = int(r) + 1
			}
			if n > rootMax {
				n = rootMax
			}
			grown := make([]*leaf, n)
			copy(grown, m.root)
			m.root = grown
		}
		l := m.root[r]
		if l == nil {
			l = new(leaf)
			m.root[r] = l
		}
		p := l[idx&leafMask]
		if p == nil {
			p = new(page)
			l[idx&leafMask] = p
			m.resident++
		}
		return p
	}
	if m.out == nil {
		m.out = make(map[uint64]*page)
	}
	p := m.out[idx]
	if p == nil {
		p = new(page)
		m.out[idx] = p
		m.resident++
	}
	return p
}

// Load reads the 64-bit word at addr (aligned down).
func (m *Memory) Load(addr uint64) uint64 {
	w := addr >> 3
	idx := w >> pageBits
	if p := m.lastPage; p != nil && idx == m.lastIdx {
		return p[w&(1<<pageBits-1)]
	}
	p := m.lookupPage(idx)
	if p == nil {
		return 0
	}
	m.lastIdx, m.lastPage = idx, p
	return p[w&(1<<pageBits-1)]
}

// Store writes the 64-bit word at addr (aligned down).
func (m *Memory) Store(addr, val uint64) {
	w := addr >> 3
	idx := w >> pageBits
	if p := m.lastPage; p != nil && idx == m.lastIdx {
		p[w&(1<<pageBits-1)] = val
		return
	}
	p := m.ensurePage(idx)
	m.lastIdx, m.lastPage = idx, p
	p[w&(1<<pageBits-1)] = val
}

// Install copies a data image into memory.
func (m *Memory) Install(img map[uint64]uint64) {
	for a, v := range img {
		m.Store(a, v)
	}
}

// forEachPage visits every resident page in ascending page-index order.
// Outlier pages always sort after radix pages (their indices are beyond the
// radix span by construction).
func (m *Memory) forEachPage(f func(idx uint64, p *page)) {
	for r, l := range m.root {
		if l == nil {
			continue
		}
		for i, p := range l {
			if p != nil {
				f(uint64(r)<<leafBits|uint64(i), p)
			}
		}
	}
	if len(m.out) == 0 {
		return
	}
	idxs := make([]uint64, 0, len(m.out))
	for idx := range m.out {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	for _, idx := range idxs {
		f(idx, m.out[idx])
	}
}

// Reset zeroes every resident page in place, keeping the page frames and the
// radix layout for reuse. A reset memory is observationally identical to a
// fresh one — loads return zero everywhere and Checksum ignores zero words —
// but re-installing a snapshot into it allocates nothing.
func (m *Memory) Reset() {
	m.forEachPage(func(_ uint64, p *page) { *p = page{} })
	m.lastPage = nil
}

// Snapshot is a data image pre-paged into this memory's layout, built once
// and installed many times: each Install of a map image walks the map and
// re-stores word by word, while installing a snapshot copies whole pages.
// The predecode layer builds one per ir.Image so every machine over that
// image (every matrix cell, every differential run) skips the map walk.
type Snapshot struct {
	idxs  []uint64
	pages []*page
}

// NewSnapshot pre-pages a data image. The resident page set and contents are
// exactly those Install(img) would produce — including pages that exist only
// to hold explicit zero words — so installing the snapshot is observationally
// identical to installing the map.
func NewSnapshot(img map[uint64]uint64) *Snapshot {
	m := NewMemory()
	m.Install(img)
	s := &Snapshot{
		idxs:  make([]uint64, 0, m.resident),
		pages: make([]*page, 0, m.resident),
	}
	m.forEachPage(func(idx uint64, p *page) {
		s.idxs = append(s.idxs, idx)
		s.pages = append(s.pages, p)
	})
	return s
}

// InstallSnapshot copies a pre-paged image into memory, one page copy per
// resident page. The snapshot itself is never aliased and stays reusable.
// Installing into a memory that already holds frames for the snapshot's
// pages (a Reset machine being reused) copies into the existing frames and
// allocates nothing.
func (m *Memory) InstallSnapshot(s *Snapshot) {
	// Size the radix first level once to span the snapshot's layout, instead
	// of growing it incrementally page by page. idxs is sorted, so the last
	// index inside the radix span bounds the first level.
	for i := len(s.idxs) - 1; i >= 0; i-- {
		if r := s.idxs[i] >> leafBits; r < rootMax {
			if int(r) >= len(m.root) {
				grown := make([]*leaf, r+1)
				copy(grown, m.root)
				m.root = grown
			}
			break
		}
	}
	for i, idx := range s.idxs {
		*m.ensurePage(idx) = *s.pages[i]
	}
}

// Footprint returns the number of resident pages (for tests).
func (m *Memory) Footprint() int { return m.resident }

// Checksum digests the memory contents as FNV-1a over (address, value) pairs
// of every non-zero word, visited in ascending page order. Zero words never
// contribute, so a memory with an all-zero resident page checksums identically
// to one where the page was never touched — two runs agree iff their
// observable contents agree, regardless of allocation history.
func (m *Memory) Checksum() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	word := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	m.forEachPage(func(idx uint64, p *page) {
		for i, v := range p {
			if v == 0 {
				continue
			}
			addr := (idx<<pageBits | uint64(i)) << 3
			word(addr)
			word(v)
		}
	})
	return h
}
