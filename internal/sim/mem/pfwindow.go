package mem

// pfWindow tracks prefetch accuracy without per-access map traffic. It
// replaces a map[uint64]bool plus an ever-resliced FIFO: the FIFO of issued
// lines becomes a fixed ring buffer, and live-line membership becomes an
// open-addressed hash set sized so its load factor never exceeds one half.
//
// The semantics mirror the original structures exactly:
//   - the ring holds every *issued* line in issue order, including lines a
//     demand access has since consumed (noteDemand removes a line from the
//     live set but not from the FIFO);
//   - a new prefetch is deduplicated only against the live set;
//   - when the FIFO is at capacity, the oldest issued line is popped and that
//     line is deleted from the live set regardless of which occurrence of the
//     line the popped entry was.
type pfWindow struct {
	ring [pfWindowSize]uint64
	tail int // ring index of the oldest FIFO entry
	n    int // FIFO entries (live or consumed)
	set  lineSet
}

// contains reports whether line is live (issued and not yet demanded).
func (w *pfWindow) contains(line uint64) bool { return w.set.has(line) }

// push records a newly issued line, evicting the oldest FIFO entry when the
// window is at capacity. The caller has already checked contains(line).
func (w *pfWindow) push(line uint64) {
	if w.n >= pfWindowSize {
		old := w.ring[w.tail]
		w.tail = (w.tail + 1) & (pfWindowSize - 1)
		w.n--
		w.set.del(old)
	}
	w.ring[(w.tail+w.n)&(pfWindowSize-1)] = line
	w.n++
	w.set.add(line)
}

// consume removes line from the live set (demand touched it); the FIFO entry
// stays, exactly as the original kept consumed lines in pfOrder.
func (w *pfWindow) consume(line uint64) { w.set.del(line) }

// lineSetCap must be a power of two at least 2*pfWindowSize so that linear
// probing stays short: the live set can never exceed the FIFO population.
const lineSetCap = 2 * pfWindowSize

// lineSet is an open-addressed hash set of cache-line numbers with linear
// probing and backward-shift deletion. Occupancy lives in a separate bitset
// so any uint64 value (including 0 and ^0) is a valid member.
type lineSet struct {
	slots [lineSetCap]uint64
	used  [lineSetCap / 64]uint64
}

func (s *lineSet) home(line uint64) uint64 {
	// Fibonacci hashing spreads clustered line numbers across the table.
	return (line * 0x9E3779B97F4A7C15) >> (64 - 13) & (lineSetCap - 1)
}

func (s *lineSet) isUsed(i uint64) bool { return s.used[i>>6]&(1<<(i&63)) != 0 }
func (s *lineSet) setUsed(i uint64)     { s.used[i>>6] |= 1 << (i & 63) }
func (s *lineSet) clearUsed(i uint64)   { s.used[i>>6] &^= 1 << (i & 63) }

// find returns the slot holding line, or ok=false after hitting an empty
// slot on the probe path.
func (s *lineSet) find(line uint64) (uint64, bool) {
	for i := s.home(line); ; i = (i + 1) & (lineSetCap - 1) {
		if !s.isUsed(i) {
			return 0, false
		}
		if s.slots[i] == line {
			return i, true
		}
	}
}

func (s *lineSet) has(line uint64) bool {
	_, ok := s.find(line)
	return ok
}

// add inserts line; the caller guarantees it is absent and that the table is
// below capacity (live lines are bounded by pfWindowSize).
func (s *lineSet) add(line uint64) {
	i := s.home(line)
	for s.isUsed(i) {
		i = (i + 1) & (lineSetCap - 1)
	}
	s.slots[i] = line
	s.setUsed(i)
}

// del removes line if present, backward-shifting the probe chain so that
// find never crosses a spurious hole.
func (s *lineSet) del(line uint64) {
	i, ok := s.find(line)
	if !ok {
		return
	}
	j := i
	for {
		j = (j + 1) & (lineSetCap - 1)
		if !s.isUsed(j) {
			break
		}
		// The element at j may move into the hole at i iff its home slot is
		// cyclically outside (i, j] — the standard linear-probing invariant.
		if k := s.home(s.slots[j]); (j-k)&(lineSetCap-1) >= (j-i)&(lineSetCap-1) {
			s.slots[i] = s.slots[j]
			i = j
		}
	}
	s.clearUsed(i)
}

// reset empties the set.
func (s *lineSet) reset() {
	s.used = [lineSetCap / 64]uint64{}
}
