package mem

// TLB is a set-associative translation lookaside buffer. Table 1 lists a
// 30-cycle TLB miss penalty; the hierarchy charges it on top of the cache
// access whenever a data access touches a page absent from the TLB. (The
// hardware page walker is not modelled beyond its latency.)
type TLB struct {
	ways     int
	sets     int
	pageBits uint
	tags     []uint64
	lru      []int64
	clock    int64
}

// NewTLB builds a TLB with the given entry count, associativity, and page
// size in bytes (powers of two).
func NewTLB(entries, ways, pageBytes int) *TLB {
	pb := uint(0)
	for 1<<pb < pageBytes {
		pb++
	}
	return &TLB{
		ways:     ways,
		sets:     entries / ways,
		pageBits: pb,
		tags:     make([]uint64, entries),
		lru:      make([]int64, entries),
	}
}

// Translate probes the TLB for addr's page, filling on a miss, and reports
// whether the access missed.
func (t *TLB) Translate(addr uint64) (missed bool) {
	page := addr>>t.pageBits + 1
	set := int(page) & (t.sets - 1)
	base := set * t.ways
	victim := base
	t.clock++
	for w := 0; w < t.ways; w++ {
		i := base + w
		if t.tags[i] == page {
			t.lru[i] = t.clock
			return false
		}
		if t.tags[i] == 0 {
			victim = i
		} else if t.tags[victim] != 0 && t.lru[i] < t.lru[victim] {
			victim = i
		}
	}
	t.tags[victim] = page
	t.lru[victim] = t.clock
	return true
}

// Reset invalidates all entries.
func (t *TLB) Reset() {
	for i := range t.tags {
		t.tags[i] = 0
		t.lru[i] = 0
	}
	t.clock = 0
}
