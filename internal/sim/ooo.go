package sim

import (
	"ssp/internal/ir"
	"ssp/internal/sim/decode"
	"ssp/internal/sim/mem"
)

// wrec is one in-flight instruction in an OOO window.
type wrec struct {
	pc   int
	fu   decode.FUClass
	lat  int64
	srcs [6]*wrec
	nsrc int

	issued bool
	doneAt int64

	memKind uint8
	memAddr uint64
	memID   int
}

// window is a per-thread reorder buffer: dispatch appends, issue picks
// data-ready records among the oldest RSSize unissued ones, retirement pops
// from the head in order.
type window struct {
	recs []*wrec
	head int
	cap  int

	rename [ir.NumLocs]*wrec
	// blocked is a mispredicted branch that stalls dispatch until it
	// issues; the misprediction penalty is charged when it resolves.
	blocked *wrec
	// haltAfterDrain stops dispatch and ends the thread once every
	// dispatched instruction has issued and retired. Both halt and kill
	// use it: a speculative thread's context is only freed when its
	// in-flight work (its prefetches!) has left the pipe, matching
	// retirement-stage thread termination.
	haltAfterDrain bool
	// waitDrain blocks dispatch until the window empties: a taken chk.c
	// raises its exception at the retirement stage, squashing younger
	// in-flight work — "speculative threads can only be spawned at the
	// retirement stage of the pipeline ... assessed with similar penalty
	// to exception handling that incurs pipeline flushes" (§4.4.1). The
	// drain is what makes SSP far less profitable on the OOO model.
	waitDrain bool
}

func newWindow(capacity int) *window {
	return &window{recs: make([]*wrec, 0, capacity+8), cap: capacity}
}

func (w *window) size() int  { return len(w.recs) - w.head }
func (w *window) full() bool { return w.size() >= w.cap }

func (w *window) push(r *wrec) { w.recs = append(w.recs, r) }

func (w *window) compact() {
	if w.head > 4096 {
		n := copy(w.recs, w.recs[w.head:])
		w.recs = w.recs[:n]
		w.head = 0
	}
}

// runOOO is the 16-stage out-of-order model: per-thread 255-entry windows
// with register renaming, an 18-entry reservation-station view (only the
// oldest 18 unissued records are wakeup candidates), in-order retirement,
// resolve-time branch-misprediction charging, and dispatch serialization at
// chk.c (spawning happens at the retirement end of the pipe and is assessed
// an exception-style flush, §4.4.1).
func (m *Machine) runOOO() {
	main := m.main()
	main.win = newWindow(m.Cfg.ROBSize)
	var sel [maxSelect]*Thread

	for !m.mainDone {
		if m.now >= m.Cfg.MaxCycles {
			m.res.TimedOut = true
			return
		}
		m.now++

		// Retire; a drained speculative thread that executed kill frees
		// its context here (retirement-stage termination).
		retired := false
		for _, t := range m.threads {
			if !t.active || t.win == nil {
				continue
			}
			w := t.win
			for k := 0; k < m.Cfg.RetireWidth && w.head < len(w.recs); k++ {
				r := w.recs[w.head]
				if !r.issued || r.doneAt > m.now {
					break
				}
				w.head++
				retired = true
			}
			w.compact()
			if w.haltAfterDrain && w.size() == 0 && t.spec {
				m.killThread(t)
			}
		}

		// Select threads (main first) for issue and dispatch bandwidth.
		n := 0
		sel[n] = main
		n++
		for scan, picked := 0, 0; scan < len(m.threads) && picked < m.Cfg.ThreadsPerCycle-1 && n < len(sel); scan++ {
			t := m.threads[(m.rr+scan)%len(m.threads)]
			if t == main || !t.active {
				continue
			}
			sel[n] = t
			n++
			picked++
			m.rr = (t.idx + 1) % len(m.threads)
		}
		slots := m.Cfg.IssueWidth / n

		// Issue (wakeup/select).
		intU, memU, brU, fpU := m.Cfg.IntUnits, m.Cfg.MemPorts, m.Cfg.BrUnits, m.Cfg.FPUnits
		issuedMain, issuedTotal := 0, 0
		for ti := 0; ti < n; ti++ {
			t := sel[ti]
			issued := m.issueOOO(t, slots, &intU, &memU, &brU, &fpU)
			issuedTotal += issued
			if t == main {
				issuedMain = issued
			}
		}

		// Dispatch (decode/rename + architectural execution).
		dispatched := 0
		for ti := 0; ti < n; ti++ {
			t := sel[ti]
			dispatched += m.dispatchOOO(t, slots)
		}

		// Main-thread completion: halt dispatched and window drained.
		if main.win.haltAfterDrain && main.win.size() == 0 {
			m.mainDone = true
		}
		stats := CycleStats{IssuedMain: issuedMain}
		if m.cycle != nil {
			m.cycle.Cycle(m, main, stats)
		}
		if m.Cfg.FastForward && !retired && issuedTotal == 0 && dispatched == 0 && !m.mainDone {
			m.fastForwardOOO(main, stats)
		}
	}
}

// issueOOO issues up to slots data-ready records from the oldest RSSize
// unissued window entries.
func (m *Machine) issueOOO(t *Thread, slots int, intU, memU, brU, fpU *int) int {
	if !t.active || t.win == nil {
		return 0
	}
	w := t.win
	issued := 0
	considered := 0
	for i := w.head; i < len(w.recs) && issued < slots && considered < m.Cfg.RSSize; i++ {
		r := w.recs[i]
		if r.issued {
			continue
		}
		considered++
		ready := true
		for s := 0; s < r.nsrc; s++ {
			src := r.srcs[s]
			if !src.issued || src.doneAt > m.now {
				ready = false
				break
			}
		}
		if !ready {
			continue
		}
		switch r.fu {
		case decode.FUInt:
			if *intU == 0 {
				continue
			}
			*intU--
		case decode.FUMem:
			if *memU == 0 {
				continue
			}
			*memU--
		case decode.FUBr:
			if *brU == 0 {
				continue
			}
			*brU--
		case decode.FUFP:
			if *fpU == 0 {
				continue
			}
			*fpU--
		}
		r.issued = true
		switch r.memKind {
		case memLoad:
			acc := m.Hier.Access(r.memID, r.memAddr, m.now, true)
			r.doneAt = m.now + acc.Latency
			if acc.Level != mem.L1 && m.cycle != nil {
				// Only the cycle hook's accounting consumes (and compacts)
				// pending fills; don't grow them unhooked.
				t.pending = append(t.pending, pendingFill{readyAt: r.doneAt, level: acc.Level})
			}
		case memStore:
			m.Hier.Access(r.memID, r.memAddr, m.now, true)
			r.doneAt = m.now + 1
		case memPrefetch:
			m.Hier.Prefetch(r.memID, r.memAddr, m.now)
			r.doneAt = m.now + 1
		default:
			r.doneAt = m.now + r.lat
		}
		if w.blocked == r {
			// Mispredicted branch resolves: refetch after the flush.
			w.blocked = nil
			t.frontStallUntil = r.doneAt + m.Cfg.MispredictPenalty
		}
		issued++
	}
	return issued
}

// dispatchOOO decodes, renames, and architecturally executes up to slots
// instructions in program order, returning how many it dispatched.
func (m *Machine) dispatchOOO(t *Thread, slots int) int {
	if !t.active || t.win == nil {
		return 0
	}
	for k := 0; k < slots; k++ {
		w := t.win
		if t.frontStallUntil > m.now || w.blocked != nil || w.haltAfterDrain || w.full() {
			return k
		}
		if w.waitDrain {
			if w.size() > 0 {
				return k
			}
			w.waitDrain = false
		}
		pc := t.pc
		d := &m.code[pc]
		ef := m.execArch(t, pc)
		t.instrs++
		if t.spec {
			m.res.SpecInstrs++
			if t.instrs > m.Cfg.MaxSpecInstrs {
				ef.kill = true
			}
		} else {
			m.res.MainInstrs++
		}

		r := &wrec{pc: pc, fu: d.FU, lat: m.lat[d.Lat]}
		for _, loc := range d.Uses {
			if p := w.rename[loc]; p != nil && !(p.issued && p.doneAt <= m.now) {
				if r.nsrc < len(r.srcs) {
					r.srcs[r.nsrc] = p
					r.nsrc++
				}
			}
		}
		if !ef.nullified && ef.memKind != memNone {
			r.memKind, r.memAddr, r.memID = ef.memKind, ef.memAddr, ef.memID
		}
		for _, loc := range d.Defs {
			w.rename[loc] = r
		}
		w.push(r)

		if ef.brCond {
			if m.Pred.PredictAndTrain(uint64(pc), ef.brTaken && !ef.nullified) {
				m.res.Mispredicts++
				w.blocked = r
			}
		}
		if d.Op == ir.OpChk && ef.nextPC != pc+1 {
			// Taken chk.c: the exception is recognized at retirement, so
			// the stub cannot dispatch until everything older has left
			// the pipe, and the refetch pays the flush penalty.
			w.waitDrain = true
			t.frontStallUntil = m.now + m.Cfg.SpawnFlushPenalty
		}
		if ef.kill || ef.halt {
			if ef.kill && !t.spec {
				// thread_kill_self on the non-speculative thread. Drain and
				// end the run like a halt (so the in-order and OOO models
				// agree on when it stops), but flag the violation so
				// RunProgram reports it instead of silently succeeding.
				m.res.MainKilled = true
			}
			w.haltAfterDrain = true
			return k + 1
		}
		t.pc = ef.nextPC
		if ef.nextPC != pc+1 {
			return k + 1 // control transfer ends the fetch bundle
		}
	}
	return slots
}
