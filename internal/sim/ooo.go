package sim

import (
	"ssp/internal/ir"
	"ssp/internal/sim/decode"
	"ssp/internal/sim/mem"
)

// wrec is one in-flight instruction in an OOO window. Records live inside the
// window's ring buffer and refer to their sources by absolute dispatch index
// rather than by pointer, so dispatching allocates nothing.
type wrec struct {
	pc   int
	fu   decode.FUClass
	lat  int64
	srcs [6]int64
	nsrc int

	issued bool
	doneAt int64

	memKind uint8
	memAddr uint64
	memID   int
}

// window is a per-thread reorder buffer: dispatch appends, issue picks
// data-ready records among the oldest RSSize unissued ones, retirement pops
// from the head in order.
//
// Records are stored in a fixed power-of-two ring indexed by absolute
// dispatch position: positions [headAbs, tailAbs) are live, and position a
// lives at recs[a&mask]. A source or rename reference below headAbs points
// at a retired record — retirement requires issued && doneAt <= now, so a
// retired producer is always satisfied and the reference needs no storage to
// prove it.
type window struct {
	recs    []wrec
	mask    int64
	headAbs int64
	tailAbs int64
	cap     int

	rename [ir.NumLocs]int64
	// firstUnissued is a scan hint: every record below this absolute
	// position has issued, so wakeup starts here instead of at headAbs.
	// Purely an iteration-order optimization — the records it skips are
	// exactly the ones the scan would skip one at a time.
	firstUnissued int64
	// blocked is a mispredicted branch (by absolute position, -1 = none)
	// that stalls dispatch until it issues; the misprediction penalty is
	// charged when it resolves.
	blocked int64
	// haltAfterDrain stops dispatch and ends the thread once every
	// dispatched instruction has issued and retired. Both halt and kill
	// use it: a speculative thread's context is only freed when its
	// in-flight work (its prefetches!) has left the pipe, matching
	// retirement-stage thread termination.
	haltAfterDrain bool
	// waitDrain blocks dispatch until the window empties: a taken chk.c
	// raises its exception at the retirement stage, squashing younger
	// in-flight work — "speculative threads can only be spawned at the
	// retirement stage of the pipeline ... assessed with similar penalty
	// to exception handling that incurs pipeline flushes" (§4.4.1). The
	// drain is what makes SSP far less profitable on the OOO model.
	waitDrain bool
}

// reset returns w restored to an empty window of the given capacity, reusing
// the ring when it is large enough and allocating one (also on a nil
// receiver) when it is not. Threads keep their window across kill/start
// cycles, so steady-state spawning reuses the same ring.
func (w *window) reset(capacity int) *window {
	ringCap := 1
	for ringCap < capacity {
		ringCap <<= 1
	}
	if w == nil || len(w.recs) < ringCap {
		w = &window{recs: make([]wrec, ringCap)}
	}
	w.mask = int64(len(w.recs) - 1)
	w.cap = capacity
	w.headAbs, w.tailAbs = 0, 0
	w.firstUnissued = 0
	w.blocked = -1
	w.haltAfterDrain, w.waitDrain = false, false
	for i := range w.rename {
		w.rename[i] = -1
	}
	return w
}

func (w *window) size() int  { return int(w.tailAbs - w.headAbs) }
func (w *window) full() bool { return w.tailAbs-w.headAbs >= int64(w.cap) }

// at returns the record at absolute position a, which must be in
// [headAbs, tailAbs).
func (w *window) at(a int64) *wrec { return &w.recs[a&w.mask] }

// srcReady reports whether the source at absolute position a is satisfied: a
// retired producer (below headAbs) is satisfied by construction, a live one
// iff it has issued and completed.
func (w *window) srcReady(a, now int64) bool {
	if a < w.headAbs {
		return true
	}
	r := w.at(a)
	return r.issued && r.doneAt <= now
}

// runOOO is the 16-stage out-of-order model: per-thread 255-entry windows
// with register renaming, an 18-entry reservation-station view (only the
// oldest 18 unissued records are wakeup candidates), in-order retirement,
// resolve-time branch-misprediction charging, and dispatch serialization at
// chk.c (spawning happens at the retirement end of the pipe and is assessed
// an exception-style flush, §4.4.1).
func (m *Machine) runOOO() {
	main := m.main()
	main.win = main.win.reset(m.Cfg.ROBSize)
	var sel [maxSelect]*Thread

	for !m.mainDone {
		if m.now >= m.Cfg.MaxCycles {
			m.res.TimedOut = true
			return
		}
		if m.stop.Load() {
			// Cancelled via RunContext: bail between cycles.
			return
		}
		m.now++

		// Retire; a drained speculative thread that executed kill frees
		// its context here (retirement-stage termination). With no live
		// speculative thread only main can retire.
		retired := false
		retireSet := m.threads
		if m.liveSpec == 0 {
			retireSet = m.threads[:1]
		}
		for _, t := range retireSet {
			if !t.active || t.win == nil {
				continue
			}
			w := t.win
			for k := 0; k < m.Cfg.RetireWidth && w.headAbs < w.tailAbs; k++ {
				r := w.at(w.headAbs)
				if !r.issued || r.doneAt > m.now {
					break
				}
				w.headAbs++
				retired = true
			}
			if w.haltAfterDrain && w.size() == 0 && t.spec {
				m.killThread(t)
			}
		}

		// Select threads (main first) for issue and dispatch bandwidth.
		n := 0
		sel[n] = main
		n++
		if m.liveSpec > 0 {
			for scan, picked := 0, 0; scan < len(m.threads) && picked < m.Cfg.ThreadsPerCycle-1 && n < len(sel); scan++ {
				// m.rr moves on every pick, so the index is recomputed from
				// it each iteration; rr and scan are both < len, so one
				// conditional subtract replaces the modulo.
				idx := m.rr + scan
				if idx >= len(m.threads) {
					idx -= len(m.threads)
				}
				t := m.threads[idx]
				if t == main || !t.active {
					continue
				}
				sel[n] = t
				n++
				picked++
				if m.rr = t.idx + 1; m.rr == len(m.threads) {
					m.rr = 0
				}
			}
		}
		slots := m.Cfg.IssueWidth
		if n > 1 {
			slots /= n
		}

		// Issue (wakeup/select).
		intU, memU, brU, fpU := m.Cfg.IntUnits, m.Cfg.MemPorts, m.Cfg.BrUnits, m.Cfg.FPUnits
		issuedMain, issuedTotal := 0, 0
		for ti := 0; ti < n; ti++ {
			t := sel[ti]
			issued := m.issueOOO(t, slots, &intU, &memU, &brU, &fpU)
			issuedTotal += issued
			if t == main {
				issuedMain = issued
			}
		}

		// Dispatch (decode/rename + architectural execution).
		dispatched := 0
		for ti := 0; ti < n; ti++ {
			t := sel[ti]
			dispatched += m.dispatchOOO(t, slots)
		}

		// Main-thread completion: halt dispatched and window drained.
		if main.win.haltAfterDrain && main.win.size() == 0 {
			m.mainDone = true
		}
		stats := CycleStats{IssuedMain: issuedMain}
		if m.statsDefault {
			// Devirtualized default stats recorder (same effect as the
			// interface call below, minus the dynamic dispatch).
			m.accountCycle(main, issuedMain, false, 0)
			m.recordUtilization()
		} else if m.cycle != nil {
			m.cycle.Cycle(m, main, stats)
		}
		if m.Cfg.FastForward && !retired && issuedTotal == 0 && dispatched == 0 && !m.mainDone {
			m.fastForwardOOO(main, stats)
		}
	}
}

// issueOOO issues up to slots data-ready records from the oldest RSSize
// unissued window entries.
func (m *Machine) issueOOO(t *Thread, slots int, intU, memU, brU, fpU *int) int {
	if !t.active || t.win == nil {
		return 0
	}
	w := t.win
	issued := 0
	considered := 0
	for w.firstUnissued < w.tailAbs && w.at(w.firstUnissued).issued {
		w.firstUnissued++
	}
	start := w.firstUnissued
	if start < w.headAbs {
		start = w.headAbs
	}
	for a := start; a < w.tailAbs && issued < slots && considered < m.Cfg.RSSize; a++ {
		r := w.at(a)
		if r.issued {
			continue
		}
		considered++
		ready := true
		for s := 0; s < r.nsrc; s++ {
			if !w.srcReady(r.srcs[s], m.now) {
				ready = false
				break
			}
		}
		if !ready {
			continue
		}
		switch r.fu {
		case decode.FUInt:
			if *intU == 0 {
				continue
			}
			*intU--
		case decode.FUMem:
			if *memU == 0 {
				continue
			}
			*memU--
		case decode.FUBr:
			if *brU == 0 {
				continue
			}
			*brU--
		case decode.FUFP:
			if *fpU == 0 {
				continue
			}
			*fpU--
		}
		r.issued = true
		switch r.memKind {
		case memLoad:
			acc := m.Hier.Access(r.memID, r.memAddr, m.now, true)
			r.doneAt = m.now + acc.Latency
			if acc.Level != mem.L1 && m.cycle != nil {
				// Only the cycle hook's accounting consumes (and compacts)
				// pending fills; don't grow them unhooked.
				t.pending = append(t.pending, pendingFill{readyAt: r.doneAt, level: acc.Level})
			}
		case memStore:
			m.Hier.Access(r.memID, r.memAddr, m.now, true)
			r.doneAt = m.now + 1
		case memPrefetch:
			m.Hier.Prefetch(r.memID, r.memAddr, m.now)
			r.doneAt = m.now + 1
		default:
			r.doneAt = m.now + r.lat
		}
		if w.blocked == a {
			// Mispredicted branch resolves: refetch after the flush.
			w.blocked = -1
			t.frontStallUntil = r.doneAt + m.Cfg.MispredictPenalty
		}
		issued++
	}
	return issued
}

// dispatchOOO decodes, renames, and architecturally executes up to slots
// instructions in program order, returning how many it dispatched.
func (m *Machine) dispatchOOO(t *Thread, slots int) int {
	if !t.active || t.win == nil {
		return 0
	}
	for k := 0; k < slots; k++ {
		w := t.win
		if t.frontStallUntil > m.now || w.blocked >= 0 || w.haltAfterDrain || w.full() {
			return k
		}
		if w.waitDrain {
			if w.size() > 0 {
				return k
			}
			w.waitDrain = false
		}
		pc := t.pc
		d := &m.code[pc]
		if m.steps != nil {
			if s := m.steps[pc]; s != nil {
				// Pure-step fast path: no memory access, no control
				// transfer, no halt — the record claims its ring slot and
				// renames exactly as below, minus the archEffect round-trip.
				if m.exec != nil {
					m.exec.Exec(m, t, pc)
				}
				s(&t.Ctx)
				t.instrs++
				killed := false
				if t.spec {
					m.res.SpecInstrs++
					// >= for the same reason as the table path below.
					if t.instrs >= m.Cfg.MaxSpecInstrs {
						killed = true
					}
				} else {
					m.res.MainInstrs++
				}
				a := w.tailAbs
				r := w.at(a)
				*r = wrec{pc: pc, fu: d.FU, lat: m.lat[d.Lat]}
				for _, loc := range d.Uses {
					if pa := w.rename[loc]; pa >= w.headAbs && !w.srcReady(pa, m.now) {
						if r.nsrc < len(r.srcs) {
							r.srcs[r.nsrc] = pa
							r.nsrc++
						}
					}
				}
				for _, loc := range d.Defs {
					w.rename[loc] = a
				}
				w.tailAbs = a + 1
				if killed {
					w.haltAfterDrain = true
					return k + 1
				}
				t.pc = pc + 1
				continue
			}
		}
		ef := m.execArch(t, pc)
		t.instrs++
		if t.spec {
			m.res.SpecInstrs++
			// >= for the same reason as the in-order engine: the activation
			// never exceeds the certified MaxSpecInstrs budget.
			if t.instrs >= m.Cfg.MaxSpecInstrs {
				ef.kill = true
			}
		} else {
			m.res.MainInstrs++
		}

		// Claim the ring slot at the next absolute position; full() above
		// guarantees it is free.
		a := w.tailAbs
		r := w.at(a)
		*r = wrec{pc: pc, fu: d.FU, lat: m.lat[d.Lat]}
		for _, loc := range d.Uses {
			if pa := w.rename[loc]; pa >= w.headAbs && !w.srcReady(pa, m.now) {
				if r.nsrc < len(r.srcs) {
					r.srcs[r.nsrc] = pa
					r.nsrc++
				}
			}
		}
		if !ef.nullified && ef.memKind != memNone {
			r.memKind, r.memAddr, r.memID = ef.memKind, ef.memAddr, ef.memID
		}
		for _, loc := range d.Defs {
			w.rename[loc] = a
		}
		w.tailAbs = a + 1

		if ef.brCond {
			if m.Pred.PredictAndTrain(uint64(pc), ef.brTaken && !ef.nullified) {
				m.res.Mispredicts++
				w.blocked = a
			}
		}
		if d.Op == ir.OpChk && ef.nextPC != pc+1 {
			// Taken chk.c: the exception is recognized at retirement, so
			// the stub cannot dispatch until everything older has left
			// the pipe, and the refetch pays the flush penalty.
			w.waitDrain = true
			t.frontStallUntil = m.now + m.Cfg.SpawnFlushPenalty
		}
		if ef.kill || ef.halt {
			if ef.kill && !t.spec {
				// thread_kill_self on the non-speculative thread. Drain and
				// end the run like a halt (so the in-order and OOO models
				// agree on when it stops), but flag the violation so
				// RunProgram reports it instead of silently succeeding.
				m.res.MainKilled = true
			}
			w.haltAfterDrain = true
			return k + 1
		}
		t.pc = ef.nextPC
		if ef.nextPC != pc+1 {
			return k + 1 // control transfer ends the fetch bundle
		}
	}
	return slots
}
