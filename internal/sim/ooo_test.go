package sim

import (
	"testing"

	"ssp/internal/ir"
)

// missLoop builds a loop of n independent strided misses with a dependent
// use (the OOO latency-tolerance workload).
func missLoop(n int) *ir.Program {
	p := ir.NewProgram("main")
	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.MovI(14, 0x100000)
	e.MovI(15, 0)
	e.MovI(16, int64(n))
	loop := fb.Block("loop")
	loop.Ld(17, 14, 0)
	loop.Add(18, 18, 17)
	loop.AddI(14, 14, 64)
	loop.AddI(15, 15, 1)
	loop.Cmp(ir.CondLT, 6, 7, 15, 16)
	loop.On(6).Br("loop")
	d := fb.Block("done")
	d.Halt()
	return p
}

func runCfg(t *testing.T, cfg Config, p *ir.Program) *Result {
	t.Helper()
	res, err := RunProgram(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestOOOWindowSizeMatters(t *testing.T) {
	p := missLoop(1500)
	big := testOOO()
	small := testOOO()
	small.ROBSize = 8
	small.RSSize = 8
	rb := runCfg(t, big, p)
	rs := runCfg(t, small, p)
	if float64(rs.Cycles) < 1.5*float64(rb.Cycles) {
		t.Fatalf("shrinking the window barely hurt: %d vs %d cycles", rs.Cycles, rb.Cycles)
	}
}

func TestOOORSLimitMatters(t *testing.T) {
	// With a large ROB but a tiny reservation station, wakeup can only
	// see a few instructions: memory-level parallelism collapses.
	p := missLoop(1500)
	wide := testOOO()
	narrow := testOOO()
	narrow.RSSize = 2
	rw := runCfg(t, wide, p)
	rn := runCfg(t, narrow, p)
	if rn.Cycles <= rw.Cycles {
		t.Fatalf("RS=2 (%d cycles) not slower than RS=18 (%d)", rn.Cycles, rw.Cycles)
	}
}

func TestOOOFillBufferLimitsMLP(t *testing.T) {
	p := missLoop(1500)
	wide := testOOO()
	narrow := testOOO()
	narrow.Mem.FillBufferEntries = 2
	rw := runCfg(t, wide, p)
	rn := runCfg(t, narrow, p)
	if float64(rn.Cycles) < 1.3*float64(rw.Cycles) {
		t.Fatalf("2-entry fill buffer barely hurt: %d vs %d", rn.Cycles, rw.Cycles)
	}
}

func TestMispredictPenaltyVisible(t *testing.T) {
	// A data-dependent unpredictable branch pattern vs. an always-taken
	// one: the former must mispredict much more.
	build := func(chaotic bool) *ir.Program {
		p := ir.NewProgram("main")
		// Pseudo-random bits via an LCG.
		fb := ir.NewFunc(p, "main")
		e := fb.Block("entry")
		e.MovI(14, 12345) // lcg state
		e.MovI(15, 0)     // i
		loop := fb.Block("loop")
		loop.MulI(14, 14, 1103515245)
		loop.AddI(14, 14, 12345)
		loop.ShrI(16, 14, 16)
		if chaotic {
			loop.AndI(16, 16, 1)
		} else {
			loop.MovI(16, 1)
		}
		loop.CmpI(ir.CondEQ, 8, 9, 16, 1)
		loop.On(8).AddI(17, 17, 1)
		loop.On(9).AddI(17, 17, 2) // balanced predicated work
		loop.CmpI(ir.CondEQ, 10, 11, 16, 0)
		loop.On(10).Br("skip")
		mid := fb.Block("mid")
		mid.AddI(18, 18, 1)
		skip := fb.Block("skip")
		skip.AddI(15, 15, 1)
		skip.CmpI(ir.CondLT, 6, 7, 15, 4000)
		skip.On(6).Br("loop")
		d := fb.Block("done")
		d.Halt()
		return p
	}
	for _, cfg := range []Config{testInOrder(), testOOO()} {
		rc := runCfg(t, cfg, build(true))
		rs := runCfg(t, cfg, build(false))
		if rc.Mispredicts < 4*rs.Mispredicts {
			t.Fatalf("%v: chaotic branch mispredicted %d times vs steady %d",
				cfg.Model, rc.Mispredicts, rs.Mispredicts)
		}
		if rc.Cycles <= rs.Cycles {
			t.Fatalf("%v: mispredictions cost nothing (%d vs %d cycles)",
				cfg.Model, rc.Cycles, rs.Cycles)
		}
	}
}

func TestSpawnCooldownThrottlesChk(t *testing.T) {
	p := chaseProgram(800, true)
	free := testInOrder()
	free.SpawnCooldown = 0
	cold := testInOrder()
	cold.SpawnCooldown = 100_000_000 // effectively one trigger
	rf := runCfg(t, free, p)
	rc := runCfg(t, cold, p)
	if rc.ChkTaken > 1 {
		t.Fatalf("cooldown did not throttle: %d chk taken", rc.ChkTaken)
	}
	if rf.ChkTaken <= rc.ChkTaken {
		t.Fatalf("no-cooldown run took %d chks, cooled run %d", rf.ChkTaken, rc.ChkTaken)
	}
}

func TestOOORetirementIsInOrder(t *testing.T) {
	// A long-latency load followed by cheap instructions: the window must
	// hold the cheap work until the load retires (ROB pressure visible
	// as cycles scaling with ROB size when the window fills).
	p := ir.NewProgram("main")
	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.MovI(14, 0x100000)
	e.MovI(15, 0)
	loop := fb.Block("loop")
	loop.Ld(17, 14, 0) // miss
	for i := 0; i < 20; i++ {
		loop.AddI(18, 18, 1) // independent cheap work
	}
	loop.AddI(14, 14, 64)
	loop.AddI(15, 15, 1)
	loop.CmpI(ir.CondLT, 6, 7, 15, 500)
	loop.On(6).Br("loop")
	fb.Block("done").Halt()
	tiny := testOOO()
	tiny.ROBSize = 24 // smaller than one iteration + the miss shadow
	big := testOOO()
	rt := runCfg(t, tiny, p)
	rb := runCfg(t, big, p)
	if rt.Cycles <= rb.Cycles {
		t.Fatalf("ROB=24 (%d cycles) not slower than ROB=255 (%d)", rt.Cycles, rb.Cycles)
	}
}

func TestPrefetchDroppedWhenFillBufferFull(t *testing.T) {
	// Saturate the fill buffer with demand misses while issuing
	// prefetches: the prefetches must be droppable, never stalling or
	// displacing demand fills.
	p := ir.NewProgram("main")
	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.MovI(14, 0x100000)
	e.MovI(19, 0x900000)
	e.MovI(15, 0)
	loop := fb.Block("loop")
	loop.Ld(17, 14, 0)
	loop.Lfetch(19, 0)
	loop.AddI(19, 19, 64)
	loop.AddI(14, 14, 64)
	loop.AddI(15, 15, 1)
	loop.CmpI(ir.CondLT, 6, 7, 15, 800)
	loop.On(6).Br("loop")
	fb.Block("done").Halt()
	cfg := testOOO()
	cfg.Mem.FillBufferEntries = 2
	img, err := ir.Link(p)
	if err != nil {
		t.Fatal(err)
	}
	m := New(cfg, img)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("timed out")
	}
	if m.Hier.DroppedPrefetches == 0 {
		t.Fatal("no prefetches dropped under fill-buffer pressure")
	}
}

func TestOOOSMTSharesIssueBandwidth(t *testing.T) {
	// With a speculative thread running, the main thread gets half the
	// issue bandwidth; a compute-bound main loop must slow down.
	build := func(ssp bool) *ir.Program {
		p := ir.NewProgram("main")
		fb := ir.NewFunc(p, "main")
		e := fb.Block("entry")
		e.MovI(15, 0)
		if ssp {
			e.Chk("stub")
		}
		loop := fb.Block("loop")
		for i := 0; i < 12; i++ {
			loop.AddI(ir.Reg(16+i), ir.Reg(16+i), 1)
		}
		loop.AddI(15, 15, 1)
		loop.CmpI(ir.CondLT, 6, 7, 15, 5000)
		loop.On(6).Br("loop")
		d := fb.Block("done")
		d.Halt()
		if ssp {
			stub := fb.Block("stub")
			stub.Spawn("spin")
			spin := fb.Block("spin")
			// A speculative thread that spins forever (capped by
			// MaxSpecInstrs) consuming bandwidth.
			spin.AddI(40, 40, 1)
			spin.Br("spin")
		}
		return p
	}
	cfg := testOOO()
	cfg.MaxSpecInstrs = 1 << 30
	base := runCfg(t, cfg, build(false))
	shared := runCfg(t, cfg, build(true))
	if float64(shared.Cycles) < 1.3*float64(base.Cycles) {
		t.Fatalf("SMT sharing invisible: %d vs %d cycles", shared.Cycles, base.Cycles)
	}
}
