package sim

import (
	"sync"
	"sync/atomic"

	"ssp/internal/sim/decode"
)

// Pool recycles machines across runs: Get rebinds a pooled machine to a new
// (config, program) via Machine.Reset — reusing its memory page frames,
// hierarchy, predictor tables, and per-thread buffers — or builds a fresh one
// when the pool is empty. A Reset machine runs bit-for-bit identically to a
// freshly constructed one (the check.HotPathEquivalence gate enforces this),
// which is what makes pooling safe at all.
//
// Discipline: Put only machines whose run completed cleanly — the Result
// extracted, no error, no panic. A machine abandoned mid-run (cancellation,
// a panicking instrumentation hook, a failed checksum) must be dropped on
// the floor instead; Reset would scrub it, but never pooling dirty machines
// means a bug in Reset can only ever cost performance, not correctness.
// exp.Suite and serve.Server both follow this rule, and the pool's counters
// make violations visible: Puts only moves on clean completions.
//
// The zero Pool is ready to use. All methods are safe for concurrent use.
type Pool struct {
	p sync.Pool

	gets atomic.Int64 // machines handed out
	hits atomic.Int64 // ... of which were recycled rather than built
	puts atomic.Int64 // machines returned after clean completions
}

// Get returns a machine bound to (cfg, dp): a recycled one when available,
// a newly built one otherwise.
func (p *Pool) Get(cfg Config, dp *decode.Program) *Machine {
	p.gets.Add(1)
	if v := p.p.Get(); v != nil {
		p.hits.Add(1)
		m := v.(*Machine)
		m.Reset(cfg, dp)
		return m
	}
	return NewPredecoded(cfg, dp)
}

// Put returns a machine to the pool. Call it only after a clean completion:
// Run/RunContext returned a verified Result. Machines from failed, cancelled,
// or panicked runs must simply be dropped.
func (p *Pool) Put(m *Machine) {
	p.puts.Add(1)
	p.p.Put(m)
}

// PoolStats is a snapshot of a Pool's reuse counters.
type PoolStats struct {
	// Gets counts machines handed out, Hits how many of those were
	// recycled (Gets-Hits were fresh builds), and Puts how many machines
	// came back after clean completions (Gets-Puts were discarded or are
	// still in use).
	Gets, Hits, Puts int64
}

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{Gets: p.gets.Load(), Hits: p.hits.Load(), Puts: p.puts.Load()}
}
