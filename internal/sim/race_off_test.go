//go:build !race

package sim

// raceEnabled lets allocation-regression tests skip under the race
// detector, whose instrumentation adds allocations of its own.
const raceEnabled = false
