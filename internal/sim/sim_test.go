package sim

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ssp/internal/ir"
	"ssp/internal/sim/mem"
)

// tinyMem returns a scaled-down memory system so that small unit-test
// workloads exercise every level of the hierarchy quickly.
func tinyMem() mem.Config {
	c := mem.Default()
	c.L1Size = 1 << 10
	c.L2Size = 4 << 10
	c.L3Size = 16 << 10
	return c
}

func testInOrder() Config {
	c := DefaultInOrder()
	c.Mem = tinyMem()
	c.MaxCycles = 50_000_000
	return c
}

func testOOO() Config {
	c := DefaultOOO()
	c.Mem = tinyMem()
	c.MaxCycles = 50_000_000
	return c
}

// arithProgram computes a few values and stores them.
func arithProgram() *ir.Program {
	p := ir.NewProgram("main")
	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.MovI(14, 6)
	e.MovI(15, 7)
	e.Mul(16, 14, 15)  // 42
	e.AddI(17, 16, 58) // 100
	e.Sub(18, 17, 14)  // 94
	e.ShlI(19, 15, 3)  // 56
	e.Xor(20, 18, 19)  // 94^56
	e.CmpI(ir.CondLT, 6, 7, 16, 100)
	e.On(6).AddI(21, 16, 1) // 43 (predicated on)
	e.MovI(22, 0x1000)
	e.St(22, 0, 16)
	e.St(22, 8, 20)
	e.St(22, 16, 21)
	e.Halt()
	return p
}

func TestInterpretArith(t *testing.T) {
	img, err := ir.Link(arithProgram())
	if err != nil {
		t.Fatal(err)
	}
	r, err := Interpret(testInOrder(), img, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Regs[16] != 42 || r.Regs[17] != 100 || r.Regs[21] != 43 {
		t.Fatalf("regs: r16=%d r17=%d r21=%d", r.Regs[16], r.Regs[17], r.Regs[21])
	}
	if r.Mem.Load(0x1000) != 42 || r.Mem.Load(0x1008) != 94^56 {
		t.Fatal("stores missing")
	}
}

func TestEnginesMatchInterpreter(t *testing.T) {
	img, err := ir.Link(arithProgram())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Interpret(testInOrder(), img, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{testInOrder(), testOOO()} {
		m := New(cfg, img)
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.TimedOut {
			t.Fatalf("%v timed out", cfg.Model)
		}
		for a := uint64(0x1000); a <= 0x1010; a += 8 {
			if m.Mem.Load(a) != ref.Mem.Load(a) {
				t.Fatalf("%v: mem[%#x] = %d, want %d", cfg.Model, a, m.Mem.Load(a), ref.Mem.Load(a))
			}
		}
		if res.MainInstrs != ref.Instrs {
			t.Fatalf("%v: %d instrs, interpreter %d", cfg.Model, res.MainInstrs, ref.Instrs)
		}
	}
}

func TestDeterminism(t *testing.T) {
	p := chaseProgram(500, false)
	for _, cfg := range []Config{testInOrder(), testOOO()} {
		r1, err := RunProgram(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := RunProgram(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Cycles != r2.Cycles || r1.MainInstrs != r2.MainInstrs {
			t.Fatalf("%v nondeterministic: %d vs %d cycles", cfg.Model, r1.Cycles, r2.Cycles)
		}
	}
}

// chaseProgram builds the paper's Figure 3 workload: a strided scan over an
// arc array where each arc holds a pointer to a random node whose field is
// then loaded (t->tail->potential). The recurrence (arc = t + nr_group) is
// pure arithmetic, so a chaining p-slice can run far ahead of the 2-miss
// main-loop iteration. With ssp set, the binary carries a hand-built
// chaining slice in the Figure 7 layout, triggered by a chk.c in the loop.
func chaseProgram(n int, ssp bool) *ir.Program {
	p := ir.NewProgram("main")
	arcBase := uint64(0x100000)
	nodeBase := arcBase + uint64(n)*64 + 0x10000
	perm := rand.New(rand.NewSource(42)).Perm(n)
	for i := 0; i < n; i++ {
		node := nodeBase + uint64(perm[i])*64
		p.SetWord(arcBase+uint64(i)*64+8, node) // arc.tail
		p.SetWord(node+16, uint64(i))           // node.potential
	}
	endK := int64(arcBase + uint64(n)*64)
	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.MovI(14, int64(arcBase)) // arc
	e.MovI(15, endK)           // K
	e.MovI(20, 0)              // sum
	loop := fb.Block("loop")
	if ssp {
		loop.Chk("stub1")
	} else {
		loop.Nop() // padding the post-pass tool would replace (Figure 7)
	}
	loop.Mov(16, 14)    // A: t = arc
	loop.Ld(17, 16, 8)  // B: u = load(t->tail)
	loop.Ld(18, 17, 16) // C: load(u->potential)   <- delinquent
	loop.Add(20, 20, 18)
	loop.AddI(14, 16, 64) // D: arc = t + nr_group
	loop.Cmp(ir.CondLT, 6, 7, 14, 15)
	loop.On(6).Br("loop") // E
	done := fb.Block("done")
	done.MovI(22, 0x2000)
	done.St(22, 0, 20)
	done.Halt()
	if ssp {
		// Attachment (Figure 7): the stub copies live-ins to the LIB and
		// spawns; the chaining slice is the do-across prefetching loop of
		// Figure 5(b): induction + chain spawn first (critical sub-slice),
		// then the loads/prefetch (non-critical sub-slice).
		stub := fb.Block("stub1")
		stub.Liw(0, 14) // live-in: arc
		stub.Liw(1, 15) // live-in: K
		stub.Spawn("slice1")
		slice := fb.Block("slice1")
		slice.Lir(21, 0)       // arc
		slice.Lir(25, 1)       // K
		slice.AddI(22, 21, 64) // D': next arc
		slice.Liw(0, 22)
		slice.Liw(1, 25)
		slice.Cmp(ir.CondLT, 6, 7, 22, 25)
		slice.On(6).Spawn("slice1") // E': chain
		slice.Ld(23, 21, 8)         // B': tail
		slice.Lfetch(23, 16)        // C': prefetch potential
		slice.Kill()
	}
	return p
}

func TestSSPSpeedsUpInOrderChase(t *testing.T) {
	base, err := RunProgram(testInOrder(), chaseProgram(2000, false))
	if err != nil {
		t.Fatal(err)
	}
	enh, err := RunProgram(testInOrder(), chaseProgram(2000, true))
	if err != nil {
		t.Fatal(err)
	}
	if enh.Spawns < 500 {
		t.Fatalf("chaining produced only %d spawns", enh.Spawns)
	}
	speedup := float64(base.Cycles) / float64(enh.Cycles)
	if speedup < 1.2 {
		t.Fatalf("SSP speedup = %.2f (base %d, ssp %d cycles), want >= 1.2",
			speedup, base.Cycles, enh.Cycles)
	}
	// The speedup must come from where the paper says it does: reduced
	// L3-miss stall cycles on the main thread (Figure 10), with the
	// misses absorbed by the speculative threads.
	if enh.Breakdown[CatL3]*3 > base.Breakdown[CatL3]*2 {
		t.Fatalf("L3-miss stall cycles did not drop enough: base %d, ssp %d",
			base.Breakdown[CatL3], enh.Breakdown[CatL3])
	}
	// And the main loop's loads now see partial hits on lines the slice
	// already requested.
	var partials uint64
	for _, s := range enh.Hier.ByLoad() {
		for lvl := mem.L2; lvl <= mem.Mem; lvl++ {
			partials += s.Hits[lvl][1]
		}
	}
	if partials == 0 {
		t.Fatal("no partial hits recorded in the SSP run")
	}
}

func TestSSPPreservesArchitecturalState(t *testing.T) {
	// The enhanced binary must compute exactly the same result (§2).
	for _, ssp := range []bool{false, true} {
		p := chaseProgram(300, ssp)
		for _, cfg := range []Config{testInOrder(), testOOO()} {
			img, err := ir.Link(p)
			if err != nil {
				t.Fatal(err)
			}
			m := New(cfg, img)
			if _, err := m.Run(); err != nil {
				t.Fatal(err)
			}
			want := uint64(300 * 299 / 2)
			if got := m.Mem.Load(0x2000); got != want {
				t.Fatalf("ssp=%v %v: sum = %d, want %d", ssp, cfg.Model, got, want)
			}
		}
	}
}

func TestOOOToleratesMissesBetterThanInOrder(t *testing.T) {
	// Independent-strided loads: OOO should overlap them, in-order stalls
	// on each use.
	p := ir.NewProgram("main")
	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.MovI(14, 0x100000)
	e.MovI(15, 0)
	e.MovI(16, 2000)
	loop := fb.Block("loop")
	loop.Ld(17, 14, 0)
	loop.Add(18, 18, 17) // use stalls in-order
	loop.AddI(14, 14, 64)
	loop.AddI(15, 15, 1)
	loop.Cmp(ir.CondLT, 6, 7, 15, 16)
	loop.On(6).Br("loop")
	d := fb.Block("done")
	d.Halt()
	io, err := RunProgram(testInOrder(), p)
	if err != nil {
		t.Fatal(err)
	}
	ooo, err := RunProgram(testOOO(), p)
	if err != nil {
		t.Fatal(err)
	}
	if float64(io.Cycles)/float64(ooo.Cycles) < 1.5 {
		t.Fatalf("OOO %d vs in-order %d cycles: expected >= 1.5x", ooo.Cycles, io.Cycles)
	}
}

func TestBreakdownSumsToCycles(t *testing.T) {
	for _, cfg := range []Config{testInOrder(), testOOO()} {
		for _, ssp := range []bool{false, true} {
			res, err := RunProgram(cfg, chaseProgram(400, ssp))
			if err != nil {
				t.Fatal(err)
			}
			var sum int64
			for _, v := range res.Breakdown {
				sum += v
			}
			if sum != res.Cycles {
				t.Fatalf("%v ssp=%v: breakdown sums to %d, cycles %d", cfg.Model, ssp, sum, res.Cycles)
			}
			if res.Breakdown[CatL3] == 0 && !ssp {
				t.Fatalf("%v: pointer chase shows no L3-miss stall cycles: %v", cfg.Model, res.Breakdown)
			}
		}
	}
}

func TestSpecStoresSuppressed(t *testing.T) {
	p := chaseProgram(100, true)
	// Inject a store into the slice block.
	f := p.FuncByName("main")
	sl := f.BlockByLabel("slice1")
	st := &ir.Instr{Op: ir.OpSt, Ra: 21, Rb: 21, Disp: 8}
	p.Assign(st)
	sl.InsertAt(2, st)
	img, err := ir.Link(p)
	if err != nil {
		t.Fatal(err)
	}
	m := New(testInOrder(), img)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Spawns == 0 {
		t.Fatal("no speculative threads ran")
	}
	if res.SpecStores == 0 {
		t.Fatal("speculative store not detected")
	}
	// Node payloads are untouched: sum still correct.
	if got := m.Mem.Load(0x2000); got != 100*99/2 {
		t.Fatalf("speculative store altered state: sum=%d", got)
	}
}

func TestRunawaySpecThreadKilled(t *testing.T) {
	p := chaseProgram(50, true)
	f := p.FuncByName("main")
	sl := f.BlockByLabel("slice1")
	// Make the slice spin forever: branch to itself instead of kill.
	for _, in := range sl.Instrs {
		if in.Op == ir.OpKill {
			in.Op = ir.OpBr
			in.Target = "slice1"
		}
	}
	cfg := testInOrder()
	cfg.MaxSpecInstrs = 500
	res, err := RunProgram(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpecInstrs == 0 {
		t.Fatal("speculative thread never ran")
	}
	if res.TimedOut {
		t.Fatal("runaway speculative thread hung the machine")
	}
}

func TestChkWithoutFreeContextIsNop(t *testing.T) {
	p := chaseProgram(50, true)
	cfg := testInOrder()
	cfg.Contexts = 1 // only the main thread
	res, err := RunProgram(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.ChkTaken != 0 || res.Spawns != 0 {
		t.Fatalf("chk/spawn fired with no free contexts: %+v", res)
	}
}

func TestSpawnsIgnoredWhenSaturated(t *testing.T) {
	res, err := RunProgram(testInOrder(), chaseProgram(2000, true))
	if err != nil {
		t.Fatal(err)
	}
	if res.SpawnsIgnored == 0 {
		t.Skip("no spawn saturation in this configuration")
	}
}

func TestProfileCounts(t *testing.T) {
	cfg := testInOrder()
	cfg.Profile = true
	p := chaseProgram(200, false)
	img, err := ir.Link(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(cfg, img).Run()
	if err != nil {
		t.Fatal(err)
	}
	loopStart := img.BlockStarts["main.loop"]
	if res.PCCount[loopStart] != 200 {
		t.Fatalf("loop head executed %d times, want 200", res.PCCount[loopStart])
	}
	if res.PCCount[img.Entry] != 1 {
		t.Fatalf("entry executed %d times", res.PCCount[img.Entry])
	}
}

func TestIndirectCallEdgeCapture(t *testing.T) {
	p := ir.NewProgram("main")
	tf := ir.NewFunc(p, "target")
	tb := tf.Block("entry")
	tb.MovI(ir.RegRet, 99)
	tb.Ret(0)
	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.MovBRFunc(2, "target")
	call := e.CallB(0, 2)
	e.MovI(22, 0x3000)
	e.St(22, 0, ir.RegRet)
	e.Halt()
	cfg := testInOrder()
	cfg.Profile = true
	img, err := ir.Link(p)
	if err != nil {
		t.Fatal(err)
	}
	m := New(cfg, img)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	edges := res.CallEdges[call.ID]
	if edges == nil || edges[img.FuncEntries["target"]] != 1 {
		t.Fatalf("call edges = %v", res.CallEdges)
	}
	if m.Mem.Load(0x3000) != 99 {
		t.Fatal("indirect call did not execute")
	}
}

func TestCallsAndReturnsAcrossEngines(t *testing.T) {
	// sum = f(3) + f(4) where f(x) = x*x, with b0 spilled around the call.
	p := ir.NewProgram("main")
	ff := ir.NewFunc(p, "f")
	ff.F.NumFormals = 1
	fe := ff.Block("entry")
	fe.Mul(ir.RegRet, ir.RegArg0, ir.RegArg0)
	fe.Ret(0)
	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.MovI(ir.RegArg0, 3)
	e.Call("f")
	e.Mov(20, ir.RegRet)
	e.MovI(ir.RegArg0, 4)
	e.Call("f")
	e.Add(20, 20, ir.RegRet)
	e.MovI(22, 0x4000)
	e.St(22, 0, 20)
	e.Halt()
	for _, cfg := range []Config{testInOrder(), testOOO()} {
		img, err := ir.Link(p)
		if err != nil {
			t.Fatal(err)
		}
		m := New(cfg, img)
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if got := m.Mem.Load(0x4000); got != 25 {
			t.Fatalf("%v: result = %d, want 25", cfg.Model, got)
		}
	}
}

// TestQuickDifferentialEngines: property — random straight-line programs
// produce identical architectural state on the interpreter, the in-order
// engine, and the OOO engine.
func TestQuickDifferentialEngines(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := ir.NewProgram("main")
		fb := ir.NewFunc(p, "main")
		e := fb.Block("entry")
		for i := 0; i < 40; i++ {
			rd := ir.Reg(14 + r.Intn(16))
			ra := ir.Reg(14 + r.Intn(16))
			rb := ir.Reg(14 + r.Intn(16))
			switch r.Intn(8) {
			case 0:
				e.MovI(rd, int64(r.Intn(1<<30)))
			case 1:
				e.Add(rd, ra, rb)
			case 2:
				e.Sub(rd, ra, rb)
			case 3:
				e.Mul(rd, ra, rb)
			case 4:
				e.XorI(rd, ra, int64(r.Intn(1<<16)))
			case 5:
				e.MovI(30, int64(0x100000+8*r.Intn(64)))
				e.St(30, 0, ra)
			case 6:
				e.MovI(30, int64(0x100000+8*r.Intn(64)))
				e.Ld(rd, 30, 0)
			case 7:
				e.CmpI(ir.CondLT, 6, 7, ra, int64(r.Intn(100)))
				e.On(6).AddI(rd, ra, 1)
			}
		}
		e.Halt()
		img, err := ir.Link(p)
		if err != nil {
			t.Log(err)
			return false
		}
		ref, err := Interpret(testInOrder(), img, 10_000)
		if err != nil {
			t.Log(err)
			return false
		}
		for _, cfg := range []Config{testInOrder(), testOOO()} {
			m := New(cfg, img)
			if _, err := m.Run(); err != nil {
				t.Log(err)
				return false
			}
			for reg := 14; reg < 31; reg++ {
				if m.main().Regs[reg] != ref.Regs[reg] {
					t.Logf("seed %d %v: r%d = %d, want %d", seed, cfg.Model, reg, m.main().Regs[reg], ref.Regs[reg])
					return false
				}
			}
			for a := uint64(0x100000); a < 0x100000+8*64; a += 8 {
				if m.Mem.Load(a) != ref.Mem.Load(a) {
					t.Logf("seed %d %v: mem[%#x] mismatch", seed, cfg.Model, a)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTracerCapturesInterleaving(t *testing.T) {
	var buf strings.Builder
	p := chaseProgram(120, true)
	img, err := ir.Link(p)
	if err != nil {
		t.Fatal(err)
	}
	m := New(testInOrder(), img)
	m.Attach(&Tracer{W: &buf, MaxLines: 50_000})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "main") || !strings.Contains(out, "spec") {
		t.Fatal("trace lacks main/speculative interleaving")
	}
	if !strings.Contains(out, "lfetch") || !strings.Contains(out, "chk.c") {
		t.Fatal("trace lacks SSP instructions")
	}
}

func TestTracerRespectsBudget(t *testing.T) {
	var buf strings.Builder
	p := chaseProgram(200, false)
	img, _ := ir.Link(p)
	m := New(testInOrder(), img)
	m.Attach(&Tracer{W: &buf, MaxLines: 10})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != 10 {
		t.Fatalf("trace emitted %d lines, budget 10", n)
	}
}

func TestFPSemanticsAcrossEngines(t *testing.T) {
	// An FP kernel mixing fma, cross-file moves, predicated control on
	// fcmp, and FP memory traffic: both engines must match the
	// interpreter bit-for-bit.
	p := ir.NewProgram("main")
	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.MovI(14, 0x100000)
	e.MovI(15, 0)
	e.SetF(10, ir.RegZero) // acc = 0.0
	// Seed memory with float bit patterns.
	for i := 0; i < 64; i++ {
		p.SetWord(0x100000+uint64(i)*8, uint64(0x3ff0000000000000)+uint64(i)<<40)
	}
	loop := fb.Block("loop")
	loop.FLd(3, 14, 0)
	loop.FMA(10, 3, 1, 10) // acc += x (via fma x*1.0+acc)
	loop.FMul(4, 3, 3)
	loop.FCmp(ir.CondGT, 8, 9, 4, 10)
	loop.On(8).AddI(16, 16, 1)
	loop.FSt(14, 512, 4)
	loop.AddI(14, 14, 8)
	loop.AddI(15, 15, 1)
	loop.CmpI(ir.CondLT, 6, 7, 15, 64)
	loop.On(6).Br("loop")
	d := fb.Block("done")
	d.GetF(20, 10)
	d.MovI(22, 0x2000)
	d.St(22, 0, 20)
	d.St(22, 8, 16)
	d.Halt()

	img, err := ir.Link(p)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Interpret(testInOrder(), img, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{testInOrder(), testOOO()} {
		m := New(cfg, img)
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		for a := uint64(0x2000); a <= 0x2008; a += 8 {
			if m.Mem.Load(a) != ref.Mem.Load(a) {
				t.Fatalf("%v: mem[%#x] = %#x, want %#x", cfg.Model, a, m.Mem.Load(a), ref.Mem.Load(a))
			}
		}
	}
}

func TestFPUnitsAreAStructuralResource(t *testing.T) {
	// Eight independent FP adds per iteration vs eight independent int
	// adds: with only 2 FP units vs 4 int units, the FP loop needs more
	// cycles on the in-order model.
	build := func(fp bool) *ir.Program {
		p := ir.NewProgram("main")
		fb := ir.NewFunc(p, "main")
		e := fb.Block("entry")
		e.MovI(15, 0)
		loop := fb.Block("loop")
		for i := 0; i < 8; i++ {
			if fp {
				loop.FAdd(ir.FR(10+i), ir.FR(10+i), 1)
			} else {
				loop.AddI(ir.Reg(40+i), ir.Reg(40+i), 1)
			}
		}
		loop.AddI(15, 15, 1)
		loop.CmpI(ir.CondLT, 6, 7, 15, 2000)
		loop.On(6).Br("loop")
		fb.Block("done").Halt()
		return p
	}
	fpRes, err := RunProgram(testInOrder(), build(true))
	if err != nil {
		t.Fatal(err)
	}
	intRes, err := RunProgram(testInOrder(), build(false))
	if err != nil {
		t.Fatal(err)
	}
	if fpRes.Cycles <= intRes.Cycles {
		t.Fatalf("FP loop (%d cycles) not limited by its 2 units vs int loop (%d)",
			fpRes.Cycles, intRes.Cycles)
	}
}

func TestSpecUtilizationHistogram(t *testing.T) {
	res, err := RunProgram(testInOrder(), chaseProgram(800, true))
	if err != nil {
		t.Fatal(err)
	}
	var total, busy int64
	for k, c := range res.SpecActiveHist {
		total += c
		if k > 0 {
			busy += c
		}
	}
	if total != res.Cycles {
		t.Fatalf("histogram covers %d cycles of %d", total, res.Cycles)
	}
	if busy == 0 {
		t.Fatal("SSP run shows no speculative-context utilization")
	}
	base, err := RunProgram(testInOrder(), chaseProgram(800, false))
	if err != nil {
		t.Fatal(err)
	}
	for k, c := range base.SpecActiveHist {
		if k > 0 && c > 0 {
			t.Fatalf("baseline run claims %d cycles with %d spec threads", c, k)
		}
	}
}

func TestLIBSlotMaskingAndSnapshot(t *testing.T) {
	// The live-in buffer is a snapshot at spawn time: parent writes after
	// the spawn must not leak into the child ("eliminating the
	// possibility of inter-thread hazards where a register may be
	// overwritten before a child thread has read it", §2.1). Slot indices
	// wrap at the buffer size.
	p := ir.NewProgram("main")
	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.MovI(14, 111)
	e.Liw(0, 14)
	e.MovI(15, 222)
	e.Liw(16, 15) // slot 16 wraps to slot 0 (libSlots = 16): overwrites
	e.MovI(14, 333)
	e.Liw(1, 14)
	e.Chk("stub")
	e.MovI(16, 999)
	e.Liw(0, 16) // after the spawn: child must not see 999
	spin := fb.Block("spin")
	spin.AddI(20, 20, 1)
	spin.CmpI(ir.CondLT, 6, 7, 20, 2000)
	spin.On(6).Br("spin")
	done := fb.Block("done")
	done.Halt()
	stub := fb.Block("stub")
	stub.Spawn("slice")
	slice := fb.Block("slice")
	slice.Lir(40, 0) // expect 222 (slot 16 wrapped over the 111)
	slice.Lir(41, 1) // expect 333
	slice.MovI(42, 0x5000)
	// Speculative stores are suppressed, so report via... nothing; instead
	// spin long enough to stay alive and let the test read registers? The
	// machine isn't exposed per-thread, so encode the check in control
	// flow: kill quickly if values are right, loop forever (runaway kill)
	// otherwise.
	slice.CmpI(ir.CondEQ, 8, 9, 40, 222)
	slice.On(9).Br("slice_bad")
	s2 := fb.Block("slice2")
	s2.CmpI(ir.CondEQ, 10, 11, 41, 333)
	s2.On(11).Br("slice_bad")
	s3 := fb.Block("slice_ok")
	s3.Kill()
	bad := fb.Block("slice_bad")
	bad.AddI(43, 43, 1)
	bad.Br("slice_bad")
	cfg := testInOrder()
	cfg.MaxSpecInstrs = 100_000
	res, err := RunProgram(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spawns != 1 {
		t.Fatalf("spawns = %d", res.Spawns)
	}
	// The good path kills after ~8 instructions; the bad path burns until
	// the runaway guard.
	if res.SpecInstrs > 100 {
		t.Fatalf("slice saw wrong live-ins (ran %d speculative instructions)", res.SpecInstrs)
	}
}

func TestChkResumesAfterStub(t *testing.T) {
	// After the stub's spawn, the main thread resumes at the instruction
	// after chk.c — not at the stub's fallthrough (Figure 7).
	p := ir.NewProgram("main")
	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.MovI(14, 1)
	e.Chk("stub")
	e.AddI(14, 14, 10) // must execute exactly once
	e.MovI(22, 0x2000)
	e.St(22, 0, 14)
	e.Halt()
	stub := fb.Block("stub")
	stub.AddI(14, 14, 100) // stub runs on the main thread
	stub.Liw(0, 14)
	stub.Spawn("slice")
	slice := fb.Block("slice")
	slice.Kill()
	img, err := ir.Link(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{testInOrder(), testOOO()} {
		m := New(cfg, img)
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if got := m.Mem.Load(0x2000); got != 111 {
			t.Fatalf("%v: result = %d, want 111 (chk resume broken)", cfg.Model, got)
		}
	}
}

func TestNullifiedBranchTrainsNotTaken(t *testing.T) {
	// A conditional branch whose predicate is false must train the
	// predictor as not-taken and never redirect.
	p := ir.NewProgram("main")
	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.MovI(14, 0)
	loop := fb.Block("loop")
	loop.CmpI(ir.CondEQ, 6, 7, 14, -1) // always false
	loop.On(6).Br("trap")
	loop.AddI(14, 14, 1)
	loop.CmpI(ir.CondLT, 8, 9, 14, 3000)
	loop.On(8).Br("loop")
	d := fb.Block("done")
	d.MovI(22, 0x2000)
	d.St(22, 0, 14)
	d.Halt()
	trap := fb.Block("trap")
	trap.MovI(22, 0x2000)
	trap.MovI(23, 0xdead)
	trap.St(22, 0, 23)
	trap.Halt()
	img, err := ir.Link(p)
	if err != nil {
		t.Fatal(err)
	}
	m := New(testInOrder(), img)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Mem.Load(0x2000); got != 3000 {
		t.Fatalf("result = %#x, want 3000", got)
	}
	// The never-taken branch settles quickly; total mispredicts stay low.
	if res.Mispredicts > 100 {
		t.Fatalf("%d mispredicts on a trivially biased pattern", res.Mispredicts)
	}
}

func TestMemPortsLimitThroughput(t *testing.T) {
	// Six independent L1-resident loads per iteration vs six independent
	// int adds: with 2 memory ports vs 4 int units the load loop needs
	// more cycles even though everything hits the cache.
	build := func(loads bool) *ir.Program {
		p := ir.NewProgram("main")
		for i := 0; i < 8; i++ {
			p.SetWord(0x1000+uint64(i)*8, uint64(i))
		}
		fb := ir.NewFunc(p, "main")
		e := fb.Block("entry")
		e.MovI(14, 0x1000)
		e.MovI(15, 0)
		loop := fb.Block("loop")
		for i := 0; i < 6; i++ {
			if loads {
				loop.Ld(ir.Reg(20+i), 14, int64(i)*8)
			} else {
				loop.AddI(ir.Reg(20+i), ir.Reg(20+i), 1)
			}
		}
		loop.AddI(15, 15, 1)
		loop.CmpI(ir.CondLT, 6, 7, 15, 3000)
		loop.On(6).Br("loop")
		fb.Block("done").Halt()
		return p
	}
	ld, err := RunProgram(testInOrder(), build(true))
	if err != nil {
		t.Fatal(err)
	}
	alu, err := RunProgram(testInOrder(), build(false))
	if err != nil {
		t.Fatal(err)
	}
	if ld.Cycles <= alu.Cycles {
		t.Fatalf("load loop (%d cycles) not port-limited vs ALU loop (%d)", ld.Cycles, alu.Cycles)
	}
}

func TestContextCountScaling(t *testing.T) {
	// More speculative contexts means more chaining overlap: 2 contexts
	// (1 speculative) must not beat 4 contexts on the chaining workload.
	p := chaseProgram(1500, true)
	two := testInOrder()
	two.Contexts = 2
	four := testInOrder()
	r2, err := RunProgram(two, p)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := RunProgram(four, p)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Cycles > r2.Cycles*105/100 {
		t.Fatalf("4 contexts (%d cycles) slower than 2 (%d)", r4.Cycles, r2.Cycles)
	}
	// Eight contexts keep working correctly too.
	eight := testInOrder()
	eight.Contexts = 8
	img, _ := ir.Link(p)
	m := New(eight, img)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Mem.Load(0x2000); got != 1500*1499/2 {
		t.Fatalf("8-context checksum = %d", got)
	}
}

// TestRunProgramWatchdogContract: on watchdog expiry RunProgram must return
// BOTH a non-nil partial Result and an error, so callers (cmd/simrun) can
// report the statistics collected so far alongside the failure.
func TestRunProgramWatchdogContract(t *testing.T) {
	for _, base := range []Config{testInOrder(), testOOO()} {
		cfg := base
		cfg.MaxCycles = 50
		res, err := RunProgram(cfg, chaseProgram(64, false))
		if err == nil {
			t.Fatalf("%v: no error on watchdog expiry", cfg.Model)
		}
		if res == nil {
			t.Fatalf("%v: nil result on watchdog expiry", cfg.Model)
		}
		if !res.TimedOut {
			t.Fatalf("%v: TimedOut not set", cfg.Model)
		}
		if res.Cycles != 50 {
			t.Fatalf("%v: partial result reports %d cycles, want 50", cfg.Model, res.Cycles)
		}
	}
}

// TestRunProgramMainKillContract: thread_kill_self on the main thread ends
// the run with MainKilled set and an error (instead of spinning until the
// watchdog on the in-order model, or silently halting on the OOO model —
// the cross-engine divergence the differential layer flushed out).
func TestRunProgramMainKillContract(t *testing.T) {
	p := ir.NewProgram("main")
	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.MovI(16, 1)
	e.Kill()
	for _, cfg := range []Config{testInOrder(), testOOO()} {
		res, err := RunProgram(cfg, p)
		if err == nil {
			t.Fatalf("%v: no error on main-thread kill", cfg.Model)
		}
		if res == nil || !res.MainKilled {
			t.Fatalf("%v: MainKilled not reported", cfg.Model)
		}
		if res.TimedOut {
			t.Fatalf("%v: run spun until the watchdog", cfg.Model)
		}
	}
}
