package sim

import (
	"ssp/internal/ir"
	"ssp/internal/sim/mem"
)

// Category classifies each main-thread cycle for the Figure 10 breakdown.
type Category uint8

const (
	// CatL3 counts cycles stalled (no issue) on loads that missed the L3
	// cache and went to memory.
	CatL3 Category = iota
	// CatL2 counts no-issue cycles on loads that missed L2 and hit L3.
	CatL2
	// CatL1 counts no-issue cycles on loads that missed L1 and hit L2.
	CatL1
	// CatCacheExec counts cycles where issue happened while misses were
	// outstanding.
	CatCacheExec
	// CatExec counts pure execution cycles.
	CatExec
	// CatOther counts remaining bubbles (branch mispredictions, spawn
	// flushes, structural stalls).
	CatOther
	// NumCategories is the category count.
	NumCategories
)

func (c Category) String() string {
	switch c {
	case CatL3:
		return "L3"
	case CatL2:
		return "L2"
	case CatL1:
		return "L1"
	case CatCacheExec:
		return "Cache+Exec"
	case CatExec:
		return "Exec"
	case CatOther:
		return "Other"
	}
	return "?"
}

// Result reports one simulation run.
type Result struct {
	Cycles     int64
	MainInstrs int64
	SpecInstrs int64

	// Breakdown partitions the main thread's cycles (Figure 10).
	Breakdown [NumCategories]int64

	Spawns        int64 // speculative threads started
	SpawnsIgnored int64 // spawn requests dropped for lack of a context
	ChkTaken      int64 // chk.c exceptions taken by the main thread
	Mispredicts   int64
	SpecStores    int64 // suppressed store attempts by speculative threads
	TimedOut      bool
	// MainKilled reports that the main thread executed thread_kill_self,
	// which only speculative threads may do (§2.1); the run ends but its
	// architectural state is unreliable. RunProgram turns this into an
	// error, and check.Differential treats it as a violation.
	MainKilled bool

	// FinalRegs snapshots the main thread's register file at the end of the
	// run and MemChecksum digests memory contents (mem.Memory.Checksum);
	// together they are the architectural state compared by the
	// cross-engine and metamorphic layers of internal/check.
	FinalRegs   [ir.NumRegs]uint64
	MemChecksum uint64

	// Hier exposes the memory-system statistics of the run (per-load
	// level/partial counts for Figure 9, miss cycles for profiling).
	Hier *mem.Hierarchy

	// SpecActiveHist[k] counts cycles during which exactly k speculative
	// threads were active — the context-utilization profile of the run
	// (how much of the SMT machine SSP actually uses).
	SpecActiveHist []int64

	// FastForwards counts stall jumps taken by the fast-forward timing
	// core and FastForwardedCycles the cycles those jumps skipped (cycles
	// credited to the breakdown in bulk instead of being simulated one at
	// a time). Both are zero when Config.FastForward is off. They describe
	// the host-side execution strategy, not the simulated machine, so the
	// equivalence gates in internal/check deliberately exclude them.
	FastForwards        int64
	FastForwardedCycles int64

	// PCCount is per-PC main-thread execution counts when profiling.
	PCCount []uint64
	// CallEdges maps an indirect call instruction ID to the entry PCs it
	// reached with counts (the dynamic call graph capture of §3.1.2).
	CallEdges map[int]map[int]uint64
}

// IPC returns main-thread instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.MainInstrs) / float64(r.Cycles)
}
