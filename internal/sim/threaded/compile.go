package threaded

import (
	"math"

	"ssp/internal/cfg"
	"ssp/internal/ir"
	"ssp/internal/sim/decode"
)

// fuseWidth bounds how many constituent instructions one superinstruction
// fuses. Eight covers every latch/body idiom the adapter emits while keeping
// the interpreter's instruction-ceiling check within one bundle of the
// table-dispatch boundary (the check can only fire between nodes; no node
// contains a halt, so the halt-vs-limit outcome is still exact).
const fuseWidth = 8

// Compile lowers a predecoded image into its closure-threaded form: blocks
// recovered by cfg.ImageBlocks, one specialized closure per instruction,
// straight-line runs fused into superinstructions, and exits resolved to
// successor block indexes. The result is immutable and goroutine-safe.
func Compile(dp *decode.Program) *Program {
	n := len(dp.Code)
	blocks, blockOf := cfg.ImageBlocks(dp.Img)
	p := &Program{
		BlockOf:    blockOf,
		BlockStart: make([]bool, n),
		Steps:      make([]Step, n),
		Info:       make([]StepInfo, n),
		NInstrs:    n,
	}
	for _, b := range blocks {
		if b.Start < n {
			p.BlockStart[b.Start] = true
		}
	}
	// Per-PC pure steps for the cycle engines: specialized architectural
	// execution for instructions with no memory, control, or machine-level
	// effect. Valid even when the chains are not.
	for pc := range dp.Code {
		d := &dp.Code[pc]
		si := &p.Info[pc]
		if len(d.Uses) > len(si.Uses) || len(d.Defs) > len(si.Defs) {
			continue // cannot describe the operands compactly: no step
		}
		if s, pure, ok := stepFor(d); ok && pure {
			s = guard(d.Qp, s)
			if s == nil {
				s = nopStep // effect-free either way: nop, hardwired sink
			}
			p.Steps[pc] = s
			p.NSteps++
			si.NU = uint8(copy(si.Uses[:], d.Uses))
			si.ND = uint8(copy(si.Defs[:], d.Defs))
			si.FU = d.FU
			si.Lat = d.Lat
		}
	}
	p.Blocks = make([]Block, 0, len(blocks))
	for _, ib := range blocks {
		blk, ok := p.compileBlock(dp, ib)
		if !ok {
			p.Unthreadable = true
			p.Blocks = nil
			return p
		}
		p.Blocks = append(p.Blocks, blk)
	}
	return p
}

// nopStep is the shared closure for instructions with no architectural
// effect; a non-nil entry keeps the engines' step fast path on them.
func nopStep(*Ctx) {}

// guard wraps a step with its qualifying predicate, specialized away for the
// always-true p0 and for effect-free steps.
func guard(qp ir.PR, s Step) Step {
	if s == nil || qp == ir.PTrue {
		return s
	}
	return func(x *Ctx) {
		if x.Preds[qp] {
			s(x)
		}
	}
}

// fuse composes non-nil steps into one superinstruction closure, unrolled
// for short runs and tree-composed for longer ones.
func fuse(ss []Step) Step {
	switch len(ss) {
	case 0:
		return nil
	case 1:
		return ss[0]
	case 2:
		a, b := ss[0], ss[1]
		return func(x *Ctx) { a(x); b(x) }
	case 3:
		a, b, c := ss[0], ss[1], ss[2]
		return func(x *Ctx) { a(x); b(x); c(x) }
	case 4:
		a, b, c, d := ss[0], ss[1], ss[2], ss[3]
		return func(x *Ctx) { a(x); b(x); c(x); d(x) }
	default:
		h := len(ss) / 2
		a, b := fuse(ss[:h]), fuse(ss[h:])
		return func(x *Ctx) { a(x); b(x) }
	}
}

// compileBlock builds one block's body chain and exit closure.
func (p *Program) compileBlock(dp *decode.Program, ib cfg.ImageBlock) (Block, bool) {
	n := len(dp.Code)
	blk := Block{Start: int32(ib.Start), End: int32(ib.End)}
	term := &dp.Code[ib.End-1]
	hasTerm := isControl(term.H)
	bodyEnd := ib.End
	if hasTerm {
		bodyEnd--
	}
	// Peephole: fuse a trailing unpredicated cmp feeding a conditional br
	// into the exit itself (the addI+cmp+br latch idiom) — the exit writes
	// both predicates and branches directly, one closure for two
	// instructions.
	fuseCmp := false
	if hasTerm && term.H == decode.HBr && term.Qp != ir.PTrue && bodyEnd > ib.Start {
		c := &dp.Code[bodyEnd-1]
		if (c.H == decode.HCmp || c.H == decode.HCmpI) && c.Qp == ir.PTrue &&
			(c.Pd1 == term.Qp || c.Pd2 == term.Qp) {
			fuseCmp = true
			bodyEnd--
		}
	}
	// Body chain: one specialized closure per instruction, chunked into
	// superinstructions of at most fuseWidth constituents. Effect-free
	// constituents (nops, hardwired sinks) contribute to a node's count but
	// not its closure.
	start := ib.Start
	var chunk []Step
	flush := func(end int) {
		if end == start {
			return
		}
		run := fuse(chunk)
		blk.body = append(blk.body, node{run: run, n: int32(end - start), pc: int32(start)})
		if end-start >= 2 && run != nil {
			p.Supers++
			p.Fused += end - start
		}
		chunk = nil
		start = end
	}
	for pc := ib.Start; pc < bodyEnd; pc++ {
		d := &dp.Code[pc]
		s, _, ok := stepFor(d)
		if !ok {
			return blk, false // control transfer mid-block: not threadable
		}
		if s = guard(d.Qp, s); s != nil {
			chunk = append(chunk, s)
		}
		switch d.H {
		case decode.HLd, decode.HLdPI, decode.HFLd:
			blk.LoadPCs = append(blk.LoadPCs, int32(pc))
			blk.LoadIDs = append(blk.LoadIDs, d.ID)
		}
		if pc+1-start == fuseWidth {
			flush(pc + 1)
		}
	}
	flush(bodyEnd)
	blk.NBody = int32(bodyEnd - ib.Start)
	// Exit closure.
	fallIdx := ecOff
	if ib.End < n {
		fallIdx = p.BlockOf[ib.End]
	}
	tgtOK := term.Tgt >= 0 && int(term.Tgt) < n && p.BlockStart[term.Tgt]
	blk.exitPC = int32(ib.End - 1)
	blk.exitN = 1
	if !hasTerm {
		blk.exitN = 0
		f := fallIdx
		blk.exit = func(*Ctx) int32 { return f }
		return blk, true
	}
	qp := term.Qp
	switch term.H {
	case decode.HBr:
		if !tgtOK {
			return blk, false
		}
		tgt := p.BlockOf[term.Tgt]
		switch {
		case qp == ir.PTrue:
			blk.exit = func(*Ctx) int32 { return tgt }
		case fuseCmp:
			blk.exitN = 2
			blk.exit = fusedCmpBr(&dp.Code[bodyEnd], qp, tgt, fallIdx)
		default:
			f := fallIdx
			blk.exit = func(x *Ctx) int32 {
				if x.Preds[qp] {
					return tgt
				}
				return f
			}
		}
	case decode.HCall:
		if !tgtOK {
			return blk, false
		}
		tgt := p.BlockOf[term.Tgt]
		bd, ret := term.Bd, uint64(ib.End)
		blk.exit = guardExit(qp, fallIdx, func(x *Ctx) int32 {
			x.BRs[bd] = ret
			return tgt
		})
	case decode.HCallB:
		bs, bd, ret := term.Bs, term.Bd, uint64(ib.End)
		blk.exit = guardExit(qp, fallIdx, func(x *Ctx) int32 {
			tgt := x.BRs[bs]
			x.BRs[bd] = ret
			x.Dyn = tgt
			return ecDyn
		})
	case decode.HRet:
		bs := term.Bs
		blk.exit = guardExit(qp, fallIdx, func(x *Ctx) int32 {
			x.Dyn = x.BRs[bs]
			return ecDyn
		})
	case decode.HChk, decode.HSpawn:
		// Chains model the interpreter's no-speculation semantics: chk.c
		// never raises its exception and spawn binds nothing, so both fall
		// through — nullified or not.
		f := fallIdx
		blk.exit = func(*Ctx) int32 { return f }
	case decode.HKill:
		pc := int32(ib.End - 1)
		blk.exit = guardExit(qp, fallIdx, func(x *Ctx) int32 {
			x.TrapPC = pc
			return ecKill
		})
	case decode.HHalt:
		blk.exit = guardExit(qp, fallIdx, func(*Ctx) int32 { return ecHalt })
	default:
		return blk, false
	}
	return blk, true
}

// guardExit wraps an exit closure with its qualifying predicate: a nullified
// terminator falls through.
func guardExit(qp ir.PR, fall int32, core func(x *Ctx) int32) func(x *Ctx) int32 {
	if qp == ir.PTrue {
		return core
	}
	return func(x *Ctx) int32 {
		if x.Preds[qp] {
			return core(x)
		}
		return fall
	}
}

// fusedCmpBr builds the fused cmp+br exit: evaluate the comparison, write
// both architectural predicates, and branch on the one qualifying the br —
// negated when the br reads the complement output.
func fusedCmpBr(c *decode.Decoded, qp ir.PR, tgt, fall int32) func(x *Ctx) int32 {
	cond, ra := c.Cond, c.Ra
	pd1, pd2 := c.Pd1, c.Pd2
	// Taken sense: the br reads Preds[qp] after the cmp writes pd1 = r and
	// pd2 = !r (in that order, so pd2 wins if they alias).
	neg := qp == pd2
	if c.H == decode.HCmpI {
		imm := uint64(c.Imm)
		return func(x *Ctx) int32 {
			r := cmpResult(cond, x.Regs[ra], imm)
			if pd1 != ir.PTrue {
				x.Preds[pd1] = r
			}
			if pd2 != ir.PTrue {
				x.Preds[pd2] = !r
			}
			if r != neg {
				return tgt
			}
			return fall
		}
	}
	rb := c.Rb
	return func(x *Ctx) int32 {
		r := cmpResult(cond, x.Regs[ra], x.Regs[rb])
		if pd1 != ir.PTrue {
			x.Preds[pd1] = r
		}
		if pd2 != ir.PTrue {
			x.Preds[pd2] = !r
		}
		if r != neg {
			return tgt
		}
		return fall
	}
}

// isControl reports whether a handler transfers (or publishes) control and
// therefore terminates a chain block.
func isControl(h decode.Handler) bool {
	switch h {
	case decode.HBr, decode.HCall, decode.HCallB, decode.HRet, decode.HChk,
		decode.HSpawn, decode.HKill, decode.HHalt:
		return true
	}
	return false
}

// cmpResult evaluates an integer comparison (mirrors the table handlers).
func cmpResult(cond ir.Cond, a, b uint64) bool {
	switch cond {
	case ir.CondEQ:
		return a == b
	case ir.CondNE:
		return a != b
	case ir.CondLT:
		return int64(a) < int64(b)
	case ir.CondLE:
		return int64(a) <= int64(b)
	case ir.CondGT:
		return int64(a) > int64(b)
	case ir.CondGE:
		return int64(a) >= int64(b)
	case ir.CondLTU:
		return a < b
	case ir.CondGEU:
		return a >= b
	}
	return false
}

// frRead specializes an FP register read on the hardwired f0/f1.
func frRead(f ir.FR) func(x *Ctx) float64 {
	switch f {
	case ir.FZero:
		return func(*Ctx) float64 { return 0 }
	case ir.FOne:
		return func(*Ctx) float64 { return 1 }
	}
	return func(x *Ctx) float64 { return x.FRegs[f] }
}

// frWritable reports whether fd is a real (non-hardwired) FP destination.
func frWritable(f ir.FR) bool { return f != ir.FZero && f != ir.FOne }

// stepFor builds the unpredicated specialized closure for one instruction.
// It returns the closure (nil when the instruction has no architectural
// effect), whether the instruction is pure — no memory, control, or
// machine-level effect, so the cycle engines may execute the closure under
// their own timing — and whether a body closure exists at all (false for
// control transfers, which compile to block exits instead).
func stepFor(d *decode.Decoded) (s Step, pure bool, ok bool) {
	rd, ra, rb := d.Rd, d.Ra, d.Rb
	imm := uint64(d.Imm)
	switch d.H {
	case decode.HNop:
		return nil, true, true
	case decode.HAdd:
		if rd == ir.RegZero {
			return nil, true, true
		}
		return func(x *Ctx) { x.Regs[rd] = x.Regs[ra] + x.Regs[rb] }, true, true
	case decode.HAddI:
		if rd == ir.RegZero {
			return nil, true, true
		}
		return func(x *Ctx) { x.Regs[rd] = x.Regs[ra] + imm }, true, true
	case decode.HSub:
		if rd == ir.RegZero {
			return nil, true, true
		}
		return func(x *Ctx) { x.Regs[rd] = x.Regs[ra] - x.Regs[rb] }, true, true
	case decode.HSubI:
		if rd == ir.RegZero {
			return nil, true, true
		}
		return func(x *Ctx) { x.Regs[rd] = x.Regs[ra] - imm }, true, true
	case decode.HMul:
		if rd == ir.RegZero {
			return nil, true, true
		}
		return func(x *Ctx) { x.Regs[rd] = x.Regs[ra] * x.Regs[rb] }, true, true
	case decode.HMulI:
		if rd == ir.RegZero {
			return nil, true, true
		}
		return func(x *Ctx) { x.Regs[rd] = x.Regs[ra] * imm }, true, true
	case decode.HAnd:
		if rd == ir.RegZero {
			return nil, true, true
		}
		return func(x *Ctx) { x.Regs[rd] = x.Regs[ra] & x.Regs[rb] }, true, true
	case decode.HAndI:
		if rd == ir.RegZero {
			return nil, true, true
		}
		return func(x *Ctx) { x.Regs[rd] = x.Regs[ra] & imm }, true, true
	case decode.HOr:
		if rd == ir.RegZero {
			return nil, true, true
		}
		return func(x *Ctx) { x.Regs[rd] = x.Regs[ra] | x.Regs[rb] }, true, true
	case decode.HOrI:
		if rd == ir.RegZero {
			return nil, true, true
		}
		return func(x *Ctx) { x.Regs[rd] = x.Regs[ra] | imm }, true, true
	case decode.HXor:
		if rd == ir.RegZero {
			return nil, true, true
		}
		return func(x *Ctx) { x.Regs[rd] = x.Regs[ra] ^ x.Regs[rb] }, true, true
	case decode.HXorI:
		if rd == ir.RegZero {
			return nil, true, true
		}
		return func(x *Ctx) { x.Regs[rd] = x.Regs[ra] ^ imm }, true, true
	case decode.HShl:
		if rd == ir.RegZero {
			return nil, true, true
		}
		return func(x *Ctx) { x.Regs[rd] = x.Regs[ra] << (x.Regs[rb] & 63) }, true, true
	case decode.HShlI:
		if rd == ir.RegZero {
			return nil, true, true
		}
		sh := imm & 63
		return func(x *Ctx) { x.Regs[rd] = x.Regs[ra] << sh }, true, true
	case decode.HShr:
		if rd == ir.RegZero {
			return nil, true, true
		}
		return func(x *Ctx) { x.Regs[rd] = x.Regs[ra] >> (x.Regs[rb] & 63) }, true, true
	case decode.HShrI:
		if rd == ir.RegZero {
			return nil, true, true
		}
		sh := imm & 63
		return func(x *Ctx) { x.Regs[rd] = x.Regs[ra] >> sh }, true, true
	case decode.HMov:
		if rd == ir.RegZero {
			return nil, true, true
		}
		return func(x *Ctx) { x.Regs[rd] = x.Regs[ra] }, true, true
	case decode.HMovI:
		if rd == ir.RegZero {
			return nil, true, true
		}
		return func(x *Ctx) { x.Regs[rd] = imm }, true, true
	case decode.HCmp, decode.HCmpI:
		return cmpStep(d), true, true
	case decode.HMovBR:
		bd := d.Bd
		return func(x *Ctx) { x.BRs[bd] = x.Regs[ra] }, true, true
	case decode.HMovBRFunc:
		bd, tgt := d.Bd, uint64(d.Tgt)
		return func(x *Ctx) { x.BRs[bd] = tgt }, true, true
	case decode.HMovFromBR:
		if rd == ir.RegZero {
			return nil, true, true
		}
		bs := d.Bs
		return func(x *Ctx) { x.Regs[rd] = x.BRs[bs] }, true, true
	case decode.HLiw:
		slot := int(d.Imm) // pre-masked at decode
		return func(x *Ctx) { x.OutLIB[slot] = x.Regs[ra] }, true, true
	case decode.HLir:
		if rd == ir.RegZero {
			return nil, true, true
		}
		slot := int(d.Imm)
		return func(x *Ctx) { x.Regs[rd] = x.InLIB[slot] }, true, true
	case decode.HSetF:
		if !frWritable(d.Fd) {
			return nil, true, true
		}
		fd := d.Fd
		return func(x *Ctx) { x.FRegs[fd] = math.Float64frombits(x.Regs[ra]) }, true, true
	case decode.HGetF:
		if rd == ir.RegZero {
			return nil, true, true
		}
		fa := frRead(d.Fa)
		return func(x *Ctx) { x.Regs[rd] = math.Float64bits(fa(x)) }, true, true
	case decode.HFAdd:
		if !frWritable(d.Fd) {
			return nil, true, true
		}
		fd, fa, fb := d.Fd, frRead(d.Fa), frRead(d.Fb)
		return func(x *Ctx) { x.FRegs[fd] = fa(x) + fb(x) }, true, true
	case decode.HFSub:
		if !frWritable(d.Fd) {
			return nil, true, true
		}
		fd, fa, fb := d.Fd, frRead(d.Fa), frRead(d.Fb)
		return func(x *Ctx) { x.FRegs[fd] = fa(x) - fb(x) }, true, true
	case decode.HFMul:
		if !frWritable(d.Fd) {
			return nil, true, true
		}
		fd, fa, fb := d.Fd, frRead(d.Fa), frRead(d.Fb)
		return func(x *Ctx) { x.FRegs[fd] = fa(x) * fb(x) }, true, true
	case decode.HFMA:
		if !frWritable(d.Fd) {
			return nil, true, true
		}
		fd, fa, fb, fc := d.Fd, frRead(d.Fa), frRead(d.Fb), frRead(d.Fc)
		return func(x *Ctx) { x.FRegs[fd] = fa(x)*fb(x) + fc(x) }, true, true
	case decode.HFCmp:
		return fcmpStep(d), true, true

	// Memory instructions: chain-executable (the interpreter is main-only,
	// no-speculation, so stores are architectural), but not pure — the
	// engines keep them on the table path where the hierarchy timing lives.
	case decode.HLd:
		disp := uint64(d.Disp)
		if rd == ir.RegZero {
			return func(x *Ctx) { x.Mem.Load(x.Regs[ra] + disp) }, false, true
		}
		return func(x *Ctx) { x.Regs[rd] = x.Mem.Load(x.Regs[ra] + disp) }, false, true
	case decode.HLdPI:
		disp := uint64(d.Disp)
		stride := imm
		switch {
		case rd != ir.RegZero && ra != ir.RegZero:
			return func(x *Ctx) {
				x.Regs[rd] = x.Mem.Load(x.Regs[ra] + disp)
				x.Regs[ra] += stride
			}, false, true
		case rd != ir.RegZero:
			return func(x *Ctx) { x.Regs[rd] = x.Mem.Load(x.Regs[ra] + disp) }, false, true
		case ra != ir.RegZero:
			return func(x *Ctx) {
				x.Mem.Load(x.Regs[ra] + disp)
				x.Regs[ra] += stride
			}, false, true
		default:
			return func(x *Ctx) { x.Mem.Load(disp) }, false, true
		}
	case decode.HSt:
		disp := uint64(d.Disp)
		return func(x *Ctx) { x.Mem.Store(x.Regs[ra]+disp, x.Regs[rb]) }, false, true
	case decode.HLfetch:
		// No architectural effect without a cache model; the chain only
		// has to count it.
		return nil, false, true
	case decode.HFLd:
		disp := uint64(d.Disp)
		if !frWritable(d.Fd) {
			return func(x *Ctx) { x.Mem.Load(x.Regs[ra] + disp) }, false, true
		}
		fd := d.Fd
		return func(x *Ctx) {
			x.FRegs[fd] = math.Float64frombits(x.Mem.Load(x.Regs[ra] + disp))
		}, false, true
	case decode.HFSt:
		disp := uint64(d.Disp)
		fa := frRead(d.Fa)
		return func(x *Ctx) { x.Mem.Store(x.Regs[ra]+disp, math.Float64bits(fa(x))) }, false, true
	}
	return nil, false, false // control transfer: compiles to a block exit
}

// cmpStep specializes an integer compare on its addressing form and live
// predicate destinations.
func cmpStep(d *decode.Decoded) Step {
	cond, ra := d.Cond, d.Ra
	pd1, pd2 := d.Pd1, d.Pd2
	if pd1 == ir.PTrue && pd2 == ir.PTrue {
		return nil // both destinations hardwired: architecturally dead
	}
	if d.H == decode.HCmpI {
		imm := uint64(d.Imm)
		switch {
		case pd1 != ir.PTrue && pd2 != ir.PTrue:
			return func(x *Ctx) {
				r := cmpResult(cond, x.Regs[ra], imm)
				x.Preds[pd1] = r
				x.Preds[pd2] = !r
			}
		case pd1 != ir.PTrue:
			return func(x *Ctx) { x.Preds[pd1] = cmpResult(cond, x.Regs[ra], imm) }
		default:
			return func(x *Ctx) { x.Preds[pd2] = !cmpResult(cond, x.Regs[ra], imm) }
		}
	}
	rb := d.Rb
	switch {
	case pd1 != ir.PTrue && pd2 != ir.PTrue:
		return func(x *Ctx) {
			r := cmpResult(cond, x.Regs[ra], x.Regs[rb])
			x.Preds[pd1] = r
			x.Preds[pd2] = !r
		}
	case pd1 != ir.PTrue:
		return func(x *Ctx) { x.Preds[pd1] = cmpResult(cond, x.Regs[ra], x.Regs[rb]) }
	default:
		return func(x *Ctx) { x.Preds[pd2] = !cmpResult(cond, x.Regs[ra], x.Regs[rb]) }
	}
}

// fcmpStep specializes an FP compare (mirrors the table handler's relation
// semantics: LTU/GEU collapse onto their signed forms for floats).
func fcmpStep(d *decode.Decoded) Step {
	cond := d.Cond
	pd1, pd2 := d.Pd1, d.Pd2
	if pd1 == ir.PTrue && pd2 == ir.PTrue {
		return nil
	}
	fa, fb := frRead(d.Fa), frRead(d.Fb)
	return func(x *Ctx) {
		a, b := fa(x), fb(x)
		var r bool
		switch cond {
		case ir.CondEQ:
			r = a == b
		case ir.CondNE:
			r = a != b
		case ir.CondLT, ir.CondLTU:
			r = a < b
		case ir.CondLE:
			r = a <= b
		case ir.CondGT:
			r = a > b
		case ir.CondGE, ir.CondGEU:
			r = a >= b
		}
		if pd1 != ir.PTrue {
			x.Preds[pd1] = r
		}
		if pd2 != ir.PTrue {
			x.Preds[pd2] = !r
		}
	}
}
