// Package threaded is the closure-threaded execution core: a compile stage
// that lowers the immutable predecoded image (decode.Program) into per-basic-
// block handler chains — one funcval array per block, each closure specialized
// at compile time on handler kind, operand registers, and pre-masked
// immediates, with straight-line runs of instructions fused into
// superinstructions and block exits that return the successor block index
// directly instead of re-dispatching per PC.
//
// The compiled Program is config-independent and immutable, like the
// decode.Program it is built from: any number of machines, across models and
// goroutines, may execute it concurrently. decode.Program memoizes one
// compile per image (Program.Threaded), so exp.Suite's per-(benchmark,
// variant) predecode memoization covers the threaded sidecar for free.
//
// Two consumers, two products:
//
//   - Chains (Blocks): the functional interpreter executes them directly,
//     block to block, never touching the dispatch table. Chains model
//     main-thread no-speculation semantics only (chk.c falls through, spawn
//     is a nop, stores execute) — exactly the interpreter's contract.
//   - Steps: a per-PC array of pure-step closures the cycle-level engines
//     use for architectural execution under their existing timing loops. A
//     step exists only for instructions with no memory, control, or
//     machine-level effect, so the engines' timing, stats, budget
//     enforcement, and fast-forward logic are untouched by construction.
//
// Fused superinstructions report their constituent instruction count
// (node.n, Block.NBody) and the static IDs of any folded loads
// (Block.LoadIDs), so instruction-exact accounting — the interpreter's
// maxInstrs ceiling in particular — never drifts from table dispatch.
// check.ThreadedEquivalence holds both consumers to bit-identical results
// against the table-dispatch reference.
package threaded

import (
	"errors"
	"fmt"

	"ssp/internal/ir"
	"ssp/internal/sim/decode"
	"ssp/internal/sim/mem"
)

// Ctx is the architectural state a chain or step closure executes against:
// the register files, predicate registers, branch registers, and live-in
// buffers of one hardware thread context. sim.Thread embeds it, so the
// closures write engine thread state directly; the interpreter runs a
// standalone Ctx with Mem attached.
type Ctx struct {
	Regs  [ir.NumRegs]uint64
	Preds [ir.NumPreds]bool
	BRs   [ir.NumBRs]uint64
	FRegs [ir.NumFRs]float64

	InLIB  [ir.LIBSlots]uint64
	OutLIB [ir.LIBSlots]uint64

	// Mem is the data memory chain closures load from and store to. Only
	// the interpreter attaches one; engine threads leave it nil (their
	// memory instructions stay on the table-dispatch path, where timing
	// lives).
	Mem *mem.Memory

	// Dyn receives the dynamic target PC of a ret/callb block exit; Run
	// maps it back onto a block. TrapPC records the PC of a kill exit for
	// the error message.
	Dyn    uint64
	TrapPC int32
}

// SetReg writes a general register; writes to the hardwired r0 are dropped.
// Compiled closures never call it — r0 destinations are specialized away at
// compile time — but the embedding machine uses it for generic writes.
func (x *Ctx) SetReg(r ir.Reg, v uint64) {
	if r != ir.RegZero {
		x.Regs[r] = v
	}
}

// FR reads an FP register, honoring the hardwired f0 = +0.0 and f1 = +1.0.
func (x *Ctx) FR(f ir.FR) float64 {
	switch f {
	case ir.FZero:
		return 0
	case ir.FOne:
		return 1
	}
	return x.FRegs[f]
}

// SetFR writes an FP register; writes to the hardwired f0/f1 are dropped.
func (x *Ctx) SetFR(f ir.FR, v float64) {
	if f != ir.FZero && f != ir.FOne {
		x.FRegs[f] = v
	}
}

// Step is one specialized per-PC closure of the engines' pure-step array.
type Step func(x *Ctx)

// node is one superinstruction of a block's body chain: a fused run of up to
// fuseWidth constituent instructions with no control transfer among them.
type node struct {
	run Step  // nil when every constituent is effect-free (nops, r0 sinks)
	n   int32 // constituent dynamic instruction count
	pc  int32 // PC of the first constituent
}

// StepInfo is the compact per-PC scoreboard record backing Program.Info:
// the operand locations, function-unit class, and latency class of a pure
// step, inlined into one 16-byte fixed-size struct so the cycle engines'
// issue loop never chases the decode table's Uses/Defs slice backing arrays.
// Capacities cover every pure instruction (at most qp + three sources, two
// destinations); an instruction that would not fit simply gets no step.
type StepInfo struct {
	Uses   [4]ir.Loc
	Defs   [2]ir.Loc
	NU, ND uint8
	FU     decode.FUClass
	Lat    decode.LatClass
}

// Block is one compiled basic block: the body chain plus a single exit
// closure that returns the successor block index (or a negative exit code).
type Block struct {
	Start, End int32

	body []node
	exit func(x *Ctx) int32
	// exitN is the exit's constituent count: 1 for a real terminator, 2
	// when the trailing cmp+br latch idiom is fused into the exit, 0 for a
	// synthetic fall-through (the block ends because its successor is a
	// jump target, not because it transfers control).
	exitN  int32
	exitPC int32

	// NBody is the body chain's total constituent count; NBody plus exitN
	// is the exact number of dynamic instructions one traversal executes.
	NBody int32
	// LoadPCs/LoadIDs identify the loads folded into the body chain (PC
	// and static instruction ID), so fused execution stays attributable
	// per load.
	LoadPCs []int32
	LoadIDs []int32
}

// Body returns the block's superinstruction chain as (constituents, firstPC)
// pairs, for reports and tests.
func (b *Block) Body() []struct{ N, PC int32 } {
	out := make([]struct{ N, PC int32 }, len(b.body))
	for i, nd := range b.body {
		out[i] = struct{ N, PC int32 }{nd.n, nd.pc}
	}
	return out
}

// Program is a compiled image: the block chains, the PC→block maps, and the
// engines' per-PC pure-step array.
type Program struct {
	Blocks []Block
	// BlockOf maps a PC to its block index; BlockStart marks PCs control
	// may enter a chain at.
	BlockOf    []int32
	BlockStart []bool

	// Steps is the per-PC pure-step array for the cycle engines; a nil
	// entry means the instruction has memory, control, or machine-level
	// effects and must take the table-dispatch path.
	Steps []Step
	// Info is the per-PC compact scoreboard record, valid exactly where
	// Steps is non-nil. One fixed-size record per PC keeps the engines'
	// issue loop free of the decode table's slice indirections: operand
	// locations, function unit, and latency class all sit on one line.
	Info []StepInfo

	// Unthreadable marks an image whose chains could not be built (a
	// control transfer not at a block boundary — impossible for linked
	// programs, possible for hand-built images). Steps is still valid.
	Unthreadable bool

	// Compile-time fusion statistics, for reports and the coverage tests.
	NInstrs int // static instructions compiled
	NSteps  int // PCs with an engine pure step
	Supers  int // superinstructions with >= 2 constituents
	Fused   int // instructions folded into those superinstructions
}

// Exit codes returned by block exits (>= 0 is a successor block index).
const (
	ecHalt int32 = -1 // main thread executed halt
	ecKill int32 = -2 // kill reached (TrapPC holds the PC)
	ecDyn  int32 = -3 // dynamic target in Ctx.Dyn (ret, callb)
	ecOff  int32 = -4 // control ran off the end of the image
)

// ErrUnthreadable reports that chain execution cannot (or can no longer)
// represent the program's control flow — an unthreadable image, an entry
// that is not a block start, or a dynamic jump to mid-block. The caller
// falls back to table dispatch; the Ctx is dead.
var ErrUnthreadable = errors.New("threaded: program not chain-executable")

// LimitError reports that execution would exceed the instruction ceiling —
// the same condition, at the same instruction boundary, as the table-dispatch
// interpreter's limit.
type LimitError struct{ Max int64 }

func (e *LimitError) Error() string {
	return fmt.Sprintf("threaded: execution exceeded %d instructions", e.Max)
}

// KillError reports that the main thread executed kill.
type KillError struct{ PC int }

func (e *KillError) Error() string {
	return fmt.Sprintf("threaded: kill at pc %d", e.PC)
}

// Run executes the chains from entry until halt, kill, or the instruction
// ceiling, and returns the number of dynamic instructions executed. The
// count — and the halt/kill/limit outcome — is bit-identical to the
// table-dispatch interpreter on the same image: superinstructions carry
// their constituent counts, and a chain can never cross the ceiling
// mid-node without erroring exactly where the per-PC loop would have.
func (p *Program) Run(x *Ctx, entry int, maxInstrs int64) (int64, error) {
	if p.Unthreadable || entry < 0 || entry >= len(p.BlockStart) || !p.BlockStart[entry] {
		return 0, ErrUnthreadable
	}
	b := p.BlockOf[entry]
	var n int64
	for {
		blk := &p.Blocks[b]
		for i := range blk.body {
			nd := &blk.body[i]
			if n+int64(nd.n) > maxInstrs {
				return n, &LimitError{Max: maxInstrs}
			}
			if nd.run != nil {
				nd.run(x)
			}
			n += int64(nd.n)
		}
		if blk.exitN != 0 && n+int64(blk.exitN) > maxInstrs {
			return n, &LimitError{Max: maxInstrs}
		}
		c := blk.exit(x)
		n += int64(blk.exitN)
		if c >= 0 {
			b = c
			continue
		}
		switch c {
		case ecHalt:
			return n, nil
		case ecKill:
			return n, &KillError{PC: int(x.TrapPC)}
		case ecDyn:
			tgt := x.Dyn
			if tgt >= uint64(len(p.BlockStart)) || !p.BlockStart[tgt] {
				return n, ErrUnthreadable
			}
			b = p.BlockOf[tgt]
		default: // ecOff
			return n, ErrUnthreadable
		}
	}
}
