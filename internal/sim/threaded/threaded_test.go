package threaded_test

import (
	"strings"
	"testing"

	"ssp/internal/ir"
	"ssp/internal/sim"
	"ssp/internal/sim/decode"
	"ssp/internal/sim/mem"
	"ssp/internal/sim/threaded"
	"ssp/internal/workloads"
)

const maxInstrs = 100_000_000

// tableInterp runs the table-dispatch reference interpreter.
func tableInterp(t *testing.T, dp *decode.Program, limit int64) (*sim.InterpResult, error) {
	t.Helper()
	cfg := sim.DefaultInOrder()
	cfg.UseTinyMem()
	cfg.Threaded = false
	return sim.InterpretPredecoded(cfg, dp, limit)
}

// runChains compiles and executes the chains directly, bypassing sim's
// interpreter gate, so the test exercises the package's own surface.
func runChains(t *testing.T, dp *decode.Program, limit int64) (*threaded.Ctx, int64, error) {
	t.Helper()
	tp := threaded.Compile(dp)
	if tp.Unthreadable {
		t.Fatal("compile marked a linked image unthreadable")
	}
	x := &threaded.Ctx{Mem: mem.NewMemory()}
	x.Mem.InstallSnapshot(dp.Mem)
	n, err := tp.Run(x, dp.Img.Entry, limit)
	return x, n, err
}

// TestChainsMatchTableInterpreter: direct chain execution agrees with the
// table-dispatch interpreter on final registers, instruction count, and
// memory checksum, over random programs and every paper benchmark.
func TestChainsMatchTableInterpreter(t *testing.T) {
	var dps []*decode.Program
	for seed := int64(0); seed < 8; seed++ {
		img, err := ir.Link(workloads.RandomProgram(seed))
		if err != nil {
			t.Fatal(err)
		}
		dps = append(dps, decode.Predecode(img))
	}
	for _, spec := range workloads.All() {
		p, _ := spec.Build(spec.TestScale)
		img, err := ir.Link(p)
		if err != nil {
			t.Fatal(err)
		}
		dps = append(dps, decode.Predecode(img))
	}
	for i, dp := range dps {
		ref, err := tableInterp(t, dp, maxInstrs)
		if err != nil {
			t.Fatalf("program %d: table: %v", i, err)
		}
		x, n, err := runChains(t, dp, maxInstrs)
		if err != nil {
			t.Fatalf("program %d: chains: %v", i, err)
		}
		if n != ref.Instrs {
			t.Fatalf("program %d: chains retired %d instrs, table %d", i, n, ref.Instrs)
		}
		if x.Regs != ref.Regs {
			t.Fatalf("program %d: final registers diverge:\nchains %v\ntable  %v", i, x.Regs, ref.Regs)
		}
		if x.Mem.Checksum() != ref.Mem.Checksum() {
			t.Fatalf("program %d: memory checksum %#x, table %#x", i, x.Mem.Checksum(), ref.Mem.Checksum())
		}
	}
}

// TestLimitBoundaryExact: the instruction ceiling trips at exactly the same
// boundary as the table interpreter — a limit of N-1 errors, a limit of
// exactly N (the program's dynamic length, whose final instruction is halt)
// succeeds — including when the final block's exit is a fused two-instruction
// cmp+br (covered by whichever programs fuse their latch; the equality with
// the table path holds regardless).
func TestLimitBoundaryExact(t *testing.T) {
	img, err := ir.Link(workloads.RandomProgram(3))
	if err != nil {
		t.Fatal(err)
	}
	dp := decode.Predecode(img)
	ref, err := tableInterp(t, dp, maxInstrs)
	if err != nil {
		t.Fatal(err)
	}
	n := ref.Instrs
	for _, limit := range []int64{1, n / 2, n - 1, n, n + 1} {
		refR, refErr := tableInterp(t, dp, limit)
		_, cn, chErr := runChains(t, dp, limit)
		if (refErr == nil) != (chErr == nil) {
			t.Fatalf("limit %d: table err %v, chains err %v", limit, refErr, chErr)
		}
		if refErr != nil {
			if _, ok := chErr.(*threaded.LimitError); !ok {
				t.Fatalf("limit %d: chains error %v, want LimitError", limit, chErr)
			}
			continue
		}
		if cn != refR.Instrs {
			t.Fatalf("limit %d: chains retired %d, table %d", limit, cn, refR.Instrs)
		}
	}
}

// TestKillReportsPC: a main-thread kill surfaces as KillError carrying the
// faulting PC, and sim's interpreter converts it to the table path's exact
// error string.
func TestKillReportsPC(t *testing.T) {
	p := ir.NewProgram("main")
	f := ir.NewFunc(p, "main")
	b := f.Block("entry")
	b.MovI(14, 7)
	b.Kill()
	img, err := ir.Link(p)
	if err != nil {
		t.Fatal(err)
	}
	dp := decode.Predecode(img)
	_, _, chErr := runChains(t, dp, maxInstrs)
	ke, ok := chErr.(*threaded.KillError)
	if !ok {
		t.Fatalf("chains error %v, want KillError", chErr)
	}
	_, refErr := tableInterp(t, dp, maxInstrs)
	if refErr == nil {
		t.Fatal("table interpreter accepted a kill")
	}
	cfg := sim.DefaultInOrder()
	cfg.UseTinyMem()
	_, thrErr := sim.InterpretPredecoded(cfg, dp, maxInstrs)
	if thrErr == nil || thrErr.Error() != refErr.Error() {
		t.Fatalf("threaded interpreter error %q, table %q", thrErr, refErr)
	}
	if !strings.Contains(refErr.Error(), "kill") {
		t.Fatalf("unexpected kill error: %v", refErr)
	}
	if ke.PC < 0 || ke.PC >= len(img.Code) || img.Code[ke.PC].I.Op != ir.OpKill {
		t.Fatalf("KillError.PC = %d, not the kill instruction", ke.PC)
	}
}

// TestCompileCoverage: the compile stage accounts for every static
// instruction exactly once — the per-block constituent counts (body chain
// plus exit) sum to the image size — and actually fuses: the benchmarks'
// ALU-dense inner loops must produce multi-constituent superinstructions and
// engine pure steps.
func TestCompileCoverage(t *testing.T) {
	for _, spec := range workloads.All() {
		p, _ := spec.Build(spec.TestScale)
		img, err := ir.Link(p)
		if err != nil {
			t.Fatal(err)
		}
		dp := decode.Predecode(img)
		tp := threaded.Compile(dp)
		if tp.Unthreadable {
			t.Fatalf("%s: unthreadable", spec.Name)
		}
		if tp.NInstrs != len(img.Code) {
			t.Fatalf("%s: compiled %d instrs, image has %d", spec.Name, tp.NInstrs, len(img.Code))
		}
		var covered int32
		for bi := range tp.Blocks {
			b := &tp.Blocks[bi]
			var body int32
			for _, nd := range b.Body() {
				if nd.N <= 0 || nd.PC < b.Start || nd.PC >= b.End {
					t.Fatalf("%s: block %d has malformed node %+v", spec.Name, bi, nd)
				}
				body += nd.N
			}
			if body != b.NBody {
				t.Fatalf("%s: block %d NBody %d, nodes sum to %d", spec.Name, bi, b.NBody, body)
			}
			covered += b.NBody
			for i, pc := range b.LoadPCs {
				d := &dp.Code[pc]
				if d.H != decode.HLd && d.H != decode.HLdPI && d.H != decode.HFLd {
					t.Fatalf("%s: block %d LoadPCs[%d]=%d is not a load", spec.Name, bi, i, pc)
				}
				if b.LoadIDs[i] != d.ID {
					t.Fatalf("%s: block %d load %d: ID %d, decode says %d", spec.Name, bi, pc, b.LoadIDs[i], d.ID)
				}
			}
		}
		// Exits: every block contributes End-Start instructions in total.
		for bi := range tp.Blocks {
			b := &tp.Blocks[bi]
			exitN := b.End - b.Start - b.NBody
			if exitN < 0 || exitN > 2 {
				t.Fatalf("%s: block %d: exit covers %d instrs", spec.Name, bi, exitN)
			}
			covered += exitN
		}
		if int(covered) != tp.NInstrs {
			t.Fatalf("%s: blocks cover %d instrs, image has %d", spec.Name, covered, tp.NInstrs)
		}
		if tp.Supers == 0 || tp.Fused == 0 {
			t.Fatalf("%s: no fusion happened (supers=%d fused=%d)", spec.Name, tp.Supers, tp.Fused)
		}
		if tp.NSteps == 0 {
			t.Fatalf("%s: no engine pure steps compiled", spec.Name)
		}
	}
}

// TestCtxHardwired: the architectural register conventions hold — r0 writes
// are dropped, f0/f1 read as the hardwired constants and refuse writes.
func TestCtxHardwired(t *testing.T) {
	var x threaded.Ctx
	x.SetReg(ir.RegZero, 42)
	if x.Regs[ir.RegZero] != 0 {
		t.Fatal("r0 accepted a write")
	}
	x.SetFR(ir.FZero, 3.5)
	x.SetFR(ir.FOne, 3.5)
	if x.FR(ir.FZero) != 0 || x.FR(ir.FOne) != 1 {
		t.Fatalf("hardwired FPs read %v/%v, want 0/1", x.FR(ir.FZero), x.FR(ir.FOne))
	}
}
