package sim

import (
	"testing"

	"ssp/internal/ir"
	"ssp/internal/workloads"
)

// FuzzThreadedEquivalence drives the closure-threaded execution core from a
// fuzzed seed: the input picks a workloads.RandomProgram and an instruction
// ceiling, and the property is architectural equivalence — interpreting the
// program over compiled per-block chains must agree bit-for-bit with the
// table-dispatch reference on the retired instruction count, the final
// register file, and the memory checksum, including on which side of the
// ceiling the run lands (both succeed or both report the identical error).
// The full-Result timing equivalence (both engines, stats, fast-forward) is
// covered per seed by check.ThreadedSeed, which is too slow for a fuzz loop.
func FuzzThreadedEquivalence(f *testing.F) {
	for _, seed := range []int64{0, 7, 42} {
		f.Add(seed, uint8(0))
	}
	// Two-phase program seeds (several hot regions, several chain families)
	// and a tight ceiling that trips mid-superinstruction.
	f.Add(int64(8), uint8(0))
	f.Add(int64(3), uint8(200))
	f.Fuzz(func(t *testing.T, seed int64, limitBits uint8) {
		img, err := ir.Link(workloads.RandomProgram(seed))
		if err != nil {
			t.Fatalf("seed %d: link of a generated program failed: %v", seed, err)
		}
		dp := Predecode(img)
		limit := int64(1) << 40
		if limitBits != 0 {
			// A fuzzed ceiling: somewhere inside the run, exercising the
			// exact-boundary contract of the per-node limit pre-check.
			limit = int64(limitBits) * 37
		}
		tcfg := DefaultInOrder()
		tcfg.UseTinyMem()
		ccfg := tcfg
		ccfg.Threaded = false
		ref, refErr := InterpretPredecoded(ccfg, dp, limit)
		got, gotErr := InterpretPredecoded(tcfg, dp, limit)
		if (refErr == nil) != (gotErr == nil) {
			t.Fatalf("seed %d limit %d: table err %v, threaded err %v", seed, limit, refErr, gotErr)
		}
		if refErr != nil {
			if refErr.Error() != gotErr.Error() {
				t.Fatalf("seed %d limit %d: table err %q, threaded err %q", seed, limit, refErr, gotErr)
			}
			return
		}
		if got.Instrs != ref.Instrs {
			t.Fatalf("seed %d limit %d: threaded retired %d instrs, table %d", seed, limit, got.Instrs, ref.Instrs)
		}
		if got.Regs != ref.Regs {
			t.Fatalf("seed %d limit %d: final registers diverge:\nthreaded %v\ntable    %v", seed, limit, got.Regs, ref.Regs)
		}
		if got.Mem.Checksum() != ref.Mem.Checksum() {
			t.Fatalf("seed %d limit %d: memory checksum %#x, table %#x", seed, limit, got.Mem.Checksum(), ref.Mem.Checksum())
		}
	})
}
