package sim

import (
	"fmt"
	"io"
)

// Tracer receives one line per architecturally executed instruction when
// attached to a machine — thread id, speculative flag, cycle, PC, and the
// instruction text. It exists for debugging adapted binaries: watching a
// chaining thread run ahead of the main thread in the interleaved trace is
// the fastest way to understand a slack problem.
type Tracer struct {
	W io.Writer
	// MaxLines stops tracing after this many lines (0 = unlimited).
	MaxLines int64
	lines    int64
}

// Attach installs the tracer on the machine.
func (m *Machine) Attach(tr *Tracer) { m.tracer = tr }

// trace emits one line if a tracer is attached and its budget allows.
func (m *Machine) trace(t *Thread, pc int) {
	tr := m.tracer
	if tr == nil || (tr.MaxLines > 0 && tr.lines >= tr.MaxLines) {
		return
	}
	tr.lines++
	kind := "main"
	if t.spec {
		kind = fmt.Sprintf("spec%d", t.idx)
	}
	fmt.Fprintf(tr.W, "%10d %-5s pc=%-6d %s\n", m.now, kind, pc, m.Img.Code[pc].I.String())
}
