package sim

import (
	"fmt"
	"io"
)

// Tracer receives one line per architecturally executed instruction when
// attached to a machine — thread id, speculative flag, cycle, PC, and the
// instruction text. It exists for debugging adapted binaries: watching a
// chaining thread run ahead of the main thread in the interleaved trace is
// the fastest way to understand a slack problem. It is an ExecHooks
// implementation riding the machine's exec hook point; a machine with no
// tracer attached pays nothing.
type Tracer struct {
	W io.Writer
	// MaxLines stops tracing after this many lines (0 = unlimited).
	MaxLines int64
	lines    int64
}

// Attach installs the tracer on the machine's exec hook point.
func (m *Machine) Attach(tr *Tracer) { m.attachExec(tr) }

// Exec emits one trace line if the budget allows. It implements ExecHooks.
func (tr *Tracer) Exec(m *Machine, t *Thread, pc int) {
	if tr.MaxLines > 0 && tr.lines >= tr.MaxLines {
		return
	}
	tr.lines++
	kind := "main"
	if t.spec {
		kind = fmt.Sprintf("spec%d", t.idx)
	}
	fmt.Fprintf(tr.W, "%10d %-5s pc=%-6d %s\n", m.now, kind, pc, m.Img.Code[pc].I.String())
}
