package ssp

import (
	"testing"

	"ssp/internal/profile"
	"ssp/internal/workloads"
)

// FuzzAdaptRandomProgram drives the whole adaptation tool from a fuzzed seed:
// the input bytes pick a workloads.RandomProgram and an option mix, and the
// property is the tool's total-correctness contract — Adapt either refuses
// with a clean error or produces a binary that passes the static attachment
// verifier (Adapt runs Validate and VerifyAttachments internally, so a
// non-error return that would fail them is already a bug; this target asserts
// it explicitly anyway, and that the tool never panics). The dynamic half of
// the contract (identical architectural state) is covered per seed by
// check.Seed, which is too slow for a fuzz loop.
func FuzzAdaptRandomProgram(f *testing.F) {
	for _, seed := range []int64{0, 1, 7, 42, 1000} {
		f.Add(seed, uint8(0))
		f.Add(seed, uint8(0xff))
	}
	f.Add(int64(-3), uint8(0b10101))
	// Seeds whose generated program grows a second hot phase (1 in 4 draws):
	// the fuzz corpus must exercise the multi-region portfolio pipeline, not
	// just single-loop programs. TestRandomProgramTwoPhaseSeedsAdapt pins
	// that these produce >= 2 independent slices today.
	for _, seed := range []int64{8, 16} {
		f.Add(seed, uint8(0))
		f.Add(seed, uint8(0xff))
	}
	// Safety-verifier seeds: option mixes that exercise every slice shape
	// the budget analysis decomposes — latch-guarded basic loops (chaining
	// and prediction off), predicted countdown chains, and unrolled chains.
	f.Add(int64(4), uint8(0b00100))
	f.Add(int64(9), uint8(0b100101))
	f.Add(int64(23), uint8(0b11100111))
	f.Fuzz(func(t *testing.T, seed int64, optBits uint8) {
		p := workloads.RandomProgram(seed)
		prof, err := profile.Collect(p, tinyConfig())
		if err != nil {
			t.Fatalf("seed %d: profile of a generated program failed: %v", seed, err)
		}
		opt := DefaultOptions()
		opt.Chaining = optBits&1 != 0
		opt.LoopRotation = optBits&2 != 0
		opt.CondPrediction = optBits&4 != 0
		opt.SpeculativeSlicing = optBits&8 != 0
		opt.TriggerHoisting = optBits&16 != 0
		if optBits&32 != 0 {
			opt.ChainUnroll = 2 + int(optBits>>6) // 2 or 3
		}
		adapted, _, err := Adapt(p, prof, opt, "fuzz")
		if err != nil {
			return // a clean refusal satisfies the contract
		}
		if err := adapted.Validate(); err != nil {
			t.Fatalf("seed %d optBits %#x: adapted binary fails Validate: %v", seed, optBits, err)
		}
		if err := VerifyAttachments(adapted); err != nil {
			t.Fatalf("seed %d optBits %#x: adapted binary fails VerifyAttachments: %v", seed, optBits, err)
		}
		// The safety verifier must certify every tool output: a budget at
		// or under the ceiling and zero violations. Its negative corpus is
		// exercised too — every mutant of the adapted binary must be
		// rejected with the injected class (skipped when the adaptation
		// emitted no slices; there is nothing to corrupt).
		srep, err := VerifySafety(adapted, DefaultSafetyCeiling)
		if err != nil {
			t.Fatalf("seed %d optBits %#x: adapted binary fails VerifySafety: %v", seed, optBits, err)
		}
		if srep.MaxBudget() > DefaultSafetyCeiling {
			t.Fatalf("seed %d optBits %#x: certified budget %d exceeds ceiling", seed, optBits, srep.MaxBudget())
		}
		if len(srep.Slices) > 0 {
			if err := CheckUnsafe(adapted, DefaultSafetyCeiling); err != nil {
				t.Fatalf("seed %d optBits %#x: negative corpus: %v", seed, optBits, err)
			}
		}
	})
}

// TestRandomProgramTwoPhaseSeedsAdapt pins the fuzz corpus's multi-region
// seeds: each generates a two-phase random program (the 1-in-4 second-phase
// draw fired) whose adaptation yields independent slices in separate
// regions — the corpus genuinely reaches the portfolio pipeline.
func TestRandomProgramTwoPhaseSeedsAdapt(t *testing.T) {
	for _, seed := range []int64{1, 8, 16} {
		p := workloads.RandomProgram(seed)
		if p.FuncByName("main").BlockByLabel("loop2") == nil {
			t.Fatalf("seed %d no longer generates a second hot phase", seed)
		}
		prof, err := profile.Collect(p, tinyConfig())
		if err != nil {
			t.Fatal(err)
		}
		_, rep, err := Adapt(p, prof, DefaultOptions(), "fuzzseed")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		regions := map[string]bool{}
		for _, s := range rep.Slices {
			regions[s.Region] = true
		}
		if rep.NumSlices() < 2 || len(regions) < 2 {
			t.Fatalf("seed %d: %d slices over regions %v, want >= 2 independent slices",
				seed, rep.NumSlices(), regions)
		}
	}
}
