package ssp

import (
	"testing"

	"ssp/internal/profile"
	"ssp/internal/workloads"
)

// FuzzAdaptRandomProgram drives the whole adaptation tool from a fuzzed seed:
// the input bytes pick a workloads.RandomProgram and an option mix, and the
// property is the tool's total-correctness contract — Adapt either refuses
// with a clean error or produces a binary that passes the static attachment
// verifier (Adapt runs Validate and VerifyAttachments internally, so a
// non-error return that would fail them is already a bug; this target asserts
// it explicitly anyway, and that the tool never panics). The dynamic half of
// the contract (identical architectural state) is covered per seed by
// check.Seed, which is too slow for a fuzz loop.
func FuzzAdaptRandomProgram(f *testing.F) {
	for _, seed := range []int64{0, 1, 7, 42, 1000} {
		f.Add(seed, uint8(0))
		f.Add(seed, uint8(0xff))
	}
	f.Add(int64(-3), uint8(0b10101))
	f.Fuzz(func(t *testing.T, seed int64, optBits uint8) {
		p := workloads.RandomProgram(seed)
		prof, err := profile.Collect(p, tinyConfig())
		if err != nil {
			t.Fatalf("seed %d: profile of a generated program failed: %v", seed, err)
		}
		opt := DefaultOptions()
		opt.Chaining = optBits&1 != 0
		opt.LoopRotation = optBits&2 != 0
		opt.CondPrediction = optBits&4 != 0
		opt.SpeculativeSlicing = optBits&8 != 0
		opt.TriggerHoisting = optBits&16 != 0
		if optBits&32 != 0 {
			opt.ChainUnroll = 2 + int(optBits>>6) // 2 or 3
		}
		adapted, _, err := Adapt(p, prof, opt, "fuzz")
		if err != nil {
			return // a clean refusal satisfies the contract
		}
		if err := adapted.Validate(); err != nil {
			t.Fatalf("seed %d optBits %#x: adapted binary fails Validate: %v", seed, optBits, err)
		}
		if err := VerifyAttachments(adapted); err != nil {
			t.Fatalf("seed %d optBits %#x: adapted binary fails VerifyAttachments: %v", seed, optBits, err)
		}
	})
}
