package ssp

import (
	"fmt"

	"ssp/internal/ir"
)

// emit generates the binary attachment for one scheduled slice in the
// Figure 7 layout: a chk.c trigger embedded in the main code, a stub block
// that copies live-ins into the live-in buffer and spawns, and the slice
// block(s) holding the precomputation, appended after the function in which
// the trigger resides. It also appends the slice's Table 2 row to the
// report. chainBound is this slice's share of Options.ChainBound — the
// portfolio budgeter divides the bound across concurrently-armed slices so
// one chain cannot starve the others of spec contexts. It returns false
// (with no error) when no legal trigger placement exists, so the caller can
// account for the slice's targets as skipped.
func (t *Tool) emit(sl *Slice, sch *Schedule, chainBound int64) (bool, error) {
	f := sl.Region.F
	tp, ok := t.placeTrigger(sl)
	if !ok {
		return false, nil // no legal trigger: skip this slice
	}
	k := t.nextSlice
	t.nextSlice++
	stubLabel := fmt.Sprintf("ssp_stub_%d", k)
	sliceLabel := fmt.Sprintf("ssp_slice_%d", k)

	countdown := sch.Predicted && sch.Model != ModelBasicOneShot
	countSlot := int64(len(sl.LiveIns))
	bound := int64(sch.TripsPerEntry)
	if sch.Model == ModelChaining && t.opt.ChainUnroll > 1 {
		// Each chain link covers ChainUnroll iterations.
		bound /= int64(t.opt.ChainUnroll)
	}
	if bound > chainBound {
		bound = chainBound
	}
	if bound < 2 {
		bound = 2
	}

	// Stub block (Attachment, Figure 7): copy live-ins, spawn, resume.
	stub := ir.NewBlockBuilder(t.p, f, f.AddBlock(stubLabel))
	for i, r := range sl.LiveIns {
		stub.Liw(int64(i), r)
	}
	if countdown {
		// The countdown bound rides the live-in buffer; the reserved
		// scratch register stages it on the main thread.
		stub.MovI(scratchGR, bound)
		stub.Liw(countSlot, scratchGR)
	}
	stub.Spawn(sliceLabel)

	// Slice block: restore live-ins, then the scheduled precomputation.
	body := ir.NewBlockBuilder(t.p, f, f.AddBlock(sliceLabel))
	for i, r := range sl.LiveIns {
		body.Lir(r, int64(i))
	}
	if countdown {
		body.Lir(scratchGR, countSlot)
	}

	clone := func(bb *ir.BlockBuilder, n int) {
		c := sl.Nodes[n].In.Clone()
		c.ID = 0
		t.p.Assign(c)
		if sch.Lfetch[n] {
			c.Op = ir.OpLfetch
			c.Rd = 0
			c.PostInc = 0
		}
		bb.B.Append(c)
	}

	switch sch.Model {
	case ModelChaining:
		if t.opt.ChainUnroll > 1 && t.emitChainingUnrolled(body, sl, sch, countdown, countSlot, sliceLabel) {
			break
		}
		// Figure 5(b): critical sub-slice, live-in copies + chained
		// spawn, then the non-critical sub-slice.
		for _, n := range sch.Critical {
			clone(body, n)
		}
		spawnPR := t.emitSpawnGuard(body, sl, sch, countdown)
		for i, r := range sl.LiveIns {
			body.Liw(int64(i), r)
		}
		if countdown {
			body.Liw(countSlot, scratchGR)
		}
		if spawnPR == ir.PTrue {
			body.Spawn(sliceLabel)
		} else {
			body.On(spawnPR).Spawn(sliceLabel)
		}
		for _, n := range sch.NonCritical {
			clone(body, n)
		}
		body.Kill()

	case ModelBasicLoop:
		// Figure 6(b): a single thread iterates the whole scheduled
		// slice; the latch predicate (or countdown) closes the loop.
		loopLabel := sliceLabel + "_loop"
		loop := ir.NewBlockBuilder(t.p, f, f.AddBlock(loopLabel))
		for _, n := range sch.Critical {
			clone(loop, n)
		}
		for _, n := range sch.NonCritical {
			clone(loop, n)
		}
		backPR := t.emitSpawnGuard(loop, sl, sch, countdown)
		if backPR == ir.PTrue {
			loop.Br(loopLabel)
		} else {
			loop.On(backPR).Br(loopLabel)
		}
		tail := ir.NewBlockBuilder(t.p, f, f.AddBlock(sliceLabel+"_done"))
		tail.Kill()

	case ModelBasicOneShot:
		// One trigger, one pass. For loop regions the critical advance
		// runs once as a prologue so the prefetches target the next
		// iteration (§3.2.2: the speculative thread covers the iteration
		// the main thread reaches next).
		if sl.Region.Loop != nil {
			for _, n := range sch.Critical {
				clone(body, n)
			}
		}
		for _, n := range sch.Critical {
			clone(body, n)
		}
		for _, n := range sch.NonCritical {
			clone(body, n)
		}
		body.Kill()
	}

	t.embedTrigger(tp, stubLabel)
	f.Renumber()

	t.report.Slices = append(t.report.Slices, SliceInfo{
		Targets:         targetIDs(sl),
		Region:          sl.Region.String(),
		Trigger:         f.Name + "." + tp.block.Label,
		Model:           sch.Model.String(),
		Size:            sl.Size(),
		LiveIns:         len(sl.LiveIns),
		Interprocedural: sl.Interprocedural(),
		Chaining:        sch.Model == ModelChaining,
		Predicted:       sch.Predicted,
		SlackCSP:        sch.RateCSP,
		SlackBSP:        sch.RateBSP,
		AvailableILP:    sch.AvailableILP,
		TripCount:       sch.TripsPerEntry,
		SpawnBudget:     bound,
	})
	return true, nil
}

// emitSpawnGuard emits the continue-condition computation and returns the
// predicate guarding the chained spawn (or basic loop backedge): either the
// countdown compare (condition prediction, §3.2.1.1) or the latch compare's
// continue-sense predicate already computed by the critical sub-slice.
func (t *Tool) emitSpawnGuard(bb *ir.BlockBuilder, sl *Slice, sch *Schedule, countdown bool) ir.PR {
	if countdown {
		bb.AddI(scratchGR, scratchGR, -1)
		bb.CmpI(ir.CondGT, scratchPR, scratchPR2, scratchGR, 0)
		return scratchPR
	}
	if sl.LatchCmp == nil {
		return ir.PTrue
	}
	if sch.SpawnOnPd2 {
		return sl.LatchCmp.Pd2
	}
	return sl.LatchCmp.Pd1
}

func targetIDs(sl *Slice) []int {
	ids := make([]int, 0, len(sl.Targets))
	for _, tg := range sl.Targets {
		ids = append(ids, tg.ID)
	}
	return ids
}
