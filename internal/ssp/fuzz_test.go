package ssp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ssp/internal/ir"
	"ssp/internal/profile"
	"ssp/internal/sim"
)

// randomPointerLoop generates a random but well-formed memory-bound loop:
// an induction cursor walks a table of pointers into a shuffled record heap;
// the body mixes ALU ops, one-to-three dependent loads, predicated updates,
// and stores to a private accumulator region. Returns the program; its
// checksum is whatever the interpreter says (the property under test is
// adaptation-preserves-semantics, not a specific value).
func randomPointerLoop(r *rand.Rand) *ir.Program {
	n := 200 + r.Intn(400)
	p := ir.NewProgram("main")
	tblBase := uint64(0x100000)
	recBase := tblBase + uint64(n)*8 + 0x10000
	perm := r.Perm(n)
	for i := 0; i < n; i++ {
		rec := recBase + uint64(perm[i])*64
		p.SetWord(tblBase+uint64(i)*8, rec)
		p.SetWord(rec, recBase+uint64(perm[(i+7)%n])*64) // second-level ptr
		p.SetWord(rec+8, uint64(r.Intn(1<<30)))
		p.SetWord(rec+16, uint64(r.Intn(1<<30)))
	}
	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.MovI(14, int64(tblBase))
	e.MovI(15, int64(tblBase+uint64(n)*8))
	e.MovI(20, 0)
	e.MovI(21, 0)
	loop := fb.Block("loop")
	loop.Nop()
	loop.Ld(16, 14, 0) // rec
	depth := 1 + r.Intn(2)
	cur := ir.Reg(16)
	for d := 0; d < depth; d++ {
		next := ir.Reg(22 + d)
		loop.Ld(next, cur, 0) // chase
		cur = next
	}
	loop.Ld(17, cur, 8) // the likely-delinquent value load
	// Random ALU shuffle over accumulators.
	for k := 0; k < 2+r.Intn(5); k++ {
		switch r.Intn(4) {
		case 0:
			loop.Add(20, 20, 17)
		case 1:
			loop.XorI(21, 21, int64(r.Intn(1<<12)))
		case 2:
			loop.Add(21, 21, 20)
		case 3:
			loop.CmpI(ir.CondLT, 8, 9, 17, int64(r.Intn(1<<29)))
			loop.On(8).AddI(20, 20, 3)
		}
	}
	if r.Intn(2) == 0 {
		// A store into a private region (never read back by the loop).
		loop.MovI(26, int64(0x8000))
		loop.St(26, 0, 20)
	}
	loop.AddI(14, 14, 8)
	loop.Cmp(ir.CondLT, 6, 7, 14, 15)
	loop.On(6).Br("loop")
	done := fb.Block("done")
	done.MovI(28, 0x2000)
	done.Add(20, 20, 21)
	done.St(28, 0, 20)
	done.Halt()
	return p
}

// TestQuickAdaptPreservesSemantics: property — for random pointer loops, the
// adapted binary computes exactly the same result on both machine models,
// under every option combination.
func TestQuickAdaptPreservesSemantics(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := tinyConfig()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomPointerLoop(r)
		img, err := ir.Link(p)
		if err != nil {
			t.Log(err)
			return false
		}
		ref, err := sim.Interpret(cfg, img, 100_000_000)
		if err != nil {
			t.Log(err)
			return false
		}
		want := ref.Mem.Load(0x2000)
		prof, err := profile.Collect(p, cfg)
		if err != nil {
			t.Log(err)
			return false
		}
		opt := DefaultOptions()
		opt.Chaining = r.Intn(4) != 0
		opt.LoopRotation = r.Intn(4) != 0
		opt.CondPrediction = r.Intn(4) != 0
		opt.SpeculativeSlicing = r.Intn(4) != 0
		if r.Intn(3) == 0 {
			opt.ChainUnroll = 2 + r.Intn(2)
		}
		enh, _, err := Adapt(p, prof, opt, "fuzz")
		if err != nil {
			t.Logf("seed %d: adapt: %v", seed, err)
			return false
		}
		for _, mc := range []sim.Config{cfg, oooTiny()} {
			img2, err := ir.Link(enh)
			if err != nil {
				t.Logf("seed %d: link: %v", seed, err)
				return false
			}
			m := sim.New(mc, img2)
			res, err := m.Run()
			if err != nil || res.TimedOut {
				t.Logf("seed %d: run: %v timeout=%v", seed, err, res != nil && res.TimedOut)
				return false
			}
			if got := m.Mem.Load(0x2000); got != want {
				t.Logf("seed %d (%v): checksum %d, want %d\nopts: %+v", seed, mc.Model, got, want, opt)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func oooTiny() sim.Config {
	c := sim.DefaultOOO()
	c.Mem.L1Size = 1 << 10
	c.Mem.L2Size = 4 << 10
	c.Mem.L3Size = 16 << 10
	c.MaxCycles = 200_000_000
	return c
}
