package ssp

import (
	"math/rand"
	"strings"
	"testing"

	"ssp/internal/cfg"
	"ssp/internal/ir"
	"ssp/internal/profile"
	"ssp/internal/workloads"
)

// twoPhaseProgram has two separate hot loops with independent delinquent
// loads — exercising multiple slices in multiple regions, each with its own
// trigger and attachment (the shape the paper's multi-routine benchmarks
// have, which yields the 2-8 slice counts of Table 2).
func twoPhaseProgram(n int) (*ir.Program, uint64) {
	p := ir.NewProgram("main")
	r := rand.New(rand.NewSource(9))
	// Phase 1: arc-style strided scan with a pointer dereference.
	arcBase := uint64(0x100000)
	nodeBase := arcBase + uint64(n)*64 + 0x10000
	perm := r.Perm(n)
	var want uint64
	for i := 0; i < n; i++ {
		node := nodeBase + uint64(perm[i])*64
		p.SetWord(arcBase+uint64(i)*64+8, node)
		p.SetWord(node+16, uint64(i*3))
		want += uint64(i * 3)
	}
	// Phase 2: pointer-table walk over a different heap.
	tblBase := nodeBase + uint64(n)*64 + 0x100000
	recBase := tblBase + uint64(n)*8 + 0x10000
	perm2 := r.Perm(n)
	for i := 0; i < n; i++ {
		rec := recBase + uint64(perm2[i])*64
		p.SetWord(tblBase+uint64(i)*8, rec)
		p.SetWord(rec+8, uint64(i*5+1))
		want += uint64(i*5 + 1)
	}

	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.MovI(14, int64(arcBase))
	e.MovI(15, int64(arcBase+uint64(n)*64))
	e.MovI(20, 0)
	l1 := fb.Block("phase1")
	l1.Nop()
	l1.Mov(16, 14)
	l1.Ld(17, 16, 8)
	l1.Ld(18, 17, 16)
	l1.Add(20, 20, 18)
	l1.AddI(14, 16, 64)
	l1.Cmp(ir.CondLT, 6, 7, 14, 15)
	l1.On(6).Br("phase1")
	mid := fb.Block("mid")
	mid.MovI(14, int64(tblBase))
	mid.MovI(15, int64(tblBase+uint64(n)*8))
	l2 := fb.Block("phase2")
	l2.Nop()
	l2.Ld(16, 14, 0)
	l2.Ld(17, 16, 8)
	l2.Add(20, 20, 17)
	l2.AddI(14, 14, 8)
	l2.Cmp(ir.CondLT, 6, 7, 14, 15)
	l2.On(6).Br("phase2")
	done := fb.Block("done")
	done.MovI(28, int64(workloads.ResultAddr))
	done.St(28, 0, 20)
	done.Halt()
	return p, want
}

// TestMultipleRegionsGetSeparateSlices is the table-driven portfolio suite:
// programs with 2, 3, and 4 hot regions must come out of the tool with one
// independent p-slice per region — separate regions, separate trigger sites,
// one chk.c each — while preserving the architectural answer and accounting
// for every targeted load.
func TestMultipleRegionsGetSeparateSlices(t *testing.T) {
	cases := []struct {
		name   string
		build  func() (*ir.Program, uint64)
		slices int
	}{
		{"twophase-handbuilt", func() (*ir.Program, uint64) { return twoPhaseProgram(900) }, 2},
		{"rand-2phase", func() (*ir.Program, uint64) { return workloads.RandomMulti(21001, 2, 900) }, 2},
		{"rand-3phase", func() (*ir.Program, uint64) { return workloads.RandomMulti(21002, 3, 900) }, 3},
		{"rand-4phase", func() (*ir.Program, uint64) { return workloads.RandomMulti(21003, 4, 960) }, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, want := tc.build()
			prof, err := profile.Collect(p, tinyConfig())
			if err != nil {
				t.Fatal(err)
			}
			enh, rep, err := Adapt(p, prof, DefaultOptions(), tc.name)
			if err != nil {
				t.Fatal(err)
			}
			if rep.NumSlices() != tc.slices {
				t.Fatalf("got %d slices, want %d (one per hot loop): %+v", rep.NumSlices(), tc.slices, rep.Slices)
			}
			regions := map[string]bool{}
			triggers := map[string]bool{}
			for _, s := range rep.Slices {
				regions[s.Region] = true
				triggers[s.Trigger] = true
				if s.Trigger == "" {
					t.Fatalf("slice in %s has no trigger site", s.Region)
				}
			}
			if len(regions) != tc.slices {
				t.Fatalf("slices share a region: %+v", rep.Slices)
			}
			if len(triggers) != tc.slices {
				t.Fatalf("slices share a trigger site: %+v", rep.Slices)
			}
			// One chk.c per slice, wired to its own stub.
			text := ir.Format(enh)
			if n := strings.Count(text, "chk.c ssp_stub_"); n != tc.slices {
				t.Fatalf("expected %d triggers, found %d:\n%s", tc.slices, n, text)
			}
			// Covered XOR skipped: every targeted load is accounted for.
			for _, id := range rep.DelinquentLoads {
				covered := rep.Covered(id)
				skipped := false
				for _, sk := range rep.Skipped {
					if sk.ID == id {
						skipped = true
					}
				}
				if covered == skipped {
					t.Fatalf("load %d: covered=%v skipped=%v, want exactly one", id, covered, skipped)
				}
			}
			if err := VerifyAttachments(enh); err != nil {
				t.Fatal(err)
			}
			got, res := runChecksum(t, enh, tinyConfig())
			if got != want {
				t.Fatalf("checksum = %d, want %d", got, want)
			}
			_, base := runChecksum(t, p, tinyConfig())
			if sp := float64(base.Cycles) / float64(res.Cycles); sp < 1.1 {
				t.Fatalf("portfolio speedup = %.2f, want >= 1.1", sp)
			}
		})
	}
}

// TestSharedChainSlicesMerge pins the §3.4.1 dedup rule ("different slices
// are combined if they share nodes in the dependence graph") across region
// groups: the inner list walk's chain includes the outer loop's head load,
// so the two per-region plans must merge into one slice with one trigger
// covering both delinquent loads, not two slices racing over the same chain.
func TestSharedChainSlicesMerge(t *testing.T) {
	p, want := nestedListProgram(500, 3)
	prof, err := profile.Collect(p, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	dels := RankTargets(p, prof, opt)
	if len(dels) < 2 {
		t.Fatalf("want >= 2 delinquent loads to exercise merging, got %v", dels)
	}
	// The targets must start out in different region groups — otherwise
	// this degenerates to the ordinary same-region combine.
	fo, err := cfg.BuildForest(p)
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	for _, id := range dels {
		fn, blk, _ := p.InstrByID(id)
		r := fo.ByFunc[fn.Name].Innermost(blk.Index)
		if r.Kind == cfg.RegionLoopBody && r.Parent != nil {
			r = r.Parent
		}
		keys[r.String()] = true
	}
	if len(keys) < 2 {
		t.Fatalf("delinquent loads %v all rank into %v; the merge test needs two region groups", dels, keys)
	}
	enh, rep, err := Adapt(p, prof, opt, "nested")
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumSlices() != 1 {
		t.Fatalf("shared-chain plans did not merge: %d slices %+v", rep.NumSlices(), rep.Slices)
	}
	sl := rep.Slices[0]
	if len(sl.Targets) < 2 {
		t.Fatalf("merged slice covers %v, want both chain loads", sl.Targets)
	}
	text := ir.Format(enh)
	if n := strings.Count(text, "chk.c ssp_stub_"); n != 1 {
		t.Fatalf("merged portfolio should have one trigger, found %d", n)
	}
	got, _ := runChecksum(t, enh, tinyConfig())
	if got != want {
		t.Fatalf("checksum = %d, want %d", got, want)
	}
}

// nestedListProgram builds an outer loop walking a pointer table whose
// entries head short linked lists walked by an inner loop: the inner chain
// hangs off the outer head load, so per-region slice plans share dependence
// nodes.
func nestedListProgram(n, listLen int) (*ir.Program, uint64) {
	p := ir.NewProgram("main")
	r := rand.New(rand.NewSource(77))
	tbl := uint64(0x100000)
	heap := tbl + uint64(n)*8 + 0x10000
	perm := r.Perm(n * listLen)
	addr := func(k int) uint64 { return heap + uint64(perm[k])*64 }
	var want uint64
	for i := 0; i < n; i++ {
		p.SetWord(tbl+uint64(i)*8, addr(i*listLen))
		for j := 0; j < listLen; j++ {
			node := addr(i*listLen + j)
			val := uint64(i*7 + j*3 + 1)
			p.SetWord(node+8, val)
			want += val
			if j+1 < listLen {
				p.SetWord(node, addr(i*listLen+j+1))
			} else {
				p.SetWord(node, 0)
			}
		}
	}
	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.MovI(14, int64(tbl))
	e.MovI(15, int64(tbl+uint64(n)*8))
	e.MovI(20, 0)
	outer := fb.Block("outer")
	outer.Nop()
	outer.Ld(16, 14, 0) // list head: delinquent
	inner := fb.Block("inner")
	inner.Nop()
	inner.Ld(17, 16, 8) // node value
	inner.Add(20, 20, 17)
	inner.Ld(16, 16, 0) // next pointer: delinquent, chained off the head
	inner.CmpI(ir.CondNE, 6, 7, 16, 0)
	inner.On(6).Br("inner")
	next := fb.Block("next")
	next.AddI(14, 14, 8)
	next.Cmp(ir.CondLT, 6, 7, 14, 15)
	next.On(6).Br("outer")
	done := fb.Block("done")
	done.MovI(28, int64(workloads.ResultAddr))
	done.St(28, 0, 20)
	done.Halt()
	return p, want
}
