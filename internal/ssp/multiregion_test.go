package ssp

import (
	"math/rand"
	"strings"
	"testing"

	"ssp/internal/ir"
	"ssp/internal/profile"
	"ssp/internal/workloads"
)

// twoPhaseProgram has two separate hot loops with independent delinquent
// loads — exercising multiple slices in multiple regions, each with its own
// trigger and attachment (the shape the paper's multi-routine benchmarks
// have, which yields the 2-8 slice counts of Table 2).
func twoPhaseProgram(n int) (*ir.Program, uint64) {
	p := ir.NewProgram("main")
	r := rand.New(rand.NewSource(9))
	// Phase 1: arc-style strided scan with a pointer dereference.
	arcBase := uint64(0x100000)
	nodeBase := arcBase + uint64(n)*64 + 0x10000
	perm := r.Perm(n)
	var want uint64
	for i := 0; i < n; i++ {
		node := nodeBase + uint64(perm[i])*64
		p.SetWord(arcBase+uint64(i)*64+8, node)
		p.SetWord(node+16, uint64(i*3))
		want += uint64(i * 3)
	}
	// Phase 2: pointer-table walk over a different heap.
	tblBase := nodeBase + uint64(n)*64 + 0x100000
	recBase := tblBase + uint64(n)*8 + 0x10000
	perm2 := r.Perm(n)
	for i := 0; i < n; i++ {
		rec := recBase + uint64(perm2[i])*64
		p.SetWord(tblBase+uint64(i)*8, rec)
		p.SetWord(rec+8, uint64(i*5+1))
		want += uint64(i*5 + 1)
	}

	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.MovI(14, int64(arcBase))
	e.MovI(15, int64(arcBase+uint64(n)*64))
	e.MovI(20, 0)
	l1 := fb.Block("phase1")
	l1.Nop()
	l1.Mov(16, 14)
	l1.Ld(17, 16, 8)
	l1.Ld(18, 17, 16)
	l1.Add(20, 20, 18)
	l1.AddI(14, 16, 64)
	l1.Cmp(ir.CondLT, 6, 7, 14, 15)
	l1.On(6).Br("phase1")
	mid := fb.Block("mid")
	mid.MovI(14, int64(tblBase))
	mid.MovI(15, int64(tblBase+uint64(n)*8))
	l2 := fb.Block("phase2")
	l2.Nop()
	l2.Ld(16, 14, 0)
	l2.Ld(17, 16, 8)
	l2.Add(20, 20, 17)
	l2.AddI(14, 14, 8)
	l2.Cmp(ir.CondLT, 6, 7, 14, 15)
	l2.On(6).Br("phase2")
	done := fb.Block("done")
	done.MovI(28, int64(workloads.ResultAddr))
	done.St(28, 0, 20)
	done.Halt()
	return p, want
}

func TestMultipleRegionsGetSeparateSlices(t *testing.T) {
	p, want := twoPhaseProgram(900)
	prof, err := profile.Collect(p, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	enh, rep, err := Adapt(p, prof, DefaultOptions(), "twophase")
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumSlices() != 2 {
		t.Fatalf("got %d slices, want 2 (one per hot loop): %+v", rep.NumSlices(), rep.Slices)
	}
	regions := map[string]bool{}
	for _, s := range rep.Slices {
		regions[s.Region] = true
	}
	if len(regions) != 2 {
		t.Fatalf("slices share a region: %+v", rep.Slices)
	}
	// Two triggers, two stubs, two slice blocks.
	text := ir.Format(enh)
	if strings.Count(text, "chk.c ssp_stub_") != 2 {
		t.Fatalf("expected two triggers:\n%s", text)
	}
	got, res := runChecksum(t, enh, tinyConfig())
	if got != want {
		t.Fatalf("checksum = %d, want %d", got, want)
	}
	_, base := runChecksum(t, p, tinyConfig())
	if sp := float64(base.Cycles) / float64(res.Cycles); sp < 1.2 {
		t.Fatalf("two-phase speedup = %.2f, want >= 1.2", sp)
	}
}
