package ssp

import (
	"fmt"
	"strings"

	"ssp/internal/ir"
)

// This file is the adversarial half of the speculation-safety verifier: a
// deterministic mutator that manufactures exactly one violation per safety
// class in an otherwise-safe adapted binary. The negative corpus it
// generates keeps the verifier honest — every class is exercised against
// every adapted benchmark, so a regression that silently accepts a stray
// store or an unbounded backedge fails a test instead of shipping. It lives
// in the package proper (not a _test file) so both the ssp test suite and
// the check package's adversarial sweep (cmd/sspcheck -safety) share one
// mutator.

// UnsafeClasses lists the violation classes InjectUnsafe can manufacture,
// in a fixed order for deterministic sweeps.
var UnsafeClasses = []SafetyClass{
	SafetyStore,
	SafetyNoKill,
	SafetyUnboundedLoop,
	SafetyUnboundedChain,
	SafetyLiveInRange,
	SafetyEscape,
}

// InjectUnsafe clones the program and injects one violation of the given
// class into its first slice region. It returns the mutant and true, or
// (nil, false) when the program has no slice to corrupt. Every mutation is
// applicable to any program with at least one slice, so a sweep over the
// classes never passes vacuously.
func InjectUnsafe(p *ir.Program, class SafetyClass) (*ir.Program, bool) {
	m := p.Clone()
	f, root := firstSlice(m)
	if root == "" {
		return nil, false
	}
	rb := f.BlockByLabel(root)
	switch class {
	case SafetyStore:
		// A stray store at the head of the slice: reachable on every path.
		st := &ir.Instr{Op: ir.OpSt, Ra: 1, Rb: 1}
		m.Assign(st)
		rb.InsertAt(0, st)
	case SafetyNoKill:
		// A kill on only one branch arm: the taken arm reaches the region's
		// kill, the new arm branches to an empty continuation that falls off
		// the region (and the function) without one.
		stray := f.AddBlock(root + "_stray")
		_ = stray // empty: idx past end falls off immediately
		br := &ir.Instr{Op: ir.OpBr, Qp: 1, Target: root + "_stray"}
		m.Assign(br)
		rb.InsertAt(0, br)
	case SafetyUnboundedLoop:
		// An unconditional backedge shadowing the kill: every path now
		// cycles forever.
		kb := killBlock(f, root)
		if kb == nil {
			return nil, false
		}
		for i, in := range kb.Instrs {
			if in.Op == ir.OpKill {
				br := &ir.Instr{Op: ir.OpBr, Target: root}
				m.Assign(br)
				kb.InsertAt(i, br)
				break
			}
		}
	case SafetyUnboundedChain:
		// An unguarded chained spawn: every activation respawns itself.
		sp := &ir.Instr{Op: ir.OpSpawn, Target: root}
		m.Assign(sp)
		rb.InsertAt(0, sp)
	case SafetyLiveInRange:
		// A live-in read past the buffer: the hardware would wrap the slot,
		// silently aliasing two live-ins.
		lir := &ir.Instr{Op: ir.OpLir, Rd: 1, Imm: ir.LIBSlots + 7}
		m.Assign(lir)
		rb.InsertAt(0, lir)
	case SafetyEscape:
		// A branch out of the region into main-program code.
		br := &ir.Instr{Op: ir.OpBr, Target: f.Blocks[0].Label}
		m.Assign(br)
		rb.InsertAt(0, br)
	default:
		return nil, false
	}
	f.Renumber()
	return m, true
}

// firstSlice returns the first function holding a slice root and that
// root's label, or ("", nil) when the program has none.
func firstSlice(p *ir.Program) (*ir.Func, string) {
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if rest, ok := strings.CutPrefix(b.Label, "ssp_slice_"); ok && !strings.Contains(rest, "_") {
				return f, b.Label
			}
			if b.Label == "hand_slice" {
				return f, b.Label
			}
		}
	}
	return nil, ""
}

// killBlock returns the first region block of the slice containing a kill.
func killBlock(f *ir.Func, root string) *ir.Block {
	for _, b := range sliceRegionBlocks(f, root) {
		for _, in := range b.Instrs {
			if in.Op == ir.OpKill {
				return b
			}
		}
	}
	return nil
}

// CheckUnsafe sweeps every violation class over the program: each mutant
// must be rejected by the safety verifier with at least one violation of
// exactly the injected class. It returns an error naming the class that
// slipped through (a vacuous pass) or was rejected for the wrong reason.
func CheckUnsafe(p *ir.Program, ceiling int64) error {
	for _, class := range UnsafeClasses {
		m, ok := InjectUnsafe(p, class)
		if !ok {
			return fmt.Errorf("ssp: no slice to inject %q into (vacuous negative sweep)", class)
		}
		rep := AnalyzeSafety(m, ceiling)
		if len(rep.Violations) == 0 {
			return fmt.Errorf("ssp: verifier accepted a program with an injected %q violation", class)
		}
		found := false
		for _, v := range rep.Violations {
			if v.Class == class {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("ssp: injected %q but verifier reported %v — wrong rejection reason", class, rep.Violations)
		}
	}
	return nil
}
