// Package ssp implements the paper's contribution: the post-pass compilation
// tool that adapts a binary for software-based speculative precomputation.
// Given the program IR+CFG and profiling feedback (Figure 1), it identifies
// delinquent loads (§2.2), extracts precomputation slices via region-based,
// context-sensitive, speculative slicing (§3.1), schedules them for basic or
// chaining SP (§3.2), places chk.c triggers (§3.3), and generates the
// enhanced binary with stub and slice blocks appended after the trigger's
// function (§3.4, Figure 7).
package ssp

import "encoding/json"

// Options tunes the post-pass tool. Zero value is not useful; start from
// DefaultOptions.
type Options struct {
	// DelinquentCutoff is the fraction of total miss cycles the selected
	// delinquent loads must cover (§2.2 uses 90%).
	DelinquentCutoff float64
	// MaxDelinquent caps how many static loads are targeted.
	MaxDelinquent int

	// MinRegionMissFrac is the per-region ranking floor: when delinquent
	// loads are ranked within hot regions (the slice-portfolio pipeline), a
	// region contributing less than this fraction of all miss cycles is not
	// considered hot and contributes no targets. It keeps cold regions from
	// earning a p-slice whose spawn overhead outweighs its prefetches.
	MinRegionMissFrac float64

	// ReducedMissCutoff is the region-selection threshold: the first
	// region whose reduced miss cycles exceed this fraction of the
	// region's miss cycles is chosen (§3.4.1: "the product of the cutoff
	// percentage and the miss cycles from cache profiling").
	ReducedMissCutoff float64
	// MaxRegionDepth stops the outward region traversal after this many
	// expansion steps, "to avoid a slice becoming too big that often leads
	// to wrong address calculations" (§3.4.1).
	MaxRegionDepth int
	// MaxContextDepth bounds the interprocedural context chain a slice may
	// inline when its region sits below a call (context-sensitive slicing,
	// §3.1.2): the number of dominant-caller hops walked from the region's
	// function toward the trigger's function.
	MaxContextDepth int

	// MaxSliceSize prunes slices that grow beyond this many instructions
	// (slice-pruning, §3.1.2).
	MaxSliceSize int
	// MaxLiveIns rejects trigger placements needing more live-in copies
	// than the live-in buffer comfortably holds.
	MaxLiveIns int

	// SpeculativeSlicing enables control-flow speculative slicing: defs on
	// never-executed blocks and unrealized call edges are pruned using
	// block profiles and the dynamic call graph (§3.1.2).
	SpeculativeSlicing bool
	// BiasThreshold is the branch bias above which condition prediction
	// may discard the dependences leading to a spawn condition (§3.2.1.1).
	BiasThreshold float64
	// CondPrediction enables spawn-condition prediction: when the spawn
	// condition depends on a load, it is replaced by a trip-count-bounded
	// countdown so chaining threads spawn without waiting on memory
	// (§3.2.1.1: "the prediction breaks the dependences leading to the
	// spawn condition").
	CondPrediction bool
	// LoopRotation enables the dependence-reduction reordering that places
	// the loop-carried recurrence (the non-degenerate SCCs) at the top of
	// the generated do-across loop body (§3.2.1.1-3.2.1.2).
	LoopRotation bool
	// Chaining allows chaining SP at all; disabled, every slice is
	// scheduled for basic SP (the ablation of §3.2).
	Chaining bool
	// TriggerHoisting moves triggers to immediate dominators when slack is
	// unchanged, merging triggers (§3.3).
	TriggerHoisting bool

	// ChainBound caps the countdown used by predicted spawn conditions so
	// a mispredicted chain cannot run away.
	ChainBound int64

	// ChainUnroll makes each chaining thread cover this many iterations:
	// the critical sub-slice is applied ChainUnroll times before the
	// spawn, and the prefetch body is replicated per step with renamed
	// temporaries. This automates the unrolling the paper's hand-adapted
	// binaries used to widen slack (§4.5) and amortizes spawn overhead;
	// 1 reproduces the paper's tool exactly.
	ChainUnroll int

	// SpawnOverhead estimates the live-in copy + spawn cost in cycles for
	// the slack equations (§3.2.1.2.2's "latency(copy live-ins and
	// spawn)").
	SpawnOverhead float64
	// SlackMax prunes region growth once the projected slack exceeds this
	// many cycles: "having too much slack may cause adverse cache
	// interference" (§3).
	SlackMax float64
}

// DefaultOptions mirrors the paper's settings where stated (90% cutoff) and
// uses conservative values elsewhere; §3.4.1 reports the tool "is not highly
// sensitive to the percentage as long as it is reasonably selected".
func DefaultOptions() Options {
	return Options{
		DelinquentCutoff:   0.90,
		MaxDelinquent:      10,
		MinRegionMissFrac:  0.02,
		ReducedMissCutoff:  0.30,
		MaxRegionDepth:     4,
		MaxContextDepth:    8,
		MaxSliceSize:       48,
		MaxLiveIns:         8,
		SpeculativeSlicing: true,
		BiasThreshold:      0.95,
		CondPrediction:     true,
		LoopRotation:       true,
		Chaining:           true,
		TriggerHoisting:    true,
		ChainBound:         128,
		ChainUnroll:        1,
		SpawnOverhead:      12,
		SlackMax:           100_000,
	}
}

// Key returns the canonical cache key of an option set: the JSON encoding
// of every exported field in declaration order. Memoization layers (the
// experiment suite's options-keyed cells, the tuner's candidate cache) key
// on it so two option sets share a cell exactly when every knob matches.
func (o Options) Key() string {
	data, err := json.Marshal(o)
	if err != nil {
		// Every field is a plain scalar; Marshal cannot fail.
		panic(err)
	}
	return string(data)
}

// Report summarizes an adaptation in the shape of Table 2, plus diagnostics.
// The JSON encoding is the machine-readable Table 2 consumed by the
// experiment drivers and `make table2`.
type Report struct {
	// Benchmark is a caller-provided label.
	Benchmark string `json:"benchmark"`
	// DelinquentLoads lists the targeted static load IDs.
	DelinquentLoads []int `json:"delinquent_loads"`
	// Slices describes every generated p-slice.
	Slices []SliceInfo `json:"slices"`
	// Skipped lists targeted loads the tool could not cover, with the
	// pipeline stage that dropped them. Together with Slices it accounts
	// for every targeted load: each ID in DelinquentLoads appears either
	// in some slice's Targets or here, never silently vanishing.
	Skipped []SkippedLoad `json:"skipped,omitempty"`
	// Safety is the speculation-safety certificate of the adapted binary:
	// per-slice instruction budgets and the proof obligations discharged
	// (safety.go). The tool verifies it as part of its self-check, so a
	// returned report never carries violations.
	Safety *SafetyReport `json:"safety,omitempty"`
}

// SkippedLoad records one delinquent load the tool targeted but dropped.
type SkippedLoad struct {
	// ID is the static load ID from DelinquentLoads.
	ID int `json:"id"`
	// Reason names the stage that rejected the load; stages that reject a
	// whole region group prefix the rejecting region's name.
	Reason string `json:"reason"`
}

// Covered reports whether load id made it into some emitted slice.
func (r *Report) Covered(id int) bool {
	for _, s := range r.Slices {
		for _, t := range s.Targets {
			if t == id {
				return true
			}
		}
	}
	return false
}

// SliceInfo is one row's worth of Table 2 data for a single p-slice.
type SliceInfo struct {
	// Targets are the delinquent load IDs this slice prefetches.
	Targets []int `json:"targets"`
	// Region names the selected region.
	Region string `json:"region"`
	// Trigger names the trigger site as "func.block": where this slice's
	// chk.c was embedded. Independent slices have distinct trigger sites.
	Trigger string `json:"trigger"`
	// Model names the selected precomputation model (chaining, basic-loop,
	// basic-oneshot).
	Model string `json:"model"`
	// Size is the number of precomputation instructions in the slice body
	// (excluding live-in plumbing and thread control).
	Size int `json:"size"`
	// LiveIns is the number of live-in values copied at the trigger.
	LiveIns int `json:"live_ins"`
	// Interprocedural marks slices assembled from more than one function
	// (§4.2: "interprocedural slices contribute to larger slack value").
	Interprocedural bool `json:"interprocedural"`
	// Chaining records the selected precomputation model.
	Chaining bool `json:"chaining"`
	// Predicted records whether the spawn condition was predicted.
	Predicted bool `json:"predicted"`
	// SlackCSP and SlackBSP are the per-iteration slack estimates of
	// §3.2.1.2.2 and §3.2.2.
	SlackCSP float64 `json:"slack_csp"`
	SlackBSP float64 `json:"slack_bsp"`
	// AvailableILP is the slice's available instruction-level parallelism
	// (§3.2.1.2.2); the tool reports it to justify the height-priority
	// scheduling heuristic.
	AvailableILP float64 `json:"available_ilp"`
	// TripCount is the region's estimated iteration count.
	TripCount float64 `json:"trip_count"`
	// SpawnBudget is the effective chain/countdown bound this slice was
	// emitted with: ChainBound divided across the concurrently-armed slices
	// of the portfolio so they cannot starve each other of spec contexts.
	SpawnBudget int64 `json:"spawn_budget"`
}

// NumSlices returns the slice count (Table 2, "Slices").
func (r *Report) NumSlices() int { return len(r.Slices) }

// NumInterproc returns the interprocedural slice count (Table 2).
func (r *Report) NumInterproc() int {
	n := 0
	for _, s := range r.Slices {
		if s.Interprocedural {
			n++
		}
	}
	return n
}

// AvgSize returns the average slice size (Table 2).
func (r *Report) AvgSize() float64 {
	if len(r.Slices) == 0 {
		return 0
	}
	t := 0
	for _, s := range r.Slices {
		t += s.Size
	}
	return float64(t) / float64(len(r.Slices))
}

// AvgLiveIns returns the average live-in count (Table 2).
func (r *Report) AvgLiveIns() float64 {
	if len(r.Slices) == 0 {
		return 0
	}
	t := 0
	for _, s := range r.Slices {
		t += s.LiveIns
	}
	return float64(t) / float64(len(r.Slices))
}
