package ssp

import (
	"reflect"
	"strings"
	"testing"

	"ssp/internal/ir"
	"ssp/internal/profile"
	"ssp/internal/workloads"
)

// TestReportAccountsForEveryTargetedLoad pins the covered/skipped totality
// invariant across every benchmark: a targeted delinquent load appears
// either in some slice's Targets or in Skipped — never both, never neither.
// Before the fix, loads dropped by InstrByID/selectRegion/buildSlice/
// schedule/placeTrigger vanished from the report entirely.
func TestReportAccountsForEveryTargetedLoad(t *testing.T) {
	for _, spec := range workloads.All() {
		t.Run(spec.Name, func(t *testing.T) {
			_, _, rep, _ := adaptWorkload(t, spec.Name, DefaultOptions())
			skipped := map[int]bool{}
			for _, s := range rep.Skipped {
				if s.Reason == "" {
					t.Errorf("skipped load %d has empty reason", s.ID)
				}
				if skipped[s.ID] {
					t.Errorf("load %d skipped twice", s.ID)
				}
				skipped[s.ID] = true
			}
			for _, id := range rep.DelinquentLoads {
				cov := rep.Covered(id)
				switch {
				case cov && skipped[id]:
					t.Errorf("load %d both covered and skipped", id)
				case !cov && !skipped[id]:
					t.Errorf("load %d vanished: neither covered nor skipped", id)
				}
			}
		})
	}
}

// TestSkippedRecordsUnresolvableTargets: targets that resolve to nothing or
// to a non-load must land in Skipped with a stage-specific reason.
func TestSkippedRecordsUnresolvableTargets(t *testing.T) {
	spec, err := workloads.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := spec.Build(spec.TestScale)
	prof := collectProfile(t, orig)

	// A non-load instruction ID from the entry block.
	var nonLoad int
	orig.Funcs[0].Instrs(func(_ *ir.Block, _ int, in *ir.Instr) {
		if nonLoad == 0 && in.Op != ir.OpLd {
			nonLoad = in.ID
		}
	})
	if nonLoad == 0 {
		t.Fatal("no non-load instruction found")
	}

	_, rep, err := AdaptTargets(orig, prof, DefaultOptions(), "mcf", []int{1 << 30, nonLoad})
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]string{
		1 << 30: "no instruction with this ID",
		nonLoad: "target is not a load",
	}
	if len(rep.Skipped) != len(want) {
		t.Fatalf("Skipped = %+v, want %d entries", rep.Skipped, len(want))
	}
	for _, s := range rep.Skipped {
		if want[s.ID] != s.Reason {
			t.Errorf("skip %d reason = %q, want %q", s.ID, s.Reason, want[s.ID])
		}
	}
}

// TestSkippedWhenEveryRegionRejected: with MaxSliceSize 0 no region can hold
// a slice, so every targeted load must be reported skipped, not dropped.
func TestSkippedWhenEveryRegionRejected(t *testing.T) {
	opt := DefaultOptions()
	opt.MaxSliceSize = 0
	_, _, rep, _ := adaptWorkload(t, "mcf", opt)
	if rep.NumSlices() != 0 {
		t.Fatalf("expected no slices with MaxSliceSize=0, got %d", rep.NumSlices())
	}
	if len(rep.DelinquentLoads) == 0 {
		t.Fatal("no delinquent loads targeted")
	}
	if len(rep.Skipped) != len(rep.DelinquentLoads) {
		t.Fatalf("Skipped has %d entries, want all %d targets: %+v",
			len(rep.Skipped), len(rep.DelinquentLoads), rep.Skipped)
	}
	// Region-stage rejections name the rejecting region, so a portfolio
	// report says WHICH hot region lost its slice, not just that one did.
	for _, s := range rep.Skipped {
		if !strings.Contains(s.Reason, "main:loop") {
			t.Errorf("skip %d reason %q does not name the rejecting region", s.ID, s.Reason)
		}
	}
}

// TestSkippedReasonsNameRegionPerGroup drives a two-region program into
// whole-portfolio rejection: each region group's skip reason must carry its
// own region name, so the two phases are distinguishable in the report.
func TestSkippedReasonsNameRegionPerGroup(t *testing.T) {
	p, _ := twoPhaseProgram(900)
	prof, err := profile.Collect(p, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.MaxSliceSize = 0
	_, rep, err := Adapt(p, prof, opt, "twophase")
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumSlices() != 0 || len(rep.Skipped) == 0 {
		t.Fatalf("want a fully rejected portfolio, got %d slices, %d skips", rep.NumSlices(), len(rep.Skipped))
	}
	regions := map[string]bool{}
	for _, s := range rep.Skipped {
		region, _, ok := strings.Cut(s.Reason, ": ")
		if !ok {
			t.Fatalf("skip %d reason %q has no region prefix", s.ID, s.Reason)
		}
		regions[region] = true
	}
	if len(regions) != 2 {
		t.Fatalf("skip reasons name regions %v, want both hot loops", regions)
	}
}

// TestAdaptTargetsNilMatchesAdapt: a nil target set reproduces Adapt.
func TestAdaptTargetsNilMatchesAdapt(t *testing.T) {
	spec, err := workloads.ByName("health")
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := spec.Build(spec.TestScale)
	prof := collectProfile(t, orig)
	_, repA, err := Adapt(orig, prof, DefaultOptions(), "health")
	if err != nil {
		t.Fatal(err)
	}
	_, repB, err := AdaptTargets(orig, prof, DefaultOptions(), "health", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(repA, repB) {
		t.Fatalf("reports differ:\nAdapt: %+v\nAdaptTargets(nil): %+v", repA, repB)
	}
}

// TestOptionsKeyCoversEveryField walks Options with reflection and perturbs
// each field in turn: every knob must change Key(), or two configs differing
// only in that knob would poison each other's memoized cells.
func TestOptionsKeyCoversEveryField(t *testing.T) {
	base := DefaultOptions()
	baseKey := base.Key()
	rt := reflect.TypeOf(base)
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		o := base
		fv := reflect.ValueOf(&o).Elem().Field(i)
		switch fv.Kind() {
		case reflect.Float64:
			fv.SetFloat(fv.Float() + 1)
		case reflect.Int, reflect.Int64:
			fv.SetInt(fv.Int() + 1)
		case reflect.Bool:
			fv.SetBool(!fv.Bool())
		default:
			t.Fatalf("field %s has kind %v: teach this test about it", f.Name, fv.Kind())
		}
		if o.Key() == baseKey {
			t.Errorf("perturbing %s did not change Options.Key()", f.Name)
		}
	}
}
