package ssp

import (
	"fmt"
	"sort"
	"strings"

	"ssp/internal/ir"
)

// This file is the speculation-safety verifier: a static analysis over each
// slice region's CFG that proves the paper's §2 safety argument — a
// misspeculated p-slice can never alter main-thread architectural state and
// can never run unboundedly — instead of spot-checking it. Per slice it
// discharges three obligation families:
//
//   - termination: every reachable path from the slice root reaches a kill,
//     and every loop backedge is bounded — either statically by the
//     countdown/chaining structure (§3.2.1.1 stages a trip-count bound
//     through the live-in buffer) or dynamically by a latch predicate that
//     is recomputed from loop-varying data each iteration, in which case the
//     hardware ceiling (sim.Config.MaxSpecInstrs) is the proven bound;
//   - isolation: no reachable instruction in the region can write memory,
//     transfer control outside the region, raise a chk.c, or spawn beyond
//     the chain bound. Reachability is path-sensitive over predicated
//     branches and kills: an instruction shadowed by an unconditional kill
//     discharges its obligation vacuously, while one reachable on any arm
//     must satisfy it — the weakest precondition of "region stays isolated"
//     along every arm;
//   - budget: a per-activation instruction bound (the certificate) computed
//     as the longest acyclic path plus each bounded loop's iteration bound
//     times its body, checked against the ceiling. Both cycle engines kill a
//     speculative thread at exactly MaxSpecInstrs executed instructions, so
//     a certificate at or under the ceiling is an unconditional guarantee.
//
// The analysis is deliberately structural, not symbolic: it recognizes the
// exact shapes the code generator and the paper's hand adaptations emit
// (countdown staging through the live-in buffer, latch-guarded chains) and
// rejects everything it cannot bound, so it is conservative on adversarial
// input and exact on tool output.

// DefaultSafetyCeiling is the per-activation instruction ceiling the
// verifier assumes when the caller has no machine configuration at hand. It
// mirrors sim.DefaultInOrder/DefaultOOO's MaxSpecInstrs (a check-package
// test pins the agreement).
const DefaultSafetyCeiling = 1 << 20

// SafetyClass names one family of speculation-safety violations. The
// negative-test harness (InjectUnsafe) can manufacture a program violating
// each class, and every class carries a distinct rejection reason.
type SafetyClass string

const (
	// SafetyStore: a reachable instruction in a slice region writes memory.
	SafetyStore SafetyClass = "store"
	// SafetyEscape: a reachable instruction transfers control outside the
	// slice region (branch to foreign label, call, return, halt, chk.c, or
	// a spawn whose target is not a slice).
	SafetyEscape SafetyClass = "escape"
	// SafetyNoKill: some reachable path leaves the slice region without
	// executing kill (e.g. a kill present on only one branch arm).
	SafetyNoKill SafetyClass = "no-kill"
	// SafetyUnboundedLoop: a backedge whose guard is unconditional or never
	// recomputed inside the loop — once taken, taken forever.
	SafetyUnboundedLoop SafetyClass = "unbounded-backedge"
	// SafetyUnboundedChain: a chained spawn that is unguarded or whose
	// guard cannot change from link to link — the chain respawns forever.
	SafetyUnboundedChain SafetyClass = "unbounded-chain"
	// SafetyLiveInRange: a reachable liw/lir slot immediate outside the
	// live-in buffer; the hardware wraps it, silently aliasing two live-ins.
	SafetyLiveInRange SafetyClass = "live-in-range"
	// SafetyOverBudget: the statically-certified instruction budget exceeds
	// the hardware ceiling, so the slice would be truncated mid-flight.
	SafetyOverBudget SafetyClass = "over-budget"
)

// SafetyViolation is one discharged-in-the-negative proof obligation: which
// slice, which class, and the instruction-level detail.
type SafetyViolation struct {
	Slice  string      `json:"slice"`
	Class  SafetyClass `json:"class"`
	Detail string      `json:"detail"`
}

func (v SafetyViolation) String() string {
	return fmt.Sprintf("%s: %s: %s", v.Slice, v.Class, v.Detail)
}

// SliceSafety is one slice's certificate: the per-activation instruction
// budget, the proof dimensions, and the obligations discharged.
type SliceSafety struct {
	// Slice is the root block key ("func.label").
	Slice string `json:"slice"`
	// Blocks lists the region's block keys ("func.label"), root first —
	// the dynamic oracle attributes speculative PCs to budgets through it.
	Blocks []string `json:"blocks"`
	// Budget is the certified per-activation instruction bound.
	Budget int64 `json:"budget"`
	// Static is true when Budget derives purely from the countdown/chaining
	// structure; false when a data-bounded loop makes the hardware ceiling
	// the proven bound.
	Static bool `json:"static"`
	// Paths counts the acyclic root-to-exit paths the proof covered.
	Paths int64 `json:"paths"`
	// Backedges counts the region's loop backedges.
	Backedges int `json:"backedges"`
	// ChainBound is the certified chain depth: 0 when the slice never
	// respawns, -1 when the chain is data-guarded (depth decided by the
	// precomputed values), else the static countdown bound.
	ChainBound int64 `json:"chain_bound"`
	// Obligations lists the discharged proof obligations, human-readable.
	Obligations []string `json:"obligations"`
}

// SafetyReport is the machine-readable outcome of AnalyzeSafety: one
// certificate per slice plus every violation found. It rides ssp.Report
// (the tool self-certifies each adaptation), cmd/sspcheck -safety, and the
// serving layer's 422 response for unsafe submitted IR.
type SafetyReport struct {
	// Ceiling is the per-activation instruction ceiling the certificates
	// were checked against (sim.Config.MaxSpecInstrs).
	Ceiling int64 `json:"ceiling"`
	// Slices holds one certificate per analyzed slice.
	Slices []SliceSafety `json:"slices"`
	// Violations lists every failed obligation; empty means the program is
	// proven speculation-safe.
	Violations []SafetyViolation `json:"violations,omitempty"`
}

// Err folds the report's violations into a single error, nil when the
// program is proven safe.
func (r *SafetyReport) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	v := r.Violations[0]
	if len(r.Violations) == 1 {
		return fmt.Errorf("ssp: unsafe slice %s", v)
	}
	return fmt.Errorf("ssp: unsafe slice %s (and %d more violations)", v, len(r.Violations)-1)
}

// MaxBudget returns the largest per-slice budget certified, 0 when the
// program has no slices.
func (r *SafetyReport) MaxBudget() int64 {
	var m int64
	for _, s := range r.Slices {
		if s.Budget > m {
			m = s.Budget
		}
	}
	return m
}

// Budgets returns the block-key -> budget map the dynamic oracle consumes:
// every block of a slice region maps to that slice's certified budget.
func (r *SafetyReport) Budgets() map[string]int64 {
	out := make(map[string]int64)
	for _, s := range r.Slices {
		for _, b := range s.Blocks {
			out[b] = s.Budget
		}
	}
	return out
}

// AnalyzeSafety runs the speculation-safety analysis over every slice region
// in the program (tool-generated ssp_slice_* roots and hand-adapted
// hand_slice blocks) against the given per-activation instruction ceiling,
// returning every certificate and every violation. A program without slices
// yields an empty, violation-free report.
func AnalyzeSafety(p *ir.Program, ceiling int64) *SafetyReport {
	rep := &SafetyReport{Ceiling: ceiling}
	for _, f := range p.Funcs {
		var roots []string
		for _, b := range f.Blocks {
			if rest, ok := strings.CutPrefix(b.Label, "ssp_slice_"); ok && !strings.Contains(rest, "_") {
				roots = append(roots, b.Label)
			}
			if b.Label == "hand_slice" {
				roots = append(roots, b.Label)
			}
		}
		for _, root := range roots {
			cert, viols := analyzeSlice(f, root, ceiling)
			rep.Slices = append(rep.Slices, cert)
			rep.Violations = append(rep.Violations, viols...)
		}
	}
	return rep
}

// VerifySafety is AnalyzeSafety folded to a verdict: the report plus its
// Err(). The tool's self-check and the serving layer's admission gate both
// go through it.
func VerifySafety(p *ir.Program, ceiling int64) (*SafetyReport, error) {
	rep := AnalyzeSafety(p, ceiling)
	return rep, rep.Err()
}

// node is one instruction-level CFG position: region-block index and
// instruction index within it (idx == len(Instrs) is the fallthrough
// position past the block's end).
type node struct{ b, i int }

// blockEdge is one reachable block-level control transfer inside a region.
type blockEdge struct {
	from, to int
	back     bool
	// guard is the branch creating the edge; nil for fallthrough edges.
	guard *ir.Instr
}

// chainSpawn is one reachable in-region spawn (a chain handoff).
type chainSpawn struct {
	bi int
	in *ir.Instr
}

// analyzeSlice proves (or refutes) one slice region's safety and computes
// its budget certificate.
func analyzeSlice(f *ir.Func, root string, ceiling int64) (SliceSafety, []SafetyViolation) {
	key := f.Name + "." + root
	blocks := sliceRegionBlocks(f, root)
	cert := SliceSafety{Slice: key, ChainBound: 0}
	var viols []SafetyViolation
	bad := func(class SafetyClass, format string, args ...any) {
		viols = append(viols, SafetyViolation{Slice: key, Class: class, Detail: fmt.Sprintf(format, args...)})
	}

	// Region indexing: block label -> region index, and each region block's
	// layout successor (for fallthrough).
	idx := map[string]int{}
	for i, b := range blocks {
		idx[b.Label] = i
		cert.Blocks = append(cert.Blocks, f.Name+"."+b.Label)
	}
	layoutNext := make([]*ir.Block, len(blocks)) // nil: falls off the function
	for i, b := range blocks {
		for bi, fb := range f.Blocks {
			if fb == b && bi+1 < len(f.Blocks) {
				layoutNext[i] = f.Blocks[bi+1]
			}
		}
	}

	// Path-sensitive reachability walk over instruction positions. A
	// predicated instruction always has a nullified fall-through arm; kill
	// and branch end the taken arm. Every reachable isolation obligation is
	// checked here, and the reachable block-level edges feed the loop and
	// budget analyses below.
	seen := map[node]bool{}
	var edges []blockEdge
	var spawns []chainSpawn
	fellOff := map[int]bool{} // region blocks with a reachable non-kill exit
	work := []node{{idx[root], 0}}
	push := func(n node) {
		if !seen[n] {
			seen[n] = true
			work = append(work, n)
		}
	}
	seen[work[0]] = true
	edgeSeen := map[[2]int]map[*ir.Instr]bool{}
	addEdge := func(from, to int, guard *ir.Instr) {
		k := [2]int{from, to}
		if edgeSeen[k] == nil {
			edgeSeen[k] = map[*ir.Instr]bool{}
		}
		if !edgeSeen[k][guard] {
			edgeSeen[k][guard] = true
			edges = append(edges, blockEdge{from: from, to: to, guard: guard})
		}
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		b := blocks[n.b]
		if n.i >= len(b.Instrs) {
			// Past the block's end: fall through in layout order.
			next := layoutNext[n.b]
			if next == nil {
				if !fellOff[n.b] {
					fellOff[n.b] = true
					bad(SafetyNoKill, "path through %s falls off the function without kill", b.Label)
				}
				continue
			}
			if ni, ok := idx[next.Label]; ok {
				addEdge(n.b, ni, nil)
				push(node{ni, 0})
				continue
			}
			if !fellOff[n.b] {
				fellOff[n.b] = true
				bad(SafetyNoKill, "path through %s falls out of the slice region into %s without kill", b.Label, next.Label)
			}
			continue
		}
		in := b.Instrs[n.i]
		predicated := in.Qp != ir.PTrue
		switch in.Op {
		case ir.OpSt, ir.OpFSt:
			bad(SafetyStore, "%s: reachable store %v", b.Label, in)
			push(node{n.b, n.i + 1})
		case ir.OpCall, ir.OpCallB, ir.OpRet, ir.OpHalt, ir.OpChk:
			bad(SafetyEscape, "%s: reachable %v leaves the slice region", b.Label, in)
			if predicated {
				push(node{n.b, n.i + 1})
			}
		case ir.OpKill:
			// Taken arm terminates the activation: obligation met. The
			// nullified arm continues.
			if predicated {
				push(node{n.b, n.i + 1})
			}
		case ir.OpBr:
			if ti, ok := idx[in.Target]; ok {
				addEdge(n.b, ti, in)
				push(node{ti, 0})
			} else {
				bad(SafetyEscape, "%s: reachable branch to %q leaves the slice region", b.Label, in.Target)
			}
			if predicated {
				push(node{n.b, n.i + 1})
			}
		case ir.OpSpawn:
			if rest, ok := strings.CutPrefix(in.Target, "ssp_slice_"); (ok && !strings.Contains(rest, "_")) || in.Target == "hand_slice" {
				spawns = append(spawns, chainSpawn{bi: n.b, in: in})
			} else {
				bad(SafetyEscape, "%s: reachable spawn targets %q, which is not a slice root", b.Label, in.Target)
			}
			push(node{n.b, n.i + 1})
		case ir.OpLiw, ir.OpLir:
			if in.Imm < 0 || in.Imm >= ir.LIBSlots {
				bad(SafetyLiveInRange, "%s: reachable %v slot %d outside live-in buffer [0,%d)", b.Label, in.Op, in.Imm, ir.LIBSlots)
			}
			push(node{n.b, n.i + 1})
		default:
			push(node{n.b, n.i + 1})
		}
	}

	// Reachable instruction count per block (the budget weights) and the
	// reachable instruction list (the loop analyses below scan it).
	weight := make([]int64, len(blocks))
	var reachInstrs int64
	reachable := func(bi, i int) bool { return seen[node{bi, i}] }
	for bi, b := range blocks {
		for i := range b.Instrs {
			if reachable(bi, i) {
				weight[bi]++
				reachInstrs++
			}
		}
	}

	// Loop structure: DFS back edges over the reachable block graph, then
	// dominators to separate structured (natural) loops from irreducible
	// tangles the budget cannot decompose.
	succs := make([][]int, len(blocks))
	for _, e := range edges {
		succs[e.from] = append(succs[e.from], e.to)
	}
	back := findBackEdges(len(blocks), succs, idx[root])
	for i := range edges {
		if back[[2]int{edges[i].from, edges[i].to}] {
			edges[i].back = true
		}
	}
	dom := dominators(len(blocks), succs, idx[root])

	// Classify every backedge: unconditional or stuck guards are
	// violations; countdown guards yield a static iteration bound; latch
	// guards recomputed from loop-varying data are ceiling-bounded.
	type loop struct {
		head, tail int
		body       []int
		bound      int64 // 0: dynamic (ceiling-bounded)
	}
	var loops []loop
	dynamic := false
	for _, e := range edges {
		if !e.back {
			continue
		}
		cert.Backedges++
		head, tail := e.to, e.from
		body := loopBody(len(blocks), edges, head, tail)
		if e.guard == nil || e.guard.Qp == ir.PTrue {
			bad(SafetyUnboundedLoop, "unconditional backedge %s -> %s", blocks[tail].Label, blocks[head].Label)
			continue
		}
		q := e.guard.Qp
		def := guardDef(blocks, body, reachable, q)
		if def == nil {
			bad(SafetyUnboundedLoop, "backedge %s -> %s: guard p%d is never recomputed inside the loop — once true it stays true", blocks[tail].Label, blocks[head].Label, q)
			continue
		}
		if !loopVarying(blocks, body, reachable, def) {
			bad(SafetyUnboundedLoop, "backedge %s -> %s: guard p%d compares loop-invariant values", blocks[tail].Label, blocks[head].Label, q)
			continue
		}
		if !dom[tail][head] {
			// Irreducible: sound fallback is the hardware ceiling.
			dynamic = true
			cert.Obligations = append(cert.Obligations, fmt.Sprintf("termination: irreducible backedge %s -> %s bounded by the hardware ceiling (%d)", blocks[tail].Label, blocks[head].Label, ceiling))
			loops = append(loops, loop{head: head, tail: tail, body: body, bound: 0})
			continue
		}
		if b, d := countdownBound(f, blocks, body, reachable, root, def); b > 0 {
			loops = append(loops, loop{head: head, tail: tail, body: body, bound: b})
			cert.Obligations = append(cert.Obligations, fmt.Sprintf("termination: backedge %s -> %s bounded by countdown (%d iterations, step %d)", blocks[tail].Label, blocks[head].Label, b, d))
		} else {
			dynamic = true
			loops = append(loops, loop{head: head, tail: tail, body: body, bound: 0})
			cert.Obligations = append(cert.Obligations, fmt.Sprintf("termination: backedge %s -> %s latch-guarded (p%d recomputed per iteration); hardware ceiling %d applies", blocks[tail].Label, blocks[head].Label, q, ceiling))
		}
	}

	// Classify every chain handoff (reachable in-region spawn).
	for _, cs := range spawns {
		in := cs.in
		if in.Qp == ir.PTrue {
			bad(SafetyUnboundedChain, "%s: unguarded chained spawn of %q respawns forever", blocks[cs.bi].Label, in.Target)
			continue
		}
		all := allRegionIndexes(blocks)
		def := guardDef(blocks, all, reachable, in.Qp)
		if def == nil {
			bad(SafetyUnboundedChain, "%s: chained spawn guard p%d is never computed in the slice — chain depth unbounded", blocks[cs.bi].Label, in.Qp)
			continue
		}
		if b, _ := countdownBound(f, blocks, all, reachable, root, def); b > 0 {
			if b > cert.ChainBound {
				cert.ChainBound = b
			}
			cert.Obligations = append(cert.Obligations, fmt.Sprintf("chain: spawn in %s countdown-guarded, depth <= %d", blocks[cs.bi].Label, b))
			continue
		}
		if !regionVarying(blocks, all, reachable, def) {
			bad(SafetyUnboundedChain, "%s: chained spawn guard p%d depends only on unmodified live-ins — every link is identical", blocks[cs.bi].Label, in.Qp)
			continue
		}
		cert.ChainBound = -1
		cert.Obligations = append(cert.Obligations, fmt.Sprintf("chain: spawn in %s data-guarded (p%d recomputed per link from advanced values)", blocks[cs.bi].Label, in.Qp))
	}

	// Budget certificate: collapse bounded loops innermost-first into their
	// headers, then take the longest acyclic path. Any ceiling-bounded loop
	// collapses the whole certificate to the ceiling — still a sound bound,
	// because both engines kill a speculative thread at exactly the ceiling.
	sort.SliceStable(loops, func(i, j int) bool { return len(loops[i].body) < len(loops[j].body) })
	ew := append([]int64(nil), weight...)
	for _, l := range loops {
		if l.bound == 0 {
			continue
		}
		var body int64
		for _, bi := range l.body {
			body = satAdd(body, ew[bi], ceiling)
		}
		ew[l.head] = satAdd(ew[l.head], satMul(l.bound, body, ceiling), ceiling)
	}
	if dynamic {
		cert.Budget = ceiling
		cert.Static = false
	} else {
		cert.Budget = longestPath(len(blocks), edges, ew, idx[root], ceiling)
		cert.Static = true
		if cert.Budget > ceiling {
			bad(SafetyOverBudget, "certified budget %d exceeds the hardware ceiling %d", cert.Budget, ceiling)
		}
	}
	cert.Paths = countPaths(len(blocks), edges, idx[root])

	if len(viols) == 0 {
		cert.Obligations = append(cert.Obligations,
			fmt.Sprintf("isolation: %d reachable instructions free of stores, calls, and region escapes", reachInstrs),
			fmt.Sprintf("termination: all %d acyclic paths from %s reach kill", cert.Paths, root),
			fmt.Sprintf("budget: %d <= ceiling %d", cert.Budget, ceiling))
	}
	return cert, viols
}

// findBackEdges classifies the graph's edges by iterative DFS from root and
// returns the set of back edges (target on the active DFS stack). Removing
// them leaves the graph acyclic.
func findBackEdges(n int, succs [][]int, root int) map[[2]int]bool {
	back := map[[2]int]bool{}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, n)
	type frame struct{ b, next int }
	stack := []frame{{root, 0}}
	color[root] = gray
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(succs[f.b]) {
			s := succs[f.b][f.next]
			f.next++
			switch color[s] {
			case white:
				color[s] = gray
				stack = append(stack, frame{s, 0})
			case gray:
				back[[2]int{f.b, s}] = true
			}
			continue
		}
		color[f.b] = black
		stack = stack[:len(stack)-1]
	}
	return back
}

// dominators computes the dominator relation over the reachable block graph
// by the standard iterative dataflow: dom[b] = {b} ∪ ⋂ dom(preds).
func dominators(n int, succs [][]int, root int) [][]bool {
	preds := make([][]int, n)
	for b, ss := range succs {
		for _, s := range ss {
			preds[s] = append(preds[s], b)
		}
	}
	dom := make([][]bool, n)
	for b := range dom {
		dom[b] = make([]bool, n)
		if b == root {
			dom[b][root] = true
			continue
		}
		for i := range dom[b] {
			dom[b][i] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for b := 0; b < n; b++ {
			if b == root {
				continue
			}
			next := make([]bool, n)
			first := true
			for _, p := range preds[b] {
				if first {
					copy(next, dom[p])
					first = false
					continue
				}
				for i := range next {
					next[i] = next[i] && dom[p][i]
				}
			}
			if first { // unreachable: keep the all-set
				continue
			}
			next[b] = true
			for i := range next {
				if next[i] != dom[b][i] {
					dom[b] = next
					changed = true
					break
				}
			}
		}
	}
	return dom
}

// loopBody returns the blocks of the loop closed by backedge tail -> head:
// head plus everything that reaches tail without passing through head
// (computed on the reversed edge set).
func loopBody(n int, edges []blockEdge, head, tail int) []int {
	preds := make([][]int, n)
	for _, e := range edges {
		preds[e.to] = append(preds[e.to], e.from)
	}
	in := make([]bool, n)
	in[head] = true
	in[tail] = true
	work := []int{tail}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		if b == head {
			continue
		}
		for _, p := range preds[b] {
			if !in[p] {
				in[p] = true
				work = append(work, p)
			}
		}
	}
	var body []int
	for b, ok := range in {
		if ok {
			body = append(body, b)
		}
	}
	return body
}

// allRegionIndexes returns every region block index (the "body" a chain
// guard may be computed in: the whole activation).
func allRegionIndexes(blocks []*ir.Block) []int {
	out := make([]int, len(blocks))
	for i := range out {
		out[i] = i
	}
	return out
}

// guardDef finds a reachable compare inside the given blocks defining
// predicate q (on either output), preferring the last one found in block
// order so same-block recomputation wins.
func guardDef(blocks []*ir.Block, body []int, reachable func(int, int) bool, q ir.PR) *ir.Instr {
	var def *ir.Instr
	for _, bi := range body {
		for i, in := range blocks[bi].Instrs {
			if !reachable(bi, i) {
				continue
			}
			if in.Op == ir.OpCmp && (in.Pd1 == q || in.Pd2 == q) {
				def = in
			}
		}
	}
	return def
}

// loopVarying reports whether any GR operand of the guard compare is
// (re)defined by a reachable instruction inside the loop body — the
// precondition for the guard to ever change value between iterations.
func loopVarying(blocks []*ir.Block, body []int, reachable func(int, int) bool, def *ir.Instr) bool {
	return operandDefined(blocks, body, reachable, def, func(in *ir.Instr) bool { return true })
}

// regionVarying reports whether any GR operand of the guard compare has a
// non-live-in-restore definition in the region: the chain's guard depends on
// a value the activation computes (the advanced recurrence), so successive
// links see different data.
func regionVarying(blocks []*ir.Block, body []int, reachable func(int, int) bool, def *ir.Instr) bool {
	return operandDefined(blocks, body, reachable, def, func(in *ir.Instr) bool { return in.Op != ir.OpLir })
}

func operandDefined(blocks []*ir.Block, body []int, reachable func(int, int) bool, def *ir.Instr, admit func(*ir.Instr) bool) bool {
	ops := guardOperands(def)
	var defs []ir.Loc
	for _, bi := range body {
		for i, in := range blocks[bi].Instrs {
			if in == def || !reachable(bi, i) || !admit(in) {
				continue
			}
			defs = in.AppendDefs(defs[:0])
			for _, l := range defs {
				if r, ok := l.IsGR(); ok && r != 0 && ops[r] {
					return true
				}
			}
		}
	}
	return false
}

// guardOperands returns the GR operands of a compare (r0 excluded: it is
// hardwired zero and cannot vary).
func guardOperands(def *ir.Instr) map[ir.Reg]bool {
	ops := map[ir.Reg]bool{}
	var uses []ir.Loc
	uses = def.AppendUses(uses)
	for _, l := range uses {
		if r, ok := l.IsGR(); ok && r != 0 {
			ops[r] = true
		}
	}
	return ops
}

// countdownBound recognizes the §3.2.1.1 countdown structure around a guard
// compare and returns the static iteration bound (and the decrement step),
// or (0, 0) when the guard is not a countdown. The structure is: the guard
// is `cmp.gt q,_ = counter, 0`; the counter is strictly decremented by a
// constant inside the body; it is initialized from a live-in buffer slot in
// the region; and every spawner outside this slice's own region stages a
// compile-time constant into that slot. The bound is the largest constant
// staged — chained respawns restage the decremented counter, so the stub's
// constant dominates the chain.
func countdownBound(f *ir.Func, blocks []*ir.Block, body []int, reachable func(int, int) bool, root string, def *ir.Instr) (int64, int64) {
	if def.Op != ir.OpCmp || def.Cond != ir.CondGT || !def.UseImm || def.Imm != 0 {
		return 0, 0
	}
	counter := def.Ra
	if counter == 0 {
		return 0, 0
	}
	// Strict constant decrement of the counter inside the body.
	var step int64
	for _, bi := range body {
		for i, in := range blocks[bi].Instrs {
			if !reachable(bi, i) {
				continue
			}
			if in.Op == ir.OpAdd && in.UseImm && in.Rd == counter && in.Ra == counter && in.Imm < 0 {
				step = -in.Imm
			}
		}
	}
	if step == 0 {
		return 0, 0
	}
	// Counter initialized from a live-in slot somewhere in the region.
	slot := int64(-1)
	for _, b := range blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpLir && in.Rd == counter {
				slot = in.Imm
			}
		}
	}
	if slot < 0 {
		return 0, 0
	}
	// Every external spawner of this slice stages a constant into the slot;
	// the largest constant bounds the countdown.
	var bound int64
	inRegion := map[string]bool{}
	for _, b := range blocks {
		inRegion[b.Label] = true
	}
	for _, b := range f.Blocks {
		if inRegion[b.Label] {
			continue // chained restage: bounded by the external constant
		}
		spawnsRoot := false
		for _, in := range b.Instrs {
			if in.Op == ir.OpSpawn && in.Target == root {
				spawnsRoot = true
			}
		}
		if !spawnsRoot {
			continue
		}
		staged := map[ir.Reg]int64{} // reg -> last constant moved into it
		hasConst := map[ir.Reg]bool{}
		found := false
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpMovI:
				staged[in.Rd] = in.Imm
				hasConst[in.Rd] = true
			case ir.OpLiw:
				if in.Imm == slot && hasConst[in.Ra] {
					if staged[in.Ra] > bound {
						bound = staged[in.Ra]
					}
					found = true
				}
			}
		}
		if !found {
			return 0, 0 // a spawner stages a non-constant: not statically bounded
		}
	}
	if bound <= 0 {
		return 0, 0
	}
	// iterations <= ceil(bound/step) <= bound; report the tight bound.
	return (bound + step - 1) / step, step
}

// longestPath computes the longest instruction path from root over the
// backedge-free block graph using the (loop-collapsed) effective weights.
func longestPath(n int, edges []blockEdge, ew []int64, root int, ceiling int64) int64 {
	succs := make([][]int, n)
	for _, e := range edges {
		if !e.back {
			succs[e.from] = append(succs[e.from], e.to)
		}
	}
	memo := make([]int64, n)
	done := make([]bool, n)
	var walk func(b int) int64
	walk = func(b int) int64 {
		if done[b] {
			return memo[b]
		}
		done[b] = true // backedges removed: no cycles, safe to mark first
		var best int64
		for _, s := range succs[b] {
			if c := walk(s); c > best {
				best = c
			}
		}
		memo[b] = satAdd(ew[b], best, ceiling)
		return memo[b]
	}
	return walk(root)
}

// countPaths counts acyclic root-to-exit block paths (saturating), the
// "proof size" the certificate reports.
func countPaths(n int, edges []blockEdge, root int) int64 {
	succs := make([][]int, n)
	for _, e := range edges {
		if !e.back {
			succs[e.from] = append(succs[e.from], e.to)
		}
	}
	const limit = int64(1) << 30
	memo := make([]int64, n)
	done := make([]bool, n)
	var walk func(b int) int64
	walk = func(b int) int64 {
		if done[b] {
			return memo[b]
		}
		done[b] = true
		var total int64
		for _, s := range succs[b] {
			total += walk(s)
			if total > limit {
				total = limit
			}
		}
		if total == 0 {
			total = 1
		}
		memo[b] = total
		return total
	}
	return walk(root)
}

// satAdd and satMul saturate just past the ceiling: any budget beyond it is
// equally over-budget, and saturation keeps adversarial constants from
// overflowing int64.
func satAdd(a, b, ceiling int64) int64 {
	s := a + b
	if s < a || s > ceiling+1 {
		return ceiling + 1
	}
	return s
}

func satMul(a, b, ceiling int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > (ceiling+1)/b {
		return ceiling + 1
	}
	return a * b
}
