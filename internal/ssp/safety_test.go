package ssp

import (
	"strings"
	"testing"

	"ssp/internal/handtuned"
	"ssp/internal/ir"
	"ssp/internal/workloads"
)

// TestSafetyCertifiesAdaptedBenchmarks proves the positive half of the
// speculation-safety contract over the whole benchmark suite: every adapted
// benchmark, under both the chaining and the basic precomputation models,
// carries a violation-free safety report whose per-slice budgets sit at or
// under the hardware ceiling.
func TestSafetyCertifiesAdaptedBenchmarks(t *testing.T) {
	variants := []struct {
		name string
		opt  Options
	}{
		{"chaining", DefaultOptions()},
		{"basic", func() Options { o := DefaultOptions(); o.Chaining = false; return o }()},
		{"unroll2", func() Options { o := DefaultOptions(); o.ChainUnroll = 2; return o }()},
	}
	for _, spec := range workloads.All() {
		for _, v := range variants {
			_, enh, rep, _ := adaptWorkload(t, spec.Name, v.opt)
			if rep.Safety == nil {
				t.Fatalf("%s/%s: adaptation report carries no safety certificate", spec.Name, v.name)
			}
			if len(rep.Safety.Violations) != 0 {
				t.Errorf("%s/%s: self-certified report carries violations: %v", spec.Name, v.name, rep.Safety.Violations)
			}
			if got, want := len(rep.Safety.Slices), rep.NumSlices(); got != want {
				t.Errorf("%s/%s: %d certificates for %d slices", spec.Name, v.name, got, want)
			}
			if mb := rep.Safety.MaxBudget(); mb > rep.Safety.Ceiling {
				t.Errorf("%s/%s: max budget %d exceeds ceiling %d", spec.Name, v.name, mb, rep.Safety.Ceiling)
			}
			for _, s := range rep.Safety.Slices {
				if s.Budget <= 0 {
					t.Errorf("%s/%s: slice %s certified a non-positive budget %d", spec.Name, v.name, s.Slice, s.Budget)
				}
				if len(s.Obligations) == 0 {
					t.Errorf("%s/%s: slice %s discharged no obligations", spec.Name, v.name, s.Slice)
				}
				if s.Paths <= 0 {
					t.Errorf("%s/%s: slice %s proof covers no paths", spec.Name, v.name, s.Slice)
				}
			}
			// Re-verifying the emitted binary from scratch must agree with
			// the self-certification.
			rep2, err := VerifySafety(enh, DefaultSafetyCeiling)
			if err != nil {
				t.Errorf("%s/%s: re-verification failed: %v", spec.Name, v.name, err)
			}
			if rep2.MaxBudget() != rep.Safety.MaxBudget() {
				t.Errorf("%s/%s: re-verified budget %d != certified %d", spec.Name, v.name, rep2.MaxBudget(), rep.Safety.MaxBudget())
			}
		}
	}
}

// TestSafetyRejectsMutatedBenchmarks is the mutation-based negative corpus:
// for every adapted benchmark, inject one violation per safety class and
// assert the verifier rejects each mutant with a violation of exactly the
// injected class — no vacuous passes, no wrong-reason rejections.
func TestSafetyRejectsMutatedBenchmarks(t *testing.T) {
	for _, spec := range workloads.All() {
		_, enh, rep, _ := adaptWorkload(t, spec.Name, DefaultOptions())
		if rep.NumSlices() == 0 {
			t.Fatalf("%s: no slices emitted — the negative sweep would be vacuous", spec.Name)
		}
		if err := CheckUnsafe(enh, DefaultSafetyCeiling); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
	}
}

// TestSafetyCertifiesHandAdaptations pins the hand-tuned binaries: their
// latch-guarded chains must verify as data-guarded (ChainBound -1) with a
// static straight-line budget.
func TestSafetyCertifiesHandAdaptations(t *testing.T) {
	for _, name := range []string{"mcf", "health"} {
		spec, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		orig, _ := spec.Build(spec.TestScale)
		hand, err := handtuned.Adapt(name, orig)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := VerifySafety(hand, DefaultSafetyCeiling)
		if err != nil {
			t.Fatalf("%s hand: %v", name, err)
		}
		if len(rep.Slices) == 0 {
			t.Fatalf("%s hand: no slice certified", name)
		}
		for _, s := range rep.Slices {
			if !s.Static {
				t.Errorf("%s hand: slice %s not statically budgeted", name, s.Slice)
			}
			if s.ChainBound != -1 {
				t.Errorf("%s hand: slice %s chain bound %d, want -1 (data-guarded)", name, s.Slice, s.ChainBound)
			}
		}
	}
}

// TestSafetyBudgetArithmetic pins the certificate numbers on a hand-built
// countdown loop: a stub staging bound 5, a two-instruction prologue, a
// five-instruction loop body, and a kill tail must certify exactly
// prologue + (1+bound)*body + tail instructions (one acyclic traversal plus
// bound collapsed iterations).
func TestSafetyBudgetArithmetic(t *testing.T) {
	p := ir.NewProgram("main")
	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.Chk("ssp_stub_0")
	e.Halt()
	stub := fb.Block("ssp_stub_0")
	stub.Liw(0, 7)
	stub.MovI(ScratchGR, 5)
	stub.Liw(1, ScratchGR)
	stub.Spawn("ssp_slice_0")
	root := fb.Block("ssp_slice_0")
	root.Lir(7, 0)
	root.Lir(ScratchGR, 1)
	loop := fb.Block("ssp_slice_0_loop")
	loop.Lfetch(7, 0)
	loop.AddI(7, 7, 8)
	loop.AddI(ScratchGR, ScratchGR, -1)
	loop.CmpI(ir.CondGT, 63, 62, ScratchGR, 0)
	loop.On(63).Br("ssp_slice_0_loop")
	done := fb.Block("ssp_slice_0_done")
	done.Kill()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	rep, err := VerifySafety(p, DefaultSafetyCeiling)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Slices) != 1 {
		t.Fatalf("certified %d slices, want 1", len(rep.Slices))
	}
	s := rep.Slices[0]
	if !s.Static {
		t.Fatalf("countdown loop not statically budgeted: %+v", s)
	}
	// prologue 2 + loop body 5 (acyclic traversal) + 5*5 (collapsed
	// iterations) + kill 1 = 33.
	if want := int64(2 + 5 + 5*5 + 1); s.Budget != want {
		t.Fatalf("budget %d, want %d (%+v)", s.Budget, want, s)
	}
	if s.Backedges != 1 {
		t.Fatalf("backedges %d, want 1", s.Backedges)
	}
}

// TestSafetyRejectsStuckLoopGuard pins the loop-variance obligation: a
// backedge guard recomputed each iteration from values the loop never
// changes is still an infinite loop, and the verifier must say so.
func TestSafetyRejectsStuckLoopGuard(t *testing.T) {
	p := ir.NewProgram("main")
	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.Halt()
	root := fb.Block("ssp_slice_0")
	root.Lir(7, 0)
	loop := fb.Block("ssp_slice_0_loop")
	loop.Lfetch(7, 0)
	loop.CmpI(ir.CondGT, 20, 21, 7, 0) // r7 never changes in the loop
	loop.On(20).Br("ssp_slice_0_loop")
	done := fb.Block("ssp_slice_0_done")
	done.Kill()
	rep := AnalyzeSafety(p, DefaultSafetyCeiling)
	found := false
	for _, v := range rep.Violations {
		if v.Class == SafetyUnboundedLoop && strings.Contains(v.Detail, "loop-invariant") {
			found = true
		}
	}
	if !found {
		t.Fatalf("stuck guard accepted; violations: %v", rep.Violations)
	}
}

// TestSafetyAcceptsProgramsWithoutSlices: a plain program yields an empty,
// violation-free report.
func TestSafetyAcceptsProgramsWithoutSlices(t *testing.T) {
	spec, err := workloads.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := spec.Build(spec.TestScale)
	rep, err := VerifySafety(orig, DefaultSafetyCeiling)
	if err != nil {
		t.Fatalf("plain program rejected: %v", err)
	}
	if len(rep.Slices) != 0 || len(rep.Violations) != 0 {
		t.Fatalf("plain program produced a non-empty report: %+v", rep)
	}
}
