package ssp

import (
	"math"
	"sort"

	"ssp/internal/cfg"
	"ssp/internal/ir"
)

// Model is the precomputation model selected for a slice (§3.2, §3.4.1).
type Model uint8

const (
	// ModelChaining generates the do-across prefetching loop of Figure
	// 5(b): each speculative thread runs one iteration and spawns the
	// next (§3.2.1).
	ModelChaining Model = iota
	// ModelBasicLoop generates the sequential prefetching loop of Figure
	// 6(b): a single speculative thread iterates the scheduled slice
	// (§3.2.2).
	ModelBasicLoop
	// ModelBasicOneShot generates a straight-line slice executed once per
	// trigger — used for loop-body regions whose recurrence passes
	// through memory the main thread is still writing (treeadd.df) and
	// for non-loop regions.
	ModelBasicOneShot
)

func (m Model) String() string {
	switch m {
	case ModelChaining:
		return "chaining"
	case ModelBasicLoop:
		return "basic-loop"
	case ModelBasicOneShot:
		return "basic-oneshot"
	}
	return "?"
}

// Schedule is the scheduled form of a slice plus the slack/benefit metrics
// driving region and model selection.
type Schedule struct {
	Model     Model
	Predicted bool

	// Critical and NonCritical are node indices in emission order: the
	// critical sub-slice (the SCC-tightened recurrence plus spawn
	// condition) runs before the spawn point, the rest after (§3.2.1.2).
	Critical    []int
	NonCritical []int
	// Lfetch marks target nodes to emit as prefetches: a delinquent load
	// becomes lfetch when nothing in the slice consumes its value
	// (Figure 4's load -> prefetch rewrite).
	Lfetch map[int]bool

	// Heights per §3.2.1.2.2.
	HRegion, HCritical, HSlice float64
	// RateCSP/RateBSP are the per-iteration slack growth rates of
	// slack_csp and slack_bsp; Rate is the selected model's.
	RateCSP, RateBSP, Rate float64
	// SlackGrows is false for one-shot slices (constant slack).
	SlackGrows bool

	// AvailableILP is the slice dependence graph's available parallelism
	// (total latency / critical path, §3.2.1.2.2); near 1 means the slice
	// is a serial chain, the regime where height-priority list scheduling
	// is near-optimal.
	AvailableILP float64

	// TripsPerEntry, Entries, ItersTotal characterize the region's
	// profiled iteration structure.
	TripsPerEntry, Entries, ItersTotal float64
	// ReducedFraction is reduced_misscycle / total target miss cycles —
	// compared against Options.ReducedMissCutoff (§3.4.1).
	ReducedFraction float64

	// Spawn predicate wiring when the actual latch condition is used:
	// spawn on latch-cmp's Pd1 (or Pd2 when the continue sense is the
	// complement).
	SpawnOnPd2 bool
}

// sliceHeights computes node heights over the slice graph restricted to a
// node set, following non-carried edges (§3.2.1.2.2's maximum node height
// priority). Targets converted to lfetch cost a single cycle: prefetches are
// fire-and-forget.
func (t *Tool) sliceHeights(sl *Slice, set map[int]bool, lfetch map[int]bool) map[int]float64 {
	h := make(map[int]float64, len(set))
	var visit func(int) float64
	visiting := map[int]bool{}
	// A slice that runs ahead of the main thread takes the cache misses
	// the main thread's profile attributed to a line-mate: a slice load
	// addressing the same record as a delinquent target (same function,
	// same base register) is priced at least at the target's latency, so
	// the slack estimate doesn't credit the speculative thread with the
	// main thread's warm lines.
	type baseKey struct {
		fn   string
		base ir.Reg
	}
	targetLat := map[baseKey]float64{}
	for _, n := range sl.Nodes {
		if n.Target && n.In.Op == ir.OpLd {
			k := baseKey{n.Fn, n.In.Ra}
			if l := t.prof.ExpectedLoadLatency(n.In.ID); l > targetLat[k] {
				targetLat[k] = l
			}
		}
	}
	lat := func(i int) float64 {
		if lfetch[i] {
			return 1
		}
		n := sl.Nodes[i]
		l := t.instrLatency(n.In)
		if n.In.Op == ir.OpLd {
			if tl := targetLat[baseKey{n.Fn, n.In.Ra}]; tl > l {
				l = tl
			}
		}
		return l
	}
	visit = func(i int) float64 {
		if v, ok := h[i]; ok {
			return v
		}
		if visiting[i] {
			return 0
		}
		visiting[i] = true
		best := 0.0
		for _, e := range sl.Succs[i] {
			if e.Carried || !set[e.To] || e.To == i {
				continue
			}
			if v := visit(e.To); v > best {
				best = v
			}
		}
		visiting[i] = false
		v := lat(i) + best
		h[i] = v
		return v
	}
	for i := range set {
		visit(i)
	}
	return h
}

// closureFwd returns the backward closure of seeds over non-carried slice
// edges: everything that must execute within one iteration to produce the
// seeds' values. Carried inputs are satisfied by live-in values.
func closureFwd(sl *Slice, seeds []int) map[int]bool {
	set := map[int]bool{}
	stack := append([]int(nil), seeds...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if set[n] {
			continue
		}
		set[n] = true
		for _, e := range sl.Preds[n] {
			if !e.Carried && !set[e.From] {
				stack = append(stack, e.From)
			}
		}
	}
	return set
}

// listSchedule orders the node set by forward list scheduling with maximum
// cumulative cost (dependence height) priority; ties break toward the lower
// original instruction address (§3.2.1.2.2).
func (t *Tool) listSchedule(sl *Slice, set map[int]bool, heights map[int]float64) []int {
	nodes := make([]int, 0, len(set))
	for n := range set {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool {
		a, b := nodes[i], nodes[j]
		if heights[a] != heights[b] {
			return heights[a] > heights[b]
		}
		return sl.Nodes[a].Order < sl.Nodes[b].Order
	})
	scheduled := map[int]bool{}
	var order []int
	for len(order) < len(nodes) {
		progress := false
		for _, n := range nodes {
			if scheduled[n] {
				continue
			}
			ready := true
			for _, e := range sl.Preds[n] {
				if !e.Carried && set[e.From] && !scheduled[e.From] && e.From != n {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			order = append(order, n)
			scheduled[n] = true
			progress = true
			break
		}
		if !progress {
			// Defensive: a residual cycle through non-carried edges
			// (possible only via imprecise cross-procedure edges) —
			// fall back to priority order for the remainder.
			for _, n := range nodes {
				if !scheduled[n] {
					order = append(order, n)
					scheduled[n] = true
				}
			}
		}
	}
	return order
}

// regionIters returns the region's profiled iteration structure: total
// header executions, entry count, and trips per entry (§3.4.1: "the trip
// counts are derived from block profiling if available").
func (t *Tool) regionIters(region *cfg.Region) (iters, entries, trips float64) {
	f := region.F
	if region.Loop == nil {
		e := float64(t.prof.BlockCount(f.Name, f.Blocks[0].Label))
		if e == 0 {
			e = 1
		}
		return e, e, 1
	}
	header := region.Loop.Header
	iters = float64(t.prof.BlockCount(f.Name, f.Blocks[header].Label))
	an := t.an[f.Name]
	for _, p := range an.fr.G.Preds[header] {
		if !region.Loop.Contains(p) {
			entries += float64(t.prof.BlockCount(f.Name, f.Blocks[p].Label))
		}
	}
	if entries == 0 {
		entries = 1
	}
	if iters == 0 {
		iters = entries
	}
	trips = iters / entries
	if trips < 1 {
		trips = 1
	}
	return iters, entries, trips
}

// schedule derives the full Schedule for a slice: dependence reduction
// (rotation, condition prediction), SCC-based critical/non-critical
// partitioning, list scheduling, slack computation, and model selection.
// It returns nil when the slice yields no usable schedule.
func (t *Tool) schedule(sl *Slice) *Schedule {
	sch := &Schedule{Lfetch: map[int]bool{}}
	all := map[int]bool{}
	for i := range sl.Nodes {
		all[i] = true
	}
	// Delinquent loads whose values nothing consumes become prefetches.
	for i, n := range sl.Nodes {
		if !n.Target {
			continue
		}
		consumed := false
		for _, e := range sl.Succs[i] {
			if e.To != i {
				consumed = true
			}
		}
		if !consumed {
			sch.Lfetch[i] = true
		}
	}

	// Region height: the main thread's per-iteration dependence height.
	region := sl.Region
	an := t.an[region.F.Name]
	var regionNodes []int
	for _, bi := range region.Blocks {
		for _, in := range region.F.Blocks[bi].Instrs {
			if n := an.dg.NodeByID(in.ID); n >= 0 {
				regionNodes = append(regionNodes, n)
			}
		}
	}
	sch.HRegion = an.dg.MaxHeight(regionNodes, t.latFunc())

	// Spawn-condition chain and prediction decision (§3.2.1.1): when the
	// chain includes a load, waiting for the actual condition would
	// serialize the chaining threads on memory, so the condition is
	// predicted and the dependences leading to it dropped.
	latchIdx := -1
	if sl.Latch != nil {
		latchIdx = sl.NodeOf(sl.Latch)
	}
	var condChain map[int]bool
	if latchIdx >= 0 {
		condChain = closureFwd(sl, []int{latchIdx})
	}
	condHasLoad := false
	for n := range condChain {
		if sl.Nodes[n].In.Op == ir.OpLd {
			condHasLoad = true
		}
	}
	canActualCond := latchIdx >= 0 && sl.LatchCmp != nil && sl.Latch.Qp != ir.PTrue
	if canActualCond {
		// Continue sense: does the latch branch jump back to the header?
		header := region.F.Blocks[region.Loop.Header].Label
		continueOnQp := sl.Latch.Target == header
		onPd1 := sl.Latch.Qp == sl.LatchCmp.Pd1
		sch.SpawnOnPd2 = continueOnQp != onPd1
	}
	sch.Predicted = (t.opt.CondPrediction && condHasLoad) || !canActualCond

	// Critical sub-slice (§3.2.1.2.1): the closure that advances the
	// live-in values the next iteration's prefetch computation actually
	// consumes — the SCC-tightened recurrence — plus, when the condition
	// is real, the spawn-condition chain. Live-ins that only feed a
	// predicted-away condition (e.g. a traversal bound whose compare was
	// predicted) are not advanced before the spawn: this is the
	// dependence-reduction payoff of condition prediction (§3.2.1.1).
	liveInSet := map[ir.Reg]bool{}
	for _, r := range sl.LiveIns {
		liveInSet[r] = true
	}
	var targetSeeds []int
	for i, n := range sl.Nodes {
		if n.Target {
			targetSeeds = append(targetSeeds, i)
		}
	}
	targetClosure := closureFwd(sl, targetSeeds)
	needed := map[ir.Reg]bool{}
	markConsumed := func(set map[int]bool) {
		var useLocs []ir.Loc
		for n := range set {
			// A node consumes the live-in/carried value of register r
			// when it uses r without an in-slice forward definition.
			useLocs = sl.Nodes[n].In.AppendUses(useLocs[:0])
			for _, l := range useLocs {
				r, ok := l.IsGR()
				if !ok || !liveInSet[r] {
					continue
				}
				fwdDef := false
				for _, e := range sl.Preds[n] {
					if !e.Carried && e.From != n {
						var dl []ir.Loc
						dl = sl.Nodes[e.From].In.AppendDefs(dl)
						for _, d := range dl {
							if dr, dok := d.IsGR(); dok && dr == r {
								fwdDef = true
							}
						}
					}
				}
				if !fwdDef {
					needed[r] = true
				}
			}
		}
	}
	markConsumed(targetClosure)
	if !sch.Predicted && latchIdx >= 0 {
		markConsumed(closureFwd(sl, []int{latchIdx}))
	}
	var advanceDefs []int
	var defLocs []ir.Loc
	for i, n := range sl.Nodes {
		defLocs = n.In.AppendDefs(defLocs[:0])
		for _, l := range defLocs {
			if r, ok := l.IsGR(); ok && needed[r] {
				advanceDefs = append(advanceDefs, i)
			}
		}
	}
	seeds := advanceDefs
	if !sch.Predicted && latchIdx >= 0 {
		seeds = append(append([]int(nil), seeds...), latchIdx)
	}
	critical := closureFwd(sl, seeds)
	// Drop the latch/cmp entirely when predicting, unless something else
	// needs them.
	drop := map[int]bool{}
	if sch.Predicted && latchIdx >= 0 {
		if !critical[latchIdx] {
			drop[latchIdx] = true
		}
		if sl.LatchCmp != nil {
			if ci := sl.NodeOf(sl.LatchCmp); ci >= 0 && !critical[ci] {
				needed := false
				for _, e := range sl.Succs[ci] {
					if e.To != ci && !drop[e.To] {
						needed = true
					}
				}
				if !needed {
					drop[ci] = true
				}
			}
		}
	}
	nonCritical := map[int]bool{}
	for i := range sl.Nodes {
		if !critical[i] && !drop[i] {
			nonCritical[i] = true
		}
	}
	// The latch branch itself is never emitted as a branch: it becomes
	// the spawn guard (chaining) or the backedge guard (basic loop).
	if latchIdx >= 0 {
		delete(nonCritical, latchIdx)
		delete(critical, latchIdx)
	}

	heights := t.sliceHeights(sl, all, sch.Lfetch)
	if t.opt.LoopRotation {
		sch.Critical = t.listSchedule(sl, critical, heights)
		sch.NonCritical = t.listSchedule(sl, nonCritical, heights)
	} else {
		// Ablation: no dependence reduction — original program order,
		// spawn after the whole slice (the serialized form §3.2.1.1
		// warns about).
		merged := map[int]bool{}
		for i := range critical {
			merged[i] = true
		}
		for i := range nonCritical {
			merged[i] = true
		}
		var order []int
		for i := range merged {
			order = append(order, i)
		}
		sort.Slice(order, func(a, b int) bool {
			return sl.Nodes[order[a]].Order < sl.Nodes[order[b]].Order
		})
		sch.Critical = order
		sch.NonCritical = nil
	}

	// height(critical sub-slice) is measured on the critical sub-slice's
	// own dependence graph (§3.2.1.2.2), not inherited through
	// non-critical successors.
	critHeights := t.sliceHeights(sl, critical, sch.Lfetch)
	sch.HCritical = maxOver(critHeights, critical)
	sch.HSlice = maxOver(heights, all)
	if sch.HSlice > 0 {
		var total float64
		for i := range all {
			if sch.Lfetch[i] {
				total++
				continue
			}
			total += t.instrLatency(sl.Nodes[i].In)
		}
		sch.AvailableILP = total / sch.HSlice
	}
	libCost := 3.0 * float64(len(sl.LiveIns))
	sch.RateCSP = sch.HRegion - sch.HCritical - t.opt.SpawnOverhead - libCost
	sch.RateBSP = sch.HRegion - sch.HSlice

	iters, entries, trips := t.regionIters(region)
	sch.ItersTotal, sch.Entries, sch.TripsPerEntry = iters, entries, trips

	// Model selection (§3.4.1): basic when the region is not a usable
	// loop, when the recurrence passes through main-thread-written
	// memory, when the trip count is small, or when basic slack beats
	// chaining slack; chaining otherwise.
	switch {
	case region.Loop == nil || sl.MemRecurrence:
		sch.Model = ModelBasicOneShot
	case !t.opt.Chaining || trips < 4 || sch.RateBSP >= sch.RateCSP:
		sch.Model = ModelBasicLoop
	default:
		sch.Model = ModelChaining
	}
	switch sch.Model {
	case ModelChaining:
		sch.Rate, sch.SlackGrows = sch.RateCSP, true
	case ModelBasicLoop:
		sch.Rate, sch.SlackGrows = sch.RateBSP, true
	case ModelBasicOneShot:
		sch.Rate, sch.SlackGrows = sch.HRegion-sch.HSlice, false
	}

	// reduced_misscycle = Σ_i min(miss_cycle_per_iteration, slack(i))
	// summed over entries (§3.4.1).
	var missTotal float64
	for _, tg := range sl.Targets {
		if s := t.prof.Loads[tg.ID]; s != nil {
			missTotal += float64(s.MissCycles)
		}
	}
	if missTotal > 0 && iters > 0 {
		missPerIter := missTotal / iters
		perEntry := reducedPerEntry(sch.Rate, missPerIter, trips, sch.SlackGrows, t.opt.SlackMax)
		sch.ReducedFraction = entries * perEntry / missTotal
		if sch.ReducedFraction > 1 {
			sch.ReducedFraction = 1
		}
	}
	return sch
}

func maxOver(h map[int]float64, set map[int]bool) float64 {
	best := 0.0
	for n := range set {
		if h[n] > best {
			best = h[n]
		}
	}
	return best
}

// reducedPerEntry evaluates Σ_{i=1..trips} min(missPerIter, slack(i)) in
// closed form, where slack(i) = rate*i for growing slack (capped at
// slackMax) or the constant rate for one-shot slices.
func reducedPerEntry(rate, missPerIter, trips float64, grows bool, slackMax float64) float64 {
	if rate <= 0 || missPerIter <= 0 || trips <= 0 {
		return 0
	}
	if !grows {
		return trips * math.Min(missPerIter, rate)
	}
	cap := math.Min(missPerIter, slackMax)
	iStar := cap / rate
	if trips <= iStar {
		return rate * trips * (trips + 1) / 2
	}
	return rate*iStar*(iStar+1)/2 + cap*(trips-iStar)
}

// selectRegion walks the region graph outward from the delinquent load's
// innermost region — loop body to loop to outer scopes to dominant callers —
// and returns the first region whose reduced miss cycles clear the cutoff,
// or the best-scoring region seen (§3.4.1). Ties prefer the inner region by
// construction of the walk order. Returns nil when no region yields a
// usable slice.
func (t *Tool) selectRegion(fn *ir.Func, load *ir.Instr) *cfg.Region {
	_, blk, _ := t.p.InstrByID(load.ID)
	if blk == nil {
		return nil
	}
	r := t.an[fn.Name].fr.Innermost(blk.Index)
	var best, firstValid *cfg.Region
	bestFrac := 0.0
	for depth := 0; r != nil && depth <= t.opt.MaxRegionDepth; {
		if r.Kind == cfg.RegionLoop || r.Kind == cfg.RegionProc {
			depth++
			sl, _ := t.buildSlice(r, []*ir.Instr{load})
			if sl != nil {
				if firstValid == nil {
					firstValid = r
				}
				sch := t.schedule(sl)
				if sch != nil && sch.ReducedFraction > 0 {
					if sch.ReducedFraction >= t.opt.ReducedMissCutoff {
						return r
					}
					if sch.ReducedFraction > bestFrac {
						best, bestFrac = r, sch.ReducedFraction
					}
					// Prune once projected slack is already excessive:
					// growing the region further only risks early
					// eviction (§3.1.1).
					if sch.SlackGrows && sch.Rate*sch.TripsPerEntry > t.opt.SlackMax {
						break
					}
				}
			}
		}
		if r.Parent != nil {
			r = r.Parent
			continue
		}
		// Crossed the procedure boundary: continue at the dominant
		// caller's region (§3.1's call-stack contexts).
		site := t.forest.DominantCaller(r.F.Name, t.prof.InstrFreq)
		if site == nil {
			break
		}
		r = site.Region
	}
	if best == nil {
		// "If none of the regions reduce the miss cycles beyond the
		// threshold percentage, we pick the region with the largest
		// percentage" (§3.4.1) — and when every estimate rounds to zero,
		// the innermost region that produced a legal slice.
		best = firstValid
	}
	return best
}
