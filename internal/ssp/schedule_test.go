package ssp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ssp/internal/ir"
	"ssp/internal/profile"
	"ssp/internal/workloads"
)

// mcfTool builds the tool state for the mcf kernel at test scale.
func mcfTool(t *testing.T, opt Options) (*Tool, *ir.Func, []*ir.Instr) {
	t.Helper()
	spec, _ := workloads.ByName("mcf")
	orig, _ := spec.Build(spec.TestScale)
	prof, err := profile.Collect(orig, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := orig.Clone()
	tool := &Tool{
		p:          p,
		prof:       prof,
		opt:        opt,
		an:         map[string]*analysis{},
		callCycles: map[string]float64{},
		report:     &Report{},
	}
	if err := tool.analyse(); err != nil {
		t.Fatal(err)
	}
	f := p.FuncByName("main")
	var dels []*ir.Instr
	for _, id := range prof.DelinquentLoads(opt.DelinquentCutoff, opt.MaxDelinquent) {
		_, _, in := p.InstrByID(id)
		dels = append(dels, in)
	}
	return tool, f, dels
}

func TestScheduleFigure5Partition(t *testing.T) {
	tool, f, dels := mcfTool(t, DefaultOptions())
	if len(dels) == 0 {
		t.Fatal("no delinquent loads")
	}
	region := tool.selectRegion(f, dels[0])
	if region == nil || region.Loop == nil {
		t.Fatalf("selected region %v, want the pricing loop", region)
	}
	sl, err := tool.buildSlice(region, dels)
	if err != nil || sl == nil {
		t.Fatalf("buildSlice: %v %v", sl, err)
	}
	sch := tool.schedule(sl)
	if sch.Model != ModelChaining {
		t.Fatalf("model = %v, want chaining", sch.Model)
	}
	// Figure 5: the critical sub-slice is the arc recurrence + spawn
	// condition (A, D, cmp) — small and load-free; the loads live in the
	// non-critical sub-slice.
	for _, n := range sch.Critical {
		if sl.Nodes[n].In.Op == ir.OpLd {
			t.Fatalf("load %v in the critical sub-slice", sl.Nodes[n].In)
		}
	}
	loads := 0
	for _, n := range sch.NonCritical {
		if sl.Nodes[n].In.Op == ir.OpLd {
			loads++
		}
	}
	if loads == 0 {
		t.Fatal("no loads in the non-critical sub-slice")
	}
	if sch.HCritical >= sch.HRegion/2 {
		t.Fatalf("critical height %.0f not far below region height %.0f", sch.HCritical, sch.HRegion)
	}
	if sch.RateCSP <= sch.RateBSP {
		t.Fatalf("chaining slack rate %.0f should beat basic %.0f on mcf", sch.RateCSP, sch.RateBSP)
	}
	// The delinquent potential loads have no consumers in the slice and
	// become prefetches.
	lfetches := 0
	for n := range sch.Lfetch {
		if !sl.Nodes[n].Target {
			t.Fatalf("non-target %v converted to lfetch", sl.Nodes[n].In)
		}
		lfetches++
	}
	if lfetches == 0 {
		t.Fatal("no delinquent load became a prefetch")
	}
}

func TestScheduleCriticalIsTopologicallyOrdered(t *testing.T) {
	tool, f, dels := mcfTool(t, DefaultOptions())
	region := tool.selectRegion(f, dels[0])
	sl, _ := tool.buildSlice(region, dels)
	sch := tool.schedule(sl)
	check := func(order []int) {
		pos := map[int]int{}
		for i, n := range order {
			pos[n] = i
		}
		for _, n := range order {
			for _, e := range sl.Preds[n] {
				if e.Carried || e.From == n {
					continue
				}
				if p, ok := pos[e.From]; ok && p > pos[n] {
					t.Fatalf("node %v scheduled before its producer %v",
						sl.Nodes[n].In, sl.Nodes[e.From].In)
				}
			}
		}
	}
	check(sch.Critical)
	check(sch.NonCritical)
}

func TestScheduleNoRotationKeepsProgramOrder(t *testing.T) {
	opt := DefaultOptions()
	opt.LoopRotation = false
	tool, f, dels := mcfTool(t, opt)
	region := tool.selectRegion(f, dels[0])
	sl, _ := tool.buildSlice(region, dels)
	sch := tool.schedule(sl)
	if len(sch.NonCritical) != 0 {
		t.Fatal("rotation-off schedule still splits the slice")
	}
	for i := 1; i < len(sch.Critical); i++ {
		if sl.Nodes[sch.Critical[i-1]].Order > sl.Nodes[sch.Critical[i]].Order {
			t.Fatal("rotation-off schedule is not in program order")
		}
	}
}

// TestQuickReducedPerEntry: property — the closed form matches a direct
// summation of min(missPerIter, slack(i)).
func TestQuickReducedPerEntry(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rate := float64(r.Intn(500)) - 50
		miss := float64(1 + r.Intn(400))
		trips := float64(1 + r.Intn(200))
		slackMax := float64(100 + r.Intn(100000))
		grows := r.Intn(2) == 0
		got := reducedPerEntry(rate, miss, trips, grows, slackMax)
		want := 0.0
		if rate > 0 {
			for i := 1; i <= int(trips); i++ {
				slack := rate
				if grows {
					slack = math.Min(rate*float64(i), slackMax)
				}
				want += math.Min(miss, slack)
			}
		}
		// The closed form integrates over a continuous i; allow a small
		// relative discrepancy against the discrete sum.
		diff := math.Abs(got - want)
		tol := 0.10*want + miss + rate
		if tol < 1 {
			tol = 1
		}
		if diff > tol {
			t.Logf("seed %d: rate=%v miss=%v trips=%v grows=%v got=%v want=%v",
				seed, rate, miss, trips, grows, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRegionItersMatchesProfile(t *testing.T) {
	tool, f, dels := mcfTool(t, DefaultOptions())
	region := tool.selectRegion(f, dels[0])
	iters, entries, trips := tool.regionIters(region)
	spec, _ := workloads.ByName("mcf")
	n := float64(spec.TestScale)
	if iters != n {
		t.Fatalf("iters = %v, want %v", iters, n)
	}
	if entries != 1 {
		t.Fatalf("entries = %v, want 1", entries)
	}
	if trips != n {
		t.Fatalf("trips = %v, want %v", trips, n)
	}
}

func TestTriggerPlacementAtLoopHeader(t *testing.T) {
	tool, f, dels := mcfTool(t, DefaultOptions())
	region := tool.selectRegion(f, dels[0])
	sl, _ := tool.buildSlice(region, dels)
	tp, ok := tool.placeTrigger(sl)
	if !ok {
		t.Fatal("no trigger point found")
	}
	if tp.block.Label != "loop" || tp.pos != 0 {
		t.Fatalf("trigger at %s:%d, want loop:0", tp.block.Label, tp.pos)
	}
}

func TestEmbedTriggerReplacesNop(t *testing.T) {
	tool, f, dels := mcfTool(t, DefaultOptions())
	region := tool.selectRegion(f, dels[0])
	sl, _ := tool.buildSlice(region, dels)
	tp, _ := tool.placeTrigger(sl)
	before := len(tp.block.Instrs)
	nopID := tp.block.Instrs[0].ID
	tool.embedTrigger(tp, "loop") // any resolvable label works for the test
	if len(tp.block.Instrs) != before {
		t.Fatal("trigger insertion grew the block despite an available nop")
	}
	if in := tp.block.Instrs[0]; in.Op != ir.OpChk || in.ID != nopID {
		t.Fatalf("nop not converted in place: %v", in)
	}
	// Second trigger: no nop left, must insert.
	tool.embedTrigger(tp, "loop")
	if len(tp.block.Instrs) != before+1 {
		t.Fatal("second trigger did not insert a new instruction")
	}
	_ = f
}

func TestLiveInsAvailableRespectsDominance(t *testing.T) {
	// A live-in defined only on one side of a diamond must not be
	// considered available at the join's sibling.
	p := ir.NewProgram("main")
	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.CmpI(ir.CondLT, 6, 7, 14, 10)
	e.On(6).Br("right")
	left := fb.Block("left")
	left.MovI(30, 5) // defines r30 only here
	left.Br("join")
	right := fb.Block("right")
	right.Nop()
	join := fb.Block("join")
	join.Ld(31, 30, 0)
	join.Halt()

	prof := &profile.Profile{InstrFreq: map[int]uint64{}, BlockFreq: map[string]uint64{}}
	tool := &Tool{p: p, prof: prof, opt: DefaultOptions(), an: map[string]*analysis{}, callCycles: map[string]float64{}, report: &Report{}}
	if err := tool.analyse(); err != nil {
		t.Fatal(err)
	}
	f := p.FuncByName("main")
	sl := &Slice{Region: tool.an["main"].fr.Proc, LiveIns: []ir.Reg{30}, Funcs: map[string]bool{"main": true}}
	sl.Region.F = f
	if tool.liveInsAvailable(sl, f.BlockByLabel("right")) {
		t.Fatal("r30 reported available in a block its def does not dominate")
	}
	if !tool.liveInsAvailable(sl, f.BlockByLabel("left")) {
		t.Fatal("r30 not available in its defining block")
	}
}
