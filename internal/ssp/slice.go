package ssp

import (
	"fmt"
	"sort"

	"ssp/internal/cfg"
	"ssp/internal/ir"
)

// Slice is a combined precomputation slice for a set of delinquent loads
// within one selected region: the instructions (possibly drawn from several
// procedures, §3.4.2), their internal dependence graph, and the live-in set.
type Slice struct {
	// Region is the selected code region; its function hosts the trigger
	// and the appended attachment blocks.
	Region *cfg.Region
	// Targets are the delinquent loads this slice prefetches.
	Targets []*ir.Instr

	// Nodes lists the slice instructions; edges are slice-internal data
	// dependences (cross-procedure edges included).
	Nodes []SliceNode
	Preds [][]SliceEdge
	Succs [][]SliceEdge

	// LiveIns are the registers whose values must be copied from the main
	// thread at the trigger point, sorted.
	LiveIns []ir.Reg
	// Funcs names every function contributing instructions.
	Funcs map[string]bool

	// Latch is the region loop's back-edge branch included in the slice
	// (Figure 3's E), nil for non-loop regions; LatchCmp is the compare
	// defining its predicate, if identified.
	Latch    *ir.Instr
	LatchCmp *ir.Instr

	// MemRecurrence marks slices whose live-in advance reads memory that
	// the region itself stores to (a may-alias between a critical load and
	// a region store) — chaining cannot run ahead through such state, so
	// the model selector falls back to basic SP (§3.2.2; this is what
	// makes treeadd.df a basic-SP benchmark in Table 2).
	MemRecurrence bool

	// Ctx records the call-site binding of every callee contributing
	// instructions, used by trigger placement to locate the in-region
	// call sites leading to out-of-function targets.
	Ctx map[string]*bindSite

	idx map[int]int // instruction ID -> node index
}

// SliceNode is one instruction of a slice.
type SliceNode struct {
	In *ir.Instr
	Fn string
	// Order is the emission-order key: context depth first (callers
	// before callees they feed), then original layout position.
	Order int
	// Target marks a delinquent load.
	Target bool
}

// SliceEdge is a slice-internal dependence.
type SliceEdge struct {
	From, To int
	Carried  bool
}

// NodeOf returns the node index of the instruction, or -1.
func (s *Slice) NodeOf(in *ir.Instr) int {
	if i, ok := s.idx[in.ID]; ok {
		return i
	}
	return -1
}

// Size is the number of precomputation instructions (the Table 2 metric).
func (s *Slice) Size() int { return len(s.Nodes) }

// Interprocedural reports whether the slice spans procedures.
func (s *Slice) Interprocedural() bool { return len(s.Funcs) > 1 }

// contextChain returns the call sites linking the region's function down to
// fn, following dominant callers (the slicer's approximation of "the call
// sites currently on the call stack", §3.1). The result maps each callee
// function name to its binding call site.
func (t *Tool) contextChain(regionFn, fn string) (map[string]*bindSite, error) {
	chain := map[string]*bindSite{}
	cur := fn
	for cur != regionFn {
		site := t.forest.DominantCaller(cur, t.prof.InstrFreq)
		if site == nil {
			return nil, fmt.Errorf("ssp: no caller found for %s", cur)
		}
		chain[cur] = &bindSite{caller: site.Caller.Name, call: site.Instr}
		if _, loop := chain[site.Caller.Name]; loop {
			return nil, fmt.Errorf("ssp: recursive context chain at %s", cur)
		}
		cur = site.Caller.Name
		if len(chain) > t.opt.MaxContextDepth {
			return nil, fmt.Errorf("ssp: context chain too deep for %s", fn)
		}
	}
	return chain, nil
}

// bindSite binds a callee's formals to a call instruction in a caller.
type bindSite struct {
	caller string
	call   *ir.Instr
}

// sliceBuilder performs the backward, context-sensitive, speculative slice
// construction of §3.1 for a fixed region.
type sliceBuilder struct {
	t        *Tool
	s        *Slice
	inRegion map[int]bool // block indices of Region within its function
	ctx      map[string]*bindSite
	liveIns  map[ir.Reg]bool
	depth    map[string]int // context depth per function, for node ordering
	// visitedCalls bounds recursion when return values flow through
	// nested (possibly recursive) calls.
	visitedCalls map[int]bool
	err          error
}

// buildSlice constructs the combined slice of the given delinquent loads
// with respect to region (§3.1, §3.1.1, §3.1.2). It returns nil (no error)
// when the slice is rejected — too large, too many live-ins, or crossing an
// unanalyzable boundary; rejection just means the region traversal keeps
// looking.
func (t *Tool) buildSlice(region *cfg.Region, targets []*ir.Instr) (*Slice, error) {
	s := &Slice{
		Region: region,
		Funcs:  map[string]bool{},
		idx:    map[int]int{},
	}
	b := &sliceBuilder{
		t:        t,
		s:        s,
		inRegion: map[int]bool{},
		ctx:      map[string]*bindSite{},
		liveIns:  map[ir.Reg]bool{},
		depth:    map[string]int{},
	}
	for _, bi := range region.Blocks {
		b.inRegion[bi] = true
	}
	b.depth[region.F.Name] = 0

	for _, target := range targets {
		fn, _, _ := t.p.InstrByID(target.ID)
		if fn == nil {
			continue
		}
		if fn.Name != region.F.Name {
			chain, err := t.contextChain(region.F.Name, fn.Name)
			if err != nil {
				return nil, nil // unanalyzable: reject quietly
			}
			for callee, site := range chain {
				b.ctx[callee] = site
				b.depth[callee] = b.depth[site.caller] + 1
			}
			// Depths may resolve out of order; fix up iteratively.
			for i := 0; i < len(chain)+1; i++ {
				for callee, site := range chain {
					b.depth[callee] = b.depth[site.caller] + 1
				}
			}
		}
		b.include(fn.Name, target, true)
		s.Targets = append(s.Targets, target)
	}
	// Include the region loop's latch branch: the chaining spawn condition
	// (Figure 5's E).
	if region.Loop != nil {
		b.includeLatch()
	}
	if b.err != nil {
		return nil, nil
	}
	if len(s.Nodes) == 0 || len(s.Nodes) > t.opt.MaxSliceSize {
		return nil, nil
	}
	for r := range b.liveIns {
		s.LiveIns = append(s.LiveIns, r)
	}
	sort.Slice(s.LiveIns, func(i, j int) bool { return s.LiveIns[i] < s.LiveIns[j] })
	if len(s.LiveIns) > t.opt.MaxLiveIns {
		return nil, nil
	}
	s.Ctx = b.ctx
	b.detectMemRecurrence()
	return s, nil
}

// include adds the instruction and, transitively, everything its operands
// depend on, respecting region scope, crossing calls context-sensitively,
// and pruning unexecuted paths when speculative slicing is on. Because an
// instruction is marked before its dependences are traversed, recursive
// call chains terminate with the monotone node set as the fixed point —
// the effect of the paper's iterative slice-summary computation (§3.1.1),
// with each function bound to a single dominant context (which is also why
// the tool cannot replicate hand adaptation's multi-level recursive
// inlining, §4.5).
func (b *sliceBuilder) include(fn string, in *ir.Instr, isTarget bool) int {
	if b.err != nil {
		return -1
	}
	if i, ok := b.s.idx[in.ID]; ok {
		if isTarget {
			b.s.Nodes[i].Target = true
		}
		return i
	}
	if len(b.s.Nodes) >= b.t.opt.MaxSliceSize {
		b.err = fmt.Errorf("slice too large")
		return -1
	}
	an := b.t.an[fn]
	n := an.dg.NodeByID(in.ID)
	if n < 0 {
		b.err = fmt.Errorf("instruction %d not in %s", in.ID, fn)
		return -1
	}
	idx := len(b.s.Nodes)
	b.s.idx[in.ID] = idx
	b.s.Nodes = append(b.s.Nodes, SliceNode{
		In:     in,
		Fn:     fn,
		Order:  b.depth[fn]*1_000_000 + n,
		Target: isTarget,
	})
	b.s.Preds = append(b.s.Preds, nil)
	b.s.Succs = append(b.s.Succs, nil)
	b.s.Funcs[fn] = true

	// Data dependences.
	for _, e := range an.dg.DataPreds[n] {
		def := an.dg.Nodes[e.From]
		if b.pruned(fn, def) {
			continue // control-flow speculative slicing (§3.1.2)
		}
		switch {
		case def.Op == ir.OpCall || def.Op == ir.OpCallB:
			if r, ok := e.Loc.IsGR(); ok && r == ir.RegRet {
				b.crossReturn(fn, def, idx)
			}
			// Other call-carried locs (the link register) are not
			// slice-relevant.
		case fn != b.s.Region.F.Name || b.inRegion[an.dg.BlockOf[e.From]]:
			from := b.include(fn, def, false)
			b.addEdge(from, idx, e.Carried)
		default:
			// Defined in the region's function but outside the region:
			// the value is captured at the trigger (§3.1.1's slice
			// pruning once slack suffices). Registers become live-ins;
			// predicates and branch registers are pulled through, since
			// the live-in buffer carries only register values (§2.1).
			if r, ok := e.Loc.IsGR(); ok {
				b.liveIns[r] = true
			} else {
				from := b.include(fn, def, false)
				b.addEdge(from, idx, e.Carried)
			}
		}
	}
	// Values live into the function.
	for _, loc := range an.dg.EntryDefs[n] {
		r, isGR := loc.IsGR()
		if !isGR {
			b.err = fmt.Errorf("non-register live-in %v", loc)
			return idx
		}
		if fn == b.s.Region.F.Name {
			b.liveIns[r] = true
			continue
		}
		b.bindFormal(fn, r, idx)
	}
	return idx
}

// pruned applies control-flow speculative slicing: definitions on blocks the
// profile never saw executed are assumed off the realized paths (§3.1.2).
func (b *sliceBuilder) pruned(fn string, def *ir.Instr) bool {
	if !b.t.opt.SpeculativeSlicing {
		return false
	}
	return b.t.prof.Freq(def) == 0
}

// crossReturn extends the slice into a callee whose return value feeds node
// use: the return-value definitions in the callee are included (with the
// callee bound to this call site), and cross-procedure edges added — the
// slice(r, f) ∪ slice(contextmap(...)) composition of §3.1.
func (b *sliceBuilder) crossReturn(fn string, call *ir.Instr, use int) {
	callee := ""
	if call.Op == ir.OpCall {
		callee = call.Target
	} else {
		callee = b.t.prof.DominantCallee(call.ID)
	}
	if callee == "" || b.t.an[callee] == nil {
		b.err = fmt.Errorf("unresolvable call at %d", call.ID)
		return
	}
	if _, bound := b.ctx[callee]; !bound {
		b.ctx[callee] = &bindSite{caller: fn, call: call}
		b.depth[callee] = b.depth[fn] + 1
	}
	an := b.t.an[callee]
	for ni, in := range an.dg.Nodes {
		if in.Op != ir.OpRet || b.pruned(callee, in) {
			continue
		}
		for _, e := range an.dg.DataPreds[ni] {
			if r, ok := e.Loc.IsGR(); !ok || r != ir.RegRet {
				continue
			}
			def := an.dg.Nodes[e.From]
			if b.pruned(callee, def) {
				continue
			}
			if def.Op == ir.OpCall || def.Op == ir.OpCallB {
				// The return value flows out of a deeper (possibly
				// recursive) call: keep inlining through it rather than
				// including the call itself — slices never contain
				// control transfers. The visited set makes the recursion
				// a terminating fixed point (§3.1.1).
				b.crossReturnGuarded(callee, def, use)
				continue
			}
			from := b.include(callee, def, false)
			b.addEdge(from, use, false)
		}
	}
}

// crossReturnGuarded recurses into a deeper callee's return slice at most
// once per call site (a visited set over call instructions), terminating
// recursive call cycles.
func (b *sliceBuilder) crossReturnGuarded(fn string, call *ir.Instr, use int) {
	if b.visitedCalls == nil {
		b.visitedCalls = map[int]bool{}
	}
	if b.visitedCalls[call.ID] {
		return
	}
	b.visitedCalls[call.ID] = true
	b.crossReturn(fn, call, use)
}

// bindFormal maps a value live into a callee to its definition at the bound
// call site in the caller: contextmap(f, c) of §3.1. Only argument registers
// are bindable; anything else makes the slice unanalyzable.
func (b *sliceBuilder) bindFormal(fn string, r ir.Reg, use int) {
	site := b.ctx[fn]
	if site == nil {
		b.err = fmt.Errorf("no context for %s", fn)
		return
	}
	if r < ir.RegArg0 || r >= ir.RegArg0+8 {
		b.err = fmt.Errorf("callee %s needs non-argument live-in %v", fn, r)
		return
	}
	caller := b.t.an[site.caller]
	cn := caller.dg.NodeByID(site.call.ID)
	if cn < 0 {
		b.err = fmt.Errorf("call site %d not found in %s", site.call.ID, site.caller)
		return
	}
	found := false
	for _, e := range caller.dg.DataPreds[cn] {
		if lr, ok := e.Loc.IsGR(); !ok || lr != r {
			continue
		}
		def := caller.dg.Nodes[e.From]
		if b.pruned(site.caller, def) {
			continue
		}
		found = true
		if site.caller != b.s.Region.F.Name || b.inRegion[caller.dg.BlockOf[e.From]] {
			from := b.include(site.caller, def, false)
			b.addEdge(from, use, false)
		} else {
			b.liveIns[r] = true
		}
	}
	if !found {
		// The actual is live into the caller as well: keep binding
		// upward, or capture at the trigger when the caller is the
		// region's function.
		if site.caller == b.s.Region.F.Name {
			b.liveIns[r] = true
		} else {
			b.bindFormal(site.caller, r, use)
		}
	}
}

func (b *sliceBuilder) addEdge(from, to int, carried bool) {
	if from < 0 || to < 0 || b.err != nil {
		return
	}
	for _, e := range b.s.Preds[to] {
		if e.From == from && e.Carried == carried {
			return
		}
	}
	e := SliceEdge{From: from, To: to, Carried: carried}
	b.s.Preds[to] = append(b.s.Preds[to], e)
	b.s.Succs[from] = append(b.s.Succs[from], e)
}

// includeLatch pulls the region loop's most frequent back-edge branch into
// the slice — the spawn/continue condition of the generated do-across loop
// (Figure 5's E) — along with its predicate-compare chain via the normal
// data-dependence traversal.
func (b *sliceBuilder) includeLatch() {
	region := b.s.Region
	f := region.F
	var best *ir.Instr
	var bestFreq uint64
	for _, latch := range region.Loop.Latches {
		term := f.Blocks[latch].Terminator()
		if term == nil || term.Op != ir.OpBr {
			continue
		}
		if freq := b.t.prof.Freq(term); best == nil || freq > bestFreq {
			best, bestFreq = term, freq
		}
	}
	if best == nil {
		return
	}
	b.include(f.Name, best, false)
	b.s.Latch = best
	// Identify the compare producing the branch predicate, for the spawn
	// predicate's sense (§3.4.2 codegen).
	if best.Qp != ir.PTrue {
		an := b.t.an[f.Name]
		n := an.dg.NodeByID(best.ID)
		for _, e := range an.dg.DataPreds[n] {
			if pr, ok := e.Loc.IsPR(); ok && pr == best.Qp {
				def := an.dg.Nodes[e.From]
				if def.Op == ir.OpCmp {
					b.s.LatchCmp = def
				}
			}
		}
	}
}

// detectMemRecurrence flags slices whose loads may read locations the region
// stores to (matching base register and displacement): the speculative
// thread cannot usefully run ahead through state the main thread is still
// producing, so chaining is ruled out for them.
func (b *sliceBuilder) detectMemRecurrence() {
	region := b.s.Region
	f := region.F
	type key struct {
		base ir.Reg
		disp int64
	}
	stores := map[key]bool{}
	for _, bi := range region.Blocks {
		for _, in := range f.Blocks[bi].Instrs {
			if in.Op == ir.OpSt {
				stores[key{in.Ra, in.Disp}] = true
			}
		}
	}
	if len(stores) == 0 {
		return
	}
	for _, n := range b.s.Nodes {
		if n.In.Op == ir.OpLd && n.Fn == f.Name && stores[key{n.In.Ra, n.In.Disp}] {
			b.s.MemRecurrence = true
			return
		}
	}
}
