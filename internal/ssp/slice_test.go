package ssp

import (
	"strings"
	"testing"

	"ssp/internal/ir"
	"ssp/internal/profile"
	"ssp/internal/sim"
	"ssp/internal/workloads"
)

// recursiveProgram builds a program whose delinquent address flows through a
// recursive helper:
//
//	func deref(p, depth): if depth == 0 { return load(p) }
//	                      return deref(load(p), depth-1)
//	main: for each slot: sum += load(deref(slot, 2) + 8)
//
// The slice of the delinquent load must cross into deref, whose own slice
// recurses — exercising the fixed-point/recurrence handling of §3.1.1.
func recursiveProgram(n int) (*ir.Program, uint64) {
	p := ir.NewProgram("main")
	// Three chained pointer levels per slot, shuffled; final record holds
	// the value at +8.
	base := uint64(0x100000)
	lvl := func(k, i int) uint64 { return base + uint64(k)*uint64(n)*64 + uint64((i*2654435761)%n)*64 }
	var want uint64
	for i := 0; i < n; i++ {
		a0, a1, a2, a3 := base+uint64(i)*8+0x4000000, lvl(0, i), lvl(1, i), lvl(2, i)
		p.SetWord(a0, a1)
		p.SetWord(a1, a2)
		p.SetWord(a2, a3)
		v := uint64(i*3 + 1)
		p.SetWord(a3+8, v)
		want += v
	}

	df := ir.NewFunc(p, "deref")
	df.F.NumFormals = 2
	d0 := df.Block("entry")
	d0.CmpI(ir.CondEQ, 6, 7, ir.RegArg0+1, 0)
	d0.On(6).Br("base")
	d1 := df.Block("rec")
	// Save the return link and recurse: b0 spilled into r40 (caller-saved
	// discipline is the workload author's job).
	d1.MovFromBR(40, 0)
	d1.Ld(ir.RegArg0, ir.RegArg0, 0)
	d1.AddI(ir.RegArg0+1, ir.RegArg0+1, -1)
	d1.Call("deref")
	d1.MovBR(0, 40)
	d1.Ret(0)
	d2 := df.Block("base")
	d2.Ld(ir.RegRet, ir.RegArg0, 0)
	d2.Ret(0)

	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.MovI(14, int64(base+0x4000000))
	e.MovI(15, int64(base+0x4000000+uint64(n)*8))
	e.MovI(20, 0)
	loop := fb.Block("loop")
	loop.Nop()
	loop.Ld(ir.RegArg0, 14, 0)
	loop.MovI(ir.RegArg0+1, 1)
	loop.Call("deref")
	loop.Ld(17, ir.RegRet, 8) // the delinquent load
	loop.Add(20, 20, 17)
	loop.AddI(14, 14, 8)
	loop.Cmp(ir.CondLT, 6, 7, 14, 15)
	loop.On(6).Br("loop")
	done := fb.Block("done")
	done.MovI(28, int64(workloads.ResultAddr))
	done.St(28, 0, 20)
	done.Halt()
	return p, want
}

func TestSliceThroughRecursionTerminates(t *testing.T) {
	p, want := recursiveProgram(400)
	prof, err := profile.Collect(p, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	enh, rep, err := Adapt(p, prof, DefaultOptions(), "recursive")
	if err != nil {
		t.Fatal(err)
	}
	// Whether or not a slice was deemed profitable, adaptation must
	// terminate and preserve semantics.
	img, err := ir.Link(enh)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.New(tinyConfig(), img)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Mem.Load(workloads.ResultAddr); got != want {
		t.Fatalf("checksum = %d, want %d", got, want)
	}
	if rep.NumSlices() > 0 {
		// A slice through the recursive callee is necessarily
		// interprocedural; the recursion is flattened at one context
		// level (the "could not perform aggressive inlining" limitation
		// of §4.5).
		if rep.NumInterproc() == 0 {
			t.Errorf("slice through recursion not marked interprocedural: %+v", rep.Slices)
		}
	}
}

func TestSliceStructureMcf(t *testing.T) {
	tool, f, dels := mcfTool(t, DefaultOptions())
	region := tool.selectRegion(f, dels[0])
	sl, err := tool.buildSlice(region, dels)
	if err != nil || sl == nil {
		t.Fatalf("buildSlice: %v", err)
	}
	// The slice must include the recurrence (mov + add with carried
	// edge), the latch compare and branch, and the address loads.
	var hasCarried, hasLatch bool
	for i := range sl.Nodes {
		for _, e := range sl.Preds[i] {
			if e.Carried {
				hasCarried = true
			}
		}
	}
	hasLatch = sl.Latch != nil && sl.LatchCmp != nil
	if !hasCarried {
		t.Error("no loop-carried edge in the mcf slice")
	}
	if !hasLatch {
		t.Error("latch branch/compare not identified")
	}
	if sl.Interprocedural() {
		t.Error("mcf slice should be intraprocedural")
	}
	// Live-ins are exactly the induction seed and the bound.
	if len(sl.LiveIns) != 2 {
		t.Errorf("live-ins = %v, want arc and K", sl.LiveIns)
	}
	// No side-effecting instructions in the slice.
	for _, n := range sl.Nodes {
		if n.In.HasSideEffect() && n.In.Op != ir.OpSt {
			// (the latch branch is a control transfer; it is never
			// emitted as such — see codegen — so allow OpBr here)
			if n.In.Op != ir.OpBr {
				t.Errorf("side-effecting %v in slice", n.In)
			}
		}
		if n.In.Op == ir.OpSt {
			t.Errorf("store %v in slice", n.In)
		}
	}
}

func TestMemRecurrenceDetection(t *testing.T) {
	// treeadd.df: the critical load [sp] aliases the region's push
	// stores; treeadd.bf: queue load and stores use different bases.
	for _, c := range []struct {
		bench string
		want  bool
	}{
		{"treeadd.df", true},
		{"treeadd.bf", false},
		{"mcf", false},
	} {
		spec, _ := workloads.ByName(c.bench)
		orig, _ := spec.Build(spec.TestScale)
		prof, err := profile.Collect(orig, tinyConfig())
		if err != nil {
			t.Fatal(err)
		}
		p := orig.Clone()
		tool := &Tool{p: p, prof: prof, opt: DefaultOptions(), an: map[string]*analysis{}, callCycles: map[string]float64{}, report: &Report{}}
		if err := tool.analyse(); err != nil {
			t.Fatal(err)
		}
		f := p.FuncByName("main")
		var del *ir.Instr
		for _, id := range prof.DelinquentLoads(0.9, 10) {
			if _, _, in := p.InstrByID(id); in != nil {
				del = in
				break
			}
		}
		region := tool.selectRegion(f, del)
		if region == nil {
			t.Fatalf("%s: no region", c.bench)
		}
		sl, _ := tool.buildSlice(region, []*ir.Instr{del})
		if sl == nil {
			t.Fatalf("%s: no slice", c.bench)
		}
		if sl.MemRecurrence != c.want {
			t.Errorf("%s: MemRecurrence = %v, want %v", c.bench, sl.MemRecurrence, c.want)
		}
	}
}

func TestEnhancedBinarySurvivesAsmRoundTrip(t *testing.T) {
	// The adapted program must serialize to assembly, parse back, and run
	// identically — SSP-enhanced binaries are ordinary binaries.
	_, enh, _, want := adaptWorkload(t, "mcf", DefaultOptions())
	text := ir.Format(enh)
	for _, needle := range []string{"chk.c", "spawn", "liw", "lir"} {
		if !strings.Contains(text, needle) {
			t.Fatalf("serialized binary lacks %s", needle)
		}
	}
	back, err := ir.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	img, err := ir.Link(back)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.New(tinyConfig(), img)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Mem.Load(workloads.ResultAddr); got != want {
		t.Fatalf("round-tripped checksum = %d, want %d", got, want)
	}
	if res.Spawns == 0 {
		t.Fatal("round-tripped binary spawned nothing")
	}
}
