package ssp

import (
	"strings"
	"testing"

	"ssp/internal/ir"
	"ssp/internal/profile"
	"ssp/internal/sim"
	"ssp/internal/workloads"
)

func tinyConfig() sim.Config {
	c := sim.DefaultInOrder()
	c.Mem.L1Size = 1 << 10
	c.Mem.L2Size = 4 << 10
	c.Mem.L3Size = 16 << 10
	c.MaxCycles = 200_000_000
	return c
}

// adaptWorkload profiles and adapts one benchmark at test scale.
func adaptWorkload(t *testing.T, name string, opt Options) (orig, enh *ir.Program, rep *Report, want uint64) {
	t.Helper()
	spec, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	orig, want = spec.Build(spec.TestScale)
	prof, err := profile.Collect(orig, tinyConfig())
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	enh, rep, err = Adapt(orig, prof, opt, name)
	if err != nil {
		t.Fatalf("Adapt: %v", err)
	}
	return orig, enh, rep, want
}

func runChecksum(t *testing.T, p *ir.Program, cfg sim.Config) (uint64, *sim.Result) {
	t.Helper()
	img, err := ir.Link(p)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.New(cfg, img)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("run timed out")
	}
	return m.Mem.Load(workloads.ResultAddr), res
}

func TestAdaptMcfShape(t *testing.T) {
	_, enh, rep, _ := adaptWorkload(t, "mcf", DefaultOptions())
	if rep.NumSlices() == 0 {
		t.Fatal("no slices generated for mcf")
	}
	if rep.AvgLiveIns() <= 0 || rep.AvgLiveIns() > 8 {
		t.Fatalf("avg live-ins = %.1f", rep.AvgLiveIns())
	}
	if rep.AvgSize() <= 0 || rep.AvgSize() > 48 {
		t.Fatalf("avg slice size = %.1f", rep.AvgSize())
	}
	// mcf's arc-induction recurrence makes it a chaining benchmark (§4.2:
	// "Most loops in the benchmark suite use chaining SP").
	chain := false
	for _, s := range rep.Slices {
		if s.Chaining {
			chain = true
		}
	}
	if !chain {
		t.Fatalf("mcf did not select chaining SP: %+v", rep.Slices)
	}
	// The enhanced binary has the Figure 7 attachments.
	text := ir.Format(enh)
	for _, want := range []string{"chk.c ssp_stub_", "spawn ssp_slice_", "lfetch", "liw", "lir", "kill"} {
		if !strings.Contains(text, want) {
			t.Errorf("enhanced binary lacks %q", want)
		}
	}
	if err := enh.Validate(); err != nil {
		t.Fatalf("enhanced binary invalid: %v", err)
	}
}

func TestAdaptPreservesResults(t *testing.T) {
	for _, name := range []string{"mcf", "em3d", "treeadd.df", "treeadd.bf", "vpr", "health", "mst"} {
		name := name
		t.Run(name, func(t *testing.T) {
			_, enh, _, want := adaptWorkload(t, name, DefaultOptions())
			got, _ := runChecksum(t, enh, tinyConfig())
			if got != want {
				t.Fatalf("enhanced binary checksum = %d, want %d", got, want)
			}
			// And on the OOO model.
			ooo := sim.DefaultOOO()
			ooo.Mem = tinyConfig().Mem
			ooo.MaxCycles = 200_000_000
			got, _ = runChecksum(t, enh, ooo)
			if got != want {
				t.Fatalf("OOO enhanced checksum = %d, want %d", got, want)
			}
		})
	}
}

func TestAdaptSpeedsUpInOrder(t *testing.T) {
	// The headline result (§4.3): SSP speeds up pointer-intensive kernels
	// on the in-order model. At unit-test scale we require a clear win on
	// the chaining-friendly benchmarks.
	for _, name := range []string{"mcf", "em3d", "vpr", "treeadd.bf"} {
		name := name
		t.Run(name, func(t *testing.T) {
			orig, enh, rep, _ := adaptWorkload(t, name, DefaultOptions())
			if rep.NumSlices() == 0 {
				t.Fatal("no slices generated")
			}
			_, base := runChecksum(t, orig, tinyConfig())
			_, fast := runChecksum(t, enh, tinyConfig())
			speedup := float64(base.Cycles) / float64(fast.Cycles)
			if fast.Spawns == 0 {
				t.Fatal("no speculative threads spawned")
			}
			if speedup < 1.10 {
				t.Fatalf("speedup = %.3f (base %d, ssp %d), want >= 1.10",
					speedup, base.Cycles, fast.Cycles)
			}
			t.Logf("%s: speedup %.2f, spawns %d, slices %d", name, speedup, fast.Spawns, rep.NumSlices())
		})
	}
}

func TestAdaptDoesNotWreckBasicSPBenchmarks(t *testing.T) {
	// treeadd.df (memory recurrence -> basic SP) must at least not slow
	// down much; health/mst are interprocedural and should not regress.
	for _, name := range []string{"treeadd.df", "health", "mst"} {
		name := name
		t.Run(name, func(t *testing.T) {
			orig, enh, _, _ := adaptWorkload(t, name, DefaultOptions())
			_, base := runChecksum(t, orig, tinyConfig())
			_, fast := runChecksum(t, enh, tinyConfig())
			ratio := float64(fast.Cycles) / float64(base.Cycles)
			if ratio > 1.05 {
				t.Fatalf("SSP slowed %s down by %.1f%%", name, 100*(ratio-1))
			}
			t.Logf("%s: cycles %d -> %d (%.2fx)", name, base.Cycles, fast.Cycles,
				float64(base.Cycles)/float64(fast.Cycles))
		})
	}
}

func TestInterproceduralSlices(t *testing.T) {
	// health and mst walk pointer chains inside callees: Table 2 reports
	// one interprocedural slice for each.
	for _, name := range []string{"health", "mst"} {
		name := name
		t.Run(name, func(t *testing.T) {
			_, _, rep, _ := adaptWorkload(t, name, DefaultOptions())
			if rep.NumSlices() == 0 {
				t.Fatal("no slices")
			}
			if rep.NumInterproc() == 0 {
				t.Fatalf("expected an interprocedural slice: %+v", rep.Slices)
			}
		})
	}
}

func TestTreeaddDFSelectsBasic(t *testing.T) {
	// The DF traversal's recurrence goes through the stack the main
	// thread is still writing: chaining must be rejected (Table 2: "The
	// benchmark treeadd.df uses basic SP").
	_, _, rep, _ := adaptWorkload(t, "treeadd.df", DefaultOptions())
	for _, s := range rep.Slices {
		if s.Chaining {
			t.Fatalf("treeadd.df selected chaining SP: %+v", s)
		}
	}
}

func TestSlicesContainNoStores(t *testing.T) {
	// §2: "The post-pass tool ensures that no store instructions are
	// included in the precomputation."
	for _, name := range []string{"mcf", "em3d", "treeadd.df", "treeadd.bf", "health", "mst", "vpr"} {
		_, enh, _, _ := adaptWorkload(t, name, DefaultOptions())
		for _, f := range enh.Funcs {
			for _, b := range f.Blocks {
				if !strings.HasPrefix(b.Label, "ssp_") {
					continue
				}
				for _, in := range b.Instrs {
					if in.Op == ir.OpSt {
						t.Fatalf("%s: store %v in slice block %s", name, in, b.Label)
					}
					if in.Op == ir.OpCall || in.Op == ir.OpCallB || in.Op == ir.OpRet {
						t.Fatalf("%s: control %v in slice block %s", name, in, b.Label)
					}
				}
			}
		}
	}
}

func TestAdaptLeavesOriginalUntouched(t *testing.T) {
	spec, _ := workloads.ByName("mcf")
	orig, _ := spec.Build(spec.TestScale)
	before := ir.Format(orig)
	prof, err := profile.Collect(orig, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Adapt(orig, prof, DefaultOptions(), "mcf"); err != nil {
		t.Fatal(err)
	}
	if ir.Format(orig) != before {
		t.Fatal("Adapt mutated the original program")
	}
}

func TestAdaptRejectsScratchRegisterClash(t *testing.T) {
	p := ir.NewProgram("main")
	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.MovI(127, 1) // reserved scratch register
	e.Halt()
	prof := &profile.Profile{
		InstrFreq: map[int]uint64{},
		BlockFreq: map[string]uint64{},
	}
	if _, _, err := Adapt(p, prof, DefaultOptions(), "clash"); err == nil {
		t.Fatal("Adapt accepted a program using the reserved scratch register")
	}
}

func TestNoDelinquentLoadsIsANop(t *testing.T) {
	// A compute-bound program gets no slices and is returned unchanged.
	p := ir.NewProgram("main")
	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	e.MovI(14, 0)
	loop := fb.Block("loop")
	loop.AddI(14, 14, 1)
	loop.CmpI(ir.CondLT, 6, 7, 14, 10000)
	loop.On(6).Br("loop")
	d := fb.Block("done")
	d.Halt()
	prof, err := profile.Collect(p, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	enh, rep, err := Adapt(p, prof, DefaultOptions(), "compute")
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumSlices() != 0 {
		t.Fatalf("compute-bound program got %d slices", rep.NumSlices())
	}
	if ir.Format(enh) != ir.Format(p) {
		t.Fatal("nop adaptation changed the program")
	}
}

func TestChainingSliceStructureMatchesFigure5(t *testing.T) {
	// For the mcf kernel the generated chaining slice must have the
	// Figure 5(b) shape: live-in restores, the induction (critical
	// sub-slice), live-in copies and a guarded spawn, then the loads and
	// prefetch, then kill.
	_, enh, _, _ := adaptWorkload(t, "mcf", DefaultOptions())
	var sliceBlock *ir.Block
	for _, b := range enh.FuncByName("main").Blocks {
		if strings.HasPrefix(b.Label, "ssp_slice_") {
			sliceBlock = b
			break
		}
	}
	if sliceBlock == nil {
		t.Fatal("no slice block")
	}
	var order []ir.Op
	for _, in := range sliceBlock.Instrs {
		order = append(order, in.Op)
	}
	// Find positions of key ops.
	pos := func(op ir.Op) int {
		for i, o := range order {
			if o == op {
				return i
			}
		}
		return -1
	}
	lir, spawn, lfetch, kill := pos(ir.OpLir), pos(ir.OpSpawn), pos(ir.OpLfetch), pos(ir.OpKill)
	if lir < 0 || spawn < 0 || lfetch < 0 || kill < 0 {
		t.Fatalf("slice block missing key ops: %v", order)
	}
	if !(lir < spawn && spawn < lfetch && lfetch < kill) {
		t.Fatalf("slice block order wrong (lir=%d spawn=%d lfetch=%d kill=%d): %v",
			lir, spawn, lfetch, kill, order)
	}
	if kill != len(order)-1 {
		t.Fatalf("kill is not last: %v", order)
	}
}

func TestAblationChainingOff(t *testing.T) {
	// Disabling chaining (forcing basic SP) must still be correct and
	// should not beat chaining on mcf.
	opt := DefaultOptions()
	opt.Chaining = false
	orig, enh, rep, want := adaptWorkload(t, "mcf", opt)
	for _, s := range rep.Slices {
		if s.Chaining {
			t.Fatal("chaining slice generated with Chaining=false")
		}
	}
	got, basicRes := runChecksum(t, enh, tinyConfig())
	if got != want {
		t.Fatalf("basic-only checksum = %d, want %d", got, want)
	}
	_, _, _, _ = orig, enh, rep, want
	_, chEnh, _, _ := adaptWorkload(t, "mcf", DefaultOptions())
	_, chainRes := runChecksum(t, chEnh, tinyConfig())
	if chainRes.Cycles > basicRes.Cycles*11/10 {
		t.Fatalf("chaining (%d cycles) much worse than basic (%d)", chainRes.Cycles, basicRes.Cycles)
	}
}

func TestAblationRotationOff(t *testing.T) {
	// Without dependence reduction the chaining threads serialize; the
	// enhanced binary stays correct.
	opt := DefaultOptions()
	opt.LoopRotation = false
	_, enh, _, want := adaptWorkload(t, "mcf", opt)
	got, _ := runChecksum(t, enh, tinyConfig())
	if got != want {
		t.Fatalf("rotation-off checksum = %d, want %d", got, want)
	}
}

func TestAblationSpeculativeSlicingOff(t *testing.T) {
	opt := DefaultOptions()
	opt.SpeculativeSlicing = false
	_, enh, rep, want := adaptWorkload(t, "em3d", opt)
	if rep.NumSlices() == 0 {
		t.Skip("no slices without speculative slicing")
	}
	got, _ := runChecksum(t, enh, tinyConfig())
	if got != want {
		t.Fatalf("spec-slicing-off checksum = %d, want %d", got, want)
	}
}

// collectProfile profiles a program on the test machine.
func collectProfile(t *testing.T, p *ir.Program) *profile.Profile {
	t.Helper()
	prof, err := profile.Collect(p, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

func TestSliceAddressesAreMostlyRight(t *testing.T) {
	// §4.4: "The number of wrong addresses generated by speculative
	// slicing is small for these benchmarks." Measure prefetch accuracy —
	// the fraction of slice-issued prefetch lines the main thread later
	// demands — on the chaining benchmarks.
	for _, name := range []string{"mcf", "em3d", "vpr"} {
		name := name
		t.Run(name, func(t *testing.T) {
			_, enh, _, _ := adaptWorkload(t, name, DefaultOptions())
			img, err := ir.Link(enh)
			if err != nil {
				t.Fatal(err)
			}
			m := sim.New(tinyConfig(), img)
			if _, err := m.Run(); err != nil {
				t.Fatal(err)
			}
			if m.Hier.PrefetchIssued == 0 {
				t.Fatal("no prefetches issued")
			}
			if acc := m.Hier.PrefetchAccuracy(); acc < 0.6 {
				t.Fatalf("prefetch accuracy %.2f (%d/%d) — too many wrong addresses",
					acc, m.Hier.PrefetchUseful, m.Hier.PrefetchIssued)
			} else {
				t.Logf("%s: prefetch accuracy %.2f (%d/%d)",
					name, acc, m.Hier.PrefetchUseful, m.Hier.PrefetchIssued)
			}
		})
	}
}
