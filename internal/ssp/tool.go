package ssp

import (
	"fmt"
	"sort"

	"ssp/internal/cfg"
	"ssp/internal/dep"
	"ssp/internal/ir"
	"ssp/internal/profile"
)

// scratchGR and scratchPR are reserved for SSP-generated code (countdown
// counters and spawn predicates). The tool verifies the input program never
// touches them; real binaries have an ABI-reserved scratch set for the same
// purpose.
const (
	scratchGR  ir.Reg = 127
	scratchPR  ir.PR  = 63
	scratchPR2 ir.PR  = 62
)

// ScratchGR is the general register the tool reserves for SSP-generated
// code. Stubs stage the countdown bound through it on the main thread, so
// differential and metamorphic comparisons (internal/check) must exclude it
// from the original-vs-adapted register comparison.
const ScratchGR = scratchGR

// analysis bundles the per-function structures the tool consumes.
type analysis struct {
	fr *cfg.FuncRegions
	dg *dep.Graph
}

// Tool is one adaptation session over a cloned program.
type Tool struct {
	p      *ir.Program
	prof   *profile.Profile
	opt    Options
	forest *cfg.Forest
	an     map[string]*analysis
	// callCycles caches the estimated dynamic cycles per invocation of
	// each function, used as the latency of call nodes in height
	// computations (§3.2.1: latency information annotated on edges).
	callCycles map[string]float64
	// freeRegs are general registers the program never touches, usable as
	// fresh temporaries by unrolled slice bodies (the speculative context
	// is private, but reusing program registers across unroll steps would
	// create false dependences inside the slice).
	freeRegs  []ir.Reg
	report    *Report
	nextSlice int
}

// Adapt runs the post-pass tool: it clones the program, analyses it, ranks
// delinquent loads per hot region, builds one independent p-slice per region
// (the slice portfolio of Table 2), and returns the SSP-enhanced binary
// together with the Table 2 report. The original program is left untouched
// (Figure 1: the tool re-reads the first pass's IR and emits a new binary).
func Adapt(orig *ir.Program, prof *profile.Profile, opt Options, label string) (*ir.Program, *Report, error) {
	return AdaptTargets(orig, prof, opt, label, nil)
}

// RankTargets returns the delinquent-load ranking the tool itself uses when
// no explicit target set is given: loads ranked within hot regions (grouped
// by innermost loop, hottest region first, §2.2's cutoff applied per region)
// so every hot region contributes its own targets. Callers that re-rank
// outside an adaptation session — the closed-loop tuner, the experiment
// drivers — share this so their target sets match the tool's. Falls back to
// the global ranking if the program does not analyse.
func RankTargets(orig *ir.Program, prof *profile.Profile, opt Options) []int {
	fo, err := cfg.BuildForest(orig)
	if err != nil {
		return prof.DelinquentLoads(opt.DelinquentCutoff, opt.MaxDelinquent)
	}
	return rankTargets(orig, prof, opt, fo)
}

// rankTargets is RankTargets over an already-built forest. The region key of
// a load is its innermost loop region (the body's parent, so all loads of
// one loop share a key) or its function's proc region.
func rankTargets(p *ir.Program, prof *profile.Profile, opt Options, fo *cfg.Forest) []int {
	key := func(id int) string {
		fn, blk, in := p.InstrByID(id)
		if in == nil || fn == nil {
			return ""
		}
		fr := fo.ByFunc[fn.Name]
		if fr == nil {
			return fn.Name
		}
		r := fr.Innermost(blk.Index)
		if r == nil {
			return fn.Name
		}
		if r.Kind == cfg.RegionLoopBody && r.Parent != nil {
			r = r.Parent
		}
		return r.String()
	}
	return prof.DelinquentLoadsByRegion(opt.DelinquentCutoff, opt.MaxDelinquent, opt.MinRegionMissFrac, key)
}

// slicePlan is one slice of the portfolio between planning and emission:
// the chosen region, the targeted loads, and the built (later scheduled)
// slice. Keeping plans materialized before codegen is what lets the tool
// merge slices that share dependence chains and divide the spawn budget
// across the survivors before any code is generated.
type slicePlan struct {
	region *cfg.Region
	loads  []*ir.Instr
	slice  *Slice
	sched  *Schedule
}

// AdaptTargets is Adapt with an explicit target set: instead of ranking
// delinquent loads from the profile, the given static load IDs are targeted
// in order. A nil targets slice reproduces Adapt exactly. The closed-loop
// tuner uses this to carry targets discovered in earlier rounds across
// re-profiling runs, where covered loads look healthy in the residual
// profile and would otherwise lose their slices.
func AdaptTargets(orig *ir.Program, prof *profile.Profile, opt Options, label string, targets []int) (*ir.Program, *Report, error) {
	p := orig.Clone()
	t := &Tool{
		p:          p,
		prof:       prof,
		opt:        opt,
		an:         make(map[string]*analysis),
		callCycles: make(map[string]float64),
		report:     &Report{Benchmark: label},
	}
	if err := t.analyse(); err != nil {
		return nil, nil, err
	}
	dels := targets
	if dels == nil {
		dels = rankTargets(p, prof, opt, t.forest)
	}
	t.report.DelinquentLoads = dels
	if len(dels) == 0 {
		t.report.Safety = AnalyzeSafety(p, DefaultSafetyCeiling)
		return p, t.report, nil
	}

	// Select a region per delinquent load (§3.4.1) and group loads that
	// landed in the same region: each group is one planned slice.
	type choice struct {
		load   *ir.Instr
		region *cfg.Region
	}
	var choices []choice
	for _, id := range dels {
		fn, _, in := p.InstrByID(id)
		if in == nil {
			t.skip(id, "no instruction with this ID")
			continue
		}
		if in.Op != ir.OpLd {
			t.skip(id, "target is not a load")
			continue
		}
		region := t.selectRegion(fn, in)
		if region == nil {
			t.skip(id, t.anchorKey(fn, in)+": no profitable region within MaxRegionDepth")
			continue
		}
		choices = append(choices, choice{load: in, region: region})
	}
	groups := map[*cfg.Region][]*ir.Instr{}
	var regionOrder []*cfg.Region
	for _, c := range choices {
		if _, seen := groups[c.region]; !seen {
			regionOrder = append(regionOrder, c.region)
		}
		groups[c.region] = append(groups[c.region], c.load)
	}

	// Build one slice plan per region group.
	var plans []*slicePlan
	for _, r := range regionOrder {
		sl, err := t.buildSlice(r, groups[r])
		if err != nil || sl == nil {
			t.skipAll(groups[r], r.String()+": combined slice rejected (size/live-in bound or unanalyzable address)")
			continue
		}
		plans = append(plans, &slicePlan{region: r, loads: groups[r], slice: sl})
	}

	// Combine plans whose slices share dependence-graph nodes (§3.4.1:
	// "different slices are combined if they share nodes in the dependence
	// graph") — two regions chasing the same chain collapse into one slice
	// instead of prefetching the same line twice.
	plans = t.mergePlans(plans)

	// Schedule the surviving plans and divide the spawn budget across them.
	var scheduled []*slicePlan
	for _, pl := range plans {
		sch := t.schedule(pl.slice)
		if sch == nil {
			t.skipAll(pl.loads, pl.region.String()+": no profitable schedule (slack below spawn overhead)")
			continue
		}
		pl.sched = sch
		scheduled = append(scheduled, pl)
	}
	budgets := t.chainBudgets(scheduled)
	for i, pl := range scheduled {
		emitted, err := t.emit(pl.slice, pl.sched, budgets[i])
		if err != nil {
			return nil, nil, fmt.Errorf("ssp: codegen for %v: %w", pl.region, err)
		}
		if !emitted {
			t.skipAll(pl.loads, pl.region.String()+": no legal trigger placement")
		}
	}
	if err := p.Validate(); err != nil {
		return nil, nil, fmt.Errorf("ssp: adapted program invalid: %w", err)
	}
	if err := VerifyAttachments(p); err != nil {
		return nil, nil, fmt.Errorf("ssp: self-check failed: %w", err)
	}
	// Speculation-safety self-certification: every emitted slice must carry
	// a budget certificate at or under the hardware ceiling (safety.go).
	srep, err := VerifySafety(p, DefaultSafetyCeiling)
	if err != nil {
		return nil, nil, fmt.Errorf("ssp: safety self-check failed: %w", err)
	}
	t.report.Safety = srep
	return p, t.report, nil
}

// mergePlans runs the §3.4.1 slice-combining rule across the portfolio to a
// fixed point: whenever two plans' slices share a dependence-graph node, the
// tool tries to rebuild one combined slice for the union of their targets.
// The enclosing region is preferred as the host (when one region contains
// the other within a function); otherwise the larger slice's region is tried
// first, then the other. If no host yields a legal combined slice (size or
// live-in bound), both plans are kept — a failed merge is not a skip.
func (t *Tool) mergePlans(plans []*slicePlan) []*slicePlan {
	for again := true; again; {
		again = false
	pairs:
		for i := 0; i < len(plans); i++ {
			for j := i + 1; j < len(plans); j++ {
				if !sharesNodes(plans[i].slice, plans[j].slice) {
					continue
				}
				if pl := t.tryMerge(plans[i], plans[j]); pl != nil {
					plans[i] = pl
					plans = append(plans[:j], plans[j+1:]...)
					again = true
					break pairs
				}
			}
		}
	}
	return plans
}

// sharesNodes reports whether two slices contain a common instruction.
func sharesNodes(a, b *Slice) bool {
	if len(a.idx) > len(b.idx) {
		a, b = b, a
	}
	for id := range a.idx {
		if _, ok := b.idx[id]; ok {
			return true
		}
	}
	return false
}

// tryMerge attempts to rebuild one slice covering both plans' targets in the
// best candidate host region; nil means no host worked.
func (t *Tool) tryMerge(a, b *slicePlan) *slicePlan {
	union := append([]*ir.Instr{}, a.loads...)
	seen := map[int]bool{}
	for _, in := range a.loads {
		seen[in.ID] = true
	}
	for _, in := range b.loads {
		if !seen[in.ID] {
			union = append(union, in)
		}
	}
	for _, r := range mergeHosts(a, b) {
		if sl, err := t.buildSlice(r, union); err == nil && sl != nil {
			return &slicePlan{region: r, loads: union, slice: sl}
		}
	}
	return nil
}

// mergeHosts orders the candidate host regions for a merge: an enclosing
// region first, else the larger slice's region before the smaller's.
func mergeHosts(a, b *slicePlan) []*cfg.Region {
	ra, rb := a.region, b.region
	if ra == rb {
		return []*cfg.Region{ra}
	}
	if ra.F == rb.F {
		if encloses(ra, rb) {
			return []*cfg.Region{ra, rb}
		}
		if encloses(rb, ra) {
			return []*cfg.Region{rb, ra}
		}
	}
	if a.slice.Size() >= b.slice.Size() {
		return []*cfg.Region{ra, rb}
	}
	return []*cfg.Region{rb, ra}
}

// encloses reports whether outer's block set contains inner's (both regions
// of the same function).
func encloses(outer, inner *cfg.Region) bool {
	set := make(map[int]bool, len(outer.Blocks))
	for _, bi := range outer.Blocks {
		set[bi] = true
	}
	for _, bi := range inner.Blocks {
		if !set[bi] {
			return false
		}
	}
	return true
}

// chainBudgets divides Options.ChainBound across the plans that keep a
// speculative thread armed past one shot (chaining or basic-loop slices):
// with S of the paper's 4 spec contexts effectively shared by the portfolio,
// an unbounded chain from one slice would evict the others' threads, so each
// gets an equal share of the countdown budget, floored at 2. A portfolio
// with a single such slice keeps the whole bound — identical to the
// single-slice pipeline.
func (t *Tool) chainBudgets(plans []*slicePlan) []int64 {
	n := 0
	for _, pl := range plans {
		if pl.sched.Model != ModelBasicOneShot {
			n++
		}
	}
	out := make([]int64, len(plans))
	for i, pl := range plans {
		bound := t.opt.ChainBound
		if pl.sched.Model != ModelBasicOneShot && n > 1 {
			bound /= int64(n)
			if bound < 2 {
				bound = 2
			}
		}
		out[i] = bound
	}
	return out
}

// skip records one targeted load the pipeline dropped, so the report's
// covered/skipped accounting stays total over DelinquentLoads.
func (t *Tool) skip(id int, reason string) {
	t.report.Skipped = append(t.report.Skipped, SkippedLoad{ID: id, Reason: reason})
}

// skipAll records a whole region group as skipped for the same reason.
func (t *Tool) skipAll(loads []*ir.Instr, reason string) {
	for _, in := range loads {
		t.skip(in.ID, reason)
	}
}

// anchorKey names the innermost region enclosing a load — the anchor of the
// outward region search — using the same key rankTargets groups by, so even
// a rejection of the whole search names which hot region lost the load.
func (t *Tool) anchorKey(fn *ir.Func, load *ir.Instr) string {
	_, blk, _ := t.p.InstrByID(load.ID)
	an := t.an[fn.Name]
	if blk == nil || an == nil {
		return fn.Name
	}
	r := an.fr.Innermost(blk.Index)
	if r == nil {
		return fn.Name
	}
	if r.Kind == cfg.RegionLoopBody && r.Parent != nil {
		r = r.Parent
	}
	return r.String()
}

// analyse builds region forests and dependence graphs, folds profiled
// indirect-call edges into the forest, verifies the scratch registers are
// free, and precomputes per-function dynamic call costs.
func (t *Tool) analyse() error {
	fo, err := cfg.BuildForest(t.p)
	if err != nil {
		return err
	}
	t.forest = fo
	for _, f := range t.p.Funcs {
		fr := fo.ByFunc[f.Name]
		dg := dep.Build(t.p, f, fr.G, fr.Dom, fr.PDom)
		t.an[f.Name] = &analysis{fr: fr, dg: dg}
	}
	// Dynamic call graph: indirect edges observed during profiling.
	for callID, edges := range t.prof.CallEdges {
		names := make([]string, 0, len(edges))
		for name := range edges {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if edges[name] > 0 {
				fo.AddIndirectEdge(callID, name)
			}
		}
	}
	// Scratch-register check.
	var clash error
	for _, f := range t.p.Funcs {
		f.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) {
			var locs []ir.Loc
			locs = in.AppendUses(locs)
			locs = in.AppendDefs(locs)
			for _, l := range locs {
				if r, ok := l.IsGR(); ok && r == scratchGR {
					clash = fmt.Errorf("ssp: program uses reserved register %v", scratchGR)
				}
				if pr, ok := l.IsPR(); ok && (pr == scratchPR || pr == scratchPR2) {
					clash = fmt.Errorf("ssp: program uses reserved predicate %v", pr)
				}
			}
		})
	}
	if clash != nil {
		return clash
	}
	// Free-register pool for slice unrolling.
	used := [ir.NumRegs]bool{}
	used[ir.RegZero] = true
	used[scratchGR] = true
	for _, f := range t.p.Funcs {
		f.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) {
			var locs []ir.Loc
			locs = in.AppendUses(locs)
			locs = in.AppendDefs(locs)
			for _, l := range locs {
				if r, ok := l.IsGR(); ok {
					used[r] = true
				}
			}
		})
	}
	for r := ir.Reg(1); r < ir.NumRegs; r++ {
		if !used[r] {
			t.freeRegs = append(t.freeRegs, r)
		}
	}
	// Per-call dynamic cost: total expected cycles of the callee's
	// instructions divided by its invocation count.
	for _, f := range t.p.Funcs {
		entries := t.prof.BlockCount(f.Name, f.Blocks[0].Label)
		if entries == 0 {
			continue
		}
		var cycles float64
		f.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) {
			cycles += float64(t.prof.Freq(in)) * t.instrLatency(in)
		})
		t.callCycles[f.Name] = cycles / float64(entries)
	}
	return nil
}

// instrLatency is the machine model's latency estimate for one instruction,
// with loads priced by cache profiling (§3.2.1).
func (t *Tool) instrLatency(in *ir.Instr) float64 {
	switch in.Op {
	case ir.OpLd:
		return t.prof.ExpectedLoadLatency(in.ID)
	case ir.OpMul:
		return 3
	case ir.OpLiw, ir.OpLir:
		return 3
	case ir.OpCall, ir.OpCallB:
		// Resolved at latency-query time via callCycles; unresolved
		// indirect calls get a nominal cost.
		if in.Op == ir.OpCall {
			if c, ok := t.callCycles[in.Target]; ok {
				return 1 + c
			}
		}
		return 20
	default:
		return 1
	}
}

// latFunc adapts instrLatency to the dep package's interface.
func (t *Tool) latFunc() dep.LatencyFunc {
	return func(in *ir.Instr) float64 { return t.instrLatency(in) }
}
