package ssp

import (
	"fmt"
	"sort"

	"ssp/internal/cfg"
	"ssp/internal/dep"
	"ssp/internal/ir"
	"ssp/internal/profile"
)

// scratchGR and scratchPR are reserved for SSP-generated code (countdown
// counters and spawn predicates). The tool verifies the input program never
// touches them; real binaries have an ABI-reserved scratch set for the same
// purpose.
const (
	scratchGR  ir.Reg = 127
	scratchPR  ir.PR  = 63
	scratchPR2 ir.PR  = 62
)

// ScratchGR is the general register the tool reserves for SSP-generated
// code. Stubs stage the countdown bound through it on the main thread, so
// differential and metamorphic comparisons (internal/check) must exclude it
// from the original-vs-adapted register comparison.
const ScratchGR = scratchGR

// analysis bundles the per-function structures the tool consumes.
type analysis struct {
	fr *cfg.FuncRegions
	dg *dep.Graph
}

// Tool is one adaptation session over a cloned program.
type Tool struct {
	p      *ir.Program
	prof   *profile.Profile
	opt    Options
	forest *cfg.Forest
	an     map[string]*analysis
	// callCycles caches the estimated dynamic cycles per invocation of
	// each function, used as the latency of call nodes in height
	// computations (§3.2.1: latency information annotated on edges).
	callCycles map[string]float64
	// freeRegs are general registers the program never touches, usable as
	// fresh temporaries by unrolled slice bodies (the speculative context
	// is private, but reusing program registers across unroll steps would
	// create false dependences inside the slice).
	freeRegs  []ir.Reg
	report    *Report
	nextSlice int
}

// Adapt runs the post-pass tool: it clones the program, analyses it, and
// returns the SSP-enhanced binary together with the Table 2 report. The
// original program is left untouched (Figure 1: the tool re-reads the first
// pass's IR and emits a new binary).
func Adapt(orig *ir.Program, prof *profile.Profile, opt Options, label string) (*ir.Program, *Report, error) {
	return AdaptTargets(orig, prof, opt, label, nil)
}

// AdaptTargets is Adapt with an explicit target set: instead of ranking
// delinquent loads from the profile, the given static load IDs are targeted
// in order. A nil targets slice reproduces Adapt exactly. The closed-loop
// tuner uses this to carry targets discovered in earlier rounds across
// re-profiling runs, where covered loads look healthy in the residual
// profile and would otherwise lose their slices.
func AdaptTargets(orig *ir.Program, prof *profile.Profile, opt Options, label string, targets []int) (*ir.Program, *Report, error) {
	p := orig.Clone()
	t := &Tool{
		p:          p,
		prof:       prof,
		opt:        opt,
		an:         make(map[string]*analysis),
		callCycles: make(map[string]float64),
		report:     &Report{Benchmark: label},
	}
	if err := t.analyse(); err != nil {
		return nil, nil, err
	}
	dels := targets
	if dels == nil {
		dels = prof.DelinquentLoads(opt.DelinquentCutoff, opt.MaxDelinquent)
	}
	t.report.DelinquentLoads = dels
	if len(dels) == 0 {
		return p, t.report, nil
	}

	// Select a region and model per delinquent load (§3.4.1), then combine
	// slices that landed in the same region (§3.4.1: "different slices are
	// combined if they share nodes in the dependence graph").
	type choice struct {
		load   *ir.Instr
		region *cfg.Region
	}
	var choices []choice
	for _, id := range dels {
		fn, _, in := p.InstrByID(id)
		if in == nil {
			t.skip(id, "no instruction with this ID")
			continue
		}
		if in.Op != ir.OpLd {
			t.skip(id, "target is not a load")
			continue
		}
		region := t.selectRegion(fn, in)
		if region == nil {
			t.skip(id, "no profitable region within MaxRegionDepth")
			continue
		}
		choices = append(choices, choice{load: in, region: region})
	}
	groups := map[*cfg.Region][]*ir.Instr{}
	var regionOrder []*cfg.Region
	for _, c := range choices {
		if _, seen := groups[c.region]; !seen {
			regionOrder = append(regionOrder, c.region)
		}
		groups[c.region] = append(groups[c.region], c.load)
	}
	for _, r := range regionOrder {
		sl, err := t.buildSlice(r, groups[r])
		if err != nil || sl == nil {
			t.skipAll(groups[r], "combined slice rejected (size/live-in bound or unanalyzable address)")
			continue
		}
		sch := t.schedule(sl)
		if sch == nil {
			t.skipAll(groups[r], "no profitable schedule (slack below spawn overhead)")
			continue
		}
		emitted, err := t.emit(sl, sch)
		if err != nil {
			return nil, nil, fmt.Errorf("ssp: codegen for %v: %w", r, err)
		}
		if !emitted {
			t.skipAll(groups[r], "no legal trigger placement")
		}
	}
	if err := p.Validate(); err != nil {
		return nil, nil, fmt.Errorf("ssp: adapted program invalid: %w", err)
	}
	if err := VerifyAttachments(p); err != nil {
		return nil, nil, fmt.Errorf("ssp: self-check failed: %w", err)
	}
	return p, t.report, nil
}

// skip records one targeted load the pipeline dropped, so the report's
// covered/skipped accounting stays total over DelinquentLoads.
func (t *Tool) skip(id int, reason string) {
	t.report.Skipped = append(t.report.Skipped, SkippedLoad{ID: id, Reason: reason})
}

// skipAll records a whole region group as skipped for the same reason.
func (t *Tool) skipAll(loads []*ir.Instr, reason string) {
	for _, in := range loads {
		t.skip(in.ID, reason)
	}
}

// analyse builds region forests and dependence graphs, folds profiled
// indirect-call edges into the forest, verifies the scratch registers are
// free, and precomputes per-function dynamic call costs.
func (t *Tool) analyse() error {
	fo, err := cfg.BuildForest(t.p)
	if err != nil {
		return err
	}
	t.forest = fo
	for _, f := range t.p.Funcs {
		fr := fo.ByFunc[f.Name]
		dg := dep.Build(t.p, f, fr.G, fr.Dom, fr.PDom)
		t.an[f.Name] = &analysis{fr: fr, dg: dg}
	}
	// Dynamic call graph: indirect edges observed during profiling.
	for callID, edges := range t.prof.CallEdges {
		names := make([]string, 0, len(edges))
		for name := range edges {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if edges[name] > 0 {
				fo.AddIndirectEdge(callID, name)
			}
		}
	}
	// Scratch-register check.
	var clash error
	for _, f := range t.p.Funcs {
		f.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) {
			var locs []ir.Loc
			locs = in.AppendUses(locs)
			locs = in.AppendDefs(locs)
			for _, l := range locs {
				if r, ok := l.IsGR(); ok && r == scratchGR {
					clash = fmt.Errorf("ssp: program uses reserved register %v", scratchGR)
				}
				if pr, ok := l.IsPR(); ok && (pr == scratchPR || pr == scratchPR2) {
					clash = fmt.Errorf("ssp: program uses reserved predicate %v", pr)
				}
			}
		})
	}
	if clash != nil {
		return clash
	}
	// Free-register pool for slice unrolling.
	used := [ir.NumRegs]bool{}
	used[ir.RegZero] = true
	used[scratchGR] = true
	for _, f := range t.p.Funcs {
		f.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) {
			var locs []ir.Loc
			locs = in.AppendUses(locs)
			locs = in.AppendDefs(locs)
			for _, l := range locs {
				if r, ok := l.IsGR(); ok {
					used[r] = true
				}
			}
		})
	}
	for r := ir.Reg(1); r < ir.NumRegs; r++ {
		if !used[r] {
			t.freeRegs = append(t.freeRegs, r)
		}
	}
	// Per-call dynamic cost: total expected cycles of the callee's
	// instructions divided by its invocation count.
	for _, f := range t.p.Funcs {
		entries := t.prof.BlockCount(f.Name, f.Blocks[0].Label)
		if entries == 0 {
			continue
		}
		var cycles float64
		f.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) {
			cycles += float64(t.prof.Freq(in)) * t.instrLatency(in)
		})
		t.callCycles[f.Name] = cycles / float64(entries)
	}
	return nil
}

// instrLatency is the machine model's latency estimate for one instruction,
// with loads priced by cache profiling (§3.2.1).
func (t *Tool) instrLatency(in *ir.Instr) float64 {
	switch in.Op {
	case ir.OpLd:
		return t.prof.ExpectedLoadLatency(in.ID)
	case ir.OpMul:
		return 3
	case ir.OpLiw, ir.OpLir:
		return 3
	case ir.OpCall, ir.OpCallB:
		// Resolved at latency-query time via callCycles; unresolved
		// indirect calls get a nominal cost.
		if in.Op == ir.OpCall {
			if c, ok := t.callCycles[in.Target]; ok {
				return 1 + c
			}
		}
		return 20
	default:
		return 1
	}
}

// latFunc adapts instrLatency to the dep package's interface.
func (t *Tool) latFunc() dep.LatencyFunc {
	return func(in *ir.Instr) float64 { return t.instrLatency(in) }
}
