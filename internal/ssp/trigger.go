package ssp

import (
	"ssp/internal/ir"
)

// triggerPoint is where a chk.c is embedded in the main thread's code.
type triggerPoint struct {
	block *ir.Block
	pos   int
}

// targetBlocksInRegionFunc maps every delinquent target to the block of the
// region's function through which execution reaches it: the target's own
// block, or the bound call site's block for targets inside callees.
func (t *Tool) targetBlocksInRegionFunc(sl *Slice) []*ir.Block {
	f := sl.Region.F
	var out []*ir.Block
	for _, tg := range sl.Targets {
		fn, blk, _ := t.p.InstrByID(tg.ID)
		if fn == nil {
			continue
		}
		for fn.Name != f.Name {
			site := sl.Ctx[fn.Name]
			if site == nil {
				fn = nil
				break
			}
			var callBlk *ir.Block
			fn, callBlk, _ = t.p.InstrByID(site.call.ID)
			blk = callBlk
		}
		if fn != nil && blk != nil {
			out = append(out, blk)
		}
	}
	return out
}

// placeTrigger chooses the chk.c location per §3.3: the trigger must
// control-dominate every path to the delinquent load (a one-trigger-per-path
// cut), sit where all live-in values are available, and — for loop regions —
// fire once per iteration so dead chains re-arm. For loop regions that is
// the loop header's top; for non-loop regions the tool starts after the last
// live-in definition in the target's dominator chain and, when hoisting is
// on, moves to immediate dominators while the live-ins remain available,
// merging triggers.
func (t *Tool) placeTrigger(sl *Slice) (triggerPoint, bool) {
	f := sl.Region.F
	an := t.an[f.Name]
	if sl.Region.Loop != nil {
		header := f.Blocks[sl.Region.Loop.Header]
		return triggerPoint{block: header, pos: 0}, true
	}
	targets := t.targetBlocksInRegionFunc(sl)
	if len(targets) == 0 {
		return triggerPoint{}, false
	}
	// Common dominator of all target blocks.
	cand := targets[0]
	for _, b := range targets[1:] {
		for cand != nil && !an.fr.Dom.Dominates(cand.Index, b.Index) {
			idom := an.fr.Dom.IDom[cand.Index]
			if idom < 0 {
				cand = f.Blocks[0]
				break
			}
			cand = f.Blocks[idom]
		}
	}
	if cand == nil {
		return triggerPoint{}, false
	}
	// Position after the last live-in definition inside the candidate.
	pos := t.lastLiveInDef(sl, cand) + 1
	if !t.liveInsAvailable(sl, cand) {
		return triggerPoint{}, false
	}
	// Hoist to immediate dominators while the live-ins stay available
	// (§3.3: "move the trigger points to the immediate control dominant
	// nodes if the slack value of the immediate dominant node remains the
	// same").
	if t.opt.TriggerHoisting {
		for {
			idom := an.fr.Dom.IDom[cand.Index]
			if idom < 0 {
				break
			}
			up := f.Blocks[idom]
			if !t.liveInsAvailable(sl, up) {
				break
			}
			cand = up
			pos = t.lastLiveInDef(sl, cand) + 1
		}
	}
	if pos > len(cand.Instrs) {
		pos = len(cand.Instrs)
	}
	return triggerPoint{block: cand, pos: pos}, true
}

// lastLiveInDef returns the index of the last instruction in b defining a
// live-in register, or -1.
func (t *Tool) lastLiveInDef(sl *Slice, b *ir.Block) int {
	liveIn := map[ir.Reg]bool{}
	for _, r := range sl.LiveIns {
		liveIn[r] = true
	}
	last := -1
	var defs []ir.Loc
	for i, in := range b.Instrs {
		defs = in.AppendDefs(defs[:0])
		for _, l := range defs {
			if r, ok := l.IsGR(); ok && liveIn[r] {
				last = i
			}
		}
	}
	return last
}

// liveInsAvailable reports whether every live-in register has a definition
// in b or in a block dominating b — the values exist when the trigger fires.
func (t *Tool) liveInsAvailable(sl *Slice, b *ir.Block) bool {
	f := sl.Region.F
	an := t.an[f.Name]
	for _, r := range sl.LiveIns {
		ok := false
		f.Instrs(func(db *ir.Block, _ int, in *ir.Instr) {
			if ok {
				return
			}
			var defs []ir.Loc
			defs = in.AppendDefs(defs)
			for _, l := range defs {
				if dr, isGR := l.IsGR(); isGR && dr == r {
					if db == b || an.fr.Dom.Dominates(db.Index, b.Index) {
						ok = true
					}
				}
			}
		})
		if !ok {
			return false
		}
	}
	return true
}

// embedTrigger turns the padding nop at (or after) the trigger point into
// the chk.c, or inserts a fresh chk.c when no nop is available — "the tool
// adapts the binary by replacing a single nop instruction with a chk.c
// instruction" (Figure 7).
func (t *Tool) embedTrigger(tp triggerPoint, stubLabel string) {
	for i := tp.pos; i < len(tp.block.Instrs); i++ {
		in := tp.block.Instrs[i]
		if in.Op == ir.OpNop && in.Qp == ir.PTrue {
			in.Op = ir.OpChk
			in.Target = stubLabel
			return
		}
		if in.Op.IsBranch() {
			break // don't drift past control flow
		}
	}
	chk := &ir.Instr{Op: ir.OpChk, Target: stubLabel}
	t.p.Assign(chk)
	tp.block.InsertAt(tp.pos, chk)
}
