package ssp

import "ssp/internal/ir"

// emitChainingUnrolled emits a chaining slice covering Options.ChainUnroll
// iterations per speculative thread: the critical sub-slice (the live-in
// advance) is applied once per step with per-step snapshots of the live-in
// values the prefetch body reads, the chained spawn passes the fully
// advanced live-ins, and the non-critical sub-slice is replicated per step
// with temporaries renamed from the program's free-register pool. This is
// the transformation the paper's hand-adapted binaries applied manually
// (§4.5); it amortizes spawn/live-in overhead and issues several iterations'
// prefetches per thread. Reports false (emitting nothing) when the free
// pool cannot cover the renaming, in which case the caller falls back to
// the unrolled-by-one Figure 5(b) form.
func (t *Tool) emitChainingUnrolled(body *ir.BlockBuilder, sl *Slice, sch *Schedule, countdown bool, countSlot int64, sliceLabel string) bool {
	steps := t.opt.ChainUnroll
	pool := t.freeRegs
	alloc := func() (ir.Reg, bool) {
		if len(pool) == 0 {
			return 0, false
		}
		r := pool[0]
		pool = pool[1:]
		return r, true
	}
	liveIn := map[ir.Reg]bool{}
	for _, r := range sl.LiveIns {
		liveIn[r] = true
	}
	// Live-in registers the non-critical body reads: these need per-step
	// snapshots taken before the step's advance.
	ncLive := map[ir.Reg]bool{}
	var uses, defs []ir.Loc
	for _, n := range sch.NonCritical {
		uses = sl.Nodes[n].In.AppendUses(uses[:0])
		for _, l := range uses {
			if r, ok := l.IsGR(); ok && liveIn[r] {
				ncLive[r] = true
			}
		}
	}
	// Dry-run capacity check: snapshots + critical temps + non-critical
	// defs, per step.
	need := len(ncLive) * steps
	for _, n := range sch.Critical {
		defs = sl.Nodes[n].In.AppendDefs(defs[:0])
		for _, l := range defs {
			if r, ok := l.IsGR(); ok && !liveIn[r] {
				need += steps
			}
		}
	}
	for _, n := range sch.NonCritical {
		defs = sl.Nodes[n].In.AppendDefs(defs[:0])
		for _, l := range defs {
			if r, ok := l.IsGR(); ok && !liveIn[r] {
				need += steps
			}
		}
	}
	if need > len(pool) {
		return false
	}

	// remap rewrites the GR operands of a cloned instruction.
	remapUses := func(c *ir.Instr, m map[ir.Reg]ir.Reg) {
		if r, ok := m[c.Ra]; ok && usesRa(c) {
			c.Ra = r
		}
		if r, ok := m[c.Rb]; ok && usesRb(c) {
			c.Rb = r
		}
	}
	emit := func(c *ir.Instr) {
		t.p.Assign(c)
		body.B.Append(c)
	}

	stepMaps := make([]map[ir.Reg]ir.Reg, steps)
	for k := 0; k < steps; k++ {
		m := map[ir.Reg]ir.Reg{}
		// Snapshot the pre-advance live-ins the prefetch body needs.
		for _, r := range sl.LiveIns {
			if !ncLive[r] {
				continue
			}
			s, ok := alloc()
			if !ok {
				return false
			}
			body.Mov(s, r)
			m[r] = s
		}
		// Apply the advance: temps renamed, live-in defs in place.
		for _, n := range sch.Critical {
			c := sl.Nodes[n].In.Clone()
			c.ID = 0
			remapUses(c, m)
			if d, hasDef := grDef(c); hasDef && !liveIn[d] {
				f, ok := alloc()
				if !ok {
					return false
				}
				m[d] = f
				setGRDef(c, f)
			}
			// A post-increment load's base update lands on the remapped
			// base register via remapUses, so no extra handling is needed.
			emit(c)
		}
		stepMaps[k] = m
	}

	// Chain handoff: one countdown tick per thread, fully advanced
	// live-ins.
	spawnPR := t.emitSpawnGuard(body, sl, sch, countdown)
	for i, r := range sl.LiveIns {
		body.Liw(int64(i), r)
	}
	if countdown {
		body.Liw(countSlot, scratchGR)
	}
	if spawnPR == ir.PTrue {
		body.Spawn(sliceLabel)
	} else {
		body.On(spawnPR).Spawn(sliceLabel)
	}

	// Per-step prefetch bodies.
	for k := 0; k < steps; k++ {
		m := stepMaps[k]
		for _, n := range sch.NonCritical {
			c := sl.Nodes[n].In.Clone()
			c.ID = 0
			if sch.Lfetch[n] {
				c.Op = ir.OpLfetch
				c.Rd = 0
				c.PostInc = 0
			}
			remapUses(c, m)
			if d, hasDef := grDef(c); hasDef && !liveIn[d] {
				f, ok := alloc()
				if !ok {
					return false
				}
				m[d] = f
				setGRDef(c, f)
			}
			emit(c)
		}
	}
	body.Kill()
	return true
}

// usesRa reports whether the instruction's Ra field is a source operand.
func usesRa(c *ir.Instr) bool {
	switch c.Op {
	case ir.OpNop, ir.OpMovI, ir.OpLir, ir.OpMovFromBR, ir.OpBr, ir.OpCall,
		ir.OpCallB, ir.OpRet, ir.OpChk, ir.OpSpawn, ir.OpKill, ir.OpHalt:
		return false
	case ir.OpMovBR:
		return c.Target == ""
	}
	return true
}

// usesRb reports whether the instruction's Rb field is a source operand.
func usesRb(c *ir.Instr) bool {
	if c.UseImm {
		return false
	}
	switch c.Op {
	case ir.OpSt:
		return true
	case ir.OpCmp:
		return true
	}
	return c.Op.IsALU()
}

// grDef returns the general register the instruction defines, if any
// (post-increment bases are handled by the caller keeping Ra mapped).
func grDef(c *ir.Instr) (ir.Reg, bool) {
	switch c.Op {
	case ir.OpMov, ir.OpMovI, ir.OpMovFromBR, ir.OpLir, ir.OpLd:
		return c.Rd, c.Rd != ir.RegZero
	}
	if c.Op.IsALU() {
		return c.Rd, c.Rd != ir.RegZero
	}
	return 0, false
}

// setGRDef rewrites the defined register.
func setGRDef(c *ir.Instr, r ir.Reg) { c.Rd = r }
