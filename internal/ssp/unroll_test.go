package ssp

import (
	"testing"

	"ssp/internal/ir"
	"ssp/internal/sim"
	"ssp/internal/workloads"
)

func TestChainUnrollPreservesResults(t *testing.T) {
	for _, name := range []string{"mcf", "em3d", "vpr", "treeadd.bf", "health"} {
		name := name
		t.Run(name, func(t *testing.T) {
			opt := DefaultOptions()
			opt.ChainUnroll = 2
			_, enh, _, want := adaptWorkload(t, name, opt)
			got, res := runChecksum(t, enh, tinyConfig())
			if got != want {
				t.Fatalf("unrolled checksum = %d, want %d", got, want)
			}
			_ = res
		})
	}
}

func TestChainUnrollEmitsReplicatedBody(t *testing.T) {
	opt := DefaultOptions()
	opt.ChainUnroll = 2
	_, enh, rep, _ := adaptWorkload(t, "mcf", opt)
	if rep.NumSlices() == 0 {
		t.Fatal("no slices")
	}
	var sliceBlock *ir.Block
	for _, b := range enh.FuncByName("main").Blocks {
		if b.Label == "ssp_slice_0" {
			sliceBlock = b
		}
	}
	if sliceBlock == nil {
		t.Fatal("no slice block")
	}
	lfetches, spawns := 0, 0
	for _, in := range sliceBlock.Instrs {
		switch in.Op {
		case ir.OpLfetch:
			lfetches++
		case ir.OpSpawn:
			spawns++
		}
	}
	// mcf has two delinquent prefetches per iteration; unroll=2 doubles
	// them while keeping one chained spawn.
	if lfetches < 4 {
		t.Fatalf("unrolled slice has %d prefetches, want >= 4", lfetches)
	}
	if spawns != 1 {
		t.Fatalf("unrolled slice has %d spawns, want 1", spawns)
	}
}

func TestChainUnrollImprovesMcf(t *testing.T) {
	// The unrolled chain must not lose to the single-iteration chain on
	// the benchmark the hand adaptation unrolled (§4.5) — it amortizes
	// spawn overhead and doubles per-thread prefetch work.
	orig, enh1, _, _ := adaptWorkload(t, "mcf", DefaultOptions())
	opt := DefaultOptions()
	opt.ChainUnroll = 2
	_, enh2, _, _ := adaptWorkload(t, "mcf", opt)
	_, base := runChecksum(t, orig, tinyConfig())
	_, r1 := runChecksum(t, enh1, tinyConfig())
	_, r2 := runChecksum(t, enh2, tinyConfig())
	s1 := float64(base.Cycles) / float64(r1.Cycles)
	s2 := float64(base.Cycles) / float64(r2.Cycles)
	t.Logf("mcf: unroll=1 %.2fx, unroll=2 %.2fx", s1, s2)
	if s2 < s1*0.97 {
		t.Fatalf("unrolling hurt: %.2f vs %.2f", s2, s1)
	}
}

func TestChainUnrollFallsBackWithoutFreeRegisters(t *testing.T) {
	// A program that touches (almost) every register leaves no pool; the
	// tool must fall back to the unrolled-by-one form, still correct.
	p := ir.NewProgram("main")
	base := uint64(0x100000)
	n := 600
	for i := 0; i < n; i++ {
		p.SetWord(base+uint64(i)*8+0x400000, base+uint64((i*2654435761)%n)*64)
	}
	fb := ir.NewFunc(p, "main")
	e := fb.Block("entry")
	// Touch r1..r126 so the free pool is empty (r127 stays reserved).
	for r := 1; r < 127; r++ {
		if r == 12 {
			continue
		}
		e.MovI(ir.Reg(r), int64(r))
	}
	e.MovI(14, int64(base+0x400000))
	e.MovI(15, int64(base+0x400000+uint64(n)*8))
	e.MovI(20, 0)
	loop := fb.Block("loop")
	loop.Nop()
	loop.Ld(16, 14, 0)
	loop.Ld(17, 16, 8)
	loop.Add(20, 20, 17)
	loop.AddI(14, 14, 8)
	loop.Cmp(ir.CondLT, 6, 7, 14, 15)
	loop.On(6).Br("loop")
	done := fb.Block("done")
	done.MovI(28, int64(workloads.ResultAddr))
	done.St(28, 0, 20)
	done.Halt()

	img, err := ir.Link(p)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sim.Interpret(tinyConfig(), img, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Mem.Load(workloads.ResultAddr)

	prof := collectProfile(t, p)
	opt := DefaultOptions()
	opt.ChainUnroll = 4
	enh, _, err := Adapt(p, prof, opt, "regpressure")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := runChecksum(t, enh, tinyConfig())
	if got != want {
		t.Fatalf("fallback checksum = %d, want %d", got, want)
	}
}
