package ssp

import (
	"fmt"
	"strings"

	"ssp/internal/ir"
)

// VerifyAttachments statically checks the Figure 7 invariants of an
// SSP-enhanced program:
//
//   - every chk.c targets a stub block that exists in the same function;
//   - a stub block consists of live-in copies (plus at most a countdown
//     staging move) and ends with a spawn;
//   - spawn targets resolve to slice blocks (or stub-local labels);
//   - slice regions pass the speculation-safety analysis (AnalyzeSafety):
//     no reachable instruction can write memory or escape the region — the
//     speculative thread can never alter main-thread architectural state
//     (§2) — and every path from the slice root reaches kill within a
//     bounded instruction budget, not merely "some kill appears somewhere";
//   - the live-in slots a slice reads (lir) — in any block of its region, at
//     any position — are a subset of the slots every spawner of that slice
//     writes (liw) before the spawn, so no thread reads an uninitialized
//     live-in. Spawners are stubs and, under chaining, the slices themselves.
//   - every liw/lir slot immediate is within the live-in buffer
//     (ir.LIBSlots); the hardware wraps out-of-range slots modulo the buffer
//     size, silently aliasing two live-ins.
//
// The code generator runs it after every adaptation; it is exported so
// hand-adapted binaries (and tests) can be checked against the same rules.
func VerifyAttachments(p *ir.Program) error {
	for _, f := range p.Funcs {
		stubs := map[string]*ir.Block{}
		slices := map[string]*ir.Block{}
		for _, b := range f.Blocks {
			if strings.HasPrefix(b.Label, "ssp_stub_") || strings.HasPrefix(b.Label, "hand_stub") {
				stubs[b.Label] = b
			}
			// Root slice blocks only: continuation blocks such as
			// "ssp_slice_3_loop" belong to their root's region.
			if rest, ok := strings.CutPrefix(b.Label, "ssp_slice_"); ok && !strings.Contains(rest, "_") {
				slices[b.Label] = b
			}
			if b.Label == "hand_slice" {
				slices[b.Label] = b
			}
		}
		// chk.c targets.
		var err error
		f.Instrs(func(b *ir.Block, _ int, in *ir.Instr) {
			if err != nil || in.Op != ir.OpChk {
				return
			}
			tgt := f.BlockByLabel(in.Target)
			if tgt == nil {
				err = fmt.Errorf("ssp: %s: chk.c target %q missing", f.Name, in.Target)
				return
			}
			if _, isStub := stubs[tgt.Label]; !isStub {
				err = fmt.Errorf("ssp: %s: chk.c targets non-stub block %q", f.Name, tgt.Label)
			}
		})
		if err != nil {
			return err
		}
		// Live-in buffer slot range: out-of-range immediates wrap modulo
		// the buffer in hardware, silently aliasing two live-ins.
		f.Instrs(func(b *ir.Block, _ int, in *ir.Instr) {
			if err != nil || (in.Op != ir.OpLiw && in.Op != ir.OpLir) {
				return
			}
			if in.Imm < 0 || in.Imm >= ir.LIBSlots {
				err = fmt.Errorf("ssp: %s/%s: %v slot %d outside live-in buffer [0,%d)", f.Name, b.Label, in.Op, in.Imm, ir.LIBSlots)
			}
		})
		if err != nil {
			return err
		}
		// lir demand per slice: every slot read anywhere in the slice's
		// region — continuation blocks and post-prologue reads included.
		lirReads := map[string]map[int64]bool{}
		for label := range slices {
			reads := map[int64]bool{}
			for _, sb := range sliceRegionBlocks(f, label) {
				for _, in := range sb.Instrs {
					if in.Op == ir.OpLir {
						reads[in.Imm] = true
					}
				}
			}
			lirReads[label] = reads
		}
		// Stub shape.
		for label, stub := range stubs {
			n := len(stub.Instrs)
			if n == 0 || stub.Instrs[n-1].Op != ir.OpSpawn {
				return fmt.Errorf("ssp: %s/%s: stub does not end in spawn", f.Name, label)
			}
			for _, in := range stub.Instrs[:n-1] {
				switch in.Op {
				case ir.OpLiw:
				case ir.OpMovI, ir.OpMov:
					// countdown staging through the reserved scratch
				default:
					return fmt.Errorf("ssp: %s/%s: unexpected %v in stub", f.Name, label, in)
				}
			}
		}
		// Every spawn site — a stub's terminal spawn or a chaining slice's
		// handoff spawn — must write (liw, earlier in the same block) every
		// slot its target slice reads.
		f.Instrs(func(b *ir.Block, i int, in *ir.Instr) {
			if err != nil || in.Op != ir.OpSpawn {
				return
			}
			if _, isStub := stubs[b.Label]; !isStub && !inSliceRegion(slices, b.Label) {
				err = fmt.Errorf("ssp: %s/%s: spawn outside stub or slice region", f.Name, b.Label)
				return
			}
			body := sliceBody(f, slices, in.Target)
			if body == nil {
				err = fmt.Errorf("ssp: %s/%s: spawn target %q is not a slice block", f.Name, b.Label, in.Target)
				return
			}
			written := map[int64]bool{}
			for _, prev := range b.Instrs[:i] {
				if prev.Op == ir.OpLiw {
					written[prev.Imm] = true
				}
			}
			for slot := range lirReads[in.Target] {
				if !written[slot] {
					err = fmt.Errorf("ssp: %s/%s: slice %s reads live-in slot %d its spawner never writes", f.Name, b.Label, in.Target, slot)
					return
				}
			}
		})
		if err != nil {
			return err
		}
		// Slice termination and isolation: the speculation-safety analysis
		// (safety.go) proves, path-sensitively over the region CFG, that no
		// reachable instruction stores, calls, or escapes the region and that
		// every path reaches kill within a bounded instruction budget — the
		// all-paths strengthening of the old "any kill anywhere" scan.
		for label := range slices {
			if _, vs := analyzeSlice(f, label, DefaultSafetyCeiling); len(vs) > 0 {
				return fmt.Errorf("ssp: %s", vs[0])
			}
		}
	}
	return nil
}

// sliceBody resolves a spawn target to its slice block within f.
func sliceBody(f *ir.Func, slices map[string]*ir.Block, target string) *ir.Block {
	if b, ok := slices[target]; ok {
		return b
	}
	// Cross-function targets ("fn.label") are not generated by the tool.
	return nil
}

// inSliceRegion reports whether the labeled block belongs to any root
// slice's region.
func inSliceRegion(slices map[string]*ir.Block, label string) bool {
	for root := range slices {
		if label == root || strings.HasPrefix(label, root+"_") {
			return true
		}
	}
	return false
}

// sliceRegionBlocks returns the attachment blocks belonging to one slice:
// the slice block itself plus its generated continuation blocks
// (label-prefixed, e.g. the basic-loop body and tail).
func sliceRegionBlocks(f *ir.Func, label string) []*ir.Block {
	var out []*ir.Block
	for _, b := range f.Blocks {
		if b.Label == label || strings.HasPrefix(b.Label, label+"_") {
			out = append(out, b)
		}
	}
	return out
}
