package ssp

import (
	"strings"
	"testing"

	"ssp/internal/handtuned"
	"ssp/internal/ir"
	"ssp/internal/workloads"
)

func TestVerifyAcceptsToolOutput(t *testing.T) {
	for _, name := range []string{"mcf", "em3d", "treeadd.df", "health"} {
		_, enh, _, _ := adaptWorkload(t, name, DefaultOptions())
		if err := VerifyAttachments(enh); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestVerifyAcceptsHandAdaptations(t *testing.T) {
	for _, name := range []string{"mcf", "health"} {
		spec, _ := workloads.ByName(name)
		orig, _ := spec.Build(spec.TestScale)
		hand, err := handtuned.Adapt(name, orig)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyAttachments(hand); err != nil {
			t.Errorf("%s hand: %v", name, err)
		}
	}
}

// corrupt applies fn to a fresh adapted mcf and expects verification to
// fail.
func corrupt(t *testing.T, what string, fn func(*ir.Program)) {
	t.Helper()
	_, enh, _, _ := adaptWorkload(t, "mcf", DefaultOptions())
	fn(enh)
	if err := VerifyAttachments(enh); err == nil {
		t.Errorf("%s: verification accepted a corrupted binary", what)
	}
}

func TestVerifyRejectsCorruptions(t *testing.T) {
	corrupt(t, "store in slice", func(p *ir.Program) {
		f := p.FuncByName("main")
		b := f.BlockByLabel("ssp_slice_0")
		st := &ir.Instr{Op: ir.OpSt, Ra: 21, Rb: 21}
		p.Assign(st)
		b.InsertAt(1, st)
	})
	corrupt(t, "call in slice", func(p *ir.Program) {
		f := p.FuncByName("main")
		b := f.BlockByLabel("ssp_slice_0")
		c := &ir.Instr{Op: ir.OpCall, Target: "main", Bd: 0}
		p.Assign(c)
		b.InsertAt(1, c)
	})
	corrupt(t, "missing kill", func(p *ir.Program) {
		f := p.FuncByName("main")
		b := f.BlockByLabel("ssp_slice_0")
		for _, in := range b.Instrs {
			if in.Op == ir.OpKill {
				in.Op = ir.OpNop
			}
		}
	})
	corrupt(t, "stub without spawn", func(p *ir.Program) {
		f := p.FuncByName("main")
		b := f.BlockByLabel("ssp_stub_0")
		b.Terminator().Op = ir.OpNop
		b.Terminator().Target = ""
	})
	corrupt(t, "uninitialized live-in slot", func(p *ir.Program) {
		f := p.FuncByName("main")
		b := f.BlockByLabel("ssp_slice_0")
		for _, in := range b.Instrs {
			if in.Op == ir.OpLir {
				in.Imm = 13 // a slot the stub never writes
				break
			}
		}
	})
	// Regression: a lir after the first non-lir instruction used to bypass
	// the subset check entirely (the scan broke at the end of the
	// prologue).
	corrupt(t, "post-prologue lir reads unwritten slot", func(p *ir.Program) {
		f := p.FuncByName("main")
		b := f.BlockByLabel("ssp_slice_0")
		lir := &ir.Instr{Op: ir.OpLir, Rd: 30, Imm: 13}
		p.Assign(lir)
		b.InsertAt(len(b.Instrs)-1, lir)
	})
	// Regression: continuation blocks (ssp_slice_N_*) were never scanned,
	// so a lir there could read a slot no spawner writes.
	corrupt(t, "continuation-block lir reads unwritten slot", func(p *ir.Program) {
		f := p.FuncByName("main")
		cont := f.AddBlock("ssp_slice_0_cont")
		lir := &ir.Instr{Op: ir.OpLir, Rd: 30, Imm: 13}
		p.Assign(lir)
		cont.Append(lir)
	})
	corrupt(t, "liw slot outside the live-in buffer", func(p *ir.Program) {
		f := p.FuncByName("main")
		b := f.BlockByLabel("ssp_stub_0")
		for _, in := range b.Instrs {
			if in.Op == ir.OpLiw {
				in.Imm = int64(ir.LIBSlots) // hardware would wrap to slot 0
				break
			}
		}
	})
	corrupt(t, "chk to non-stub", func(p *ir.Program) {
		f := p.FuncByName("main")
		f.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) {
			if in.Op == ir.OpChk {
				in.Target = "loop"
			}
		})
	})
}

// TestVerifyRejectsKillOnOneBranchArm is the regression for the weak kill
// check: the old scan accepted a slice as terminated if *any* kill appeared
// anywhere in its region, so a kill reachable on only one branch arm passed.
// The all-paths analysis must reject the arm that leaves the region without
// one.
func TestVerifyRejectsKillOnOneBranchArm(t *testing.T) {
	_, enh, _, _ := adaptWorkload(t, "mcf", DefaultOptions())
	f := enh.FuncByName("main")
	b := f.BlockByLabel("ssp_slice_0")
	// Branch around the region's tail (where the kill lives) on one arm:
	// the fall-through arm still kills, the taken arm falls off the region.
	stray := f.AddBlock("ssp_slice_0_stray")
	_ = stray // deliberately empty: the arm exits the region without kill
	br := &ir.Instr{Op: ir.OpBr, Qp: 1, Target: "ssp_slice_0_stray"}
	enh.Assign(br)
	b.InsertAt(0, br)
	f.Renumber()
	err := VerifyAttachments(enh)
	if err == nil {
		t.Fatal("verification accepted a slice whose kill is on only one branch arm")
	}
	if !strings.Contains(err.Error(), string(SafetyNoKill)) {
		t.Fatalf("rejected for the wrong reason: %v", err)
	}
}
