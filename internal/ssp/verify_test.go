package ssp

import (
	"testing"

	"ssp/internal/handtuned"
	"ssp/internal/ir"
	"ssp/internal/workloads"
)

func TestVerifyAcceptsToolOutput(t *testing.T) {
	for _, name := range []string{"mcf", "em3d", "treeadd.df", "health"} {
		_, enh, _, _ := adaptWorkload(t, name, DefaultOptions())
		if err := VerifyAttachments(enh); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestVerifyAcceptsHandAdaptations(t *testing.T) {
	for _, name := range []string{"mcf", "health"} {
		spec, _ := workloads.ByName(name)
		orig, _ := spec.Build(spec.TestScale)
		hand, err := handtuned.Adapt(name, orig)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyAttachments(hand); err != nil {
			t.Errorf("%s hand: %v", name, err)
		}
	}
}

// corrupt applies fn to a fresh adapted mcf and expects verification to
// fail.
func corrupt(t *testing.T, what string, fn func(*ir.Program)) {
	t.Helper()
	_, enh, _, _ := adaptWorkload(t, "mcf", DefaultOptions())
	fn(enh)
	if err := VerifyAttachments(enh); err == nil {
		t.Errorf("%s: verification accepted a corrupted binary", what)
	}
}

func TestVerifyRejectsCorruptions(t *testing.T) {
	corrupt(t, "store in slice", func(p *ir.Program) {
		f := p.FuncByName("main")
		b := f.BlockByLabel("ssp_slice_0")
		st := &ir.Instr{Op: ir.OpSt, Ra: 21, Rb: 21}
		p.Assign(st)
		b.InsertAt(1, st)
	})
	corrupt(t, "call in slice", func(p *ir.Program) {
		f := p.FuncByName("main")
		b := f.BlockByLabel("ssp_slice_0")
		c := &ir.Instr{Op: ir.OpCall, Target: "main", Bd: 0}
		p.Assign(c)
		b.InsertAt(1, c)
	})
	corrupt(t, "missing kill", func(p *ir.Program) {
		f := p.FuncByName("main")
		b := f.BlockByLabel("ssp_slice_0")
		for _, in := range b.Instrs {
			if in.Op == ir.OpKill {
				in.Op = ir.OpNop
			}
		}
	})
	corrupt(t, "stub without spawn", func(p *ir.Program) {
		f := p.FuncByName("main")
		b := f.BlockByLabel("ssp_stub_0")
		b.Terminator().Op = ir.OpNop
		b.Terminator().Target = ""
	})
	corrupt(t, "uninitialized live-in slot", func(p *ir.Program) {
		f := p.FuncByName("main")
		b := f.BlockByLabel("ssp_slice_0")
		for _, in := range b.Instrs {
			if in.Op == ir.OpLir {
				in.Imm = 13 // a slot the stub never writes
				break
			}
		}
	})
	// Regression: a lir after the first non-lir instruction used to bypass
	// the subset check entirely (the scan broke at the end of the
	// prologue).
	corrupt(t, "post-prologue lir reads unwritten slot", func(p *ir.Program) {
		f := p.FuncByName("main")
		b := f.BlockByLabel("ssp_slice_0")
		lir := &ir.Instr{Op: ir.OpLir, Rd: 30, Imm: 13}
		p.Assign(lir)
		b.InsertAt(len(b.Instrs)-1, lir)
	})
	// Regression: continuation blocks (ssp_slice_N_*) were never scanned,
	// so a lir there could read a slot no spawner writes.
	corrupt(t, "continuation-block lir reads unwritten slot", func(p *ir.Program) {
		f := p.FuncByName("main")
		cont := f.AddBlock("ssp_slice_0_cont")
		lir := &ir.Instr{Op: ir.OpLir, Rd: 30, Imm: 13}
		p.Assign(lir)
		cont.Append(lir)
	})
	corrupt(t, "liw slot outside the live-in buffer", func(p *ir.Program) {
		f := p.FuncByName("main")
		b := f.BlockByLabel("ssp_stub_0")
		for _, in := range b.Instrs {
			if in.Op == ir.OpLiw {
				in.Imm = int64(ir.LIBSlots) // hardware would wrap to slot 0
				break
			}
		}
	})
	corrupt(t, "chk to non-stub", func(p *ir.Program) {
		f := p.FuncByName("main")
		f.Instrs(func(_ *ir.Block, _ int, in *ir.Instr) {
			if in.Op == ir.OpChk {
				in.Target = "loop"
			}
		})
	})
}
